#!/bin/sh
# Tier-1 gate: format, vet, lint, build, and test the whole module. The -race
# run matters for internal/trace, whose tracer is documented as safe for
# concurrent Emit.
set -eux

# gofmt -l prints offending files and exits 0, so fail on non-empty output.
test -z "$(gofmt -l . | tee /dev/stderr)"

go vet ./...

# tdlint enforces the contracts the compiler cannot see: determinism, RFC 1982
# sequence arithmetic, hook nil-safety, trace categories, metric naming,
# causal-span Begin/End pairing, concurrency discipline outside the
# determinism boundary, hot-path allocation freedom, sim-time unit hygiene,
# and enum-switch exhaustiveness. Exit 1 = findings, exit 2 = load failure;
# either fails the gate. The JSON findings list is kept as a CI artifact so a
# red gate is diagnosable without rerunning locally.
mkdir -p artifacts
go run ./cmd/tdlint -json ./... > artifacts/tdlint.json

# Hot-path gate latency: the escape analysis behind the hotpath check runs
# through the ordinary build cache, and the full tdlint run above has just
# warmed it, so a hotpath-only re-lint must replay cached compiler output
# and finish inside a 10s budget. A blown budget means the cache replay
# broke and every CI run is paying for full recompiles.
hotpath_start=$(date +%s)
go run ./cmd/tdlint -checks hotpath ./...
hotpath_elapsed=$(($(date +%s) - hotpath_start))
test "$hotpath_elapsed" -le 10

go build ./...

# Full suite with per-package coverage; the profile and its per-package
# summary are CI artifacts (kept out of git via .gitignore).
go test -race -coverprofile=artifacts/cover.out ./...
go tool cover -func=artifacts/cover.out | tee artifacts/coverage.txt

# Sweep gate: the parallel experiment runner must stay race-clean and
# bit-identical to the sequential path (outside internal/sim's worker pool,
# goroutines are legal only in internal/experiments).
go test -race -run TestSweepParallelMatchesSequential ./internal/experiments/

# Progress-reporter gate: the live meters are read by a wall-clock goroutine
# while the simulation writes them, so the obs package must stay race-clean
# under concurrent Line/FlowStarted/FlowDone against a running loop.
go test -race -run 'TestMeterConcurrentReads|TestReporter' ./internal/obs/

# Golden-figure regression gate under the race detector: figure orderings,
# goodput bands, the 8-rack determinism trace, the workload sweep parity
# check, and the conservation property suite.
go test -race -run 'TestGolden|TestConservation' ./internal/experiments/

# Shard parity gate: the sharded engine must produce byte-identical traces
# and reports at every worker count, and the worker pool itself must be
# race-clean while doing it. This is the proof obligation for `-shards`:
# if this passes, worker count is unobservable except in wall time.
go test -race -run 'TestShardParity|TestShardPerRackLedger' ./internal/experiments/

# Service-lifecycle gate: the serve package is the one place where goroutines,
# wall clocks, and shared mutable job state meet, so its admission / retry /
# panic-isolation / drain tests must stay race-clean. The cmd/tdserve run is
# the shutdown-drain smoke against the real binary: SIGTERM with a running
# job must cancel it through the stop seam and exit 0 inside the budget.
go test -race ./internal/serve/
go test -run 'TestServeSubmitResultAndDrain|TestServeDrainCancelsRunningJob' ./cmd/tdserve/

# Bench smoke: one iteration of every benchmark, so the harness itself (and
# the alloc-free fast paths it pins down) cannot silently rot. Numbers from
# -benchtime=1x are meaningless; tracked measurements come from cmd/tdbench.
go test -run '^$' -bench . -benchmem -benchtime 1x .

# Benchmark regression gate: check the *committed* BENCH_simcore.json against
# the thresholds in cmd/tdbench (SimulatedWeek allocation ceiling and <=20%
# events/sec drop vs its "previous" entry; SimulatedWeekSteady must record
# 0 allocs/op). No benchmarks run here — a single CI run's wall time is
# exactly the noise the tracked -count medians filter out, so the gate holds
# the reviewed artifact, not the machine of the day.
go run ./cmd/tdbench -gate

# Fuzz smoke: a few seconds of each native fuzz target. Regression corpus
# entries under testdata/fuzz always run as part of `go test` above; this
# additionally exercises fresh random inputs.
go test -fuzz=FuzzConnDeliver -fuzztime=5s ./internal/tcp/
go test -fuzz=FuzzScheduleParse -fuzztime=5s ./internal/rdcn/
go test -fuzz=FuzzFlowSizeCDF -fuzztime=5s ./internal/workload/
go test -fuzz=FuzzShardLookahead -fuzztime=5s ./internal/sim/
