#!/bin/sh
# Tier-1 gate: format, vet, lint, build, and test the whole module. The -race
# run matters for internal/trace, whose tracer is documented as safe for
# concurrent Emit.
set -eux

# gofmt -l prints offending files and exits 0, so fail on non-empty output.
test -z "$(gofmt -l . | tee /dev/stderr)"

go vet ./...

# tdlint enforces the contracts the compiler cannot see: determinism, RFC 1982
# sequence arithmetic, hook nil-safety, trace categories, metric naming, and
# causal-span Begin/End pairing. Exit 1 = findings, exit 2 = load failure;
# either fails the gate.
go run ./cmd/tdlint ./...

go build ./...

# Full suite with per-package coverage; the profile and its per-package
# summary are CI artifacts (kept out of git via .gitignore).
mkdir -p artifacts
go test -race -coverprofile=artifacts/cover.out ./...
go tool cover -func=artifacts/cover.out | tee artifacts/coverage.txt

# Sweep gate: the parallel experiment runner must stay race-clean and
# bit-identical to the sequential path (goroutines are legal only in
# internal/experiments; the simulation core below it is single-threaded).
go test -race -run TestSweepParallelMatchesSequential ./internal/experiments/

# Progress-reporter gate: the live meters are read by a wall-clock goroutine
# while the simulation writes them, so the obs package must stay race-clean
# under concurrent Line/FlowStarted/FlowDone against a running loop.
go test -race -run 'TestMeterConcurrentReads|TestReporter' ./internal/obs/

# Golden-figure regression gate under the race detector: figure orderings,
# goodput bands, the 8-rack determinism trace, the workload sweep parity
# check, and the conservation property suite.
go test -race -run 'TestGolden|TestConservation' ./internal/experiments/

# Service-lifecycle gate: the serve package is the one place where goroutines,
# wall clocks, and shared mutable job state meet, so its admission / retry /
# panic-isolation / drain tests must stay race-clean. The cmd/tdserve run is
# the shutdown-drain smoke against the real binary: SIGTERM with a running
# job must cancel it through the stop seam and exit 0 inside the budget.
go test -race ./internal/serve/
go test -run 'TestServeSubmitResultAndDrain|TestServeDrainCancelsRunningJob' ./cmd/tdserve/

# Bench smoke: one iteration of every benchmark, so the harness itself (and
# the alloc-free fast paths it pins down) cannot silently rot. Numbers from
# -benchtime=1x are meaningless; tracked measurements come from cmd/tdbench.
go test -run '^$' -bench . -benchmem -benchtime 1x .

# Fuzz smoke: a few seconds of each native fuzz target. Regression corpus
# entries under testdata/fuzz always run as part of `go test` above; this
# additionally exercises fresh random inputs.
go test -fuzz=FuzzConnDeliver -fuzztime=5s ./internal/tcp/
go test -fuzz=FuzzScheduleParse -fuzztime=5s ./internal/rdcn/
go test -fuzz=FuzzFlowSizeCDF -fuzztime=5s ./internal/workload/
