#!/bin/sh
# Tier-1 gate: vet, build, and test the whole module. The -race run matters
# for internal/trace, whose tracer is documented as safe for concurrent Emit.
set -eux

go vet ./...
go build ./...
go test -race ./...

# Fuzz smoke: a few seconds of each native fuzz target. Regression corpus
# entries under testdata/fuzz always run as part of `go test` above; this
# additionally exercises fresh random inputs.
go test -fuzz=FuzzConnDeliver -fuzztime=5s ./internal/tcp/
go test -fuzz=FuzzScheduleParse -fuzztime=5s ./internal/rdcn/
