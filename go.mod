module github.com/rdcn-net/tdtcp

go 1.24
