// Package tdtcp is a pure-Go reproduction of "Time-division TCP for
// Reconfigurable Data Center Networks" (SIGCOMM 2022): the TDTCP transport
// (per-TDN congestion state over a unified sequence space), the baselines it
// is evaluated against (CUBIC, DCTCP, reTCP, MPTCP with a tdm_schd
// scheduler), and a deterministic discrete-event emulation of the hybrid
// electrical/optical data-center network the paper measures on.
//
// # Quick start
//
//	loop := tdtcp.NewLoop(1)
//	net, _ := tdtcp.NewNetwork(loop, tdtcp.DefaultNetworkConfig())
//	flow, _ := tdtcp.BuildFlow(loop, net, 0, tdtcp.TDTCP, tdtcp.FlowOptions{})
//	net.Start(tdtcp.Time(10 * tdtcp.Millisecond))
//	flow.Start(-1) // stream forever
//	loop.RunUntil(tdtcp.Time(10 * tdtcp.Millisecond))
//	fmt.Println(flow.Delivered(), "bytes delivered")
//
// Or reproduce a whole paper figure:
//
//	fig, _ := tdtcp.Fig7(tdtcp.FigureOptions{})
//	fmt.Print(fig.Render())
//
// The heavy lifting lives in the internal packages (sim, netem, rdcn, tcp,
// cc, core, mptcp, experiments); this package re-exports the surface a
// downstream user needs.
package tdtcp

import (
	"io"
	"time"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/invariant"
	"github.com/rdcn-net/tdtcp/internal/mptcp"
	"github.com/rdcn-net/tdtcp/internal/obs"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/stats"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
	"github.com/rdcn-net/tdtcp/internal/workload"
)

// Simulation primitives.
type (
	// Loop is the deterministic discrete-event simulation loop.
	Loop = sim.Loop
	// Time is virtual time in nanoseconds since simulation start.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Dur
	// Rate is a link bandwidth.
	Rate = sim.Rate
)

// Re-exported units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second

	Kbps = sim.Kbps
	Mbps = sim.Mbps
	Gbps = sim.Gbps
)

// NewLoop returns a simulation loop seeded deterministically.
func NewLoop(seed int64) *Loop { return sim.NewLoop(seed) }

// Network model.
type (
	// Network is the two-rack hybrid RDCN.
	Network = rdcn.Network
	// NetworkConfig assembles a Network.
	NetworkConfig = rdcn.Config
	// Schedule is the cyclic day/night/week optical schedule.
	Schedule = rdcn.Schedule
	// ScheduleSlot is one schedule entry (TDN or night).
	ScheduleSlot = rdcn.Slot
	// TDNParams is one time-division network's rate and one-way delay.
	TDNParams = rdcn.TDNParams
	// NotifyProfile models TDN-change notification latency (§5.4).
	NotifyProfile = rdcn.NotifyProfile
	// PreChange is the retcpdyn advance buffer-resize support.
	PreChange = rdcn.PreChange
	// NetworkHost is an end host attached to a rack.
	NetworkHost = rdcn.Host
)

// NightTDN marks a reconfiguration blackout slot in a Schedule.
const NightTDN = rdcn.NightTDN

// NewNetwork assembles a network from cfg.
func NewNetwork(loop *Loop, cfg NetworkConfig) (*Network, error) { return rdcn.New(loop, cfg) }

// DefaultNetworkConfig is the paper's §5.1 testbed configuration.
func DefaultNetworkConfig() NetworkConfig { return rdcn.DefaultConfig() }

// HybridWeek builds the packet/optical schedule of §5.1.
func HybridWeek(packetDays int, day, night Duration) *Schedule {
	return rdcn.HybridWeek(packetDays, day, night)
}

// NewSchedule validates an arbitrary cyclic schedule.
func NewSchedule(slots []ScheduleSlot) (*Schedule, error) { return rdcn.NewSchedule(slots) }

// ParseSchedule parses the compact schedule syntax, e.g.
// "6x(0:180us,-:20us),1:180us,-:20us" for the paper's hybrid week.
func ParseSchedule(spec string) (*Schedule, error) { return rdcn.ParseSchedule(spec) }

// OptimizedNotify and UnoptimizedNotify are the §5.4 notification profiles.
func OptimizedNotify() NotifyProfile { return rdcn.OptimizedNotify() }

// UnoptimizedNotify is the baseline (push-model, uncached) profile.
func UnoptimizedNotify() NotifyProfile { return rdcn.UnoptimizedNotify() }

// Transport.
type (
	// Conn is a single TCP endpoint (sender and/or receiver).
	Conn = tcp.Conn
	// ConnConfig parameterizes a Conn.
	ConnConfig = tcp.Config
	// ConnStats is the per-connection instrumentation bundle.
	ConnStats = tcp.Stats
	// PathState is one per-TDN state set (§3.1).
	PathState = tcp.PathState
	// TDTCPPolicy is the paper's per-TDN multiplexing engine.
	TDTCPPolicy = core.TDTCP
	// TDTCPOptions toggles individual TDTCP mechanisms (ablations).
	TDTCPOptions = core.Options
	// MPTCPConn is a multipath connection with a tdm_schd scheduler.
	MPTCPConn = mptcp.Conn
	// MPTCPConfig parameterizes an MPTCPConn.
	MPTCPConfig = mptcp.Config
	// Segment is the wire packet (Fig. 5 formats).
	Segment = packet.Segment
	// CCAlgorithm is a congestion-control algorithm instance.
	CCAlgorithm = cc.Algorithm
)

// NewConn constructs a TCP endpoint; out transmits serialized segments.
func NewConn(loop *Loop, cfg ConnConfig, out func(*Segment)) *Conn {
	return tcp.NewConn(loop, cfg, out)
}

// NewTDTCPPolicy returns the TDTCP policy for numTDNs time-division
// networks; pass it as ConnConfig.Policy together with
// ConnConfig.NumTDNs=numTDNs.
func NewTDTCPPolicy(numTDNs int, opts TDTCPOptions) *TDTCPPolicy {
	return core.New(numTDNs, opts)
}

// NewMPTCP constructs a multipath endpoint with one subflow per out.
func NewMPTCP(loop *Loop, cfg MPTCPConfig, outs []func(*Segment)) *MPTCPConn {
	return mptcp.New(loop, cfg, outs)
}

// ParseSegment decodes wire bytes into s (gopacket-style reusable decode).
func ParseSegment(b []byte, s *Segment) error { return packet.Parse(b, s) }

// CC algorithm constructors.
func NewCubicCC() CCAlgorithm { return cc.NewCubic() }

// NewRenoCC returns a NewReno instance.
func NewRenoCC() CCAlgorithm { return cc.NewReno() }

// NewDCTCPCC returns a DCTCP instance.
func NewDCTCPCC() CCAlgorithm { return cc.NewDCTCP() }

// NewReTCPCC returns a reTCP instance with ramp factor alpha.
func NewReTCPCC(alpha float64) CCAlgorithm { return cc.NewReTCP(alpha) }

// Experiments.
type (
	// Variant names a transport under test ("tdtcp", "cubic", …).
	Variant = experiments.Variant
	// Flow is a ready-wired sender/receiver pair on a Network.
	Flow = experiments.Flow
	// FlowOptions tweaks flow construction.
	FlowOptions = experiments.FlowOptions
	// RunConfig fully specifies one experiment run.
	RunConfig = experiments.RunConfig
	// Scenario selects network conditions (Hybrid, BandwidthOnly, …).
	Scenario = experiments.Scenario
	// Result carries one run's measurements.
	Result = experiments.Result
	// SweepResult pairs one sweep cell's config with its outcome.
	SweepResult = experiments.SweepResult
	// Figure is a reproduced paper figure.
	Figure = experiments.Figure
	// FigureOptions scales a figure reproduction.
	FigureOptions = experiments.Options
	// Series is a labeled time series / CDF trace.
	Series = stats.Series
	// CDF is an empirical distribution.
	CDF = stats.CDF
)

// The transports evaluated in the paper.
const (
	Cubic    = experiments.Cubic
	DCTCP    = experiments.DCTCP
	Reno     = experiments.Reno
	ReTCP    = experiments.ReTCP
	ReTCPDyn = experiments.ReTCPDyn
	MPTCP    = experiments.MPTCP
	TDTCP    = experiments.TDTCP
)

// AllVariants lists every transport in the paper's Fig. 7 legend order.
var AllVariants = experiments.AllVariants

// BuildFlow wires one flow of the given variant between host i of rack 0
// and host i of rack 1.
func BuildFlow(loop *Loop, net *Network, i int, v Variant, opt FlowOptions) (*Flow, error) {
	return experiments.BuildFlow(loop, net, i, v, opt)
}

// Run executes one fully-specified experiment.
func Run(cfg RunConfig) (*Result, error) { return experiments.Run(cfg) }

// ErrRunCancelled is the sentinel wrapped by Run and RunWorkload when the
// configured RunConfig.Stop seam requests cancellation before the horizon.
// A cancelled run's trace is a byte-identical prefix of the uncancelled
// run's (the seam is polled between events and never perturbs results).
var ErrRunCancelled = experiments.ErrCancelled

// SweepMatrix expands base over variants × seeds in variant-major order.
func SweepMatrix(base RunConfig, variants []Variant, seeds []int64) []RunConfig {
	return experiments.Matrix(base, variants, seeds)
}

// Sweep executes every config (workers in parallel; <=1 sequential) and
// returns results in input order.
func Sweep(cfgs []RunConfig, workers int) []SweepResult { return experiments.Sweep(cfgs, workers) }

// Flow workloads and FCT accounting (multi-rack evaluation).
type (
	// WorkloadConfig specifies an open-loop flow workload run.
	WorkloadConfig = experiments.WorkloadConfig
	// WorkloadResult carries one workload run's outcome.
	WorkloadResult = experiments.WorkloadResult
	// WorkloadSweepResult pairs one workload sweep cell with its outcome.
	WorkloadSweepResult = experiments.WorkloadSweepResult
	// FlowSizeCDF is an empirical flow-size distribution.
	FlowSizeCDF = workload.FlowSizeCDF
	// FCT collects flow completion times by size bucket.
	FCT = stats.FCT
	// FCTSummary condenses one FCT size bucket.
	FCTSummary = stats.FCTSummary
)

// RunWorkload executes one open-loop flow-workload experiment.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) { return experiments.RunWorkload(cfg) }

// SweepWorkload executes every workload config (workers in parallel) and
// returns results in input order.
func SweepWorkload(cfgs []WorkloadConfig, workers int) []WorkloadSweepResult {
	return experiments.SweepWorkload(cfgs, workers)
}

// WebSearchCDF is the web-search flow-size distribution (DCTCP paper).
func WebSearchCDF() *FlowSizeCDF { return workload.WebSearch() }

// DataMiningCDF is the data-mining flow-size distribution (VL2 paper).
func DataMiningCDF() *FlowSizeCDF { return workload.DataMining() }

// ParseFlowSizeCDF parses a "size:frac size:frac ..." distribution table.
func ParseFlowSizeCDF(name, text string) (*FlowSizeCDF, error) {
	return workload.ParseFlowSizeCDF(name, text)
}

// FlowSizeCDFByName resolves a named built-in distribution ("websearch",
// "datamining").
func FlowSizeCDFByName(name string) (*FlowSizeCDF, error) { return workload.ByName(name) }

// Rotor topology helpers (multi-rack RDCN).
func RotorWeek(nRacks, packetDays int, day, night Duration) *Schedule {
	return rdcn.RotorWeek(nRacks, packetDays, day, night)
}

// RotorPeer returns the rack matched with rack on optical day (1-based);
// -1 when the rack sits out (odd rack counts).
func RotorPeer(nRacks, day, rack int) int { return rdcn.RotorPeer(nRacks, day, rack) }

// NumMatchings is the optical-day count of an n-rack rotor week.
func NumMatchings(n int) int { return rdcn.NumMatchings(n) }

// Scenario constructors (§5.2's three settings).
func HybridScenario() Scenario { return experiments.Hybrid() }

// BandwidthOnlyScenario varies only the rate between TDNs (Fig. 8).
func BandwidthOnlyScenario() Scenario { return experiments.BandwidthOnly() }

// LatencyOnlyScenario varies only the latency (Figs. 9, 14).
func LatencyOnlyScenario(rate Rate) Scenario { return experiments.LatencyOnly(rate) }

// MultiRackScenario scales the hybrid setting to an n-rack rotor RDCN.
func MultiRackScenario(n int) Scenario { return experiments.MultiRack(n) }

// Figure reproductions, one per paper figure (see DESIGN.md's index).
func Fig2(o FigureOptions) (*Figure, error) { return experiments.Fig2(o) }

// Fig7 reproduces the paper's main comparison (Fig. 7).
func Fig7(o FigureOptions) (*Figure, error) { return experiments.Fig7(o) }

// Fig8 reproduces the bandwidth-difference-only comparison.
func Fig8(o FigureOptions) (*Figure, error) { return experiments.Fig8(o) }

// Fig9 reproduces the latency-difference-only comparison.
func Fig9(o FigureOptions) (*Figure, error) { return experiments.Fig9(o) }

// Fig10 reproduces the reordering/retransmission CDFs.
func Fig10(o FigureOptions) (*Figure, error) { return experiments.Fig10(o) }

// Fig11 reproduces the notification-optimization comparison.
func Fig11(o FigureOptions) (*Figure, error) { return experiments.Fig11(o) }

// Fig13 reproduces the appendix VOQ-occupancy figure for CUBIC and MPTCP.
func Fig13(o FigureOptions) (*Figure, error) { return experiments.Fig13(o) }

// Fig14 reproduces the appendix latency-only VOQ-occupancy figure.
func Fig14(o FigureOptions) (*Figure, error) { return experiments.Fig14(o) }

// Headline reproduces the abstract's throughput claims.
func Headline(o FigureOptions) (*Figure, error) { return experiments.Headline(o) }

// Ablation quantifies each TDTCP mechanism's contribution.
func Ablation(o FigureOptions) (*Figure, error) { return experiments.Ablation(o) }

// FigRotor compares the rotor-capable variants on an N-rack fabric.
func FigRotor(o FigureOptions) (*Figure, error) { return experiments.FigRotor(o) }

// FigMultiRack runs the open-loop flow workload on an N-rack fabric.
func FigMultiRack(o FigureOptions) (*Figure, error) { return experiments.FigMultiRack(o) }

// Figures maps figure IDs ("fig2" … "headline", "ablation") to runners.
var Figures = experiments.Figures

// Observability (see DESIGN.md "Observability").
type (
	// Tracer is the structured event tracer; a nil *Tracer is a valid,
	// zero-overhead disabled tracer.
	Tracer = trace.Tracer
	// TraceEvent is one traced event (JSONL line).
	TraceEvent = trace.Event
	// TraceCategory is the event-category bitmask.
	TraceCategory = trace.Category
	// MetricsRegistry collects named counters and gauges.
	MetricsRegistry = trace.Registry
	// Histogram is a zero-allocation log-linear latency/occupancy histogram
	// (see MetricsRegistry.Hist).
	Histogram = trace.Histogram
	// SpanID names one causal span within a run (Tracer.BeginSpan/EndSpan).
	SpanID = trace.SpanID
	// FlightRecorder is the always-on fixed-size ring of recent trace
	// events, dumped on invariant/conservation failures and panics.
	FlightRecorder = trace.Flight
	// ProgressMeter is a lock-free live-progress tap on a run (events/sec,
	// sim/wall ratio, flows); pure observer, wall-clock based.
	ProgressMeter = obs.Meter
	// ProgressReporter prints a meter's status line periodically.
	ProgressReporter = obs.Reporter
	// SweepProgressMeter tracks a parallel sweep's per-worker status; it
	// implements SweepObserver.
	SweepProgressMeter = obs.SweepMeter
	// SweepObserver receives per-cell callbacks from SweepWithObserver.
	SweepObserver = experiments.SweepObserver
)

// Trace categories, one bit per subsystem.
const (
	TraceSim   = trace.CatSim
	TraceTCP   = trace.CatTCP
	TraceCC    = trace.CatCC
	TraceTDN   = trace.CatTDN
	TraceVOQ   = trace.CatVOQ
	TraceRDCN  = trace.CatRDCN
	TraceFault = trace.CatFault
	TraceAll   = trace.CatAll
)

// NewTracer returns a tracer streaming JSONL events to w.
func NewTracer(w io.Writer, mask TraceCategory) *Tracer { return trace.New(w, mask) }

// NewRingTracer returns a tracer retaining the last n events in memory.
func NewRingTracer(n int, mask TraceCategory) *Tracer { return trace.NewRing(n, mask) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return trace.NewRegistry() }

// ParseTraceCategories parses a comma-separated category list ("tcp,cc" or
// "all") into a mask.
func ParseTraceCategories(s string) (TraceCategory, error) { return trace.ParseCategories(s) }

// ChromeTrace converts JSONL trace events (r) to Chrome trace-viewer JSON (w).
func ChromeTrace(r io.Reader, w io.Writer) error { return trace.Chrome(r, w) }

// Flight-recorder defaults (ring length, recorded categories).
const (
	DefaultFlightLen  = trace.DefaultFlightLen
	DefaultFlightCats = trace.DefaultFlightCats
)

// NewFlightRecorder returns a ring recorder keeping the last n events whose
// category is in mask.
func NewFlightRecorder(n int, mask TraceCategory) *FlightRecorder { return trace.NewFlight(n, mask) }

// NewProgressMeter returns an empty live-progress meter (RunConfig.Meter).
func NewProgressMeter() *ProgressMeter { return obs.NewMeter() }

// NewProgressReporter prints line() to w every interval (<= 0 = 1s) once
// started; Stop flushes a final line.
func NewProgressReporter(w io.Writer, every time.Duration, line func() string) *ProgressReporter {
	return obs.NewReporter(w, every, line)
}

// NewSweepProgressMeter sizes a sweep meter for total cells over workers.
func NewSweepProgressMeter(total, workers int) *SweepProgressMeter {
	return obs.NewSweepMeter(total, workers)
}

// SweepWithObserver is Sweep with per-cell progress callbacks.
func SweepWithObserver(cfgs []RunConfig, workers int, o SweepObserver) []SweepResult {
	return experiments.SweepWithObserver(cfgs, workers, o)
}

// SweepWorkloadWithObserver is SweepWorkload with per-cell callbacks.
func SweepWorkloadWithObserver(cfgs []WorkloadConfig, workers int, o SweepObserver) []WorkloadSweepResult {
	return experiments.SweepWorkloadWithObserver(cfgs, workers, o)
}

// Fault injection and invariant checking (see DESIGN.md "Fault model &
// graceful degradation").
type (
	// FaultPlan is a per-run fault-injection plan (rates, bursts, flaps).
	FaultPlan = fault.Plan
	// FaultInjector drives a FaultPlan deterministically against a Network.
	FaultInjector = fault.Injector
	// FaultStats counts the faults an injector actually delivered.
	FaultStats = fault.Stats
	// InvariantChecker revalidates connection and network invariants after
	// every simulation event.
	InvariantChecker = invariant.Checker
	// InvariantViolation is one recorded invariant failure.
	InvariantViolation = invariant.Violation
)

// ParseFaultPlan parses the -fault flag syntax, e.g.
// "nloss=0.1,drop=0.01,flaps=2".
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// NewFaultInjector returns an injector for plan, seeded independently of the
// loop (same loop seed + same fault seed = byte-identical runs).
func NewFaultInjector(loop *Loop, plan FaultPlan, seed int64) *FaultInjector {
	return fault.New(loop, plan, seed)
}

// NewInvariantChecker hooks a checker into loop's post-event point.
func NewInvariantChecker(loop *Loop) *InvariantChecker { return invariant.New(loop) }

// Analytic references (§2.2).
func OptimalBytes(sch *Schedule, tdns []TDNParams, t Time) int64 {
	return workload.OptimalBytes(sch, tdns, t)
}

// PacketOnlyBytes is the §2.2 packet-network-only reference.
func PacketOnlyBytes(rate Rate, t Time) int64 { return workload.PacketOnlyBytes(rate, t) }

// OptimalGbps is the long-run average rate of the optimal reference.
func OptimalGbps(sch *Schedule, tdns []TDNParams) float64 { return workload.OptimalGbps(sch, tdns) }
