// Command tdlint runs the repository's static analyzer suite over Go package
// patterns and reports contract violations the compiler cannot see:
// determinism, RFC 1982 sequence arithmetic, hook nil-safety, trace
// categories, metric naming, causal-span pairing, concurrency discipline,
// hot-path allocation freedom, sim-time unit hygiene, and enum-switch
// exhaustiveness (see internal/lint).
//
// Usage:
//
//	tdlint [-json] [-checks list] [-list] [-C dir] [packages...]
//
// -list prints the registered checks and exits; an unknown name in -checks
// is an invocation error naming the valid set. Exit status is 0 when the
// tree is clean, 1 when findings are reported, and 2 when the packages fail
// to load or the invocation is invalid.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rdcn-net/tdtcp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := fs.Bool("list", false, "list the registered checks and exit")
	dir := fs.String("C", ".", "module directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdlint [flags] [packages]\n\nChecks:\n")
		for _, c := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listFlag {
		for _, c := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := lint.Select(*checksFlag)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prog, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := lint.Run(prog, checks)
	if *jsonOut {
		if err := lint.WriteJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		lint.WriteText(stdout, diags)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
