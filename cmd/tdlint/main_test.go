package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles tdlint once into a temp dir so the exit-code contract
// is asserted against the real process boundary, not an in-process shim.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tdlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule materialises a throwaway module from path→content pairs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runLint(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return stdout.String(), stderr.String(), code
}

const goMod = "module lintcheck.example/m\n\ngo 1.24\n"

// TestExitCodeContract pins the CLI's documented contract: 0 clean, 1 with
// findings, 2 on load failure.
func TestExitCodeContract(t *testing.T) {
	bin := buildBinary(t)

	t.Run("clean", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":       goMod,
			"pkg/clean.go": "package pkg\n\nfunc Add(a, b int) int { return a + b }\n",
		})
		stdout, stderr, code := runLint(t, bin, "-C", dir, "./...")
		if code != 0 {
			t.Fatalf("clean tree: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		if stdout != "" {
			t.Errorf("clean tree printed findings: %s", stdout)
		}
	})

	t.Run("findings", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod": goMod,
			"internal/tcp/conn.go": "package tcp\n\n" +
				"func stale(seq, rcvNxt uint32) bool { return seq < rcvNxt }\n",
		})
		stdout, stderr, code := runLint(t, bin, "-C", dir, "./...")
		if code != 1 {
			t.Fatalf("tree with findings: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		if !strings.Contains(stdout, "[seqarith]") {
			t.Errorf("expected a seqarith finding, got: %s", stdout)
		}
	})

	t.Run("load-error", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":        goMod,
			"pkg/broken.go": "package pkg\n\nfunc oops( {\n",
		})
		stdout, stderr, code := runLint(t, bin, "-C", dir, "./...")
		if code != 2 {
			t.Fatalf("broken tree: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		if stderr == "" {
			t.Error("load error should be reported on stderr")
		}
	})

	t.Run("bad-check-name", func(t *testing.T) {
		_, stderr, code := runLint(t, bin, "-checks", "nosuch", ".")
		if code != 2 {
			t.Fatalf("unknown check: exit %d, stderr: %s", code, stderr)
		}
		// The error must name the valid set so the misspelling is a
		// one-round-trip fix.
		for _, name := range []string{"determinism", "concurrency", "hotpath", "simtime", "exhaustive"} {
			if !strings.Contains(stderr, name) {
				t.Errorf("unknown-check error does not list %q: %s", name, stderr)
			}
		}
	})
}

// TestListFlag asserts -list prints every registered check to stdout and
// exits 0 without loading any packages.
func TestListFlag(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runLint(t, bin, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d, stderr: %s", code, stderr)
	}
	for _, name := range []string{
		"determinism", "seqarith", "nilhook", "tracecat", "metricname",
		"spanpair", "concurrency", "hotpath", "simtime", "exhaustive",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

// TestJSONOutput asserts -json emits a machine-readable array with the fields
// CI consumes.
func TestJSONOutput(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/tcp/conn.go": "package tcp\n\n" +
			"func stale(seq, rcvNxt uint32) bool { return seq < rcvNxt }\n",
	})
	stdout, stderr, code := runLint(t, bin, "-json", "-C", dir, "./...")
	if code != 1 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Check != "seqarith" || findings[0].Line != 3 {
		t.Errorf("unexpected findings: %+v", findings)
	}
}

// TestChecksSubset asserts -checks limits the run: the seqarith violation is
// invisible to a determinism-only run.
func TestChecksSubset(t *testing.T) {
	bin := buildBinary(t)
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/tcp/conn.go": "package tcp\n\n" +
			"func stale(seq, rcvNxt uint32) bool { return seq < rcvNxt }\n",
	})
	stdout, stderr, code := runLint(t, bin, "-checks", "determinism", "-C", dir, "./...")
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}
