// Command tdserve runs the simulator as a long-lived scenario service: an
// HTTP daemon with a bounded worker pool, per-job deadlines, panic
// isolation, retries, and a deterministic result cache keyed by (canonical
// spec hash, seed).
//
// Usage:
//
//	tdserve -addr :8080                  # serve the API
//	tdserve -addr :0                     # pick a free port (printed on stdout)
//	tdserve -workers 4 -queue 32         # pool size and admission bound
//	tdserve -deadline 30s -drain 20s     # default job deadline, SIGTERM budget
//
// API (see internal/serve for the full contract):
//
//	POST /jobs              submit a scenario spec (JSON)
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  result; ?wait=10s blocks until terminal
//	POST /jobs/{id}/cancel  cooperative cancel
//	GET  /jobs              list jobs
//	GET  /healthz /readyz   liveness / readiness
//	GET  /metrics           serve.* counters and histograms (JSON)
//
// On SIGTERM or SIGINT the server drains: submissions get 503, queued and
// running jobs get half the -drain budget to finish, then are cancelled
// through the simulator's cooperative stop seam; the process exits 0 on a
// clean drain and 1 if the budget is exceeded.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rdcn-net/tdtcp/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr     = flag.String("addr", ":8080", "listen address (':0' picks a free port, printed on stdout)")
		workers  = flag.Int("workers", 0, "worker-pool size: max concurrent simulations (0 = default 2)")
		queue    = flag.Int("queue", 0, "admission queue depth; beyond workers+queue, submits get 429 (0 = default 16)")
		deadline = flag.Duration("deadline", 0, "default per-job wall-clock deadline when the spec sets none (0 = default 60s)")
		retries  = flag.Int("retries", 0, "max retries of transiently-failed jobs (0 = default 2, -1 = none)")
		cache    = flag.Int("cache", 0, "result-cache capacity in entries (0 = default 128, -1 = disable)")
		drain    = flag.Duration("drain", 30*time.Second, "shutdown budget on SIGTERM: half for graceful finish, then cancel")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tdserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	if *drain <= 0 {
		fmt.Fprintln(os.Stderr, "tdserve: -drain must be positive")
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdserve: %v\n", err)
		return 1
	}

	s := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultDeadline: *deadline,
		MaxRetries:      *retries,
		CacheCap:        *cache,
	})
	hs := &http.Server{Handler: serve.Handler(s)}

	// The address line is the startup handshake: tests (and scripts) listen
	// on :0 and parse the actual port from here.
	fmt.Printf("tdserve listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "tdserve: %v: draining (budget %v)\n", sig, *drain)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "tdserve: %v\n", err)
		return 1
	}

	// Drain order: stop job intake first so /readyz flips and queued work
	// finishes, then close the HTTP listener. In-flight result waits survive
	// until the HTTP shutdown deadline.
	code := 0
	if err := s.Shutdown(*drain); err != nil {
		fmt.Fprintf(os.Stderr, "tdserve: %v\n", err)
		code = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "tdserve: http shutdown: %v\n", err)
		code = 1
	}
	if code == 0 {
		fmt.Println("tdserve: drained cleanly")
	}
	return code
}
