package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildBinary compiles tdserve once into a temp dir so drain and exit-code
// behavior is asserted against the real process boundary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tdserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startServer launches tdserve on a free port and returns its base URL, the
// running command, and a stderr capture.
func startServer(t *testing.T, bin string, extraArgs ...string) (string, *exec.Cmd, *strings.Builder) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	// First stdout line is the startup handshake with the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	line := sc.Text()
	const prefix = "tdserve listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	go func() { // keep draining stdout so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()
	return "http://" + strings.TrimPrefix(line, prefix), cmd, &stderr
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m map[string]any
	_ = json.Unmarshal(raw, &m)
	return resp.StatusCode, m
}

// TestServeSubmitResultAndDrain is the shutdown-drain smoke against the real
// binary: start, submit a real (tiny) scenario, wait for its result, hit the
// cache with a resubmit, SIGTERM, and require a clean exit 0.
func TestServeSubmitResultAndDrain(t *testing.T) {
	bin := buildBinary(t)
	base, cmd, stderr := startServer(t, bin, "-workers", "2", "-drain", "30s")

	if code, m := getJSON(t, base+"/healthz"); code != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, m)
	}

	spec := `{"kind":"run","variant":"tdtcp","flows":2,"warmup_weeks":1,"measure_weeks":1,"seed":7}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d\n%s", resp.StatusCode, raw)
	}
	var sub struct {
		Disposition string `json:"disposition"`
		Job         struct {
			ID string `json:"id"`
		} `json:"job"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	code, m := getJSON(t, fmt.Sprintf("%s/jobs/%s/result?wait=30s", base, sub.Job.ID))
	if code != 200 || m["state"] != "done" {
		t.Fatalf("result: %d %v", code, m)
	}
	out := m["outcome"].(map[string]any)
	if out["goodput_gbps"].(float64) <= 0 {
		t.Fatalf("outcome: %v", out)
	}

	// Identical resubmission must be served from the cache without running.
	resp, err = http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var hit struct {
		Disposition string `json:"disposition"`
	}
	if err := json.Unmarshal(raw, &hit); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hit.Disposition != "cache_hit" {
		t.Fatalf("resubmit: %d disposition=%q\n%s", resp.StatusCode, hit.Disposition, raw)
	}

	// SIGTERM: drain must complete and the process must exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("tdserve exited dirty: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("tdserve did not exit after SIGTERM\nstderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Errorf("stderr missing drain notice: %s", stderr.String())
	}
}

// TestServeDrainCancelsRunningJob: SIGTERM with a running never-ending job
// (huge horizon) must still exit 0 within the drain budget, cancelling the
// job through the simulator's stop seam.
func TestServeDrainCancelsRunningJob(t *testing.T) {
	bin := buildBinary(t)
	base, cmd, stderr := startServer(t, bin, "-workers", "1", "-drain", "10s")

	// ~hours of simulated time: cannot finish; the drain must cut it. The
	// horizon lives in the warmup leg so the run holds no growing sampler
	// state while it waits to be cancelled.
	spec := `{"kind":"run","variant":"cubic","flows":8,"warmup_weeks":100000,"measure_weeks":1,"seed":3}`
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	start := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("drain with running job exited dirty: %v\nstderr: %s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("drain did not complete\nstderr: %s", stderr.String())
	}
	if d := time.Since(start); d > 20*time.Second {
		t.Fatalf("drain took %v, budget was 10s", d)
	}
}

// TestServeUsageErrors pins the exit-2 usage contract.
func TestServeUsageErrors(t *testing.T) {
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"positional"},
		{"-drain", "-1s"},
	} {
		cmd := exec.Command(bin, args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: err=%v, want exit 2 (stderr: %s)", args, err, stderr.String())
		}
	}
}

// TestServeBadAddrExits1: an unbindable address is a runtime error, exit 1.
func TestServeBadAddrExits1(t *testing.T) {
	bin := buildBinary(t)
	cmd := exec.Command(bin, "-addr", "256.0.0.1:99999")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("bad addr: err=%v, want exit 1 (stderr: %s)", err, stderr.String())
	}
}
