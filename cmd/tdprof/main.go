// Command tdprof renders profile views from tdsim's observability output:
// span statistics and per-flow causal timelines from JSONL traces, and
// histogram summaries from metrics dumps.
//
//	tdsim -run tdtcp -trace out.jsonl -metrics out.json
//	tdprof -spans out.jsonl          # duration stats per span name
//	tdprof -flow 3 out.jsonl         # flow 3's causal span timeline
//	tdprof -hist out.json            # histogram summary table
//
// Exactly one of -spans, -flow, -hist must be chosen. The input is a file
// path or "-" for stdin; all output goes to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

func main() {
	var (
		doSpans = flag.Bool("spans", false, "aggregate span durations per name: count, mean, p50, p90, p99, max")
		flowID  = flag.Int("flow", -2, "print one flow's causal span timeline (span begin/end, duration, parent chain)")
		doHist  = flag.Bool("hist", false, "print the histogram summaries from a -metrics JSON dump")
	)
	flag.Parse()
	input := flag.Arg(0)
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}

	modes := 0
	for _, m := range []bool{*doSpans, *flowID != -2, *doHist} {
		if m {
			modes++
		}
	}
	if modes != 1 || input == "" {
		flag.Usage()
		os.Exit(2)
	}

	in, closeIn, err := openIn(input)
	if err != nil {
		fatal(err)
	}
	defer closeIn()

	switch {
	case *doSpans:
		err = spanStats(in, os.Stdout)
	case *flowID != -2:
		err = flowTimeline(in, os.Stdout, *flowID)
	case *doHist:
		err = histSummary(in, os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func openIn(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// span is one reassembled Begin/End pair (or an unclosed Begin).
type span struct {
	id       int64
	parent   int64
	name     string
	flow     int
	tdn      int
	begin    int64
	end      int64
	a, b     float64
	complete bool
}

// collectSpans reassembles spans from a JSONL trace by span id.
func collectSpans(r io.Reader) (map[int64]*span, []*span, error) {
	byID := make(map[int64]*span)
	var order []*span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var ev trace.Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := trace.ParseLine(line, &ev); err != nil {
			return nil, nil, fmt.Errorf("tdprof: bad trace line %q: %w", line, err)
		}
		switch ev.Ph {
		case "B":
			s := &span{id: ev.Span, parent: ev.Parent, name: ev.Name,
				flow: ev.Flow, tdn: ev.TDN, begin: ev.TS}
			byID[ev.Span] = s
			order = append(order, s)
		case "E":
			if s, ok := byID[ev.Span]; ok {
				s.end, s.a, s.b, s.complete = ev.TS, ev.A, ev.B, true
				if ev.TDN != -1 {
					s.tdn = ev.TDN
				}
			}
		}
	}
	return byID, order, sc.Err()
}

// spanStats prints per-name duration aggregates, longest mean first.
func spanStats(r io.Reader, w io.Writer) error {
	_, order, err := collectSpans(r)
	if err != nil {
		return err
	}
	type agg struct {
		name     string
		durs     []int64
		unclosed int
	}
	byName := map[string]*agg{}
	for _, s := range order {
		a := byName[s.name]
		if a == nil {
			a = &agg{name: s.name}
			byName[s.name] = a
		}
		if s.complete {
			a.durs = append(a.durs, s.end-s.begin)
		} else {
			a.unclosed++
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		mi, mj := mean(byName[names[i]].durs), mean(byName[names[j]].durs)
		if mi != mj {
			return mi > mj
		}
		return names[i] < names[j]
	})
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s %10s %9s\n",
		"span", "count", "mean", "p50", "p90", "p99", "max", "unclosed")
	for _, n := range names {
		a := byName[n]
		sort.Slice(a.durs, func(i, j int) bool { return a.durs[i] < a.durs[j] })
		fmt.Fprintf(w, "%-12s %8d %10s %10s %10s %10s %10s %9d\n",
			n, len(a.durs), fmtNs(int64(mean(a.durs))),
			fmtNs(quantile(a.durs, 0.50)), fmtNs(quantile(a.durs, 0.90)),
			fmtNs(quantile(a.durs, 0.99)), fmtNs(quantile(a.durs, 1.0)), a.unclosed)
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "no spans in trace (was it recorded with span-emitting categories?)")
	}
	return nil
}

// flowTimeline prints one flow's spans in begin order, indented by causal
// depth (a span whose parent chain reaches another recorded span nests under
// it, crossing layers: epoch -> notify -> cwnd_swap).
func flowTimeline(r io.Reader, w io.Writer, flow int) error {
	byID, order, err := collectSpans(r)
	if err != nil {
		return err
	}
	depth := func(s *span) int {
		d := 0
		for p := s.parent; p != 0; {
			ps, ok := byID[p]
			if !ok {
				break
			}
			d++
			p = ps.parent
		}
		return d
	}
	n := 0
	for _, s := range order {
		// A flow's timeline includes the network-level ancestors (flow -1)
		// of its own spans only when asked for explicitly via -flow -1.
		if s.flow != flow {
			continue
		}
		n++
		dur := "   (unclosed)"
		if s.complete {
			dur = fmtNs(s.end - s.begin)
		}
		fmt.Fprintf(w, "%12s  %*s%-12s tdn=%-2d span=%-5d", fmtNs(s.begin), 2*depth(s), "", s.name, s.tdn, s.id)
		if s.parent != 0 {
			if ps, ok := byID[s.parent]; ok {
				fmt.Fprintf(w, " parent=%s/%d", ps.name, s.parent)
			} else {
				fmt.Fprintf(w, " parent=%d", s.parent)
			}
		}
		fmt.Fprintf(w, " dur=%s a=%g b=%g\n", dur, s.a, s.b)
	}
	if n == 0 {
		fmt.Fprintf(w, "no spans for flow %d\n", flow)
	}
	return nil
}

// histSummary renders the "histograms" section of a metrics JSON dump as a
// table, sorted by name.
func histSummary(r io.Reader, w io.Writer) error {
	var doc struct {
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P50   int64   `json:"p50"`
			P90   int64   `json:"p90"`
			P99   int64   `json:"p99"`
			Max   int64   `json:"max"`
			Mean  float64 `json:"mean"`
		} `json:"histograms"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("tdprof: parsing metrics JSON: %w", err)
	}
	if len(doc.Histograms) == 0 {
		fmt.Fprintln(w, "no histograms in metrics dump")
		return nil
	}
	names := make([]string, 0, len(doc.Histograms))
	for n := range doc.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s %12s\n", "histogram", "count", "p50", "p90", "p99", "max")
	for _, n := range names {
		h := doc.Histograms[n]
		// _ns-suffixed metrics are durations; everything else prints raw.
		f := func(v int64) string {
			if strings.HasSuffix(n, "_ns") {
				return fmtNs(v)
			}
			return fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(w, "%-24s %10d %12s %12s %12s %12s\n", n, h.Count, f(h.P50), f(h.P90), f(h.P99), f(h.Max))
	}
	return nil
}

func mean(vs []int64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range vs {
		sum += v
	}
	return float64(sum) / float64(len(vs))
}

// quantile returns the q-th quantile of sorted vs (nearest-rank).
func quantile(vs []int64, q float64) int64 {
	if len(vs) == 0 {
		return 0
	}
	i := int(q * float64(len(vs)-1))
	return vs[i]
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(v int64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fus", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdprof:", err)
	os.Exit(1)
}
