package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// sample is a hand-built trace: an epoch span parenting a notify span
// parenting a zero-length cwnd_swap, one completed flow span, and one
// unclosed recovery span.
const sample = `{"ts":0,"cat":"rdcn","name":"epoch","flow":-1,"tdn":1,"a":0,"b":0,"ph":"B","span":1}
{"ts":100,"cat":"rdcn","name":"notify","flow":-1,"tdn":1,"a":0,"b":0,"ph":"B","span":2,"parent":1}
{"ts":5100,"cat":"rdcn","name":"notify","flow":-1,"tdn":1,"a":1,"b":5000,"ph":"E","span":2}
{"ts":5100,"cat":"tdn","name":"cwnd_swap","flow":3,"tdn":1,"a":0,"b":0,"ph":"B","span":3,"parent":2}
{"ts":5100,"cat":"tdn","name":"cwnd_swap","flow":3,"tdn":1,"a":0,"b":12,"ph":"E","span":3}
{"ts":200,"cat":"tcp","name":"flow","flow":3,"tdn":-1,"a":0,"b":0,"ph":"B","span":4}
{"ts":180200,"cat":"tcp","name":"flow","flow":3,"tdn":-1,"a":65536,"b":0,"ph":"E","span":4}
{"ts":9000,"cat":"tcp","name":"recovery","flow":3,"tdn":0,"a":0,"b":0,"ph":"B","span":5}
{"ts":180000,"cat":"rdcn","name":"epoch","flow":-1,"tdn":1,"a":1,"b":0,"ph":"E","span":1}
`

func TestSpanStats(t *testing.T) {
	var out bytes.Buffer
	if err := spanStats(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"epoch", "notify", "cwnd_swap", "flow", "recovery"} {
		if !strings.Contains(s, want) {
			t.Errorf("span stats missing %q:\n%s", want, s)
		}
	}
	// recovery is unclosed: count 0, unclosed 1.
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "recovery") {
			f := strings.Fields(line)
			if f[1] != "0" || f[len(f)-1] != "1" {
				t.Errorf("recovery row should be count=0 unclosed=1: %q", line)
			}
		}
		if strings.HasPrefix(line, "notify ") || strings.HasPrefix(line, "notify\t") {
			if !strings.Contains(line, "5.0us") {
				t.Errorf("notify duration should render as 5.0us: %q", line)
			}
		}
	}
}

func TestFlowTimeline(t *testing.T) {
	var out bytes.Buffer
	if err := flowTimeline(strings.NewReader(sample), &out, 3); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "epoch") {
		t.Errorf("flow 3 timeline leaked network spans:\n%s", s)
	}
	if !strings.Contains(s, "cwnd_swap") || !strings.Contains(s, "parent=notify/2") {
		t.Errorf("timeline missing cwnd_swap with causal parent:\n%s", s)
	}
	if !strings.Contains(s, "(unclosed)") {
		t.Errorf("unclosed recovery span not flagged:\n%s", s)
	}
	// cwnd_swap hangs two levels below the epoch span: indented deeper than
	// the top-level flow span.
	var flowIndent, swapIndent int
	for _, line := range strings.Split(s, "\n") {
		if len(line) < 15 {
			continue
		}
		rest := line[14:] // after the "%12s  " timestamp column
		indent := len(rest) - len(strings.TrimLeft(rest, " "))
		if strings.HasPrefix(strings.TrimLeft(rest, " "), "flow ") {
			flowIndent = indent
		}
		if strings.Contains(line, "cwnd_swap") {
			swapIndent = indent
		}
	}
	if swapIndent <= flowIndent {
		t.Errorf("cwnd_swap (depth 2) not indented past flow (depth 0):\n%s", s)
	}

	out.Reset()
	if err := flowTimeline(strings.NewReader(sample), &out, 7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no spans for flow 7") {
		t.Errorf("empty flow should say so, got %q", out.String())
	}
}

func TestHistSummary(t *testing.T) {
	metrics := `{"counters":{"x":1},"gauges":{},"histograms":{
		"tcp.rtt_tdn0_ns":{"count":100,"p50":98304,"p90":114688,"p99":131072,"max":140000},
		"voq.r0.occ_pkts":{"count":500,"p50":3,"p90":9,"p99":14,"max":16}}}`
	var out bytes.Buffer
	if err := histSummary(strings.NewReader(metrics), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "98.3us") {
		t.Errorf("_ns histogram not rendered as duration:\n%s", s)
	}
	if !strings.Contains(s, "voq.r0.occ_pkts") || strings.Contains(s, "3ns") {
		t.Errorf("non-ns histogram should print raw integers:\n%s", s)
	}
}

// TestCLIUsageExit pins the process contract: no mode or missing input exits
// 2 with usage on stderr.
func TestCLIUsageExit(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "tdprof")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	for _, args := range [][]string{{}, {"-spans"}, {"-spans", "-hist", "x.jsonl"}} {
		cmd := exec.Command(bin, args...)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("args %v: want exit 2, got %v", args, err)
		}
		if !strings.Contains(stderr.String(), "-spans") {
			t.Errorf("args %v: usage missing from stderr: %s", args, stderr.String())
		}
	}
}
