// Command tdtrace post-processes JSONL event traces produced by
// tdsim -trace (or any trace.Tracer):
//
//	tdtrace -summary out.jsonl              # per-category/flow/TDN rollups
//	tdtrace -chrome out.jsonl -o out.json   # Chrome trace-viewer export
//	tdtrace -filter -cat voq,rdcn out.jsonl # select events, emit JSONL
//	tdtrace -filter -flow 3 -from 2ms -to 4ms out.jsonl
//
// Exactly one of -summary, -chrome, -filter must be chosen. The input is a
// file path or "-" for stdin; filtered output and Chrome JSON go to -o
// (default stdout). Chrome exports load in chrome://tracing or
// https://ui.perfetto.dev.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

func main() {
	var (
		doSummary = flag.Bool("summary", false, "print per-category, per-flow and per-TDN rollups")
		doChrome  = flag.Bool("chrome", false, "convert to Chrome trace-viewer JSON")
		doFilter  = flag.Bool("filter", false, "select matching events and re-emit JSONL")
		out       = flag.String("o", "-", "output file ('-' = stdout)")
		topN      = flag.Int("top", 5, "top-N droppers/retransmitters in the summary")

		fCats = flag.String("cat", "", "filter: categories (comma-separated, e.g. 'voq,rdcn')")
		fName = flag.String("name", "", "filter: event name (exact match)")
		fFlow = flag.Int("flow", -2, "filter: flow id (-1 = unlabeled network events)")
		fTDN  = flag.Int("tdn", -2, "filter: TDN label")
		fFrom = flag.String("from", "", "filter: start of time window (e.g. '2ms', '180us', '1500000' ns)")
		fTo   = flag.String("to", "", "filter: end of time window (exclusive)")
	)
	flag.Parse()
	// Go's flag package stops at the first positional argument; accept
	// "tdtrace -chrome out.jsonl -o out.json" by re-parsing what follows
	// the input path.
	input := flag.Arg(0)
	if flag.NArg() > 1 {
		if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
			os.Exit(2)
		}
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}

	modes := 0
	for _, m := range []bool{*doSummary, *doChrome, *doFilter} {
		if m {
			modes++
		}
	}
	if modes != 1 || input == "" {
		flag.Usage()
		os.Exit(2)
	}

	in, closeIn, err := openIn(input)
	if err != nil {
		fatal(err)
	}
	defer closeIn()

	switch {
	case *doChrome:
		w, closeOut, err := openOut(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Chrome(in, w); err != nil {
			fatal(err)
		}
		if err := closeOut(); err != nil {
			fatal(err)
		}
	case *doSummary:
		if err := summarize(in, os.Stdout, *topN); err != nil {
			fatal(err)
		}
	case *doFilter:
		flt, err := buildFilter(*fCats, *fName, *fFlow, *fTDN, *fFrom, *fTo)
		if err != nil {
			fatal(err)
		}
		w, closeOut, err := openOut(*out)
		if err != nil {
			fatal(err)
		}
		if err := filterEvents(in, w, flt); err != nil {
			fatal(err)
		}
		if err := closeOut(); err != nil {
			fatal(err)
		}
	}
}

func openIn(path string) (io.Reader, func() error, error) {
	if path == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		w := bufio.NewWriter(os.Stdout)
		return w, w.Flush, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	return w, func() error {
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// parseTime parses a virtual timestamp: a bare integer is nanoseconds;
// ns/us/ms/s suffixes are accepted.
func parseTime(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "ns"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1e3
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1e6
	case strings.HasSuffix(s, "s"):
		s, mult = s[:len(s)-1], 1e9
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %v", s, err)
	}
	return int64(v * float64(mult)), nil
}

type filter struct {
	cats      map[string]bool // nil = all
	name      string
	flow, tdn int // -2 = any
	from, to  int64
	haveFrom  bool
	haveTo    bool
}

func buildFilter(cats, name string, flow, tdn int, from, to string) (*filter, error) {
	f := &filter{name: name, flow: flow, tdn: tdn}
	if cats != "" {
		mask, err := trace.ParseCategories(cats)
		if err != nil {
			return nil, err
		}
		f.cats = map[string]bool{}
		for _, c := range []trace.Category{trace.CatSim, trace.CatTCP, trace.CatCC,
			trace.CatTDN, trace.CatVOQ, trace.CatRDCN, trace.CatFault} {
			if mask&c != 0 {
				f.cats[c.String()] = true
			}
		}
	}
	var err error
	if from != "" {
		if f.from, err = parseTime(from); err != nil {
			return nil, err
		}
		f.haveFrom = true
	}
	if to != "" {
		if f.to, err = parseTime(to); err != nil {
			return nil, err
		}
		f.haveTo = true
	}
	return f, nil
}

func (f *filter) match(ev *trace.Event) bool {
	if f.cats != nil && !f.cats[ev.Cat] {
		return false
	}
	if f.name != "" && ev.Name != f.name {
		return false
	}
	if f.flow != -2 && ev.Flow != f.flow {
		return false
	}
	if f.tdn != -2 && ev.TDN != f.tdn {
		return false
	}
	if f.haveFrom && ev.TS < f.from {
		return false
	}
	if f.haveTo && ev.TS >= f.to {
		return false
	}
	return true
}

// forEachEvent streams JSONL lines through fn; malformed lines abort with a
// line-numbered error.
func forEachEvent(r io.Reader, fn func(line []byte, ev *trace.Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var ev trace.Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := trace.ParseLine(line, &ev); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if err := fn(line, &ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

func filterEvents(r io.Reader, w io.Writer, flt *filter) error {
	return forEachEvent(r, func(line []byte, ev *trace.Event) error {
		if !flt.match(ev) {
			return nil
		}
		if _, err := w.Write(line); err != nil {
			return err
		}
		_, err := w.Write([]byte{'\n'})
		return err
	})
}

// --- summary ---------------------------------------------------------------

type flowStat struct {
	events, retrans, rtoFires, tlps, sacks, caChanges, ccMD, switches int
}

type tdnStat struct {
	events, voqDrops, voqMarks, switches int
	days                                 int
}

func summarize(r io.Reader, w io.Writer, topN int) error {
	var (
		total     int
		firstTS   int64
		lastTS    int64
		byCatName = map[string]int{}
		flows     = map[int]*flowStat{}
		tdns      = map[int]*tdnStat{}
		droppers  = map[string]int{}
	)
	err := forEachEvent(r, func(_ []byte, ev *trace.Event) error {
		if total == 0 {
			firstTS = ev.TS
		}
		total++
		lastTS = ev.TS
		byCatName[ev.Cat+"/"+ev.Name]++

		if ev.Flow >= 0 {
			fs := flows[ev.Flow]
			if fs == nil {
				fs = &flowStat{}
				flows[ev.Flow] = fs
			}
			fs.events++
			switch ev.Name {
			case "retransmit":
				fs.retrans++
			case "rto_fire":
				fs.rtoFires++
			case "tlp":
				fs.tlps++
			case "sack":
				fs.sacks++
			case "ca_state":
				fs.caChanges++
			case "md", "rto":
				fs.ccMD++
			case "tdn_switch":
				fs.switches++
			}
		}
		if ev.TDN >= 0 {
			ts := tdns[ev.TDN]
			if ts == nil {
				ts = &tdnStat{}
				tdns[ev.TDN] = ts
			}
			ts.events++
			switch ev.Name {
			case "voq_drop":
				ts.voqDrops++
			case "voq_mark":
				ts.voqMarks++
			case "tdn_switch":
				ts.switches++
			case "day":
				ts.days++
			}
		}
		if ev.Name == "voq_drop" && ev.S != "" {
			droppers[ev.S]++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Fprintln(w, "no events")
		return nil
	}

	fmt.Fprintf(w, "events   %d over %.3f ms of virtual time [%d ns .. %d ns]\n",
		total, float64(lastTS-firstTS)/1e6, firstTS, lastTS)

	fmt.Fprintln(w, "\nby category/name")
	for _, k := range sortedKeys(byCatName) {
		fmt.Fprintf(w, "  %-24s %d\n", k, byCatName[k])
	}

	if len(flows) > 0 {
		fmt.Fprintln(w, "\nper flow            events  retrans  rto  tlp   sack  ca-chg  cc-md  tdn-sw")
		for _, id := range sortedIntKeys(flows) {
			fs := flows[id]
			fmt.Fprintf(w, "  flow %-4d       %8d %8d %4d %4d %6d %7d %6d %7d\n",
				id, fs.events, fs.retrans, fs.rtoFires, fs.tlps, fs.sacks, fs.caChanges, fs.ccMD, fs.switches)
		}
	}

	if len(tdns) > 0 {
		fmt.Fprintln(w, "\nper TDN             events    drops  marks   days  switches")
		for _, id := range sortedIntKeys(tdns) {
			ts := tdns[id]
			fmt.Fprintf(w, "  tdn %-4d        %8d %8d %6d %6d %9d\n",
				id, ts.events, ts.voqDrops, ts.voqMarks, ts.days, ts.switches)
		}
	}

	if len(droppers) > 0 {
		type kv struct {
			k string
			v int
		}
		var top []kv
		for k, v := range droppers {
			top = append(top, kv{k, v})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].v != top[j].v {
				return top[i].v > top[j].v
			}
			return top[i].k < top[j].k
		})
		if len(top) > topN {
			top = top[:topN]
		}
		fmt.Fprintf(w, "\ntop %d droppers (VOQ)\n", len(top))
		for _, e := range top {
			fmt.Fprintf(w, "  %-12s %d drops\n", e.k, e.v)
		}
	}
	return nil
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedIntKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdtrace:", err)
	os.Exit(1)
}
