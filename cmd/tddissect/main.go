// Command tddissect decodes hex-encoded TDTCP wire packets (the Fig. 5
// formats) into a Wireshark-like one-line rendering — the role of the
// paper's modified Wireshark dissector.
//
// Usage:
//
//	echo 4500003c... | tddissect
//	tddissect 4500003c...
//	tddissect -demo          # build and dissect one of each packet type
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/packet"
)

func main() {
	demo := flag.Bool("demo", false, "emit and dissect a sample of each TDTCP packet type")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	failed := false
	args := flag.Args()
	if len(args) > 0 {
		for _, a := range args {
			if !dissect(a) {
				failed = true
			}
		}
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !dissect(line) {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func dissect(hexStr string) bool {
	b, err := hex.DecodeString(strings.TrimPrefix(hexStr, "0x"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tddissect: bad hex:", err)
		return false
	}
	var s packet.Segment
	if err := packet.Parse(b, &s); err != nil {
		fmt.Fprintln(os.Stderr, "tddissect: parse:", err)
		return false
	}
	fmt.Println(s.Dissect())
	return true
}

func runDemo() {
	samples := []*packet.Segment{
		{ // TD_CAPABLE SYN (Fig. 5b)
			Src: 0x0a000001, Dst: 0x0a010001, TTL: 64, Proto: packet.ProtoTCP,
			TCP: packet.TCPHeader{
				SrcPort: 40000, DstPort: 5000, Seq: 1000, Flags: packet.FlagSYN,
				TDCapable: true, NumTDNs: 2, SACKPermitted: true, Window: 4 << 20,
			},
		},
		{ // TD_DATA_ACK data segment (Fig. 5c)
			Src: 0x0a000001, Dst: 0x0a010001, TTL: 64, Proto: packet.ProtoTCP,
			ECN: packet.ECNECT0,
			TCP: packet.TCPHeader{
				SrcPort: 40000, DstPort: 5000, Seq: 1001, Ack: 2001,
				Flags:     packet.FlagACK | packet.FlagPSH,
				TDPresent: true, TDFlags: packet.TDFlagData | packet.TDFlagACK,
				DataTDN: 1, AckTDN: 1, PayloadLen: 8960, Window: 4 << 20,
			},
		},
		{ // SACK-bearing pure ACK
			Src: 0x0a010001, Dst: 0x0a000001, TTL: 64, Proto: packet.ProtoTCP,
			TCP: packet.TCPHeader{
				SrcPort: 5000, DstPort: 40000, Seq: 2001, Ack: 1001,
				Flags:     packet.FlagACK,
				TDPresent: true, TDFlags: packet.TDFlagACK, DataTDN: packet.NoTDN, AckTDN: 0,
				SACK:   []packet.SACKBlock{{Start: 18921, End: 27881}},
				Window: 4 << 20,
			},
		},
		{ // ICMP TDN-change notification (Fig. 5a)
			Src: 0x0a0000ff, Dst: 0x0a000001, TTL: 1, Proto: packet.ProtoICMP,
			ICMP: packet.TDNNotification{ActiveTDN: 1, Epoch: 13},
		},
	}
	for _, s := range samples {
		wire := s.Serialize(nil)
		fmt.Printf("%x\n  -> %s\n", wire, s.Dissect())
	}
}
