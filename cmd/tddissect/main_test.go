package main

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildBinary compiles tddissect once into a temp dir so the exit-code and
// output contracts are pinned against the real process boundary.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tddissect")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runDissect executes the binary and returns stdout, stderr, and exit code.
func runDissect(t *testing.T, bin string, stdin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// demoLineRE matches the -demo output shape: a hex wire dump line followed by
// an indented dissection line.
var demoLineRE = regexp.MustCompile(`(?m)^[0-9a-f]+\n  -> .+$`)

// TestDemoExitsZeroAndShowsAllPacketTypes pins the -demo contract: exit 0
// and one hex+dissection pair per sample, covering the Fig. 5 formats.
func TestDemoExitsZeroAndShowsAllPacketTypes(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runDissect(t, bin, "", "-demo")
	if code != 0 {
		t.Fatalf("-demo: exit %d\nstderr: %s", code, stderr)
	}
	if got := len(demoLineRE.FindAllString(stdout, -1)); got != 4 {
		t.Errorf("-demo printed %d hex/dissection pairs, want 4:\n%s", got, stdout)
	}
	for _, want := range []string{"td_capable{", "[S]", "td_data_ack{", "sack=[", "ICMP tdn-change"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-demo output missing %q:\n%s", want, stdout)
		}
	}
}

// TestRoundTripArgAndStdin: a wire dump emitted by -demo must dissect
// identically whether passed as an argument or piped on stdin.
func TestRoundTripArgAndStdin(t *testing.T) {
	bin := buildBinary(t)
	demoOut, _, code := runDissect(t, bin, "", "-demo")
	if code != 0 {
		t.Fatalf("-demo: exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(demoOut), "\n")
	if len(lines) < 2 {
		t.Fatalf("-demo output too short:\n%s", demoOut)
	}
	wire := lines[0]
	wantDissect := strings.TrimPrefix(strings.TrimSpace(lines[1]), "-> ")

	fromArg, stderr, code := runDissect(t, bin, "", wire)
	if code != 0 {
		t.Fatalf("arg dissect: exit %d\nstderr: %s", code, stderr)
	}
	if got := strings.TrimSpace(fromArg); got != wantDissect {
		t.Errorf("arg dissect = %q, want %q", got, wantDissect)
	}

	fromStdin, stderr, code := runDissect(t, bin, wire+"\n")
	if code != 0 {
		t.Fatalf("stdin dissect: exit %d\nstderr: %s", code, stderr)
	}
	if fromStdin != fromArg {
		t.Errorf("stdin dissect = %q, arg dissect = %q", fromStdin, fromArg)
	}
}

// TestBadInputExitsOne pins the failure contract: undecodable hex or an
// unparseable packet exits 1 with a diagnostic on stderr.
func TestBadInputExitsOne(t *testing.T) {
	bin := buildBinary(t)
	cases := []struct {
		name  string
		arg   string
		diags string
	}{
		{"bad hex", "zzzz", "bad hex"},
		{"truncated packet", "45", "parse"},
	}
	for _, tc := range cases {
		stdout, stderr, code := runDissect(t, bin, "", tc.arg)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstdout: %s\nstderr: %s", tc.name, code, stdout, stderr)
		}
		if !strings.Contains(stderr, tc.diags) {
			t.Errorf("%s: stderr missing %q: %s", tc.name, tc.diags, stderr)
		}
	}
}

// TestMixedInputStillFails: one good and one bad argument dissects the good
// one but still exits 1 overall.
func TestMixedInputStillFails(t *testing.T) {
	bin := buildBinary(t)
	demoOut, _, code := runDissect(t, bin, "", "-demo")
	if code != 0 {
		t.Fatalf("-demo: exit %d", code)
	}
	wire := strings.Split(demoOut, "\n")[0]

	stdout, stderr, code := runDissect(t, bin, "", wire, "zzzz")
	if code != 1 {
		t.Errorf("mixed input: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if strings.TrimSpace(stdout) == "" {
		t.Errorf("good argument was not dissected:\nstderr: %s", stderr)
	}
}
