package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles tdsim once into a temp dir so the exit-code contract
// is asserted against the real process boundary, not an in-process shim.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tdsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runSim(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return stdout.String(), stderr.String(), code
}

// TestUnknownFigureExitsNonZero pins the CLI error contract: an unknown -fig
// id must exit 1 with the id named on stderr, never exit 0 with empty output.
func TestUnknownFigureExitsNonZero(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin, "-fig", "fig99")
	if code == 0 {
		t.Fatalf("unknown figure exited 0\nstdout: %s", stdout)
	}
	if code != 1 {
		t.Errorf("unknown figure: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "fig99") {
		t.Errorf("stderr should name the unknown figure, got: %s", stderr)
	}
}

// TestNoModeExitsUsage asserts that invoking tdsim with no mode flag prints
// usage and exits 2.
func TestNoModeExitsUsage(t *testing.T) {
	bin := buildBinary(t)
	_, stderr, code := runSim(t, bin)
	if code != 2 {
		t.Fatalf("no-mode invocation: exit %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-fig") {
		t.Errorf("usage should mention -fig, got: %s", stderr)
	}
}

// TestMultiRackFigureRuns smokes the acceptance command: the multirack figure
// on 8 racks with the websearch workload must produce a rendered figure.
func TestMultiRackFigureRuns(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin,
		"-racks", "8", "-workload", "websearch", "-fig", "multirack", "-quick")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"multirack", "8-rack", "tdtcp", "cubic", "fct_"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("figure output missing %q:\n%s", want, stdout)
		}
	}
}

// TestProgressFlagStreamsToStderr: -progress must emit at least the final
// progress line on stderr (stdout stays the machine-readable report), and the
// run must still exit 0.
func TestProgressFlagStreamsToStderr(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin,
		"-run", "tdtcp", "-flows", "2", "-warmup", "1", "-weeks", "1", "-progress")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "progress:") || !strings.Contains(stderr, "ev/s") {
		t.Errorf("stderr missing progress line, got: %s", stderr)
	}
	if strings.Contains(stdout, "progress:") {
		t.Errorf("progress leaked onto stdout:\n%s", stdout)
	}
	if !strings.Contains(stdout, "goodput") {
		t.Errorf("run report missing from stdout:\n%s", stdout)
	}
}

// TestFlightrecFlag pins both edges of -flightrec: a custom ring length and 0
// (disabled) must both run cleanly, and a negative exit is reserved for real
// failures.
func TestFlightrecFlag(t *testing.T) {
	bin := buildBinary(t)
	for _, n := range []string{"64", "0"} {
		stdout, stderr, code := runSim(t, bin,
			"-run", "tdtcp", "-flows", "2", "-warmup", "1", "-weeks", "1", "-flightrec", n)
		if code != 0 {
			t.Fatalf("-flightrec %s: exit %d\nstderr: %s", n, code, stderr)
		}
		if !strings.Contains(stdout, "goodput") {
			t.Errorf("-flightrec %s: report missing:\n%s", n, stdout)
		}
	}
}

// TestUsageListsObservabilityFlags: the new flags must appear in -help output
// alongside the audited trace/metrics/fault strings.
func TestUsageListsObservabilityFlags(t *testing.T) {
	bin := buildBinary(t)
	_, stderr, code := runSim(t, bin, "-help")
	if code != 0 && code != 2 {
		t.Fatalf("-help: exit %d", code)
	}
	for _, want := range []string{"-progress", "-flightrec", "-trace", "-tracecats", "-metrics", "-fault", "-invariants",
		"flight recorder", "histogram"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("usage missing %q:\n%s", want, stderr)
		}
	}
}

// TestBadWorkloadExitsNonZero covers the workload-resolution error path.
func TestBadWorkloadExitsNonZero(t *testing.T) {
	bin := buildBinary(t)
	_, stderr, code := runSim(t, bin, "-fig", "multirack", "-workload", "nosuch", "-quick")
	if code != 1 {
		t.Fatalf("bad workload: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr should name the unknown workload, got: %s", stderr)
	}
}

// TestShardsFlagInvalidExits1 pins the -shards validation contract: a
// non-positive worker count is a hard configuration error (exit 1, named on
// stderr), for every mode.
func TestShardsFlagInvalidExits1(t *testing.T) {
	bin := buildBinary(t)
	for _, n := range []string{"0", "-3"} {
		stdout, stderr, code := runSim(t, bin,
			"-run", "tdtcp", "-flows", "2", "-warmup", "1", "-weeks", "1", "-shards", n)
		if code != 1 {
			t.Fatalf("-shards %s: exit %d, want 1\nstdout: %s\nstderr: %s", n, code, stdout, stderr)
		}
		if !strings.Contains(stderr, "shards") {
			t.Errorf("-shards %s: stderr should name the flag, got: %s", n, stderr)
		}
	}
}

// TestShardsFlagByteIdentical is the CLI face of the parity suite: the trace
// and the stdout report from -shards 1 must be byte-identical to a run with
// no -shards flag at all, and to a multi-worker run — the worker count is
// configuration for the machine, never for the experiment.
func TestShardsFlagByteIdentical(t *testing.T) {
	bin := buildBinary(t)
	dir := t.TempDir()
	run := func(name string, extra ...string) (trace []byte, report string) {
		t.Helper()
		out := filepath.Join(dir, name+".jsonl")
		args := append([]string{
			"-run", "tdtcp", "-flows", "2", "-warmup", "1", "-weeks", "1",
			"-trace", out}, extra...)
		stdout, stderr, code := runSim(t, bin, args...)
		if code != 0 {
			t.Fatalf("%s: exit %d\nstderr: %s", name, code, stderr)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		return data, stdout
	}
	baseTrace, baseReport := run("noflag")
	for _, n := range []string{"1", "4"} {
		tr, rep := run("shards"+n, "-shards", n)
		if !bytes.Equal(tr, baseTrace) {
			t.Errorf("-shards %s: trace diverges from the unflagged run (%d vs %d bytes)",
				n, len(tr), len(baseTrace))
		}
		if rep != baseReport {
			t.Errorf("-shards %s: report diverges:\n%s\nvs:\n%s", n, rep, baseReport)
		}
	}
}

// TestDeadlineFlagExits3 pins the -deadline contract: a run whose horizon
// cannot fit the wall-clock budget is cancelled through the cooperative stop
// seam and exits 3 (distinct from error exit 1), naming the deadline on
// stderr.
func TestDeadlineFlagExits3(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin,
		"-run", "cubic", "-flows", "8", "-warmup", "100000", "-weeks", "1",
		"-deadline", "300ms")
	if code != 3 {
		t.Fatalf("deadline run: exit %d, want 3\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "deadline") || !strings.Contains(stderr, "cancelled") {
		t.Errorf("stderr should explain the cancellation, got: %s", stderr)
	}
	if strings.Contains(stdout, "goodput") {
		t.Errorf("cancelled run printed a result report:\n%s", stdout)
	}
}

// TestDeadlineFlagGenerousBudgetExits0: a budget the run fits inside must
// not change the success path.
func TestDeadlineFlagGenerousBudgetExits0(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin,
		"-run", "tdtcp", "-flows", "2", "-warmup", "1", "-weeks", "1",
		"-deadline", "5m")
	if code != 0 {
		t.Fatalf("generous deadline: exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "goodput") {
		t.Errorf("report missing from stdout:\n%s", stdout)
	}
}
