package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles tdsim once into a temp dir so the exit-code contract
// is asserted against the real process boundary, not an in-process shim.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tdsim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runSim(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	return stdout.String(), stderr.String(), code
}

// TestUnknownFigureExitsNonZero pins the CLI error contract: an unknown -fig
// id must exit 1 with the id named on stderr, never exit 0 with empty output.
func TestUnknownFigureExitsNonZero(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin, "-fig", "fig99")
	if code == 0 {
		t.Fatalf("unknown figure exited 0\nstdout: %s", stdout)
	}
	if code != 1 {
		t.Errorf("unknown figure: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "fig99") {
		t.Errorf("stderr should name the unknown figure, got: %s", stderr)
	}
}

// TestNoModeExitsUsage asserts that invoking tdsim with no mode flag prints
// usage and exits 2.
func TestNoModeExitsUsage(t *testing.T) {
	bin := buildBinary(t)
	_, stderr, code := runSim(t, bin)
	if code != 2 {
		t.Fatalf("no-mode invocation: exit %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-fig") {
		t.Errorf("usage should mention -fig, got: %s", stderr)
	}
}

// TestMultiRackFigureRuns smokes the acceptance command: the multirack figure
// on 8 racks with the websearch workload must produce a rendered figure.
func TestMultiRackFigureRuns(t *testing.T) {
	bin := buildBinary(t)
	stdout, stderr, code := runSim(t, bin,
		"-racks", "8", "-workload", "websearch", "-fig", "multirack", "-quick")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"multirack", "8-rack", "tdtcp", "cubic", "fct_"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("figure output missing %q:\n%s", want, stdout)
		}
	}
}

// TestBadWorkloadExitsNonZero covers the workload-resolution error path.
func TestBadWorkloadExitsNonZero(t *testing.T) {
	bin := buildBinary(t)
	_, stderr, code := runSim(t, bin, "-fig", "multirack", "-workload", "nosuch", "-quick")
	if code != 1 {
		t.Fatalf("bad workload: exit %d, want 1 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("stderr should name the unknown workload, got: %s", stderr)
	}
}
