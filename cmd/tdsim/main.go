// Command tdsim reproduces the paper's experiments on the emulated RDCN.
//
// Usage:
//
//	tdsim -fig fig7                 # reproduce one figure
//	tdsim -fig all                  # reproduce every figure
//	tdsim -fig fig10 -csv out/      # also dump plottable CSV series
//	tdsim -run tdtcp -weeks 20      # single-variant run with counters
//	tdsim -run tdtcp -trace out.jsonl -metrics out.json
//	                                # + JSONL event trace and metrics JSON
//	tdsim -run tdtcp -progress      # live events/sec + sim/wall on stderr
//	tdsim -run tdtcp -shards 4      # 4 event-loop worker lanes; traces and
//	                                # results stay byte-identical to -shards 1
//	tdsim -run tdtcp -deadline 5s   # wall-clock budget; cooperative cancel,
//	                                # exit 3 (trace stays a valid prefix)
//	tdsim -sweep tdtcp,cubic -seeds 4 -parallel 8 -progress
//	                                # variants x seeds matrix, 8 workers,
//	                                # per-worker cell status on stderr
//
// Figures: fig2 fig7 fig8 fig9 fig10 fig11 fig13 fig14 headline ablation,
// plus the multi-rack rotor figures:
//
//	tdsim -fig rotor -racks 8       # long-lived flows, 8-rack rotor fabric
//	tdsim -fig multirack -racks 8 -workload websearch
//	                                # open-loop flow workload with FCTs
//
// Traces are post-processed with the tdtrace command (summary, filtering,
// Chrome trace-viewer export) and the tdprof command (span stats, per-flow
// timelines, histogram summaries).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	tdtcp "github.com/rdcn-net/tdtcp"
	"github.com/rdcn-net/tdtcp/internal/stats"
)

func main() {
	var (
		figID  = flag.String("fig", "", "figure to reproduce (fig2, fig7, ..., headline, ablation, or 'all')")
		runVar = flag.String("run", "", "run a single variant (tdtcp, cubic, dctcp, retcp, retcpdyn, mptcp2f) and print counters")
		flows  = flag.Int("flows", 16, "flows (host pairs)")
		warmup = flag.Int("warmup", 0, "warmup weeks excluded from measurement (0 = default 3)")
		weeks  = flag.Int("weeks", 0, "measurement weeks (0 = default 20)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		quick  = flag.Bool("quick", false, "shrink runs for a fast smoke pass (-fig and -sweep; -run sizes via -warmup/-weeks)")
		csvDir = flag.String("csv", "", "directory to write plottable CSV series into (-fig only)")

		shards   = flag.Int("shards", 1, "event-loop worker lanes (-run/-sweep; >= 1; traces and results are byte-identical for every value)")
		racks    = flag.Int("racks", 0, "rack count for the multi-rack figures (rotor, multirack; 0 = default 4)")
		workload = flag.String("workload", "", "flow-size distribution for the workload figures (websearch, datamining)")

		traceOut  = flag.String("trace", "", "write a JSONL event trace (point events and causal spans) to this file (-run only; '-' = stdout)")
		traceCats = flag.String("tracecats", "tcp,cc,tdn,voq,rdcn,fault", "trace categories for -trace (comma-separated; 'all' adds the chatty sim loop; ignored without -trace)")
		metricsFn = flag.String("metrics", "", "write run counters, gauges and histogram summaries as JSON to this file (-run only; '-' = stdout)")

		sweepSpec = flag.String("sweep", "", "sweep a comma-separated variant list (or 'all') over -seeds seeds")
		seeds     = flag.Int("seeds", 4, "number of seeds per sweep cell (-sweep only; < 1 = 1)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent runs in a sweep (1 = sequential)")

		faultSpec  = flag.String("fault", "", "fault-injection plan, e.g. 'nloss=0.1,drop=0.01,flaps=2' (-run only; seeded by -faultseed)")
		faultSeed  = flag.Int64("faultseed", 1, "fault-injection seed, independent of -seed (-run only)")
		invariants = flag.Bool("invariants", false, "check connection/network invariants after every event and dump the flight recorder on violation (-run only)")
		schedSpec  = flag.String("sched", "", "override the optical schedule, e.g. '6x(0:180us,-:20us),1:180us,-:20us' (-run only)")

		deadline = flag.Duration("deadline", 0, "wall-clock budget for the run; on expiry the run is cancelled through the cooperative stop seam and tdsim exits 3 (-run only; 0 = none)")

		progress  = flag.Bool("progress", false, "print live progress to stderr: events/sec and sim/wall ratio (-run), per-worker cell status (-sweep)")
		flightLen = flag.Int("flightrec", tdtcp.DefaultFlightLen,
			"flight-recorder ring length: recent events kept for failure dumps (-run/-sweep; 0 = disable)")
	)
	flag.Parse()

	if *shards < 1 {
		fatal(fmt.Errorf("-shards %d: worker count must be >= 1", *shards))
	}

	switch {
	case *sweepSpec != "":
		w, m := *warmup, *weeks
		if w == 0 {
			w = 3
		}
		if m == 0 {
			m = 20
		}
		if *quick {
			w, m = 1, 2
		}
		if err := runSweep(*sweepSpec, *seeds, *parallel, tdtcp.RunConfig{
			Flows: *flows, WarmupWeeks: w, MeasureWeeks: m, Shards: *shards,
		}, *flightLen, *progress); err != nil {
			fatal(err)
		}
	case *runVar != "":
		w, m := *warmup, *weeks
		if w == 0 {
			w = 3
		}
		if m == 0 {
			m = 20
		}
		cfg := tdtcp.RunConfig{
			Variant: tdtcp.Variant(*runVar), Flows: *flows,
			WarmupWeeks: w, MeasureWeeks: m, Seed: *seed,
			Invariants: *invariants, Shards: *shards,
		}
		if *faultSpec != "" {
			plan, err := tdtcp.ParseFaultPlan(*faultSpec)
			if err != nil {
				fatal(err)
			}
			cfg.Fault = &plan
			cfg.FaultSeed = *faultSeed
		}
		if *schedSpec != "" {
			sched, err := tdtcp.ParseSchedule(*schedSpec)
			if err != nil {
				fatal(err)
			}
			cfg.Scenario = tdtcp.HybridScenario()
			cfg.Scenario.Schedule = sched
		}
		configureFlight(&cfg, *flightLen)
		if *deadline > 0 {
			// The wall-clock budget rides the cooperative stop seam: polled
			// between simulation events, so an interrupted run's trace is a
			// byte-identical prefix of the full run's.
			at := time.Now().Add(*deadline)
			cfg.Stop = func() bool { return !time.Now().Before(at) }
		}
		if err := runOne(cfg, *traceOut, *traceCats, *metricsFn, *progress); err != nil {
			if errors.Is(err, tdtcp.ErrRunCancelled) {
				fmt.Fprintf(os.Stderr, "tdsim: deadline %v exceeded: %v\n", *deadline, err)
				os.Exit(3)
			}
			fatal(err)
		}
	case *figID != "":
		opts := tdtcp.FigureOptions{Flows: *flows, WarmupWeeks: *warmup, MeasureWeeks: *weeks, Seed: *seed,
			Racks: *racks, Workload: *workload, Quick: *quick}
		ids := []string{*figID}
		if *figID == "all" {
			ids = ids[:0]
			for id := range tdtcp.Figures {
				ids = append(ids, id)
			}
			sort.Strings(ids)
		}
		for _, id := range ids {
			runner, ok := tdtcp.Figures[id]
			if !ok {
				fatal(fmt.Errorf("unknown figure %q", id))
			}
			fig, err := runner(opts)
			if err != nil {
				fatal(err)
			}
			fmt.Print(fig.Render())
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fig); err != nil {
					fatal(err)
				}
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// outFile opens path for writing ("-" = stdout). closeFn is a no-op for
// stdout.
func outFile(path string) (w io.Writer, closeFn func() error, err error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// configureFlight applies the -flightrec flag to one run configuration. Each
// run gets its own ring (recorders are never shared across sweep cells); the
// default length needs no explicit recorder — Run creates one.
func configureFlight(cfg *tdtcp.RunConfig, n int) {
	switch {
	case n <= 0:
		cfg.DisableFlight = true
	case n != tdtcp.DefaultFlightLen:
		cfg.Flight = tdtcp.NewFlightRecorder(n, tdtcp.DefaultFlightCats)
	}
}

func runOne(cfg tdtcp.RunConfig, traceOut, traceCats, metricsFn string, progress bool) error {
	var closeTrace func() error
	if traceOut != "" {
		mask, err := tdtcp.ParseTraceCategories(traceCats)
		if err != nil {
			return err
		}
		w, closeFn, err := outFile(traceOut)
		if err != nil {
			return err
		}
		closeTrace = closeFn
		cfg.Tracer = tdtcp.NewTracer(w, mask)
	}
	if metricsFn != "" {
		cfg.Metrics = tdtcp.NewMetricsRegistry()
	}
	var rep *tdtcp.ProgressReporter
	if progress {
		meter := tdtcp.NewProgressMeter()
		cfg.Meter = meter
		rep = tdtcp.NewProgressReporter(os.Stderr, time.Second, meter.Line)
		rep.Start()
	}
	res, err := tdtcp.Run(cfg)
	if rep != nil {
		rep.Stop()
	}
	if err != nil {
		return err
	}
	if cfg.Tracer != nil {
		if err := cfg.Tracer.Flush(); err != nil {
			return err
		}
		if err := closeTrace(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tdsim: %d trace events -> %s\n", cfg.Tracer.Count(), traceOut)
	}
	if cfg.Metrics != nil {
		w, closeFn, err := outFile(metricsFn)
		if err != nil {
			return err
		}
		if err := cfg.Metrics.WriteJSON(w); err != nil {
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	fmt.Printf("variant        %s\n", res.Variant)
	fmt.Printf("goodput        %.2f Gbps (optimal %.2f, packet-only %.2f)\n",
		res.GoodputGbps, res.OptimalGbps, res.PacketOnlyGbps)
	s := res.Sender
	fmt.Printf("sender         sent=%d acked=%dB retrans=%d (fast=%d rto=%d tlp=%d)\n",
		s.SegsSent, s.BytesAcked, s.Retransmits, s.FastRetransmits, s.RTOFires, s.TLPProbes)
	fmt.Printf("reordering     events=%d pkts=%d lossMarks=%d filtered=%d undos=%d\n",
		s.ReorderEvents, s.ReorderPackets, s.LossMarks, s.FilteredMarks, s.Undos)
	fmt.Printf("rtt            samples=%d dropped-mixed=%d\n", s.RTTSamples, s.RTTSamplesDropped)
	fmt.Printf("receiver       delivered=%dB spurious-rx=%d dsacks=%d\n",
		res.Receiver.BytesDelivered, res.Receiver.DupSegsRcvd, res.Receiver.DSACKsSent)
	if res.TDTCPSwitches > 0 {
		fmt.Printf("tdtcp          state switches=%d deadman-engaged=%d\n",
			res.TDTCPSwitches, res.DeadmanEngaged)
	}
	if cfg.Fault != nil {
		fs := res.FaultStats
		fmt.Printf("faults         notify drop=%d dup=%d delay=%d\n",
			fs.NotifyDropped, fs.NotifyDuped, fs.NotifyDelayed)
		fmt.Printf("               frame drop=%d corrupt=%d delay=%d\n",
			fs.FramesDropped, fs.FramesCorrupted, fs.FramesDelayed)
		fmt.Printf("               flaps=%d resize-fails=%d\n",
			fs.CircuitFlaps, fs.ResizeFailures)
		fmt.Printf("degradation    notifies rcvd=%d stale=%d dup=%d\n",
			res.Sender.NotifiesRcvd+res.Receiver.NotifiesRcvd,
			res.Sender.NotifiesStale+res.Receiver.NotifiesStale,
			res.Sender.NotifiesDup+res.Receiver.NotifiesDup)
	}
	if cfg.Invariants {
		fmt.Printf("invariants     checks=%d violations=%d\n",
			res.InvariantChecks, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("  VIOLATION    %v\n", v)
		}
	}
	return nil
}

// runSweep executes a variants x seeds matrix across workers and prints one
// line per cell (input order, so output is deterministic regardless of the
// worker count) plus a per-variant mean.
func runSweep(spec string, nseeds, workers int, base tdtcp.RunConfig, flightLen int, progress bool) error {
	var variants []tdtcp.Variant
	if spec == "all" {
		variants = append(variants, tdtcp.AllVariants...)
	} else {
		for _, s := range strings.Split(spec, ",") {
			variants = append(variants, tdtcp.Variant(strings.TrimSpace(s)))
		}
	}
	if nseeds < 1 {
		nseeds = 1
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	cfgs := tdtcp.SweepMatrix(base, variants, seeds)
	for i := range cfgs {
		configureFlight(&cfgs[i], flightLen)
	}
	fmt.Fprintf(os.Stderr, "tdsim: sweeping %d configs (%d variants x %d seeds) on %d workers\n",
		len(cfgs), len(variants), nseeds, workers)
	var obs tdtcp.SweepObserver
	var rep *tdtcp.ProgressReporter
	if progress {
		sm := tdtcp.NewSweepProgressMeter(len(cfgs), workers)
		rep = tdtcp.NewProgressReporter(os.Stderr, time.Second, sm.Line)
		rep.Start()
		obs = sm
	}
	results := tdtcp.SweepWithObserver(cfgs, workers, obs)
	if rep != nil {
		rep.Stop()
	}

	fmt.Printf("%-10s %5s %12s %12s %12s\n", "variant", "seed", "goodput", "retrans", "loss-marks")
	means := map[tdtcp.Variant]float64{}
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s seed %d: %w", r.Cfg.Variant, r.Cfg.Seed, r.Err)
		}
		fmt.Printf("%-10s %5d %9.2f Gb %12d %12d\n",
			r.Cfg.Variant, r.Cfg.Seed, r.Res.GoodputGbps,
			r.Res.Sender.Retransmits, r.Res.Sender.LossMarks)
		means[r.Cfg.Variant] += r.Res.GoodputGbps
	}
	fmt.Println()
	for _, v := range variants {
		fmt.Printf("%-10s mean  %9.2f Gb over %d seeds\n", v, means[v]/float64(nseeds), nseeds)
	}
	return nil
}

func writeCSV(dir string, fig *tdtcp.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dump := func(kind string, series []*stats.Series) error {
		for _, s := range series {
			name := fmt.Sprintf("%s_%s_%s.csv", fig.ID, kind, sanitize(s.Label))
			if err := os.WriteFile(filepath.Join(dir, name), []byte(s.CSV()), 0o644); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dump("seq", fig.Seq); err != nil {
		return err
	}
	if err := dump("voq", fig.VOQ); err != nil {
		return err
	}
	return dump("cdf", fig.CDF)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdsim:", err)
	os.Exit(1)
}
