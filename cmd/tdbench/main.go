// Command tdbench runs the headline simulator benchmarks (internal/bench)
// under the standard testing harness with allocation reporting, records the
// results in a tracked JSON file, and diffs them against the previous record
// so performance regressions show up in review rather than in production.
//
// Usage:
//
//	tdbench                     # run, diff against BENCH_simcore.json, rewrite it
//	tdbench -out other.json     # track a different file
//	tdbench -dry                # run and diff only, leave the file untouched
//	tdbench -count 9            # iterations per benchmark (default 5)
//	tdbench -gate               # check the committed file, run nothing
//
// Each benchmark runs -count times; the tracked ns/op is the MEDIAN of the
// iterations, with the minimum and the relative spread recorded alongside.
// Single-run numbers on a shared machine routinely wander ±20%, which once
// mis-flagged a "regression" that was pure scheduler noise (DESIGN.md §10);
// medians with a recorded spread make the tracked file trustworthy.
//
// The JSON file carries the current numbers under "benchmarks", the previous
// run's numbers under "previous", and the tdlint finding count under
// "lint_findings" — the zero-allocation claims recorded here are only
// trustworthy when the hotpath lint gate that enforces them is clean, so the
// two facts travel together and a dirty tree fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/bench"
	"github.com/rdcn-net/tdtcp/internal/lint"
)

// Record is one benchmark's tracked measurements. NsPerOp (and the
// EventsPerSec derived from it) is the median across the -count iterations;
// MinNsPerOp is the fastest iteration and SpreadPct the relative spread
// (max-min as a percentage of the median) — a large spread means the machine
// was noisy and the numbers should not be trusted for small deltas.
type Record struct {
	NsPerOp      float64 `json:"ns_per_op"`
	MinNsPerOp   float64 `json:"min_ns_per_op,omitempty"`
	SpreadPct    float64 `json:"spread_pct,omitempty"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// File is the on-disk shape of BENCH_simcore.json.
type File struct {
	Benchmarks map[string]Record `json:"benchmarks"`
	Previous   map[string]Record `json:"previous,omitempty"`
	// LintFindings is the tdlint finding count at recording time. The tracked
	// value must be zero: benchmark numbers from a tree that fails its own
	// static gates are not comparable.
	LintFindings int `json:"lint_findings"`
	// CPUs is runtime.NumCPU() at recording time. The sharded-speedup gate
	// only binds when the recording machine had enough cores for the four
	// engine workers to actually run in parallel; on a small box the ratio is
	// still recorded, just not enforced.
	CPUs int `json:"cpus,omitempty"`
}

var headline = []struct {
	Name string
	Body func(*testing.B)
}{
	{"EventLoop", bench.EventLoop},
	{"SimulatedWeek", bench.SimulatedWeek},
	{"SimulatedWeekSteady", bench.SimulatedWeekSteady},
	{"SimulatedWeekFlight", bench.SimulatedWeekFlight},
	{"SimulatedWeekSequential", bench.SimulatedWeekSequential},
	{"SimulatedWeekSharded", bench.SimulatedWeekSharded},
}

func main() {
	var (
		out   = flag.String("out", "BENCH_simcore.json", "tracked benchmark file to diff against and rewrite")
		dry   = flag.Bool("dry", false, "run and diff only; do not rewrite the file")
		count = flag.Int("count", 5, "iterations per benchmark; the median is tracked")
		gate  = flag.Bool("gate", false, "check the committed file against the regression thresholds and exit; run no benchmarks")
	)
	flag.Parse()
	if *count < 1 {
		*count = 1
	}
	if *gate {
		if err := checkGate(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tdbench: %s passes the regression gate\n", *out)
		return
	}

	prev := map[string]Record{}
	if raw, err := os.ReadFile(*out); err == nil {
		var old File
		if err := json.Unmarshal(raw, &old); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
		prev = old.Benchmarks
	}

	cur := map[string]Record{}
	for _, b := range headline {
		fmt.Fprintf(os.Stderr, "tdbench: running %s (%d iterations)...\n", b.Name, *count)
		cur[b.Name] = measure(b.Body, *count)
	}

	fmt.Fprintln(os.Stderr, "tdbench: running tdlint...")
	nlint, err := lintFindings()
	if err != nil {
		fatal(err)
	}

	printDiff(prev, cur)
	fmt.Printf("%-19s %14d\n", "lint findings", nlint)

	if *dry {
		if nlint != 0 {
			fatal(fmt.Errorf("%d tdlint findings; the tree must be lint-clean", nlint))
		}
		return
	}
	f := File{Benchmarks: cur, LintFindings: nlint, CPUs: runtime.NumCPU()}
	if len(prev) > 0 {
		f.Previous = prev
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tdbench: wrote %s\n", *out)
	if nlint != 0 {
		fatal(fmt.Errorf("%d tdlint findings recorded; the tree must be lint-clean", nlint))
	}
}

// measure runs one benchmark body count times and aggregates: median ns/op
// (the tracked headline number), minimum ns/op, and the max-min spread as a
// percentage of the median. Allocation counters come from the median
// iteration — they are deterministic across runs, unlike wall time.
func measure(body func(*testing.B), count int) Record {
	type one struct {
		ns  float64
		res testing.BenchmarkResult
	}
	runs := make([]one, 0, count)
	for i := 0; i < count; i++ {
		r := testing.Benchmark(body)
		runs = append(runs, one{ns: float64(r.T.Nanoseconds()) / float64(r.N), res: r})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ns < runs[j].ns })
	med := runs[len(runs)/2]
	rec := Record{
		NsPerOp:     med.ns,
		BytesPerOp:  med.res.AllocedBytesPerOp(),
		AllocsPerOp: med.res.AllocsPerOp(),
	}
	if count > 1 {
		rec.MinNsPerOp = runs[0].ns
		if med.ns > 0 {
			rec.SpreadPct = (runs[len(runs)-1].ns - runs[0].ns) / med.ns * 100
		}
	}
	if ev, ok := med.res.Extra["events/op"]; ok && rec.NsPerOp > 0 {
		rec.EventsPerOp = ev
		rec.EventsPerSec = ev * 1e9 / rec.NsPerOp
	}
	return rec
}

// Regression thresholds enforced by `tdbench -gate` (run from ci.sh) against
// the *committed* BENCH_simcore.json — the gate never re-runs benchmarks,
// because a single CI run's wall time is exactly the ±20% noise the -count
// medians exist to filter out. The committed file is the reviewed artifact;
// the gate makes it impossible to commit one that records a regression.
const (
	// maxWeekAllocs bounds SimulatedWeek's allocs/op. The cold benchmark
	// rebuilds the network and flows every iteration, so it cannot be zero;
	// the bound holds the construction cost at its post-slab level (~1.1k)
	// with headroom for schedule-config drift, far below the ~2.4k it was
	// before the SoA slab landed.
	maxWeekAllocs = 1500
	// maxEvRegressPct fails the gate when the recorded SimulatedWeek
	// events/sec dropped more than this vs the file's "previous" entry.
	maxEvRegressPct = 20.0
	// minShardSpeedup is the floor on SimulatedWeekSharded events/sec over
	// SimulatedWeekSequential: four workers must buy at least 1.5x. Enforced
	// only when the recording machine had >= minShardGateCPUs cores — below
	// that the four workers time-share and the ratio measures contention, not
	// the engine.
	minShardSpeedup  = 1.5
	minShardGateCPUs = 4
)

// checkGate applies the committed-file regression thresholds: SimulatedWeek
// allocation ceiling, SimulatedWeek events/sec vs the previous record, the
// SimulatedWeekSteady zero-allocation claim (the hot path's contract), and —
// when the recording machine had enough cores to mean anything — the
// sharded-engine speedup floor over the sequential twin.
func checkGate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	week, ok := f.Benchmarks["SimulatedWeek"]
	if !ok {
		return fmt.Errorf("%s records no SimulatedWeek benchmark", path)
	}
	if week.AllocsPerOp > maxWeekAllocs {
		return fmt.Errorf("SimulatedWeek allocs/op %d exceeds the committed ceiling %d",
			week.AllocsPerOp, maxWeekAllocs)
	}
	if steady, ok := f.Benchmarks["SimulatedWeekSteady"]; ok && steady.AllocsPerOp != 0 {
		return fmt.Errorf("SimulatedWeekSteady allocs/op %d; the steady state must not allocate",
			steady.AllocsPerOp)
	}
	if prev, ok := f.Previous["SimulatedWeek"]; ok && prev.EventsPerSec > 0 && week.EventsPerSec > 0 {
		drop := (prev.EventsPerSec - week.EventsPerSec) / prev.EventsPerSec * 100
		if drop > maxEvRegressPct {
			return fmt.Errorf("SimulatedWeek events/sec dropped %.1f%% (%.0f -> %.0f), over the %.0f%% budget",
				drop, prev.EventsPerSec, week.EventsPerSec, maxEvRegressPct)
		}
	}
	seq, seqOK := f.Benchmarks["SimulatedWeekSequential"]
	sharded, shOK := f.Benchmarks["SimulatedWeekSharded"]
	if seqOK && shOK && seq.EventsPerSec > 0 {
		ratio := sharded.EventsPerSec / seq.EventsPerSec
		if f.CPUs >= minShardGateCPUs && ratio < minShardSpeedup {
			return fmt.Errorf("SimulatedWeekSharded is only %.2fx SimulatedWeekSequential (%.0f vs %.0f events/sec) on a %d-core recording; the floor is %.1fx",
				ratio, sharded.EventsPerSec, seq.EventsPerSec, f.CPUs, minShardSpeedup)
		}
		if sharded.AllocsPerOp > 4*seq.AllocsPerOp+1024 {
			return fmt.Errorf("SimulatedWeekSharded allocs/op %d far exceeds sequential %d; the shard runtime is allocating per event",
				sharded.AllocsPerOp, seq.AllocsPerOp)
		}
	}
	if f.LintFindings != 0 {
		return fmt.Errorf("%d tdlint findings recorded; the tracked numbers are not trustworthy", f.LintFindings)
	}
	return nil
}

// lintFindings runs the full tdlint suite in-process over the module rooted
// in the working directory.
func lintFindings() (int, error) {
	prog, err := lint.Load(".", "./...")
	if err != nil {
		return 0, err
	}
	return len(lint.Run(prog, lint.All())), nil
}

// printDiff renders old -> new per benchmark in the headline order.
func printDiff(prev, cur map[string]Record) {
	fmt.Printf("%-19s %14s %9s %14s %12s %16s\n", "benchmark", "ns/op", "spread", "B/op", "allocs/op", "events/sec")
	for _, b := range headline {
		c := cur[b.Name]
		fmt.Printf("%-19s %14.1f %8.1f%% %14d %12d %16.0f\n",
			b.Name, c.NsPerOp, c.SpreadPct, c.BytesPerOp, c.AllocsPerOp, c.EventsPerSec)
		p, ok := prev[b.Name]
		if !ok {
			continue
		}
		fmt.Printf("%-19s %14.1f %8.1f%% %14d %12d %16.0f\n", "  previous", p.NsPerOp, p.SpreadPct, p.BytesPerOp, p.AllocsPerOp, p.EventsPerSec)
		fmt.Printf("%-19s %13s%% %9s %13s%% %11s%%\n", "  delta",
			pct(c.NsPerOp, p.NsPerOp), "", pct(float64(c.BytesPerOp), float64(p.BytesPerOp)),
			pct(float64(c.AllocsPerOp), float64(p.AllocsPerOp)))
	}
}

// pct formats the relative change from old to new ("-74.4", "+3.0").
func pct(new, old float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f", (new-old)/old*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdbench:", err)
	os.Exit(1)
}
