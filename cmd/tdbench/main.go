// Command tdbench runs the headline simulator benchmarks (internal/bench)
// under the standard testing harness with allocation reporting, records the
// results in a tracked JSON file, and diffs them against the previous record
// so performance regressions show up in review rather than in production.
//
// Usage:
//
//	tdbench                     # run, diff against BENCH_simcore.json, rewrite it
//	tdbench -out other.json     # track a different file
//	tdbench -dry                # run and diff only, leave the file untouched
//
// The JSON file carries the current numbers under "benchmarks", the previous
// run's numbers under "previous", and the tdlint finding count under
// "lint_findings" — the zero-allocation claims recorded here are only
// trustworthy when the hotpath lint gate that enforces them is clean, so the
// two facts travel together and a dirty tree fails the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/bench"
	"github.com/rdcn-net/tdtcp/internal/lint"
)

// Record is one benchmark's tracked measurements.
type Record struct {
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
}

// File is the on-disk shape of BENCH_simcore.json.
type File struct {
	Benchmarks map[string]Record `json:"benchmarks"`
	Previous   map[string]Record `json:"previous,omitempty"`
	// LintFindings is the tdlint finding count at recording time. The tracked
	// value must be zero: benchmark numbers from a tree that fails its own
	// static gates are not comparable.
	LintFindings int `json:"lint_findings"`
}

var headline = []struct {
	Name string
	Body func(*testing.B)
}{
	{"EventLoop", bench.EventLoop},
	{"SimulatedWeek", bench.SimulatedWeek},
	{"SimulatedWeekFlight", bench.SimulatedWeekFlight},
}

func main() {
	var (
		out = flag.String("out", "BENCH_simcore.json", "tracked benchmark file to diff against and rewrite")
		dry = flag.Bool("dry", false, "run and diff only; do not rewrite the file")
	)
	flag.Parse()

	prev := map[string]Record{}
	if raw, err := os.ReadFile(*out); err == nil {
		var old File
		if err := json.Unmarshal(raw, &old); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *out, err))
		}
		prev = old.Benchmarks
	}

	cur := map[string]Record{}
	for _, b := range headline {
		fmt.Fprintf(os.Stderr, "tdbench: running %s...\n", b.Name)
		r := testing.Benchmark(b.Body)
		rec := Record{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if ev, ok := r.Extra["events/op"]; ok && rec.NsPerOp > 0 {
			rec.EventsPerOp = ev
			rec.EventsPerSec = ev * 1e9 / rec.NsPerOp
		}
		cur[b.Name] = rec
	}

	fmt.Fprintln(os.Stderr, "tdbench: running tdlint...")
	nlint, err := lintFindings()
	if err != nil {
		fatal(err)
	}

	printDiff(prev, cur)
	fmt.Printf("%-15s %14d\n", "lint findings", nlint)

	if *dry {
		if nlint != 0 {
			fatal(fmt.Errorf("%d tdlint findings; the tree must be lint-clean", nlint))
		}
		return
	}
	f := File{Benchmarks: cur, LintFindings: nlint}
	if len(prev) > 0 {
		f.Previous = prev
	}
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tdbench: wrote %s\n", *out)
	if nlint != 0 {
		fatal(fmt.Errorf("%d tdlint findings recorded; the tree must be lint-clean", nlint))
	}
}

// lintFindings runs the full tdlint suite in-process over the module rooted
// in the working directory.
func lintFindings() (int, error) {
	prog, err := lint.Load(".", "./...")
	if err != nil {
		return 0, err
	}
	return len(lint.Run(prog, lint.All())), nil
}

// printDiff renders old -> new per benchmark in the headline order.
func printDiff(prev, cur map[string]Record) {
	fmt.Printf("%-15s %14s %14s %12s %16s\n", "benchmark", "ns/op", "B/op", "allocs/op", "events/sec")
	for _, b := range headline {
		c := cur[b.Name]
		fmt.Printf("%-15s %14.1f %14d %12d %16.0f\n",
			b.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp, c.EventsPerSec)
		p, ok := prev[b.Name]
		if !ok {
			continue
		}
		fmt.Printf("%-15s %14.1f %14d %12d %16.0f\n", "  previous", p.NsPerOp, p.BytesPerOp, p.AllocsPerOp, p.EventsPerSec)
		fmt.Printf("%-15s %13s%% %13s%% %11s%%\n", "  delta",
			pct(c.NsPerOp, p.NsPerOp), pct(float64(c.BytesPerOp), float64(p.BytesPerOp)),
			pct(float64(c.AllocsPerOp), float64(p.AllocsPerOp)))
	}
}

// pct formats the relative change from old to new ("-74.4", "+3.0").
func pct(new, old float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f", (new-old)/old*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdbench:", err)
	os.Exit(1)
}
