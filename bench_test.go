package tdtcp

// Benchmark harness: one benchmark per evaluation figure of the paper (see
// DESIGN.md §4 for the index), each regenerating that figure's series and
// reporting its key metric, plus microbenchmarks for the mechanisms the
// paper's §4 performance claims rest on (wire codec, per-TDN state switch).
//
// Figure benches run the Quick configuration (2 warmup + 3 measured optical
// weeks) per iteration so `go test -bench=.` completes in seconds; run
// cmd/tdsim for full-scale reproductions.

import (
	"io"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/bench"
	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
)

func benchFigure(b *testing.B, id string, metric func(*Figure) (string, float64)) {
	b.Helper()
	var last *Figure
	for i := 0; i < b.N; i++ {
		fig, err := Figures[id](FigureOptions{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	if last != nil && metric != nil {
		name, v := metric(last)
		b.ReportMetric(v, name)
	}
}

func goodputOf(fig *Figure, label string) float64 {
	for _, r := range fig.Summary {
		if r.Label == label {
			return r.GoodputGbps
		}
	}
	return 0
}

// BenchmarkFig2SequenceGraph regenerates Figure 2 (CUBIC and MPTCP vs the
// optimal/packet-only references on the hybrid RDCN).
func BenchmarkFig2SequenceGraph(b *testing.B) {
	benchFigure(b, "fig2", func(f *Figure) (string, float64) {
		return "cubic_gbps", goodputOf(f, "cubic")
	})
}

// BenchmarkFig7aThroughput regenerates Figure 7a (all variants, bandwidth +
// latency difference).
func BenchmarkFig7aThroughput(b *testing.B) {
	benchFigure(b, "fig7", func(f *Figure) (string, float64) {
		return "tdtcp_gbps", goodputOf(f, "tdtcp")
	})
}

// BenchmarkFig7bVOQ regenerates Figure 7b (ToR VOQ occupancy) and reports
// TDTCP's mean occupancy — the paper's "lowest of all variants" claim.
func BenchmarkFig7bVOQ(b *testing.B) {
	benchFigure(b, "fig7", func(f *Figure) (string, float64) {
		for _, s := range f.VOQ {
			if s.Label == "tdtcp" {
				return "tdtcp_voq_mean", s.Mean()
			}
		}
		return "tdtcp_voq_mean", 0
	})
}

// BenchmarkFig8aThroughput regenerates Figure 8a (bandwidth difference only).
func BenchmarkFig8aThroughput(b *testing.B) {
	benchFigure(b, "fig8", func(f *Figure) (string, float64) {
		return "cubic_gbps", goodputOf(f, "cubic")
	})
}

// BenchmarkFig8bVOQ regenerates Figure 8b's VOQ series.
func BenchmarkFig8bVOQ(b *testing.B) {
	benchFigure(b, "fig8", func(f *Figure) (string, float64) {
		for _, s := range f.VOQ {
			if s.Label == "tdtcp" {
				return "tdtcp_voq_mean", s.Mean()
			}
		}
		return "tdtcp_voq_mean", 0
	})
}

// BenchmarkFig9LatencyOnly regenerates Figure 9 (latency difference only at
// 100 Gbps; TDTCP and CUBIC should be nearly identical).
func BenchmarkFig9LatencyOnly(b *testing.B) {
	benchFigure(b, "fig9", func(f *Figure) (string, float64) {
		return "tdtcp_over_cubic", goodputOf(f, "tdtcp") / goodputOf(f, "cubic")
	})
}

// BenchmarkFig10Reordering regenerates Figure 10 (per-optical-day reordering
// and retransmission CDFs).
func BenchmarkFig10Reordering(b *testing.B) {
	benchFigure(b, "fig10", func(f *Figure) (string, float64) {
		for _, r := range f.Summary {
			if r.Label == "tdtcp" {
				return "tdtcp_events_p90", r.Extra["events_p90"]
			}
		}
		return "tdtcp_events_p90", 0
	})
}

// BenchmarkFig11Notification regenerates Figure 11 (notification
// optimizations on vs off).
func BenchmarkFig11Notification(b *testing.B) {
	benchFigure(b, "fig11", func(f *Figure) (string, float64) {
		return "optimized_gain", goodputOf(f, "optimized")/goodputOf(f, "unoptimized") - 1
	})
}

// BenchmarkFig13VOQHybrid regenerates appendix Figure 13.
func BenchmarkFig13VOQHybrid(b *testing.B) {
	benchFigure(b, "fig13", func(f *Figure) (string, float64) {
		return "cubic_voq_mean", f.Summary[0].Extra["voq_mean"]
	})
}

// BenchmarkFig14VOQLatencyOnly regenerates appendix Figure 14.
func BenchmarkFig14VOQLatencyOnly(b *testing.B) {
	benchFigure(b, "fig14", nil)
}

// BenchmarkHeadlineThroughput regenerates the abstract's headline comparison
// and reports the TDTCP:CUBIC ratio (paper: 1.24).
func BenchmarkHeadlineThroughput(b *testing.B) {
	benchFigure(b, "headline", func(f *Figure) (string, float64) {
		return "tdtcp_over_cubic", goodputOf(f, "tdtcp") / goodputOf(f, "cubic")
	})
}

// BenchmarkAblation regenerates the TDTCP mechanism ablation.
func BenchmarkAblation(b *testing.B) {
	benchFigure(b, "ablation", func(f *Figure) (string, float64) {
		return "filter_gain", goodputOf(f, "full")/goodputOf(f, "no-reorder-filter") - 1
	})
}

// --- microbenchmarks -------------------------------------------------------

// BenchmarkSegmentSerialize measures the Fig. 5 wire encoder (§4's 100-Gbps
// claim needs sub-µs per-packet costs).
func BenchmarkSegmentSerialize(b *testing.B) {
	s := &packet.Segment{
		Src: 1, Dst: 2, TTL: 64, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{
			Flags: packet.FlagACK | packet.FlagPSH, PayloadLen: 8960,
			TDPresent: true, TDFlags: packet.TDFlagData | packet.TDFlagACK, DataTDN: 1,
		},
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.Serialize(buf[:0])
	}
}

// BenchmarkSegmentParse measures the reusable-decode path.
func BenchmarkSegmentParse(b *testing.B) {
	s := &packet.Segment{
		Src: 1, Dst: 2, TTL: 64, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{
			Flags: packet.FlagACK, TDPresent: true, TDFlags: packet.TDFlagACK, AckTDN: 1,
			SACK: []packet.SACKBlock{{Start: 100, End: 200}, {Start: 300, End: 400}},
		},
	}
	wire := s.Serialize(nil)
	var dst packet.Segment
	dst.TCP.SACK = make([]packet.SACKBlock, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := packet.Parse(wire, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTDNStateSwitch measures the per-TDN state swap on a notification
// (§4.3: the paper optimizes this to support µs-scale reconfiguration).
func BenchmarkTDNStateSwitch(b *testing.B) {
	loop := sim.NewLoop(1)
	pol := core.New(2, core.Options{})
	c := tcp.NewConn(loop, tcp.Config{NumTDNs: 2, Policy: pol}, func(*packet.Segment) {})
	_ = c
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pol.OnNotify(i%2, 0)
	}
}

// BenchmarkEventLoop measures raw simulator event throughput. The body lives
// in internal/bench so cmd/tdbench tracks the same measurement.
func BenchmarkEventLoop(b *testing.B) { bench.EventLoop(b) }

// BenchmarkSimulatedSecond measures wall time per simulated optical week of
// the full 16-flow TDTCP experiment (events, transport, wire codec). This is
// also the tracing-disabled baseline for BenchmarkSimulatedWeekTraced: with
// no tracer attached every instrumentation site reduces to a nil check, so
// the two should differ only by the enabled tracer's encoding cost.
func BenchmarkSimulatedWeek(b *testing.B) { bench.SimulatedWeek(b) }

// BenchmarkSimulatedWeekSteady is BenchmarkSimulatedWeek with construction
// and ramp-up excluded: the fleet is built once, warmed for one optical week,
// and each iteration advances one more week. The steady-state hot path is
// required to be allocation-free (0 allocs/op, gated by ci.sh).
func BenchmarkSimulatedWeekSteady(b *testing.B) { bench.SimulatedWeekSteady(b) }

// BenchmarkSimulatedWeekFlight is BenchmarkSimulatedWeek with the always-on
// flight recorder attached (the experiments.Run default): the per-event ring
// write is the only added cost, budgeted at <5% events/sec with a zero
// allocs/op delta.
func BenchmarkSimulatedWeekFlight(b *testing.B) { bench.SimulatedWeekFlight(b) }

// BenchmarkSimulatedWeekSequential runs the 8-rack rotor TDTCP experiment
// through the engine with a single worker — the baseline for the sharded
// speedup ratio tracked in BENCH_simcore.json.
func BenchmarkSimulatedWeekSequential(b *testing.B) { bench.SimulatedWeekSequential(b) }

// BenchmarkSimulatedWeekSharded is the same experiment on four event-loop
// workers. The parity suite proves its output byte-identical to the
// sequential twin; this benchmark measures what the workers buy in wall
// time (tdbench -gate holds the ratio >= 1.5x on machines with >= 4 cores).
func BenchmarkSimulatedWeekSharded(b *testing.B) { bench.SimulatedWeekSharded(b) }

// BenchmarkSimulatedWeekTraced is BenchmarkSimulatedWeek with a full-mask
// JSONL tracer attached (writing to io.Discard), measuring the enabled-path
// tracing overhead on the end-to-end experiment.
func BenchmarkSimulatedWeekTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loop := NewLoop(int64(i + 1))
		tr := NewTracer(io.Discard, TraceAll)
		loop.SetTracer(tr)
		cfg := DefaultNetworkConfig()
		net, err := NewNetwork(loop, cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.SetTracer(tr)
		for f := 0; f < cfg.HostsPerRack; f++ {
			fl, err := BuildFlow(loop, net, f, TDTCP, FlowOptions{})
			if err != nil {
				b.Fatal(err)
			}
			fl.SetTracer(tr, f)
			fl.Start(-1)
		}
		end := Time(cfg.Schedule.Week())
		net.Start(end)
		loop.RunUntil(end)
		if err := tr.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerDisabled measures the per-event-site cost with tracing off:
// a nil *Tracer receiver, where Enabled is a nil check plus a mask test.
// This is the overhead every instrumentation point pays in production runs.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled(TraceTCP) {
			tr.Emit(TraceTCP, int64(i), "retransmit", 1, 0, 1.0, 2.0, "")
		}
	}
}

// BenchmarkTracerRing measures the enabled emit path into the in-memory ring
// (no encoding).
func BenchmarkTracerRing(b *testing.B) {
	tr := NewRingTracer(1024, TraceAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled(TraceTCP) {
			tr.Emit(TraceTCP, int64(i), "retransmit", 1, 0, 1.0, 2.0, "")
		}
	}
}

// BenchmarkTracerJSONL measures the enabled emit path including JSONL
// encoding, streaming to io.Discard.
func BenchmarkTracerJSONL(b *testing.B) {
	tr := NewTracer(io.Discard, TraceAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled(TraceTCP) {
			tr.Emit(TraceTCP, int64(i), "retransmit", 1, 0, 1.0, 2.0, "")
		}
	}
	if err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
}

var _ = experiments.AllVariants // keep the import for documentation links
