// hybrid-rdcn: the paper's headline experiment end-to-end.
//
// Runs every transport variant (TDTCP, CUBIC, DCTCP, reTCP, reTCP+dynamic
// buffers, MPTCP) over the §5.1 hybrid RDCN with 16 synchronized bulk flows,
// prints the goodput ranking with the paper's reference lines, and renders a
// coarse ASCII sequence graph of the measurement window — the shape of
// Figure 7a.
package main

import (
	"fmt"
	"strings"

	tdtcp "github.com/rdcn-net/tdtcp"
)

func main() {
	opts := tdtcp.FigureOptions{WarmupWeeks: 3, MeasureWeeks: 10}
	fig, err := tdtcp.Fig7(opts)
	if err != nil {
		panic(err)
	}

	fmt.Println("goodput ranking (hybrid RDCN, 16 flows, 10 measured weeks):")
	fmt.Print(fig.Render())

	// ASCII sequence graph: one row per series, progress bars proportional
	// to final delivered bytes over the 3-week plotting window.
	fmt.Println("\nsequence-graph endpoints over 3 plotted weeks (Fig. 7a shape):")
	var max float64
	for _, s := range fig.Seq {
		if s.Last() > max {
			max = s.Last()
		}
	}
	for _, s := range fig.Seq {
		bar := int(40 * s.Last() / max)
		fmt.Printf("  %-12s %s %6.1f MB\n", s.Label, strings.Repeat("#", bar), s.Last()/1e6)
	}

	fmt.Println("\nVOQ occupancy (Fig. 7b): mean / max packets of a 16-packet queue:")
	for _, s := range fig.VOQ {
		fmt.Printf("  %-12s mean=%5.2f max=%4.0f\n", s.Label, s.Mean(), s.Max())
	}
	fmt.Println("\npaper expectations: tdtcp ≈ retcpdyn at the top, 20-25% over cubic/dctcp,")
	fmt.Println("mptcp2f at the bottom near the packet-only line, tdtcp lowest VOQ occupancy.")
}
