// Faults: TDTCP on a lossy control channel, with and without the deadman.
//
// Runs the same 8-flow TDTCP workload three ways — clean, with 10% of the
// TDN-change notifications dropped, and with the loss plus the schedule
// deadman armed — then prints what the fault injector did and how the
// transport degraded. The faulted runs also attach the runtime invariant
// checker, revalidating every connection's scoreboard and the racks' VOQ
// accounting after each simulation event.
package main

import (
	"fmt"

	tdtcp "github.com/rdcn-net/tdtcp"
)

func run(label string, plan *tdtcp.FaultPlan, horizon tdtcp.Duration) {
	reg := tdtcp.NewMetricsRegistry()
	cfg := tdtcp.RunConfig{
		Variant:      tdtcp.TDTCP,
		Flows:        8,
		WarmupWeeks:  2,
		MeasureWeeks: 8,
		Seed:         42,
		Fault:        plan,
		FaultSeed:    7,
		Invariants:   plan != nil,
		Metrics:      reg,
	}
	// Run defaults the horizon from the schedule when a plan is set; an
	// explicit 0 here disables it to show the undegraded failure mode.
	cfg.Flow.TDTCPOpts.DeadmanHorizon = horizon

	res, err := tdtcp.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s %6.2f Gbps  switches=%-4d deadman=%-3d",
		label, res.GoodputGbps, res.TDTCPSwitches, res.DeadmanEngaged)
	if plan != nil {
		fmt.Printf("  dropped-notifies=%d  invariant-checks=%d violations=%d",
			res.FaultStats.NotifyDropped, res.InvariantChecks, len(res.Violations))
	}
	fmt.Println()
}

func main() {
	plan, err := tdtcp.ParseFaultPlan("nloss=0.10")
	if err != nil {
		panic(err)
	}

	fmt.Println("8 TDTCP flows, hybrid week, 8 measured weeks (optimal ~20.6 Gbps):")
	run("clean", nil, 0)
	// DeadmanHorizon must be non-zero to suppress Run's default arming; one
	// week is far beyond any notification gap, so it never trips.
	run("10% notify loss, no deadman", &plan, tdtcp.Duration(1400)*tdtcp.Microsecond)
	run("10% notify loss + deadman", &plan, 0)

	fmt.Println("\nWithout the deadman a lost day-start notification strands the")
	fmt.Println("sender on the previous TDN until the next notification arrives;")
	fmt.Println("with it, the sender infers the switch from the known schedule")
	fmt.Println("once the control channel has been silent past the horizon.")
	fmt.Println("\nSame demo from the CLI:")
	fmt.Println("  go run ./cmd/tdsim -run tdtcp -fault nloss=0.1 -invariants")
}
