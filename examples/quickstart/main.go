// Quickstart: one TDTCP flow on the paper's default hybrid RDCN.
//
// Builds the two-rack network (10 Gbps packet TDN + 100 Gbps optical TDN,
// 6:1 schedule), runs a single long-lived TDTCP flow for 20 optical weeks,
// and prints what the per-TDN state machinery learned.
package main

import (
	"fmt"

	tdtcp "github.com/rdcn-net/tdtcp"
)

func main() {
	loop := tdtcp.NewLoop(42)

	cfg := tdtcp.DefaultNetworkConfig()
	cfg.HostsPerRack = 1 // a single flow gets the fabric to itself
	net, err := tdtcp.NewNetwork(loop, cfg)
	if err != nil {
		panic(err)
	}

	flow, err := tdtcp.BuildFlow(loop, net, 0, tdtcp.TDTCP, tdtcp.FlowOptions{})
	if err != nil {
		panic(err)
	}

	weeks := 20
	end := tdtcp.Time(tdtcp.Duration(weeks) * cfg.Schedule.Week())
	net.Start(end)
	flow.Start(-1) // stream indefinitely
	loop.RunUntil(end)

	delivered := flow.Delivered()
	gbps := float64(delivered) * 8 / (float64(end) / 1e9) / 1e9
	fmt.Printf("ran %d optical weeks (%.1f ms simulated, %d events)\n",
		weeks, end.Microseconds()/1000, loop.Fired())
	fmt.Printf("delivered %.1f MB -> %.2f Gbps (optimal %.2f, packet-only %.2f)\n",
		float64(delivered)/1e6, gbps,
		tdtcp.OptimalGbps(cfg.Schedule, cfg.TDNs), float64(cfg.TDNs[0].Rate)/1e9)

	fmt.Println("\nper-TDN path state (the paper's §3.1 duplicated variables):")
	for i, st := range flow.Snd.States() {
		fmt.Printf("  TDN %d: cwnd=%5.1f pkts  ssthresh=%7.1f  srtt=%8v  rto=%8v  ca=%v\n",
			i, st.Cwnd(), st.CC.Ssthresh(), st.SRTT(), st.RTO(), st.CA())
	}

	s := flow.Snd.Stats
	fmt.Printf("\nsender: %d segs, %d retransmits (%d RTOs), %d reorder events\n",
		s.SegsSent, s.Retransmits, s.RTOFires, s.ReorderEvents)
	fmt.Printf("TDTCP filtered %d cross-TDN loss candidates; dropped %d mixed RTT samples\n",
		s.FilteredMarks, s.RTTSamplesDropped)
}
