// satellite: the §3.5 generality scenario.
//
// TDTCP's only assumption is that the network moves between a fixed set of
// internally-coherent conditions that recur within a connection's lifetime.
// Satellite connectivity fits: a LEO link alternates with a ground-fiber
// backup as satellites pass — at any time exactly one is in use, and the
// period between switches is tens of RTTs.
//
// This example builds that network (TDN 0 = satellite: 1 Gbps / 25 ms RTT;
// TDN 1 = ground fiber: 300 Mbps / 60 ms RTT; 400/250 ms dwell times with
// 10 ms handovers), runs TDTCP and CUBIC over it, and compares.
package main

import (
	"fmt"

	tdtcp "github.com/rdcn-net/tdtcp"
)

func satelliteScenario() tdtcp.Scenario {
	sched, err := tdtcp.NewSchedule([]tdtcp.ScheduleSlot{
		{TDN: 0, Dur: 400 * tdtcp.Millisecond}, // satellite pass (~16 RTTs)
		{TDN: tdtcp.NightTDN, Dur: 10 * tdtcp.Millisecond},
		{TDN: 1, Dur: 250 * tdtcp.Millisecond}, // fiber backup while signal is weak
		{TDN: tdtcp.NightTDN, Dur: 10 * tdtcp.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	return tdtcp.Scenario{
		Name: "satellite",
		TDNs: []tdtcp.TDNParams{
			{Rate: 1 * tdtcp.Gbps, Delay: 12 * tdtcp.Millisecond},   // ~25 ms RTT
			{Rate: 300 * tdtcp.Mbps, Delay: 30 * tdtcp.Millisecond}, // ~60 ms RTT
		},
		Schedule: sched,
		VOQCap:   1024, // ground-station buffers, far deeper than ToR SRAM
	}
}

func main() {
	scen := satelliteScenario()
	fmt.Printf("satellite schedule: week=%v, satellite share %.0f%%, fiber share %.0f%%\n",
		scen.Schedule.Week(), 100*scen.Schedule.TDNShare(0), 100*scen.Schedule.TDNShare(1))

	for _, v := range []tdtcp.Variant{tdtcp.TDTCP, tdtcp.Cubic} {
		res, err := tdtcp.Run(tdtcp.RunConfig{
			Variant:  v,
			Scenario: scen,
			Flows:    4,
			// Satellite RTTs are ms-scale: WAN-sized segments, a deeper
			// receive buffer for the ~3 MB BDP, and a stretched RTO floor.
			Flow: tdtcp.FlowOptions{
				MinRTO: 200 * tdtcp.Millisecond,
				MaxRTO: 3 * tdtcp.Second,
				MSS:    1460,
				RcvBuf: 16 << 20,
			},
			WarmupWeeks:  1,
			MeasureWeeks: 4,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n%-6s goodput %7.3f Gbps (optimal %.3f)\n", v, res.GoodputGbps, res.OptimalGbps)
		fmt.Printf("       retransmits=%d rtoFires=%d reorderEvents=%d filtered=%d\n",
			res.Sender.Retransmits, res.Sender.RTOFires,
			res.Sender.ReorderEvents, res.Sender.FilteredMarks)
	}
	fmt.Println("\nTDTCP keeps an independent congestion model per link, so each handover")
	fmt.Println("resumes from that link's checkpoint instead of re-probing from scratch.")
	fmt.Println("At these dwell times (~16 RTTs, the comfortable end of the paper's §3.5")
	fmt.Println("1-100×RTT operating regime) plain TCP has time to reconverge, so goodput")
	fmt.Println("is near parity — but TDTCP gets there with roughly half the retransmissions,")
	fmt.Println("because its per-link RTT estimators and cross-TDN reordering filter avoid")
	fmt.Println("the spurious recoveries that handovers inflict on a single-model sender.")
}
