// reordering: the cross-TDN reordering scenarios of Figures 3 and 12.
//
// All cross-TDN reordering happens when the fabric moves from a high-latency
// TDN to a low-latency one: segments (or their ACKs) launched on the slow
// path are overtaken by later ones on the fast path. This example constructs
// that situation directly — two endpoints joined by a wire whose delay is a
// function of the currently active TDN — and shows how TDTCP's relaxed
// detection (§3.4) classifies it versus an ablated sender that follows the
// classic dupACK/SACK heuristics.
package main

import (
	"fmt"

	tdtcp "github.com/rdcn-net/tdtcp"
)

// wire delivers serialized segments after the active TDN's one-way delay.
type wire struct {
	loop   *tdtcp.Loop
	active *int
	delays []tdtcp.Duration
	dst    func(*tdtcp.Segment)
}

func (w *wire) send(s *tdtcp.Segment) {
	b := s.Serialize(nil)
	d := w.delays[*w.active]
	w.loop.After(d, func() {
		var got tdtcp.Segment
		if err := tdtcp.ParseSegment(b, &got); err != nil {
			panic(err)
		}
		w.dst(&got)
	})
}

func run(relaxed bool) {
	loop := tdtcp.NewLoop(7)
	active := 0
	delays := []tdtcp.Duration{50 * tdtcp.Microsecond, 5 * tdtcp.Microsecond}

	opts := tdtcp.TDTCPOptions{DisableRelaxedReordering: !relaxed}
	mk := func() tdtcp.ConnConfig {
		return tdtcp.ConnConfig{
			NumTDNs: 2,
			Policy:  tdtcp.NewTDTCPPolicy(2, opts),
			CC:      tdtcp.NewRenoCC,
		}
	}
	wa := &wire{loop: loop, active: &active, delays: delays}
	wb := &wire{loop: loop, active: &active, delays: delays}
	a := tdtcp.NewConn(loop, mk(), wa.send)
	b := tdtcp.NewConn(loop, mk(), wb.send)
	a.LocalAddr, a.RemoteAddr, a.LocalPort, a.RemotePort = 1, 2, 1, 2
	b.LocalAddr, b.RemoteAddr, b.LocalPort, b.RemotePort = 2, 1, 2, 1
	wa.dst = func(s *tdtcp.Segment) { b.Input(s) }
	wb.dst = func(s *tdtcp.Segment) { a.Input(s) }

	b.Listen()
	a.Connect(0)
	runFor := func(d tdtcp.Duration) { loop.RunUntil(loop.Now().Add(d)) }
	runFor(2 * tdtcp.Millisecond)

	// Warm both TDN estimators.
	epoch := uint32(0)
	switchTDN := func(tdn int) {
		active = tdn
		epoch++
		a.Notify(tdn, epoch)
		b.Notify(tdn, epoch)
	}
	for i := 0; i < 8; i++ {
		a.QueueBytes(6 * 8960)
		runFor(400 * tdtcp.Microsecond)
		switchTDN(1 - active)
	}
	switchTDN(0)
	runFor(1 * tdtcp.Millisecond)

	// Figure 3(a): a batch launched on the slow TDN...
	a.QueueBytes(6 * 8960)
	runFor(10 * tdtcp.Microsecond)
	// ...the fabric switches to the fast TDN and a second batch overtakes.
	switchTDN(1)
	a.QueueBytes(6 * 8960)
	runFor(3 * tdtcp.Millisecond)

	mode := "classic heuristics (filter disabled)"
	if relaxed {
		mode = "TDTCP relaxed detection (§3.4)"
	}
	fmt.Printf("%s:\n", mode)
	fmt.Printf("  reordering events seen:  %d\n", a.Stats.ReorderEvents)
	fmt.Printf("  loss candidates filtered: %d\n", a.Stats.FilteredMarks)
	fmt.Printf("  segments retransmitted:  %d\n", a.Stats.Retransmits)
	fmt.Printf("  spurious copies at rcvr: %d (ground truth)\n", b.Stats.DupSegsRcvd)
	fmt.Printf("  bytes delivered in order: %d\n\n", b.Stats.BytesDelivered)
}

func main() {
	fmt.Println("cross-TDN data reordering (Fig. 3a): slow-TDN batch overtaken after a switch")
	fmt.Println()
	run(true)
	run(false)
	fmt.Println("Both senders deliver everything, but only the relaxed detector avoids")
	fmt.Println("retransmitting segments whose ACKs were merely delayed on the slow TDN.")
}
