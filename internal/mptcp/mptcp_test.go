package mptcp

import (
	"math"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
)

// pinnedWire models a path pinned to one TDN: frames sent (in either
// direction) while the TDN is inactive are held at the ToR and released when
// the TDN next activates — exactly the stranding that stalls MPTCP in §2.2.
type pinnedWire struct {
	loop   *sim.Loop
	tdn    int
	delay  sim.Dur
	active *int // pointer to the fabric's active TDN
	held   [][]byte
	dst    func(*packet.Segment)
}

func (w *pinnedWire) send(s *packet.Segment) {
	b := s.Serialize(nil)
	if *w.active != w.tdn {
		w.held = append(w.held, b)
		return
	}
	w.deliver(b)
}

func (w *pinnedWire) deliver(b []byte) {
	w.loop.After(w.delay, func() {
		var got packet.Segment
		if err := packet.Parse(b, &got); err != nil {
			panic(err)
		}
		w.dst(&got)
	})
}

// release flushes held frames when the TDN activates.
func (w *pinnedWire) release() {
	for _, b := range w.held {
		w.deliver(b)
	}
	w.held = nil
}

type env struct {
	t      *testing.T
	loop   *sim.Loop
	active int
	epoch  uint32
	snd    *Conn
	rcv    *Conn
	wires  []*pinnedWire // 0,1: snd->rcv per TDN; 2,3: rcv->snd per TDN
}

func newEnv(t *testing.T, cfg Config) *env {
	e := &env{t: t, loop: sim.NewLoop(5)}
	delays := []sim.Dur{50 * sim.Microsecond, 5 * sim.Microsecond}
	mk := func(tdn int) *pinnedWire {
		return &pinnedWire{loop: e.loop, tdn: tdn, delay: delays[tdn], active: &e.active}
	}
	w0, w1, w2, w3 := mk(0), mk(1), mk(0), mk(1)
	e.wires = []*pinnedWire{w0, w1, w2, w3}
	e.snd = New(e.loop, cfg, []func(*packet.Segment){w0.send, w1.send})
	e.rcv = New(e.loop, cfg, []func(*packet.Segment){w2.send, w3.send})
	for i, sub := range e.snd.Subflows() {
		sub.LocalAddr, sub.RemoteAddr = 1, 2
		sub.LocalPort, sub.RemotePort = uint16(1000+i), uint16(2000+i)
	}
	for i, sub := range e.rcv.Subflows() {
		sub.LocalAddr, sub.RemoteAddr = 2, 1
		sub.LocalPort, sub.RemotePort = uint16(2000+i), uint16(1000+i)
	}
	w0.dst = func(s *packet.Segment) { e.rcv.Subflows()[0].Input(s) }
	w1.dst = func(s *packet.Segment) { e.rcv.Subflows()[1].Input(s) }
	w2.dst = func(s *packet.Segment) { e.snd.Subflows()[0].Input(s) }
	w3.dst = func(s *packet.Segment) { e.snd.Subflows()[1].Input(s) }
	return e
}

// switchTDN moves the fabric to tdn, releasing that TDN's held frames and
// notifying both endpoints' schedulers.
func (e *env) switchTDN(tdn int) {
	e.active = tdn
	e.epoch++
	for _, w := range e.wires {
		if w.tdn == tdn {
			w.release()
		}
	}
	e.snd.Notify(tdn, e.epoch)
	e.rcv.Notify(tdn, e.epoch)
}

func (e *env) runFor(d sim.Dur) { e.loop.RunUntil(e.loop.Now().Add(d)) }

func TestSingleSubflowTransfer(t *testing.T) {
	e := newEnv(t, Config{})
	e.rcv.Listen()
	const total = 40 * 8960
	e.snd.Connect(total)
	e.runFor(20 * sim.Millisecond)
	if e.rcv.DeliveredBytes != total {
		t.Fatalf("delivered %d, want %d", e.rcv.DeliveredBytes, total)
	}
	if e.snd.Backlog() != 0 {
		t.Fatalf("backlog %d remains", e.snd.Backlog())
	}
	// All data rode subflow 0 (TDN 0 active throughout).
	if e.snd.Subflows()[1].Stats.BytesSent != 0 {
		t.Fatal("inactive subflow carried data")
	}
}

func TestSchedulerSteersToActiveSubflow(t *testing.T) {
	e := newEnv(t, Config{})
	e.rcv.Listen()
	e.snd.Connect(-1)
	e.runFor(2 * sim.Millisecond) // establish sub0; sub1's handshake is held
	e.switchTDN(1)
	e.runFor(3 * sim.Millisecond) // sub1 establishes, then carries data
	if e.snd.Subflows()[1].Stats.BytesSent == 0 {
		t.Fatal("active subflow 1 carried no data after switch")
	}
	// The inactive subflow may still RTO-retransmit stranded data, but it
	// must not be given any new data to send.
	nxt0 := e.snd.Subflows()[0].SndNxt()
	e.runFor(2 * sim.Millisecond)
	if e.snd.Subflows()[0].SndNxt() != nxt0 {
		t.Fatal("inactive subflow 0 was scheduled new data")
	}
	if e.snd.Stats.SchedulerSwitches != 1 {
		t.Fatalf("switches = %d", e.snd.Stats.SchedulerSwitches)
	}
}

func TestStrandedDataIsReinjected(t *testing.T) {
	// Reinjection is lazy: it fires when the shared send buffer fills with
	// data stranded on an inactive subflow (§2.2's flow-control stall). Use
	// a small buffer so the stall is reached quickly.
	e := newEnv(t, Config{SendBuf: 6 * 8960})
	e.rcv.Listen()
	e.snd.Connect(0)
	// Establish both subflows: bring TDN1 up once.
	e.runFor(2 * sim.Millisecond)
	e.switchTDN(1)
	e.runFor(2 * sim.Millisecond)
	if !e.snd.Subflows()[1].Established() {
		t.Fatal("subflow 1 not established")
	}
	// With TDN1 active, queue data, let it be sent but not yet delivered
	// (5us one-way), then yank the network back to TDN0: data+ACKs strand,
	// the buffer fills, and the scheduler must reinject on subflow 0.
	e.snd.QueueBytes(12 * 8960)
	e.runFor(2 * sim.Microsecond)
	e.switchTDN(0)
	e.runFor(5 * sim.Millisecond)
	if e.snd.Stats.BufferStalls == 0 {
		t.Fatal("send buffer never stalled")
	}
	if e.snd.Stats.ReinjectEvents == 0 {
		t.Fatal("no reinjection despite stranded subflow")
	}
	if e.rcv.DeliveredBytes != 12*8960 {
		t.Fatalf("delivered %d, want %d", e.rcv.DeliveredBytes, 12*8960)
	}
	// When TDN1 next activates, the stranded originals arrive as duplicates.
	e.switchTDN(1)
	e.runFor(2 * sim.Millisecond)
	if e.rcv.Stats.DupDSNBytes == 0 {
		t.Fatal("stranded originals never arrived as DSN duplicates")
	}
	if e.rcv.DeliveredBytes != 12*8960 {
		t.Fatalf("duplicates corrupted delivery count: %d", e.rcv.DeliveredBytes)
	}
}

func TestDeliveryMonotoneAcrossSwitches(t *testing.T) {
	e := newEnv(t, Config{})
	e.rcv.Listen()
	var last int64 = -1
	e.rcv.OnDelivered = func(_ sim.Time, total int64) {
		if total <= last {
			t.Fatalf("delivery regressed: %d after %d", total, last)
		}
		last = total
	}
	const total = 100 * 8960
	e.snd.Connect(total)
	// Alternate TDNs on a fixed cadence.
	for i := 0; i < 40 && e.rcv.DeliveredBytes < total; i++ {
		e.runFor(400 * sim.Microsecond)
		e.switchTDN(1 - e.active)
	}
	e.runFor(20 * sim.Millisecond)
	if e.rcv.DeliveredBytes != total {
		t.Fatalf("delivered %d, want %d (reinject=%d)", e.rcv.DeliveredBytes, total, e.snd.Stats.ReinjectEvents)
	}
}

func TestDSNReassembly(t *testing.T) {
	m := &Conn{Loop: sim.NewLoop(1)}
	// Out-of-order DSN arrival with overlaps and duplicates.
	m.acceptDSN(100, 50) // ooo
	if m.DeliveredBytes != 0 {
		t.Fatal("ooo delivered early")
	}
	m.acceptDSN(0, 50) // prefix
	if m.DeliveredBytes != 50 {
		t.Fatalf("delivered %d, want 50", m.DeliveredBytes)
	}
	m.acceptDSN(50, 50) // bridges to 150
	if m.DeliveredBytes != 150 {
		t.Fatalf("delivered %d, want 150", m.DeliveredBytes)
	}
	m.acceptDSN(0, 150) // full duplicate
	if m.DeliveredBytes != 150 || m.Stats.DupDSNBytes != 150 {
		t.Fatalf("dup handling wrong: delivered=%d dup=%d", m.DeliveredBytes, m.Stats.DupDSNBytes)
	}
	m.acceptDSN(140, 20) // partial overlap: 10 new
	if m.DeliveredBytes != 160 {
		t.Fatalf("delivered %d, want 160", m.DeliveredBytes)
	}
	// Many interleaved ranges.
	for _, r := range [][2]uint32{{300, 310}, {280, 290}, {320, 330}, {290, 300}, {310, 320}} {
		m.acceptDSN(r[0], int(r[1]-r[0]))
	}
	if m.DeliveredBytes != 160 {
		t.Fatal("disjoint ranges advanced the pointer")
	}
	m.acceptDSN(160, 120) // bridge everything: contiguous to 330
	if m.DeliveredBytes != 330 {
		t.Fatalf("delivered %d, want 330", m.DeliveredBytes)
	}
	if len(m.ranges) != 0 {
		t.Fatalf("ranges not drained: %v", m.ranges)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched outs accepted")
		}
	}()
	New(sim.NewLoop(1), Config{NumSubflows: 2}, []func(*packet.Segment){func(*packet.Segment) {}})
}

func TestSubflowPolicyRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("subflow policy accepted")
		}
	}()
	cfg := Config{Sub: tcp.Config{Policy: tcp.NewSinglePath()}}
	cfg.fillDefaults()
}

// TestNotifyEpochWraparound pins the RFC 1982 epoch gate of the tdm_schd
// scheduler across the uint32 wrap: notifications keep steering after the
// epoch counter passes MaxUint32, and stale/duplicate epochs from before the
// wrap stay rejected. (The raw `epoch <= m.epoch` comparison this replaces
// froze the scheduler on the pre-wrap subflow forever.)
func TestNotifyEpochWraparound(t *testing.T) {
	loop := sim.NewLoop(1)
	drop := func(*packet.Segment) {}
	m := New(loop, Config{}, []func(*packet.Segment){drop, drop})

	m.Notify(1, math.MaxUint32) // last epoch before the wrap
	if m.Active() != 1 {
		t.Fatalf("active = %d, want 1", m.Active())
	}
	m.Notify(0, 1) // first epoch after the wrap (epoch 0 is the bypass value)
	if m.Active() != 0 {
		t.Fatal("post-wrap notification was rejected as stale")
	}
	m.Notify(1, math.MaxUint32) // stale replay from before the wrap
	if m.Active() != 0 {
		t.Fatal("stale pre-wrap replay was applied")
	}
	m.Notify(1, 1) // exact duplicate of the applied epoch
	if m.Active() != 0 {
		t.Fatal("duplicate epoch was applied")
	}
	if got := m.Stats.SchedulerSwitches; got != 2 {
		t.Fatalf("scheduler switches = %d, want 2", got)
	}
}
