// Package mptcp models Multipath TCP the way the paper's §2.2 baseline uses
// it: one subflow pinned to each time-division network, a tdm_schd scheduler
// that steers all new data onto the subflow whose network is currently
// active, a two-level sequence space (per-subflow sequence numbers plus a
// connection-level data sequence number carried in a per-segment DSS
// mapping), and connection-level reinjection of segments stranded on an
// inactive subflow.
//
// Each subflow is a complete tcp.Conn with its own congestion control; the
// connection-level machinery lives here. The pathology the paper measures —
// flow-control stalls because ACKs for data sent on the optical subflow
// cannot return until the optical network is next active, forcing reinjection
// on the packet subflow — emerges from exactly this structure.
package mptcp

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
)

// Config parameterizes an MPTCP connection.
type Config struct {
	// NumSubflows is the number of subflows (= TDNs). Default 2.
	NumSubflows int
	// Sub is the per-subflow TCP configuration template. Policy must be
	// nil (subflows are single-path by construction).
	Sub tcp.Config
	// ChunkSegs is how many MSS-sized segments are assigned to a subflow
	// per scheduling decision. Default 8.
	ChunkSegs int
	// ReinjectDelay rate-limits connection-level reinjection: when the
	// shared send buffer is exhausted by data stranded on an inactive
	// subflow, the scheduler reinjects that data onto the active subflow at
	// most once per ReinjectDelay (MPTCP's opportunistic retransmission is
	// lazy: it fires on window/buffer blockage, not on path switches).
	// Default 100 µs.
	ReinjectDelay sim.Dur
	// PumpInterval is the scheduler's polling cadence. Default 20 µs.
	PumpInterval sim.Dur
	// SendBuf caps connection-level outstanding data (assigned to subflows
	// but not yet acknowledged at the subflow level), modelling the shared
	// MPTCP send buffer whose exhaustion causes the §2.2 flow-control
	// stalls. Default 64 KiB (the kernel's un-autotuned wmem starting
	// point, which short-lived scheduling windows never grow past).
	SendBuf int64
}

func (cfg *Config) fillDefaults() {
	if cfg.NumSubflows == 0 {
		cfg.NumSubflows = 2
	}
	if cfg.ChunkSegs == 0 {
		cfg.ChunkSegs = 8
	}
	if cfg.ReinjectDelay == 0 {
		cfg.ReinjectDelay = 100 * sim.Microsecond
	}
	if cfg.PumpInterval == 0 {
		cfg.PumpInterval = 20 * sim.Microsecond
	}
	if cfg.SendBuf == 0 {
		cfg.SendBuf = 64 << 10
	}
	if cfg.Sub.Policy != nil {
		panic("mptcp: subflows must use the default single-path policy")
	}
}

// mapping is one DSS ledger entry: subflow stream range → DSN range.
type mapping struct {
	subSeq     uint32 // absolute subflow sequence of the first byte
	dsn        uint32
	len        int
	reinjected bool
}

// Stats aggregates connection-level counters.
type Stats struct {
	Reinjections      uint64 // bytes reinjected onto another subflow
	ReinjectEvents    uint64
	DupDSNBytes       int64 // bytes received whose DSN range was already complete
	SchedulerSwitches uint64
	BufferStalls      uint64 // pump attempts blocked on the shared send buffer
}

// Conn is one endpoint of an MPTCP connection (sender and/or receiver).
type Conn struct {
	Loop *sim.Loop
	cfg  Config

	subs    []*tcp.Conn
	ledgers [][]mapping
	queued  []uint32 // bytes ever queued per subflow (stream offsets)

	active    int
	dsnNxt    uint32
	backlog   int64
	epoch     uint32
	epochSeen bool

	// Receiver: connection-level reassembly over DSN space.
	dsnDelivered uint32
	ranges       []packet.SACKBlock

	pumpTimer    sim.Timer
	pumpFn       func()
	nextReinject sim.Time

	Stats Stats
	// DeliveredBytes is the connection-level in-order delivery counter.
	DeliveredBytes int64
	// OnDelivered observes connection-level progress (the MPTCP curve in
	// the paper's sequence graphs).
	OnDelivered func(now sim.Time, total int64)
}

// New constructs an MPTCP endpoint. outs supplies one transmit function per
// subflow (each typically bound to a distinct port so the ToR pins it to its
// TDN).
func New(loop *sim.Loop, cfg Config, outs []func(*packet.Segment)) *Conn {
	cfg.fillDefaults()
	if len(outs) != cfg.NumSubflows {
		panic(fmt.Sprintf("mptcp: %d outs for %d subflows", len(outs), cfg.NumSubflows))
	}
	m := &Conn{Loop: loop, cfg: cfg}
	for i := 0; i < cfg.NumSubflows; i++ {
		i := i
		sub := tcp.NewConn(loop, cfg.Sub, outs[i])
		sub.TxSegmentHook = func(seg *tcp.TxSeg, h *packet.TCPHeader) {
			if dsn, ok := m.lookupDSN(i, seg.Seq); ok {
				h.MPDSSPresent = true
				h.DSN = dsn
			}
		}
		sub.RxDataHook = func(h *packet.TCPHeader) {
			if h.MPDSSPresent {
				m.acceptDSN(h.DSN, h.PayloadLen)
			}
		}
		m.subs = append(m.subs, sub)
		m.ledgers = append(m.ledgers, nil)
		m.queued = append(m.queued, 0)
	}
	return m
}

// Subflows exposes the per-TDN subflow connections (for wiring and tests).
func (m *Conn) Subflows() []*tcp.Conn { return m.subs }

// Active returns the subflow index tdm_schd currently schedules on.
func (m *Conn) Active() int { return m.active }

// Backlog returns connection-level bytes not yet assigned to any subflow.
func (m *Conn) Backlog() int64 { return m.backlog }

// Listen puts every subflow into passive-open state (receiver role).
func (m *Conn) Listen() {
	for _, sub := range m.subs {
		sub.Listen()
	}
}

// Connect opens every subflow and queues bytes of application data
// (bytes < 0 streams indefinitely).
func (m *Conn) Connect(bytes int64) {
	m.backlog = bytes
	for _, sub := range m.subs {
		sub.Connect(0)
	}
	m.schedulePump()
}

// QueueBytes adds application data to the connection-level backlog.
func (m *Conn) QueueBytes(n int64) {
	if m.backlog >= 0 && n > 0 {
		m.backlog += n
	}
	m.pump()
	m.schedulePump()
}

// Notify implements the tdm_schd steering decision: all new data goes to
// the subflow pinned to the newly active TDN, and after ReinjectDelay any
// data stranded on the other subflows is reinjected onto this one.
func (m *Conn) Notify(tdn int, epoch uint32) {
	if tdn < 0 || tdn >= len(m.subs) {
		return
	}
	// Stale/duplicate epochs are discarded with serial-number arithmetic
	// (RFC 1982), the same gate as tcp.Conn.Notify: a raw <= would reject
	// every notification after the epoch counter wraps past MaxUint32.
	// Epoch 0 bypasses the gate (tests and direct drivers); epochSeen
	// distinguishes "no epoch yet" from real epochs near the wrap.
	if epoch != 0 {
		if m.epochSeen && packet.SeqLEQ(epoch, m.epoch) {
			return
		}
		m.epochSeen = true
	}
	m.epoch = epoch
	if tdn == m.active {
		return
	}
	m.active = tdn
	m.Stats.SchedulerSwitches++
	m.pump()
}

// schedulePump arms the periodic scheduler tick. The tick callback is bound
// once (lazily) so steady-state rearming does not allocate.
func (m *Conn) schedulePump() {
	if m.pumpTimer.Active() {
		return
	}
	if m.pumpFn == nil {
		m.pumpFn = func() {
			m.pump()
			if m.backlog != 0 || m.anyOutstanding() {
				m.schedulePump()
			}
		}
	}
	m.pumpTimer = m.Loop.After(m.cfg.PumpInterval, m.pumpFn)
}

func (m *Conn) anyOutstanding() bool {
	for i := range m.subs {
		if len(m.ledgers[i]) > 0 {
			return true
		}
	}
	return false
}

// Outstanding returns connection-level bytes assigned to subflows but not
// yet acknowledged at the subflow level (send-buffer occupancy).
func (m *Conn) Outstanding() int64 {
	var total int64
	for i, sub := range m.subs {
		una := sub.SndUna()
		for _, e := range m.ledgers[i] {
			if e.reinjected {
				// The DSN liability moved to the reinjected copy; counting
				// both would wedge the buffer until the stranded original's
				// subflow ACKs return (real MPTCP frees on DATA_ACK).
				continue
			}
			end := e.subSeq + uint32(e.len)
			if packet.SeqLEQ(end, una) {
				continue
			}
			rem := int64(packet.SeqDiff(end, una))
			if rem > int64(e.len) {
				rem = int64(e.len)
			}
			total += rem
		}
	}
	return total
}

// pump tops up the active subflow's send queue from the connection-level
// backlog, one chunk at a time, until the subflow stops draining
// (cwnd-limited), the shared send buffer fills (the §2.2 stall), or the
// backlog empties.
func (m *Conn) pump() {
	m.prune()
	sub := m.subs[m.active]
	if !sub.Established() {
		return
	}
	sub.KickRecovery()
	mss := sub.Config().MSS
	for m.backlog != 0 && sub.Backlog() == 0 {
		if m.Outstanding() >= m.cfg.SendBuf {
			// Flow-control stall (§2.2): the shared send buffer is full of
			// data unacknowledged on a (likely inactive) subflow. Reinject
			// it onto the active subflow to resume, rate-limited.
			m.Stats.BufferStalls++
			if m.Loop.Now() >= m.nextReinject {
				m.nextReinject = m.Loop.Now().Add(m.cfg.ReinjectDelay)
				m.reinject(m.active)
			}
			return
		}
		chunk := int64(m.cfg.ChunkSegs * mss)
		if m.backlog > 0 && chunk > m.backlog {
			chunk = m.backlog
		}
		m.assign(m.active, m.dsnNxt, int(chunk))
		m.dsnNxt += uint32(chunk)
		if m.backlog > 0 {
			m.backlog -= chunk
		}
	}
}

// assign queues length bytes carrying DSN range [dsn, dsn+length) on
// subflow i and records the mapping.
func (m *Conn) assign(i int, dsn uint32, length int) {
	sub := m.subs[i]
	m.ledgers[i] = append(m.ledgers[i], mapping{
		subSeq: sub.AbsSeq(m.queued[i]),
		dsn:    dsn,
		len:    length,
	})
	m.queued[i] += uint32(length)
	sub.QueueBytes(int64(length))
}

// prune drops ledger entries fully acknowledged at the subflow level.
func (m *Conn) prune() {
	for i, sub := range m.subs {
		led := m.ledgers[i]
		k := 0
		for k < len(led) && packet.SeqLEQ(led[k].subSeq+uint32(led[k].len), sub.SndUna()) {
			k++
		}
		if k > 0 {
			m.ledgers[i] = append(led[:0], led[k:]...)
		}
	}
}

// lookupDSN maps an absolute subflow sequence to its DSN.
func (m *Conn) lookupDSN(i int, seq uint32) (uint32, bool) {
	for _, e := range m.ledgers[i] {
		off := seq - e.subSeq
		if off < uint32(e.len) {
			return e.dsn + off, true
		}
	}
	return 0, false
}

// reinject copies data stranded on inactive subflows onto subflow target:
// every ledger entry not yet acknowledged at the subflow level is re-queued
// with the same DSN range (MPTCP's connection-level retransmission, §2.2).
func (m *Conn) reinject(target int) {
	m.prune()
	sub := m.subs[target]
	if !sub.Established() {
		return
	}
	moved := 0
	for i := range m.subs {
		if i == target {
			continue
		}
		una := m.subs[i].SndUna()
		for k := range m.ledgers[i] {
			e := &m.ledgers[i][k]
			if e.reinjected {
				continue
			}
			// Unacked portion of the entry.
			start := una
			if packet.SeqGT(e.subSeq, una) {
				start = e.subSeq
			}
			rem := int(e.subSeq + uint32(e.len) - start)
			if rem <= 0 {
				continue
			}
			dsn := e.dsn + (start - e.subSeq)
			e.reinjected = true
			m.assign(target, dsn, rem)
			moved += rem
		}
	}
	if moved > 0 {
		m.Stats.Reinjections += uint64(moved)
		m.Stats.ReinjectEvents++
	}
}

// acceptDSN folds a received DSN range into connection-level reassembly.
func (m *Conn) acceptDSN(dsn uint32, length int) {
	if length <= 0 {
		return
	}
	start, end := dsn, dsn+uint32(length)
	if packet.SeqLEQ(end, m.dsnDelivered) {
		m.Stats.DupDSNBytes += int64(length)
		return
	}
	if packet.SeqLT(start, m.dsnDelivered) {
		m.Stats.DupDSNBytes += int64(m.dsnDelivered - start)
		start = m.dsnDelivered
	}
	if start == m.dsnDelivered {
		m.advance(end)
		return
	}
	m.insertRange(start, end)
}

func (m *Conn) advance(end uint32) {
	prev := m.dsnDelivered
	m.dsnDelivered = end
	for len(m.ranges) > 0 && packet.SeqLEQ(m.ranges[0].Start, m.dsnDelivered) {
		if packet.SeqGT(m.ranges[0].End, m.dsnDelivered) {
			m.dsnDelivered = m.ranges[0].End
		}
		m.ranges = m.ranges[1:]
	}
	m.DeliveredBytes += int64(m.dsnDelivered - prev)
	if m.OnDelivered != nil {
		m.OnDelivered(m.Loop.Now(), m.DeliveredBytes)
	}
}

func (m *Conn) insertRange(start, end uint32) {
	i := 0
	for i < len(m.ranges) && packet.SeqLT(m.ranges[i].Start, start) {
		i++
	}
	m.ranges = append(m.ranges, packet.SACKBlock{})
	copy(m.ranges[i+1:], m.ranges[i:])
	m.ranges[i] = packet.SACKBlock{Start: start, End: end}
	if i > 0 && packet.SeqGEQ(m.ranges[i-1].End, m.ranges[i].Start) {
		if packet.SeqGT(m.ranges[i].End, m.ranges[i-1].End) {
			m.ranges[i-1].End = m.ranges[i].End
		}
		m.ranges = append(m.ranges[:i], m.ranges[i+1:]...)
		i--
	}
	for i+1 < len(m.ranges) && packet.SeqGEQ(m.ranges[i].End, m.ranges[i+1].Start) {
		if packet.SeqGT(m.ranges[i+1].End, m.ranges[i].End) {
			m.ranges[i].End = m.ranges[i+1].End
		}
		m.ranges = append(m.ranges[:i+1], m.ranges[i+2:]...)
	}
}
