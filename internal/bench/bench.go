// Package bench holds the headline simulator benchmark bodies, shared
// between the `go test -bench` harness (the repo root's bench_test.go) and
// the tracked runner (cmd/tdbench), which invokes them through
// testing.Benchmark and records the results in BENCH_simcore.json.
//
// Both bodies report an "events/op" metric (simulation events fired per
// iteration) so the runner can derive events/sec, the simulator's headline
// throughput number.
package bench

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// EventLoop measures raw event-loop throughput: a single self-rescheduling
// timer firing b.N times. This is the floor cost of one simulation event —
// heap push, pop, dispatch — and must stay allocation-free.
func EventLoop(b *testing.B) {
	loop := sim.NewLoop(1)
	b.ReportAllocs()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			loop.After(1, fn)
		}
	}
	loop.After(1, fn)
	loop.Run()
	b.ReportMetric(1, "events/op")
}

// SimulatedWeek measures wall time per simulated optical week of the full
// 16-flow TDTCP experiment on the default hybrid RDCN: event loop, transport,
// wire codec, VOQs and control plane together.
func SimulatedWeek(b *testing.B) {
	b.ReportAllocs()
	var fired uint64
	for i := 0; i < b.N; i++ {
		loop := sim.NewLoop(int64(i + 1))
		cfg := rdcn.DefaultConfig()
		net, err := rdcn.New(loop, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fopt := experiments.FlowOptions{Slab: tcp.NewSlab(2*cfg.HostsPerRack, 4*cfg.HostsPerRack)}
		for f := 0; f < cfg.HostsPerRack; f++ {
			fl, err := experiments.BuildFlow(loop, net, f, experiments.TDTCP, fopt)
			if err != nil {
				b.Fatal(err)
			}
			fl.Start(-1)
		}
		end := sim.Time(cfg.Schedule.Week())
		net.Start(end)
		loop.RunUntil(end)
		fired += loop.Fired()
	}
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
}

// SimulatedWeekSteady measures the steady-state cost of the running
// experiment with construction and ramp-up excluded: one loop, network, and
// 16-flow TDTCP fleet are built once and warmed for a full optical week, then
// each iteration advances the same simulation by exactly one more week.
// Steady-state operation must not allocate: every per-frame and per-ACK
// object comes from a pool, slab, chunk, or scratch buffer, so the benchmark
// is the 0 allocs/op gate for the hot path (enforced by ci.sh).
func SimulatedWeekSteady(b *testing.B) {
	loop := sim.NewLoop(1)
	cfg := rdcn.DefaultConfig()
	net, err := rdcn.New(loop, cfg)
	if err != nil {
		b.Fatal(err)
	}
	fopt := experiments.FlowOptions{Slab: tcp.NewSlab(2*cfg.HostsPerRack, 4*cfg.HostsPerRack)}
	for f := 0; f < cfg.HostsPerRack; f++ {
		fl, err := experiments.BuildFlow(loop, net, f, experiments.TDTCP, fopt)
		if err != nil {
			b.Fatal(err)
		}
		fl.Start(-1)
	}
	week := int64(cfg.Schedule.Week())
	net.Start(sim.Time(week * int64(b.N+1)))
	loop.RunUntil(sim.Time(week)) // warm-up: handshakes, ramp, pool fill
	fired := loop.Fired()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.RunUntil(sim.Time(week * int64(i+2)))
	}
	b.StopTimer()
	b.ReportMetric(float64(loop.Fired()-fired)/float64(b.N), "events/op")
}

// simulatedWeekEngine runs one warmup+measurement TDTCP experiment on the
// 8-rack rotor fabric through experiments.Run at the given worker count.
// The sharded and sequential variants below share this body, so their
// events/sec ratio isolates exactly one variable: how many workers the
// engine spreads the per-rack lanes across.
func simulatedWeekEngine(b *testing.B, shards int) {
	b.ReportAllocs()
	var fired uint64
	for i := 0; i < b.N; i++ {
		m := trace.NewRegistry()
		_, err := experiments.Run(experiments.RunConfig{
			Variant: experiments.TDTCP, Scenario: experiments.MultiRack(8),
			Flows: 16, WarmupWeeks: 1, MeasureWeeks: 1, Seed: int64(i + 1),
			Shards: shards, Metrics: m,
		})
		if err != nil {
			b.Fatal(err)
		}
		fired += uint64(m.Counter("sim.events_fired"))
	}
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
}

// SimulatedWeekSequential is the single-worker twin of SimulatedWeekSharded:
// the same 8-rack rotor experiment with every lane run inline on one
// goroutine. Tracked so the sharded speedup is a ratio between two numbers
// measured the same way on the same machine.
func SimulatedWeekSequential(b *testing.B) { simulatedWeekEngine(b, 1) }

// SimulatedWeekSharded runs the 8-rack rotor experiment on four event-loop
// workers. Its output is byte-identical to SimulatedWeekSequential's (the
// parity suite proves that); only the wall clock may differ, and on a
// multi-core machine tdbench's gate holds the events/sec ratio above its
// floor.
func SimulatedWeekSharded(b *testing.B) { simulatedWeekEngine(b, 4) }

// SimulatedWeekFlight is SimulatedWeek with the always-on flight recorder
// attached, the default experiments.Run configuration: every instrumented
// site records into the fixed ring through a flight-only tracer (no JSONL
// encoding). The ring and tracer are allocated once outside the timed loop
// and the ring is Reset per iteration, so the measured steady state is the
// pure ring-write cost — budgeted at <5% events/sec and a zero allocs/op
// delta against SimulatedWeek (tracked in BENCH_simcore.json).
func SimulatedWeekFlight(b *testing.B) {
	flight := trace.NewFlight(trace.DefaultFlightLen, trace.DefaultFlightCats)
	tr := (*trace.Tracer)(nil).WithFlight(flight)
	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		flight.Reset()
		loop := sim.NewLoop(int64(i + 1))
		loop.SetTracer(tr)
		cfg := rdcn.DefaultConfig()
		net, err := rdcn.New(loop, cfg)
		if err != nil {
			b.Fatal(err)
		}
		net.SetTracer(tr)
		fopt := experiments.FlowOptions{Slab: tcp.NewSlab(2*cfg.HostsPerRack, 4*cfg.HostsPerRack)}
		for f := 0; f < cfg.HostsPerRack; f++ {
			fl, err := experiments.BuildFlow(loop, net, f, experiments.TDTCP, fopt)
			if err != nil {
				b.Fatal(err)
			}
			fl.SetTracer(tr, f)
			fl.Start(-1)
		}
		end := sim.Time(cfg.Schedule.Week())
		net.Start(end)
		loop.RunUntil(end)
		fired += loop.Fired()
	}
	b.ReportMetric(float64(fired)/float64(b.N), "events/op")
}
