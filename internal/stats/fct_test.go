package stats

import (
	"strings"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestSizeBucket(t *testing.T) {
	for _, tc := range []struct {
		size int64
		want string
	}{
		{1, "short"}, {99_999, "short"}, {100_000, "medium"},
		{9_999_999, "medium"}, {10_000_000, "long"}, {1 << 40, "long"},
	} {
		if got := SizeBucket(tc.size); got != tc.want {
			t.Errorf("SizeBucket(%d) = %q, want %q", tc.size, got, tc.want)
		}
	}
}

func TestFCTSummaries(t *testing.T) {
	var f FCT
	// Ten short flows at 100 µs, one long elephant at 10 ms.
	for i := 0; i < 10; i++ {
		f.Record(10e3, 0, sim.Time(100*sim.Microsecond))
	}
	f.Record(20e6, sim.Time(1*sim.Microsecond), sim.Time(1*sim.Microsecond).Add(10*sim.Millisecond))
	if f.N() != 11 {
		t.Fatalf("N = %d", f.N())
	}
	byBucket := map[string]FCTSummary{}
	for _, s := range f.Summaries() {
		byBucket[s.Bucket] = s
	}
	if s := byBucket["short"]; s.N != 10 || s.MeanUs != 100 || s.P99Us != 100 {
		t.Fatalf("short = %+v", s)
	}
	if s := byBucket["long"]; s.N != 1 || s.MeanUs != 10000 {
		t.Fatalf("long = %+v", s)
	}
	if s := byBucket["medium"]; s.N != 0 || s.MeanUs != 0 || s.P99Us != 0 {
		t.Fatalf("medium = %+v", s)
	}
	all := byBucket["all"]
	if all.N != 11 || all.MeanUs <= 100 || all.MeanUs >= 10000 {
		t.Fatalf("all = %+v", all)
	}
	if !strings.Contains(f.String(), "bucket") || !strings.Contains(f.String(), "short") {
		t.Fatalf("String() = %q", f.String())
	}
}

func TestFCTCDF(t *testing.T) {
	var f FCT
	f.Record(1e3, 0, sim.Time(50*sim.Microsecond))
	f.Record(1e3, 0, sim.Time(150*sim.Microsecond))
	c := f.CDF("short")
	if c.N() != 2 || c.Min() != 50 || c.Max() != 150 {
		t.Fatalf("short CDF n=%d min=%v max=%v", c.N(), c.Min(), c.Max())
	}
	if f.CDF("long").N() != 0 {
		t.Fatal("long bucket should be empty")
	}
}
