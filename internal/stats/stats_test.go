package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Label: "x"}
	s.Add(sim.Time(10*sim.Microsecond), 5)
	s.Add(sim.Time(20*sim.Microsecond), 9)
	if s.Len() != 2 || s.Last() != 9 || s.Max() != 9 {
		t.Fatalf("series basics: %+v", s)
	}
	if s.Mean() != 7 {
		t.Fatalf("mean = %v", s.Mean())
	}
	n := s.Normalize()
	if n.T[0] != 0 || n.V[0] != 0 || n.T[1] != 10 || n.V[1] != 4 {
		t.Fatalf("normalize: %+v", n)
	}
	w := s.Window(15, 25)
	if w.Len() != 1 || w.V[0] != 9 {
		t.Fatalf("window: %+v", w)
	}
	if !strings.Contains(s.CSV(), "10.000,5.000") {
		t.Fatalf("csv: %s", s.CSV())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := &Series{}
	if s.Last() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty series accessors")
	}
	if n := s.Normalize(); n.Len() != 0 {
		t.Fatal("normalize empty")
	}
}

func TestSampler(t *testing.T) {
	loop := sim.NewLoop(1)
	v := 0.0
	loop.At(sim.Time(25*sim.Microsecond), func() { v = 3 })
	sampler := NewSampler(loop, "test", 10*sim.Microsecond, sim.Time(50*sim.Microsecond), func() float64 { return v })
	loop.RunUntil(sim.Time(100 * sim.Microsecond))
	// Samples at 0,10,20,30,40,50.
	if sampler.Series.Len() != 6 {
		t.Fatalf("samples = %d: %+v", sampler.Series.Len(), sampler.Series)
	}
	if sampler.Series.V[2] != 0 || sampler.Series.V[3] != 3 {
		t.Fatalf("sampled values wrong: %+v", sampler.Series.V)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if c.N() != 5 || c.Min() != 1 || c.Max() != 5 {
		t.Fatalf("cdf basics")
	}
	if got := c.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := c.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := c.FracAtMost(3); got != 0.6 {
		t.Fatalf("FracAtMost(3) = %v", got)
	}
	if got := c.FracAtMost(0); got != 0 {
		t.Fatalf("FracAtMost(0) = %v", got)
	}
	s := c.Series("cdf")
	if s.Len() != 5 || s.V[4] != 1.0 {
		t.Fatalf("cdf series: %+v", s)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Percentile(50)) || !math.IsNaN(c.FracAtMost(1)) {
		t.Fatal("empty CDF should be NaN")
	}
}

func TestCDFPercentileProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, len(raw))
		for i, r := range raw {
			samples[i] = float64(r)
		}
		c := NewCDF(samples)
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		// Percentiles are monotone and bounded by min/max.
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := c.Percentile(p)
			if v < prev || v < sorted[0] || v > sorted[len(sorted)-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuckets(t *testing.T) {
	var b Buckets
	b.Close(10) // primes
	b.Close(15)
	b.Close(15)
	b.Close(40)
	want := []float64{5, 0, 25}
	if len(b.Deltas) != 3 {
		t.Fatalf("deltas = %v", b.Deltas)
	}
	for i := range want {
		if b.Deltas[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", b.Deltas, want)
		}
	}
	if b.CDF().Percentile(100) != 25 {
		t.Fatal("bucket cdf")
	}
}

func TestSeriesMaxMinAllNegative(t *testing.T) {
	s := &Series{}
	s.Add(sim.Time(1*sim.Microsecond), -7)
	s.Add(sim.Time(2*sim.Microsecond), -3)
	s.Add(sim.Time(3*sim.Microsecond), -12)
	// Max must come from the samples, not a 0 seed.
	if got := s.Max(); got != -3 {
		t.Fatalf("Max of all-negative series = %v, want -3", got)
	}
	if got := s.Min(); got != -12 {
		t.Fatalf("Min = %v, want -12", got)
	}
	if (&Series{}).Min() != 0 {
		t.Fatal("empty Min should be 0")
	}
}

func TestSamplerStop(t *testing.T) {
	loop := sim.NewLoop(1)
	sampler := NewSampler(loop, "test", 10*sim.Microsecond, sim.Time(100*sim.Microsecond), func() float64 { return 1 })
	loop.At(sim.Time(35*sim.Microsecond), func() { sampler.Stop() })
	loop.RunUntil(sim.Time(200 * sim.Microsecond))
	// Samples at 0,10,20,30; the 40 µs tick is cancelled.
	if sampler.Series.Len() != 4 {
		t.Fatalf("samples after Stop = %d: %+v", sampler.Series.Len(), sampler.Series.T)
	}
	sampler.Stop() // idempotent after finishing
}

func TestSamplerStopsReschedulingAtWindowEnd(t *testing.T) {
	loop := sim.NewLoop(1)
	NewSampler(loop, "test", 10*sim.Microsecond, sim.Time(50*sim.Microsecond), func() float64 { return 0 })
	loop.RunUntil(sim.Time(50 * sim.Microsecond))
	// The 50 µs tick is the last in-window one; no 60 µs timer may remain.
	if live := loop.Live(); live != 0 {
		t.Fatalf("%d timers still live after the sampling window", live)
	}
}

func TestCDFSingleSample(t *testing.T) {
	c := NewCDF([]float64{7})
	for _, p := range []float64{0, 25, 50, 99.9, 100} {
		if got := c.Percentile(p); got != 7 {
			t.Fatalf("Percentile(%v) = %v, want 7", p, got)
		}
	}
	if got := c.FracAtMost(6.999); got != 0 {
		t.Fatalf("FracAtMost below = %v", got)
	}
	if got := c.FracAtMost(7); got != 1 {
		t.Fatalf("FracAtMost at = %v", got)
	}
}

func TestCDFDuplicates(t *testing.T) {
	c := NewCDF([]float64{2, 2, 2, 2, 8})
	if got := c.Percentile(50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := c.FracAtMost(2); got != 0.8 {
		t.Fatalf("FracAtMost(2) = %v, want 0.8", got)
	}
	if got := c.FracAtMost(1.999); got != 0 {
		t.Fatalf("FracAtMost(1.999) = %v, want 0", got)
	}
	if got := c.FracAtMost(8); got != 1 {
		t.Fatalf("FracAtMost(8) = %v, want 1", got)
	}
}

func TestBucketsPriming(t *testing.T) {
	var b Buckets
	b.Close(100) // primes the baseline only
	if len(b.Deltas) != 0 {
		t.Fatalf("priming recorded a delta: %v", b.Deltas)
	}
	if b.CDF().N() != 0 {
		t.Fatal("primed-only Buckets should yield an empty CDF")
	}
	b.Close(100)
	if len(b.Deltas) != 1 || b.Deltas[0] != 0 {
		t.Fatalf("after second close: %v", b.Deltas)
	}
}

func TestThroughputGbps(t *testing.T) {
	// 125 MB in 100 ms = 10 Gbps.
	if got := ThroughputGbps(125_000_000, 100*sim.Millisecond); math.Abs(got-10) > 1e-9 {
		t.Fatalf("throughput = %v", got)
	}
	if ThroughputGbps(1, 0) != 0 {
		t.Fatal("zero duration")
	}
}
