// Package stats provides the measurement plumbing behind the paper's
// figures: time series (sequence graphs, VOQ occupancy), CDFs (reordering
// and retransmission distributions), periodic samplers, per-optical-day
// bucketing, and throughput computation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Series is a time series: T in microseconds, V in arbitrary units.
type Series struct {
	Label string
	T     []float64
	V     []float64
}

// Add appends one sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.T = append(s.T, t.Microseconds())
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Normalize returns a copy shifted so the first sample sits at (0, 0) — the
// paper normalizes both axes of its sequence graphs to the plotted window's
// start.
func (s *Series) Normalize() *Series {
	out := &Series{Label: s.Label, T: make([]float64, len(s.T)), V: make([]float64, len(s.V))}
	if len(s.T) == 0 {
		return out
	}
	t0, v0 := s.T[0], s.V[0]
	for i := range s.T {
		out.T[i] = s.T[i] - t0
		out.V[i] = s.V[i] - v0
	}
	return out
}

// Window returns the sub-series with from ≤ T < to (microseconds).
func (s *Series) Window(from, to float64) *Series {
	out := &Series{Label: s.Label}
	for i := range s.T {
		if s.T[i] >= from && s.T[i] < to {
			out.T = append(out.T, s.T[i])
			out.V = append(out.V, s.V[i])
		}
	}
	return out
}

// Last returns the final value (0 if empty).
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Max returns the maximum value (0 if empty). The maximum is taken over the
// samples alone — an all-negative series reports its true (negative) max,
// not 0.
func (s *Series) Max() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum value (0 if empty).
func (s *Series) Min() float64 {
	if len(s.V) == 0 {
		return 0
	}
	m := s.V[0]
	for _, v := range s.V[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of V (0 if empty).
func (s *Series) Mean() float64 {
	if len(s.V) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.V {
		sum += v
	}
	return sum / float64(len(s.V))
}

// CSV renders the series as "t_us,value" lines.
func (s *Series) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Label)
	for i := range s.T {
		fmt.Fprintf(&b, "%.3f,%.3f\n", s.T[i], s.V[i])
	}
	return b.String()
}

// Sampler polls a value function on a fixed cadence into a Series.
type Sampler struct {
	Series   *Series
	loop     *sim.Loop
	interval sim.Dur
	value    func() float64
	until    sim.Time
	timer    sim.Timer
	tickFn   func()
	stopped  bool
}

// NewSampler arms a periodic sampler on loop from the current time until
// until (inclusive of the start point).
func NewSampler(loop *sim.Loop, label string, interval sim.Dur, until sim.Time, value func() float64) *Sampler {
	s := &Sampler{Series: &Series{Label: label}, loop: loop, interval: interval, value: value, until: until}
	s.tickFn = s.tick
	s.tick()
	return s
}

// Stop cancels the sampler before its window ends; the collected series is
// kept. Stopping an already-finished sampler is a no-op.
func (s *Sampler) Stop() {
	s.stopped = true
	s.timer.Stop()
}

func (s *Sampler) tick() {
	if s.stopped || s.loop.Now() > s.until {
		return
	}
	s.Series.Add(s.loop.Now(), s.value())
	// Reschedule only while the next tick still lands inside the window —
	// the final past-the-end wake-up would sample nothing anyway, and not
	// arming it keeps the loop's timer queue clean after the window closes.
	if s.loop.Now().Add(s.interval) <= s.until {
		s.timer = s.loop.After(s.interval, s.tickFn)
	}
}

// CDF summarizes a sample set as an empirical CDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF (the input slice is copied).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Percentile returns the p-th percentile (p in [0,100]).
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := p / 100 * float64(len(c.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.sorted[lo]
	}
	frac := rank - float64(lo)
	return c.sorted[lo]*(1-frac) + c.sorted[hi]*frac
}

// Min and Max return the extremes.
func (c *CDF) Min() float64 { return c.Percentile(0) }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.Percentile(100) }

// FracAtMost returns the fraction of samples ≤ x.
func (c *CDF) FracAtMost(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Series renders the CDF as a plottable (value, fraction) series.
func (c *CDF) Series(label string) *Series {
	s := &Series{Label: label}
	n := len(c.sorted)
	for i, v := range c.sorted {
		s.T = append(s.T, v)
		s.V = append(s.V, float64(i+1)/float64(n))
	}
	return s
}

// Buckets accumulates per-interval deltas of a monotone counter: the paper's
// per-optical-day reordering/retransmission counts (Fig. 10).
type Buckets struct {
	last   float64
	primed bool
	Deltas []float64
}

// Close finishes the current bucket at counter value v and starts the next.
// The first call primes the baseline without recording.
func (b *Buckets) Close(v float64) {
	if b.primed {
		b.Deltas = append(b.Deltas, v-b.last)
	}
	b.last = v
	b.primed = true
}

// CDF returns the distribution of bucket deltas.
func (b *Buckets) CDF() *CDF { return NewCDF(b.Deltas) }

// ThroughputGbps converts bytes over a duration into Gbps.
func ThroughputGbps(bytes int64, d sim.Dur) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (float64(d) / float64(sim.Second)) / 1e9
}
