package stats

import (
	"fmt"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// FCT size-bucket boundaries, the conventional datacenter split: mice under
// 100 KB, elephants of 10 MB and more, everything else medium.
const (
	ShortFlowMax = 100e3
	LongFlowMin  = 10e6
)

// SizeBucket names the bucket a flow of the given byte size falls into.
func SizeBucket(size int64) string {
	switch {
	case size < ShortFlowMax:
		return "short"
	case size >= LongFlowMin:
		return "long"
	default:
		return "medium"
	}
}

// FCT collects flow completion times for a workload run, split by flow size
// bucket for the usual mice-vs-elephants analysis.
type FCT struct {
	sizes  []int64
	fctsUs []float64
}

// Record adds one completed flow.
func (f *FCT) Record(size int64, start, end sim.Time) {
	f.sizes = append(f.sizes, size)
	f.fctsUs = append(f.fctsUs, end.Sub(start).Microseconds())
}

// N returns the number of recorded flows.
func (f *FCT) N() int { return len(f.sizes) }

// CDF returns the completion-time distribution (microseconds) of the flows
// in the named bucket, or of all flows when bucket is "all".
func (f *FCT) CDF(bucket string) *CDF {
	var samples []float64
	for i, sz := range f.sizes {
		if bucket == "all" || SizeBucket(sz) == bucket {
			samples = append(samples, f.fctsUs[i])
		}
	}
	return NewCDF(samples)
}

// FCTSummary condenses one size bucket: flow count, mean and tail completion
// time in microseconds.
type FCTSummary struct {
	Bucket string
	N      int
	MeanUs float64
	P99Us  float64
}

// Buckets in reporting order.
var fctBuckets = [...]string{"all", "short", "medium", "long"}

// Summaries reports mean and p99 FCT for every size bucket (empty buckets
// report zero flows and NaN-free zeros).
func (f *FCT) Summaries() []FCTSummary {
	out := make([]FCTSummary, 0, len(fctBuckets))
	for _, b := range fctBuckets {
		c := f.CDF(b)
		s := FCTSummary{Bucket: b, N: c.N()}
		if c.N() > 0 {
			var sum float64
			for i, sz := range f.sizes {
				if b == "all" || SizeBucket(sz) == b {
					sum += f.fctsUs[i]
				}
			}
			s.MeanUs = sum / float64(c.N())
			s.P99Us = c.Percentile(99)
		}
		out = append(out, s)
	}
	return out
}

// String renders the summaries as an aligned table.
func (f *FCT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %14s %14s\n", "bucket", "flows", "mean FCT (us)", "p99 FCT (us)")
	for _, s := range f.Summaries() {
		fmt.Fprintf(&b, "%-8s %8d %14.1f %14.1f\n", s.Bucket, s.N, s.MeanUs, s.P99Us)
	}
	return b.String()
}
