package packet

import (
	"math"
	"testing"
)

// TestSeqWraparoundBoundaries pins the RFC 1982 helper family at the exact
// boundary values where raw uint32 comparisons go wrong: around zero, around
// MaxUint32, and at the half-space distance MaxUint32/2±1 where the signed
// interpretation flips.
func TestSeqWraparoundBoundaries(t *testing.T) {
	const (
		max  = math.MaxUint32     // 0xFFFFFFFF
		half = math.MaxUint32 / 2 // 0x7FFFFFFF
	)
	cases := []struct {
		name string
		a, b uint32
		lt   bool // SeqLT(a, b)
	}{
		// Around zero: max is one *before* zero, not 2^32-1 after it.
		{"max precedes 0", max, 0, true},
		{"0 follows max", 0, max, false},
		{"max precedes 16 past wrap", 0xFFFFFFF0, 0x10, true},
		{"16 follows pre-wrap max", 0x10, 0xFFFFFFF0, false},

		// Adjacent values.
		{"0 precedes 1", 0, 1, true},
		{"1 follows 0", 1, 0, false},

		// Half-space boundary: distances up to 2^31-1 read as "after";
		// exactly 2^31 flips sign and reads as "before" (RFC 1982 leaves
		// the midpoint undefined; the int32 idiom resolves it as shown).
		{"half distance still follows", half, 0, false},
		{"half+1 wraps to precede", half + 1, 0, true},
		{"half-1 follows", half - 1, 0, false},
		{"0 precedes half", 0, half, true},
		// Exactly 2^31 apart is RFC 1982's undefined midpoint: the int32
		// idiom reads *both* directions as "precedes".
		{"midpoint reads as precedes either way", 0, half + 1, true},
	}
	for _, c := range cases {
		if got := SeqLT(c.a, c.b); got != c.lt {
			t.Errorf("%s: SeqLT(%#x,%#x)=%v want %v", c.name, c.a, c.b, got, c.lt)
		}
		// The family must stay mutually consistent at every boundary pair:
		// GT is LT reversed, LEQ/GEQ are their complements plus equality.
		// The lone exception is the undefined midpoint, where the reversed
		// comparison also reads "precedes" and symmetry does not hold.
		if int32(c.a-c.b) != math.MinInt32 {
			if got := SeqGT(c.b, c.a); got != c.lt {
				t.Errorf("%s: SeqGT(%#x,%#x)=%v want %v", c.name, c.b, c.a, got, c.lt)
			}
		}
		if got := SeqLEQ(c.a, c.b); got != (c.lt || c.a == c.b) {
			t.Errorf("%s: SeqLEQ(%#x,%#x)=%v", c.name, c.a, c.b, got)
		}
		if got := SeqGEQ(c.a, c.b); got != (!c.lt || c.a == c.b) {
			t.Errorf("%s: SeqGEQ(%#x,%#x)=%v", c.name, c.a, c.b, got)
		}
	}
}

func TestSeqEquality(t *testing.T) {
	for _, v := range []uint32{0, 1, math.MaxUint32/2 - 1, math.MaxUint32 / 2, math.MaxUint32/2 + 1, math.MaxUint32} {
		if SeqLT(v, v) || SeqGT(v, v) {
			t.Errorf("SeqLT/SeqGT(%#x,%#x) must be false", v, v)
		}
		if !SeqLEQ(v, v) || !SeqGEQ(v, v) {
			t.Errorf("SeqLEQ/SeqGEQ(%#x,%#x) must be true", v, v)
		}
		if SeqDiff(v, v) != 0 {
			t.Errorf("SeqDiff(%#x,%#x) != 0", v, v)
		}
	}
}

func TestSeqMax(t *testing.T) {
	cases := []struct{ a, b, want uint32 }{
		{0xFFFFFFF0, 0x10, 0x10}, // later in sequence space despite smaller value
		{0x10, 0xFFFFFFF0, 0x10},
		{5, 7, 7},
		{7, 7, 7},
		{math.MaxUint32, 0, 0},
	}
	for _, c := range cases {
		if got := SeqMax(c.a, c.b); got != c.want {
			t.Errorf("SeqMax(%#x,%#x)=%#x want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqDiff(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int32
	}{
		{10, 3, 7},
		{3, 10, -7},
		{0, math.MaxUint32, 1},  // 0 is one past max
		{math.MaxUint32, 0, -1}, // max is one before 0
		{0x10, 0xFFFFFFF0, 0x20},
	}
	for _, c := range cases {
		if got := SeqDiff(c.a, c.b); got != c.want {
			t.Errorf("SeqDiff(%#x,%#x)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}
