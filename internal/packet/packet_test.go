package packet

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, s *Segment) *Segment {
	t.Helper()
	wire := s.Serialize(nil)
	var got Segment
	if err := Parse(wire, &got); err != nil {
		t.Fatalf("Parse: %v (segment %s)", err, s.Dissect())
	}
	return &got
}

func TestRoundTripData(t *testing.T) {
	s := &Segment{
		Src: 0x0a000001, Dst: 0x0a000002, TTL: 64, Proto: ProtoTCP, ECN: ECNECT0,
		TCP: TCPHeader{
			SrcPort: 40000, DstPort: 5001,
			Seq: 123456, Ack: 654321,
			Flags:     FlagACK | FlagPSH,
			Window:    1 << 20,
			TDPresent: true, TDFlags: TDFlagData | TDFlagACK,
			DataTDN: 1, AckTDN: 0,
			PayloadLen: 8960,
		},
	}
	got := roundTrip(t, s)
	h := got.TCP
	if h.Seq != 123456 || h.Ack != 654321 || h.PayloadLen != 8960 {
		t.Fatalf("fields mangled: %+v", h)
	}
	if !h.TDPresent || h.DataTDN != 1 || h.AckTDN != 0 || h.TDFlags != TDFlagData|TDFlagACK {
		t.Fatalf("TD option mangled: %+v", h)
	}
	if got.ECN != ECNECT0 {
		t.Fatalf("ECN = %d", got.ECN)
	}
	if got.WireLen() != s.WireLen() {
		t.Fatalf("WireLen mismatch")
	}
}

func TestRoundTripSYN(t *testing.T) {
	s := &Segment{
		Src: 1, Dst: 2, TTL: 64, Proto: ProtoTCP,
		TCP: TCPHeader{
			SrcPort: 1000, DstPort: 2000, Seq: 99,
			Flags:     FlagSYN,
			TDCapable: true, NumTDNs: 2,
			SACKPermitted: true,
			Window:        65535 << 8,
		},
	}
	got := roundTrip(t, s)
	if !got.TCP.TDCapable || got.TCP.NumTDNs != 2 {
		t.Fatalf("TD_CAPABLE lost: %+v", got.TCP)
	}
	if !got.TCP.SACKPermitted {
		t.Fatal("SACK-permitted lost")
	}
	if got.TCP.Flags != FlagSYN {
		t.Fatalf("flags = %x", got.TCP.Flags)
	}
}

func TestRoundTripSACK(t *testing.T) {
	blocks := []SACKBlock{{100, 200}, {300, 400}, {500, 600}, {700, 800}}
	s := &Segment{
		Src: 1, Dst: 2, TTL: 60, Proto: ProtoTCP,
		TCP: TCPHeader{
			Flags: FlagACK, Ack: 100,
			TDPresent: true, TDFlags: TDFlagACK, DataTDN: NoTDN, AckTDN: 1,
			SACK: blocks,
		},
	}
	got := roundTrip(t, s)
	if !reflect.DeepEqual(got.TCP.SACK, blocks) {
		t.Fatalf("SACK = %v, want %v", got.TCP.SACK, blocks)
	}
}

func TestRoundTripICMP(t *testing.T) {
	s := &Segment{
		Src: 0x0a000001, Dst: 0x0a0000ff, TTL: 1, Proto: ProtoICMP,
		ICMP: TDNNotification{ActiveTDN: 3, Epoch: 0xFEDC3456},
	}
	got := roundTrip(t, s)
	if got.ICMP.ActiveTDN != 3 || got.ICMP.Epoch != 0xFEDC3456 {
		t.Fatalf("ICMP = %+v", got.ICMP)
	}
	if got.WireLen() != 32 {
		t.Fatalf("ICMP WireLen = %d, want 32", got.WireLen())
	}
}

func TestParseReusesSACKStorage(t *testing.T) {
	s := &Segment{Src: 1, Dst: 2, Proto: ProtoTCP, TCP: TCPHeader{
		Flags: FlagACK, SACK: []SACKBlock{{1, 2}, {3, 4}},
	}}
	wire := s.Serialize(nil)
	var dst Segment
	dst.TCP.SACK = make([]SACKBlock, 0, 8)
	base := &dst.TCP.SACK[:1][0]
	if err := Parse(wire, &dst); err != nil {
		t.Fatal(err)
	}
	if len(dst.TCP.SACK) != 2 {
		t.Fatalf("SACK len = %d", len(dst.TCP.SACK))
	}
	if &dst.TCP.SACK[0] != base {
		t.Fatal("Parse reallocated SACK storage")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	s := &Segment{Src: 1, Dst: 2, Proto: ProtoTCP, TCP: TCPHeader{Seq: 42, Flags: FlagACK}}
	wire := s.Serialize(nil)
	for _, i := range []int{0, 5, 14, 25, len(wire) - 1} {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0xFF
		var got Segment
		if err := Parse(mut, &got); err == nil {
			// Flipping the ECN bits (byte 1 low bits) changes the IP
			// checksum, so every single-byte flip must be caught.
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestParseTruncated(t *testing.T) {
	s := &Segment{Src: 1, Dst: 2, Proto: ProtoTCP, TCP: TCPHeader{Flags: FlagACK}}
	wire := s.Serialize(nil)
	for n := 0; n < len(wire); n++ {
		var got Segment
		if err := Parse(wire[:n], &got); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestParseBadVersion(t *testing.T) {
	s := &Segment{Src: 1, Dst: 2, Proto: ProtoICMP}
	wire := s.Serialize(nil)
	wire[0] = 0x65 // version 6
	var got Segment
	if err := Parse(wire, &got); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestHeaderLenPadding(t *testing.T) {
	// 6-byte TD option must be padded to a 4-byte boundary.
	h := TCPHeader{TDPresent: true}
	if h.optionsLen()%4 != 0 {
		t.Fatalf("optionsLen = %d, not padded", h.optionsLen())
	}
	h2 := TCPHeader{TDCapable: true, SACKPermitted: true}
	if h2.optionsLen()%4 != 0 {
		t.Fatalf("optionsLen = %d, not padded", h2.optionsLen())
	}
}

func TestSerializeAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	s := &Segment{Src: 1, Dst: 2, Proto: ProtoICMP}
	out := s.Serialize(prefix)
	if len(out) != 3+s.HeaderLen() {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatal("prefix clobbered")
	}
	var got Segment
	if err := Parse(out[3:], &got); err != nil {
		t.Fatal(err)
	}
}

func TestDissect(t *testing.T) {
	s := &Segment{
		Src: 0x0a000001, Dst: 0x0a000002, Proto: ProtoTCP,
		TCP: TCPHeader{
			SrcPort: 1, DstPort: 2, Seq: 10, Ack: 20, Flags: FlagACK | FlagPSH,
			TDPresent: true, TDFlags: TDFlagData, DataTDN: 1,
			SACK: []SACKBlock{{5, 9}},
		},
	}
	d := s.Dissect()
	for _, want := range []string{"10.0.0.1", "10.0.0.2", "seq=10", "ack=20", "td_data_ack{D:tdn=1}", "sack=[5,9)"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dissect() = %q missing %q", d, want)
		}
	}
	icmp := &Segment{Proto: ProtoICMP, ICMP: TDNNotification{ActiveTDN: 1, Epoch: 7}}
	if d := icmp.Dissect(); !strings.Contains(d, "tdn-change active=1 epoch=7") {
		t.Errorf("ICMP Dissect() = %q", d)
	}
}

func TestFlagString(t *testing.T) {
	if s := FlagString(FlagSYN | FlagACK); s != "S." {
		t.Errorf("FlagString = %q", s)
	}
	if s := FlagString(0); s != "none" {
		t.Errorf("FlagString(0) = %q", s)
	}
}

// Property: serialize→parse is the identity on the fields that matter, for
// arbitrary header values.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq, ack uint32, sport, dport uint16, payload uint16, dtdn, atdn uint8, nsack uint8, ecn uint8) bool {
		payload %= 9001 // jumbo-frame payloads; the 16-bit total-length field caps larger ones
		rng := rand.New(rand.NewSource(int64(seq)<<32 | int64(ack)))
		s := &Segment{
			Src: rng.Uint32(), Dst: rng.Uint32(), TTL: 64, Proto: ProtoTCP,
			ECN: ecn & 0x03,
			TCP: TCPHeader{
				SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack,
				Flags:     FlagACK,
				Window:    rng.Uint32() & 0x00FFFF00,
				TDPresent: true, TDFlags: TDFlagData | TDFlagACK,
				DataTDN: dtdn, AckTDN: atdn,
				PayloadLen: int(payload),
			},
		}
		for i := 0; i < int(nsack%5); i++ {
			st := rng.Uint32()
			s.TCP.SACK = append(s.TCP.SACK, SACKBlock{st, st + uint32(rng.Intn(1e6))})
		}
		wire := s.Serialize(nil)
		var got Segment
		if err := Parse(wire, &got); err != nil {
			return false
		}
		if got.TCP.Seq != seq || got.TCP.Ack != ack || got.TCP.SrcPort != sport ||
			got.TCP.DstPort != dport || got.TCP.PayloadLen != int(payload) ||
			got.TCP.DataTDN != dtdn || got.TCP.AckTDN != atdn || got.ECN != ecn&0x03 {
			return false
		}
		if len(got.TCP.SACK) != len(s.TCP.SACK) {
			return false
		}
		for i := range got.TCP.SACK {
			if got.TCP.SACK[i] != s.TCP.SACK[i] {
				return false
			}
		}
		// Window survives modulo the wire scale quantum.
		return got.TCP.Window>>8 == s.TCP.Window>>8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse never panics on random bytes.
func TestParseFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Segment
	for i := 0; i < 5000; i++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		rng.Read(b)
		_ = Parse(b, &s) // must not panic
	}
	// Also fuzz around valid packets with random flips.
	base := (&Segment{Src: 1, Dst: 2, Proto: ProtoTCP, TCP: TCPHeader{
		Flags: FlagACK, TDPresent: true, TDFlags: TDFlagData, DataTDN: 1,
		SACK: []SACKBlock{{1, 2}},
	}}).Serialize(nil)
	for i := 0; i < 5000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 3; k++ {
			b[rng.Intn(len(b))] ^= byte(1 << rng.Intn(8))
		}
		_ = Parse(b, &s)
	}
}

func BenchmarkSerialize(b *testing.B) {
	s := &Segment{Src: 1, Dst: 2, TTL: 64, Proto: ProtoTCP, TCP: TCPHeader{
		Flags: FlagACK | FlagPSH, TDPresent: true, TDFlags: TDFlagData,
		DataTDN: 1, PayloadLen: 8960,
	}}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.Serialize(buf[:0])
	}
}

func BenchmarkParse(b *testing.B) {
	s := &Segment{Src: 1, Dst: 2, TTL: 64, Proto: ProtoTCP, TCP: TCPHeader{
		Flags: FlagACK, TDPresent: true, TDFlags: TDFlagACK, AckTDN: 1,
		SACK: []SACKBlock{{100, 200}, {300, 400}},
	}}
	wire := s.Serialize(nil)
	var dst Segment
	dst.TCP.SACK = make([]SACKBlock, 0, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Parse(wire, &dst); err != nil {
			b.Fatal(err)
		}
	}
}
