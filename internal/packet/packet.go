// Package packet implements the wire formats used by TDTCP (Figure 5 of the
// paper): a simplified IPv4+TCP segment carrying the TD_CAPABLE and
// TD_DATA_ACK TCP options, standard SACK options (RFC 2018), and the ICMP
// TDN-change notification.
//
// Every segment that crosses the simulated network is serialized to bytes by
// the sender and re-parsed by the receiver, in the style of gopacket's
// DecodingLayerParser: Parse decodes into a caller-owned, reusable struct and
// performs no allocation on the fast path beyond SACK block storage.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Protocol numbers for the simplified IPv4 header.
const (
	ProtoTCP  = 6
	ProtoICMP = 1
)

// ECN codepoints, carried in the low two bits of the IPv4 TOS byte
// (RFC 3168).
const (
	ECNNotECT = 0b00
	ECNECT1   = 0b01
	ECNECT0   = 0b10
	ECNCE     = 0b11
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
	FlagECE = 1 << 6
	FlagCWR = 1 << 7
)

// TCP option kinds.
const (
	OptEnd           = 0
	OptNOP           = 1
	OptMSS           = 2
	OptWScale        = 3
	OptSACKPermitted = 4
	OptSACK          = 5
	OptTimestamps    = 8
	// OptTDTCP is the experimental option kind (RFC 4727 experiment space)
	// shared by the TD_CAPABLE and TD_DATA_ACK subtypes of Figure 5.
	OptTDTCP = 253
	// OptMPDSS is a compact MPTCP data-sequence-signal option: it maps the
	// carrying segment's payload onto the connection-level sequence space
	// (the paper's MPTCP baseline needs per-segment DSN mappings).
	OptMPDSS = 254
)

// TDTCP option subtypes (Figure 5b and 5c).
const (
	SubTDCapable = 0x0
	SubTDDataACK = 0x1
)

// TD_DATA_ACK flag bits: D is set when the segment carries data (DataTDN
// valid), A when it carries an acknowledgment (AckTDN valid).
const (
	TDFlagData = 1 << 3
	TDFlagACK  = 1 << 2
)

// NoTDN marks an unset TDN ID field.
const NoTDN = 0xFF

// MaxTDNs is the largest number of distinct TDNs the single-byte ID fields
// of Figure 5 can express (§4.1 reserves 0xFF as "unset").
const MaxTDNs = 255

// SACKBlock is one contiguous received range [Start, End) in sequence space.
type SACKBlock struct {
	Start, End uint32
}

// TCPHeader is the parsed TCP header of a segment, including TDTCP options.
// PayloadLen stands in for the actual payload bytes: the simulator transfers
// bulk data whose content is irrelevant, so only its length is carried.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint32 // already descaled; serialized via a fixed wscale

	// TDTCP handshake option (SYN / SYN-ACK only).
	TDCapable bool
	NumTDNs   uint8

	// TD_DATA_ACK option, present on every established-connection segment.
	TDPresent bool
	TDFlags   uint8
	DataTDN   uint8 // valid when TDFlags&TDFlagData != 0
	AckTDN    uint8 // valid when TDFlags&TDFlagACK != 0

	SACKPermitted bool
	SACK          []SACKBlock

	// MPTCP data-sequence signal: when present, the payload's first byte
	// corresponds to connection-level sequence number DSN.
	MPDSSPresent bool
	DSN          uint32

	PayloadLen int
}

// Segment is a full simulated packet: simplified IPv4 plus either a TCP
// header or an ICMP TDN-change notification.
type Segment struct {
	Src, Dst uint32 // IPv4 addresses
	ECN      uint8  // ECN codepoint; switches set ECNCE to mark congestion
	TTL      uint8

	Proto uint8 // ProtoTCP or ProtoICMP
	TCP   TCPHeader
	ICMP  TDNNotification
}

// Clone returns an independent deep copy of the segment. Senders that retain
// a segment past the call that handed it over (the Conn.Out contract allows
// the connection to reuse its backing storage) must clone it first: the SACK
// slice in particular aliases the original's storage under a shallow copy.
func (s *Segment) Clone() *Segment {
	cp := *s
	if len(s.TCP.SACK) > 0 {
		cp.TCP.SACK = append([]SACKBlock(nil), s.TCP.SACK...)
	} else {
		cp.TCP.SACK = nil
	}
	return &cp
}

// TDNNotification is the ICMP TDN-change notification of Figure 5a: the
// first payload byte carries the currently-active TDN ID.
type TDNNotification struct {
	ActiveTDN uint8
	// Epoch counts schedule transitions, letting receivers discard
	// reordered notifications.
	Epoch uint32
}

const (
	icmpTypeTDNChange = 42 // private-use type for the Fig. 5a notification

	ipv4HeaderLen = 20
	tcpBaseLen    = 20
	// icmpLen is the TDN-change notification length: type/code/checksum
	// (4 bytes), active TDN + 3 reserved bytes, then the full 32-bit epoch.
	// The epoch must be carried whole — a truncated epoch would wrap early
	// and defeat the receiver's serial-number staleness check.
	icmpLen   = 12
	wireScale = 8 // fixed window scale used when serializing Window
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadProto    = errors.New("packet: unsupported protocol")
	ErrBadOption   = errors.New("packet: malformed TCP option")
)

// internet checksum (RFC 1071).
//
//lint:hotpath runs twice per frame (serialize and parse)
func checksum(b []byte) uint16 {
	// Eight bytes per iteration: four 16-bit big-endian words extracted
	// from one 64-bit load. The ones-complement sum is associative, so the
	// wide accumulation folds to the same RFC 1071 result; a uint64
	// accumulator cannot overflow below 2^48 summed words.
	var sum uint64
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := binary.BigEndian.Uint64(b[i:])
		sum += v>>48 + v>>32&0xFFFF + v>>16&0xFFFF + v&0xFFFF
	}
	for ; i+1 < len(b); i += 2 {
		sum += uint64(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint64(b[len(b)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}

// optionsLen returns the serialized, padded TCP options length.
func (h *TCPHeader) optionsLen() int {
	n := 0
	if h.TDCapable {
		n += 4
	}
	if h.SACKPermitted {
		n += 2
	}
	if h.TDPresent {
		n += 6
	}
	if h.MPDSSPresent {
		n += 6
	}
	if len(h.SACK) > 0 {
		n += 2 + 8*len(h.SACK)
	}
	return (n + 3) &^ 3 // pad to 4-byte boundary
}

// WireLen returns the total serialized length of the segment in bytes,
// including the virtual payload. This is the length links and queues charge
// for.
func (s *Segment) WireLen() int {
	switch s.Proto {
	case ProtoICMP:
		return ipv4HeaderLen + icmpLen
	default:
		return ipv4HeaderLen + tcpBaseLen + s.TCP.optionsLen() + s.TCP.PayloadLen
	}
}

// HeaderLen returns the number of bytes Serialize will produce (everything
// except the virtual payload).
func (s *Segment) HeaderLen() int {
	switch s.Proto {
	case ProtoICMP:
		return ipv4HeaderLen + icmpLen
	default:
		return ipv4HeaderLen + tcpBaseLen + s.TCP.optionsLen()
	}
}

// Serialize appends the wire encoding of the segment headers to buf and
// returns the extended slice. The virtual payload is not materialized; its
// length is encoded in the IPv4 total-length field.
func (s *Segment) Serialize(buf []byte) []byte {
	start := len(buf)
	hl := s.HeaderLen()
	total := s.WireLen()
	buf = append(buf, make([]byte, hl)...)
	b := buf[start:]

	// IPv4.
	b[0] = 0x45 // version 4, IHL 5
	b[1] = s.ECN & 0x03
	binary.BigEndian.PutUint16(b[2:], uint16(min(total, 0xFFFF)))
	b[8] = s.TTL
	b[9] = s.Proto
	binary.BigEndian.PutUint32(b[12:], s.Src)
	binary.BigEndian.PutUint32(b[16:], s.Dst)
	binary.BigEndian.PutUint16(b[10:], checksum(b[:ipv4HeaderLen]))

	p := b[ipv4HeaderLen:]
	switch s.Proto {
	case ProtoICMP:
		p[0] = icmpTypeTDNChange
		p[1] = 0 // code
		p[4] = s.ICMP.ActiveTDN
		binary.BigEndian.PutUint32(p[8:], s.ICMP.Epoch)
		binary.BigEndian.PutUint16(p[2:], checksum(p[:icmpLen]))
	case ProtoTCP:
		h := &s.TCP
		binary.BigEndian.PutUint16(p[0:], h.SrcPort)
		binary.BigEndian.PutUint16(p[2:], h.DstPort)
		binary.BigEndian.PutUint32(p[4:], h.Seq)
		binary.BigEndian.PutUint32(p[8:], h.Ack)
		dataOff := (tcpBaseLen + h.optionsLen()) / 4
		p[12] = byte(dataOff << 4)
		p[13] = h.Flags
		binary.BigEndian.PutUint16(p[14:], uint16(min(int(h.Window>>wireScale), 0xFFFF)))
		// Options.
		o := p[tcpBaseLen:]
		i := 0
		if h.TDCapable {
			o[i] = OptTDTCP
			o[i+1] = 4
			o[i+2] = SubTDCapable << 4
			o[i+3] = h.NumTDNs
			i += 4
		}
		if h.SACKPermitted {
			o[i] = OptSACKPermitted
			o[i+1] = 2
			i += 2
		}
		if h.TDPresent {
			o[i] = OptTDTCP
			o[i+1] = 6
			o[i+2] = SubTDDataACK<<4 | (h.TDFlags & 0x0F)
			o[i+3] = h.DataTDN
			o[i+4] = h.AckTDN
			o[i+5] = 0
			i += 6
		}
		if h.MPDSSPresent {
			o[i] = OptMPDSS
			o[i+1] = 6
			binary.BigEndian.PutUint32(o[i+2:], h.DSN)
			i += 6
		}
		if len(h.SACK) > 0 {
			o[i] = OptSACK
			o[i+1] = byte(2 + 8*len(h.SACK))
			j := i + 2
			for _, blk := range h.SACK {
				binary.BigEndian.PutUint32(o[j:], blk.Start)
				binary.BigEndian.PutUint32(o[j+4:], blk.End)
				j += 8
			}
			i = j
		}
		for i < len(o) {
			o[i] = OptNOP
			i++
		}
		binary.BigEndian.PutUint16(p[16:], checksum(p))
	default:
		panic(fmt.Sprintf("packet: cannot serialize protocol %d", s.Proto))
	}
	return buf
}

// Parse decodes the wire bytes b into s, reusing s's storage (gopacket
// DecodingLayer style). s.TCP.SACK is truncated and re-filled. b must contain
// the full header as produced by Serialize.
func Parse(b []byte, s *Segment) error {
	if len(b) < ipv4HeaderLen {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	if checksum(b[:ipv4HeaderLen]) != 0 {
		return ErrBadChecksum
	}
	s.ECN = b[1] & 0x03
	total := int(binary.BigEndian.Uint16(b[2:]))
	s.TTL = b[8]
	s.Proto = b[9]
	s.Src = binary.BigEndian.Uint32(b[12:])
	s.Dst = binary.BigEndian.Uint32(b[16:])

	p := b[ipv4HeaderLen:]
	switch s.Proto {
	case ProtoICMP:
		if len(p) < icmpLen {
			return ErrTruncated
		}
		if checksum(p[:icmpLen]) != 0 {
			return ErrBadChecksum
		}
		if p[0] != icmpTypeTDNChange {
			return fmt.Errorf("packet: unexpected ICMP type %d", p[0])
		}
		s.ICMP.ActiveTDN = p[4]
		s.ICMP.Epoch = binary.BigEndian.Uint32(p[8:])
		return nil
	case ProtoTCP:
		if len(p) < tcpBaseLen {
			return ErrTruncated
		}
		h := &s.TCP
		*h = TCPHeader{SACK: h.SACK[:0]}
		h.SrcPort = binary.BigEndian.Uint16(p[0:])
		h.DstPort = binary.BigEndian.Uint16(p[2:])
		h.Seq = binary.BigEndian.Uint32(p[4:])
		h.Ack = binary.BigEndian.Uint32(p[8:])
		dataOff := int(p[12]>>4) * 4
		if dataOff < tcpBaseLen || len(p) < dataOff {
			return ErrTruncated
		}
		if checksum(p[:dataOff]) != 0 {
			return ErrBadChecksum
		}
		h.Flags = p[13]
		h.Window = uint32(binary.BigEndian.Uint16(p[14:])) << wireScale
		h.PayloadLen = total - ipv4HeaderLen - dataOff
		if h.PayloadLen < 0 {
			return ErrTruncated
		}
		o := p[tcpBaseLen:dataOff]
		for i := 0; i < len(o); {
			switch o[i] {
			case OptEnd:
				i = len(o)
			case OptNOP:
				i++
			default:
				if i+1 >= len(o) || int(o[i+1]) < 2 || i+int(o[i+1]) > len(o) {
					return ErrBadOption
				}
				olen := int(o[i+1])
				body := o[i+2 : i+olen]
				switch o[i] {
				case OptSACKPermitted:
					h.SACKPermitted = true
				case OptSACK:
					if (olen-2)%8 != 0 {
						return ErrBadOption
					}
					for j := 0; j+8 <= len(body); j += 8 {
						h.SACK = append(h.SACK, SACKBlock{
							Start: binary.BigEndian.Uint32(body[j:]),
							End:   binary.BigEndian.Uint32(body[j+4:]),
						})
					}
				case OptMPDSS:
					if olen != 6 {
						return ErrBadOption
					}
					h.MPDSSPresent = true
					h.DSN = binary.BigEndian.Uint32(body)
				case OptTDTCP:
					if len(body) < 1 {
						return ErrBadOption
					}
					switch body[0] >> 4 {
					case SubTDCapable:
						if olen != 4 {
							return ErrBadOption
						}
						h.TDCapable = true
						h.NumTDNs = body[1]
					case SubTDDataACK:
						if olen != 6 {
							return ErrBadOption
						}
						h.TDPresent = true
						h.TDFlags = body[0] & 0x0F
						h.DataTDN = body[1]
						h.AckTDN = body[2]
					default:
						return ErrBadOption
					}
				}
				i += olen
			}
		}
		return nil
	default:
		return ErrBadProto
	}
}

// FlagString renders TCP flags in the conventional compact form.
func FlagString(f uint8) string {
	var b strings.Builder
	for _, fl := range []struct {
		bit  uint8
		name string
	}{
		{FlagSYN, "S"}, {FlagFIN, "F"}, {FlagRST, "R"}, {FlagPSH, "P"},
		{FlagACK, "."}, {FlagECE, "E"}, {FlagCWR, "W"},
	} {
		if f&fl.bit != 0 {
			b.WriteString(fl.name)
		}
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

// Dissect renders the segment in a Wireshark-like one-line form, matching
// what the paper's modified Wireshark dissector displays for TDTCP packets.
func (s *Segment) Dissect() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IP %s > %s ecn=%d ", ipStr(s.Src), ipStr(s.Dst), s.ECN)
	switch s.Proto {
	case ProtoICMP:
		fmt.Fprintf(&b, "ICMP tdn-change active=%d epoch=%d", s.ICMP.ActiveTDN, s.ICMP.Epoch)
	case ProtoTCP:
		h := &s.TCP
		fmt.Fprintf(&b, "TCP %d > %d [%s] seq=%d ack=%d win=%d len=%d",
			h.SrcPort, h.DstPort, FlagString(h.Flags), h.Seq, h.Ack, h.Window, h.PayloadLen)
		if h.TDCapable {
			fmt.Fprintf(&b, " td_capable{ntdns=%d}", h.NumTDNs)
		}
		if h.TDPresent {
			fmt.Fprintf(&b, " td_data_ack{")
			if h.TDFlags&TDFlagData != 0 {
				fmt.Fprintf(&b, "D:tdn=%d", h.DataTDN)
			}
			if h.TDFlags&TDFlagACK != 0 {
				if h.TDFlags&TDFlagData != 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "A:tdn=%d", h.AckTDN)
			}
			b.WriteByte('}')
		}
		if h.MPDSSPresent {
			fmt.Fprintf(&b, " dss{dsn=%d}", h.DSN)
		}
		for _, blk := range h.SACK {
			fmt.Fprintf(&b, " sack=[%d,%d)", blk.Start, blk.End)
		}
	default:
		fmt.Fprintf(&b, "proto=%d", s.Proto)
	}
	return b.String()
}

func ipStr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}
