package packet

// Serial-number arithmetic (RFC 1982) on the wrapping 32-bit sequence space
// shared by TCP sequence/ACK numbers, MPTCP data sequence numbers, and the
// TDN-change notification epoch counter.
//
// Raw ordered comparisons (<, >, <=, >=) between two uint32 sequence values
// are wrong near the wrap: 0x00000010 comes *after* 0xFFFFFFF0, not before.
// Every ordered comparison between values living in a wrapping space must go
// through this family; the tdlint seqarith check enforces that repo-wide.
//
// The helpers follow the usual TCP convention (Linux's before()/after()):
// a is "less than" b when the signed distance a-b is negative, which is
// correct whenever the two values are within 2^31 of each other — true by
// construction for TCP windows and for epoch counters that advance by one
// per schedule transition.

// SeqLT reports whether a precedes b in sequence space.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports whether a precedes or equals b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports whether a follows b in sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports whether a follows or equals b in sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqDiff returns the signed distance a-b in sequence space: positive when a
// follows b, negative when a precedes it.
func SeqDiff(a, b uint32) int32 { return int32(a - b) }
