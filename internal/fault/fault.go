// Package fault is the deterministic fault-injection subsystem of the
// reproduction: it perturbs the RDCN control plane (ICMP TDN-change
// notification loss, duplication, extra delay), the data plane (frame drop,
// corruption and reordering bursts on the shared host NIC pipes), the
// optical fabric itself (circuit flaps, schedule drift), and the retcpdyn
// VOQ resizing — all without the perturbed layers knowing who is deciding:
// netem and rdcn expose passive hook points, and this package owns every
// coin flip.
//
// Determinism is the design center. The injector draws from its own
// rand.Rand (seeded by the -faultseed flag, independent of the simulation
// seed), and every decision happens at a fixed point in the single-threaded
// event order, so two runs with the same (seed, faultseed, plan) triple
// replay byte-identically — the property the trace-diff acceptance test
// pins. Every injected fault emits a trace.CatFault event and bumps a
// "fault.*" counter, so a post-mortem can correlate a TCP anomaly with the
// exact fault that caused it.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Plan declares which faults to inject and how hard. The zero value injects
// nothing. Probabilities are per-decision (per notification, per frame);
// durations bound uniform draws.
type Plan struct {
	// Control plane: per-host TDN-change notification faults.
	NotifyLoss  float64 // P(notification never delivered)
	NotifyDup   float64 // P(a duplicate copy is also delivered)
	NotifyDelay sim.Dur // extra delivery delay, uniform [0, NotifyDelay)

	// Data plane: per-frame faults on the rack ingress NIC pipes.
	Drop         float64 // P(frame dropped)
	Corrupt      float64 // P(one wire byte flipped; receiver checksum drops it)
	Reorder      float64 // P(frame held back by an extra delay)
	ReorderDelay sim.Dur // extra hold-back bound (default 20µs when unset)
	Burst        int     // a triggered drop extends to this many consecutive frames

	// Fabric: circuit flaps and schedule drift.
	Flaps    int     // number of day slots whose circuit misbehaves
	FlapFrac float64 // 0 = day never comes up; f∈(0,1) = circuit dies after f of the day
	Drift    sim.Dur // per-week data-plane schedule offset, uniform [-Drift, +Drift]

	// Control plane: retcpdyn VOQ-resize failures.
	ResizeFail float64 // P(one queue silently ignores a recapping)
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	return p.NotifyLoss > 0 || p.NotifyDup > 0 || p.NotifyDelay > 0 ||
		p.Drop > 0 || p.Corrupt > 0 || p.Reorder > 0 ||
		p.Flaps > 0 || p.Drift > 0 || p.ResizeFail > 0
}

// Parse builds a plan from the -fault flag's compact key=value spec, e.g.
// "nloss=0.1,drop=0.01,flaps=2". Keys:
//
//	nloss, ndup       notification loss / duplication probability
//	ndelay            notification extra-delay bound (Go duration)
//	drop, corrupt     frame drop / corruption probability
//	reorder, rdelay   frame reordering probability / hold-back bound
//	burst             consecutive frames per triggered drop
//	flaps, flapfrac   flapped day count / fraction of the day survived
//	drift             per-week schedule drift bound (Go duration)
//	resizefail        VOQ-resize failure probability
func Parse(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return p, fmt.Errorf("fault: spec entry %q is not key=value", kv)
		}
		var err error
		switch k {
		case "nloss":
			p.NotifyLoss, err = parseProb(v)
		case "ndup":
			p.NotifyDup, err = parseProb(v)
		case "ndelay":
			p.NotifyDelay, err = parseDur(v)
		case "drop":
			p.Drop, err = parseProb(v)
		case "corrupt":
			p.Corrupt, err = parseProb(v)
		case "reorder":
			p.Reorder, err = parseProb(v)
		case "rdelay":
			p.ReorderDelay, err = parseDur(v)
		case "burst":
			p.Burst, err = strconv.Atoi(v)
			if err == nil && (p.Burst < 0 || p.Burst > 1<<20) {
				err = fmt.Errorf("out of range")
			}
		case "flaps":
			p.Flaps, err = strconv.Atoi(v)
			if err == nil && p.Flaps < 0 {
				err = fmt.Errorf("negative")
			}
		case "flapfrac":
			p.FlapFrac, err = parseProb(v)
			if err == nil && p.FlapFrac >= 1 {
				err = fmt.Errorf("must be below 1")
			}
		case "drift":
			p.Drift, err = parseDur(v)
		case "resizefail":
			p.ResizeFail, err = parseProb(v)
		default:
			return p, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: spec %s=%q: %v", k, v, err)
		}
	}
	return p, nil
}

func parseProb(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability outside [0,1]")
	}
	return f, nil
}

func parseDur(v string) (sim.Dur, error) {
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return sim.Dur(d.Nanoseconds()), nil
}

// Stats counts faults actually injected (as opposed to planned).
type Stats struct {
	NotifyDropped   uint64
	NotifyDuped     uint64
	NotifyDelayed   uint64
	FramesDropped   uint64
	FramesCorrupted uint64
	FramesDelayed   uint64
	CircuitFlaps    uint64
	ResizeFailures  uint64
}

// flapWindow is a planned dark interval of one scheduled day.
type flapWindow struct {
	from, to sim.Time
	tdn      int
}

// Injector drives a Plan against one rdcn.Network. Construct with New,
// attach observability with SetTracer/SetMetrics, wire the hooks with
// Install, then call Start (before running the loop) to plan the
// time-scheduled faults.
type Injector struct {
	loop *sim.Loop
	plan Plan
	seed int64
	rng  *rand.Rand

	tracer  *trace.Tracer
	metrics *trace.Registry

	net       *rdcn.Network
	subs      []*frameInj // per-rack data-plane streams (Cluster mode only)
	flaps     []flapWindow
	drift     []sim.Dur // per-week data-plane offsets
	week      sim.Dur
	burstLeft int

	stats Stats
}

// New returns an injector for plan whose randomness is seeded by seed —
// independently of the simulation seed, so the same workload can be swept
// across fault realizations (and vice versa).
func New(loop *sim.Loop, plan Plan, seed int64) *Injector {
	return &Injector{loop: loop, plan: plan, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the counts of faults injected so far, summing the per-rack
// data-plane streams when the network runs on the sharded engine. Under a
// Cluster, read at barriers only (the run's natural read points — result
// assembly, conservation checks — all are).
func (inj *Injector) Stats() Stats {
	s := inj.stats
	for _, fi := range inj.subs {
		s.FramesDropped += fi.stats.FramesDropped
		s.FramesCorrupted += fi.stats.FramesCorrupted
		s.FramesDelayed += fi.stats.FramesDelayed
	}
	return s
}

// Plan returns the injector's plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// SetTracer attaches a tracer; injected faults emit trace.CatFault events.
func (inj *Injector) SetTracer(tr *trace.Tracer) { inj.tracer = tr }

// SetMetrics attaches a registry; injected faults bump "fault.*" counters.
func (inj *Injector) SetMetrics(reg *trace.Registry) { inj.metrics = reg }

// emit reports a CatFault event (flow -1: faults are network-level).
func (inj *Injector) emit(name string, tdn int, a, b float64) {
	if inj.tracer.Enabled(trace.CatFault) {
		inj.tracer.Emit(trace.CatFault, int64(inj.loop.Now()), name, -1, tdn, a, b, "")
	}
}

// count bumps one injected-fault counter in the attached registry.
func (inj *Injector) count(name string) {
	inj.metrics.Add("fault."+name, 1)
}

// Install wires the plan's hooks into the network: notification faults and
// resize failures into the control plane, frame faults onto both racks'
// ingress pipes, flaps and drift into the data plane's schedule view. Hooks
// for disabled fault classes are left nil, so they cost nothing.
func (inj *Injector) Install(n *rdcn.Network) {
	inj.net = n
	p := &inj.plan
	if p.NotifyLoss > 0 || p.NotifyDup > 0 || p.NotifyDelay > 0 {
		n.Cfg.NotifyFault = inj.notifyFault
	}
	if p.Drop > 0 || p.Corrupt > 0 || p.Reorder > 0 {
		if n.Cfg.Cluster != nil {
			// Frame faults fire on rack lanes: give every rack its own
			// substream, burst state, and stats so verdicts are a function
			// of (seed, rack, frame index) — never of the shard count.
			for _, rack := range n.Racks {
				fi := &frameInj{
					inj:  inj,
					rack: rack,
					rng:  rand.New(rand.NewSource(int64(mix64(uint64(inj.seed) + uint64(rack.ID) + 1)))),
				}
				inj.subs = append(inj.subs, fi)
				rack.Uplink().Fault = fi.frameFault
			}
		} else {
			for _, rack := range n.Racks {
				rack.Uplink().Fault = inj.frameFault
			}
		}
	}
	if p.Flaps > 0 {
		n.Cfg.CircuitOK = inj.circuitOK
	}
	if p.Drift > 0 {
		inj.week = n.Cfg.Schedule.Week()
		n.Cfg.ScheduleOffset = inj.scheduleOffset
	}
	if p.ResizeFail > 0 {
		n.Cfg.ResizeFault = inj.resizeFault
	}
}

// Start plans the time-scheduled faults (circuit flaps, schedule drift) for
// the run [0, until). Call after Install and before running the loop; the
// planning draws happen here, up front, so they do not depend on workload
// event interleaving.
func (inj *Injector) Start(until sim.Time) {
	if inj.net == nil {
		panic("fault: Start before Install")
	}
	inj.planFlaps(until)
	inj.planDrift(until)
}

// --- control-plane faults --------------------------------------------------

func (inj *Injector) notifyFault(rack, host, tdn int, epoch uint32) rdcn.NotifyFate {
	p := &inj.plan
	var fate rdcn.NotifyFate
	if p.NotifyLoss > 0 && inj.rng.Float64() < p.NotifyLoss {
		fate.Drop = true
		inj.stats.NotifyDropped++
		inj.count("notify_dropped")
		inj.emit("notify_drop", tdn, float64(rack), float64(host))
	}
	if p.NotifyDelay > 0 && !fate.Drop {
		fate.Extra = sim.Dur(inj.rng.Int63n(int64(p.NotifyDelay)))
		if fate.Extra > 0 {
			inj.stats.NotifyDelayed++
			inj.count("notify_delayed")
			inj.emit("notify_delay", tdn, float64(rack*1000+host), float64(fate.Extra))
		}
	}
	if p.NotifyDup > 0 && inj.rng.Float64() < p.NotifyDup {
		fate.Dup = true
		// The duplicate trails the original: it arrives as an exact replay
		// of an already-applied epoch, exercising the receiver's dup gate.
		fate.DupExtra = fate.Extra + 2*sim.Microsecond
		if p.NotifyDelay > 0 {
			fate.DupExtra += sim.Dur(inj.rng.Int63n(int64(p.NotifyDelay)))
		}
		inj.stats.NotifyDuped++
		inj.count("notify_duplicated")
		inj.emit("notify_dup", tdn, float64(rack*1000+host), float64(fate.DupExtra))
	}
	return fate
}

func (inj *Injector) resizeFault(rack, q, newCap int) bool {
	if inj.rng.Float64() >= inj.plan.ResizeFail {
		return false
	}
	inj.stats.ResizeFailures++
	inj.count("resize_failures")
	inj.emit("resize_fail", -1, float64(rack), float64(q))
	return true
}

// --- data-plane frame faults -----------------------------------------------

func (inj *Injector) frameFault(f netem.Frame) netem.FrameFate {
	p := &inj.plan
	var fate netem.FrameFate
	switch {
	case inj.burstLeft > 0:
		inj.burstLeft--
		fate.Drop = true
	case p.Drop > 0 && inj.rng.Float64() < p.Drop:
		fate.Drop = true
		if p.Burst > 1 {
			inj.burstLeft = p.Burst - 1
		}
	case p.Corrupt > 0 && inj.rng.Float64() < p.Corrupt:
		fate.Corrupt = true
	case p.Reorder > 0 && inj.rng.Float64() < p.Reorder:
		bound := p.ReorderDelay
		if bound <= 0 {
			bound = 20 * sim.Microsecond
		}
		fate.Extra = sim.Dur(1 + inj.rng.Int63n(int64(bound)))
	}
	switch {
	case fate.Drop:
		inj.stats.FramesDropped++
		inj.count("frames_dropped")
		inj.emit("frame_drop", -1, float64(f.Len), float64(inj.burstLeft))
	case fate.Corrupt:
		inj.stats.FramesCorrupted++
		inj.count("frames_corrupted")
		inj.emit("frame_corrupt", -1, float64(f.Len), 0)
	case fate.Extra > 0:
		inj.stats.FramesDelayed++
		inj.count("frames_delayed")
		inj.emit("frame_delay", -1, float64(f.Len), float64(fate.Extra))
	}
	return fate
}

// frameInj is one rack's data-plane fault stream under the sharded engine:
// frame verdicts are decided on the rack's lane, so the RNG, burst state,
// and stats are private to the rack, and fault events emit through the
// rack's lane tracer at the rack's clock. The legacy single-loop wiring
// keeps the Injector's shared stream byte for byte; this split exists so
// engine-mode verdict sequences are per-rack — identical for every shard
// count — and lanes never contend.
type frameInj struct {
	inj       *Injector
	rack      *rdcn.Rack
	rng       *rand.Rand
	burstLeft int
	stats     Stats
}

// mix64 is the splitmix64 finalizer, used to derive statistically
// independent per-rack fault seeds from adjacent (seed, rack) inputs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// emit reports a CatFault event on the rack's lane tracer.
func (fi *frameInj) emit(name string, a, b float64) {
	tr := fi.rack.Tracer()
	if tr.Enabled(trace.CatFault) {
		tr.Emit(trace.CatFault, int64(fi.rack.Loop().Now()), name, -1, -1, a, b, "")
	}
}

// frameFault mirrors Injector.frameFault decision for decision, against the
// rack's private stream.
func (fi *frameInj) frameFault(f netem.Frame) netem.FrameFate {
	p := &fi.inj.plan
	var fate netem.FrameFate
	switch {
	case fi.burstLeft > 0:
		fi.burstLeft--
		fate.Drop = true
	case p.Drop > 0 && fi.rng.Float64() < p.Drop:
		fate.Drop = true
		if p.Burst > 1 {
			fi.burstLeft = p.Burst - 1
		}
	case p.Corrupt > 0 && fi.rng.Float64() < p.Corrupt:
		fate.Corrupt = true
	case p.Reorder > 0 && fi.rng.Float64() < p.Reorder:
		bound := p.ReorderDelay
		if bound <= 0 {
			bound = 20 * sim.Microsecond
		}
		fate.Extra = sim.Dur(1 + fi.rng.Int63n(int64(bound)))
	}
	switch {
	case fate.Drop:
		fi.stats.FramesDropped++
		fi.inj.count("frames_dropped")
		fi.emit("frame_drop", float64(f.Len), float64(fi.burstLeft))
	case fate.Corrupt:
		fi.stats.FramesCorrupted++
		fi.inj.count("frames_corrupted")
		fi.emit("frame_corrupt", float64(f.Len), 0)
	case fate.Extra > 0:
		fi.stats.FramesDelayed++
		fi.inj.count("frames_delayed")
		fi.emit("frame_delay", float64(f.Len), float64(fate.Extra))
	}
	return fate
}

// --- fabric faults ---------------------------------------------------------

// planFlaps picks Plan.Flaps distinct day slots in [0, until) and plans a
// dark window over each: the whole day with FlapFrac 0 (the circuit never
// comes up), its tail with FlapFrac f (it dies early). Notifications still
// announce the day — that control/data disagreement is the point.
func (inj *Injector) planFlaps(until sim.Time) {
	if inj.plan.Flaps <= 0 {
		return
	}
	sched := inj.net.Cfg.Schedule
	type day struct {
		start, end sim.Time
		tdn        int
	}
	var days []day
	for t := sim.Time(0); t < until; {
		tdn, ok, end := sched.At(t)
		if ok {
			days = append(days, day{t, end, tdn})
		}
		t = end
	}
	k := inj.plan.Flaps
	if k > len(days) {
		k = len(days)
	}
	// Partial Fisher-Yates: the first k entries become a uniform sample
	// without replacement.
	idx := make([]int, len(days))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + inj.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := append([]int(nil), idx[:k]...)
	sort.Ints(chosen)
	for _, di := range chosen {
		d := days[di]
		from := d.start
		if f := inj.plan.FlapFrac; f > 0 {
			from = d.start.Add(sim.Dur(f * float64(d.end.Sub(d.start))))
		}
		w := flapWindow{from: from, to: d.end, tdn: d.tdn}
		inj.flaps = append(inj.flaps, w)
		inj.loop.At(w.from, func() {
			inj.stats.CircuitFlaps++
			inj.count("circuit_flaps")
			inj.emit("flap", w.tdn, float64(w.to.Sub(w.from)), inj.plan.FlapFrac)
			// An in-progress frame finishes, then the drainer finds the
			// path dark; nothing to kick until the nominal day-end
			// transition.
		})
	}
}

func (inj *Injector) circuitOK(tdn int, now sim.Time) bool {
	for _, w := range inj.flaps {
		if now >= w.from && now < w.to {
			return false
		}
	}
	return true
}

// planDrift draws one data-plane schedule offset per week, uniform in
// [-Drift, +Drift], and schedules drainer kicks at the shifted slot
// boundaries (the nominal transitions kick at the wrong instants once the
// data plane has drifted away from them).
func (inj *Injector) planDrift(until sim.Time) {
	if inj.plan.Drift <= 0 {
		return
	}
	sched := inj.net.Cfg.Schedule
	nweeks := int(until/sim.Time(inj.week)) + 1
	for w := 0; w <= nweeks; w++ {
		off := sim.Dur(inj.rng.Int63n(2*int64(inj.plan.Drift)+1)) - inj.plan.Drift
		inj.drift = append(inj.drift, off)
		ws := sim.Time(w) * sim.Time(inj.week)
		if ws < until {
			off := off
			inj.loop.At(ws, func() {
				inj.count("drift_weeks")
				inj.emit("drift", -1, float64(off), float64(inj.week))
			})
		}
	}
	for t := sim.Time(0); t < until; {
		_, _, end := sched.At(t)
		at := end.Add(inj.scheduleOffset(end))
		if at < 0 {
			at = 0
		}
		if at < until {
			inj.loop.At(at, inj.net.KickAll)
		}
		t = end
	}
}

func (inj *Injector) scheduleOffset(now sim.Time) sim.Dur {
	if len(inj.drift) == 0 {
		return 0
	}
	w := int(now / sim.Time(inj.week))
	if w < 0 {
		w = 0
	}
	if w >= len(inj.drift) {
		w = len(inj.drift) - 1
	}
	return inj.drift[w]
}
