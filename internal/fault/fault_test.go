package fault

import (
	"reflect"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Plan
	}{
		{"", Plan{}},
		{"nloss=0.1", Plan{NotifyLoss: 0.1}},
		{"nloss=0.05,ndup=0.02,ndelay=3us", Plan{NotifyLoss: 0.05, NotifyDup: 0.02, NotifyDelay: 3 * sim.Microsecond}},
		{"drop=0.01,corrupt=0.02,reorder=0.03,rdelay=40us,burst=4",
			Plan{Drop: 0.01, Corrupt: 0.02, Reorder: 0.03, ReorderDelay: 40 * sim.Microsecond, Burst: 4}},
		{"flaps=2,flapfrac=0.5,drift=2us,resizefail=0.1",
			Plan{Flaps: 2, FlapFrac: 0.5, Drift: 2 * sim.Microsecond, ResizeFail: 0.1}},
		{" nloss=1 , drop=0 ", Plan{NotifyLoss: 1}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}

	bad := []string{
		"nloss", "nloss=1.5", "nloss=-0.1", "drop=x", "ndelay=-3us",
		"ndelay=17", "burst=-1", "burst=9999999", "flaps=-2",
		"flapfrac=1", "flapfrac=1.2", "wat=1", "drift=1x",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted invalid spec", spec)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (&Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	for _, p := range []Plan{
		{NotifyLoss: 0.1}, {NotifyDup: 0.1}, {NotifyDelay: sim.Microsecond},
		{Drop: 0.1}, {Corrupt: 0.1}, {Reorder: 0.1},
		{Flaps: 1}, {Drift: sim.Microsecond}, {ResizeFail: 0.1},
	} {
		if !p.Enabled() {
			t.Errorf("%+v reports disabled", p)
		}
	}
	// Burst and ReorderDelay only shape other faults; alone they are inert.
	if (&Plan{Burst: 5, ReorderDelay: sim.Microsecond}).Enabled() {
		t.Error("shaping-only plan reports enabled")
	}
}

// TestDrawDeterminism replays the same hook-call sequence against two
// injectors with the same seed: every fate must match. A third injector with
// a different seed must diverge somewhere (or the "randomness" is constant).
func TestDrawDeterminism(t *testing.T) {
	plan := Plan{
		NotifyLoss: 0.3, NotifyDup: 0.2, NotifyDelay: 5 * sim.Microsecond,
		Drop: 0.2, Corrupt: 0.1, Reorder: 0.2, Burst: 3,
		ResizeFail: 0.3,
	}
	draw := func(seed int64) (nf []rdcn.NotifyFate, ff []netem.FrameFate, rf []bool) {
		inj := New(sim.NewLoop(1), plan, seed)
		for i := 0; i < 200; i++ {
			nf = append(nf, inj.notifyFault(i%2, i%16, i%3, uint32(i)))
			ff = append(ff, inj.frameFault(netem.Frame{}))
			rf = append(rf, inj.resizeFault(i%2, i%16, 50))
		}
		return
	}
	n1, f1, r1 := draw(7)
	n2, f2, r2 := draw(7)
	if !reflect.DeepEqual(n1, n2) || !reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(r1, r2) {
		t.Fatal("same seed produced different fault draws")
	}
	n3, f3, _ := draw(8)
	if reflect.DeepEqual(n1, n3) && reflect.DeepEqual(f1, f3) {
		t.Fatal("different seeds produced identical fault draws")
	}
}

// TestFlapPlanningDeterminism checks that flap windows are planned up front
// from the seed alone — the same (plan, seed, schedule) always darkens the
// same days.
func TestFlapPlanningDeterminism(t *testing.T) {
	plan := Plan{Flaps: 3, FlapFrac: 0.25}
	windows := func(seed int64) []flapWindow {
		loop := sim.NewLoop(1)
		net, err := rdcn.New(loop, rdcn.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		inj := New(loop, plan, seed)
		inj.Install(net)
		inj.planFlaps(sim.Time(10 * net.Cfg.Schedule.Week()))
		return inj.flaps
	}
	w1, w2 := windows(3), windows(3)
	if !reflect.DeepEqual(w1, w2) {
		t.Fatalf("same seed planned different flaps: %v vs %v", w1, w2)
	}
	if len(w1) != 3 {
		t.Fatalf("planned %d flap windows, want 3", len(w1))
	}
	for _, w := range w1 {
		if w.to <= w.from {
			t.Fatalf("empty flap window %+v", w)
		}
		if tdn, ok, _ := windowsSchedule(t).At(w.from); !ok || tdn != w.tdn {
			t.Fatalf("flap window %+v does not start on its day", w)
		}
	}
}

func windowsSchedule(t *testing.T) *rdcn.Schedule {
	t.Helper()
	return rdcn.DefaultConfig().Schedule
}

// TestStartBeforeInstallPanics pins the usage contract.
func TestStartBeforeInstallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Start before Install did not panic")
		}
	}()
	New(sim.NewLoop(1), Plan{Flaps: 1}, 1).Start(sim.Time(sim.Second))
}
