// Package core implements TDTCP (Time-division TCP), the paper's primary
// contribution: a tcp.Policy that multiplexes one complete set of TCP path
// state per time-division network (TDN) over a single connection with a
// unified sequence space.
//
// Responsibilities, mapped to the paper:
//
//   - Per-TDN state variables (§3.1, §4.3): one tcp.PathState per TDN — pipe
//     variables, congestion-control instance, RTT estimator — swapped
//     atomically when the network reconfigures.
//   - TDN change notification (§3.2): OnNotify applies ToR-generated ICMP
//     notifications, discarding stale epochs, and records the TDN change
//     pointer (the first sequence number of the new TDN).
//   - Relaxed reordering detection (§3.4): loss candidates from a different
//     TDN than the triggering ACK, on the far side of the change pointer,
//     are suspected cross-TDN reordering and left to RACK-TLP instead of
//     being retransmitted spuriously.
//   - RTT sample classification (§4.4): type-3 samples (data and ACK on
//     different TDNs) are discarded; matching samples feed their TDN's
//     estimator. Retransmission timeouts use the pessimistic ½RTTₙ +
//     ½RTT_slowest synthesis.
package core

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Options toggles individual TDTCP mechanisms, primarily for the ablation
// benchmarks; the zero value is the full paper design.
type Options struct {
	// DisableRelaxedReordering turns off the §3.4 cross-TDN loss filter.
	DisableRelaxedReordering bool
	// DisableRTTFilter lets type-3 (mixed-TDN) RTT samples pollute the
	// estimators, as plain TCP would.
	DisableRTTFilter bool
	// DisablePessimisticRTO uses the segment TDN's own RTO instead of the
	// §4.4 slowest-TDN synthesis.
	DisablePessimisticRTO bool

	// DeadmanHorizon, together with DeadmanSchedule, arms the notification
	// deadman: when no notification (fresh or stale) has been delivered for
	// this long, the policy infers the active TDN from the nominal schedule
	// instead of waiting forever on a lossy control channel. Without it a
	// run of lost notifications strands every flow on a stale TDN,
	// blackholing cwnd updates into state the fabric no longer serves. Set
	// it above the longest nominal notification gap (the paper's hybrid
	// week delivers one per ~200µs day) so it only trips on genuine loss.
	DeadmanHorizon sim.Dur
	// DeadmanSchedule reports the TDN the nominal schedule makes active at
	// t (ok=false during a night). Typically rdcn.Schedule.At.
	DeadmanSchedule func(t sim.Time) (tdn int, ok bool)
}

// TDTCP is the per-TDN state-multiplexing policy. Create one per connection
// with New and pass it as tcp.Config.Policy.
type TDTCP struct {
	opts    Options
	numTDNs int

	c      *tcp.Conn
	active int

	// DeadmanLag, when non-nil, records the notification gap (nanoseconds
	// since the last delivered notification) at every deadman engagement —
	// the tail of this histogram is how far behind the schedule a flow ran
	// while its control channel was dark.
	DeadmanLag *trace.Histogram

	// changePtr is the TDN change pointer (§3.4): the first sequence
	// number transmitted after the most recent TDN switch.
	changePtr    uint32
	haveChange   bool
	lastSwitchAt sim.Time

	// Deadman fallback state: the arrival time of the latest notification
	// and the self-rearming inference timer (deadmanFn bound once so
	// rearming never allocates).
	lastNotifyAt sim.Time
	deadmanTimer sim.Timer
	deadmanFn    func()

	// Counters (exported via Stats).
	switches        uint64
	staleNotifies   uint64
	deadmanEngaged  uint64
	newTDNsObserved int
}

// Stats reports policy-level counters.
type Stats struct {
	Switches      uint64
	StaleNotifies uint64
	// DeadmanEngaged counts TDN switches inferred from the schedule because
	// notifications went missing beyond the deadman horizon.
	DeadmanEngaged uint64
}

// New returns a TDTCP policy for numTDNs time-division networks.
func New(numTDNs int, opts Options) *TDTCP {
	if numTDNs < 2 {
		panic("core: TDTCP requires at least 2 TDNs")
	}
	if numTDNs > packet.MaxTDNs {
		panic(fmt.Sprintf("core: at most %d TDNs supported", packet.MaxTDNs))
	}
	return &TDTCP{opts: opts, numTDNs: numTDNs}
}

// Stats returns the policy's counters.
func (p *TDTCP) Stats() Stats {
	return Stats{Switches: p.switches, StaleNotifies: p.staleNotifies, DeadmanEngaged: p.deadmanEngaged}
}

// ActiveTDN returns the TDN currently driving transmissions.
func (p *TDTCP) ActiveTDN() int { return p.active }

// ChangePointer returns the sequence number at the most recent TDN switch
// and whether a switch has happened yet.
func (p *TDTCP) ChangePointer() (uint32, bool) { return p.changePtr, p.haveChange }

// Attach implements tcp.Policy.
func (p *TDTCP) Attach(c *tcp.Conn) {
	p.c = c
	if p.opts.DeadmanHorizon > 0 && p.opts.DeadmanSchedule != nil {
		p.lastNotifyAt = c.Loop.Now()
		p.deadmanFn = p.deadmanFire
		p.deadmanTimer = c.Loop.After(p.opts.DeadmanHorizon, p.deadmanFn)
	}
}

// StopDeadman cancels the deadman timer, letting a drained simulation loop
// terminate (the timer otherwise re-arms itself forever).
func (p *TDTCP) StopDeadman() {
	p.deadmanTimer.Stop()
}

// deadmanFire checks the notification gap and, once it exceeds the horizon,
// adopts the TDN the nominal schedule says is active. lastNotifyAt is left
// untouched by inferred switches — the control channel is still silent, so
// the deadman keeps tracking the schedule every horizon until real
// notifications resume.
func (p *TDTCP) deadmanFire() {
	now := p.c.Loop.Now()
	if gap := now.Sub(p.lastNotifyAt); gap < p.opts.DeadmanHorizon {
		// A notification arrived since arming: sleep until the earliest
		// instant the horizon could lapse again.
		p.deadmanTimer = p.c.Loop.At(p.lastNotifyAt.Add(p.opts.DeadmanHorizon), p.deadmanFn)
		return
	} else if tdn, ok := p.opts.DeadmanSchedule(now); ok && tdn >= 0 && tdn < p.numTDNs && tdn != p.active {
		p.deadmanEngaged++
		p.DeadmanLag.Record(int64(gap))
		if tr := p.c.Tracer; tr.Enabled(trace.CatTDN) {
			tr.Emit(trace.CatTDN, int64(now), "tdn_deadman",
				p.c.FlowID, tdn, float64(p.active), float64(gap), "")
		}
		p.switchTo(tdn)
		p.c.Kick()
	}
	p.deadmanTimer = p.c.Loop.After(p.opts.DeadmanHorizon, p.deadmanFn)
}

// NumStates implements tcp.Policy.
func (p *TDTCP) NumStates() int { return p.numTDNs }

// Active implements tcp.Policy.
func (p *TDTCP) Active() int { return p.active }

// OnNotify implements tcp.Policy: switch the active per-TDN state set.
// Stale-epoch filtering happens in Conn.Notify; here an out-of-range TDN is
// ignored (the §4.2 contract requires both ends to agree on the TDN count).
func (p *TDTCP) OnNotify(tdn int, epoch uint32) {
	p.lastNotifyAt = p.c.Loop.Now()
	if tdn < 0 || tdn >= p.numTDNs {
		p.staleNotifies++
		return
	}
	if tdn == p.active {
		return
	}
	p.switchTo(tdn)
}

// switchTo makes tdn the active state set and records the change pointer
// (§3.4): everything below it was (last) sent on an older TDN. Callers are
// the notification path and the deadman fallback.
func (p *TDTCP) switchTo(tdn int) {
	from := p.active
	p.active = tdn
	p.switches++
	p.changePtr = p.c.SndNxt()
	p.haveChange = true
	p.lastSwitchAt = p.c.Loop.Now()
	if tr := p.c.Tracer; tr.Enabled(trace.CatTDN) {
		now := int64(p.c.Loop.Now())
		tr.Emit(trace.CatTDN, now, "tdn_switch",
			p.c.FlowID, tdn, float64(from), float64(p.c.RelSeq(p.changePtr)), "")
		// The swap itself is instantaneous; a zero-length span (rather than
		// a point event) carries the parent link that chains it under the
		// notification that caused it: epoch -> notify -> cwnd_swap.
		sp := tr.BeginSpan(trace.CatTDN, now, "cwnd_swap", p.c.FlowID, tdn, tr.Parent())
		tr.EndSpan(trace.CatTDN, now, "cwnd_swap", p.c.FlowID, tdn, sp, float64(from), float64(p.c.RelSeq(p.changePtr)))
	}
	if p.c.OnStateSwitch != nil {
		p.c.OnStateSwitch(p.c.Loop.Now(), from, tdn)
	}
}

// DataTDN implements tcp.Policy.
func (p *TDTCP) DataTDN() uint8 { return uint8(p.active) }

// AckTDN implements tcp.Policy: ACKs are tagged with the TDN the receiver
// believes is active.
func (p *TDTCP) AckTDN() uint8 { return uint8(p.active) }

// FilterLoss implements the §3.4 relaxed reordering detection: a loss
// candidate is suppressed when it was sent on a different TDN than the ACK
// that exposed it and lies on the far side of the TDN change pointer — its
// ACK is very likely just delayed on the slower TDN. True tail losses that
// slip through are recovered by RACK-TLP.
func (p *TDTCP) FilterLoss(seg *tcp.TxSeg, trigTDN uint8) bool {
	if p.opts.DisableRelaxedReordering {
		return false
	}
	trig := trigTDN
	if trig == packet.NoTDN {
		// Untagged ACK (shouldn't happen on a negotiated connection):
		// compare against the currently active TDN.
		trig = uint8(p.active)
	}
	if seg.TDN == trig {
		return false // matching TDN: a genuine hole on this TDN
	}
	if !p.haveChange {
		return false
	}
	// Only segments from before the switch qualify as cross-TDN stragglers.
	if int32(seg.Seq-p.changePtr) >= 0 {
		return false
	}
	// §3.4: true tail losses of a prior TDN are left to RACK-TLP. Once a
	// segment has been outstanding longer than the slowest TDN's RTT (plus
	// variance), its ACK cannot merely be delayed any more — stop
	// suppressing so the loss detectors may claim it.
	if bound := p.slowestRTTBound(); bound > 0 && p.c.Loop.Now().Sub(seg.SentAt) > bound {
		return false
	}
	return true
}

// slowestRTTBound returns the slowest per-TDN SRTT plus variance slack, or 0
// when no estimator has a sample yet.
func (p *TDTCP) slowestRTTBound() sim.Dur {
	var bound sim.Dur
	for _, st := range p.c.States() {
		if st.Samples() == 0 {
			continue
		}
		if b := st.SRTT() + 4*st.RTTVar(); b > bound {
			bound = b
		}
	}
	return bound
}

// RTTTarget implements the §4.4 sample classification: type-1/2 samples
// (data and ACK on the same TDN) feed that TDN's estimator; type-3 mixed
// samples are discarded.
func (p *TDTCP) RTTTarget(dataTDN, ackTDN uint8) (int, bool) {
	if int(dataTDN) >= p.numTDNs {
		return 0, false
	}
	if p.opts.DisableRTTFilter {
		return int(dataTDN), true
	}
	if ackTDN == packet.NoTDN {
		// Peer did not tag (e.g. downgraded peer): accept conservatively.
		return int(dataTDN), true
	}
	if dataTDN != ackTDN {
		return 0, false // type-3: ½RTTᵢ + ½RTTⱼ, poisonous to both estimators
	}
	return int(dataTDN), true
}

// SegmentRTO implements the §4.4 pessimistic timeout: TDTCP knows which TDN
// a segment was sent on but not which TDN its ACK will return on, so it
// assumes the slowest: RTO is built from ½RTTₙ + ½RTT_slowest.
func (p *TDTCP) SegmentRTO(tdn uint8) sim.Dur {
	states := p.c.States()
	if int(tdn) >= len(states) {
		tdn = uint8(p.active)
	}
	own := states[tdn]
	if p.opts.DisablePessimisticRTO {
		return own.RTO()
	}
	// Find the slowest TDN with an estimate.
	var slow *tcp.PathState
	for _, st := range states {
		if st.Samples() == 0 {
			continue
		}
		if slow == nil || st.SRTT() > slow.SRTT() {
			slow = st
		}
	}
	if slow == nil || own.Samples() == 0 {
		return own.RTO()
	}
	synth := own.SRTT()/2 + slow.SRTT()/2
	rttvar := own.RTTVar()
	if slow.RTTVar() > rttvar {
		rttvar = slow.RTTVar()
	}
	rto := synth + 4*rttvar
	cfg := p.c.Config()
	if rto < cfg.MinRTO {
		rto = cfg.MinRTO
	}
	if rto > cfg.MaxRTO {
		rto = cfg.MaxRTO
	}
	return rto
}

var _ tcp.Policy = (*TDTCP)(nil)
