package core

import (
	"math"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// TestEpochWraparoundSwitches drives the policy across the uint32 epoch wrap:
// post-wrap epochs must switch normally and pre-wrap replays must be dropped.
func TestEpochWraparoundSwitches(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()

	const max = math.MaxUint32
	e.a.Notify(1, max) // fresh
	if e.pa.ActiveTDN() != 1 {
		t.Fatal("pre-wrap notification not applied")
	}
	e.a.Notify(0, 1) // wrapped past MaxUint32 (0 would bypass the gate)
	if e.pa.ActiveTDN() != 0 {
		t.Fatal("post-wrap notification not applied")
	}
	e.a.Notify(1, max) // late replay of the pre-wrap epoch
	if e.pa.ActiveTDN() != 0 {
		t.Fatal("stale pre-wrap replay applied after the wrap")
	}
	if e.a.Stats.NotifiesStale != 1 {
		t.Fatalf("NotifiesStale = %d, want 1", e.a.Stats.NotifiesStale)
	}
	if e.pa.Stats().Switches != 2 {
		t.Fatalf("Switches = %d, want 2", e.pa.Stats().Switches)
	}
}

// TestDeadmanInfersTDNFromSchedule starves the policy of notifications
// entirely: past the horizon it must start tracking the nominal schedule
// instead of sitting on the attach-time TDN forever.
func TestDeadmanInfersTDNFromSchedule(t *testing.T) {
	day := 100 * sim.Microsecond
	sched := func(tm sim.Time) (int, bool) {
		return int(tm/sim.Time(day)) % 2, true
	}
	e := newEnv(t, Options{
		DeadmanHorizon:  250 * sim.Microsecond,
		DeadmanSchedule: sched,
	}, nil)
	e.establish()

	e.runFor(2 * sim.Millisecond) // no notifications at all
	st := e.pa.Stats()
	if st.DeadmanEngaged == 0 {
		t.Fatal("deadman never engaged with zero notifications")
	}
	if want, _ := sched(e.loop.Now()); e.pa.ActiveTDN() != want {
		t.Fatalf("active TDN %d, schedule says %d", e.pa.ActiveTDN(), want)
	}

	// A real notification re-anchors the horizon and keeps counting as a
	// notified switch, not an inferred one.
	engaged := st.DeadmanEngaged
	e.switchTDN(1 - e.pa.ActiveTDN())
	if e.pa.Stats().DeadmanEngaged != engaged {
		t.Fatal("notified switch miscounted as deadman engagement")
	}
	e.pa.StopDeadman()
	e.pb.StopDeadman()
}
