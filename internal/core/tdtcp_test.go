package core

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
)

// env is a two-TDN test network: infinite bandwidth, per-TDN one-way delay,
// with explicit TDN switching and notification delivery.
type env struct {
	t      *testing.T
	loop   *sim.Loop
	netTDN int
	delays []sim.Dur
	a, b   *tcp.Conn
	pa, pb *TDTCP
	epoch  uint32
	// dropData, when non-nil, drops matching a->b segments.
	dropData func(*packet.Segment) bool
}

func newEnv(t *testing.T, opts Options, ccf cc.Factory) *env {
	e := &env{
		t:      t,
		loop:   sim.NewLoop(11),
		delays: []sim.Dur{50 * sim.Microsecond, 5 * sim.Microsecond},
	}
	if ccf == nil {
		ccf = func() cc.Algorithm { return cc.NewReno() }
	}
	e.pa = New(2, opts)
	e.pb = New(2, opts)
	cfg := func(p *TDTCP) tcp.Config {
		return tcp.Config{NumTDNs: 2, Policy: p, CC: ccf,
			MinRTO: 500 * sim.Microsecond, InitialRTO: 1 * sim.Millisecond}
	}
	send := func(dst func() *tcp.Conn, isData bool) func(*packet.Segment) {
		return func(s *packet.Segment) {
			if isData && e.dropData != nil && e.dropData(s) {
				return
			}
			b := s.Serialize(nil)
			d := e.delays[e.netTDN]
			e.loop.After(d, func() {
				var got packet.Segment
				if err := packet.Parse(b, &got); err != nil {
					panic(err)
				}
				dst().Input(&got)
			})
		}
	}
	e.a = tcp.NewConn(e.loop, cfg(e.pa), send(func() *tcp.Conn { return e.b }, true))
	e.b = tcp.NewConn(e.loop, cfg(e.pb), send(func() *tcp.Conn { return e.a }, false))
	e.a.LocalAddr, e.a.RemoteAddr, e.a.LocalPort, e.a.RemotePort = 1, 2, 1, 2
	e.b.LocalAddr, e.b.RemoteAddr, e.b.LocalPort, e.b.RemotePort = 2, 1, 2, 1
	return e
}

// switchTDN flips the fabric and notifies both ends immediately.
func (e *env) switchTDN(tdn int) {
	e.netTDN = tdn
	e.epoch++
	e.a.Notify(tdn, e.epoch)
	e.b.Notify(tdn, e.epoch)
}

func (e *env) establish() {
	e.b.Listen()
	e.a.Connect(0)
	e.loop.RunUntil(e.loop.Now().Add(2 * sim.Millisecond))
	if !e.a.Established() || !e.b.Established() {
		e.t.Fatal("not established")
	}
	if !e.a.TDEnabled() || !e.b.TDEnabled() {
		e.t.Fatal("TD_CAPABLE negotiation failed")
	}
}

func (e *env) runFor(d sim.Dur) { e.loop.RunUntil(e.loop.Now().Add(d)) }

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, 1, 300} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n, Options{})
		}()
	}
}

func TestSwitchAndChangePointer(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()
	if _, ok := e.pa.ChangePointer(); ok {
		t.Fatal("change pointer set before any switch")
	}
	e.a.QueueBytes(3 * 8960)
	e.runFor(1 * sim.Millisecond)
	nxt := e.a.SndNxt()
	e.switchTDN(1)
	if e.pa.ActiveTDN() != 1 {
		t.Fatal("active TDN not switched")
	}
	ptr, ok := e.pa.ChangePointer()
	if !ok || ptr != nxt {
		t.Fatalf("change pointer = %d,%v want %d", ptr, ok, nxt)
	}
	if e.pa.Stats().Switches != 1 {
		t.Fatalf("switches = %d", e.pa.Stats().Switches)
	}
	// Same-TDN notification is a no-op.
	e.a.Notify(1, 99)
	if e.pa.Stats().Switches != 1 {
		t.Fatal("redundant notify counted as switch")
	}
}

func TestStaleEpochIgnored(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()
	e.switchTDN(1)   // epoch 1
	e.a.Notify(0, 1) // stale epoch: must be ignored by Conn
	if e.pa.ActiveTDN() != 1 {
		t.Fatal("stale notification applied")
	}
	e.a.Notify(7, 2) // out-of-range TDN
	if e.pa.ActiveTDN() != 1 {
		t.Fatal("out-of-range TDN applied")
	}
	if e.pa.Stats().StaleNotifies == 0 {
		t.Fatal("out-of-range notify not counted")
	}
}

func TestOnStateSwitchCallback(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()
	var from, to int
	calls := 0
	e.a.OnStateSwitch = func(_ sim.Time, f, tn int) { from, to, calls = f, tn, calls+1 }
	e.switchTDN(1)
	if calls != 1 || from != 0 || to != 1 {
		t.Fatalf("callback got from=%d to=%d calls=%d", from, to, calls)
	}
}

func TestPerTDNRTTSeparation(t *testing.T) {
	// Alternate TDNs; each TDN's SRTT must converge to its own path RTT
	// rather than an average (§3.1's motivating example).
	e := newEnv(t, Options{}, nil)
	e.establish()
	for cycle := 0; cycle < 12; cycle++ {
		e.a.QueueBytes(4 * 8960)
		e.runFor(300 * sim.Microsecond)
		e.switchTDN(1 - e.netTDN)
	}
	st := e.a.States()
	if st[0].Samples() == 0 || st[1].Samples() == 0 {
		t.Fatalf("missing samples: %d / %d", st[0].Samples(), st[1].Samples())
	}
	// TDN0 RTT = 100us; TDN1 RTT = 10us.
	if st[0].SRTT() < 90*sim.Microsecond || st[0].SRTT() > 130*sim.Microsecond {
		t.Fatalf("TDN0 srtt = %v, want ~100us", st[0].SRTT())
	}
	if st[1].SRTT() < 8*sim.Microsecond || st[1].SRTT() > 30*sim.Microsecond {
		t.Fatalf("TDN1 srtt = %v, want ~10us", st[1].SRTT())
	}
	// Now switch while data is in flight on the slow TDN: the resulting
	// mixed (type-3) samples must be discarded, leaving both estimators at
	// their clean values.
	e.switchTDN(0)
	e.runFor(1 * sim.Millisecond)
	e.a.QueueBytes(4 * 8960)
	e.runFor(10 * sim.Microsecond)
	e.switchTDN(1)
	e.runFor(1 * sim.Millisecond)
	if e.a.Stats.RTTSamplesDropped == 0 {
		t.Fatal("no type-3 samples were dropped despite an in-flight switch")
	}
	if st[0].SRTT() < 90*sim.Microsecond || st[0].SRTT() > 130*sim.Microsecond {
		t.Fatalf("TDN0 srtt polluted: %v", st[0].SRTT())
	}
	if st[1].SRTT() < 8*sim.Microsecond || st[1].SRTT() > 30*sim.Microsecond {
		t.Fatalf("TDN1 srtt polluted: %v", st[1].SRTT())
	}
}

func TestCwndCheckpointAcrossSwitch(t *testing.T) {
	// Grow TDN0's window, switch away and back: the window must resume
	// from its checkpoint, not restart (§3.1).
	e := newEnv(t, Options{}, nil)
	e.establish()
	for i := 0; i < 10; i++ {
		e.a.QueueBytes(8 * 8960)
		e.runFor(400 * sim.Microsecond)
	}
	w0 := e.a.States()[0].Cwnd()
	if w0 <= float64(cc.InitialCwnd) {
		t.Fatalf("TDN0 cwnd did not grow: %v", w0)
	}
	e.switchTDN(1)
	e.a.QueueBytes(8 * 8960)
	e.runFor(400 * sim.Microsecond)
	if got := e.a.States()[0].Cwnd(); got != w0 {
		t.Fatalf("inactive TDN0 cwnd changed: %v -> %v", w0, got)
	}
	if got := e.a.States()[1].Cwnd(); got <= float64(cc.InitialCwnd) {
		t.Fatalf("TDN1 cwnd did not grow while active: %v", got)
	}
	e.switchTDN(0)
	if got := e.a.ActiveState().Cwnd(); got != w0 {
		t.Fatalf("restored cwnd = %v, want checkpoint %v", got, w0)
	}
}

// crossTDNScenario drives the Figure 3(a) data-reordering scenario: a batch
// in flight on the slow TDN when the network switches to the fast TDN and a
// second batch overtakes it.
func crossTDNScenario(t *testing.T, opts Options) (*env, int64) {
	e := newEnv(t, opts, nil)
	e.establish()
	// Warm up both TDN estimators and grow cwnd.
	for cycle := 0; cycle < 8; cycle++ {
		e.a.QueueBytes(6 * 8960)
		e.runFor(400 * sim.Microsecond)
		e.switchTDN(1 - e.netTDN)
	}
	e.switchTDN(0) // ensure slow TDN active
	e.runFor(1 * sim.Millisecond)
	base := int64(e.a.Stats.Retransmits)
	_ = base
	// Batch 1 on the slow TDN...
	e.a.QueueBytes(6 * 8960)
	e.runFor(10 * sim.Microsecond) // in flight, not yet delivered (50us path)
	// ...switch to fast TDN, batch 2 overtakes.
	e.switchTDN(1)
	e.a.QueueBytes(6 * 8960)
	e.runFor(3 * sim.Millisecond)
	total := e.b.Stats.BytesDelivered
	return e, total
}

func TestRelaxedReorderingSuppressesSpuriousRetransmits(t *testing.T) {
	e, _ := crossTDNScenario(t, Options{})
	if e.a.Stats.FilteredMarks == 0 {
		t.Fatal("cross-TDN reordering never filtered")
	}
	if e.b.Stats.DupSegsRcvd != 0 {
		t.Fatalf("TDTCP spuriously retransmitted %d segments", e.b.Stats.DupSegsRcvd)
	}
	if e.a.Stats.ReorderEvents == 0 {
		t.Fatal("reordering not even observed — scenario broken")
	}
}

func TestAblationWithoutFilterRetransmitsSpuriously(t *testing.T) {
	e, _ := crossTDNScenario(t, Options{DisableRelaxedReordering: true})
	if e.b.Stats.DupSegsRcvd == 0 {
		t.Fatal("ablated TDTCP should have retransmitted spuriously (scenario too weak)")
	}
}

func TestBothVariantsDeliverEverything(t *testing.T) {
	for _, opts := range []Options{{}, {DisableRelaxedReordering: true}} {
		e, total := crossTDNScenario(t, opts)
		// establish(0 bytes) + 8 warmup*6 + 12 more segments
		want := int64((8*6 + 12) * 8960)
		if total != want {
			t.Fatalf("opts %+v: delivered %d, want %d", opts, total, want)
		}
		_ = e
	}
}

func TestTrueCrossTDNLossStillRecovered(t *testing.T) {
	// Drop the tail segments of the slow-TDN batch for real: despite the
	// reordering filter, RACK-TLP (with the slowest-RTT bound) must recover.
	e := newEnv(t, Options{}, nil)
	e.establish()
	for cycle := 0; cycle < 8; cycle++ {
		e.a.QueueBytes(6 * 8960)
		e.runFor(400 * sim.Microsecond)
		e.switchTDN(1 - e.netTDN)
	}
	e.switchTDN(0)
	e.runFor(1 * sim.Millisecond)
	deliveredBefore := e.b.Stats.BytesDelivered
	dropped := 0
	e.dropData = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen > 0 && dropped < 2 {
			dropped++
			return true
		}
		return false
	}
	e.a.QueueBytes(6 * 8960)
	e.runFor(10 * sim.Microsecond)
	e.dropData = nil
	e.switchTDN(1)
	e.a.QueueBytes(6 * 8960)
	e.runFor(20 * sim.Millisecond)
	want := deliveredBefore + 12*8960
	if e.b.Stats.BytesDelivered != want {
		t.Fatalf("delivered %d, want %d (true loss not recovered; rto=%d tlp=%d)",
			e.b.Stats.BytesDelivered, want, e.a.Stats.RTOFires, e.a.Stats.TLPProbes)
	}
}

func TestRTTTargetClassification(t *testing.T) {
	p := New(2, Options{})
	c := tcp.NewConn(sim.NewLoop(1), tcp.Config{NumTDNs: 2, Policy: p}, func(*packet.Segment) {})
	_ = c
	if idx, ok := p.RTTTarget(0, 0); !ok || idx != 0 {
		t.Fatal("type-1 sample misrouted")
	}
	if idx, ok := p.RTTTarget(1, 1); !ok || idx != 1 {
		t.Fatal("type-2 sample misrouted")
	}
	if _, ok := p.RTTTarget(0, 1); ok {
		t.Fatal("type-3 sample accepted")
	}
	if idx, ok := p.RTTTarget(1, packet.NoTDN); !ok || idx != 1 {
		t.Fatal("untagged ACK sample should be accepted conservatively")
	}
	if _, ok := p.RTTTarget(9, 9); ok {
		t.Fatal("out-of-range data TDN accepted")
	}
	pNoFilter := New(2, Options{DisableRTTFilter: true})
	cn := tcp.NewConn(sim.NewLoop(1), tcp.Config{NumTDNs: 2, Policy: pNoFilter}, func(*packet.Segment) {})
	_ = cn
	if idx, ok := pNoFilter.RTTTarget(0, 1); !ok || idx != 0 {
		t.Fatal("ablated filter should accept mixed samples")
	}
}

func TestPessimisticRTO(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()
	for cycle := 0; cycle < 8; cycle++ {
		e.a.QueueBytes(4 * 8960)
		e.runFor(400 * sim.Microsecond)
		e.switchTDN(1 - e.netTDN)
	}
	st := e.a.States()
	if st[0].Samples() == 0 || st[1].Samples() == 0 {
		t.Fatal("estimators not primed")
	}
	// RTO of a fast-TDN (1) segment must reflect the slow TDN's RTT:
	// ½·10us + ½·100us = 55us (plus variance), i.e. well above TDN1's own
	// srtt-based value would be without the floor.
	rtoFast := e.pa.SegmentRTO(1)
	rtoSlow := e.pa.SegmentRTO(0)
	if rtoFast < e.a.Config().MinRTO {
		t.Fatalf("rto below floor: %v", rtoFast)
	}
	// Both should be clamped equal here due to the large MinRTO; verify the
	// unclamped synthesis by lowering the floor via a direct computation.
	synthFast := st[1].SRTT()/2 + st[0].SRTT()/2
	if synthFast < 50*sim.Microsecond {
		t.Fatalf("synthesized RTT %v too small — slow TDN ignored", synthFast)
	}
	_ = rtoSlow
	// Ablated: uses own RTO.
	pAbl := New(2, Options{DisablePessimisticRTO: true})
	cAbl := tcp.NewConn(e.loop, tcp.Config{NumTDNs: 2, Policy: pAbl}, func(*packet.Segment) {})
	pAbl.Attach(cAbl)
	if got := pAbl.SegmentRTO(1); got != cAbl.States()[1].RTO() {
		t.Fatalf("ablated SegmentRTO = %v, want state RTO %v", got, cAbl.States()[1].RTO())
	}
}

func TestFilterLossRules(t *testing.T) {
	e := newEnv(t, Options{}, nil)
	e.establish()
	e.a.QueueBytes(2 * 8960)
	e.runFor(1 * sim.Millisecond)
	e.switchTDN(1)
	ptr, _ := e.pa.ChangePointer()
	now := e.loop.Now()
	mk := func(seq uint32, tdn uint8, age sim.Dur) *tcp.TxSeg {
		return &tcp.TxSeg{Seq: seq, Len: 8960, TDN: tdn, SentAt: now.Add(-age)}
	}
	// Old-TDN segment below the pointer, triggered by new-TDN ACK: filter.
	if !e.pa.FilterLoss(mk(ptr-8960, 0, 20*sim.Microsecond), 1) {
		t.Fatal("cross-TDN straggler not filtered")
	}
	// Same-TDN segment: never filtered.
	if e.pa.FilterLoss(mk(ptr-8960, 1, 20*sim.Microsecond), 1) {
		t.Fatal("same-TDN loss filtered")
	}
	// Above the change pointer: not filtered.
	if e.pa.FilterLoss(mk(ptr+8960, 0, 20*sim.Microsecond), 1) {
		t.Fatal("post-switch segment filtered")
	}
	// Outstanding far longer than the slowest RTT: must not be filtered
	// (RACK-TLP handover).
	if e.pa.FilterLoss(mk(ptr-8960, 0, 5*sim.Millisecond), 1) {
		t.Fatal("ancient segment still filtered")
	}
}
