package rdcn

import (
	"reflect"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestNumMatchings(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 3}, {5, 5}, {6, 5}, {7, 7}, {8, 7}, {255, 255},
	} {
		if got := NumMatchings(tc.n); got != tc.want {
			t.Errorf("NumMatchings(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestRotorPeerProperties checks the round-robin tournament invariants for
// every rack count up to 16: each matching is an involution with no
// self-pairing, even rack counts leave nobody idle, odd rack counts idle
// exactly one rack per matching, and over a full rotation every rack pair is
// circuit-connected exactly once.
func TestRotorPeerProperties(t *testing.T) {
	for n := 2; n <= 16; n++ {
		met := make(map[[2]int]int)
		for day := 1; day <= NumMatchings(n); day++ {
			idle := 0
			for r := 0; r < n; r++ {
				p := RotorPeer(n, day, r)
				if p == -1 {
					idle++
					continue
				}
				if p < 0 || p >= n {
					t.Fatalf("n=%d day=%d: RotorPeer(%d) = %d out of range", n, day, r, p)
				}
				if p == r {
					t.Fatalf("n=%d day=%d: rack %d paired with itself", n, day, r)
				}
				if back := RotorPeer(n, day, p); back != r {
					t.Fatalf("n=%d day=%d: not an involution: %d->%d->%d", n, day, r, p, back)
				}
				if r < p {
					met[[2]int{r, p}]++
				}
			}
			wantIdle := 0
			if n%2 == 1 {
				wantIdle = 1
			}
			if idle != wantIdle {
				t.Fatalf("n=%d day=%d: %d idle racks, want %d", n, day, idle, wantIdle)
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if met[[2]int{i, j}] != 1 {
					t.Fatalf("n=%d: pair (%d,%d) met %d times, want exactly once", n, i, j, met[[2]int{i, j}])
				}
			}
		}
	}
}

func TestRotorPeerOutOfRange(t *testing.T) {
	for _, tc := range [][3]int{
		{1, 1, 0}, {4, 0, 0}, {4, 4, 0}, {4, 1, -1}, {4, 1, 4}, {2, 2, 0},
	} {
		if got := RotorPeer(tc[0], tc[1], tc[2]); got != -1 {
			t.Errorf("RotorPeer(%d,%d,%d) = %d, want -1", tc[0], tc[1], tc[2], got)
		}
	}
}

// TestRotorWeekTwoRacksIsHybridWeek pins the backward-compatibility contract:
// the rotor schedule degenerates to the paper's two-rack hybrid week.
func TestRotorWeekTwoRacksIsHybridWeek(t *testing.T) {
	day, night := 180*sim.Microsecond, 20*sim.Microsecond
	got := RotorWeek(2, 6, day, night)
	want := HybridWeek(6, day, night)
	if !reflect.DeepEqual(got.Slots, want.Slots) {
		t.Fatalf("RotorWeek(2,6) slots = %v, want HybridWeek(6) slots %v", got.Slots, want.Slots)
	}
	if got.Week() != want.Week() {
		t.Fatalf("RotorWeek(2,6) week = %v, want %v", got.Week(), want.Week())
	}
}

func TestRotorWeekShape(t *testing.T) {
	day, night := 100*sim.Microsecond, 10*sim.Microsecond
	n := 4
	sch := RotorWeek(n, 2, day, night)
	nm := NumMatchings(n) // 3
	if got, want := len(sch.Slots), (2+1)*2*nm; got != want {
		t.Fatalf("slot count = %d, want %d", got, want)
	}
	if got, want := sch.NumTDNs(), nm+1; got != want {
		t.Fatalf("NumTDNs = %d, want %d", got, want)
	}
	// Every optical TDN gets the same share of circuit time.
	for k := 1; k <= nm; k++ {
		if got, want := sch.TDNShare(k), sch.TDNShare(1); got != want {
			t.Fatalf("TDNShare(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestRotorTDNs(t *testing.T) {
	pkt := TDNParams{Rate: 10 * sim.Gbps, Delay: 49 * sim.Microsecond}
	opt := TDNParams{Rate: 100 * sim.Gbps, Delay: 19 * sim.Microsecond}
	tdns := RotorTDNs(8, pkt, opt)
	if len(tdns) != 8 { // 1 packet + 7 matchings
		t.Fatalf("len = %d, want 8", len(tdns))
	}
	if tdns[0] != pkt {
		t.Fatalf("TDN 0 = %+v, want packet params", tdns[0])
	}
	for k := 1; k < len(tdns); k++ {
		if tdns[k] != opt {
			t.Fatalf("TDN %d = %+v, want optical params", k, tdns[k])
		}
	}
}

func TestValidateRotor(t *testing.T) {
	day, night := 100*sim.Microsecond, 10*sim.Microsecond
	if err := validateRotor(4, RotorWeek(4, 2, day, night)); err != nil {
		t.Fatalf("valid rotor schedule rejected: %v", err)
	}
	// A 6-rack schedule references matchings a 4-rack fabric does not have.
	if err := validateRotor(4, RotorWeek(6, 2, day, night)); err == nil {
		t.Fatal("over-wide schedule accepted")
	}
}

// TestNewRejectsBadMultiRack covers the multi-rack constructor guards.
func TestNewRejectsBadMultiRack(t *testing.T) {
	loop := sim.NewLoop(1)
	cfg := DefaultConfig()
	cfg.Racks = 4
	cfg.TDNs = RotorTDNs(4, cfg.TDNs[0], cfg.TDNs[1])
	cfg.Schedule = RotorWeek(6, 2, 180*sim.Microsecond, 20*sim.Microsecond)
	if _, err := New(loop, cfg); err == nil {
		t.Fatal("New accepted a 6-rack schedule on a 4-rack fabric")
	}
	cfg.Schedule = RotorWeek(4, 2, 180*sim.Microsecond, 20*sim.Microsecond)
	cfg.PinnedVOQs = true
	if _, err := New(loop, cfg); err == nil {
		t.Fatal("New accepted PinnedVOQs on a 4-rack fabric")
	}
	cfg.PinnedVOQs = false
	if _, err := New(loop, cfg); err != nil {
		t.Fatalf("valid 4-rack config rejected: %v", err)
	}
}

// TestMultiRackDelivery runs real frames across a 4-rack rotor fabric and
// checks routing (every frame reaches the addressed host, including the
// intra-rack hairpin) plus the conservation ledger.
func TestMultiRackDelivery(t *testing.T) {
	loop := sim.NewLoop(7)
	cfg := DefaultConfig()
	cfg.Racks = 4
	cfg.HostsPerRack = 2
	cfg.TDNs = RotorTDNs(4, cfg.TDNs[0], cfg.TDNs[1])
	cfg.Schedule = RotorWeek(4, 2, 180*sim.Microsecond, 20*sim.Microsecond)
	n, err := New(loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint32]int)
	for _, rack := range n.Racks {
		for _, h := range rack.Hosts {
			addr := h.Addr
			h.Recv = func(f netem.Frame) { got[addr]++ }
		}
	}
	n.Start(sim.Time(10 * sim.Millisecond))
	// Every host sends one segment to every other host (including same-rack).
	sent := 0
	for _, rack := range n.Racks {
		for _, h := range rack.Hosts {
			for dr := 0; dr < cfg.Racks; dr++ {
				for dh := 0; dh < cfg.HostsPerRack; dh++ {
					dst := HostAddr(dr, dh)
					if dst == h.Addr {
						continue
					}
					h.Send(&packet.Segment{Dst: dst, TTL: 64, Proto: packet.ProtoTCP})
					sent++
				}
			}
		}
	}
	loop.RunUntil(sim.Time(10 * sim.Millisecond))
	total := 0
	for addr, c := range got {
		if c != cfg.Racks*cfg.HostsPerRack-1 {
			t.Errorf("host %08x received %d frames, want %d", addr, c, cfg.Racks*cfg.HostsPerRack-1)
		}
		total += c
	}
	if total != sent {
		t.Fatalf("delivered %d frames, sent %d", total, sent)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if in, del, mis := n.FrameLedger(); in != uint64(sent) || del != uint64(sent) || mis != 0 {
		t.Fatalf("ledger = (%d,%d,%d), want (%d,%d,0)", in, del, mis, sent, sent)
	}
}

// TestMultiRackMisroute checks that a frame addressed outside the fabric is
// dropped and accounted as misrouted, not lost from the ledger.
func TestMultiRackMisroute(t *testing.T) {
	loop := sim.NewLoop(7)
	cfg := DefaultConfig()
	cfg.Racks = 4
	cfg.HostsPerRack = 2
	cfg.TDNs = RotorTDNs(4, cfg.TDNs[0], cfg.TDNs[1])
	cfg.Schedule = RotorWeek(4, 2, 180*sim.Microsecond, 20*sim.Microsecond)
	n, err := New(loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start(sim.Time(1 * sim.Millisecond))
	n.Racks[0].Hosts[0].Send(&packet.Segment{Dst: HostAddr(9, 0), TTL: 64, Proto: packet.ProtoTCP})
	loop.RunUntil(sim.Time(1 * sim.Millisecond))
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if _, del, mis := n.FrameLedger(); del != 0 || mis != 1 {
		t.Fatalf("delivered %d, misrouted %d; want 0, 1", del, mis)
	}
}
