// Package rdcn models the reconfigurable data-center network of the paper:
// the day/night/week optical schedule (§2.1), the two-rack hybrid topology of
// the Etalon testbed (§5.1), and the ToR-generated ICMP TDN-change
// notifications with the §5.4 delivery-latency optimizations.
package rdcn

import (
	"fmt"
	"strings"
	"time"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// NightTDN marks a reconfiguration blackout slot: no TDN is active and the
// ToR uplinks are silent.
const NightTDN = -1

// Slot is one entry of the cyclic schedule: a TDN (or NightTDN) active for
// Dur.
type Slot struct {
	TDN int
	Dur sim.Dur
}

// Schedule is a cyclic ("week", §2.1) sequence of days and nights. The
// demand-oblivious schedules of RotorNet-style fabrics repeat indefinitely.
type Schedule struct {
	Slots []Slot
	week  sim.Dur
}

// NewSchedule validates and returns a schedule cycling through slots.
func NewSchedule(slots []Slot) (*Schedule, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("rdcn: schedule needs at least one slot")
	}
	// Capping the week keeps At() overflow-free everywhere a simulation can
	// reach: At adds at most one week to its argument, so times would need
	// to approach MaxInt64-week (~250 virtual years) before arithmetic
	// wraps. A cycle over a month is a misconfiguration, not a schedule.
	const maxWeek = 30 * 24 * sim.Dur(3600) * sim.Second
	var week sim.Dur
	for i, s := range slots {
		if s.Dur <= 0 {
			return nil, fmt.Errorf("rdcn: slot %d has non-positive duration", i)
		}
		if s.TDN < NightTDN {
			return nil, fmt.Errorf("rdcn: slot %d has invalid TDN %d", i, s.TDN)
		}
		week += s.Dur
		if week <= 0 || week > maxWeek { // overflow folds to a negative sum
			return nil, fmt.Errorf("rdcn: schedule week overflows %v cap", maxWeek)
		}
	}
	return &Schedule{Slots: slots, week: week}, nil
}

// MustSchedule is NewSchedule that panics on error, for literals in tests
// and examples.
func MustSchedule(slots []Slot) *Schedule {
	s, err := NewSchedule(slots)
	if err != nil {
		panic(err)
	}
	return s
}

// HybridWeek builds the paper's evaluation schedule: packetDays days on the
// packet TDN (0) followed by one day on the optical TDN (1), every day
// lasting day and followed by a night of night. With packetDays=6,
// day=180µs, night=20µs this is the §5.1 configuration (6:1 ratio, 9:1 duty
// cycle, 1.4ms week).
func HybridWeek(packetDays int, day, night sim.Dur) *Schedule {
	var slots []Slot
	for i := 0; i < packetDays; i++ {
		slots = append(slots, Slot{TDN: 0, Dur: day}, Slot{TDN: NightTDN, Dur: night})
	}
	slots = append(slots, Slot{TDN: 1, Dur: day}, Slot{TDN: NightTDN, Dur: night})
	return MustSchedule(slots)
}

// Week returns the duration of one full cycle.
func (s *Schedule) Week() sim.Dur { return s.week }

// Parser limits. Generous for any realistic schedule; they exist so that
// adversarial inputs (fuzzing, user typos) fail with an error instead of
// exhausting memory on expressions like "1000x(1000x(...))".
const (
	maxParseSlots = 4096
	maxParseReps  = 1024
	maxParseDepth = 8
	maxParseTDN   = 254 // packet.MaxTDNs-1; 0xFF is reserved as "unset"
)

// ParseSchedule builds a schedule from a compact text form, used by the
// tdsim -sched flag and the fault examples:
//
//	item   := tdn ":" duration | "-" ":" duration | count "x(" items ")"
//	items  := item ("," item)*
//
// "-" is a night (reconfiguration blackout); durations use Go syntax
// ("180us", "1.5ms"); "Nx(...)" repeats a group N times. The paper's §5.1
// hybrid week is "6x(0:180us,-:20us),1:180us,-:20us".
func ParseSchedule(s string) (*Schedule, error) {
	p := schedParser{in: s}
	slots, err := p.items(0)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("rdcn: schedule spec: trailing garbage at %q", p.in[p.pos:])
	}
	return NewSchedule(slots)
}

// MustParseSchedule is ParseSchedule that panics on error, for literals.
func MustParseSchedule(s string) *Schedule {
	sched, err := ParseSchedule(s)
	if err != nil {
		panic(err)
	}
	return sched
}

type schedParser struct {
	in  string
	pos int
}

func (p *schedParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

// int_ consumes a decimal integer of at most 7 digits.
func (p *schedParser) int_() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("rdcn: schedule spec: expected number at offset %d", start)
	}
	if p.pos-start > 7 {
		return 0, fmt.Errorf("rdcn: schedule spec: number too long at offset %d", start)
	}
	n := 0
	for _, c := range p.in[start:p.pos] {
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// duration consumes a Go-style duration ending at ',', ')' or end of input.
func (p *schedParser) duration() (sim.Dur, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != ',' && p.in[p.pos] != ')' {
		p.pos++
	}
	d, err := time.ParseDuration(strings.TrimSpace(p.in[start:p.pos]))
	if err != nil {
		return 0, fmt.Errorf("rdcn: schedule spec: %v", err)
	}
	return sim.Dur(d.Nanoseconds()), nil
}

func (p *schedParser) items(depth int) ([]Slot, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("rdcn: schedule spec: nesting too deep")
	}
	var slots []Slot
	for {
		item, err := p.item(depth)
		if err != nil {
			return nil, err
		}
		slots = append(slots, item...)
		if len(slots) > maxParseSlots {
			return nil, fmt.Errorf("rdcn: schedule spec: more than %d slots", maxParseSlots)
		}
		p.skipSpace()
		if p.pos < len(p.in) && p.in[p.pos] == ',' {
			p.pos++
			continue
		}
		return slots, nil
	}
}

func (p *schedParser) item(depth int) ([]Slot, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("rdcn: schedule spec: unexpected end of input")
	}
	// Night slot: "-:dur".
	if p.in[p.pos] == '-' {
		p.pos++
		if err := p.expect(':'); err != nil {
			return nil, err
		}
		d, err := p.duration()
		if err != nil {
			return nil, err
		}
		return []Slot{{TDN: NightTDN, Dur: d}}, nil
	}
	n, err := p.int_()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == 'x' {
		// Repetition group: "Nx(items)".
		p.pos++
		if n < 1 || n > maxParseReps {
			return nil, fmt.Errorf("rdcn: schedule spec: repeat count %d out of range [1,%d]", n, maxParseReps)
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		group, err := p.items(depth + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if n*len(group) > maxParseSlots {
			return nil, fmt.Errorf("rdcn: schedule spec: more than %d slots", maxParseSlots)
		}
		slots := make([]Slot, 0, n*len(group))
		for i := 0; i < n; i++ {
			slots = append(slots, group...)
		}
		return slots, nil
	}
	// Day slot: "tdn:dur".
	if n > maxParseTDN {
		return nil, fmt.Errorf("rdcn: schedule spec: TDN %d out of range [0,%d]", n, maxParseTDN)
	}
	if err := p.expect(':'); err != nil {
		return nil, err
	}
	d, err := p.duration()
	if err != nil {
		return nil, err
	}
	return []Slot{{TDN: n, Dur: d}}, nil
}

func (p *schedParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("rdcn: schedule spec: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

// At reports the TDN active at time t. ok is false during a night. slotEnd
// is the absolute time the current slot finishes. Negative t is valid (the
// schedule extends periodically in both directions): schedule-drift faults
// evaluate At(now-offset), which goes negative early in a run.
func (s *Schedule) At(t sim.Time) (tdn int, ok bool, slotEnd sim.Time) {
	off := sim.Dur(int64(t) % int64(s.week))
	if off < 0 { // Go's % follows the dividend's sign; fold into [0, week)
		off += s.week
	}
	base := t.Add(-off)
	for _, sl := range s.Slots {
		if off < sl.Dur {
			return sl.TDN, sl.TDN != NightTDN, base.Add(sl.Dur)
		}
		off -= sl.Dur
		base = base.Add(sl.Dur)
	}
	// Unreachable: off < week by construction.
	panic("rdcn: schedule walk overflow")
}

// NextDayStart returns the first slot boundary strictly after t at which a
// day (non-night slot) begins, along with that day's TDN.
func (s *Schedule) NextDayStart(t sim.Time) (sim.Time, int) {
	_, _, b := s.At(t)
	for i := 0; i <= len(s.Slots); i++ {
		tdn, ok, end := s.At(b)
		if ok {
			return b, tdn
		}
		b = end
	}
	// A schedule of only nights is rejected by NewSchedule... but guard
	// against all-night schedules constructed directly.
	panic("rdcn: schedule has no day slots")
}

// NumTDNs returns the number of distinct TDNs (highest TDN index + 1).
func (s *Schedule) NumTDNs() int {
	max := -1
	for _, sl := range s.Slots {
		if sl.TDN > max {
			max = sl.TDN
		}
	}
	return max + 1
}

// DutyCycle returns the ratio of day time to total time.
func (s *Schedule) DutyCycle() float64 {
	var up sim.Dur
	for _, sl := range s.Slots {
		if sl.TDN != NightTDN {
			up += sl.Dur
		}
	}
	return float64(up) / float64(s.week)
}

// TDNShare returns the fraction of the week during which tdn is active.
func (s *Schedule) TDNShare(tdn int) float64 {
	var up sim.Dur
	for _, sl := range s.Slots {
		if sl.TDN == tdn {
			up += sl.Dur
		}
	}
	return float64(up) / float64(s.week)
}
