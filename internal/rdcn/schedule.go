// Package rdcn models the reconfigurable data-center network of the paper:
// the day/night/week optical schedule (§2.1), the two-rack hybrid topology of
// the Etalon testbed (§5.1), and the ToR-generated ICMP TDN-change
// notifications with the §5.4 delivery-latency optimizations.
package rdcn

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// NightTDN marks a reconfiguration blackout slot: no TDN is active and the
// ToR uplinks are silent.
const NightTDN = -1

// Slot is one entry of the cyclic schedule: a TDN (or NightTDN) active for
// Dur.
type Slot struct {
	TDN int
	Dur sim.Duration
}

// Schedule is a cyclic ("week", §2.1) sequence of days and nights. The
// demand-oblivious schedules of RotorNet-style fabrics repeat indefinitely.
type Schedule struct {
	Slots []Slot
	week  sim.Duration
}

// NewSchedule validates and returns a schedule cycling through slots.
func NewSchedule(slots []Slot) (*Schedule, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("rdcn: schedule needs at least one slot")
	}
	var week sim.Duration
	for i, s := range slots {
		if s.Dur <= 0 {
			return nil, fmt.Errorf("rdcn: slot %d has non-positive duration", i)
		}
		if s.TDN < NightTDN {
			return nil, fmt.Errorf("rdcn: slot %d has invalid TDN %d", i, s.TDN)
		}
		week += s.Dur
	}
	return &Schedule{Slots: slots, week: week}, nil
}

// MustSchedule is NewSchedule that panics on error, for literals in tests
// and examples.
func MustSchedule(slots []Slot) *Schedule {
	s, err := NewSchedule(slots)
	if err != nil {
		panic(err)
	}
	return s
}

// HybridWeek builds the paper's evaluation schedule: packetDays days on the
// packet TDN (0) followed by one day on the optical TDN (1), every day
// lasting day and followed by a night of night. With packetDays=6,
// day=180µs, night=20µs this is the §5.1 configuration (6:1 ratio, 9:1 duty
// cycle, 1.4ms week).
func HybridWeek(packetDays int, day, night sim.Duration) *Schedule {
	var slots []Slot
	for i := 0; i < packetDays; i++ {
		slots = append(slots, Slot{TDN: 0, Dur: day}, Slot{TDN: NightTDN, Dur: night})
	}
	slots = append(slots, Slot{TDN: 1, Dur: day}, Slot{TDN: NightTDN, Dur: night})
	return MustSchedule(slots)
}

// Week returns the duration of one full cycle.
func (s *Schedule) Week() sim.Duration { return s.week }

// At reports the TDN active at time t. ok is false during a night. slotEnd
// is the absolute time the current slot finishes.
func (s *Schedule) At(t sim.Time) (tdn int, ok bool, slotEnd sim.Time) {
	off := sim.Duration(int64(t) % int64(s.week))
	base := t.Add(-off)
	for _, sl := range s.Slots {
		if off < sl.Dur {
			return sl.TDN, sl.TDN != NightTDN, base.Add(sl.Dur)
		}
		off -= sl.Dur
		base = base.Add(sl.Dur)
	}
	// Unreachable: off < week by construction.
	panic("rdcn: schedule walk overflow")
}

// NextDayStart returns the first slot boundary strictly after t at which a
// day (non-night slot) begins, along with that day's TDN.
func (s *Schedule) NextDayStart(t sim.Time) (sim.Time, int) {
	_, _, b := s.At(t)
	for i := 0; i <= len(s.Slots); i++ {
		tdn, ok, end := s.At(b)
		if ok {
			return b, tdn
		}
		b = end
	}
	// A schedule of only nights is rejected by NewSchedule... but guard
	// against all-night schedules constructed directly.
	panic("rdcn: schedule has no day slots")
}

// NumTDNs returns the number of distinct TDNs (highest TDN index + 1).
func (s *Schedule) NumTDNs() int {
	max := -1
	for _, sl := range s.Slots {
		if sl.TDN > max {
			max = sl.TDN
		}
	}
	return max + 1
}

// DutyCycle returns the ratio of day time to total time.
func (s *Schedule) DutyCycle() float64 {
	var up sim.Duration
	for _, sl := range s.Slots {
		if sl.TDN != NightTDN {
			up += sl.Dur
		}
	}
	return float64(up) / float64(s.week)
}

// TDNShare returns the fraction of the week during which tdn is active.
func (s *Schedule) TDNShare(tdn int) float64 {
	var up sim.Duration
	for _, sl := range s.Slots {
		if sl.TDN == tdn {
			up += sl.Dur
		}
	}
	return float64(up) / float64(s.week)
}
