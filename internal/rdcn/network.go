package rdcn

import (
	"encoding/binary"
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// TDNParams describes one time-division network: its bottleneck rate and
// one-way propagation delay.
type TDNParams struct {
	Rate  sim.Rate
	Delay sim.Dur
}

// NotifyProfile models the latency of the ToR-generated ICMP TDN-change
// notification (§3.2, §5.4). The three §5.4 optimizations map onto its
// fields: packet caching reduces Gen, the pull model eliminates Stagger, the
// dedicated control network reduces Net and Jitter.
type NotifyProfile struct {
	// Gen is the ToR-side time to construct and emit the ICMP packet.
	Gen sim.Dur
	// Stagger is the extra per-host delay of the push model: host i
	// receives its notification Gen + i*Stagger + Net after the change.
	Stagger sim.Dur
	// Net is the one-way delivery latency to the host.
	Net sim.Dur
	// Jitter adds a uniform [0,Jitter) random component per notification,
	// modelling data-plane queueing of the notification packet.
	Jitter sim.Dur
}

// OptimizedNotify returns the notification profile with all three §5.4
// optimizations applied: cached ICMP construction, pull model, dedicated
// control network.
func OptimizedNotify() NotifyProfile {
	return NotifyProfile{Gen: 500 * sim.Nanosecond, Stagger: 0, Net: 1 * sim.Microsecond, Jitter: 500 * sim.Nanosecond}
}

// UnoptimizedNotify returns the baseline profile: per-notification packet
// construction, push model looping over flows, notifications sharing the
// busy data-plane interface.
func UnoptimizedNotify() NotifyProfile {
	return NotifyProfile{Gen: 8 * sim.Microsecond, Stagger: 3 * sim.Microsecond, Net: 8 * sim.Microsecond, Jitter: 8 * sim.Microsecond}
}

// NotifyFate is a fault-injection verdict for one host's TDN-change
// notification: it may be dropped, delayed an extra Extra beyond the
// NotifyProfile latency, and/or duplicated (the stale copy arriving DupExtra
// after the original's nominal delivery instant).
type NotifyFate struct {
	Drop     bool
	Extra    sim.Dur
	Dup      bool
	DupExtra sim.Dur
}

// PreChange configures the retcpdyn behaviour (§5.2): Lead before each day
// on TDN, the ToR resizes its VOQs to Cap and sends hosts an advance
// circuit-up notification; the original capacity is restored when that day
// ends.
type PreChange struct {
	TDN  int
	Lead sim.Dur
	Cap  int
}

// Config assembles an N-rack hybrid RDCN (two racks reproduce the paper's
// Etalon testbed; more racks form a rotor-style multi-rack fabric whose
// optical matchings are the RotorPeer schedule).
type Config struct {
	// Racks is the number of ToR switches (default 2). With more than two
	// racks, TDN 0 is the always-routable packet network and each optical
	// TDN k >= 1 connects only the rack pairs of rotor matching k; the
	// packet uplink of a rack is fair-shared across its Racks-1 VOQs.
	Racks        int
	HostsPerRack int
	HostRate     sim.Rate // host NIC rate; bursts are shaped at this rate
	HostDelay    sim.Dur  // host-to-ToR propagation (intra-rack, tiny)
	VOQCap       int      // ToR VOQ capacity in packets
	MarkThresh   int      // ECN marking threshold (0 = no marking)
	TDNs         []TDNParams
	Schedule     *Schedule
	Notify       NotifyProfile
	PreChange    *PreChange // optional retcpdyn switch support

	// Cluster, when non-nil, places the network on the sharded engine: rack
	// r's entire data plane (host NIC pipe, VOQs, drainers, delivery) lives
	// on Cluster.RackLoop(r), cross-rack propagation travels through
	// per-(src,dst) docks applied at engine barriers, and the control plane
	// runs on Cluster.Control() — which must be the loop passed to New. The
	// engine's tracer (ShardedLoop.SetTracer) must be attached before
	// Network.SetTracer so per-rack forks exist. nil keeps the classic
	// single-loop wiring, byte for byte.
	Cluster *sim.ShardedLoop

	// DisableFramePool turns off wire-buffer recycling, making every frame
	// a fresh allocation. The pooled and unpooled data planes must produce
	// byte-identical traces (the golden-trace test enforces this); the knob
	// exists for that A/B check and for debugging suspected aliasing.
	DisableFramePool bool

	// DisableBatchDelivery reverts the fabric to the legacy frame-at-a-time
	// delivery path: one loop event per frame in the propagation-delay
	// stage and one Recv upcall per frame. The default (batched) path
	// coalesces each link's delay stage behind a single re-armed timer and
	// hands same-instant same-(host,TDN) frames to RecvBatch in one call.
	// Both paths must produce identical protocol-visible traces (the
	// batch-delivery A/B tests enforce this); the knob exists for that
	// check and for debugging suspected ordering drift.
	DisableBatchDelivery bool

	// PinnedVOQs gives each rack one VOQ per TDN, each draining only
	// during its own TDN's days. This models MPTCP subflow pinning: a
	// subflow's packets wait at the ToR until their network is active.
	PinnedVOQs bool
	// Classifier maps a frame to its pinned TDN when PinnedVOQs is set.
	// Default: destination port modulo the TDN count.
	Classifier func(wire []byte) int

	// Fault-injection hooks, installed by internal/fault. All are optional
	// and cost nothing when nil; rdcn never decides faults itself, it only
	// applies the verdicts, so the injector owns all randomness and tracing.

	// NotifyFault, when non-nil, is consulted once per host per TDN-change
	// notification.
	NotifyFault func(rack, host, tdn int, epoch uint32) NotifyFate
	// CircuitOK, when non-nil and returning false, makes the data plane
	// treat tdn as dark (a flapped circuit) even though the nominal
	// schedule — and the control plane's notifications — say the day is up.
	CircuitOK func(tdn int, now sim.Time) bool
	// ScheduleOffset, when non-nil, shifts the data plane's view of the
	// schedule: drainers evaluate Schedule.At(now - offset) while
	// notifications keep nominal timing, modelling a ToR whose optical
	// switch drifts from its agenda.
	ScheduleOffset func(now sim.Time) sim.Dur
	// ResizeFault, when non-nil and returning true, suppresses one VOQ
	// recapping (the retcpdyn resize silently fails on that queue).
	ResizeFault func(rack, q, newCap int) bool
}

// DefaultConfig returns the §5.1 Etalon configuration: 16 hosts per rack,
// TDN 0 = 10 Gbps / 100 µs RTT packet network, TDN 1 = 100 Gbps / 40 µs RTT
// optical network, 180 µs days, 20 µs nights, 6:1 packet:optical ratio,
// 16-packet VOQs, optimized notifications.
func DefaultConfig() Config {
	return Config{
		HostsPerRack: 16,
		HostRate:     100 * sim.Gbps,
		HostDelay:    1 * sim.Microsecond,
		VOQCap:       16,
		TDNs: []TDNParams{
			{Rate: 10 * sim.Gbps, Delay: 49 * sim.Microsecond},  // ~100us RTT
			{Rate: 100 * sim.Gbps, Delay: 19 * sim.Microsecond}, // ~40us RTT
		},
		Schedule: HybridWeek(6, 180*sim.Microsecond, 20*sim.Microsecond),
		Notify:   OptimizedNotify(),
	}
}

// Host is an end host attached to a rack ToR. Transport endpoints register
// the Recv and NotifyTDN upcalls.
type Host struct {
	Rack *Rack
	ID   int
	Addr uint32

	// Recv receives every data/ACK frame addressed to this host.
	Recv func(netem.Frame)
	// RecvBatch, when non-nil, receives every frame addressed to this host
	// whose fabric propagation delay expired at the same simulated instant
	// over the same TDN, in delivery order, in one call. Hosts without a
	// batch hook get the same frames as one Recv call each. The wire
	// buffers are reclaimed when RecvBatch returns, so hooks must parse
	// (Parse copies) rather than retain.
	RecvBatch func(fs []netem.Frame, tdn int)
	// NotifyTDN receives the parsed ICMP TDN-change notification.
	NotifyTDN func(tdn int, epoch uint32)
	// NotifyPreChange, if set, receives the retcpdyn advance circuit-up
	// signal Lead before a PreChange.TDN day begins.
	NotifyPreChange func(tdn int)
}

// Send serializes seg and transmits it through the rack's shared ingress
// NIC toward the ToR. The destination is taken from seg.Dst.
//
// All hosts of a rack share one ingress pipe at HostRate, mirroring the
// Etalon testbed where 16 containers share the emulated machine's data-plane
// NIC: a synchronized burst from many flows reaches the ToR serialized at
// fabric rate, not as an instantaneous impulse.
func (h *Host) Send(seg *packet.Segment) {
	seg.Src = h.Addr
	r := h.Rack
	r.framesIn++
	r.uplink.Send(netem.NewFrameIn(r.loop, r.pool, seg))
}

// NICQueueLen reports the shared ingress NIC backlog in frames.
func (h *Host) NICQueueLen() int { return h.Rack.uplink.QueueLen() }

// Uplink exposes the rack's shared host-side ingress NIC pipe. The fault
// injector installs its data-path frame fault hook here.
func (r *Rack) Uplink() *netem.Pipe { return r.uplink }

// Rack is a ToR switch plus its attached hosts. Each rack has one VOQ per
// destination rack (or one per TDN with PinnedVOQs on a two-rack network).
//
// Everything below the hosts is owned by the rack's home lane: with a
// Cluster the loop is the rack's ShardedLoop lane, the tracer is the lane's
// fork, and the pool / ledger / notification scratch are touched only by
// that lane (or by the control plane at barriers, with workers parked).
// Without a Cluster every rack shares Network.Loop and the wiring is the
// classic single-loop one.
type Rack struct {
	net   *Network
	ID    int
	Hosts []*Host

	loop     *sim.Loop     // the rack's home lane (Network.Loop when unsharded)
	tracer   *trace.Tracer // the rack's trace sink (lane fork under Cluster)
	uplink   *netem.Pipe   // shared host-side ingress NIC
	voqs     []*netem.VOQ
	drainers []*netem.Drainer

	// pool recycles wire buffers for frames this rack's hosts send. Without
	// a Cluster every rack aliases one shared network-wide pool, so releases
	// anywhere restock sends anywhere. Under a Cluster each lane owns its own
	// pool, and a frame consumed on another rack's lane has its buffer
	// repatriated at the next barrier (returnWire/flushReturns) — released
	// straight into the destination pool, the source pool would never see a
	// put again and both pools would allocate forever. Buffer identity is
	// trace-invisible (the pooled/unpooled golden A/B proves it), so the
	// barrier-delayed exchange cannot change results. Nil when
	// Config.DisableFramePool.
	pool *netem.BufPool

	// Barrier-return staging for foreign wire buffers: retBufs[src] holds
	// buffers consumed on this lane whose home pool is rack src's. Touched
	// only by this lane mid-window and by the coordinator at barriers.
	retBufs    [][][]byte
	retDirty   bool
	retFlushFn func()

	// Per-rack slice of the frame-conservation ledger: framesIn counts
	// frames sent by this rack's hosts (source lane), delivered/misrouted
	// count frames terminating at this rack (destination lane). Network's
	// ledger methods sum them at barriers.
	framesIn  uint64
	delivered uint64
	misrouted uint64

	// Notification delivery scratch: deliveries fire on this rack's lane,
	// so the parse segment and the cell free list are per-rack.
	notifyParse packet.Segment
	notifyFree  []*notifyCell
}

// Loop returns the rack's home lane: the loop every component owned by this
// rack (hosts, VOQs, drainers, transport connections) must arm timers on.
func (r *Rack) Loop() *sim.Loop { return r.loop }

// Tracer returns the rack's trace sink: the lane's fork of the shared
// tracer under a Cluster, the shared tracer itself otherwise (nil when
// tracing is off).
func (r *Rack) Tracer() *trace.Tracer { return r.tracer }

// FrameLedger reports this rack's slice of the conservation ledger: frames
// sent by its hosts, and frames delivered to / misrouted at its hosts.
// Summed over racks it equals Network.FrameLedger; read at barriers only.
func (r *Rack) FrameLedger() (sent, delivered, misrouted uint64) {
	return r.framesIn, r.delivered, r.misrouted
}

// qIndex maps a destination rack to its compact VOQ index (the rack itself
// is skipped). qDst is the inverse.
func (r *Rack) qIndex(dst int) int {
	if dst > r.ID {
		return dst - 1
	}
	return dst
}

func (r *Rack) qDst(q int) int {
	if q >= r.ID {
		return q + 1
	}
	return q
}

// VOQ exposes the rack's (first) uplink virtual output queue.
func (r *Rack) VOQ() *netem.VOQ { return r.voqs[0] }

// VOQs exposes all uplink queues (one per TDN with PinnedVOQs).
func (r *Rack) VOQs() []*netem.VOQ { return r.voqs }

// QueueLen reports the rack's total uplink occupancy in packets.
func (r *Rack) QueueLen() int {
	n := 0
	for _, v := range r.voqs {
		n += v.Len()
	}
	return n
}

// Network is the assembled N-rack hybrid RDCN.
type Network struct {
	Loop    *sim.Loop
	Cfg     Config
	Racks   []*Rack
	epoch   uint32
	stopAt  sim.Time
	started bool
	baseVOQ int
	tracer  *trace.Tracer

	// OnTransition, if set, is called at the start of every day with the
	// new TDN (after drainers are kicked, before notifications are sent).
	OnTransition func(tdn int)

	// NotifyLat, when non-nil, records the epoch-switch latency of every
	// delivered TDN-change notification: nanoseconds from the schedule
	// transition to the instant the host swaps state (delivery and swap are
	// synchronous). Faulted deliveries include their injected Extra delay.
	NotifyLat *trace.Histogram

	// epochSpan is the open "epoch" occupancy span for the current day
	// (0 during nights); epochTDN labels it for the closing record.
	epochSpan trace.SpanID
	epochTDN  int

	// Notification fan-out scratch, reused across transitions so the
	// steady-state control plane allocates nothing: one serialization
	// segment and a scratch wire per host (see notifyWire for the
	// recycling-horizon argument). The delivery-side scratch — parse
	// segment and cell free list — lives on each Rack, because deliveries
	// fire on the destination rack's lane.
	notifySeg   packet.Segment
	notifyWires [][]byte

	// transitionFn is the slot-boundary callback, bound once.
	transitionFn func()
}

// SetTracer attaches a tracer to the network's control plane (CatRDCN
// events: day/night transitions, notification fan-out, VOQ recapping) and to
// every rack VOQ (CatVOQ events, labeled "r<rack>q<idx>"; pinned VOQs are
// additionally tagged with their TDN). Pass nil to detach.
func (n *Network) SetTracer(t *trace.Tracer) {
	n.tracer = t
	for _, rack := range n.Racks {
		rt := t
		if c := n.Cfg.Cluster; c != nil && t != nil {
			rt = c.RackTracer(rack.ID)
		}
		rack.tracer = rt
		for k, v := range rack.voqs {
			v.Tracer = rt
			if n.Cfg.PinnedVOQs {
				v.TDN = k
			} else {
				v.TDN = -1
			}
		}
	}
}

// emit reports a CatRDCN control-plane event.
func (n *Network) emit(name string, tdn int, a, b float64) {
	if n.tracer.Enabled(trace.CatRDCN) {
		n.tracer.Emit(trace.CatRDCN, int64(n.Loop.Now()), name, -1, tdn, a, b, "")
	}
}

// HostAddr returns the address of host id in rack r, mirroring the 10.r.0.id
// addressing of the Etalon testbed.
func HostAddr(rack, id int) uint32 {
	return 0x0A<<24 | uint32(rack&0xFF)<<16 | uint32(id&0xFFFF)
}

// New assembles a network from cfg.
func New(loop *sim.Loop, cfg Config) (*Network, error) {
	if cfg.Racks == 0 {
		cfg.Racks = 2
	}
	if cfg.Racks < 2 || cfg.Racks > 0xFF {
		return nil, fmt.Errorf("rdcn: Racks must be in [2,255], got %d", cfg.Racks)
	}
	if cfg.HostsPerRack <= 0 {
		return nil, fmt.Errorf("rdcn: HostsPerRack must be positive")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("rdcn: Schedule is required")
	}
	if n := cfg.Schedule.NumTDNs(); n > len(cfg.TDNs) {
		return nil, fmt.Errorf("rdcn: schedule references %d TDNs but only %d configured", n, len(cfg.TDNs))
	}
	if len(cfg.TDNs) > packet.MaxTDNs {
		return nil, fmt.Errorf("rdcn: at most %d TDNs supported by the wire format", packet.MaxTDNs)
	}
	if cfg.Racks > 2 {
		if cfg.PinnedVOQs {
			return nil, fmt.Errorf("rdcn: PinnedVOQs (MPTCP subflow pinning) supports only 2 racks")
		}
		if err := validateRotor(cfg.Racks, cfg.Schedule); err != nil {
			return nil, err
		}
	}
	cluster := cfg.Cluster
	if cluster != nil {
		if cluster.Control() != loop {
			return nil, fmt.Errorf("rdcn: Cluster is set but loop is not Cluster.Control()")
		}
		if cluster.Racks() != cfg.Racks {
			return nil, fmt.Errorf("rdcn: Cluster has %d rack lanes but Config.Racks is %d", cluster.Racks(), cfg.Racks)
		}
		// Conservative lookahead: no frame crosses racks in less than the
		// fastest TDN's propagation delay, so windows of that span are safe.
		if len(cfg.TDNs) > 0 {
			la := cfg.TDNs[0].Delay
			for _, p := range cfg.TDNs[1:] {
				if p.Delay < la {
					la = p.Delay
				}
			}
			cluster.SetLookahead(la)
		}
	}
	n := &Network{Loop: loop, Cfg: cfg, baseVOQ: cfg.VOQCap}
	if cfg.PinnedVOQs && cfg.Classifier == nil {
		ntdns := len(cfg.TDNs)
		n.Cfg.Classifier = func(wire []byte) int { return PortClassifier(wire, ntdns) }
	}
	nvoq := cfg.Racks - 1 // one VOQ per destination rack
	if cfg.PinnedVOQs {
		nvoq = len(cfg.TDNs)
	}
	n.Racks = make([]*Rack, cfg.Racks)
	// Unsharded, every rack shares one pool (releases anywhere restock sends
	// anywhere, so gets and puts balance by construction); under a Cluster
	// each lane owns a pool and the barrier return path keeps them balanced.
	var sharedPool *netem.BufPool
	if !cfg.DisableFramePool && cluster == nil {
		sharedPool = &netem.BufPool{}
	}
	for r := 0; r < cfg.Racks; r++ {
		rloop := loop
		if cluster != nil {
			rloop = cluster.RackLoop(r)
		}
		rack := &Rack{net: n, ID: r, loop: rloop}
		if !cfg.DisableFramePool {
			rack.pool = sharedPool
			if cluster != nil {
				rack.pool = &netem.BufPool{}
			}
		}
		if cluster != nil {
			rack.retBufs = make([][][]byte, cfg.Racks)
			rack.retFlushFn = rack.flushReturns
		}
		for k := 0; k < nvoq; k++ {
			voq := netem.NewVOQ(rloop, cfg.VOQCap, cfg.MarkThresh)
			voq.Label = fmt.Sprintf("r%dq%d", rack.ID, k)
			var pf netem.PathFunc
			dst := rack.qDst(k)
			if cfg.PinnedVOQs {
				dst = 1 - r // pinned VOQs exist only on two-rack networks
				kk := k
				pf = func() (netem.Path, bool) {
					tdn, ok := n.dataPlaneTDN(rloop.Now())
					if !ok || tdn != kk {
						return netem.Path{}, false
					}
					p := n.Cfg.TDNs[kk]
					return netem.Path{Rate: p.Rate, Delay: p.Delay, TDN: kk}, true
				}
			} else {
				pf = n.pathFunc(rloop, r, dst)
			}
			d := &netem.Drainer{
				Loop: rloop,
				Q:    voq,
				Path: pf,
				Out:  func(f netem.Frame) { n.deliver(dst, f) },
			}
			if !cfg.DisableBatchDelivery {
				d.Coalesce = true
				d.OutBatch = func(fs []netem.Frame, tdn int) { n.deliverBatch(dst, fs, tdn) }
			}
			if cluster != nil {
				// Every drainer here crosses racks (qDst skips self), so its
				// propagation stage becomes a dock: staged on this lane,
				// flushed at barriers, delivered on the destination lane. The
				// dock's sinks route through deliverFrom so the consumed
				// buffers come home to this rack's pool.
				src, ddst := r, dst
				dk := netem.NewDock(src, ddst, rloop, cluster.RackLoop(ddst), cluster.Defer)
				dk.Out = func(f netem.Frame) { n.deliverFrom(src, ddst, f) }
				if !cfg.DisableBatchDelivery {
					dk.OutBatch = func(fs []netem.Frame, tdn int) { n.deliverBatchFrom(src, ddst, fs, tdn) }
				}
				d.Dock = dk
			}
			rack.voqs = append(rack.voqs, voq)
			rack.drainers = append(rack.drainers, d)
		}
		rack.uplink = &netem.Pipe{
			Loop:     rloop,
			Rate:     cfg.HostRate,
			Delay:    cfg.HostDelay,
			Out:      func(f netem.Frame) { rack.ingress(f) },
			Pool:     rack.pool,
			Coalesce: !cfg.DisableBatchDelivery,
		}
		for h := 0; h < cfg.HostsPerRack; h++ {
			rack.Hosts = append(rack.Hosts, &Host{Rack: rack, ID: h, Addr: HostAddr(r, h)})
		}
		n.Racks[r] = rack
		for _, d := range rack.drainers {
			d.Attach()
		}
	}
	return n, nil
}

// PortClassifier pins a frame to a TDN by its TCP destination port modulo
// ntdns (subflow i of the MPTCP glue uses ports ≡ i).
func PortClassifier(wire []byte, ntdns int) int {
	if len(wire) < 24 || ntdns <= 0 {
		return 0
	}
	port := int(wire[22])<<8 | int(wire[23])
	return port % ntdns
}

// pathFunc adapts the schedule to the drainer interface for rack rackID's VOQ
// toward rack dst. On a two-rack network every scheduled TDN connects the pair
// at its full rate (the paper's hybrid testbed). With more racks, TDN 0 is the
// packet network fair-sharing the rack uplink across its Racks-1 VOQs, and an
// optical TDN k serves only the rack pair of rotor matching k. The schedule
// is evaluated on the owning rack's clock (identical to Network.Loop when
// unsharded).
func (n *Network) pathFunc(rloop *sim.Loop, rackID, dst int) netem.PathFunc {
	return func() (netem.Path, bool) {
		tdn, ok := n.dataPlaneTDN(rloop.Now())
		if !ok {
			return netem.Path{}, false
		}
		p := n.Cfg.TDNs[tdn]
		if n.Cfg.Racks > 2 {
			if tdn == 0 {
				return netem.Path{Rate: p.Rate / sim.Rate(n.Cfg.Racks-1), Delay: p.Delay, TDN: 0}, true
			}
			if RotorPeer(n.Cfg.Racks, tdn, rackID) != dst {
				return netem.Path{}, false
			}
		}
		return netem.Path{Rate: p.Rate, Delay: p.Delay, TDN: tdn}, true
	}
}

// dataPlaneTDN reports the TDN the data plane is actually serving at now,
// after fault adjustments: schedule drift shifts the evaluation time and a
// flapped circuit reads as dark even though the nominal schedule (and the
// control plane's notifications) says day.
func (n *Network) dataPlaneTDN(now sim.Time) (int, bool) {
	t := now
	if off := n.Cfg.ScheduleOffset; off != nil {
		t = t.Add(-off(now))
	}
	tdn, ok, _ := n.Cfg.Schedule.At(t)
	if !ok {
		return NightTDN, false
	}
	if ck := n.Cfg.CircuitOK; ck != nil && !ck(tdn, now) {
		return tdn, false
	}
	return tdn, true
}

// ingress accepts a frame from a host NIC and places it in the rack's uplink
// VOQ: on a two-rack network the single cross-rack queue (or the classifier's
// pinned queue), on a multi-rack network the queue of the destination rack
// parsed from the IPv4 header. Intra-rack frames hairpin at the ToR without
// touching the fabric. Overflow is a drop-tail loss, exactly as in the Etalon
// VOQs.
func (r *Rack) ingress(f netem.Frame) {
	n := r.net
	if n.Cfg.Racks > 2 {
		if len(f.Wire) < 20 {
			r.misrouted++
			f.Release(r.pool)
			return
		}
		addr := binary.BigEndian.Uint32(f.Wire[16:20])
		dst := int(addr >> 16 & 0xFF)
		if addr>>24 != 0x0A || dst >= n.Cfg.Racks {
			r.misrouted++
			f.Release(r.pool)
			return
		}
		if dst == r.ID {
			n.deliver(r.ID, f)
			return
		}
		if !r.voqs[r.qIndex(dst)].Enqueue(f) {
			f.Release(r.pool)
		}
		return
	}
	idx := 0
	if n.Cfg.PinnedVOQs {
		idx = n.Cfg.Classifier(f.Wire) % len(r.voqs)
	}
	if !r.voqs[idx].Enqueue(f) {
		f.Release(r.pool)
	}
}

// deliver hands a frame that crossed the fabric to the destination host in
// rack dst, identified by the IPv4 destination address.
// Delivery is a frame's terminal point: once Recv returns the wire buffer
// goes back to the pool, so Recv hooks must parse (Parse copies) rather than
// retain the wire.
func (n *Network) deliver(dst int, f netem.Frame) {
	rack := n.Racks[dst]
	h := n.hostIn(rack, f)
	if h == nil {
		rack.misrouted++
		f.Release(rack.pool) // misrouted; drop
		return
	}
	rack.delivered++
	if h.Recv != nil {
		h.Recv(f)
	}
	f.Release(rack.pool)
}

// hostIn resolves a frame's destination host within rack by its IPv4
// destination address, or nil when the frame is misrouted.
//
//lint:hotpath runs once per delivered frame
func (n *Network) hostIn(rack *Rack, f netem.Frame) *Host {
	if len(f.Wire) < 20 {
		return nil
	}
	addr := binary.BigEndian.Uint32(f.Wire[16:20])
	id := int(addr & 0xFFFF)
	if int(addr>>16&0xFF) != rack.ID || id >= len(rack.Hosts) {
		return nil
	}
	return rack.Hosts[id]
}

// deliverBatch is deliver for a whole same-TDN delivery batch: maximal runs
// of consecutive frames addressed to the same host go to its RecvBatch hook
// in one call (falling back to per-frame Recv), with per-frame order, ledger
// accounting, and buffer reclamation identical to the unbatched path.
//
//lint:hotpath runs once per (host, TDN) delivery batch
func (n *Network) deliverBatch(dst int, fs []netem.Frame, tdn int) {
	rack := n.Racks[dst]
	for i := 0; i < len(fs); {
		h := n.hostIn(rack, fs[i])
		if h == nil {
			rack.misrouted++
			fs[i].Release(rack.pool)
			i++
			continue
		}
		j := i + 1
		for j < len(fs) && n.hostIn(rack, fs[j]) == h {
			j++
		}
		rack.delivered += uint64(j - i)
		if h.RecvBatch != nil {
			h.RecvBatch(fs[i:j], tdn)
		} else if h.Recv != nil {
			for k := i; k < j; k++ {
				h.Recv(fs[k])
			}
		}
		for k := i; k < j; k++ {
			fs[k].Release(rack.pool)
		}
		i = j
	}
}

// deliverFrom is deliver for frames that crossed the fabric between lanes
// (the dock sinks): identical delivery, but the consumed wire buffer is
// repatriated to rack src's pool at the next barrier instead of joining the
// destination pool — under per-lane pools a one-way release would grow the
// destination's free list and force the source to carve fresh blocks
// forever.
//
//lint:hotpath runs once per cross-lane delivered frame
func (n *Network) deliverFrom(src, dst int, f netem.Frame) {
	rack := n.Racks[dst]
	h := n.hostIn(rack, f)
	if h == nil {
		rack.misrouted++
		rack.returnWire(src, &f)
		return
	}
	rack.delivered++
	if h.Recv != nil {
		h.Recv(f)
	}
	rack.returnWire(src, &f)
}

// deliverBatchFrom is deliverBatch with deliverFrom's buffer repatriation.
//
//lint:hotpath runs once per cross-lane (host, TDN) delivery batch
func (n *Network) deliverBatchFrom(src, dst int, fs []netem.Frame, tdn int) {
	rack := n.Racks[dst]
	for i := 0; i < len(fs); {
		h := n.hostIn(rack, fs[i])
		if h == nil {
			rack.misrouted++
			rack.returnWire(src, &fs[i])
			i++
			continue
		}
		j := i + 1
		for j < len(fs) && n.hostIn(rack, fs[j]) == h {
			j++
		}
		rack.delivered += uint64(j - i)
		if h.RecvBatch != nil {
			h.RecvBatch(fs[i:j], tdn)
		} else if h.Recv != nil {
			for k := i; k < j; k++ {
				h.Recv(fs[k])
			}
		}
		for k := i; k < j; k++ {
			rack.returnWire(src, &fs[k])
		}
		i = j
	}
}

// returnWire stages a consumed frame's buffer for repatriation to rack src's
// pool at the next barrier. Cluster wiring only (dock sinks); falls back to
// a local release when pooling is off or the buffer is already home. Runs on
// this rack's lane.
//
//lint:hotpath runs once per cross-lane consumed frame
func (r *Rack) returnWire(src int, f *netem.Frame) {
	home := r.net.Racks[src].pool
	if home == nil || src == r.ID || cap(f.Wire) == 0 {
		f.Release(r.pool)
		return
	}
	if !r.retDirty {
		r.net.Cfg.Cluster.DeferLane(r.ID, r.retFlushFn)
		r.retDirty = true
	}
	r.retBufs[src] = append(r.retBufs[src], f.Wire)
	f.Wire = nil
}

// flushReturns hands every staged foreign buffer back to its home rack's
// pool, in source-rack order. Runs on the coordinator at a barrier with all
// workers parked, registered through the engine's DeferLane once per window.
func (r *Rack) flushReturns() {
	r.retDirty = false
	for src, bufs := range r.retBufs {
		if len(bufs) == 0 {
			continue
		}
		home := r.net.Racks[src].pool
		for i, b := range bufs {
			home.Put(b)
			bufs[i] = nil
		}
		r.retBufs[src] = bufs[:0]
	}
}

// Start schedules the RDCN control plane (schedule transitions, VOQ
// resizing, notifications) until the given time. Call once before running
// the loop.
func (n *Network) Start(until sim.Time) {
	if n.started {
		panic("rdcn: Start called twice")
	}
	n.started = true
	n.stopAt = until
	n.scheduleTransition(0)
}

// scheduleTransition arms the control-plane event for the slot boundary at
// time t (t=0 is the initial day start) and, transitively, all following
// ones until stopAt. The callback is bound once and reused for every slot.
func (n *Network) scheduleTransition(t sim.Time) {
	if t >= n.stopAt {
		return
	}
	if n.transitionFn == nil {
		n.transitionFn = n.transition
	}
	n.Loop.At(t, n.transitionFn)
}

// transition is the control-plane event at every slot boundary.
func (n *Network) transition() {
	now := n.Loop.Now()
	tdn, ok, slotEnd := n.Cfg.Schedule.At(now)
	n.epoch++
	n.KickAll()
	if n.epochSpan != 0 {
		// Close the previous day's occupancy span; A carries the epoch
		// counter that opened it.
		n.tracer.EndSpan(trace.CatRDCN, int64(now), "epoch", -1, n.epochTDN, n.epochSpan, float64(n.epoch-1), 0)
		n.epochSpan = 0
	}
	if ok {
		n.emit("day", tdn, float64(n.epoch), float64(slotEnd.Sub(now)))
		n.epochSpan = n.tracer.BeginSpan(trace.CatRDCN, int64(now), "epoch", -1, tdn, 0)
		n.epochTDN = tdn
		if n.OnTransition != nil {
			n.OnTransition(tdn)
		}
		n.notifyAll(tdn, n.epoch)
		if pc := n.Cfg.PreChange; pc != nil && tdn == pc.TDN {
			// Ensure the enlarged VOQ (idempotent if the lead-time resize
			// already happened) and restore the base size at day end.
			n.setVOQCaps(pc.Cap)
			n.Loop.At(slotEnd, func() { n.setVOQCaps(n.baseVOQ) })
		}
	} else {
		n.emit("night", -1, float64(n.epoch), float64(slotEnd.Sub(now)))
	}
	n.armPreChange(now, slotEnd)
	n.scheduleTransition(slotEnd)
}

// armPreChange schedules the retcpdyn advance actions (VOQ resize + advance
// circuit-up notification) if the instant "Lead before the next PreChange.TDN
// day" falls inside the current slot [t, slotEnd). Because a transition event
// fires at every slot boundary, each upcoming day is armed from exactly one
// slot even when Lead spans several nights and days.
func (n *Network) armPreChange(t, slotEnd sim.Time) {
	pc := n.Cfg.PreChange
	if pc == nil {
		return
	}
	dayStart, tdn := n.Cfg.Schedule.NextDayStart(t)
	if tdn != pc.TDN {
		return
	}
	at := dayStart.Add(-pc.Lead)
	if at < 0 {
		at = 0
	}
	if t == 0 && at <= t {
		at = t // lead time predates the simulation start
	} else if at < t || at >= slotEnd {
		return // a different (earlier or later) slot owns this arming
	}
	n.Loop.At(at, func() {
		n.emit("prechange", pc.TDN, float64(pc.Cap), float64(pc.Lead))
		n.setVOQCaps(pc.Cap)
		for _, rack := range n.Racks {
			for _, h := range rack.Hosts {
				if h.NotifyPreChange != nil {
					h.NotifyPreChange(pc.TDN)
				}
			}
		}
	})
}

// setVOQCaps resizes every uplink VOQ on both racks (unless a resize fault
// suppresses individual queues).
func (n *Network) setVOQCaps(cap int) {
	n.emit("voq_caps", -1, float64(cap), float64(n.baseVOQ))
	for _, rack := range n.Racks {
		for q, v := range rack.voqs {
			if rf := n.Cfg.ResizeFault; rf != nil && rf(rack.ID, q, cap) {
				continue
			}
			v.SetCap(cap)
		}
	}
}

// KickAll re-kicks every drainer on both racks. Besides the nominal slot
// transitions, the fault injector calls it at drift-shifted boundaries,
// where the data plane's day/night edges no longer coincide with the
// control-plane events that normally kick.
func (n *Network) KickAll() {
	for _, rack := range n.Racks {
		for _, d := range rack.drainers {
			d.Kick()
		}
	}
}

// Epoch reports the control plane's current schedule-transition counter.
func (n *Network) Epoch() uint32 { return n.epoch }

// CheckInvariants validates the accounting of every rack VOQ. The runtime
// invariant checker (internal/invariant) calls it after every simulation
// event during faulted runs.
func (n *Network) CheckInvariants() error {
	for _, rack := range n.Racks {
		for _, v := range rack.voqs {
			if err := v.CheckInvariants(); err != nil {
				return fmt.Errorf("rack %d: %w", rack.ID, err)
			}
		}
	}
	return nil
}

// notifyAll emits the ICMP TDN-change notification to every host, modelling
// the configured NotifyProfile. The notification is a real serialized ICMP
// packet parsed by the host, per Figure 5a. Each host's wire is serialized
// into a per-network scratch buffer reused across transitions — a delivery
// parses the wire at its own instant and the last parse of a buffer happens
// before the next transition can rewrite it (Net latencies are far below a
// slot), except when a dup fault stretches a stale copy past the next
// transition, in which case that delivery gets a private wire.
func (n *Network) notifyAll(tdn int, epoch uint32) {
	prof := n.Cfg.Notify
	n.emit("notify", tdn, float64(epoch), float64(len(n.Racks)*n.Cfg.HostsPerRack))
	n.notifyWires = n.notifyWires[:0]
	for _, rack := range n.Racks {
		for i, h := range rack.Hosts {
			d := prof.Gen + sim.Dur(i)*prof.Stagger + prof.Net
			if prof.Jitter > 0 {
				d += sim.Dur(n.Loop.Rand().Int63n(int64(prof.Jitter)))
			}
			var fate NotifyFate
			if nf := n.Cfg.NotifyFault; nf != nil {
				fate = nf(rack.ID, i, tdn, epoch)
			}
			seg := &n.notifySeg
			*seg = packet.Segment{
				Src: HostAddr(rack.ID, 0xFFFF), Dst: h.Addr, TTL: 1,
				Proto: packet.ProtoICMP,
				ICMP:  packet.TDNNotification{ActiveTDN: uint8(tdn), Epoch: epoch},
			}
			wire := seg.Serialize(n.notifyWire(seg.HeaderLen()))
			if !fate.Drop {
				w := wire
				if fate.Extra != 0 {
					// A fault-delayed delivery may outlive the scratch pool's
					// recycling horizon (the next day transition); it gets a
					// private wire. Faults are rare, so this never allocates
					// on the fault-free hot path.
					w = append([]byte(nil), wire...)
				}
				n.deliverNotify(h, w, d+fate.Extra, n.beginNotifySpan(tdn, epoch))
			}
			if fate.Dup {
				// The stale copy carries the same bytes as the original, like
				// a genuinely duplicated packet, but owns a private wire for
				// the same recycling-horizon reason.
				n.deliverNotify(h, append([]byte(nil), wire...), d+fate.DupExtra, n.beginNotifySpan(tdn, epoch))
			}
		}
	}
}

// notifyWire returns this transition's next scratch wire buffer from the
// per-network pool (steady state allocates nothing). Buffers are recycled at
// the NEXT notifyAll, which only happens at a later day transition — at
// least a day plus a night after this one — while fault-free deliveries
// complete within the notification profile's latency, far inside that window,
// so a recycled buffer can never be rewritten before its last parse.
func (n *Network) notifyWire(capHint int) []byte {
	if len(n.notifyWires) == cap(n.notifyWires) {
		n.notifyWires = append(n.notifyWires, nil)
	} else {
		n.notifyWires = n.notifyWires[:len(n.notifyWires)+1]
	}
	i := len(n.notifyWires) - 1
	if cap(n.notifyWires[i]) < capHint {
		n.notifyWires[i] = make([]byte, 0, capHint)
	}
	return n.notifyWires[i][:0]
}

// beginNotifySpan opens one per-delivery "notify" span, parented on the
// current epoch-occupancy span so the causal chain
// epoch -> notify -> cwnd_swap is explicit in the trace. Each delivery
// attempt (including a duplicated notification's stale copy) gets its own
// span, so B/E records always pair one-to-one.
func (n *Network) beginNotifySpan(tdn int, epoch uint32) trace.SpanID {
	return n.tracer.BeginSpan(trace.CatRDCN, int64(n.Loop.Now()), "notify", -1, tdn, n.epochSpan)
}

// notifyCell carries one scheduled ICMP notification delivery, standing in
// for a per-delivery closure: cells are recycled through Network.notifyFree
// with their callback bound exactly once, so the steady-state notification
// fan-out allocates nothing.
type notifyCell struct {
	n    *Network
	h    *Host
	wire []byte
	d    sim.Dur
	sp   trace.SpanID
	fn   func()
}

// deliverNotify schedules one ICMP notification delivery d from now, closing
// span sp at the delivery instant and exposing it as the implicit parent of
// whatever the host does in response (the TDTCP cwnd swap parents onto it).
// The delivery timer is armed on the destination host's rack lane; the
// control plane runs at barriers with every lane clock synced, so "d from
// now" means the same instant on every clock.
func (n *Network) deliverNotify(h *Host, wire []byte, d sim.Dur, sp trace.SpanID) {
	r := h.Rack
	var c *notifyCell
	if k := len(r.notifyFree); k > 0 {
		c = r.notifyFree[k-1]
		r.notifyFree[k-1] = nil
		r.notifyFree = r.notifyFree[:k-1]
	} else {
		c = &notifyCell{n: n}
		c.fn = c.fire
	}
	c.h, c.wire, c.d, c.sp = h, wire, d, sp
	r.loop.After(d, c.fn)
}

// fire parses and delivers one notification, then recycles the cell. It runs
// on the destination rack's lane, so all scratch and tracing go through the
// rack (the span id pairs with the control plane's BeginSpan regardless of
// which tracer closes it).
//
//lint:hotpath runs once per host per schedule transition
func (c *notifyCell) fire() {
	n, h, wire, d, sp := c.n, c.h, c.wire, c.d, c.sp
	r := h.Rack
	c.h, c.wire = nil, nil
	r.notifyFree = append(r.notifyFree, c)
	s := &r.notifyParse
	if err := packet.Parse(wire, s); err != nil || h.NotifyTDN == nil {
		return
	}
	now := r.loop.Now()
	r.tracer.EndSpan(trace.CatRDCN, int64(now), "notify", -1, int(s.ICMP.ActiveTDN), sp, float64(s.ICMP.Epoch), float64(d))
	n.NotifyLat.Record(int64(d))
	r.tracer.PushParent(sp)
	h.NotifyTDN(int(s.ICMP.ActiveTDN), s.ICMP.Epoch)
	r.tracer.PopParent()
}

// ActiveTDN reports the TDN active right now (ok=false during a night).
func (n *Network) ActiveTDN() (int, bool) {
	tdn, ok, _ := n.Cfg.Schedule.At(n.Loop.Now())
	return tdn, ok
}

// InFlightFrames reports the number of data-plane frames currently inside the
// network: queued in or serializing through a host NIC pipe, waiting in a
// VOQ, or serializing/propagating through a ToR uplink drainer.
func (n *Network) InFlightFrames() uint64 {
	var fl uint64
	for _, rack := range n.Racks {
		fl += uint64(rack.uplink.InFlight())
		for _, v := range rack.voqs {
			fl += uint64(v.Len())
		}
		for _, d := range rack.drainers {
			fl += uint64(d.InFlight())
		}
	}
	return fl
}

// CheckConservation audits the frame ledger: every frame a host ever sent
// must be delivered, misrouted, dropped by a VOQ, dropped by an injected pipe
// fault, or still in flight. It holds at any instant of any run, faulted or
// not, and is the data-plane half of the "bytes sent == delivered + dropped +
// in-flight" conservation property.
func (n *Network) CheckConservation() error {
	var voqDrops, faultDrops uint64
	for _, rack := range n.Racks {
		faultDrops += rack.uplink.FaultDrops()
		for _, v := range rack.voqs {
			_, _, drops, _ := v.Stats()
			voqDrops += drops
		}
	}
	inFlight := n.InFlightFrames()
	sent, delivered, misrouted := n.FrameLedger()
	if got := delivered + misrouted + voqDrops + faultDrops + inFlight; got != sent {
		return fmt.Errorf("rdcn: frame conservation violated: sent %d != delivered %d + misrouted %d + voq drops %d + fault drops %d + in flight %d",
			sent, delivered, misrouted, voqDrops, faultDrops, inFlight)
	}
	return nil
}

// FrameLedger reports the cumulative conservation counters: frames sent by
// hosts, delivered to a Recv hook, and dropped as misrouted — summed over
// the per-rack ledgers (see Rack.FrameLedger). Barrier-only under a
// Cluster.
func (n *Network) FrameLedger() (sent, delivered, misrouted uint64) {
	for _, rack := range n.Racks {
		sent += rack.framesIn
		delivered += rack.delivered
		misrouted += rack.misrouted
	}
	return sent, delivered, misrouted
}
