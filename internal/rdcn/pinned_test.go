package rdcn

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestPortClassifier(t *testing.T) {
	seg := &packet.Segment{Src: 1, Dst: 2, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{SrcPort: 40001, DstPort: 5001, Flags: packet.FlagACK}}
	wire := seg.Serialize(nil)
	if got := PortClassifier(wire, 2); got != 1 {
		t.Fatalf("classifier = %d, want 1 (dst port 5001)", got)
	}
	seg.TCP.DstPort = 5000
	wire = seg.Serialize(nil)
	if got := PortClassifier(wire, 2); got != 0 {
		t.Fatalf("classifier = %d, want 0", got)
	}
	if got := PortClassifier(nil, 2); got != 0 {
		t.Fatal("short frame should classify to 0")
	}
	if got := PortClassifier(wire, 0); got != 0 {
		t.Fatal("zero TDNs should classify to 0")
	}
}

func TestPinnedVOQsHoldUntilTheirTDN(t *testing.T) {
	loop := sim.NewLoop(1)
	cfg := DefaultConfig()
	cfg.HostsPerRack = 1
	cfg.HostDelay = 0
	cfg.PinnedVOQs = true
	// Schedule: TDN0 for 100us, night, TDN1 for 100us, night.
	cfg.Schedule = MustSchedule([]Slot{
		{TDN: 0, Dur: us(100)}, {TDN: NightTDN, Dur: us(10)},
		{TDN: 1, Dur: us(100)}, {TDN: NightTDN, Dur: us(10)},
	})
	n, err := New(loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Racks[0].VOQs()) != 2 {
		t.Fatalf("pinned rack has %d VOQs, want 2", len(n.Racks[0].VOQs()))
	}
	dst := n.Racks[1].Hosts[0]
	type arrival struct {
		port uint16
		at   sim.Time
	}
	var got []arrival
	dst.Recv = func(f netem.Frame) {
		var s packet.Segment
		if err := packet.Parse(f.Wire, &s); err != nil {
			t.Fatal(err)
		}
		got = append(got, arrival{s.TCP.DstPort, loop.Now()})
	}
	n.Start(sim.Time(us(500)))
	// During TDN0, send one frame per pinned class.
	loop.At(sim.Time(us(10)), func() {
		for _, port := range []uint16{5000, 5001} {
			n.Racks[0].Hosts[0].Send(&packet.Segment{
				Dst: dst.Addr, TTL: 64, Proto: packet.ProtoTCP,
				TCP: packet.TCPHeader{DstPort: port, Flags: packet.FlagACK, PayloadLen: 100},
			})
		}
	})
	loop.RunUntil(sim.Time(us(400)))
	if len(got) != 2 {
		t.Fatalf("arrivals = %d", len(got))
	}
	// Port 5000 (TDN0) crosses immediately; port 5001 (TDN1) waits for the
	// TDN1 day starting at 110us.
	if got[0].port != 5000 || got[0].at > sim.Time(us(80)) {
		t.Fatalf("TDN0 frame: %+v", got[0])
	}
	if got[1].port != 5001 || got[1].at < sim.Time(us(110)) {
		t.Fatalf("TDN1 frame crossed before its day: %+v", got[1])
	}
	if _, _, drops, _ := n.Racks[0].VOQs()[1].Stats(); drops != 0 {
		t.Fatalf("pinned VOQ dropped %d", drops)
	}
	if n.Racks[0].QueueLen() != 0 {
		t.Fatalf("queues not drained: %d", n.Racks[0].QueueLen())
	}
}

func TestNotifyJitterDeterministic(t *testing.T) {
	run := func() []float64 {
		loop := sim.NewLoop(99)
		cfg := DefaultConfig()
		cfg.HostsPerRack = 4
		cfg.Notify = NotifyProfile{Gen: us(1), Net: us(1), Jitter: us(5)}
		n, _ := New(loop, cfg)
		var times []float64
		for _, h := range n.Racks[0].Hosts {
			h.NotifyTDN = func(int, uint32) { times = append(times, loop.Now().Microseconds()) }
		}
		n.Start(sim.Time(us(300)))
		loop.RunUntil(sim.Time(us(300)))
		return times
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered notifications not deterministic at %d", i)
		}
	}
}
