package rdcn

import (
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func us(n int64) sim.Dur { return sim.Dur(n) * sim.Microsecond }

func TestHybridWeekLayout(t *testing.T) {
	s := HybridWeek(6, us(180), us(20))
	if got := s.Week(); got != us(1400) {
		t.Fatalf("week = %v, want 1400us", got)
	}
	if s.NumTDNs() != 2 {
		t.Fatalf("NumTDNs = %d", s.NumTDNs())
	}
	if dc := s.DutyCycle(); dc != 0.9 {
		t.Fatalf("duty cycle = %v, want 0.9", dc)
	}
	if sh := s.TDNShare(1); sh != 180.0/1400 {
		t.Fatalf("optical share = %v", sh)
	}
	if sh := s.TDNShare(0); sh != 1080.0/1400 {
		t.Fatalf("packet share = %v", sh)
	}
}

func TestScheduleAt(t *testing.T) {
	s := HybridWeek(2, us(180), us(20)) // 0:[0,180) night:[180,200) 0:[200,380) night:[380,400) 1:[400,580) night:[580,600)
	cases := []struct {
		at  sim.Time
		tdn int
		ok  bool
		end sim.Time
	}{
		{0, 0, true, sim.Time(us(180))},
		{sim.Time(us(179)), 0, true, sim.Time(us(180))},
		{sim.Time(us(180)), NightTDN, false, sim.Time(us(200))},
		{sim.Time(us(400)), 1, true, sim.Time(us(580))},
		{sim.Time(us(599)), NightTDN, false, sim.Time(us(600))},
		{sim.Time(us(600)), 0, true, sim.Time(us(780))}, // wraps into week 2
		{sim.Time(us(1000)), 1, true, sim.Time(us(1180))},
	}
	for _, c := range cases {
		tdn, ok, end := s.At(c.at)
		if tdn != c.tdn || ok != c.ok || end != c.end {
			t.Errorf("At(%v) = (%d,%v,%v), want (%d,%v,%v)", c.at, tdn, ok, end, c.tdn, c.ok, c.end)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(nil); err == nil {
		t.Fatal("empty schedule accepted")
	}
	if _, err := NewSchedule([]Slot{{TDN: 0, Dur: 0}}); err == nil {
		t.Fatal("zero-duration slot accepted")
	}
	if _, err := NewSchedule([]Slot{{TDN: -2, Dur: 1}}); err == nil {
		t.Fatal("invalid TDN accepted")
	}
}

// Property: At is periodic with period Week and slotEnd is always in the
// future and at most one week away.
func TestScheduleAtProperty(t *testing.T) {
	s := HybridWeek(6, us(180), us(20))
	f := func(raw uint32) bool {
		at := sim.Time(raw) * 17
		tdn1, ok1, end1 := s.At(at)
		tdn2, ok2, end2 := s.At(at.Add(s.Week()))
		if tdn1 != tdn2 || ok1 != ok2 {
			return false
		}
		if end2.Sub(end1) != s.Week() {
			return false
		}
		return end1 > at && end1.Sub(at) <= s.Week()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHostAddr(t *testing.T) {
	a := HostAddr(1, 5)
	if a != 0x0A010005 {
		t.Fatalf("HostAddr = %x", a)
	}
}

func buildNet(t *testing.T, cfg Config) (*sim.Loop, *Network) {
	t.Helper()
	loop := sim.NewLoop(1)
	n, err := New(loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return loop, n
}

func TestNewValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	cfg := DefaultConfig()
	cfg.HostsPerRack = 0
	if _, err := New(loop, cfg); err == nil {
		t.Fatal("zero hosts accepted")
	}
	cfg = DefaultConfig()
	cfg.Schedule = nil
	if _, err := New(loop, cfg); err == nil {
		t.Fatal("nil schedule accepted")
	}
	cfg = DefaultConfig()
	cfg.TDNs = cfg.TDNs[:1]
	if _, err := New(loop, cfg); err == nil {
		t.Fatal("schedule with more TDNs than configured accepted")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsPerRack = 2
	loop, n := buildNet(t, cfg)
	src := n.Racks[0].Hosts[1]
	dst := n.Racks[1].Hosts[1]
	var got []packet.Segment
	dst.Recv = func(f netem.Frame) {
		var s packet.Segment
		if err := packet.Parse(f.Wire, &s); err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	n.Start(sim.Time(us(1000)))
	seg := &packet.Segment{
		Dst: dst.Addr, TTL: 64, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{Seq: 7, Flags: packet.FlagACK, PayloadLen: 1000},
	}
	loop.After(0, func() { src.Send(seg) })
	loop.RunUntil(sim.Time(us(1000)))
	if len(got) != 1 {
		t.Fatalf("delivered %d segments", len(got))
	}
	if got[0].TCP.Seq != 7 || got[0].Src != src.Addr {
		t.Fatalf("segment mangled: %+v", got[0])
	}
}

func TestDeliveryPausedDuringNight(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsPerRack = 1
	cfg.HostDelay = 0
	// Short days so the test spans a night quickly.
	cfg.Schedule = MustSchedule([]Slot{
		{TDN: 0, Dur: us(50)}, {TDN: NightTDN, Dur: us(50)}, {TDN: 1, Dur: us(50)}, {TDN: NightTDN, Dur: us(50)},
	})
	loop, n := buildNet(t, cfg)
	dst := n.Racks[1].Hosts[0]
	var arrivals []sim.Time
	dst.Recv = func(netem.Frame) { arrivals = append(arrivals, loop.Now()) }
	n.Start(sim.Time(us(400)))
	// Send one packet during the first night: it must wait for the next day.
	loop.At(sim.Time(us(60)), func() {
		n.Racks[0].Hosts[0].Send(&packet.Segment{
			Dst: dst.Addr, TTL: 64, Proto: packet.ProtoTCP,
			TCP: packet.TCPHeader{Flags: packet.FlagACK, PayloadLen: 1000},
		})
	})
	loop.RunUntil(sim.Time(us(400)))
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Day 2 (TDN 1) starts at 100us; TDN 1 delay is 19us; +serialization.
	if arrivals[0] < sim.Time(us(100)) {
		t.Fatalf("frame crossed fabric during night at %v", arrivals[0])
	}
	if arrivals[0] > sim.Time(us(125)) {
		t.Fatalf("frame unduly delayed: %v", arrivals[0])
	}
}

func TestNotifications(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsPerRack = 2
	cfg.Notify = NotifyProfile{Gen: us(1), Stagger: us(2), Net: us(1)}
	loop, n := buildNet(t, cfg)
	type notif struct {
		at    sim.Time
		tdn   int
		epoch uint32
	}
	perHost := make(map[int][]notif)
	for i, h := range n.Racks[0].Hosts {
		i, h := i, h
		h.NotifyTDN = func(tdn int, epoch uint32) {
			perHost[i] = append(perHost[i], notif{loop.Now(), tdn, epoch})
		}
	}
	n.Start(sim.Time(us(1400))) // one full week
	loop.RunUntil(sim.Time(us(1450)))
	// 7 days in a week -> 7 notifications per host.
	for i := 0; i < 2; i++ {
		if len(perHost[i]) != 7 {
			t.Fatalf("host %d got %d notifications, want 7", i, len(perHost[i]))
		}
	}
	// First notification: day 0 at t=0, host 0 at Gen+Net = 2us, host 1
	// staggered 2us later.
	if perHost[0][0].at != sim.Time(us(2)) {
		t.Fatalf("host0 first notify at %v", perHost[0][0].at)
	}
	if perHost[1][0].at != sim.Time(us(4)) {
		t.Fatalf("host1 first notify at %v", perHost[1][0].at)
	}
	// The 7th day (optical) notification carries TDN 1.
	if perHost[0][6].tdn != 1 {
		t.Fatalf("7th notification tdn = %d, want 1", perHost[0][6].tdn)
	}
	// Epochs strictly increase.
	for i := 1; i < 7; i++ {
		if perHost[0][i].epoch <= perHost[0][i-1].epoch {
			t.Fatalf("epochs not increasing: %+v", perHost[0])
		}
	}
}

func TestPreChangeResizesVOQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsPerRack = 1
	cfg.PreChange = &PreChange{TDN: 1, Lead: us(150), Cap: 50}
	loop, n := buildNet(t, cfg)
	var preNotifies []sim.Time
	n.Racks[0].Hosts[0].NotifyPreChange = func(tdn int) {
		if tdn != 1 {
			t.Fatalf("pre-change tdn = %d", tdn)
		}
		preNotifies = append(preNotifies, loop.Now())
	}
	n.Start(sim.Time(us(1400)))
	// Optical day of week 1 runs [1200,1380); resize is due at 1050.
	loop.RunUntil(sim.Time(us(1040)))
	if n.Racks[0].VOQ().Cap() != 16 {
		t.Fatalf("cap resized too early: %d", n.Racks[0].VOQ().Cap())
	}
	loop.RunUntil(sim.Time(us(1060)))
	if n.Racks[0].VOQ().Cap() != 50 {
		t.Fatalf("cap = %d at lead time, want 50", n.Racks[0].VOQ().Cap())
	}
	loop.RunUntil(sim.Time(us(1390)))
	if n.Racks[0].VOQ().Cap() != 16 {
		t.Fatalf("cap = %d after optical day, want 16 restored", n.Racks[0].VOQ().Cap())
	}
	if len(preNotifies) != 1 || preNotifies[0] != sim.Time(us(1050)) {
		t.Fatalf("preNotifies = %v, want one at 1050us", preNotifies)
	}
}

func TestActiveTDN(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsPerRack = 1
	loop, n := buildNet(t, cfg)
	n.Start(sim.Time(us(1400)))
	loop.RunUntil(sim.Time(us(50)))
	if tdn, ok := n.ActiveTDN(); !ok || tdn != 0 {
		t.Fatalf("ActiveTDN at 50us = %d,%v", tdn, ok)
	}
	loop.RunUntil(sim.Time(us(190)))
	if _, ok := n.ActiveTDN(); ok {
		t.Fatal("ActiveTDN during night reported ok")
	}
	loop.RunUntil(sim.Time(us(1250)))
	if tdn, ok := n.ActiveTDN(); !ok || tdn != 1 {
		t.Fatalf("ActiveTDN at 1250us = %d,%v", tdn, ok)
	}
}
