package rdcn

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Rotor matchings generalize the two-rack hybrid to an N-rack RDCN in the
// style of RotorNet/Sirius/D3: the optical switch cycles through a fixed,
// demand-oblivious sequence of perfect matchings, giving every rack pair a
// direct circuit once per rotation. We map each matching onto its own TDN:
//
//	TDN 0          the always-routable packet network (the hybrid fallback)
//	TDN k (k >= 1) optical matching k of the rotation, k in [1, NumMatchings]
//
// A rack therefore sees NumMatchings(n)+1 "network days" — exactly the
// many-TDN regime the per-TDN state design of TDTCP argues for.

// NumMatchings returns the number of optical matchings in one full rotation
// over nRacks racks: every pair of racks meets exactly once per rotation.
// For even nRacks this is nRacks-1 perfect matchings (circle method); for odd
// nRacks it is nRacks rounds with one rack idle per round.
func NumMatchings(nRacks int) int {
	if nRacks < 2 {
		return 0
	}
	if nRacks%2 == 0 {
		return nRacks - 1
	}
	return nRacks
}

// RotorPeer returns the rack that rack is circuit-connected to during optical
// matching day (day in [1, NumMatchings(nRacks)]), or -1 if the rack sits out
// that matching (odd nRacks) or the arguments are out of range. The matchings
// come from the classic round-robin tournament (circle method): they are
// involutions (RotorPeer(RotorPeer(r)) == r) and over a full rotation every
// pair meets exactly once.
func RotorPeer(nRacks, day, rack int) int {
	if nRacks < 2 || rack < 0 || rack >= nRacks || day < 1 || day > NumMatchings(nRacks) {
		return -1
	}
	if nRacks%2 == 0 {
		// m = nRacks-1 is odd: racks 0..m-1 pair by i+j ≡ day-1 (mod m);
		// the unique fixed point 2i ≡ day-1 pairs with the pivot rack m.
		m := nRacks - 1
		fixed := (day - 1) * (m + 1) / 2 % m // (day-1) * inv2 mod m
		if rack == m {
			return fixed
		}
		if rack == fixed {
			return m
		}
		return ((day - 1) - rack%m + 2*m) % m
	}
	// Odd nRacks: i+j ≡ day-1 (mod nRacks); the fixed point sits out.
	fixed := (day - 1) * (nRacks + 1) / 2 % nRacks
	if rack == fixed {
		return -1
	}
	return ((day - 1) - rack%nRacks + 2*nRacks) % nRacks
}

// RotorWeek builds the rotation schedule for an N-rack rotor RDCN:
// before each of the NumMatchings optical days the packet network (TDN 0)
// runs for packetDays days; every day lasts day and is followed by a night.
// RotorWeek(2, 6, day, night) is exactly the paper's HybridWeek(6, day,
// night) two-rack schedule.
func RotorWeek(nRacks, packetDays int, day, night sim.Dur) *Schedule {
	nm := NumMatchings(nRacks)
	slots := make([]Slot, 0, (packetDays+1)*2*nm)
	for k := 1; k <= nm; k++ {
		for i := 0; i < packetDays; i++ {
			slots = append(slots, Slot{TDN: 0, Dur: day}, Slot{TDN: NightTDN, Dur: night})
		}
		slots = append(slots, Slot{TDN: k, Dur: day}, Slot{TDN: NightTDN, Dur: night})
	}
	return MustSchedule(slots)
}

// RotorTDNs builds the TDN parameter table for an N-rack rotor RDCN: TDN 0
// is the packet network, TDNs 1..NumMatchings are identical optical
// matchings.
func RotorTDNs(nRacks int, packet, optical TDNParams) []TDNParams {
	tdns := make([]TDNParams, 1+NumMatchings(nRacks))
	tdns[0] = packet
	for k := 1; k < len(tdns); k++ {
		tdns[k] = optical
	}
	return tdns
}

// validateRotor checks that every optical TDN a schedule references has a
// matching defined for the given rack count.
func validateRotor(nRacks int, sch *Schedule) error {
	if max := sch.NumTDNs() - 1; max > NumMatchings(nRacks) {
		return fmt.Errorf("rdcn: schedule references optical TDN %d but %d racks define only %d matchings",
			max, nRacks, NumMatchings(nRacks))
	}
	return nil
}
