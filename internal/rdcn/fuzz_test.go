package rdcn

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// FuzzScheduleParse feeds arbitrary specs through the schedule parser: it
// must never panic, and every schedule it accepts must be well-formed — a
// positive week and an At() that always makes forward progress (the schedule
// transition loop re-arms at slotEnd, so a non-advancing slot would hang the
// simulation).
func FuzzScheduleParse(f *testing.F) {
	for _, seed := range []string{
		"6x(0:180us,-:20us),1:180us,-:20us", // the paper's hybrid week
		"0:1ms",
		"-:5us,1:5us",
		"3x(1:10us)",
		"2x(2x(0:1us,-:1us),1:3us)",
		"0:180", // missing unit
		"9999999x(0:1us)",
		"1:9223372036854775807ns,0:1s", // week overflow
		" 1 : 10us , - : 2us ",
		"x(",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return
		}
		w := s.Week()
		if w <= 0 {
			t.Fatalf("accepted schedule with non-positive week %v: %q", w, spec)
		}
		for _, tm := range []sim.Time{
			0, sim.Time(w) - 1, sim.Time(w), 2*sim.Time(w) + 3,
			-1, -sim.Time(w) / 2, -3 * sim.Time(w),
		} {
			tdn, ok, end := s.At(tm)
			if end <= tm {
				t.Fatalf("At(%v) slotEnd %v does not advance: %q", tm, end, spec)
			}
			if ok && (tdn < 0 || tdn == NightTDN) {
				t.Fatalf("At(%v) ok with invalid TDN %d: %q", tm, tdn, spec)
			}
		}
	})
}
