package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestMeterCountsEvents(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMeter()
	m.Attach(loop)
	for i := 0; i < 10; i++ {
		loop.After(sim.Dur(i+1)*sim.Microsecond, func() {})
	}
	loop.RunUntil(sim.Time(time.Millisecond))
	s := m.Snapshot()
	if s.Events != 10 {
		t.Fatalf("Events = %d, want 10", s.Events)
	}
	if s.SimNow != sim.Time(10*sim.Microsecond) {
		t.Fatalf("SimNow = %v, want 10µs", s.SimNow)
	}
	if s.Wall <= 0 {
		t.Fatalf("Wall = %v, want > 0", s.Wall)
	}
}

func TestMeterChainsPostEvent(t *testing.T) {
	loop := sim.NewLoop(1)
	var prevCalls int
	loop.PostEvent = func() { prevCalls++ }
	m := NewMeter()
	m.Attach(loop)
	loop.After(sim.Microsecond, func() {})
	loop.RunUntil(sim.Time(sim.Millisecond))
	if prevCalls != 1 {
		t.Fatalf("existing PostEvent hook called %d times, want 1", prevCalls)
	}
	if got := m.Snapshot().Events; got != 1 {
		t.Fatalf("Events = %d, want 1", got)
	}
}

func TestNilMeterIsNoOp(t *testing.T) {
	var m *Meter
	m.Attach(sim.NewLoop(1))
	m.FlowStarted()
	m.FlowDone()
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil meter snapshot = %+v, want zero", s)
	}
}

// TestMeterConcurrentReads drives a simulation while another goroutine reads
// progress lines — the contract the Reporter relies on. Run under -race this
// is the data-race gate for the whole meter surface.
func TestMeterConcurrentReads(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewMeter()
	m.Attach(loop)
	var tick func(sim.Time)
	tick = func(now sim.Time) {
		if now < sim.Time(10*sim.Millisecond) {
			loop.After(sim.Microsecond, func() { tick(loop.Now()) })
		}
	}
	tick(0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Line()
				m.FlowStarted()
				m.FlowDone()
			}
		}
	}()
	loop.RunUntil(sim.Time(20 * sim.Millisecond))
	close(stop)
	wg.Wait()
	if got := m.Snapshot().Events; got == 0 {
		t.Fatal("no events metered")
	}
}

// TestMeterConcurrentAttachStartsClockOnce races many first Attaches: the
// wall clock must latch exactly once (compare-and-swap from zero), so every
// racer observes the same start. A plain read-check-store here would let a
// later racer clobber an earlier start and skew the events/s rate.
func TestMeterConcurrentAttachStartsClockOnce(t *testing.T) {
	m := NewMeter()
	const racers = 16
	starts := make([]int64, racers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			m.Attach(sim.NewLoop(int64(i)))
			starts[i] = m.wallStart.Load()
		}(i)
	}
	close(start)
	wg.Wait()
	if starts[0] == 0 {
		t.Fatal("wall clock never started")
	}
	for i, s := range starts {
		if s != starts[0] {
			t.Fatalf("racer %d saw wall start %d, racer 0 saw %d: first-attach init is not once-only", i, s, starts[0])
		}
	}
	if got := m.wallStart.Load(); got != starts[0] {
		t.Fatalf("wall start moved after the race: %d != %d", got, starts[0])
	}
}

func TestSnapshotRates(t *testing.T) {
	s := Snapshot{Events: 1000, SimNow: sim.Time(2 * sim.Second), Wall: time.Second}
	if got := s.EventsPerSec(); got != 1000 {
		t.Fatalf("EventsPerSec = %v, want 1000", got)
	}
	if got := s.SimWallRatio(); got != 2 {
		t.Fatalf("SimWallRatio = %v, want 2", got)
	}
	if (Snapshot{}).EventsPerSec() != 0 || (Snapshot{}).SimWallRatio() != 0 {
		t.Fatal("zero snapshot must report zero rates")
	}
}

func TestReporterPrintsAndStops(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	n := 0
	r := NewReporter(w, time.Millisecond, func() string { n++; return "line" })
	r.Start()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	r.Stop() // idempotent
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "line") {
		t.Fatalf("no lines printed: %q", out)
	}
	lines := strings.Count(out, "\n")
	if lines < 2 {
		t.Fatalf("want >= 2 lines (ticks + final), got %d: %q", lines, out)
	}
	after := n
	time.Sleep(5 * time.Millisecond)
	if n != after {
		t.Fatal("reporter kept producing after Stop")
	}
}

func TestReporterStopBeforeStart(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf, time.Second, func() string { return "final" })
	r.Stop()
	if got := buf.String(); got != "final\n" {
		t.Fatalf("Stop before Start printed %q, want one final line", got)
	}
}

func TestSweepMeter(t *testing.T) {
	s := NewSweepMeter(4, 2)
	s.CellStart(0, 0)
	s.CellStart(1, 1)
	line := s.Line()
	if !strings.Contains(line, "0/4 cells done") || !strings.Contains(line, "w0:c0") || !strings.Contains(line, "w1:c1") {
		t.Fatalf("unexpected line %q", line)
	}
	s.CellDone(0, 0, nil)
	s.CellDone(1, 1, errors.New("boom"))
	done, failed := s.Done()
	if done != 2 || failed != 1 {
		t.Fatalf("Done() = (%d, %d), want (2, 1)", done, failed)
	}
	if line := s.Line(); !strings.Contains(line, "2/4 cells done, 1 failed") || !strings.Contains(line, "w0:-") {
		t.Fatalf("unexpected line %q", line)
	}
	var nilMeter *SweepMeter
	nilMeter.CellStart(0, 0)
	nilMeter.CellDone(0, 0, nil)
	_ = nilMeter.Line()
}

func TestDumpOnFailureOnlyOnFailure(t *testing.T) {
	// Passing case: the cleanup must log nothing.
	ftb := &fakeTB{}
	DumpOnFailure(ftb, nil)
	ftb.runCleanups()
	if len(ftb.logs) != 0 {
		t.Fatalf("clean pass logged %v", ftb.logs)
	}
	// Failing case with a nil recorder: still nothing (no panic).
	ftb = &fakeTB{failed: true}
	DumpOnFailure(ftb, nil)
	ftb.runCleanups()
	if len(ftb.logs) != 0 {
		t.Fatalf("nil recorder logged %v", ftb.logs)
	}
}

type fakeTB struct {
	failed   bool
	logs     []string
	cleanups []func()
}

func (f *fakeTB) Helper()      {}
func (f *fakeTB) Failed() bool { return f.failed }
func (f *fakeTB) Logf(format string, args ...any) {
	f.logs = append(f.logs, format)
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

type writerFunc func(p []byte) (int, error)

func (w writerFunc) Write(p []byte) (int, error) { return w(p) }
