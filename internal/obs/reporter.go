package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Reporter prints a status line to w every interval on its own goroutine,
// pulling the text from line() — a Meter.Line or SweepMeter.Line in practice,
// but any concurrency-safe producer works. Stop flushes one final line, so
// even runs shorter than the interval report once.
type Reporter struct {
	w     io.Writer
	every time.Duration
	line  func() string

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	stopped bool
}

// NewReporter builds a reporter; every <= 0 defaults to one second. Call
// Start to begin printing.
func NewReporter(w io.Writer, every time.Duration, line func() string) *Reporter {
	if every <= 0 {
		every = time.Second
	}
	return &Reporter{w: w, every: every, line: line}
}

// Start launches the printing goroutine. Starting twice is a no-op.
func (r *Reporter) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil || r.stopped {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.run(r.stop, r.done)
}

func (r *Reporter) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(r.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			fmt.Fprintln(r.w, r.line())
		case <-stop:
			return
		}
	}
}

// Stop halts the goroutine, waits for it to exit, and prints one final line
// (the run's closing state). Idempotent; safe to call before Start.
func (r *Reporter) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	already := r.stopped
	r.stopped = true
	r.stop = nil
	r.mu.Unlock()
	if already {
		return
	}
	if stop != nil {
		close(stop)
		<-done
	}
	fmt.Fprintln(r.w, r.line())
}
