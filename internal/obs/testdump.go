package obs

import (
	"strings"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// TB is the slice of testing.TB that DumpOnFailure needs. Declaring it here
// keeps package testing (and its flag registration) out of the non-test
// binaries that import obs.
type TB interface {
	Helper()
	Failed() bool
	Logf(format string, args ...any)
	Cleanup(func())
}

// DumpOnFailure arranges for the flight recorder's ring to be logged through
// tb if — and only if — the test ends up failing, so every failure report
// carries the last events leading into it. Call it right after the recorder
// exists; nil recorders and empty rings log nothing.
func DumpOnFailure(tb TB, f *trace.Flight) {
	tb.Helper()
	tb.Cleanup(func() {
		if !tb.Failed() || f == nil || f.Len() == 0 {
			return
		}
		var b strings.Builder
		_ = f.Dump(&b)
		tb.Logf("flight recorder (last %d events):\n%s", f.Len(), b.String())
	})
}
