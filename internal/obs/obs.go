// Package obs is the live-observability layer: real-time progress meters for
// single runs and sweeps, a periodic stderr reporter, and a flight-recorder
// test helper. It sits OUTSIDE the determinism boundary — everything here
// reads the wall clock and is touched from more than one goroutine — so
// nothing in this package may ever feed a value back into the simulation.
// Meters tap the loop through the same chained PostEvent hook the invariant
// checker uses and publish through atomics; attaching one changes no
// simulated behaviour and no trace byte.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Meter is a lock-free progress tap on one simulation run. The sim goroutine
// writes through Attach's PostEvent hook and the flow callbacks; any other
// goroutine may call Snapshot or Line concurrently. The zero value is ready;
// a nil *Meter is a no-op on every method, so call sites need no guards.
type Meter struct {
	events     atomic.Uint64
	simNow     atomic.Int64
	flowsDone  atomic.Int64
	flowsTotal atomic.Int64
	wallStart  atomic.Int64 // UnixNano of the first Attach, 0 = never attached
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Attach chains loop's PostEvent hook (never clobbering an existing one, like
// the invariant checker) so every executed event bumps the meter. The first
// Attach starts the wall clock. Costs two atomic stores per event — only runs
// that asked for progress pay it.
func (m *Meter) Attach(loop *sim.Loop) {
	if m == nil || loop == nil {
		return
	}
	m.wallStart.CompareAndSwap(0, time.Now().UnixNano())
	prev := loop.PostEvent
	loop.PostEvent = func() {
		if prev != nil {
			prev()
		}
		m.events.Add(1)
		m.simNow.Store(int64(loop.Now()))
	}
}

// FlowStarted bumps the flow-arrival count.
func (m *Meter) FlowStarted() {
	if m != nil {
		m.flowsTotal.Add(1)
	}
}

// FlowDone bumps the flow-completion count.
func (m *Meter) FlowDone() {
	if m != nil {
		m.flowsDone.Add(1)
	}
}

// Snapshot is one consistent-enough read of a meter: each field is atomically
// read, and rates derived from it are cumulative since the first Attach.
type Snapshot struct {
	Events     uint64
	SimNow     sim.Time
	Wall       time.Duration
	FlowsDone  int64
	FlowsTotal int64
}

// Snapshot reads the meter. Safe from any goroutine; the zero Snapshot comes
// back from a nil or never-attached meter.
func (m *Meter) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Events:     m.events.Load(),
		SimNow:     sim.Time(m.simNow.Load()),
		FlowsDone:  m.flowsDone.Load(),
		FlowsTotal: m.flowsTotal.Load(),
	}
	if start := m.wallStart.Load(); start != 0 {
		s.Wall = time.Duration(time.Now().UnixNano() - start)
	}
	return s
}

// EventsPerSec is the cumulative event rate (0 before any wall time elapses).
func (s Snapshot) EventsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Events) / s.Wall.Seconds()
}

// SimWallRatio is how much faster than real time the simulation runs
// (virtual seconds per wall second; 0 before any wall time elapses).
func (s Snapshot) SimWallRatio() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return (float64(s.SimNow) / 1e9) / s.Wall.Seconds()
}

// Line renders the progress line a Reporter prints:
//
//	progress: 1.4M events (612k ev/s), sim 12.600s (x3150 wall), flows 37/52
//
// The flow counts are omitted while no flow has been registered.
func (m *Meter) Line() string {
	s := m.Snapshot()
	line := fmt.Sprintf("progress: %s events (%s ev/s), sim %.3fs (x%.0f wall)",
		siCount(s.Events), siCount(uint64(s.EventsPerSec())),
		float64(s.SimNow)/1e9, s.SimWallRatio())
	if s.FlowsTotal > 0 {
		line += fmt.Sprintf(", flows %d/%d", s.FlowsDone, s.FlowsTotal)
	}
	return line
}

// siCount renders a count with a k/M/G suffix, keeping progress lines short.
func siCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
