package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// SweepMeter tracks a parallel sweep: cells done/failed and which cell each
// worker is on right now. It implements the experiments.SweepObserver
// callback surface, so pass one to SweepWithObserver and hand its Line to a
// Reporter. All methods are safe from any goroutine; a nil *SweepMeter is a
// no-op everywhere.
type SweepMeter struct {
	total   int
	done    atomic.Int64
	failed  atomic.Int64
	current []atomic.Int64 // per-worker: cell index + 1, 0 = idle
}

// NewSweepMeter sizes a meter for total cells across workers goroutines
// (workers < 1 is treated as 1).
func NewSweepMeter(total, workers int) *SweepMeter {
	if workers < 1 {
		workers = 1
	}
	return &SweepMeter{total: total, current: make([]atomic.Int64, workers)}
}

// CellStart records that worker picked up cell.
func (s *SweepMeter) CellStart(worker, cell int) {
	if s == nil || worker < 0 || worker >= len(s.current) {
		return
	}
	s.current[worker].Store(int64(cell) + 1)
}

// CellDone records that worker finished cell (err non-nil = the run failed).
func (s *SweepMeter) CellDone(worker, cell int, err error) {
	if s == nil {
		return
	}
	s.done.Add(1)
	if err != nil {
		s.failed.Add(1)
	}
	if worker >= 0 && worker < len(s.current) {
		s.current[worker].CompareAndSwap(int64(cell)+1, 0)
	}
}

// Done returns how many cells have finished and how many of those failed.
func (s *SweepMeter) Done() (done, failed int) {
	if s == nil {
		return 0, 0
	}
	return int(s.done.Load()), int(s.failed.Load())
}

// Line renders the sweep status line a Reporter prints:
//
//	sweep: 7/24 cells done, 1 failed [w0:c9 w1:- w2:c11]
func (s *SweepMeter) Line() string {
	if s == nil {
		return "sweep: (no meter)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d/%d cells done", s.done.Load(), s.total)
	if f := s.failed.Load(); f > 0 {
		fmt.Fprintf(&b, ", %d failed", f)
	}
	b.WriteString(" [")
	for w := range s.current {
		if w > 0 {
			b.WriteByte(' ')
		}
		if c := s.current[w].Load(); c > 0 {
			fmt.Fprintf(&b, "w%d:c%d", w, c-1)
		} else {
			fmt.Fprintf(&b, "w%d:-", w)
		}
	}
	b.WriteByte(']')
	return b.String()
}
