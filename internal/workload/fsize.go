package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// FlowSizeCDF is an empirical flow-size distribution, the standard way
// datacenter traffic is characterized (the web-search distribution of the
// DCTCP paper, the data-mining distribution of VL2). It is a piecewise-linear
// CDF over flow sizes in bytes: the first point is an atom (all mass up to
// its fraction sits exactly at its size), and between points the inverse
// transform interpolates linearly in size.
type FlowSizeCDF struct {
	Name  string
	sizes []int64   // strictly increasing, bytes
	fracs []float64 // strictly increasing, fracs[len-1] == 1
}

// ParseFlowSizeCDF parses a distribution table: whitespace- or
// comma-separated "size:frac" pairs, where size is a byte count with an
// optional K/M/G (×1e3/1e6/1e9) suffix and frac is the cumulative
// probability. Sizes must be positive and strictly increasing, fractions
// strictly increasing (a repeated fraction is a zero-mass bin) and ending at
// exactly 1. Example:
//
//	"10K:0.15 30K:0.3 200K:0.6 1M:0.8 10M:1"
func ParseFlowSizeCDF(name, text string) (*FlowSizeCDF, error) {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ','
	})
	if len(fields) == 0 {
		return nil, fmt.Errorf("workload: empty flow-size table")
	}
	c := &FlowSizeCDF{Name: name}
	for _, f := range fields {
		sz, fr, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("workload: entry %q is not size:frac", f)
		}
		size, err := parseSize(sz)
		if err != nil {
			return nil, err
		}
		frac, err := strconv.ParseFloat(fr, 64)
		if err != nil || math.IsNaN(frac) || math.IsInf(frac, 0) {
			return nil, fmt.Errorf("workload: bad fraction %q", fr)
		}
		if n := len(c.sizes); n > 0 {
			if size <= c.sizes[n-1] {
				return nil, fmt.Errorf("workload: sizes not strictly increasing at %q", f)
			}
			if frac <= c.fracs[n-1] {
				return nil, fmt.Errorf("workload: zero-mass or non-monotone bin at %q", f)
			}
		} else if frac <= 0 {
			return nil, fmt.Errorf("workload: first fraction %v must be positive", frac)
		}
		if frac > 1 {
			return nil, fmt.Errorf("workload: fraction %v beyond 1", frac)
		}
		c.sizes = append(c.sizes, size)
		c.fracs = append(c.fracs, frac)
	}
	if last := c.fracs[len(c.fracs)-1]; last != 1 {
		return nil, fmt.Errorf("workload: CDF ends at %v, want 1", last)
	}
	return c, nil
}

// parseSize parses a positive byte count with an optional K/M/G suffix.
func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: bad size %q", s)
	}
	if n <= 0 || n > math.MaxInt64/mult {
		return 0, fmt.Errorf("workload: size %q out of range", s)
	}
	return n * mult, nil
}

// MustFlowSizeCDF parses a distribution table, panicking on error. For
// compile-time-constant tables only.
func MustFlowSizeCDF(name, text string) *FlowSizeCDF {
	c, err := ParseFlowSizeCDF(name, text)
	if err != nil {
		panic(err)
	}
	return c
}

// Sample draws one flow size by inverse-transform sampling from rng (pass
// the sim loop's RNG so traffic is seed-reproducible). It is total: any
// parsed table and any RNG output yields a size in [1, max].
func (c *FlowSizeCDF) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	if u <= c.fracs[0] {
		return c.sizes[0]
	}
	for i := 1; i < len(c.fracs); i++ {
		if u <= c.fracs[i] {
			lo, hi := c.sizes[i-1], c.sizes[i]
			f := (u - c.fracs[i-1]) / (c.fracs[i] - c.fracs[i-1])
			size := lo + int64(f*float64(hi-lo))
			if size < 1 {
				size = 1
			}
			if size > hi {
				size = hi
			}
			return size
		}
	}
	return c.sizes[len(c.sizes)-1]
}

// MeanSize returns the distribution's expected flow size in bytes: the first
// point's atom plus the trapezoid mass of each linear segment.
func (c *FlowSizeCDF) MeanSize() float64 {
	mean := float64(c.sizes[0]) * c.fracs[0]
	for i := 1; i < len(c.sizes); i++ {
		w := c.fracs[i] - c.fracs[i-1]
		mean += w * (float64(c.sizes[i-1]) + float64(c.sizes[i])) / 2
	}
	return mean
}

// MaxSize returns the largest flow size the distribution can produce.
func (c *FlowSizeCDF) MaxSize() int64 { return c.sizes[len(c.sizes)-1] }

// WebSearch returns the web-search flow-size distribution (after the DCTCP
// paper's production cluster measurement): mostly short query/response flows
// with a tail of multi-megabyte background flows.
func WebSearch() *FlowSizeCDF {
	return MustFlowSizeCDF("websearch",
		"6K:0.15 13K:0.2 19K:0.3 33K:0.4 53K:0.53 133K:0.6 667K:0.7 1333K:0.8 3333K:0.9 6667K:0.97 20M:1")
}

// DataMining returns the data-mining flow-size distribution (after VL2's
// measurement): the vast majority of flows are mice under 10 KB while nearly
// all bytes ride a few elephant flows.
func DataMining() *FlowSizeCDF {
	return MustFlowSizeCDF("datamining",
		"100:0.1 300:0.3 1K:0.5 2K:0.6 10K:0.8 100K:0.9 1M:0.95 10M:0.98 100M:1")
}

// ByName resolves a built-in distribution ("websearch" or "datamining").
func ByName(name string) (*FlowSizeCDF, error) {
	switch name {
	case "websearch":
		return WebSearch(), nil
	case "datamining":
		return DataMining(), nil
	}
	return nil, fmt.Errorf("workload: unknown flow-size distribution %q (want websearch or datamining)", name)
}

// Interarrival draws one open-loop Poisson interarrival gap: exponentially
// distributed with the given mean. The result is always positive so an
// arrival process can never stall at a zero gap.
func Interarrival(rng *rand.Rand, mean sim.Dur) sim.Dur {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	d := sim.Dur(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// MeanInterarrival returns the Poisson interarrival mean that loads a
// bottleneck of the given rate to the given utilization with flows drawn
// from c: gap = meanSize / (load × rate).
func MeanInterarrival(c *FlowSizeCDF, load float64, rate sim.Rate) sim.Dur {
	if load <= 0 || rate <= 0 {
		return sim.Second
	}
	bytesPerSec := load * float64(rate) / 8
	gap := c.MeanSize() / bytesPerSec * float64(sim.Second)
	if gap < 1 {
		gap = 1
	}
	return sim.Dur(gap)
}
