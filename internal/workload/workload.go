// Package workload provides the flowgrind-like traffic model of §5.1 (16
// synchronized long-lived bulk flows) and the analytic reference curves the
// paper plots against: "optimal" (an idealized TCP using the full rate of
// whichever TDN is active, idle during nights) and "packet only" (the packet
// rate continuously, with no reconfiguration blackouts).
package workload

import (
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/stats"
)

// OptimalBytes returns the bytes an idealized TCP delivers by time t: the
// active TDN's full bottleneck rate during each day, nothing during nights
// (§2.2's "optimal" curve).
func OptimalBytes(sch *rdcn.Schedule, tdns []rdcn.TDNParams, t sim.Time) int64 {
	var total int64
	var cur sim.Time
	for cur < t {
		tdn, ok, slotEnd := sch.At(cur)
		end := slotEnd
		if end > t {
			end = t
		}
		if ok {
			total += tdns[tdn].Rate.BytesIn(end.Sub(cur))
		}
		cur = end
	}
	return total
}

// PacketOnlyBytes returns the bytes delivered by an idealized TCP that uses
// only the packet network: a constant rate with no blackout periods.
func PacketOnlyBytes(rate sim.Rate, t sim.Time) int64 {
	return rate.BytesIn(sim.Dur(t))
}

// OptimalSeries samples OptimalBytes on [from, to] at the given step.
func OptimalSeries(sch *rdcn.Schedule, tdns []rdcn.TDNParams, from, to sim.Time, step sim.Dur) *stats.Series {
	s := &stats.Series{Label: "optimal"}
	for t := from; t <= to; t = t.Add(step) {
		s.Add(t, float64(OptimalBytes(sch, tdns, t)))
	}
	return s
}

// PacketOnlySeries samples PacketOnlyBytes on [from, to] at the given step.
func PacketOnlySeries(rate sim.Rate, from, to sim.Time, step sim.Dur) *stats.Series {
	s := &stats.Series{Label: "packet only"}
	for t := from; t <= to; t = t.Add(step) {
		s.Add(t, float64(PacketOnlyBytes(rate, t)))
	}
	return s
}

// OptimalGbps returns the long-run average rate of the optimal curve.
func OptimalGbps(sch *rdcn.Schedule, tdns []rdcn.TDNParams) float64 {
	week := sim.Time(sch.Week())
	return stats.ThroughputGbps(OptimalBytes(sch, tdns, week), sch.Week())
}
