package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

func TestParseFlowSizeCDF(t *testing.T) {
	c, err := ParseFlowSizeCDF("t", "10K:0.5, 1M:1")
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxSize() != 1e6 {
		t.Fatalf("MaxSize = %d, want 1e6", c.MaxSize())
	}
	// atom 10K*0.5 + trapezoid 0.5*(10K+1M)/2
	want := 10e3*0.5 + 0.5*(10e3+1e6)/2
	if got := c.MeanSize(); math.Abs(got-want) > 1 {
		t.Fatalf("MeanSize = %v, want %v", got, want)
	}
}

func TestParseFlowSizeCDFErrors(t *testing.T) {
	for _, bad := range []string{
		"",                    // empty
		"10K",                 // not size:frac
		"10K:0.5",             // does not reach 1
		"10K:0.5 5K:1",        // sizes not increasing
		"10K:0.5 20K:0.5",     // zero-mass bin
		"10K:0.6 20K:0.5",     // non-monotone
		"10K:0 20K:1",         // zero first mass
		"10K:1.5",             // frac beyond 1
		"0:1",                 // zero size
		"-5:1",                // negative size
		"x:1",                 // bad size
		"10K:x",               // bad frac
		"10K:NaN",             // NaN frac
		"9999999999G:1",       // size overflow
		"10K:0.5 1M:0.9 2M:2", // ends beyond 1
	} {
		if _, err := ParseFlowSizeCDF("t", bad); err == nil {
			t.Errorf("ParseFlowSizeCDF(%q) accepted", bad)
		}
	}
}

func TestSampleBoundsAndDeterminism(t *testing.T) {
	for _, c := range []*FlowSizeCDF{WebSearch(), DataMining()} {
		rng := rand.New(rand.NewSource(42))
		var sizes []int64
		for i := 0; i < 10000; i++ {
			s := c.Sample(rng)
			if s < 1 || s > c.MaxSize() {
				t.Fatalf("%s: sample %d out of [1,%d]", c.Name, s, c.MaxSize())
			}
			sizes = append(sizes, s)
		}
		// Same seed, same draw sequence.
		rng2 := rand.New(rand.NewSource(42))
		for i := 0; i < 10000; i++ {
			if s := c.Sample(rng2); s != sizes[i] {
				t.Fatalf("%s: draw %d = %d, want %d (non-deterministic)", c.Name, i, s, sizes[i])
			}
		}
		// The sample mean should land near the analytic mean.
		var sum float64
		for _, s := range sizes {
			sum += float64(s)
		}
		mean, want := sum/float64(len(sizes)), c.MeanSize()
		if math.Abs(mean-want)/want > 0.15 {
			t.Errorf("%s: sample mean %.0f vs analytic %.0f", c.Name, mean, want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"websearch", "datamining"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Fatalf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestInterarrival(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mean := 100 * sim.Microsecond
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		d := Interarrival(rng, mean)
		if d <= 0 {
			t.Fatalf("non-positive gap %v", d)
		}
		sum += float64(d)
	}
	if got := sum / n; math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("mean gap %.0f, want ~%d", got, mean)
	}
}

func TestMeanInterarrival(t *testing.T) {
	c := MustFlowSizeCDF("t", "1000:1") // every flow exactly 1000 bytes
	// Load 0.5 on 10 Gbps: 625 MB/s of offered bytes, 1000-byte flows
	// → 625k flows/s → 1.6 µs mean gap.
	gap := MeanInterarrival(c, 0.5, 10*sim.Gbps)
	if want := sim.Dur(1600); gap != want {
		t.Fatalf("gap = %d, want %d", gap, want)
	}
	if g := MeanInterarrival(c, 0, 10*sim.Gbps); g != sim.Second {
		t.Fatalf("zero-load gap = %v", g)
	}
}

// FuzzFlowSizeCDF feeds the parser arbitrary tables: malformed input must
// error, and every accepted table must yield a sampler that terminates and
// stays within its own bounds.
func FuzzFlowSizeCDF(f *testing.F) {
	f.Add("10K:0.15 30K:0.3 200K:0.6 1M:0.8 10M:1")
	f.Add("100:0.1 300:0.3 1K:0.5 2K:0.6 10K:0.8 100K:0.9 1M:0.95 10M:0.98 100M:1")
	f.Add("10K:0.5 20K:0.5")
	f.Add("1:1")
	f.Add(":::,,,")
	f.Add("10K:0.5 5K:1")
	f.Add("9223372036854775807:1")
	f.Add("-1:1")
	f.Add("1:0.0000000000000001 2:1")
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseFlowSizeCDF("fuzz", text)
		if err != nil {
			return
		}
		// Accepted tables must be well-formed enough to sample safely.
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 64; i++ {
			s := c.Sample(rng)
			if s < 1 || s > c.MaxSize() {
				t.Fatalf("sample %d outside [1,%d] for %q", s, c.MaxSize(), text)
			}
		}
		if m := c.MeanSize(); math.IsNaN(m) || m < 0 || m > float64(c.MaxSize()) {
			t.Fatalf("mean %v out of range for %q", m, text)
		}
		if strings.TrimSpace(text) == "" {
			t.Fatalf("empty table accepted: %q", text)
		}
	})
}
