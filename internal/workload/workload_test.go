package workload

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func params() (*rdcn.Schedule, []rdcn.TDNParams) {
	return rdcn.HybridWeek(6, 180*sim.Microsecond, 20*sim.Microsecond),
		[]rdcn.TDNParams{
			{Rate: 10 * sim.Gbps, Delay: 49 * sim.Microsecond},
			{Rate: 100 * sim.Gbps, Delay: 19 * sim.Microsecond},
		}
}

func TestOptimalBytesOneWeek(t *testing.T) {
	sch, tdns := params()
	week := sim.Time(sch.Week())
	got := OptimalBytes(sch, tdns, week)
	// 6 packet days at 10 Gbps * 180us + 1 optical day at 100 Gbps * 180us.
	want := int64(6*10e9/8*180e-6 + 100e9/8*180e-6)
	if math.Abs(float64(got-want)) > 100 {
		t.Fatalf("optimal bytes = %d, want %d", got, want)
	}
}

func TestOptimalBytesMidDay(t *testing.T) {
	sch, tdns := params()
	// 90us into the first (packet) day: half a day at 10 Gbps.
	got := OptimalBytes(sch, tdns, sim.Time(90*sim.Microsecond))
	want := int64(10e9 / 8 * 90e-6)
	if math.Abs(float64(got-want)) > 100 {
		t.Fatalf("mid-day bytes = %d, want %d", got, want)
	}
	// Night adds nothing: value at 200us equals value at 180us.
	if OptimalBytes(sch, tdns, sim.Time(200*sim.Microsecond)) != OptimalBytes(sch, tdns, sim.Time(180*sim.Microsecond)) {
		t.Fatal("night contributed bytes")
	}
}

func TestPacketOnlyContinuous(t *testing.T) {
	got := PacketOnlyBytes(10*sim.Gbps, sim.Time(1400*sim.Microsecond))
	want := int64(10e9 / 8 * 1400e-6)
	if got != want {
		t.Fatalf("packet-only = %d, want %d", got, want)
	}
}

// Property: optimal is monotone and bounded by the fastest TDN's line rate.
func TestOptimalMonotoneBounded(t *testing.T) {
	sch, tdns := params()
	f := func(a, b uint16) bool {
		t1 := sim.Time(a) * sim.Time(sim.Microsecond)
		t2 := sim.Time(b) * sim.Time(sim.Microsecond)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		b1 := OptimalBytes(sch, tdns, t1)
		b2 := OptimalBytes(sch, tdns, t2)
		if b2 < b1 {
			return false
		}
		cap := (100 * sim.Gbps).BytesIn(sim.Dur(t2)) + 1
		return b2 <= cap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalSeries(t *testing.T) {
	sch, tdns := params()
	s := OptimalSeries(sch, tdns, 0, sim.Time(1400*sim.Microsecond), 100*sim.Microsecond)
	if s.Len() != 15 {
		t.Fatalf("series len = %d", s.Len())
	}
	for i := 1; i < s.Len(); i++ {
		if s.V[i] < s.V[i-1] {
			t.Fatal("optimal series not monotone")
		}
	}
	p := PacketOnlySeries(10*sim.Gbps, 0, sim.Time(1400*sim.Microsecond), 100*sim.Microsecond)
	// Optimal ends above packet-only (extra optical capacity).
	if s.Last() <= p.Last() {
		t.Fatalf("optimal %v not above packet-only %v", s.Last(), p.Last())
	}
}

func TestOptimalGbps(t *testing.T) {
	sch, tdns := params()
	got := OptimalGbps(sch, tdns)
	// (6*10 + 1*100) * 180/200 / 7 = 160/7 * 0.9 = 20.57 Gbps.
	want := (6.0*10 + 100) * 0.9 / 7
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("optimal Gbps = %v, want %v", got, want)
	}
}
