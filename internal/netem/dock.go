package netem

import (
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Dock is the cross-shard propagation-delay stage: the sharded engine's
// replacement for a Drainer's delayLine when source and destination rack
// live on different simulation lanes (internal/sim's ShardedLoop).
//
// A frame leaving rack src's uplink toward rack dst is staged on the SOURCE
// lane with an absolute due time (src clock + propagation delay). The
// conservative lookahead guarantees due lands at or beyond the current
// window's end, so the frame cannot be owed to the destination before the
// next barrier; at that barrier the engine runs the dock's deferred flush —
// with every worker parked — moving the staged frames into the
// DESTINATION-owned due-ordered ring and arming a single timer on the
// destination lane. Ownership therefore alternates with the engine's phases
// (stage: src worker; ring: dst worker; handoff: coordinator), so no field
// is ever touched by two goroutines without a barrier between them.
//
// Delivery behaviour matches the delayLine byte for byte: frames whose due
// expires at one instant are handed downstream in (due, insertion) order,
// grouped into maximal consecutive same-TDN runs through OutBatch, or
// frame-at-a-time through Out when batching is disabled.
type Dock struct {
	src, dst int
	srcLoop  *sim.Loop
	dstLoop  *sim.Loop
	deferFn  func(src, dst int, fn func())

	// Out / OutBatch: destination-side sinks, same contract as Drainer's.
	Out      Sink
	OutBatch func(fs []Frame, tdn int)

	stage   []pending // src-owned: frames docked this window
	flushFn func()    // bound once; registered with deferFn on first stage

	ring   []pending // dst-owned: due-ordered, served by one timer
	head   int
	timer  sim.Timer
	fireFn func()
	out    []pending // scratch batch, reused across fires
	scr    []Frame   // OutBatch scratch, reused

	// Conservation ledger: armed is written by the source lane, delivered
	// by the destination lane; both are read only at barriers (per-shard
	// and global conservation checks), where every worker is parked.
	armed     uint64
	delivered uint64
}

// NewDock returns a dock carrying frames from rack src's lane to rack dst's
// lane. deferFn registers a barrier callback with the engine (ShardedLoop's
// Defer); the dock calls it at most once per window.
func NewDock(src, dst int, srcLoop, dstLoop *sim.Loop, deferFn func(src, dst int, fn func())) *Dock {
	k := &Dock{src: src, dst: dst, srcLoop: srcLoop, dstLoop: dstLoop, deferFn: deferFn}
	k.flushFn = k.flush
	k.fireFn = k.fire
	return k
}

// Add stages a frame due delay after the source lane's clock. Source lane
// only.
//
//lint:hotpath runs once per cross-shard frame
func (k *Dock) Add(f Frame, delay sim.Dur, tdn int) {
	if len(k.stage) == 0 {
		k.deferFn(k.src, k.dst, k.flushFn)
	}
	k.stage = append(k.stage, pending{f: f, due: k.srcLoop.Now().Add(delay), tdn: tdn})
	k.armed++
}

// flush moves the staged frames into the destination ring, keeping it
// due-ordered (stable: equal dues keep arrival order, and staged dues are
// nondecreasing, so the backward scan is almost always a no-op), then arms
// the destination timer at the head due. Runs on the coordinator at a
// barrier.
func (k *Dock) flush() {
	for _, p := range k.stage {
		k.ring = append(k.ring, p)
		for i := len(k.ring) - 1; i > k.head && k.ring[i-1].due > p.due; i-- {
			k.ring[i], k.ring[i-1] = k.ring[i-1], k.ring[i]
		}
	}
	k.stage = k.stage[:0]
	headDue := k.ring[k.head].due
	if k.timer.Active() {
		if k.timer.When() <= headDue {
			return
		}
		k.timer.Stop()
	}
	k.timer = k.dstLoop.At(headDue, k.fireFn)
}

// fire delivers every frame whose due has arrived, exactly like the
// delayLine: copied out first (so synchronous downstream sends cannot alias
// the ring), split into maximal same-TDN runs for OutBatch. Destination
// lane only.
//
//lint:hotpath runs once per distinct cross-shard delivery instant
func (k *Dock) fire() {
	now := k.dstLoop.Now()
	out := k.out[:0]
	for k.head < len(k.ring) && k.ring[k.head].due <= now {
		out = append(out, k.ring[k.head])
		k.head++
	}
	if k.head*2 >= len(k.ring) {
		k.ring = k.ring[:copy(k.ring, k.ring[k.head:])]
		k.head = 0
	}
	if k.head < len(k.ring) {
		k.timer = k.dstLoop.At(k.ring[k.head].due, k.fireFn)
	}
	k.out = out
	k.delivered += uint64(len(out))
	for i := 0; i < len(out); {
		j := i + 1
		for j < len(out) && out[j].tdn == out[i].tdn {
			j++
		}
		if k.OutBatch != nil {
			fs := k.scr[:0]
			for m := i; m < j; m++ {
				fs = append(fs, out[m].f)
			}
			k.scr = fs
			k.OutBatch(fs, out[i].tdn)
		} else {
			for m := i; m < j; m++ {
				k.Out(out[m].f)
			}
		}
		i = j
	}
}

// InFlight reports the number of frames the dock currently owns (staged,
// ringed, or awaiting their due). Barrier-only: it reads both lanes'
// counters.
func (k *Dock) InFlight() int { return int(k.armed - k.delivered) }

// Stats reports the conservation ledger: frames staged by the source lane
// and frames delivered by the destination lane.
func (k *Dock) Stats() (armed, delivered uint64) { return k.armed, k.delivered }
