package netem

import (
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

func testFrame(loop *sim.Loop, payload int) Frame {
	seg := &packet.Segment{
		Src: 1, Dst: 2, TTL: 64, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{Flags: packet.FlagACK, PayloadLen: payload},
	}
	return NewFrame(loop, seg)
}

func TestPipeSerialization(t *testing.T) {
	loop := sim.NewLoop(1)
	var arrivals []sim.Time
	p := &Pipe{Loop: loop, Rate: 10 * sim.Gbps, Delay: 5 * sim.Microsecond,
		Out: func(Frame) { arrivals = append(arrivals, loop.Now()) }}
	// Two 1250-byte frames: 1 us serialization each at 10 Gbps.
	f := testFrame(loop, 1250-40)
	if f.Len != 1250 {
		t.Fatalf("frame len = %d, want 1250", f.Len)
	}
	p.Send(f)
	p.Send(f)
	loop.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0] != sim.Time(6*sim.Microsecond) {
		t.Fatalf("first arrival at %v, want 6us", arrivals[0])
	}
	if arrivals[1] != sim.Time(7*sim.Microsecond) {
		t.Fatalf("second arrival at %v, want 7us (back-to-back serialization)", arrivals[1])
	}
}

func TestPipeFIFO(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []int
	p := &Pipe{Loop: loop, Rate: 1 * sim.Gbps, Out: func(f Frame) {
		var s packet.Segment
		if err := packet.Parse(f.Wire, &s); err != nil {
			t.Fatal(err)
		}
		got = append(got, int(s.TCP.Seq))
	}}
	for i := 0; i < 20; i++ {
		seg := &packet.Segment{Src: 1, Dst: 2, Proto: packet.ProtoTCP,
			TCP: packet.TCPHeader{Seq: uint32(i), Flags: packet.FlagACK}}
		p.Send(NewFrame(loop, seg))
	}
	loop.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestVOQDropTail(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 4, 0)
	f := testFrame(loop, 100)
	for i := 0; i < 6; i++ {
		ok := v.Enqueue(f)
		if ok != (i < 4) {
			t.Fatalf("enqueue %d ok=%v", i, ok)
		}
	}
	if v.Len() != 4 {
		t.Fatalf("len = %d", v.Len())
	}
	_, _, drops, _ := v.Stats()
	if drops != 2 {
		t.Fatalf("drops = %d", drops)
	}
	for i := 0; i < 4; i++ {
		if _, ok := v.Dequeue(); !ok {
			t.Fatalf("dequeue %d failed", i)
		}
	}
	if _, ok := v.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
}

func TestVOQECNMarking(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 16, 4)
	for i := 0; i < 8; i++ {
		v.Enqueue(testFrame(loop, 100))
	}
	marked := 0
	for {
		f, ok := v.Dequeue()
		if !ok {
			break
		}
		var s packet.Segment
		if err := packet.Parse(f.Wire, &s); err != nil {
			t.Fatalf("checksum broken after marking: %v", err)
		}
		if s.ECN == packet.ECNCE {
			marked++
		}
	}
	// Occupancy before enqueue reaches 4 on the 5th frame: frames 5..8 marked.
	if marked != 4 {
		t.Fatalf("marked = %d, want 4", marked)
	}
}

func TestMarkCCEChecksumProperty(t *testing.T) {
	f := func(src, dst uint32, seq uint32, ecn uint8) bool {
		loop := sim.NewLoop(1)
		seg := &packet.Segment{Src: src, Dst: dst, TTL: 64, Proto: packet.ProtoTCP,
			ECN: ecn & 0x03,
			TCP: packet.TCPHeader{Seq: seq, Flags: packet.FlagACK}}
		fr := NewFrame(loop, seg)
		fr.MarkCE()
		var got packet.Segment
		if err := packet.Parse(fr.Wire, &got); err != nil {
			return false
		}
		return got.ECN == packet.ECNCE && got.Src == src && got.Dst == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVOQResize(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 2, 0)
	f := testFrame(loop, 100)
	v.Enqueue(f)
	v.Enqueue(f)
	if v.Enqueue(f) {
		t.Fatal("over-capacity enqueue succeeded")
	}
	v.SetCap(50)
	for i := 0; i < 48; i++ {
		if !v.Enqueue(f) {
			t.Fatalf("enqueue %d failed after resize", i)
		}
	}
	if v.Enqueue(f) {
		t.Fatal("enqueue past resized cap succeeded")
	}
	// Shrinking below occupancy keeps existing frames.
	v.SetCap(4)
	if v.Len() != 50 {
		t.Fatalf("len = %d after shrink", v.Len())
	}
	if v.Enqueue(f) {
		t.Fatal("enqueue into shrunk queue succeeded")
	}
}

func TestVOQMonitor(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 8, 0)
	var samples []int
	v.Monitor = func(_ sim.Time, n int) { samples = append(samples, n) }
	f := testFrame(loop, 100)
	v.Enqueue(f)
	v.Enqueue(f)
	v.Dequeue()
	want := []int{1, 2, 1}
	if len(samples) != len(want) {
		t.Fatalf("samples = %v", samples)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples = %v, want %v", samples, want)
		}
	}
}

func TestVOQCompaction(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 1000, 0)
	f := testFrame(loop, 100)
	// Repeatedly cycle frames through to exercise the head-compaction path.
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			if !v.Enqueue(f) {
				t.Fatal("enqueue failed")
			}
		}
		for i := 0; i < 10; i++ {
			if _, ok := v.Dequeue(); !ok {
				t.Fatal("dequeue failed")
			}
		}
	}
	if v.Len() != 0 {
		t.Fatalf("len = %d", v.Len())
	}
	enq, deq, _, _ := v.Stats()
	if enq != 500 || deq != 500 {
		t.Fatalf("enq=%d deq=%d", enq, deq)
	}
}

func TestDrainerRespectsSchedule(t *testing.T) {
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 100, 0)
	active := false
	var arrivals []sim.Time
	d := &Drainer{
		Loop: loop, Q: v,
		Path: func() (Path, bool) {
			return Path{Rate: 10 * sim.Gbps, Delay: 10 * sim.Microsecond, TDN: 0}, active
		},
		Out: func(Frame) { arrivals = append(arrivals, loop.Now()) },
	}
	d.Attach()
	v.Enqueue(testFrame(loop, 1250-40)) // 1us serialization
	loop.RunUntil(sim.Time(100 * sim.Microsecond))
	if len(arrivals) != 0 {
		t.Fatal("frame drained while path inactive")
	}
	active = true
	d.Kick()
	loop.Run()
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if want := sim.Time(111 * sim.Microsecond); arrivals[0] != want {
		t.Fatalf("arrival at %v, want %v", arrivals[0], want)
	}
}

func TestDrainerRateSwitch(t *testing.T) {
	// Two frames; the path rate changes between them. Each frame should be
	// serialized at the rate in effect when its transmission starts.
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 100, 0)
	rate := 10 * sim.Gbps
	var arrivals []sim.Time
	d := &Drainer{
		Loop: loop, Q: v,
		Path: func() (Path, bool) { return Path{Rate: rate, Delay: 0}, true },
		Out:  func(Frame) { arrivals = append(arrivals, loop.Now()) },
	}
	d.Attach()
	f := testFrame(loop, 12500-40) // 10us at 10Gbps, 1us at 100Gbps
	v.Enqueue(f)
	v.Enqueue(f)
	loop.At(sim.Time(9500*sim.Nanosecond), func() { rate = 100 * sim.Gbps })
	loop.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0] != sim.Time(10*sim.Microsecond) {
		t.Fatalf("first arrival %v", arrivals[0])
	}
	if arrivals[1] != sim.Time(11*sim.Microsecond) {
		t.Fatalf("second arrival %v, want 11us (new rate)", arrivals[1])
	}
}

func TestDrainerDeliversInOrderAcrossDelayDrop(t *testing.T) {
	// A latency drop between frames can cause the later frame to arrive
	// before the earlier one (cross-TDN reordering). The drainer must allow
	// this: it models two different physical paths.
	loop := sim.NewLoop(1)
	v := NewVOQ(loop, 100, 0)
	delay := 50 * sim.Microsecond
	type arrival struct {
		seq uint32
		at  sim.Time
	}
	var arrivals []arrival
	d := &Drainer{
		Loop: loop, Q: v,
		Path: func() (Path, bool) { return Path{Rate: 100 * sim.Gbps, Delay: delay}, true },
		Out: func(f Frame) {
			var s packet.Segment
			if err := packet.Parse(f.Wire, &s); err != nil {
				t.Fatal(err)
			}
			arrivals = append(arrivals, arrival{s.TCP.Seq, loop.Now()})
		},
	}
	d.Attach()
	mk := func(seq uint32) Frame {
		return NewFrame(loop, &packet.Segment{Src: 1, Dst: 2, Proto: packet.ProtoTCP,
			TCP: packet.TCPHeader{Seq: seq, Flags: packet.FlagACK, PayloadLen: 100}})
	}
	v.Enqueue(mk(1))
	loop.At(sim.Time(2*sim.Microsecond), func() {
		delay = 1 * sim.Microsecond // path switches to the low-latency TDN
		v.Enqueue(mk(2))
	})
	loop.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	if arrivals[0].seq != 2 || arrivals[1].seq != 1 {
		t.Fatalf("expected cross-TDN reordering, got %+v", arrivals)
	}
}
