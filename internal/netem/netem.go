// Package netem provides the network-emulation building blocks the RDCN
// model is assembled from: host NIC pipes, ToR virtual output queues (VOQs)
// with drop-tail and ECN-marking behaviour, and schedule-driven drainers that
// serialize frames onto whichever time-division network is currently active.
//
// It plays the role of Etalon's Click pipeline in the paper's testbed.
package netem

import (
	"encoding/binary"
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Frame is a serialized packet in flight through the emulated network.
// Wire holds the serialized headers; Len is the full on-the-wire length
// (headers plus virtual payload) that links and queues charge for.
type Frame struct {
	Wire   []byte
	Len    int
	SentAt sim.Time
}

// BufPool is a loop-owned free list of frame wire buffers. It is NOT a
// sync.Pool: sync.Pool reuse depends on GC timing, which would make buffer
// identity (and any latent aliasing bug) irreproducible across runs. A plain
// LIFO slice owned by the single-threaded event loop recycles buffers in a
// schedule determined entirely by the event order, so two runs with the same
// seed recycle identically.
//
// A nil *BufPool is valid and degrades to plain allocation, so pooling can
// be switched off wholesale (e.g. for golden-trace A/B tests) without
// branching at every call site.
type BufPool struct {
	free  [][]byte
	block []byte // carve-out backing for fresh buffers, bufClass at a time

	gets, puts, misses uint64
}

// bufClass is the uniform minimum capacity of pooled buffers. Header lengths
// vary by a few tens of bytes (a SACK-bearing ACK outgrows a data header), and
// a pool holding mixed sizes keeps discarding the small ones on lookup — an
// allocation-churn treadmill where ACK and data buffers evict each other
// forever. Rounding every request up to one class makes any recycled buffer
// satisfy any request, so a warmed-up pool never allocates again.
const bufClass = 128

// Get returns a zero-length buffer with capacity at least capHint, reusing a
// recycled buffer when one fits. On a nil pool it simply allocates.
//
//lint:hotpath runs once per serialized frame
func (p *BufPool) Get(capHint int) []byte {
	if capHint < bufClass {
		capHint = bufClass
	}
	if p == nil {
		return allocBuf(capHint)
	}
	p.gets++
	for n := len(p.free); n > 0; n = len(p.free) {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if cap(b) >= capHint {
			return b[:0]
		}
		// Undersized stragglers (jumbo option stacks past bufClass, rare)
		// are discarded rather than left to clog the free list.
	}
	p.misses++
	if capHint == bufClass {
		// Carve class-sized buffers from a shared block: the pool's working
		// set ramps up in a few contiguous allocations (cache-friendly, cheap
		// on the GC) instead of one object per buffer.
		if len(p.block) < bufClass {
			p.refillBlock()
		}
		b := p.block[:0:bufClass]
		p.block = p.block[bufClass:]
		return b
	}
	return allocBuf(capHint)
}

// refillBlock restocks the carving block, 64 buffer classes at a time. This
// is Get's amortized cold path, kept in its own non-inlined function so the
// //lint:hotpath contract on Get holds: allocations are charged to the
// callee, and a steady-state (warmed-up) pool never comes here.
//
//go:noinline
func (p *BufPool) refillBlock() {
	p.block = make([]byte, 64*bufClass)
}

// allocBuf is the pool-miss fallback for nil pools and oversized requests
// (jumbo option stacks past bufClass, rare). Out-of-line for the same
// reason as refillBlock.
//
//go:noinline
func allocBuf(capHint int) []byte {
	return make([]byte, 0, capHint)
}

// Put recycles a buffer for a later Get. Nil pools and zero-capacity buffers
// are ignored, so Put is safe to call unconditionally on any frame's wire.
//
//lint:hotpath runs once per released frame
func (p *BufPool) Put(b []byte) {
	if p == nil || cap(b) == 0 {
		return
	}
	p.puts++
	p.free = append(p.free, b)
}

// Stats reports cumulative gets, puts and misses (Gets that had to allocate).
func (p *BufPool) Stats() (gets, puts, misses uint64) {
	if p == nil {
		return 0, 0, 0
	}
	return p.gets, p.puts, p.misses
}

// NewFrameIn serializes seg into a frame stamped at the current time, drawing
// the wire buffer from pool (which may be nil for plain allocation).
func NewFrameIn(loop *sim.Loop, pool *BufPool, seg *packet.Segment) Frame {
	return Frame{
		Wire:   seg.Serialize(pool.Get(seg.HeaderLen())),
		Len:    seg.WireLen(),
		SentAt: loop.Now(),
	}
}

// NewFrame serializes seg into a freshly allocated frame stamped at the
// current time.
func NewFrame(loop *sim.Loop, seg *packet.Segment) Frame {
	return NewFrameIn(loop, nil, seg)
}

// Release returns the frame's wire buffer to pool and clears the alias so a
// stale Frame copy cannot touch the recycled bytes. Nil-pool safe.
//
//lint:hotpath runs once per consumed frame
func (f *Frame) Release(pool *BufPool) {
	pool.Put(f.Wire)
	f.Wire = nil
}

// MarkCE sets the ECN CE codepoint on the frame's IP header in place,
// updating the header checksum incrementally (RFC 1624) the way a real
// switch would.
func (f Frame) MarkCE() {
	b := f.Wire
	if len(b) < 20 {
		return
	}
	old := binary.BigEndian.Uint16(b[0:2])
	b[1] |= packet.ECNCE
	new_ := binary.BigEndian.Uint16(b[0:2])
	if old == new_ {
		return
	}
	// RFC 1624 incremental update: HC' = ~(~HC + ~m + m').
	hc := binary.BigEndian.Uint16(b[10:12])
	sum := uint32(^hc) + uint32(^old) + uint32(new_)
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	binary.BigEndian.PutUint16(b[10:12], ^uint16(sum))
}

// Sink consumes frames that exit a network element.
type Sink func(Frame)

// pending is one frame waiting out its propagation delay in a delayLine.
type pending struct {
	f   Frame
	due sim.Time
	tdn int
}

// delayLine coalesces a link's propagation-delay stage. The legacy path arms
// one loop event per frame in flight, so the event heap holds an entry for
// every frame crossing the fabric; the delayLine instead keeps a due-ordered
// ring served by a single re-armed timer, shrinking the heap to one entry per
// link and handing every frame whose delay expires at the same instant
// downstream in one batch. Entries stay in (due, insertion) order: dues are
// nondecreasing while one path is active and only invert across a path change
// or an injected extra delay, so the backward scan in add is almost always a
// no-op and delivery order matches the legacy frame-at-a-time schedule.
type delayLine struct {
	loop *sim.Loop
	sink func(batch []pending)

	q      []pending
	head   int
	timer  sim.Timer
	fireFn func()
	out    []pending // scratch batch, reused across fires
}

func (dl *delayLine) init(loop *sim.Loop, sink func([]pending)) {
	dl.loop = loop
	dl.sink = sink
	dl.fireFn = dl.fire
}

func (dl *delayLine) len() int { return len(dl.q) - dl.head }

// add inserts a frame due delay from now, keeping the ring due-ordered
// (stable: equal dues keep insertion order) and the timer armed at the head
// due. The timer is only re-armed when the head due moves earlier.
//
//lint:hotpath runs once per frame entering the propagation-delay stage
func (dl *delayLine) add(f Frame, delay sim.Dur, tdn int) {
	due := dl.loop.Now().Add(delay)
	dl.q = append(dl.q, pending{f: f, due: due, tdn: tdn})
	for i := len(dl.q) - 1; i > dl.head && dl.q[i-1].due > due; i-- {
		dl.q[i], dl.q[i-1] = dl.q[i-1], dl.q[i]
	}
	headDue := dl.q[dl.head].due
	if dl.timer.Active() {
		if dl.timer.When() <= headDue {
			return
		}
		dl.timer.Stop()
	}
	dl.timer = dl.loop.At(headDue, dl.fireFn)
}

// fire copies every entry whose due has arrived into the scratch batch, in
// (due, insertion) order, re-arms for the next head, and hands the batch to
// the sink. Copying out first means downstream code that synchronously sends
// new frames can never alias the ring.
//
//lint:hotpath runs once per distinct delivery instant
func (dl *delayLine) fire() {
	now := dl.loop.Now()
	out := dl.out[:0]
	for dl.head < len(dl.q) && dl.q[dl.head].due <= now {
		out = append(out, dl.q[dl.head])
		dl.head++
	}
	if dl.head*2 >= len(dl.q) {
		dl.q = dl.q[:copy(dl.q, dl.q[dl.head:])]
		dl.head = 0
	}
	if dl.head < len(dl.q) {
		dl.timer = dl.loop.At(dl.q[dl.head].due, dl.fireFn)
	}
	// Drained ring slots and the scratch batch are NOT zeroed: the stale
	// Frame references they hold are dead weight until the next add/fire
	// overwrites them (bounded by the ring capacity), and skipping the
	// clears keeps GC write barriers out of the per-instant path.
	dl.out = out
	if len(out) > 0 {
		dl.sink(out)
	}
}

// FrameFate is a fault-injection verdict for one frame about to leave a
// Pipe: the frame may be dropped, have a byte corrupted in place (so the
// receiver's checksum validation discards it, as on a real NIC), and/or be
// delayed an extra Extra beyond the pipe's propagation delay (unequal extra
// delays reorder frames, since each delivery is scheduled independently).
type FrameFate struct {
	Drop    bool
	Corrupt bool
	Extra   sim.Dur
}

// CorruptWire flips bits of one wire byte in place, deterministically. The
// IP header checksum is left stale on purpose: that is exactly what a real
// bit error does, and the receiver's Parse rejects the frame.
func CorruptWire(b []byte) {
	if len(b) == 0 {
		return
	}
	b[len(b)/2] ^= 0xA5
}

// Pipe is a serializing link with an unbounded FIFO: the host NIC and its
// qdisc. Frames are serialized one at a time at Rate, then delivered to the
// sink Delay later. Pipe is never the statistics bottleneck in the paper's
// topology (hosts have fabric-rate NICs) but it shapes bursts realistically.
type Pipe struct {
	Loop  *sim.Loop
	Rate  sim.Rate
	Delay sim.Dur
	Out   Sink

	// Fault, when non-nil, is consulted once per frame when serialization
	// completes; the returned fate may drop, corrupt, or extra-delay the
	// frame (internal/fault installs this hook).
	Fault func(Frame) FrameFate

	// Pool, when non-nil, receives the wire buffers of frames the Fault
	// hook drops — the only point where a frame dies inside the pipe.
	Pool *BufPool

	// Coalesce routes the propagation-delay stage through a single re-armed
	// timer (see delayLine) instead of one loop event per frame. rdcn turns
	// this on unless Config.DisableBatchDelivery asks for the legacy path.
	Coalesce bool

	q    []Frame
	head int
	busy bool

	// Serialization is a one-at-a-time state machine: cur is the frame on
	// the wire, serializedFn the single bound callback that finishes it.
	// Propagation overlaps (several frames can be in the Delay stage at
	// once), so deliveries ride inflight cells from a free list, each with
	// its own callback bound exactly once.
	cur          Frame
	serializedFn func()
	deliveryFree []*pipeDelivery
	line         delayLine

	propagating int    // frames in the propagation-delay stage
	faultDrops  uint64 // frames killed by the Fault hook
}

// pipeDelivery carries one frame through the propagation-delay stage.
type pipeDelivery struct {
	p  *Pipe
	f  Frame
	fn func()
}

// Send enqueues a frame for transmission.
func (p *Pipe) Send(f Frame) {
	p.q = append(p.q, f)
	p.kick()
}

// QueueLen reports the number of frames waiting in the pipe (not counting
// one being serialized).
func (p *Pipe) QueueLen() int { return len(p.q) - p.head }

func (p *Pipe) kick() {
	if p.busy || p.QueueLen() == 0 {
		return
	}
	f := p.q[p.head]
	p.q[p.head] = Frame{}
	p.head++
	if p.head > 64 && p.head*2 >= len(p.q) {
		p.q = append(p.q[:0], p.q[p.head:]...)
		p.head = 0
	}
	p.busy = true
	p.cur = f
	if p.serializedFn == nil {
		p.serializedFn = p.serialized
	}
	p.Loop.After(p.Rate.TransmitTime(f.Len), p.serializedFn)
}

// serialized finishes the frame currently on the wire: it consults the fault
// hook, schedules the propagation-delay delivery, and starts the next frame.
// Delivery is scheduled before the next kick so event order (and therefore
// the trace) matches a frame-at-a-time reading of the pipeline.
func (p *Pipe) serialized() {
	f := p.cur
	p.cur = Frame{}
	p.busy = false
	delay := p.Delay
	drop := false
	if p.Fault != nil {
		fate := p.Fault(f)
		drop = fate.Drop
		if !drop && fate.Corrupt {
			CorruptWire(f.Wire)
		}
		delay += fate.Extra
	}
	if drop {
		p.faultDrops++
		f.Release(p.Pool)
	} else {
		p.propagating++
		if p.Coalesce {
			if p.line.fireFn == nil {
				p.line.init(p.Loop, p.lineSink)
			}
			p.line.add(f, delay, 0)
		} else {
			d := p.getDelivery()
			d.f = f
			p.Loop.After(delay, d.fn)
		}
	}
	p.kick()
}

// lineSink delivers a coalesced batch of frames whose propagation delay
// expired at one instant, in due order.
func (p *Pipe) lineSink(batch []pending) {
	for i := range batch {
		p.propagating--
		p.Out(batch[i].f)
	}
}

// InFlight reports every frame currently inside the pipe: queued, being
// serialized, or in the propagation-delay stage.
func (p *Pipe) InFlight() int {
	n := p.QueueLen() + p.propagating
	if p.busy {
		n++
	}
	return n
}

// FaultDrops reports the cumulative number of frames the Fault hook killed.
func (p *Pipe) FaultDrops() uint64 { return p.faultDrops }

func (p *Pipe) getDelivery() *pipeDelivery {
	if n := len(p.deliveryFree); n > 0 {
		d := p.deliveryFree[n-1]
		p.deliveryFree[n-1] = nil
		p.deliveryFree = p.deliveryFree[:n-1]
		return d
	}
	d := &pipeDelivery{p: p}
	d.fn = d.fire
	return d
}

// fire delivers the frame after its propagation delay and recycles the
// delivery cell.
//
//lint:hotpath runs once per delivered frame
func (d *pipeDelivery) fire() {
	p := d.p
	f := d.f
	d.f = Frame{}
	p.propagating--
	p.deliveryFree = append(p.deliveryFree, d)
	p.Out(f)
}

// VOQ is a ToR virtual output queue: drop-tail, fixed capacity in packets,
// optional ECN marking at a threshold (DCTCP-style), and runtime resizing
// (used by the retcpdyn variant, which enlarges the VOQ ahead of a circuit
// day).
type VOQ struct {
	Loop *sim.Loop

	cap        int
	markThresh int // mark CE when occupancy (pre-enqueue) >= threshold; 0 disables

	q    []Frame
	head int

	// Monitor, when non-nil, is called with the occupancy after every
	// enqueue, dequeue and drop. Used to produce the paper's VOQ-length
	// traces (Figs. 7b, 8b, 13, 14).
	Monitor func(t sim.Time, occupancy int)
	// OnEnqueue, when non-nil, is called when a frame is accepted; the
	// drainer uses it to wake up.
	OnEnqueue func()

	// Tracer, when non-nil, receives CatVOQ events (enqueue/dequeue/drop/
	// mark/resize); Label names this queue ("r0q1" = rack 0 → rack 1) and
	// TDN tags events with the destination rack's logical TDN (-1 = none).
	Tracer *trace.Tracer
	Label  string
	TDN    int

	// OccHist, when non-nil, records the post-enqueue occupancy (packets)
	// of every accepted frame — the distributional companion of the Monitor
	// point samples, at zero allocation per enqueue.
	OccHist *trace.Histogram

	enq, deq, drops, marks uint64
}

// NewVOQ returns a VOQ with the given packet capacity and ECN mark
// threshold (0 disables marking).
func NewVOQ(loop *sim.Loop, capacity, markThresh int) *VOQ {
	return &VOQ{
		Loop:       loop,
		cap:        capacity,
		markThresh: markThresh,
		TDN:        -1,
		q:          make([]Frame, 0, capacity),
	}
}

// emit reports a CatVOQ event labeled with the queue's name and TDN.
func (v *VOQ) emit(name string, a, b float64) {
	if v.Tracer.Enabled(trace.CatVOQ) {
		v.Tracer.Emit(trace.CatVOQ, int64(v.Loop.Now()), name, -1, v.TDN, a, b, v.Label)
	}
}

// Len reports current occupancy in packets.
func (v *VOQ) Len() int { return len(v.q) - v.head }

// Cap reports the current capacity.
func (v *VOQ) Cap() int { return v.cap }

// SetCap resizes the queue at runtime. Shrinking below the current
// occupancy does not drop queued frames; it only refuses new ones. Growing
// re-sizes the backing slice eagerly so the enlarged queue fills without any
// append re-growth on the hot path (the retcpdyn variant resizes ahead of
// every circuit day).
func (v *VOQ) SetCap(n int) {
	if n != v.cap {
		v.emit("voq_resize", float64(n), float64(v.cap))
	}
	v.cap = n
	if n > cap(v.q) {
		nq := make([]Frame, v.Len(), n)
		copy(nq, v.q[v.head:])
		v.q = nq
		v.head = 0
	}
}

// Stats reports cumulative enqueue, dequeue, drop and ECN-mark counts.
func (v *VOQ) Stats() (enq, deq, drops, marks uint64) {
	return v.enq, v.deq, v.drops, v.marks
}

// Enqueue offers a frame to the queue, returning false (and dropping it) if
// the queue is full.
//
//lint:hotpath runs once per frame entering a VOQ
func (v *VOQ) Enqueue(f Frame) bool {
	if v.Len() >= v.cap {
		v.drops++
		v.emit("voq_drop", float64(v.Len()), float64(v.drops))
		v.sample()
		return false
	}
	if v.markThresh > 0 && v.Len() >= v.markThresh {
		f.MarkCE()
		v.marks++
		v.emit("voq_mark", float64(v.Len()), float64(v.marks))
	}
	v.q = append(v.q, f)
	v.enq++
	v.OccHist.Record(int64(v.Len()))
	v.emit("voq_enq", float64(v.Len()), float64(v.cap))
	v.sample()
	if v.OnEnqueue != nil {
		v.OnEnqueue()
	}
	return true
}

// Dequeue removes and returns the frame at the head of the queue.
//
//lint:hotpath runs once per frame leaving a VOQ
func (v *VOQ) Dequeue() (Frame, bool) {
	if v.Len() == 0 {
		return Frame{}, false
	}
	f := v.q[v.head]
	v.q[v.head] = Frame{}
	v.head++
	if v.head > 64 && v.head*2 >= len(v.q) {
		v.q = append(v.q[:0], v.q[v.head:]...)
		v.head = 0
	}
	v.deq++
	v.emit("voq_deq", float64(v.Len()), float64(v.cap))
	v.sample()
	return f, true
}

func (v *VOQ) sample() {
	if v.Monitor != nil {
		v.Monitor(v.Loop.Now(), v.Len())
	}
}

// CheckInvariants validates the queue's internal accounting: head stays
// within the backing slice, occupancy is non-negative, and the cumulative
// enqueue/dequeue/drop counters reconcile with the current occupancy
// (enq - deq == Len). It returns a descriptive error on the first violation.
func (v *VOQ) CheckInvariants() error {
	if v.head < 0 || v.head > len(v.q) {
		return fmt.Errorf("netem: voq %s head %d outside backing slice [0,%d]", v.Label, v.head, len(v.q))
	}
	if n := v.Len(); n < 0 {
		return fmt.Errorf("netem: voq %s negative occupancy %d", v.Label, n)
	}
	if v.deq > v.enq {
		return fmt.Errorf("netem: voq %s dequeued %d > enqueued %d", v.Label, v.deq, v.enq)
	}
	if got, want := uint64(v.Len()), v.enq-v.deq; got != want {
		return fmt.Errorf("netem: voq %s occupancy %d != enq-deq %d", v.Label, got, want)
	}
	return nil
}

// Path describes the network a drainer is currently serving: the bottleneck
// rate and the one-way propagation delay of the active TDN.
type Path struct {
	Rate  sim.Rate
	Delay sim.Dur
	TDN   int
}

// PathFunc reports the currently active path. ok is false during a night
// (reconfiguration blackout), when nothing may be sent.
type PathFunc func() (p Path, ok bool)

// Drainer serializes frames from a VOQ onto the currently active path. It is
// the ToR's uplink transmitter: one frame at a time, at the active TDN's
// rate, delivered to the sink after the TDN's propagation delay. When the
// schedule blacks out the path the drainer idles until Kick is called.
type Drainer struct {
	Loop *sim.Loop
	Q    *VOQ
	Path PathFunc
	Out  Sink

	// OutBatch, when non-nil and Coalesce is set, receives every frame whose
	// propagation delay expired at the same instant and that crossed the
	// same TDN, in delivery order, in one call — the batched alternative to
	// the per-frame Out sink. Frames are grouped into maximal consecutive
	// same-TDN runs, so a batch never mixes networks and never reorders
	// relative to the frame-at-a-time schedule.
	OutBatch func(fs []Frame, tdn int)

	// Coalesce routes the propagation-delay stage through a single re-armed
	// timer (see delayLine) instead of one loop event per frame.
	Coalesce bool

	// Dock, when non-nil, replaces the propagation-delay stage entirely:
	// the destination ToR lives on a different simulation lane (sharded
	// engine), so finished frames are staged in the cross-shard dock
	// instead of a same-loop timer. The dock carries the in-flight ledger
	// for this stage (see Dock.InFlight).
	Dock *Dock

	busy bool

	// Same state-machine shape as Pipe: one frame serializes at a time
	// (cur, curDelay, one bound serializedFn), while propagation-delay
	// deliveries overlap on free-listed cells (legacy) or in the delayLine.
	cur          Frame
	curDelay     sim.Dur
	curTDN       int
	serializedFn func()
	deliveryFree []*drainDelivery
	line         delayLine
	batchScratch []Frame

	propagating int // frames in the propagation-delay stage
}

// drainDelivery carries one frame through the propagation-delay stage.
type drainDelivery struct {
	d  *Drainer
	f  Frame
	fn func()
}

// Attach wires the drainer to its queue's enqueue notification and starts
// draining if frames are already waiting.
func (d *Drainer) Attach() {
	d.Q.OnEnqueue = d.Kick
	d.Kick()
}

// Kick attempts to (re)start draining. Call whenever the path may have
// become active, e.g. at every schedule transition.
func (d *Drainer) Kick() {
	if d.busy {
		return
	}
	path, ok := d.Path()
	if !ok {
		return
	}
	f, ok := d.Q.Dequeue()
	if !ok {
		return
	}
	d.busy = true
	d.cur = f
	d.curDelay = path.Delay
	d.curTDN = path.TDN
	if d.serializedFn == nil {
		d.serializedFn = d.serialized
	}
	d.Loop.After(path.Rate.TransmitTime(f.Len), d.serializedFn)
}

// serialized finishes the frame on the wire: delivery is scheduled before
// the next Kick so event order matches a frame-at-a-time reading.
func (d *Drainer) serialized() {
	f := d.cur
	d.cur = Frame{}
	d.busy = false
	if d.Dock != nil {
		// Cross-shard: the dock owns the frame (and its ledger) from here.
		d.Dock.Add(f, d.curDelay, d.curTDN)
		d.Kick()
		return
	}
	d.propagating++
	if d.Coalesce {
		if d.line.fireFn == nil {
			d.line.init(d.Loop, d.lineSink)
		}
		d.line.add(f, d.curDelay, d.curTDN)
	} else {
		dd := d.getDelivery()
		dd.f = f
		d.Loop.After(d.curDelay, dd.fn)
	}
	d.Kick()
}

// lineSink hands a coalesced delivery batch downstream: maximal consecutive
// same-TDN runs go to OutBatch in one call each (runs are never merged across
// an intervening frame, so due order is preserved exactly), or frame-by-frame
// to Out when no batch sink is wired.
func (d *Drainer) lineSink(batch []pending) {
	for i := 0; i < len(batch); {
		j := i + 1
		for j < len(batch) && batch[j].tdn == batch[i].tdn {
			j++
		}
		d.propagating -= j - i
		if d.OutBatch != nil {
			fs := d.batchScratch[:0]
			for k := i; k < j; k++ {
				fs = append(fs, batch[k].f)
			}
			d.batchScratch = fs
			d.OutBatch(fs, batch[i].tdn)
		} else {
			for k := i; k < j; k++ {
				d.Out(batch[k].f)
			}
		}
		i = j
	}
}

// InFlight reports every frame currently owned by the drainer: being
// serialized or in the propagation-delay stage (queued frames belong to the
// VOQ). With a cross-shard dock attached, the propagation stage's ledger
// lives in the dock; call only at barriers then.
func (d *Drainer) InFlight() int {
	n := d.propagating
	if d.Dock != nil {
		n += d.Dock.InFlight()
	}
	if d.busy {
		n++
	}
	return n
}

func (d *Drainer) getDelivery() *drainDelivery {
	if n := len(d.deliveryFree); n > 0 {
		dd := d.deliveryFree[n-1]
		d.deliveryFree[n-1] = nil
		d.deliveryFree = d.deliveryFree[:n-1]
		return dd
	}
	dd := &drainDelivery{d: d}
	dd.fn = dd.fire
	return dd
}

// fire delivers the frame at the end of serialization and recycles the
// delivery cell.
//
//lint:hotpath runs once per drained frame
func (dd *drainDelivery) fire() {
	d := dd.d
	f := dd.f
	dd.f = Frame{}
	d.propagating--
	d.deliveryFree = append(d.deliveryFree, dd)
	d.Out(f)
}

// Busy reports whether a frame is currently being serialized.
func (d *Drainer) Busy() bool { return d.busy }
