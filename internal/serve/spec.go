package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/workload"
)

// Spec is the JSON scenario specification a client submits: the
// experiments-package config shapes (RunConfig / WorkloadConfig) flattened
// into wire-friendly scalars. Zero fields take the service defaults below —
// deliberately smaller than the library defaults, so an empty spec answers
// in well under a second.
//
// Because runs are fully deterministic, a normalized Spec *is* the result:
// two specs that normalize identically always produce byte-identical runs,
// which is what makes the server's result cache and single-flight
// deduplication sound. DeadlineMS is the one field excluded from that
// identity — it bounds how long the service will wait, not what the run
// computes.
type Spec struct {
	// Kind selects the experiment shape: "run" (long-lived §5.1 flows,
	// default) or "workload" (open-loop flow arrivals with FCT accounting).
	Kind Kind `json:"kind,omitempty"`
	// Variant is the transport under test (default "tdtcp").
	Variant string `json:"variant,omitempty"`
	// Flows is the host-pair count for kind=run (default 4).
	Flows int `json:"flows,omitempty"`
	// Racks is the ToR count: 0/2 = the paper's two-rack hybrid for
	// kind=run; kind=workload defaults to a 4-rack rotor.
	Racks int `json:"racks,omitempty"`
	// Hosts is the per-rack host count for kind=workload (default 2).
	Hosts int `json:"hosts,omitempty"`
	// WarmupWeeks/MeasureWeeks size the run (defaults 1 and 2).
	WarmupWeeks  int `json:"warmup_weeks,omitempty"`
	MeasureWeeks int `json:"measure_weeks,omitempty"`
	// Seed is the simulation seed (default 1). Part of the cache key: the
	// same normalized spec with a different seed is a different run.
	Seed int64 `json:"seed,omitempty"`
	// Schedule optionally overrides the optical schedule with the compact
	// syntax, e.g. "6x(0:180us,-:20us),1:180us,-:20us" (kind=run only).
	Schedule string `json:"schedule,omitempty"`
	// Workload names the flow-size distribution for kind=workload
	// ("websearch", default, or "datamining").
	Workload string `json:"workload,omitempty"`
	// Load is the offered load fraction for kind=workload (default 0.3).
	Load float64 `json:"load,omitempty"`
	// MaxFlows caps kind=workload arrivals (default 256).
	MaxFlows int `json:"max_flows,omitempty"`
	// Fault optionally injects a fault plan, e.g. "nloss=0.1,drop=0.01";
	// FaultSeed seeds it independently of Seed (default 1).
	Fault     string `json:"fault,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// Invariants turns on the post-event invariant checker.
	Invariants bool `json:"invariants,omitempty"`
	// DeadlineMS caps the job's wall-clock run time in milliseconds; zero
	// uses the server's default deadline. Excluded from the cache key.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Kind is an experiment shape. A defined type so switches over it are
// checkable by tdlint's exhaustive analysis.
type Kind string

// Spec kinds.
const (
	KindRun      Kind = "run"
	KindWorkload Kind = "workload"
)

// runVariants and workloadVariants are the transports each kind accepts
// (workload runs reject the two-rack-only constructs up front).
var (
	runVariants = map[string]bool{"tdtcp": true, "cubic": true, "dctcp": true,
		"reno": true, "retcp": true, "retcpdyn": true, "mptcp2f": true}
	workloadVariants = map[string]bool{"tdtcp": true, "cubic": true, "dctcp": true, "reno": true}
)

// Normalize fills service defaults and validates everything checkable
// without running: kind, variant, distribution name, schedule and fault-plan
// syntax, and numeric sanity. It returns a new Spec; the receiver is not
// modified. Submitting a spec that fails Normalize is a client error (HTTP
// 400), never a job.
func (s *Spec) Normalize() (*Spec, error) {
	n := *s
	if n.Kind == "" {
		n.Kind = KindRun
	}
	if n.Variant == "" {
		n.Variant = string(experiments.TDTCP)
	}
	switch n.Kind {
	case KindRun:
		if !runVariants[n.Variant] {
			return nil, fmt.Errorf("serve: unknown run variant %q", n.Variant)
		}
		if n.Flows == 0 {
			n.Flows = 4
		}
		if n.Hosts != 0 {
			return nil, fmt.Errorf("serve: hosts applies only to kind=workload")
		}
		if n.Racks > 2 {
			switch n.Variant {
			case "retcp", "retcpdyn", "mptcp2f":
				return nil, fmt.Errorf("serve: variant %q supports only the two-rack hybrid", n.Variant)
			}
			if n.Schedule != "" {
				return nil, fmt.Errorf("serve: schedule overrides apply only to the two-rack hybrid (racks <= 2)")
			}
		}
		if n.Workload != "" || n.Load != 0 || n.MaxFlows != 0 {
			return nil, fmt.Errorf("serve: workload/load/max_flows apply only to kind=workload")
		}
	case KindWorkload:
		if !workloadVariants[n.Variant] {
			return nil, fmt.Errorf("serve: variant %q is not supported by kind=workload", n.Variant)
		}
		if n.Racks == 0 {
			n.Racks = 4
		}
		if n.Racks < 3 {
			return nil, fmt.Errorf("serve: kind=workload needs racks >= 3, got %d", n.Racks)
		}
		if n.Hosts == 0 {
			n.Hosts = 2
		}
		if n.Workload == "" {
			n.Workload = "websearch"
		}
		if _, err := workload.ByName(n.Workload); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if n.Load == 0 {
			n.Load = 0.3
		}
		if n.Load < 0 || n.Load > 1 {
			return nil, fmt.Errorf("serve: load %v outside (0, 1]", n.Load)
		}
		if n.MaxFlows == 0 {
			n.MaxFlows = 256
		}
		if n.Schedule != "" {
			return nil, fmt.Errorf("serve: schedule overrides apply only to kind=run (workload scenarios derive their rotor schedule from racks)")
		}
		if n.Flows != 0 {
			return nil, fmt.Errorf("serve: flows applies only to kind=run; size workloads with hosts/load/max_flows")
		}
	default:
		return nil, fmt.Errorf("serve: unknown kind %q (want %q or %q)", n.Kind, KindRun, KindWorkload)
	}
	if n.Flows < 0 || n.Racks < 0 || n.Hosts < 0 || n.WarmupWeeks < 0 ||
		n.MeasureWeeks < 0 || n.MaxFlows < 0 || n.DeadlineMS < 0 {
		return nil, fmt.Errorf("serve: negative sizes in spec")
	}
	if n.WarmupWeeks == 0 {
		n.WarmupWeeks = 1
	}
	if n.MeasureWeeks == 0 {
		n.MeasureWeeks = 2
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Schedule != "" {
		if _, err := rdcn.ParseSchedule(n.Schedule); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if n.Fault != "" {
		if _, err := fault.Parse(n.Fault); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	if n.FaultSeed == 0 {
		n.FaultSeed = 1
	}
	return &n, nil
}

// Key returns the normalized spec's cache identity: the hex SHA-256 of its
// canonical JSON encoding with the deadline zeroed. Struct-field order fixes
// the encoding, so equal normalized specs always hash equal. The seed is
// part of the hashed spec, making the key the paper-determinism cache key
// (canonical config hash, seed).
func (s *Spec) Key() string {
	c := *s
	c.DeadlineMS = 0
	b, err := json.Marshal(&c)
	if err != nil {
		// A Spec is plain scalars; Marshal cannot fail. Keep the error path
		// total anyway: an unhashable spec must never alias another's cache
		// entry.
		return fmt.Sprintf("unhashable:%p", s)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Deadline returns the job's wall-clock budget, falling back to def.
func (s *Spec) Deadline(def time.Duration) time.Duration {
	if s.DeadlineMS > 0 {
		return time.Duration(s.DeadlineMS) * time.Millisecond
	}
	return def
}

// runConfig assembles the experiments.RunConfig for a normalized kind=run
// spec. Parse errors cannot occur: Normalize already validated the syntax.
func (s *Spec) runConfig() experiments.RunConfig {
	cfg := experiments.RunConfig{
		Variant:      experiments.Variant(s.Variant),
		Flows:        s.Flows,
		WarmupWeeks:  s.WarmupWeeks,
		MeasureWeeks: s.MeasureWeeks,
		Seed:         s.Seed,
		Invariants:   s.Invariants,
	}
	if s.Racks > 2 {
		cfg.Scenario = experiments.MultiRack(s.Racks)
	} else if s.Schedule != "" {
		cfg.Scenario = experiments.Hybrid()
		cfg.Scenario.Schedule, _ = rdcn.ParseSchedule(s.Schedule)
	}
	if s.Fault != "" {
		plan, _ := fault.Parse(s.Fault)
		cfg.Fault = &plan
		cfg.FaultSeed = s.FaultSeed
	}
	return cfg
}

// workloadConfig assembles the experiments.WorkloadConfig for a normalized
// kind=workload spec.
func (s *Spec) workloadConfig() experiments.WorkloadConfig {
	dist, _ := workload.ByName(s.Workload)
	return experiments.WorkloadConfig{
		Variant:      experiments.Variant(s.Variant),
		Scenario:     experiments.MultiRack(s.Racks),
		Dist:         dist,
		Load:         s.Load,
		Hosts:        s.Hosts,
		WarmupWeeks:  s.WarmupWeeks,
		MeasureWeeks: s.MeasureWeeks,
		Seed:         s.Seed,
		MaxFlows:     s.MaxFlows,
	}
}
