package serve

import (
	"bytes"
	"encoding/json"

	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Request is what the worker pool hands a Runner: the normalized spec plus
// the server-side plumbing for the run. Cancelled is the cooperative stop
// seam (deadline or client cancel or drain); Flight is the per-job flight
// recorder whose contents are snapshotted into the job result if the run
// panics.
type Request struct {
	Spec *Spec
	// Cancelled is polled between simulation events (every StopEvery); a
	// Runner must abandon the run promptly once it returns true.
	Cancelled func() bool
	StopEvery int
	// Flight is the job's private flight recorder. Runners should wire it
	// into the run so a panic snapshot has the last events in hand.
	Flight *trace.Flight
}

// Outcome is the durable, JSON-ready result of one successful run. It is
// what the cache stores and the result endpoint returns, so it holds plain
// values only — no handles into live simulation state.
type Outcome struct {
	Kind        Kind    `json:"kind"`
	Variant     string  `json:"variant"`
	GoodputGbps float64 `json:"goodput_gbps"`
	// OptimalGbps/PacketOnlyGbps are the analytic references (kind=run only).
	OptimalGbps    float64 `json:"optimal_gbps,omitempty"`
	PacketOnlyGbps float64 `json:"packet_only_gbps,omitempty"`
	// Retransmits aggregates sender retransmissions (kind=run only).
	Retransmits uint64 `json:"retransmits,omitempty"`
	// TDTCPSwitches counts per-TDN state swaps (kind=run, tdtcp only).
	TDTCPSwitches uint64 `json:"tdtcp_switches,omitempty"`
	// FlowsStarted/FlowsCompleted are the open-loop workload ledger
	// (kind=workload only).
	FlowsStarted   int   `json:"flows_started,omitempty"`
	FlowsCompleted int   `json:"flows_completed,omitempty"`
	BytesOffered   int64 `json:"bytes_offered,omitempty"`
	// MedianFCTUs is the median flow completion time in microseconds over
	// the measurement window (kind=workload only; 0 when no flow completed).
	MedianFCTUs float64 `json:"median_fct_us,omitempty"`
	// InvariantChecks/InvariantViolations report the runtime checker when
	// the spec asked for it.
	InvariantChecks     uint64 `json:"invariant_checks,omitempty"`
	InvariantViolations int    `json:"invariant_violations,omitempty"`
	// Metrics is the run's full trace.Registry dump (counters, gauges,
	// histogram summaries), verbatim JSON.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Runner executes one normalized spec. The default is DefaultRunner, which
// drives the real experiments package; tests substitute stubs to exercise
// the pool's failure machinery (panics, transient errors, slow jobs) without
// burning simulation time.
type Runner func(req *Request) (*Outcome, error)

// registryJSON dumps a registry as canonical JSON bytes.
func registryJSON(m *trace.Registry) json.RawMessage {
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		return nil
	}
	return json.RawMessage(buf.Bytes())
}

// DefaultRunner runs the spec through experiments.Run / RunWorkload with the
// request's cancellation seam and flight recorder wired in. The run itself
// is fully deterministic — the seam and recorder sit outside the determinism
// boundary — which is what entitles the server to cache its Outcome by spec
// key.
func DefaultRunner(req *Request) (*Outcome, error) {
	metrics := trace.NewRegistry()
	switch req.Spec.Kind {
	case KindWorkload:
		cfg := req.Spec.workloadConfig()
		cfg.Metrics = metrics
		cfg.Flight = req.Flight
		cfg.Stop = req.Cancelled
		cfg.StopEvery = req.StopEvery
		res, err := experiments.RunWorkload(cfg)
		if err != nil {
			return nil, err
		}
		out := &Outcome{
			Kind:           KindWorkload,
			Variant:        string(res.Variant),
			GoodputGbps:    res.GoodputGbps,
			FlowsStarted:   res.FlowsStarted,
			FlowsCompleted: res.FlowsCompleted,
			BytesOffered:   res.BytesOffered,
			Metrics:        registryJSON(metrics),
		}
		if fct := res.FCT.CDF("all"); fct.N() > 0 {
			out.MedianFCTUs = fct.Percentile(50)
		}
		return out, nil
	default: // KindRun — Normalize admits nothing else
		cfg := req.Spec.runConfig()
		cfg.Metrics = metrics
		cfg.Flight = req.Flight
		cfg.Stop = req.Cancelled
		cfg.StopEvery = req.StopEvery
		res, err := experiments.Run(cfg)
		if err != nil {
			return nil, err
		}
		return &Outcome{
			Kind:                KindRun,
			Variant:             string(res.Variant),
			GoodputGbps:         res.GoodputGbps,
			OptimalGbps:         res.OptimalGbps,
			PacketOnlyGbps:      res.PacketOnlyGbps,
			Retransmits:         uint64(res.Sender.Retransmits),
			TDTCPSwitches:       res.TDTCPSwitches,
			InvariantChecks:     res.InvariantChecks,
			InvariantViolations: len(res.Violations),
			Metrics:             registryJSON(metrics),
		}, nil
	}
}
