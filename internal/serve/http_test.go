package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// httpServer spins up the full HTTP surface over a stub-backed Server.
func httpServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(func() {
		ts.Close()
		_ = s.Shutdown(10 * time.Second)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if len(raw) > 0 && raw[0] == '{' {
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("bad JSON from %s %s: %v\n%s", method, url, err, raw)
		}
	}
	return resp.StatusCode, m
}

func TestHTTPHealthAndReady(t *testing.T) {
	s, ts := httpServer(t, Config{Runner: okRunner})
	if code, m := doJSON(t, "GET", ts.URL+"/healthz", ""); code != 200 || m["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, m)
	}
	if code, m := doJSON(t, "GET", ts.URL+"/readyz", ""); code != 200 || m["status"] != "ready" {
		t.Fatalf("readyz: %d %v", code, m)
	}
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if code, m := doJSON(t, "GET", ts.URL+"/readyz", ""); code != 503 || m["status"] != "draining" {
		t.Fatalf("draining readyz: %d %v", code, m)
	}
	// Liveness stays green while draining: the process still serves.
	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", ""); code != 200 {
		t.Fatalf("healthz while draining: %d", code)
	}
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, ts := httpServer(t, Config{Runner: okRunner})

	code, m := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 42}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, m)
	}
	if m["disposition"] != DispAccepted {
		t.Fatalf("disposition = %v", m["disposition"])
	}
	job := m["job"].(map[string]any)
	id := job["id"].(string)

	code, m = doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result?wait=10s", "")
	if code != http.StatusOK || m["state"] != string(StateDone) {
		t.Fatalf("result: %d %v", code, m)
	}
	out := m["outcome"].(map[string]any)
	if out["goodput_gbps"].(float64) != 42 {
		t.Fatalf("outcome: %v", out)
	}

	// Identical spec now comes back as a 200 cache hit with the result inline.
	code, m = doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 42}`)
	if code != http.StatusOK || m["disposition"] != DispCacheHit {
		t.Fatalf("cache-hit submit: %d %v", code, m)
	}
	if m["job"].(map[string]any)["outcome"] == nil {
		t.Fatal("cache-hit reply did not inline the outcome")
	}

	// Status endpoint and listing both know the job.
	if code, m = doJSON(t, "GET", ts.URL+"/jobs/"+id, ""); code != 200 || m["state"] != string(StateDone) {
		t.Fatalf("status: %d %v", code, m)
	}
	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []map[string]any
	if err := json.Unmarshal(raw, &list); err != nil || len(list) != 1 {
		t.Fatalf("list: err=%v n=%d", err, len(list))
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := httpServer(t, Config{Runner: okRunner})
	for _, body := range []string{
		`{not json`,
		`{"kind": "nope"}`,
		`{"unknown_field": 1}`,
	} {
		if code, _ := doJSON(t, "POST", ts.URL+"/jobs", body); code != http.StatusBadRequest {
			t.Errorf("submit %q: code %d, want 400", body, code)
		}
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/j-999999", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job status: %d, want 404", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs/j-999999/cancel", ""); code != http.StatusNotFound {
		t.Fatalf("unknown job cancel: %d, want 404", code)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s, ts := httpServer(t, Config{Workers: 1, QueueDepth: 1, Runner: gateRunner(gate)})

	// Fill the worker, then the queue slot; nudge until the first job is
	// actually running so the buffer slot is free for the second.
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 1}`); code != 202 {
		t.Fatalf("first submit: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Jobs()) == 0 || s.Jobs()[len(s.Jobs())-1].State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 2}`); code != 202 {
		t.Fatalf("second submit: %d", code)
	}
	code, m := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 3}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d %v, want 429", code, m)
	}
}

func TestHTTPCancelAndConflict(t *testing.T) {
	_, ts := httpServer(t, Config{Workers: 1, Runner: slowRunner})
	code, m := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 4}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	id := m["job"].(map[string]any)["id"].(string)
	if code, m = doJSON(t, "POST", ts.URL+"/jobs/"+id+"/cancel", ""); code != 200 {
		t.Fatalf("cancel: %d %v", code, m)
	}
	if code, m = doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result?wait=10s", ""); code != 200 || m["state"] != string(StateCancelled) {
		t.Fatalf("cancelled result: %d %v", code, m)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs/"+id+"/cancel", ""); code != http.StatusConflict {
		t.Fatalf("re-cancel of terminal job: %d, want 409", code)
	}
}

func TestHTTPDrainingSubmit503(t *testing.T) {
	s, ts := httpServer(t, Config{Runner: okRunner})
	if err := s.Shutdown(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 1}`); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d, want 503", code)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	_, ts := httpServer(t, Config{Runner: okRunner})
	code, m := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 8}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	id := m["job"].(map[string]any)["id"].(string)
	if code, _ := doJSON(t, "GET", ts.URL+"/jobs/"+id+"/result?wait=10s", ""); code != 200 {
		t.Fatalf("result: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var dump struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(raw), &dump); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, raw)
	}
	if dump.Counters["serve.submitted"] != 1 || dump.Counters["serve.jobs_done"] != 1 {
		t.Fatalf("counters: %v", dump.Counters)
	}
	for _, h := range []string{"serve.queue_wait_ns", "serve.run_ns"} {
		if _, ok := dump.Histograms[h]; !ok {
			t.Fatalf("histogram %s missing from /metrics:\n%s", h, raw)
		}
	}
}

// TestHTTPResultWaitTimesOut202: a wait shorter than the job returns 202
// with the in-progress view rather than blocking forever.
func TestHTTPResultWaitTimesOut202(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, ts := httpServer(t, Config{Workers: 1, Runner: gateRunner(gate)})
	code, m := doJSON(t, "POST", ts.URL+"/jobs", `{"seed": 6}`)
	if code != 202 {
		t.Fatalf("submit: %d", code)
	}
	id := m["job"].(map[string]any)["id"].(string)
	code, m = doJSON(t, "GET", fmt.Sprintf("%s/jobs/%s/result?wait=50ms", ts.URL, id), "")
	if code != http.StatusAccepted || terminalState(m["state"]) {
		t.Fatalf("early result poll: %d %v, want 202 + non-terminal", code, m)
	}
}

func terminalState(v any) bool {
	s, _ := v.(string)
	return terminal(State(s))
}
