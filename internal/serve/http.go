package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// Handler builds the service's HTTP API on a standard mux:
//
//	POST /jobs              submit a Spec; 202 accepted / 200 cache hit or
//	                        joined / 400 invalid / 429 queue full / 503 draining
//	GET  /jobs              list all jobs, newest first
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  job result; ?wait=DUR blocks until terminal
//	POST /jobs/{id}/cancel  request cooperative cancellation
//	GET  /healthz           liveness (always 200 while the process serves)
//	GET  /readyz            readiness (503 once draining)
//	GET  /metrics           the serve.* registry as JSON
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = s.Metrics().WriteJSON(w)
	})
	return mux
}

// submitResponse is the POST /jobs reply envelope.
type submitResponse struct {
	Disposition string   `json:"disposition"`
	Job         *JobView `json:"job"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, disp, err := s.Submit(&spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Cache hits and joins refer to existing work: 200. Fresh jobs: 202.
	code := http.StatusAccepted
	if disp != DispAccepted {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{Disposition: disp, Job: s.View(job, disp == DispCacheHit)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, s.View(j, false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	v := s.View(j, true)
	if !terminal(v.State) {
		// Not done yet: the status view with 202 tells the client to poll.
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.Cancel(id) {
		j, _ := s.Job(id)
		writeJSON(w, http.StatusOK, s.View(j, false))
		return
	}
	if j, ok := s.Job(id); ok {
		// Already terminal: cancelling a finished job is a no-op conflict.
		writeJSON(w, http.StatusConflict, s.View(j, false))
		return
	}
	writeErr(w, http.StatusNotFound, errors.New("serve: no such job"))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
