package serve

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// waitTerminal blocks until the job finishes or the test times out.
func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
}

// okRunner returns instantly with a distinguishable outcome.
func okRunner(req *Request) (*Outcome, error) {
	return &Outcome{Kind: req.Spec.Kind, Variant: req.Spec.Variant,
		GoodputGbps: float64(req.Spec.Seed)}, nil
}

// slowRunner blocks until cancelled, like a simulation honoring the seam.
func slowRunner(req *Request) (*Outcome, error) {
	for !req.Cancelled() {
		time.Sleep(time.Millisecond)
	}
	return nil, errStopped
}

// gateRunner blocks jobs on a channel so tests control exactly when workers
// free up.
func gateRunner(gate chan struct{}) Runner {
	return func(req *Request) (*Outcome, error) {
		select {
		case <-gate:
			return okRunner(req)
		case <-time.After(30 * time.Second):
			return nil, errors.New("gate never opened")
		}
	}
}

func shutdownOrFail(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSubmitInvalidSpecIsRejected(t *testing.T) {
	s := New(Config{Runner: okRunner})
	defer shutdownOrFail(t, s)
	for _, spec := range []*Spec{
		{Kind: "nope"},
		{Variant: "quic"},
		{Kind: KindWorkload, Workload: "uniformly-random"},
		{Kind: KindWorkload, Load: 1.5},
		{Kind: KindRun, Schedule: "gibberish"},
		{Fault: "gibberish"},
		{Kind: KindRun, Hosts: 3},
		{Kind: KindRun, Racks: 4, Variant: "mptcp2f"},
		{Seed: -0, Flows: -1},
	} {
		if _, _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %+v was admitted, want validation error", spec)
		}
	}
	if got := s.Metrics().Counter("serve.rejected_invalid"); got != 9 {
		t.Fatalf("serve.rejected_invalid = %d, want 9", got)
	}
}

func TestCacheKeyIgnoresDeadlineAndDefaults(t *testing.T) {
	a, err := (&Spec{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Spec{Variant: "tdtcp", Flows: 4, DeadlineMS: 5000}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatal("explicit defaults + deadline produced a different cache key")
	}
	c, err := (&Spec{Seed: 2}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == c.Key() {
		t.Fatal("different seeds share a cache key")
	}
}

func TestSingleFlightAndCache(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Runner: gateRunner(gate)})
	defer shutdownOrFail(t, s)

	spec := &Spec{Seed: 42}
	j1, disp, err := s.Submit(spec)
	if err != nil || disp != DispAccepted {
		t.Fatalf("first submit: disp=%q err=%v", disp, err)
	}
	j2, disp, err := s.Submit(spec)
	if err != nil || disp != DispJoined {
		t.Fatalf("identical in-flight submit: disp=%q err=%v", disp, err)
	}
	if j1 != j2 {
		t.Fatal("joined submit returned a different job")
	}

	close(gate)
	waitTerminal(t, j1)
	j3, disp, err := s.Submit(spec)
	if err != nil || disp != DispCacheHit {
		t.Fatalf("post-completion submit: disp=%q err=%v", disp, err)
	}
	if j3 != j1 {
		t.Fatal("cache hit returned a different job")
	}
	v := s.View(j3, true)
	if v.State != StateDone || v.Outcome == nil || v.Outcome.GoodputGbps != 42 {
		t.Fatalf("cached view: %+v", v)
	}

	m := s.Metrics()
	if hits, joined := m.Counter("serve.cache_hits"), m.Counter("serve.dedup_joined"); hits != 1 || joined != 1 {
		t.Fatalf("cache_hits=%d dedup_joined=%d, want 1 and 1", hits, joined)
	}
}

func TestQueueFullRejects(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: gateRunner(gate)})
	defer shutdownOrFail(t, s)

	// Worker 1 picks up seed 1; seed 2 sits in the queue slot. Give the
	// worker a moment to drain the first job from the buffer.
	j1, _, err := s.Submit(&Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := s.View(j1, false); v.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := s.Submit(&Spec{Seed: 2}); err != nil {
		t.Fatalf("queue-slot submit rejected: %v", err)
	}
	_, _, err = s.Submit(&Spec{Seed: 3})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit returned %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().Counter("serve.rejected_queue_full"); got != 1 {
		t.Fatalf("serve.rejected_queue_full = %d, want 1", got)
	}
	close(gate)
}

func TestPanicIsolationKeepsSlotAlive(t *testing.T) {
	s := New(Config{Workers: 1, Runner: func(req *Request) (*Outcome, error) {
		if req.Spec.Seed == 666 {
			// Record one event the way a run would — through a tracer with
			// the flight ring attached — then crash.
			tr := (*trace.Tracer)(nil).WithFlight(req.Flight)
			tr.Emit(trace.CatFault, 1, "doomed", 0, -1, 666, 0, "")
			panic("injected crash")
		}
		return okRunner(req)
	}})
	defer shutdownOrFail(t, s)

	bad, _, err := s.Submit(&Spec{Seed: 666})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, bad)
	v := s.View(bad, true)
	if v.State != StateFailed {
		t.Fatalf("panicked job state = %q, want failed", v.State)
	}
	if v.Panic != "injected crash" || !strings.Contains(v.PanicStack, "serve") {
		t.Fatalf("panic capture missing: panic=%q stackLen=%d", v.Panic, len(v.PanicStack))
	}
	if len(v.PanicFlight) == 0 || v.PanicFlight[len(v.PanicFlight)-1].Name != "doomed" {
		t.Fatalf("flight snapshot missing the pre-panic event: %+v", v.PanicFlight)
	}

	// The single worker must survive the panic and keep serving.
	good, _, err := s.Submit(&Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, good)
	if v := s.View(good, true); v.State != StateDone {
		t.Fatalf("post-panic job state = %q, want done (worker slot lost?)", v.State)
	}
	if got := s.Metrics().Counter("serve.panics"); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
}

func TestTransientErrorsRetryThenSucceed(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{
		Workers: 1, MaxRetries: 3,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		Runner: func(req *Request) (*Outcome, error) {
			if calls.Add(1) < 3 {
				return nil, Transient(errors.New("flaky filesystem"))
			}
			return okRunner(req)
		},
	})
	defer shutdownOrFail(t, s)

	j, _, err := s.Submit(&Spec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	v := s.View(j, true)
	if v.State != StateDone || v.Attempts != 3 {
		t.Fatalf("state=%q attempts=%d, want done after 3 attempts", v.State, v.Attempts)
	}
	if got := s.Metrics().Counter("serve.retries"); got != 2 {
		t.Fatalf("serve.retries = %d, want 2", got)
	}
}

func TestNonTransientErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{Workers: 1, Runner: func(req *Request) (*Outcome, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	}})
	defer shutdownOrFail(t, s)

	j, _, err := s.Submit(&Spec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if v := s.View(j, false); v.State != StateFailed || v.Attempts != 1 {
		t.Fatalf("state=%q attempts=%d, want failed after exactly 1 attempt", v.State, v.Attempts)
	}
	if calls.Load() != 1 {
		t.Fatalf("runner called %d times, want 1", calls.Load())
	}
}

func TestDeadlineExceededFailsJob(t *testing.T) {
	s := New(Config{Workers: 1, Runner: slowRunner})
	defer shutdownOrFail(t, s)

	j, _, err := s.Submit(&Spec{Seed: 9, DeadlineMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	v := s.View(j, false)
	if v.State != StateFailed || !strings.Contains(v.Error, "deadline exceeded") {
		t.Fatalf("state=%q err=%q, want deadline failure", v.State, v.Error)
	}
	if got := s.Metrics().Counter("serve.deadlines_exceeded"); got != 1 {
		t.Fatalf("serve.deadlines_exceeded = %d, want 1", got)
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1, Runner: slowRunner})
	defer shutdownOrFail(t, s)

	j, _, err := s.Submit(&Spec{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.View(j, false).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.Cancel(j.ID) {
		t.Fatal("Cancel returned false for a running job")
	}
	waitTerminal(t, j)
	if v := s.View(j, false); v.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", v.State)
	}
	if s.Cancel(j.ID) {
		t.Fatal("Cancel of a terminal job returned true")
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	gate := make(chan struct{})
	var ran atomic.Int64
	s := New(Config{Workers: 1, QueueDepth: 2, Runner: func(req *Request) (*Outcome, error) {
		ran.Add(1)
		return gateRunner(gate)(req)
	}})
	defer shutdownOrFail(t, s)

	blocker, _, err := s.Submit(&Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queued, _, err := s.Submit(&Spec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("Cancel returned false for a queued job")
	}
	close(gate)
	waitTerminal(t, blocker)
	waitTerminal(t, queued)
	if v := s.View(queued, false); v.State != StateCancelled {
		t.Fatalf("queued-then-cancelled job state = %q", v.State)
	}
	if ran.Load() != 1 {
		t.Fatalf("runner ran %d times; the cancelled queued job must never run", ran.Load())
	}
}

// TestShutdownDrainNoGoroutineLeak is the drain half of the robustness
// contract: after Shutdown returns, every worker goroutine is gone.
func TestShutdownDrainNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 4, Runner: okRunner})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, _, err := s.Submit(&Spec{Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := s.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, j := range jobs {
		if v := s.View(j, false); !terminal(v.State) {
			t.Fatalf("job %s state %q after drain", j.ID, v.State)
		}
	}
	if _, _, err := s.Submit(&Spec{Seed: 99}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-shutdown submit returned %v, want ErrDraining", err)
	}
	// Goroutine counts wobble (GC, timer goroutines); poll until we are back
	// to the starting neighborhood.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownCancelsStuckJobs: jobs that never finish on their own are
// cancelled at drain halftime and the shutdown still completes in budget.
func TestShutdownCancelsStuckJobs(t *testing.T) {
	s := New(Config{Workers: 2, Runner: slowRunner})
	j, _, err := s.Submit(&Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shutdown took %v, budget was 2s", d)
	}
	if v := s.View(j, false); v.State != StateCancelled {
		t.Fatalf("stuck job state = %q, want cancelled", v.State)
	}
}

// TestTortureLifecycle is the acceptance-criteria torture test: concurrent
// clients submitting a mix of valid, identical, deadline-exceeding and
// panic-inducing jobs, then SIGTERM-style drain. Every accepted job must
// reach a terminal state within the drain deadline and the books must
// balance.
func TestTortureLifecycle(t *testing.T) {
	s := New(Config{
		Workers: 4, QueueDepth: 64,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		Runner: func(req *Request) (*Outcome, error) {
			switch {
			case req.Spec.Seed%5 == 0: // hang until deadline/cancel
				for !req.Cancelled() {
					time.Sleep(time.Millisecond)
				}
				return nil, errStopped
			case req.Spec.Seed%7 == 0:
				panic(fmt.Sprintf("torture panic seed=%d", req.Spec.Seed))
			default:
				time.Sleep(time.Duration(req.Spec.Seed%3) * time.Millisecond)
				return okRunner(req)
			}
		},
	})

	const clients, perClient = 8, 20
	var (
		mu       sync.Mutex
		accepted []*Job
		joined   int64
		hits     int64
		rejected int64
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				// Seeds deliberately collide across clients: i repeats in
				// every client, so dedup and caching must kick in.
				spec := &Spec{Seed: int64(i + 1), DeadlineMS: 200}
				j, disp, err := s.Submit(spec)
				mu.Lock()
				switch {
				case errors.Is(err, ErrQueueFull):
					rejected++
				case err != nil:
					t.Errorf("unexpected submit error: %v", err)
				case disp == DispJoined:
					joined++
				case disp == DispCacheHit:
					hits++
				default:
					accepted = append(accepted, j)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	start := time.Now()
	if err := s.Shutdown(15 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	drainTook := time.Since(start)

	states := map[State]int{}
	keys := map[string]bool{}
	for _, j := range accepted {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after drain", j.ID)
		}
		v := s.View(j, false)
		states[v.State]++
		// Failed/cancelled jobs are not cached, so their key may be accepted
		// again later. But two DONE jobs with one key would mean the cache or
		// single-flight let a duplicate run to completion.
		if v.State == StateDone {
			if keys[v.Key] {
				t.Fatalf("two done jobs share key %s — cache/single-flight broke", v.Key)
			}
			keys[v.Key] = true
		}
	}
	m := s.Metrics()
	submitted := int64(clients * perClient)
	if got := m.Counter("serve.submitted"); got != submitted {
		t.Fatalf("serve.submitted = %d, want %d", got, submitted)
	}
	if acc := m.Counter("serve.accepted"); acc != int64(len(accepted)) {
		t.Fatalf("serve.accepted = %d, accepted jobs = %d", acc, len(accepted))
	}
	if acc, h, jn, rej := int64(len(accepted)), m.Counter("serve.cache_hits"),
		m.Counter("serve.dedup_joined"), m.Counter("serve.rejected_queue_full"); acc+h+jn+rej != submitted {
		t.Fatalf("dispositions do not sum: accepted=%d hits=%d joined=%d rejected=%d submitted=%d",
			acc, h, jn, rej, submitted)
	}
	if hits != m.Counter("serve.cache_hits") || joined != m.Counter("serve.dedup_joined") {
		t.Fatalf("client-side counts (hits=%d joined=%d) disagree with metrics (%d, %d)",
			hits, joined, m.Counter("serve.cache_hits"), m.Counter("serve.dedup_joined"))
	}
	total := m.Counter("serve.jobs_done") + m.Counter("serve.jobs_failed") + m.Counter("serve.jobs_cancelled")
	if total != int64(len(accepted)) {
		t.Fatalf("terminal metric sum %d != accepted %d (states: %v)", total, len(accepted), states)
	}
	if states[StateDone] == 0 || states[StateFailed] == 0 {
		t.Fatalf("torture mix did not exercise both success and failure: %v", states)
	}
	t.Logf("torture: %d accepted (%v), %d joined, %d cache hits, %d rejected, drain %v",
		len(accepted), states, joined, hits, rejected, drainTook)
}
