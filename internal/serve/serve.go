// Package serve is the fault-tolerant scenario service behind cmd/tdserve:
// a bounded worker pool running experiments-package scenarios submitted as
// JSON specs, with per-job deadlines, panic isolation, retry with capped
// backoff, graceful drain, and a deterministic result cache.
//
// The package sits OUTSIDE the determinism boundary (like internal/obs): it
// uses wall clocks, goroutines, and jittered backoff freely. Determinism is
// what it serves, not what it is — because every run is a pure function of
// its normalized spec, results are cached by (canonical spec hash, seed) and
// concurrent submissions of the same spec are deduplicated onto one run.
// Simulation packages must never import this one (enforced by tdlint's
// determinism boundary check).
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rdcn-net/tdtcp/internal/experiments"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// State is a job lifecycle state. It is a defined type so switches over it
// are checkable by tdlint's exhaustive analysis: adding a state without
// updating every switch is a lint finding, not a silent fall-through.
type State string

// Job states. Terminal states are StateDone, StateFailed, StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Submission dispositions: what Submit did with the spec.
const (
	DispAccepted = "accepted"  // new job queued
	DispJoined   = "joined"    // deduplicated onto an in-flight job (single-flight)
	DispCacheHit = "cache_hit" // served from the deterministic result cache
)

// Sentinel errors surfaced by Submit.
var (
	// ErrQueueFull means admission control rejected the spec: every worker
	// is busy and the bounded queue is at capacity. The service never
	// buffers unboundedly; clients retry with backoff (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means the server is shutting down and accepts no new work
	// (HTTP 503).
	ErrDraining = errors.New("serve: draining")
)

// errTransient wraps an error a Runner considers retryable.
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

// Transient marks an error as retryable: the worker pool will re-run the job
// with capped exponential backoff instead of failing it. Deterministic
// failures (bad spec, simulation errors, panics) must NOT be marked —
// retrying a pure function of the spec would reproduce them exactly.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return errTransient{err}
}

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient.
func IsTransient(err error) bool {
	var t errTransient
	return errors.As(err, &t)
}

// Config parameterizes a Server. The zero value is usable: every field has
// a sensible default.
type Config struct {
	// Workers is the worker-pool size (default 2). This is the hard bound on
	// concurrent simulations.
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 16).
	// Admission beyond Workers+QueueDepth fails with ErrQueueFull.
	QueueDepth int
	// DefaultDeadline caps a job's wall-clock run time when its spec does
	// not set deadline_ms (default 60s).
	DefaultDeadline time.Duration
	// MaxRetries bounds re-runs of transiently-failed jobs (default 2, i.e.
	// up to 3 attempts).
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between retry attempts: base·2^attempt plus up to 50% jitter, capped
	// at max (defaults 50ms and 2s).
	BackoffBase, BackoffMax time.Duration
	// StopEvery is the cancellation-poll cadence in simulation events
	// (default sim.DefaultStopEvery via the loop).
	StopEvery int
	// CacheCap bounds the result cache in entries, evicted FIFO (default
	// 128; negative disables caching).
	CacheCap int
	// FlightLen is the per-job flight-recorder ring size (default
	// trace.DefaultFlightLen).
	FlightLen int
	// Metrics receives the serve.* counters and histograms (one is created
	// if nil).
	Metrics *trace.Registry
	// Runner executes normalized specs (default DefaultRunner). Tests
	// substitute stubs to exercise the failure machinery.
	Runner Runner
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.CacheCap == 0 {
		c.CacheCap = 128
	}
	if c.FlightLen <= 0 {
		c.FlightLen = trace.DefaultFlightLen
	}
	if c.Metrics == nil {
		c.Metrics = trace.NewRegistry()
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner
	}
}

// Job is one submitted scenario and its lifecycle. All mutable fields are
// guarded by the owning Server's mutex; cancelled is atomic because the
// running simulation polls it between events.
type Job struct {
	ID   string
	Key  string
	Spec *Spec

	state    State
	attempts int
	err      error
	outcome  *Outcome
	// panicValue/panicStack/panicFlight capture a crashed attempt: the
	// recovered value, the goroutine stack, and the flight recorder's last
	// events at the moment of the panic.
	panicValue  string
	panicStack  string
	panicFlight []trace.Event

	cancelled atomic.Bool
	// done closes when the job reaches a terminal state.
	done chan struct{}

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Cancelled reports whether cancellation was requested (it does not imply
// the job has stopped yet).
func (j *Job) Cancelled() bool { return j.cancelled.Load() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is the JSON-ready snapshot of a job's state.
type JobView struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	State     State      `json:"state"`
	Attempts  int        `json:"attempts"`
	Spec      *Spec      `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Panic     string     `json:"panic,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Outcome   *Outcome   `json:"outcome,omitempty"`
	// PanicStack and PanicFlight are included only on the result view of a
	// crashed job: the stack of the panicking attempt and the flight
	// recorder's last events before the crash.
	PanicStack  string        `json:"panic_stack,omitempty"`
	PanicFlight []trace.Event `json:"panic_flight,omitempty"`
}

// Server is the scenario service: a bounded worker pool with admission
// control, deadlines, panic isolation, retries, single-flight deduplication
// and a deterministic result cache.
type Server struct {
	cfg Config

	mu        sync.Mutex
	jobs      map[string]*Job // by ID
	inflight  map[string]*Job // by Key: queued or running (single-flight)
	cache     map[string]*Job // by Key: terminal done jobs
	cacheFifo []string
	nextID    uint64
	draining  bool

	queue chan *Job
	wg    sync.WaitGroup
	// hardStop flips when Shutdown escalates: every running job's stop seam
	// reads it, so simulations abandon at the next poll.
	hardStop atomic.Bool

	// rng drives retry-backoff jitter only; guarded by rngMu. Jitter is the
	// one intentionally nondeterministic thing here — it decorrelates
	// retries, and never touches a simulation.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// New builds and starts a Server: its workers are running on return.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cache:    make(map[string]*Job),
		queue:    make(chan *Job, cfg.QueueDepth),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's registry (serve.* keys).
func (s *Server) Metrics() *trace.Registry { return s.cfg.Metrics }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit normalizes and admits one spec. The returned disposition says what
// happened: DispAccepted (new job queued), DispJoined (deduplicated onto an
// identical in-flight job), or DispCacheHit (previously completed — the
// returned job is already done). Errors: spec validation errors,
// ErrQueueFull, ErrDraining.
func (s *Server) Submit(spec *Spec) (*Job, string, error) {
	m := s.cfg.Metrics
	m.Add("serve.submitted", 1)
	norm, err := spec.Normalize()
	if err != nil {
		m.Add("serve.rejected_invalid", 1)
		return nil, "", err
	}
	key := norm.Key()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		m.Add("serve.rejected_draining", 1)
		return nil, "", ErrDraining
	}
	if j := s.cache[key]; j != nil {
		m.Add("serve.cache_hits", 1)
		return j, DispCacheHit, nil
	}
	if j := s.inflight[key]; j != nil {
		m.Add("serve.dedup_joined", 1)
		return j, DispJoined, nil
	}
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j-%06d", s.nextID),
		Key:       key,
		Spec:      norm,
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: time.Now(),
	}
	// Nonblocking send: the channel buffer IS the admission bound. Sending
	// under the mutex is safe because the buffer send cannot block, and it
	// keeps Submit/Shutdown ordered — the queue is only closed while
	// draining is set, and draining was checked above under this lock.
	select {
	case s.queue <- j:
	default:
		m.Add("serve.rejected_queue_full", 1)
		return nil, "", ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.inflight[key] = j
	m.Add("serve.accepted", 1)
	return j, DispAccepted, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cooperative cancellation of a job. Queued jobs are
// finalized as cancelled immediately; running jobs stop at the next seam
// poll. Returns false if the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || terminal(j.state) {
		return false
	}
	j.cancelled.Store(true)
	return true
}

// CancelAll requests cancellation of every non-terminal job.
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if !terminal(j.state) {
			j.cancelled.Store(true)
		}
	}
}

// View snapshots a job for JSON rendering. withResult adds the outcome and,
// for crashed jobs, the panic stack and flight-recorder snapshot.
func (s *Server) View(j *Job, withResult bool) *JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &JobView{
		ID:        j.ID,
		Key:       j.Key,
		State:     j.state,
		Attempts:  j.attempts,
		Spec:      j.Spec,
		Panic:     j.panicValue,
		Submitted: j.submitted,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if withResult {
		v.Outcome = j.outcome
		v.PanicStack = j.panicStack
		v.PanicFlight = j.panicFlight
	}
	return v
}

// Jobs snapshots every job, newest first.
func (s *Server) Jobs() []*JobView {
	s.mu.Lock()
	ids := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		ids = append(ids, j)
	}
	s.mu.Unlock()
	// Snapshot then sort outside the lock; IDs are zero-padded so string
	// order is submission order.
	views := make([]*JobView, 0, len(ids))
	for _, j := range ids {
		views = append(views, s.View(j, false))
	}
	sortViews(views)
	return views
}

func sortViews(v []*JobView) {
	// Insertion sort, descending by ID: job lists are small and this avoids
	// pulling in sort for one call site.
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k].ID > v[k-1].ID; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}

func terminal(state State) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// worker drains the queue until Shutdown closes it. One worker crash-proofs
// one job at a time: a panicking run is recovered inside runJob, so the slot
// survives and keeps serving.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job through its attempt loop: deadline-arm, run, and on
// transient failure back off and retry until MaxRetries is exhausted.
func (s *Server) runJob(j *Job) {
	m := s.cfg.Metrics
	s.mu.Lock()
	if j.cancelled.Load() {
		// Cancelled while queued: finalize without running.
		s.finalizeLocked(j, StateCancelled, nil, errors.New("serve: cancelled while queued"))
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.mu.Unlock()
	m.Hist("serve.queue_wait_ns").Record(int64(j.started.Sub(j.submitted)))

	deadline := j.started.Add(j.Spec.Deadline(s.cfg.DefaultDeadline))
	stop := func() bool {
		return j.cancelled.Load() || s.hardStop.Load() || !time.Now().Before(deadline)
	}

	var out *Outcome
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt + 1
		s.mu.Unlock()
		out, err = s.attempt(j, stop)
		if err == nil || !IsTransient(err) || attempt >= s.cfg.MaxRetries || stop() {
			break
		}
		m.Add("serve.retries", 1)
		if !s.backoff(attempt, stop) {
			break // cancelled or deadline hit while backing off
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.finalizeLocked(j, StateDone, out, nil)
	case errors.Is(err, experiments.ErrCancelled) || errors.Is(err, errStopped):
		if j.cancelled.Load() || s.hardStop.Load() {
			s.finalizeLocked(j, StateCancelled, nil, err)
		} else {
			// Neither client nor shutdown asked: the deadline did.
			m.Add("serve.deadlines_exceeded", 1)
			s.finalizeLocked(j, StateFailed, nil,
				fmt.Errorf("serve: deadline exceeded after %v: %w", j.Spec.Deadline(s.cfg.DefaultDeadline), err))
		}
	default:
		s.finalizeLocked(j, StateFailed, nil, err)
	}
}

// errStopped marks an attempt abandoned by the stop seam outside the
// simulation (e.g. a stub runner honoring Cancelled).
var errStopped = errors.New("serve: run stopped")

// attempt executes one run of the job with panic isolation: a panic in the
// runner (or anywhere under it) is recovered, recorded with the goroutine
// stack and a flight-recorder snapshot, and surfaced as a plain error so the
// worker slot survives.
func (s *Server) attempt(j *Job, stop func() bool) (out *Outcome, err error) {
	m := s.cfg.Metrics
	flight := trace.NewFlight(s.cfg.FlightLen, trace.DefaultFlightCats)
	t0 := time.Now()
	defer func() {
		m.Hist("serve.run_ns").Record(int64(time.Since(t0)))
		if r := recover(); r != nil {
			m.Add("serve.panics", 1)
			stack := string(debug.Stack())
			s.mu.Lock()
			j.panicValue = fmt.Sprint(r)
			j.panicStack = stack
			j.panicFlight = flight.Events()
			s.mu.Unlock()
			out, err = nil, fmt.Errorf("serve: job %s panicked: %v", j.ID, r)
		}
	}()
	return s.cfg.Runner(&Request{
		Spec:      j.Spec,
		Cancelled: stop,
		StopEvery: s.cfg.StopEvery,
		Flight:    flight,
	})
}

// backoff sleeps base·2^attempt plus up to 50% jitter, capped at BackoffMax,
// interruptibly: it polls the stop seam so cancellation and shutdown are not
// delayed by a sleeping retry. Returns false when interrupted.
func (s *Server) backoff(attempt int, stop func() bool) bool {
	d := s.cfg.BackoffBase << uint(attempt)
	if d > s.cfg.BackoffMax || d <= 0 {
		d = s.cfg.BackoffMax
	}
	s.rngMu.Lock()
	d += time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.rngMu.Unlock()
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	deadline := time.Now().Add(d)
	const tick = time.Millisecond
	for time.Now().Before(deadline) {
		if stop() {
			return false
		}
		time.Sleep(tick)
	}
	return !stop()
}

// finalizeLocked moves a job to a terminal state, updates the single-flight
// and cache maps, and wakes waiters. Caller holds s.mu.
func (s *Server) finalizeLocked(j *Job, state State, out *Outcome, err error) {
	m := s.cfg.Metrics
	j.state = state
	j.outcome = out
	j.err = err
	j.finished = time.Now()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	switch state {
	case StateDone:
		m.Add("serve.jobs_done", 1)
		s.cacheAddLocked(j)
	case StateFailed:
		m.Add("serve.jobs_failed", 1)
	case StateCancelled:
		m.Add("serve.jobs_cancelled", 1)
	default: // StateQueued, StateRunning
		panic(fmt.Sprintf("serve: finalize to non-terminal state %q", state))
	}
	close(j.done)
}

// cacheAddLocked inserts a completed job into the result cache with FIFO
// eviction. Caller holds s.mu.
func (s *Server) cacheAddLocked(j *Job) {
	if s.cfg.CacheCap < 0 {
		return
	}
	if _, dup := s.cache[j.Key]; dup {
		return
	}
	s.cache[j.Key] = j
	s.cacheFifo = append(s.cacheFifo, j.Key)
	for len(s.cacheFifo) > s.cfg.CacheCap {
		evict := s.cacheFifo[0]
		s.cacheFifo = s.cacheFifo[1:]
		delete(s.cache, evict)
		s.cfg.Metrics.Add("serve.cache_evictions", 1)
	}
	s.cfg.Metrics.Set("serve.cache_entries", float64(len(s.cache)))
}

// Shutdown drains the server: no new submissions, queued and running jobs
// get the first half of the budget to finish; at halftime every remaining
// job is cancelled through the stop seam; if workers still have not exited
// by the deadline an error is returned (goroutines may still be winding
// down). Idempotent: later calls just wait on the same drain.
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	half := drain / 2
	select {
	case <-done:
		return nil
	case <-time.After(half):
	}
	s.hardStop.Store(true)
	s.CancelAll()
	select {
	case <-done:
		return nil
	case <-time.After(drain - half):
		return fmt.Errorf("serve: shutdown deadline %v exceeded with jobs still running", drain)
	}
}
