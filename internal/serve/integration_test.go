package serve

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// tinySpec is a real simulation small enough for a unit test: two flows over
// the paper's two-rack hybrid, one warmup and one measurement week.
func tinySpec() *Spec {
	return &Spec{Kind: KindRun, Variant: "tdtcp", Flows: 2,
		WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7}
}

// TestDefaultRunnerEndToEnd drives a real simulation through the pool and
// checks the outcome is a sane paper run.
func TestDefaultRunnerEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdownOrFail(t, s)

	j, disp, err := s.Submit(tinySpec())
	if err != nil || disp != DispAccepted {
		t.Fatalf("submit: disp=%q err=%v", disp, err)
	}
	waitTerminal(t, j)
	v := s.View(j, true)
	if v.State != StateDone {
		t.Fatalf("state=%q err=%q", v.State, v.Error)
	}
	out := v.Outcome
	// Short windows can overshoot the steady-state optimum (warmup-queued
	// bytes drain into the measurement week), so bound loosely.
	if out.GoodputGbps <= 0 || out.GoodputGbps > 2*out.OptimalGbps {
		t.Fatalf("goodput %v outside (0, 2x optimal %v]", out.GoodputGbps, out.OptimalGbps)
	}
	if out.TDTCPSwitches == 0 {
		t.Fatal("a tdtcp run with zero TDN switches")
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(out.Metrics, &metrics); err != nil {
		t.Fatalf("outcome metrics not JSON: %v", err)
	}
	if metrics.Counters["sim.events_fired"] == 0 {
		t.Fatal("outcome metrics missing sim.events_fired")
	}
}

// TestDefaultRunnerDeterministicAcrossServers is the cache-soundness
// argument made empirical: two independent servers running the same
// normalized spec must produce byte-identical outcomes.
func TestDefaultRunnerDeterministicAcrossServers(t *testing.T) {
	outcomes := make([]json.RawMessage, 2)
	for i := range outcomes {
		s := New(Config{Workers: 1})
		j, _, err := s.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		v := s.View(j, true)
		if v.State != StateDone {
			t.Fatalf("server %d: state=%q err=%q", i, v.State, v.Error)
		}
		b, err := json.Marshal(v.Outcome)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[i] = b
		shutdownOrFail(t, s)
	}
	if string(outcomes[0]) != string(outcomes[1]) {
		t.Fatalf("same spec, different outcomes across servers:\n%s\n%s", outcomes[0], outcomes[1])
	}
}

// TestDefaultRunnerWorkloadKind covers the kind=workload path end to end.
func TestDefaultRunnerWorkloadKind(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownOrFail(t, s)
	j, _, err := s.Submit(&Spec{Kind: KindWorkload, Variant: "cubic",
		WarmupWeeks: 1, MeasureWeeks: 1, Seed: 3, MaxFlows: 64})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	v := s.View(j, true)
	if v.State != StateDone {
		t.Fatalf("state=%q err=%q", v.State, v.Error)
	}
	if v.Outcome.FlowsStarted == 0 || v.Outcome.FlowsCompleted == 0 {
		t.Fatalf("workload outcome: %+v", v.Outcome)
	}
	if v.Outcome.MedianFCTUs <= 0 {
		t.Fatalf("median FCT %v, want > 0", v.Outcome.MedianFCTUs)
	}
}

// TestDefaultRunnerDeadlineCancelsRealRun: a deadline far shorter than the
// simulation interrupts it through the stop seam and the job fails with a
// deadline error — the service-level face of the byte-identical-prefix
// property proven in the experiments package tests.
func TestDefaultRunnerDeadlineCancelsRealRun(t *testing.T) {
	s := New(Config{Workers: 1, StopEvery: 256})
	defer shutdownOrFail(t, s)
	spec := tinySpec()
	spec.Flows = 8
	spec.MeasureWeeks = 400 // minutes of wall time if it ran out
	spec.DeadlineMS = 50
	j, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	waitTerminal(t, j)
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("deadline took %v to bite", d)
	}
	v := s.View(j, false)
	if v.State != StateFailed || !strings.Contains(v.Error, "deadline exceeded") {
		t.Fatalf("state=%q err=%q, want deadline failure", v.State, v.Error)
	}
}
