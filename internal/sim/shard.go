// Sharded deterministic event loop: a conservative parallel-DES engine that
// partitions a simulation into one sub-loop per rack plus one control loop,
// executes rack lanes on a bounded worker pool inside lookahead windows, and
// synchronizes at rotor matching boundaries — while producing an observable
// trace byte-identical to sequential execution for EVERY shard count.
//
// # Determinism argument (DESIGN.md §14)
//
// Every event carries a globally-unique scheduling key laneKey|seq (lane 0
// is the control loop, lane r+1 is rack r; seq counts arms within the
// lane), and the engine's canonical execution order is ascending (time,
// key). That order is a function of the simulation alone — lanes, arms, and
// times never depend on the shard count, because the engine ALWAYS builds R
// rack lanes regardless of how many workers execute them. Sharding only
// changes which worker runs which lane inside a window:
//
//   - Windows: a lane executes events in [tb, W) where tb is the global
//     minimum pending time and W = min(ctlHead, tb+L, end+1). L is the
//     conservative lookahead — no cross-rack interaction has latency < L
//     (it is derived from the fabric's link propagation delay), and
//     cross-rack deliveries travel through per-(src,dst) docks whose
//     transfers apply only at barriers, so nothing a lane does inside a
//     window can schedule work for another lane inside the same window.
//   - Barriers: the control loop's head caps every window, so windows never
//     cross a rotor reconfiguration; control events (matchings, VOQ
//     resizes, notifications) run with all workers parked, one instant at a
//     time, interleaving with lane output in canonical key order.
//   - Trace merge: inside a window each lane encodes its trace bytes into a
//     private spool marked per-event with (time, key); the barrier merges
//     all spools by (time, key) — a total order, since keys are globally
//     unique — and splices the result into the shared stream. Control
//     events relay directly (workers are parked), and lane 0 keys sort
//     before all rack keys at equal instants, so the spliced stream is
//     exactly the canonical order.
//
// Identical lanes + identical windows + a shard-count-independent merge
// give byte-identical traces for shards ∈ {1..R}; the parity suite in
// internal/experiments proves it end to end.
package sim

import (
	"sync"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// laneShift positions the lane tag above the per-lane arm counter in every
// scheduling key. 2^40 arms per lane is three orders of magnitude beyond
// the largest simulated week.
const laneShift = 40

// ShardOf is the deterministic shard key: rack r is executed by worker
// r % shards. It is exported so tooling and tests can reason about
// worker assignment; determinism never depends on it.
func ShardOf(rack, shards int) int {
	if shards <= 1 {
		return 0
	}
	return rack % shards
}

// ShardedLoop is the conservative parallel engine. Construct with
// NewSharded; wire components to Control() and RackLoop(r); then drive with
// RunUntil exactly like a sequential Loop.
//
// With shards == 1 the engine runs every lane inline on the caller's
// goroutine — zero goroutines, zero channels — making the sequential
// reference path literally the same code as the parallel one.
type ShardedLoop struct {
	ctl    *Loop
	racks  []*Loop
	shards int
	look   Dur // conservative lookahead; see SetLookahead

	// Cross-lane deferred work: slot src*R+dst holds at most one pending
	// flush (docks defer once per empty→non-empty transition per window).
	// dirty[src] lists the dst slots src filled this window, appended only
	// by src's worker, drained src-major at barriers so application order
	// is deterministic and shard-count-independent.
	deferred []func()
	dirty    [][]int32
	// laneDeferred[r] holds at most one per-lane barrier callback (DeferLane),
	// written only by lane r's worker and drained in lane order after the
	// pair deferrals.
	laneDeferred []func()

	// Tracing: the parent tracer plus one fork+spool per rack lane and the
	// per-lane span-id counters backing each fork's span source.
	tracer  *trace.Tracer
	forks   []*trace.Tracer
	spools  []*trace.Spool
	spanCtr []int64
	merged  []byte // barrier merge scratch, reused
	cursor  []int  // k-way merge cursors, reused

	// Worker pool, alive for the duration of one RunUntil leg (shards > 1
	// only). Coordinator → worker: wg.Add + channel send; worker →
	// coordinator: wg.Done — both establish happens-before, so lane state
	// is owned by exactly one goroutine at every point in time.
	work []chan Time
	wg   sync.WaitGroup
	exit sync.WaitGroup

	// Cooperative stop seam, polled at barriers only: a latched stop leaves
	// the trace a whole-window (hence byte-exact) prefix of the full run.
	stopFn    func() bool
	stopEvery uint64
	stopAt    uint64
	stopped   bool
}

// NewSharded returns an engine with nracks rack lanes and a control lane,
// executed by shards workers (clamped to [1, nracks]). The control loop is
// seeded with seed exactly like NewLoop(seed); each rack lane's RNG is
// seeded by a splitmix64 derivation of (seed, rack) so per-rack draws are a
// function of the rack, never of the worker executing it.
func NewSharded(seed int64, nracks, shards int) *ShardedLoop {
	if nracks < 1 {
		nracks = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > nracks {
		shards = nracks
	}
	e := &ShardedLoop{
		ctl:          NewLoop(seed),
		shards:       shards,
		look:         1, // safe floor; SetLookahead installs the real bound
		racks:        make([]*Loop, nracks),
		deferred:     make([]func(), nracks*nracks),
		dirty:        make([][]int32, nracks),
		laneDeferred: make([]func(), nracks),
		forks:        make([]*trace.Tracer, nracks),
		spools:       make([]*trace.Spool, nracks),
		spanCtr:      make([]int64, nracks),
		cursor:       make([]int, nracks),
	}
	for r := range e.racks {
		rk := NewLoop(int64(splitmix64(uint64(seed) + uint64(r) + 1)))
		rk.laneKey = uint64(r+1) << laneShift
		e.racks[r] = rk
	}
	return e
}

// splitmix64 is the standard seed-spreading finalizer: adjacent inputs map
// to statistically independent outputs, so per-rack RNG streams derived
// from seed+rack do not correlate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Control returns the control lane's loop. Schedule everything that is not
// owned by a single rack here: rotor transitions, samplers, the workload
// spawner, invariant checks.
func (e *ShardedLoop) Control() *Loop { return e.ctl }

// Racks returns the number of rack lanes.
func (e *ShardedLoop) Racks() int { return len(e.racks) }

// Shards returns the worker count the engine was built with (after
// clamping).
func (e *ShardedLoop) Shards() int { return e.shards }

// RackLoop returns rack r's lane loop. Components owned by rack r (hosts,
// VOQs, link drainers, connections) must arm their timers here.
func (e *ShardedLoop) RackLoop(r int) *Loop { return e.racks[r] }

// Lookahead returns the engine's conservative lookahead bound.
func (e *ShardedLoop) Lookahead() Dur { return e.look }

// SetLookahead installs the conservative lookahead: the minimum virtual
// latency of any cross-rack interaction. Windows span at most d, so a
// smaller d is always safe and merely slower. d must be positive.
func (e *ShardedLoop) SetLookahead(d Dur) {
	if d < 1 {
		d = 1
	}
	e.look = d
}

// SetTracer attaches the shared tracer to the control lane and a private
// fork (with its own spool, flight ring, and deterministic span-id source)
// to every rack lane. Call once, before the run starts.
func (e *ShardedLoop) SetTracer(t *trace.Tracer) {
	e.tracer = t
	e.ctl.SetTracer(t)
	for r, rk := range e.racks {
		sp := &trace.Spool{}
		f := t.Fork(sp)
		e.forks[r], e.spools[r] = f, sp
		if f == nil {
			rk.SetTracer(nil)
			rk.spool = nil
			continue
		}
		lane := uint64(r+1) << laneShift
		ctr := &e.spanCtr[r]
		f.SetSpanSource(func() int64 {
			*ctr++
			return int64(lane | uint64(*ctr))
		})
		rk.SetTracer(f)
		rk.spool = sp
	}
}

// RackTracer returns rack r's fork of the shared tracer (nil when tracing
// is disabled). Per-rack components emit through it; its flight recorder
// holds the lane's last moments for post-mortem dumps.
func (e *ShardedLoop) RackTracer(r int) *trace.Tracer { return e.forks[r] }

// Defer registers fn to run at the next barrier, on the coordinator, with
// every worker parked. It is the only legal way for rack src's lane to
// affect rack dst's lane: docks call it when their stage buffer goes
// non-empty, and the barrier applies all flushes in (src, registration)
// order — deterministic because each lane's execution order is. At most one
// deferral per (src, dst) pair may be outstanding; a second one panics.
func (e *ShardedLoop) Defer(src, dst int, fn func()) {
	i := src*len(e.racks) + dst
	if e.deferred[i] != nil {
		panic("sim: duplicate cross-shard deferral for (src,dst) pair")
	}
	e.deferred[i] = fn
	e.dirty[src] = append(e.dirty[src], int32(dst))
}

// DeferLane registers fn to run at the next barrier, on the coordinator,
// after every (src, dst) pair deferral. It is Defer's per-lane sibling for
// cross-lane work not tied to one destination — e.g. repatriating consumed
// wire buffers to their home racks' pools. Lane r's worker is the only legal
// caller for slot r, at most once per window; a second registration panics.
func (e *ShardedLoop) DeferLane(r int, fn func()) {
	if e.laneDeferred[r] != nil {
		// Predeclared so the string→interface conversion is not attributed
		// to inlined hot-path callers.
		panic(errDupLaneDefer)
	}
	e.laneDeferred[r] = fn
}

var errDupLaneDefer any = "sim: duplicate per-lane deferral"

// drainDeferred applies all pending cross-lane flushes src-major. Runs on
// the coordinator at barriers only.
func (e *ShardedLoop) drainDeferred() {
	for src, d := range e.dirty {
		if len(d) == 0 {
			continue
		}
		base := src * len(e.racks)
		for _, dst := range d {
			fn := e.deferred[base+int(dst)]
			e.deferred[base+int(dst)] = nil
			fn()
		}
		e.dirty[src] = d[:0]
	}
	for r, fn := range e.laneDeferred {
		if fn != nil {
			e.laneDeferred[r] = nil
			fn()
		}
	}
}

// Fired returns the total number of events executed across all lanes.
func (e *ShardedLoop) Fired() uint64 {
	n := e.ctl.Fired()
	for _, rk := range e.racks {
		n += rk.Fired()
	}
	return n
}

// Live returns the number of scheduled events still going to fire, summed
// across all lanes. Frames parked in cross-rack docks are not timers yet
// and are counted by the docks' own conservation ledgers.
func (e *ShardedLoop) Live() int {
	n := e.ctl.Live()
	for _, rk := range e.racks {
		n += rk.Live()
	}
	return n
}

// Now returns the engine's clock: the maximum lane clock, i.e. the time of
// the last executed event (lanes advance raggedly inside a window but
// reconverge at every barrier, and RunUntil leaves all lanes at end).
func (e *ShardedLoop) Now() Time {
	now := e.ctl.Now()
	for _, rk := range e.racks {
		if t := rk.Now(); t > now {
			now = t
		}
	}
	return now
}

// SetStopCheck installs a cooperative cancellation seam with the same
// contract as Loop.SetStopCheck, polled at window barriers (never inside a
// window), so a cancelled run's trace is a whole-window — and therefore
// byte-exact — prefix of the uncancelled run's.
func (e *ShardedLoop) SetStopCheck(every int, fn func() bool) {
	if fn == nil {
		e.stopFn, e.stopEvery, e.stopped = nil, 0, false
		return
	}
	if every <= 0 {
		every = DefaultStopEvery
	}
	e.stopFn = fn
	e.stopEvery = uint64(every)
	e.stopAt = e.Fired() + e.stopEvery
}

// Stopped reports whether the stop seam has latched.
func (e *ShardedLoop) Stopped() bool { return e.stopped }

func (e *ShardedLoop) shouldStop() bool {
	if e.stopped {
		return true
	}
	if e.stopFn == nil || e.Fired() < e.stopAt {
		return false
	}
	e.stopAt = e.Fired() + e.stopEvery
	if e.stopFn() {
		e.stopped = true
	}
	return e.stopped
}

// minHead reports the earliest pending event time across all lanes.
func (e *ShardedLoop) minHead() (Time, bool) {
	var tb Time
	ok := false
	if at, has := e.ctl.head(); has {
		tb, ok = at, true
	}
	for _, rk := range e.racks {
		if at, has := rk.head(); has && (!ok || at < tb) {
			tb, ok = at, true
		}
	}
	return tb, ok
}

// RunUntil executes all events with time ≤ end in canonical (time, key)
// order and then sets every lane clock to end, mirroring Loop.RunUntil.
// When the stop seam latches, it returns at a barrier with clocks left at
// the last executed window.
func (e *ShardedLoop) RunUntil(end Time) {
	if e.shards > 1 {
		e.startWorkers()
		defer e.stopWorkers()
	}
	for {
		e.drainDeferred()
		if e.shouldStop() {
			return
		}
		tb, ok := e.minHead()
		if !ok || tb > end {
			break
		}
		if ctlAt, has := e.ctl.head(); has && ctlAt == tb {
			// Control instant: sync every lane clock to tb first, so
			// control events that arm timers on rack lanes (connection
			// setup, notification delivery) arm relative to tb, exactly as
			// a sequential execution at time tb would.
			for _, rk := range e.racks {
				rk.setNowAtLeast(tb)
			}
			e.ctl.runInstant(tb)
			continue
		}
		// Window [tb, W): every pending control event is > tb here, so
		// minHead is the minimum rack head and the window is capped by the
		// next control event (rotor boundary), the lookahead, and end.
		w := end + 1
		if ctlAt, has := e.ctl.head(); has && ctlAt < w {
			w = ctlAt
		}
		if lw := tb.Add(e.look); lw < w {
			w = lw
		}
		e.runRacks(w)
		e.mergeSpools()
	}
	if !e.stopped {
		e.ctl.setNowAtLeast(end)
		for _, rk := range e.racks {
			rk.setNowAtLeast(end)
		}
	}
}

// runRacks executes every rack lane over the window [its head, w): inline
// with one shard, on the worker pool otherwise. Forks spool for the
// duration so workers never touch the shared stream.
func (e *ShardedLoop) runRacks(w Time) {
	for _, f := range e.forks {
		f.SetSpooling(true)
	}
	if e.shards <= 1 {
		for _, rk := range e.racks {
			rk.runWindow(w)
		}
	} else {
		e.wg.Add(e.shards)
		for _, ch := range e.work {
			ch <- w
		}
		e.wg.Wait()
	}
	for _, f := range e.forks {
		f.SetSpooling(false)
	}
}

// mergeSpools splices every lane's window output into the parent tracer in
// ascending (time, key) order — the canonical order — then resets the
// spools. Scratch buffers are reused, so the steady state allocates
// nothing.
func (e *ShardedLoop) mergeSpools() {
	if e.tracer == nil {
		return
	}
	e.merged = e.merged[:0]
	for i := range e.cursor {
		e.cursor[i] = 0
	}
	for {
		best := -1
		var bat int64
		var bkey uint64
		for i, sp := range e.spools {
			if e.cursor[i] >= sp.Chunks() {
				continue
			}
			at, key, _ := sp.Chunk(e.cursor[i])
			if best < 0 || at < bat || (at == bat && key < bkey) {
				best, bat, bkey = i, at, key
			}
		}
		if best < 0 {
			break
		}
		_, _, b := e.spools[best].Chunk(e.cursor[best])
		e.merged = append(e.merged, b...)
		e.cursor[best]++
	}
	e.tracer.WriteRaw(e.merged)
	for _, sp := range e.spools {
		sp.Reset()
	}
}

//lint:shardruntime The worker pool below is the engine's one concurrency
// seam. It is structured, bounded, and invisible to the simulation:
// coordinator→worker handoff is a WaitGroup.Add plus a channel send,
// worker→coordinator is WaitGroup.Done, so each lane's state is owned by
// exactly one goroutine at a time and the executed event order is fixed by
// the window algebra above, not by scheduling. The determinism lint bans go
// statements everywhere else in the deterministic packages.

// startWorkers launches one worker per shard for the duration of a RunUntil
// leg. Worker s executes every rack lane r with ShardOf(r, shards) == s,
// ascending, for each window it receives.
func (e *ShardedLoop) startWorkers() {
	e.work = make([]chan Time, e.shards)
	for s := range e.work {
		ch := make(chan Time, 1)
		e.work[s] = ch
		e.exit.Add(1)
		go func(shard int) {
			defer e.exit.Done()
			for w := range ch {
				for r := shard; r < len(e.racks); r += e.shards {
					e.racks[r].runWindow(w)
				}
				e.wg.Done()
			}
		}(s)
	}
}

// stopWorkers shuts the pool down and waits for every worker to exit, so a
// finished RunUntil leaves no goroutines behind.
func (e *ShardedLoop) stopWorkers() {
	for _, ch := range e.work {
		close(ch)
	}
	e.exit.Wait()
	e.work = nil
}

// --- Loop engine hooks -------------------------------------------------

// head reports the firing time of the loop's earliest live event,
// discarding stopped entries. Coordinator-only.
func (l *Loop) head() (Time, bool) { return l.peek() }

// setNowAtLeast advances the clock to t without executing anything. The
// engine calls it only when it has proven no event earlier than t is
// pending on this lane.
func (l *Loop) setNowAtLeast(t Time) {
	if l.now < t {
		l.now = t
	}
}

// runInstant executes every pending event with time exactly t, including
// events those events schedule at t.
func (l *Loop) runInstant(t Time) {
	for {
		at, ok := l.peek()
		if !ok || at != t {
			return
		}
		l.Step()
	}
}

// runWindow executes every pending event with time strictly before w,
// marking the lane's spool with each event's (time, key) so the barrier
// merge can reconstruct the canonical order.
func (l *Loop) runWindow(w Time) {
	for {
		at, ok := l.peek()
		if !ok || at >= w {
			return
		}
		if l.spool != nil {
			e := l.events[0]
			l.spool.Mark(int64(e.at), e.seq)
		}
		l.Step()
	}
}
