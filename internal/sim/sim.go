// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network emulation (links, queues, endpoints) in this repository
// is driven by a single Loop. Time is virtual and advances only when events
// fire, so a multi-millisecond experiment over a 100-Gbps fabric runs in
// a fraction of a second of wall time and is exactly reproducible: two runs
// with the same seed produce identical event orders and therefore identical
// traces.
//
// # Allocation discipline
//
// The loop is the hottest path in the repository: a simulated optical week
// executes millions of events. Scheduling is therefore allocation-free after
// warmup (see DESIGN.md §10): timers live in a slab recycled through a
// loop-owned free list, the pending queue is a concrete 4-ary heap of small
// value entries (no interface boxing, no per-event pointers), and Timer
// handles are plain values carrying a generation counter so a stale handle
// to a recycled slot can never stop a later timer.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulations start at zero and
// never involve wall clocks.
type Time int64

// Dur is a span of virtual time in nanoseconds. It is deliberately a defined
// type distinct from time.Duration: wall-clock durations must never leak into
// the simulation, and the short name keeps the two visually un-confusable.
// The simtime lint check enforces the separation across the sim-boundary
// packages.
type Dur int64

// Convenient duration units.
const (
	Nanosecond  Dur = 1
	Microsecond     = 1000 * Nanosecond
	Millisecond     = 1000 * Microsecond
	Second          = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }

// Microseconds reports t as a floating-point number of microseconds,
// convenient for trace output matching the paper's µs-scaled axes.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", t.Microseconds())
}

// Microseconds reports d as a floating-point number of microseconds.
func (d Dur) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Dur) String() string {
	return fmt.Sprintf("%.3fus", d.Microseconds())
}

// Timer is a handle to a scheduled event. It is a small value (copy freely;
// the zero value is an inert handle on which every method is a no-op). A
// Timer may be stopped before it fires; stopping an already-fired or
// already-stopped timer is a no-op.
//
// Internally the handle names a slot in the loop's timer slab plus the
// generation that slot had when the event was scheduled. Slots are recycled
// once their event fires or its cancellation is compacted away, and each
// recycling bumps the generation, so a stale handle held across a firing can
// never observe — let alone stop — an unrelated later timer.
type Timer struct {
	l    *Loop
	at   Time
	slot int32
	gen  uint32
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing. Stopping is lazy: the slot is marked dead and the queue entry
// stays until it reaches the head or a compaction sweep removes it, so Stop
// is O(1) amortized.
func (t Timer) Stop() bool {
	l := t.l
	if l == nil || int(t.slot) >= len(l.slots) {
		return false
	}
	s := &l.slots[t.slot]
	if s.gen != t.gen || s.stopped {
		return false
	}
	s.stopped = true
	s.fn = nil
	l.nstopped++
	// Compact once cancelled timers outnumber live ones: each sweep clears
	// the counter, so the cost is O(1) amortized per Stop.
	if l.nstopped*2 > len(l.events) {
		l.compact()
	}
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	l := t.l
	if l == nil || int(t.slot) >= len(l.slots) {
		return false
	}
	s := &l.slots[t.slot]
	return s.gen == t.gen && !s.stopped
}

// When returns the virtual time at which the timer fires (or would have
// fired, if stopped).
func (t Timer) When() Time { return t.at }

// event is one pending-queue entry: the firing time, a scheduling sequence
// number for deterministic same-instant ordering, and the slab slot holding
// the callback. Entries are plain values — pushing and popping never boxes
// through an interface and never allocates.
type event struct {
	at   Time
	seq  uint64
	slot int32
}

// slot is one timer slab cell. gen counts recyclings; stopped marks a
// lazily-cancelled entry still sitting in the queue.
type slot struct {
	fn      func()
	gen     uint32
	stopped bool
}

// Loop is a discrete-event simulation loop. The zero value is not usable;
// construct with NewLoop.
type Loop struct {
	now      Time
	events   []event // 4-ary min-heap ordered by (at, seq)
	slots    []slot  // timer slab; events reference it by index
	free     []int32 // recycled slab slots
	nstopped int     // stopped entries still in events
	seq      uint64
	rng      *rand.Rand
	fired    uint64
	tracer   *trace.Tracer

	// laneKey is the loop's home-lane tag, pre-shifted so every scheduling
	// key is laneKey|seq. A standalone loop keeps lane 0, making its keys
	// exactly the legacy sequence numbers; sub-loops of a ShardedLoop each
	// get a distinct lane so keys are globally unique and same-instant
	// events merge in a fixed lane-major order (see shard.go).
	laneKey uint64
	// spool, when non-nil, collects this loop's trace bytes during a
	// sharded window; runWindow marks it with each event's (at, key) so the
	// engine can splice per-lane output back into one total order.
	spool *trace.Spool

	// PostEvent, when non-nil, runs after every executed event, once the
	// event's own callbacks (and anything they scheduled synchronously) have
	// returned. The invariant checker (internal/invariant) installs itself
	// here so it observes the simulation between events, never mid-update.
	// Costs one nil check per event when unset.
	PostEvent func()

	// Cooperative stop seam (SetStopCheck): stopFn is polled between events,
	// every stopEvery executed events; stopped latches once it returns true.
	stopFn    func() bool
	stopEvery uint64
	stopAt    uint64 // fired count at which stopFn is polled next
	stopped   bool
}

// DefaultStopEvery is the stop-check polling cadence used when SetStopCheck
// is called with every <= 0: infrequent enough that the predicted branch per
// event is free, frequent enough that a cancelled run stops within
// microseconds of wall time.
const DefaultStopEvery = 4096

// NewLoop returns a loop positioned at time zero whose random source is
// seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// SetTracer attaches a structured event tracer. With the CatSim category
// enabled the loop emits a "fire" event (payload: pending-queue depth) for
// every executed event — cheap but voluminous; leave CatSim masked off
// unless debugging scheduler behaviour.
func (l *Loop) SetTracer(t *trace.Tracer) { l.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (l *Loop) Tracer() *trace.Tracer { return l.tracer }

// Pending returns the number of scheduled events still in the queue. The
// count includes stopped-but-uncompacted timers (a stopped timer stays
// queued until its firing time passes or a compaction sweep runs), so it is
// a capacity signal, not an exact live count; use Live for the exact number
// of events that will fire.
func (l *Loop) Pending() int { return len(l.events) }

// Live returns the number of scheduled events that are still going to fire.
// It is O(1): the loop counts lazy-cancelled entries as they are stopped.
func (l *Loop) Live() int { return len(l.events) - l.nstopped }

// Fired returns the total number of events executed so far.
func (l *Loop) Fired() uint64 { return l.fired }

// less orders queue entries by (time, sequence). The sequence tie-break
// makes same-instant events fire in scheduling order, which keeps runs
// deterministic regardless of heap internals.
func (a event) less(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores heap order after appending the entry at index i.
//
//lint:hotpath runs on every event insertion
func (l *Loop) siftUp(i int) {
	h := l.events
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// siftDown restores heap order below index i.
//
//lint:hotpath runs on every event pop
func (l *Loop) siftDown(i int) {
	h := l.events
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if h[j].less(h[best]) {
				best = j
			}
		}
		if !h[best].less(e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}

// popHead removes the root entry. The caller has already read it.
//
//lint:hotpath runs once per fired event
func (l *Loop) popHead() {
	h := l.events
	n := len(h) - 1
	h[0] = h[n]
	l.events = h[:n]
	if n > 0 {
		l.siftDown(0)
	}
}

// allocSlot takes a slab cell from the free list (or grows the slab) and
// installs fn in it. Slab growth amortizes through append; the steady state
// recycles cells without touching the allocator.
//
//lint:hotpath runs on every timer arm
func (l *Loop) allocSlot(fn func()) int32 {
	if n := len(l.free); n > 0 {
		i := l.free[n-1]
		l.free = l.free[:n-1]
		s := &l.slots[i]
		s.fn = fn
		s.stopped = false
		return i
	}
	l.slots = append(l.slots, slot{fn: fn, gen: 1})
	return int32(len(l.slots) - 1)
}

// freeSlot recycles a slab cell: the callback is dropped (so the loop never
// retains a dead closure) and the generation advances, invalidating every
// outstanding handle to the old timer.
//
//lint:hotpath runs once per fired or stopped event
func (l *Loop) freeSlot(i int32) {
	s := &l.slots[i]
	s.fn = nil
	s.stopped = false
	s.gen++
	l.free = append(l.free, i)
}

// compact sweeps stopped entries out of the queue in one pass and restores
// the heap property bottom-up. Relative order of the surviving entries is
// irrelevant — the heap is rebuilt — and (at, seq) ordering makes the result
// deterministic.
func (l *Loop) compact() {
	kept := l.events[:0]
	for _, e := range l.events {
		if l.slots[e.slot].stopped {
			l.freeSlot(e.slot)
			continue
		}
		kept = append(kept, e)
	}
	l.events = kept
	l.nstopped = 0
	for i := (len(kept) - 2) >> 2; i >= 0; i-- {
		l.siftDown(i)
	}
}

// schedulePastPanic lives out of line so At's fast path carries none of the
// panic message's allocations.
//
//go:noinline
func (l *Loop) schedulePastPanic(at Time) {
	panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
}

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it always indicates a logic error in the caller.
//
//lint:hotpath every timer arm goes through here
func (l *Loop) At(at Time, fn func()) Timer {
	if at < l.now {
		l.schedulePastPanic(at)
	}
	si := l.allocSlot(fn)
	l.events = append(l.events, event{at: at, seq: l.laneKey | l.seq, slot: si})
	l.seq++
	l.siftUp(len(l.events) - 1)
	return Timer{l: l, at: at, slot: si, gen: l.slots[si].gen}
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
//
//lint:hotpath the common timer-arm entry point
func (l *Loop) After(d Dur, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// peek discards stopped entries from the head of the queue and reports the
// firing time of the earliest live event. It is the single place stopped
// timers are skipped, shared by Step and RunUntil.
//
//lint:hotpath runs before every event fire
func (l *Loop) peek() (Time, bool) {
	for len(l.events) > 0 {
		e := l.events[0]
		if !l.slots[e.slot].stopped {
			return e.at, true
		}
		l.nstopped--
		l.freeSlot(e.slot)
		l.popHead()
	}
	return 0, false
}

// Step executes the next pending event, advancing the clock to its time.
// It reports false when no events remain.
//
//lint:hotpath the event loop's inner iteration
func (l *Loop) Step() bool {
	if _, ok := l.peek(); !ok {
		return false
	}
	e := l.events[0]
	fn := l.slots[e.slot].fn
	// Recycle the slot before running the callback: the firing timer is
	// spent, and anything fn schedules may immediately reuse the cell (under
	// a fresh generation, so the fired handle stays inert).
	l.freeSlot(e.slot)
	l.popHead()
	l.now = e.at
	l.fired++
	if l.tracer.Enabled(trace.CatSim) {
		l.tracer.Emit(trace.CatSim, int64(l.now), "fire", -1, -1,
			float64(len(l.events)), float64(l.fired), "")
	}
	fn()
	if l.PostEvent != nil {
		l.PostEvent()
	}
	return true
}

// SetStopCheck installs a cooperative cancellation seam: fn is polled
// between events — after every `every` executed events (DefaultStopEvery
// when every <= 0) — and once it returns true the loop latches into the
// stopped state and Run/RunUntil return without executing further events.
//
// The seam is deliberately OUTSIDE the determinism boundary: fn typically
// reads a deadline or an atomic flag written by another goroutine. That is
// safe for replayability because fn runs between events, never observes or
// mutates simulation state (clock, RNG, queue), and only decides whether
// the next event executes at all — so a stopped run's executed-event
// sequence (and therefore its trace) is a byte-identical prefix of the
// unstopped run's. fn must not touch the loop or anything scheduled on it.
//
// Passing a nil fn removes the seam (and clears a latched stop).
func (l *Loop) SetStopCheck(every int, fn func() bool) {
	if fn == nil {
		l.stopFn, l.stopEvery, l.stopped = nil, 0, false
		return
	}
	if every <= 0 {
		every = DefaultStopEvery
	}
	l.stopFn = fn
	l.stopEvery = uint64(every)
	l.stopAt = l.fired + l.stopEvery
}

// Stopped reports whether a stop check has latched: the loop refused to
// execute further events and Run/RunUntil returned early. It stays true
// until SetStopCheck is called again.
func (l *Loop) Stopped() bool { return l.stopped }

// shouldStop polls the stop seam when it is due. Called between events only.
func (l *Loop) shouldStop() bool {
	if l.stopped {
		return true
	}
	if l.stopFn == nil || l.fired < l.stopAt {
		return false
	}
	l.stopAt = l.fired + l.stopEvery
	if l.stopFn() {
		l.stopped = true
	}
	return l.stopped
}

// Run executes events until none remain (or a stop check latches).
func (l *Loop) Run() {
	for !l.shouldStop() && l.Step() {
	}
}

// RunUntil executes events with time ≤ end and then sets the clock to end.
// Events scheduled after end remain pending. When a stop check latches the
// loop returns immediately with the clock left at the last executed event,
// not advanced to end.
func (l *Loop) RunUntil(end Time) {
	for {
		if l.shouldStop() {
			return
		}
		at, ok := l.peek()
		if !ok || at > end {
			break
		}
		l.Step()
	}
	if l.now < end {
		l.now = end
	}
}
