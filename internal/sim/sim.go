// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network emulation (links, queues, endpoints) in this repository
// is driven by a single Loop. Time is virtual and advances only when events
// fire, so a multi-millisecond experiment over a 100-Gbps fabric runs in
// a fraction of a second of wall time and is exactly reproducible: two runs
// with the same seed produce identical event orders and therefore identical
// traces.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulations start at zero and
// never involve wall clocks.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports t as a floating-point number of microseconds,
// convenient for trace output matching the paper's µs-scaled axes.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string {
	return fmt.Sprintf("%.3fus", t.Microseconds())
}

// Microseconds reports d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	return fmt.Sprintf("%.3fus", d.Microseconds())
}

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	at      Time
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
	index   int // position in the heap, -1 once removed
}

// Stop cancels the timer. It reports whether the call prevented the timer
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.fired {
		return false
	}
	t.stopped = true
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && !t.stopped && !t.fired }

// When returns the virtual time at which the timer fires (or would have
// fired, if stopped).
func (t *Timer) When() Time { return t.at }

// eventHeap orders timers by (time, sequence). The sequence tie-break makes
// same-instant events fire in scheduling order, which keeps runs
// deterministic regardless of heap internals.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Loop is a discrete-event simulation loop. The zero value is not usable;
// construct with NewLoop.
type Loop struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	tracer *trace.Tracer

	// PostEvent, when non-nil, runs after every executed event, once the
	// event's own callbacks (and anything they scheduled synchronously) have
	// returned. The invariant checker (internal/invariant) installs itself
	// here so it observes the simulation between events, never mid-update.
	// Costs one nil check per event when unset.
	PostEvent func()
}

// NewLoop returns a loop positioned at time zero whose random source is
// seeded with seed.
func NewLoop(seed int64) *Loop {
	return &Loop{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Rand returns the loop's deterministic random source.
func (l *Loop) Rand() *rand.Rand { return l.rng }

// SetTracer attaches a structured event tracer. With the CatSim category
// enabled the loop emits a "fire" event (payload: pending-queue depth) for
// every executed event — cheap but voluminous; leave CatSim masked off
// unless debugging scheduler behaviour.
func (l *Loop) SetTracer(t *trace.Tracer) { l.tracer = t }

// Tracer returns the attached tracer (nil when tracing is disabled).
func (l *Loop) Tracer() *trace.Tracer { return l.tracer }

// Pending returns the number of scheduled events still in the queue. The
// count includes stopped-but-unpopped timers (a stopped timer stays queued
// until its firing time passes), so it is a capacity signal, not an exact
// live count; use Live for the exact number of events that will fire.
func (l *Loop) Pending() int { return len(l.events) }

// Live returns the number of scheduled events that are still going to fire,
// compacting stopped-but-unpopped timers out of the queue as a side effect.
// It is O(n) in the worst case, amortized by the compaction: use it for
// periodic queue-depth metrics, not per-event bookkeeping.
func (l *Loop) Live() int {
	for i := 0; i < len(l.events); {
		if l.events[i].stopped {
			heap.Remove(&l.events, i)
		} else {
			i++
		}
	}
	return len(l.events)
}

// Fired returns the total number of events executed so far.
func (l *Loop) Fired() uint64 { return l.fired }

// At schedules fn to run at absolute time at. Scheduling in the past (before
// Now) panics: it always indicates a logic error in the caller.
func (l *Loop) At(at Time, fn func()) *Timer {
	if at < l.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, l.now))
	}
	t := &Timer{at: at, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.events, t)
	return t
}

// After schedules fn to run d after the current time. Negative d is clamped
// to zero.
func (l *Loop) After(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports false when no events remain.
func (l *Loop) Step() bool {
	for len(l.events) > 0 {
		t := heap.Pop(&l.events).(*Timer)
		if t.stopped {
			continue
		}
		l.now = t.at
		t.fired = true
		l.fired++
		if l.tracer.Enabled(trace.CatSim) {
			l.tracer.Emit(trace.CatSim, int64(l.now), "fire", -1, -1,
				float64(len(l.events)), float64(l.fired), "")
		}
		t.fn()
		if l.PostEvent != nil {
			l.PostEvent()
		}
		return true
	}
	return false
}

// Run executes events until none remain.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with time ≤ end and then sets the clock to end.
// Events scheduled after end remain pending.
func (l *Loop) RunUntil(end Time) {
	for len(l.events) > 0 {
		// Peek at the earliest live event.
		t := l.events[0]
		if t.stopped {
			heap.Pop(&l.events)
			continue
		}
		if t.at > end {
			break
		}
		l.Step()
	}
	if l.now < end {
		l.now = end
	}
}
