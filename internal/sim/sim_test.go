package sim

import (
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

func TestLoopOrdering(t *testing.T) {
	l := NewLoop(1)
	var order []int
	l.At(30, func() { order = append(order, 3) })
	l.At(10, func() { order = append(order, 1) })
	l.At(20, func() { order = append(order, 2) })
	l.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if l.Now() != 30 {
		t.Fatalf("clock = %v, want 30", l.Now())
	}
}

func TestLoopSameInstantFIFO(t *testing.T) {
	l := NewLoop(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		l.At(5, func() { order = append(order, i) })
	}
	l.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO at %d: %v", i, order[:i+1])
		}
	}
}

func TestLoopNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	var hits int
	l.At(10, func() {
		l.After(5, func() { hits++ })
		l.After(0, func() { hits++ })
	})
	l.Run()
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if l.Now() != 15 {
		t.Fatalf("clock = %v, want 15", l.Now())
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.At(10, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	l.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	l := NewLoop(1)
	tm := l.At(10, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Active() {
		t.Fatal("fired timer should not be active")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	l := NewLoop(1)
	l.At(10, func() {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	l.At(5, func() {})
}

func TestRunUntil(t *testing.T) {
	l := NewLoop(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		l.At(at, func() { fired = append(fired, at) })
	}
	l.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if l.Now() != 25 {
		t.Fatalf("clock = %v, want 25", l.Now())
	}
	l.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
	if l.Now() != 100 {
		t.Fatalf("clock = %v, want 100", l.Now())
	}
}

func TestRunUntilSkipsStopped(t *testing.T) {
	l := NewLoop(1)
	tm := l.At(10, func() { t.Fatal("stopped timer fired") })
	tm.Stop()
	l.RunUntil(50)
	if l.Now() != 50 {
		t.Fatalf("clock = %v, want 50", l.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		l := NewLoop(42)
		var out []int64
		var tick func()
		tick = func() {
			out = append(out, int64(l.Now()), l.Rand().Int63n(1000))
			if len(out) < 200 {
				l.After(Dur(1+l.Rand().Int63n(50)), tick)
			}
		}
		l.After(0, tick)
		l.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTransmitTime(t *testing.T) {
	cases := []struct {
		rate  Rate
		bytes int
		want  Dur
	}{
		{10 * Gbps, 1250, 1 * Microsecond}, // 10Kb at 10Gbps = 1us
		{100 * Gbps, 12500, 1 * Microsecond},
		{1 * Gbps, 125, 1 * Microsecond},
		{10 * Gbps, 9000, Dur(7200)}, // jumbo frame: 72000 bits / 10G = 7.2us? no: 7200ns
		{0, 1000, 0},
		{10 * Gbps, 0, 0},
	}
	for _, c := range cases {
		if got := c.rate.TransmitTime(c.bytes); got != c.want {
			t.Errorf("TransmitTime(%v, %d) = %v, want %v", c.rate, c.bytes, got, c.want)
		}
	}
}

func TestBytesIn(t *testing.T) {
	if got := (10 * Gbps).BytesIn(100 * Microsecond); got != 125000 {
		t.Fatalf("BytesIn = %d, want 125000 (10Gbps * 100us)", got)
	}
	if got := (10 * Gbps).BytesIn(-1); got != 0 {
		t.Fatalf("BytesIn negative duration = %d, want 0", got)
	}
}

// Property: TransmitTime is additive-monotone — more bytes never take less
// time, and the time for a+b bytes is at least the time for a plus for b
// minus rounding of one nanosecond each.
func TestTransmitTimeMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		r := 10 * Gbps
		ta := r.TransmitTime(int(a))
		tb := r.TransmitTime(int(b))
		tab := r.TransmitTime(int(a) + int(b))
		if tab < ta || tab < tb {
			return false
		}
		return tab >= ta+tb-2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BytesIn and TransmitTime are approximate inverses.
func TestRateRoundTrip(t *testing.T) {
	f := func(kb uint16) bool {
		bytes := int(kb)*10 + 64
		r := 40 * Gbps
		d := r.TransmitTime(bytes)
		back := r.BytesIn(d)
		diff := back - int64(bytes)
		return diff >= -8 && diff <= 8 // at most one rounding quantum of 5 bytes/ns
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateString(t *testing.T) {
	if s := (10 * Gbps).String(); s != "10Gbps" {
		t.Errorf("String = %q", s)
	}
	if s := (500 * Mbps).String(); s != "500Mbps" {
		t.Errorf("String = %q", s)
	}
}

func TestTimeHelpers(t *testing.T) {
	ts := Time(1500)
	if ts.Add(500) != 2000 {
		t.Fatal("Add")
	}
	if Time(2000).Sub(ts) != 500 {
		t.Fatal("Sub")
	}
	if (100 * Microsecond).Microseconds() != 100 {
		t.Fatal("Dur.Microseconds")
	}
	if Time(100*Microsecond).Microseconds() != 100 {
		t.Fatal("Time.Microseconds")
	}
}

func TestLiveAndStopCompaction(t *testing.T) {
	l := NewLoop(1)
	var keep []Timer
	for i := 0; i < 10; i++ {
		keep = append(keep, l.At(Time(100+i), func() {}))
	}
	// Stop 5 of 10: cancelled timers do not yet outnumber live ones, so the
	// queue keeps the lazy-deleted entries and Live discounts them in O(1).
	for i := 0; i < 5; i++ {
		keep[i].Stop()
	}
	if p := l.Pending(); p != 10 {
		t.Fatalf("Pending = %d, want 10", p)
	}
	if live := l.Live(); live != 5 {
		t.Fatalf("Live = %d, want 5", live)
	}
	// The sixth Stop tips cancelled past half the queue and triggers the
	// compaction sweep: Pending drops to the live count.
	keep[5].Stop()
	if p := l.Pending(); p != 4 {
		t.Fatalf("Pending after compaction = %d, want 4", p)
	}
	if live := l.Live(); live != 4 {
		t.Fatalf("Live after compaction = %d, want 4", live)
	}
	// The surviving timers still fire in order.
	fired := 0
	l.At(99, func() { fired++ })
	l.Run()
	if fired != 1 || l.Now() != 109 {
		t.Fatalf("fired=%d now=%v", fired, l.Now())
	}
	if l.Live() != 0 {
		t.Fatalf("Live after drain = %d", l.Live())
	}
}

// TestStaleTimerHandle is the generation-counter regression test: once a
// timer fires, its slab slot may be reused by a later timer, and the stale
// handle must neither report the new timer as its own nor be able to stop
// it.
func TestStaleTimerHandle(t *testing.T) {
	l := NewLoop(1)
	a := l.At(10, func() {})
	l.Run()
	if a.Active() {
		t.Fatal("fired timer reports active")
	}
	// The next timer recycles a's slot (single-slot slab).
	fired := false
	b := l.At(20, func() { fired = true })
	if a.Stop() {
		t.Fatal("stale handle stopped a recycled timer")
	}
	if a.Active() {
		t.Fatal("stale handle reports the recycled slot as its own")
	}
	if !b.Active() {
		t.Fatal("fresh timer should be active")
	}
	l.Run()
	if !fired {
		t.Fatal("recycled timer did not fire")
	}

	// Same for a stopped-and-compacted timer: force compaction by stopping
	// past half the queue, then check the stale handles stay inert.
	var old []Timer
	for i := 0; i < 8; i++ {
		old = append(old, l.At(l.Now()+Time(100+i), func() {}))
	}
	for i := 0; i < 5; i++ {
		old[i].Stop() // the 5th Stop compacts (5*2 > 8)
	}
	refill := make([]Timer, 5)
	for i := range refill {
		refill[i] = l.At(l.Now()+Time(200+i), func() {})
	}
	for i := 0; i < 5; i++ {
		if old[i].Stop() || old[i].Active() {
			t.Fatalf("stale handle %d still bites after compaction", i)
		}
	}
	for i, tm := range refill {
		if !tm.Active() {
			t.Fatalf("refill timer %d not active", i)
		}
	}
	l.Run()
}

// TestSameInstantAfterCompaction checks the (at, seq) ordering survives the
// compaction rebuild: same-instant events still fire in scheduling order.
func TestSameInstantAfterCompaction(t *testing.T) {
	l := NewLoop(1)
	var order []int
	var cancel []Timer
	for i := 0; i < 32; i++ {
		i := i
		cancel = append(cancel, l.At(50, func() { order = append(order, i) }))
	}
	// Cancel all odd timers; the sweep triggers partway through.
	for i := 1; i < 32; i += 2 {
		cancel[i].Stop()
	}
	l.Run()
	if len(order) != 16 {
		t.Fatalf("fired %d events, want 16", len(order))
	}
	for j, v := range order {
		if v != 2*j {
			t.Fatalf("order[%d] = %d, want %d (FIFO broken by compaction)", j, v, 2*j)
		}
	}
}

func TestLoopTracerEmitsFireEvents(t *testing.T) {
	l := NewLoop(1)
	// A nil tracer must be safe (the default); then attach a ring tracer
	// and count fire events.
	l.SetTracer(nil)
	l.After(1, func() {})
	l.Run()

	tr := trace.NewRing(8, trace.CatSim)
	l.SetTracer(tr)
	l.After(1, func() {})
	l.After(2, func() {})
	l.Run()
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("fire events = %d, want 2", got)
	}
	for _, ev := range tr.Events() {
		if ev.Cat != "sim" || ev.Name != "fire" {
			t.Fatalf("unexpected event %+v", ev)
		}
	}
}

// chainLoop builds a loop with a self-rescheduling event chain so Run would
// execute exactly n events, recording each firing's (index, time).
func chainLoop(n int) (*Loop, *[]Time) {
	l := NewLoop(1)
	fired := &[]Time{}
	var step func()
	step = func() {
		*fired = append(*fired, l.Now())
		if len(*fired) < n {
			l.After(Dur(1+l.Rand().Intn(3)), step)
		}
	}
	l.After(1, step)
	return l, fired
}

func TestStopCheckLatches(t *testing.T) {
	l, fired := chainLoop(100)
	polls := 0
	l.SetStopCheck(10, func() bool { polls++; return polls >= 2 })
	l.Run()
	if !l.Stopped() {
		t.Fatal("loop should report Stopped after the check returned true")
	}
	// Polled at fired=10 (false) and fired=20 (true): exactly 20 events ran.
	if len(*fired) != 20 {
		t.Fatalf("executed %d events, want 20", len(*fired))
	}
	// A latched stop refuses further work without re-polling.
	before := polls
	l.Run()
	if len(*fired) != 20 || polls != before {
		t.Fatalf("latched loop ran again: %d events, %d polls", len(*fired), polls)
	}
	// Clearing the seam resumes.
	l.SetStopCheck(0, nil)
	if l.Stopped() {
		t.Fatal("nil stop check should clear the latch")
	}
	l.Run()
	if len(*fired) != 100 {
		t.Fatalf("resumed run executed %d events, want 100", len(*fired))
	}
}

// TestStopCheckPrefixDeterminism is the seam's core contract: a stopped run's
// executed-event sequence is a byte-identical prefix of the unstopped run's.
func TestStopCheckPrefixDeterminism(t *testing.T) {
	full, fullFired := chainLoop(200)
	full.Run()

	part, partFired := chainLoop(200)
	part.SetStopCheck(7, func() bool { return len(*partFired) >= 63 })
	part.Run()
	if !part.Stopped() {
		t.Fatal("partial run should have stopped")
	}
	if len(*partFired) >= len(*fullFired) {
		t.Fatalf("partial run executed %d of %d events — not a strict prefix", len(*partFired), len(*fullFired))
	}
	for i, ts := range *partFired {
		if (*fullFired)[i] != ts {
			t.Fatalf("event %d fired at %v in the stopped run, %v in the full run", i, ts, (*fullFired)[i])
		}
	}
	if part.Now() != (*partFired)[len(*partFired)-1] {
		t.Fatalf("stopped clock = %v, want last executed event time %v", part.Now(), (*partFired)[len(*partFired)-1])
	}
}

func TestStopCheckRunUntilDoesNotAdvanceClock(t *testing.T) {
	l, fired := chainLoop(100)
	l.SetStopCheck(10, func() bool { return true })
	l.RunUntil(1_000_000)
	if !l.Stopped() {
		t.Fatal("RunUntil should honor the stop check")
	}
	if len(*fired) != 10 {
		t.Fatalf("executed %d events, want 10", len(*fired))
	}
	if l.Now() == 1_000_000 {
		t.Fatal("stopped RunUntil must not advance the clock to end")
	}
}

func TestStopCheckNeverPolledBeforeCadence(t *testing.T) {
	l, _ := chainLoop(5)
	polled := false
	l.SetStopCheck(1000, func() bool { polled = true; return true })
	l.Run()
	if polled {
		t.Fatal("stop check polled before 1000 events fired")
	}
	if l.Stopped() {
		t.Fatal("loop stopped without the check returning true")
	}
}
