package sim_test

import (
	"bytes"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// fuzzMsg is one cross-lane message in the fuzz harness's miniature dock.
type fuzzMsg struct {
	due sim.Time
	val int64
}

// fuzzDock reimplements the netem dock's staging discipline against the raw
// engine API, so the fuzzer exercises Defer/flush/arm directly: the source
// lane stages messages due at least one lookahead in the future, the barrier
// flush moves them onto the destination lane, and a stale due (already in
// the destination's past) means a lane executed beyond its safe horizon.
type fuzzDock struct {
	t        *testing.T
	e        *sim.ShardedLoop
	src, dst int
	stage    []fuzzMsg
	flushFn  func()
	onRecv   func(m fuzzMsg)
}

// add stages a message on the source lane (source lane only).
func (d *fuzzDock) add(val int64, due sim.Time) {
	if len(d.stage) == 0 {
		d.e.Defer(d.src, d.dst, d.flushFn)
	}
	d.stage = append(d.stage, fuzzMsg{due: due, val: val})
}

// flush runs on the coordinator at a barrier. Every staged due must still be
// ahead of the destination clock — the conservative-lookahead guarantee. A
// violation here is exactly "some lane executed past its safe horizon".
func (d *fuzzDock) flush() {
	dst := d.e.RackLoop(d.dst)
	for _, m := range d.stage {
		if m.due < dst.Now() {
			d.t.Errorf("lookahead violation: message %d->%d due %d arrives with dst clock already at %d",
				d.src, d.dst, m.due, dst.Now())
			continue
		}
		m := m
		dst.At(m.due, func() { d.onRecv(m) })
	}
	d.stage = d.stage[:0]
}

// runFuzzEngine drives one synthetic scenario: a control lane ticking with
// drifting periods (the schedule stand-in), per-rack event chains with
// seeded random gaps, and ring cross-lane messages through fuzz docks. It
// returns the merged JSONL trace.
func runFuzzEngine(t *testing.T, seed int64, racks, shards int, look, period sim.Dur, end sim.Time) []byte {
	var buf bytes.Buffer
	e := sim.NewSharded(seed, racks, shards)
	e.SetLookahead(look)
	look = e.Lookahead() // after clamping
	tr := trace.New(&buf, trace.CatAll)
	e.SetTracer(tr)

	docks := make([]*fuzzDock, racks)
	for r := 0; r < racks; r++ {
		r := r
		dst := (r + 1) % racks
		d := &fuzzDock{t: t, e: e, src: r, dst: dst}
		d.flushFn = d.flush
		dl := e.RackLoop(dst)
		d.onRecv = func(m fuzzMsg) {
			if now := dl.Now(); now != m.due {
				t.Errorf("message %d->%d due %d fired at %d", r, dst, m.due, now)
			}
			dl.Tracer().Emit(trace.CatSim, int64(dl.Now()), "fuzz.recv", r, dst, float64(m.val), 0, "")
			// Couple the message into the destination's dynamics, so a
			// horizon or ordering bug changes its whole downstream schedule.
			dl.After(sim.Dur(m.val%int64(look))+1, func() {})
		}
		docks[r] = d
	}

	for r := 0; r < racks; r++ {
		r := r
		rk := e.RackLoop(r)
		n := int64(0)
		var step func()
		step = func() {
			n++
			rk.Tracer().Emit(trace.CatSim, int64(rk.Now()), "fuzz.step", r, 0, float64(n), 0, "")
			if n%5 == 0 {
				extra := sim.Dur(rk.Rand().Int63n(int64(look)))
				docks[r].add(n, rk.Now().Add(look+extra))
			}
			rk.After(sim.Dur(rk.Rand().Int63n(int64(period)))+1, step)
		}
		rk.After(sim.Dur(r)+1, step)
	}

	// Control lane: drifting ticks. At every tick the engine has synced all
	// lane clocks to the barrier instant; a lane ahead of the control clock
	// would mean it executed past the barrier.
	ctl := e.Control()
	var tick func()
	tick = func() {
		now := ctl.Now()
		for r := 0; r < racks; r++ {
			if rn := e.RackLoop(r).Now(); rn != now {
				t.Errorf("barrier at %d: rack %d clock %d (lane ran past its horizon or was not synced)", now, r, rn)
			}
		}
		ctl.Tracer().Emit(trace.CatSim, int64(now), "fuzz.tick", -1, 0, 0, 0, "")
		ctl.After(period+sim.Dur(ctl.Rand().Int63n(int64(period))), tick)
	}
	ctl.After(period, tick)

	e.RunUntil(end)
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// FuzzShardLookahead fuzzes the lookahead/barrier computation over rack
// counts, propagation delays (the lookahead), control cadences with drift,
// and worker counts, asserting that no lane ever executes past its safe
// horizon (stale cross-lane dues, desynced barrier clocks) and that the
// merged event order is total: nondecreasing timestamps with a deterministic
// tie order, proven by byte-identity against the single-worker execution.
func FuzzShardLookahead(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(2), uint16(19), uint16(50))
	f.Add(int64(7), uint8(8), uint8(4), uint16(19), uint16(200))
	f.Add(int64(3), uint8(3), uint8(8), uint16(1), uint16(7))
	f.Add(int64(42), uint8(5), uint8(3), uint16(100), uint16(13))
	f.Fuzz(func(t *testing.T, seed int64, racks, shards uint8, lookUs, periodUs uint16) {
		nr := 2 + int(racks%7)  // 2..8 racks
		ns := 1 + int(shards%8) // 1..8 workers
		look := sim.Dur(1+int(lookUs%100)) * sim.Microsecond
		period := sim.Dur(1+int(periodUs%200)) * sim.Microsecond
		end := sim.Time(40 * period)

		seq := runFuzzEngine(t, seed, nr, 1, look, period, end)
		got := runFuzzEngine(t, seed, nr, ns, look, period, end)
		if len(seq) == 0 {
			t.Fatal("no trace events")
		}
		if !bytes.Equal(seq, got) {
			t.Fatalf("merge order not total: %d-worker trace diverges from sequential (%d vs %d bytes)",
				ns, len(got), len(seq))
		}
		// The merged stream must be globally time-ordered: the engine merges
		// window output in (time, key) order and control records sit exactly
		// at barriers.
		var ev trace.Event
		last := int64(-1)
		for _, line := range bytes.Split(bytes.TrimSpace(seq), []byte("\n")) {
			if err := trace.ParseLine(line, &ev); err != nil {
				t.Fatalf("bad trace line %q: %v", line, err)
			}
			if ev.TS < last {
				t.Fatalf("merge order regressed: event at ts=%d after ts=%d", ev.TS, last)
			}
			last = ev.TS
		}
	})
}
