package sim

import "fmt"

// Rate is a link bandwidth in bits per second.
type Rate int64

// Convenient rate units.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// TransmitTime returns the serialization delay of a payload of the given
// size at rate r. A zero or negative rate means "infinitely fast" and
// returns 0 — used for host-to-ToR links that are never the bottleneck.
func (r Rate) TransmitTime(bytes int) Dur {
	if r <= 0 || bytes <= 0 {
		return 0
	}
	bits := int64(bytes) * 8
	// ns = bits / (bits/s) * 1e9, computed without overflow for any
	// realistic packet size and rate.
	return Dur(bits * int64(Second) / int64(r))
}

// BytesIn returns how many bytes can be serialized in d at rate r.
func (r Rate) BytesIn(d Dur) int64 {
	if r <= 0 || d <= 0 {
		return 0
	}
	return int64(r) / 8 * int64(d) / int64(Second)
}

func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}
