// Package invariant is the runtime consistency checker for faulted runs: it
// hooks the simulation loop's post-event point and revalidates every watched
// tcp.Conn (scoreboard/sequence/pipe-counter invariants) and rdcn.Network
// (VOQ accounting) after each executed event, between events — never
// mid-update, when transient inconsistency is legal.
//
// The checkers themselves live next to the state they validate
// (tcp.Conn.CheckInvariants, rdcn.Network.CheckInvariants); this package
// only drives them and turns the first failure per site into a recorded
// Violation with the virtual timestamp and trace context needed to replay
// it: re-run with the same seeds and a trace writer, and the violation's
// event is the one right before the CatFault "invariant_violation" record.
package invariant

import (
	"fmt"
	"io"

	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Violation is one recorded invariant failure.
type Violation struct {
	At   sim.Time
	Site string // "conn[<flow>]" or "network"
	Err  error
}

func (v Violation) String() string {
	return fmt.Sprintf("%v %s: %v", v.At, v.Site, v.Err)
}

type watchedConn struct {
	conn   *tcp.Conn
	flow   int
	failed bool
}

type watchedNet struct {
	net    *rdcn.Network
	failed bool
}

type watchedFunc struct {
	site   string
	flow   int
	fn     func() error
	failed bool
}

// Checker validates watched objects after every simulation event. Construct
// with New (which installs the loop hook), then register sites with
// WatchConn/WatchNetwork at any point.
type Checker struct {
	loop    *sim.Loop
	tracer  *trace.Tracer
	metrics *trace.Registry
	flight  *trace.Flight
	dumpTo  io.Writer

	conns []watchedConn
	nets  []watchedNet
	funcs []watchedFunc

	// Every checks only every n-th event when > 1 (a throttle for very long
	// runs; the default 1 checks after every event).
	Every int

	events     uint64
	checks     uint64
	violations []Violation
	flightSnap []trace.Event
}

// New returns a checker hooked into loop's post-event point. An existing
// PostEvent hook is chained, not clobbered.
func New(loop *sim.Loop) *Checker {
	c := &Checker{loop: loop, Every: 1}
	prev := loop.PostEvent
	loop.PostEvent = func() {
		if prev != nil {
			prev()
		}
		c.step()
	}
	return c
}

// SetTracer attaches a tracer; violations emit trace.CatFault events.
func (c *Checker) SetTracer(tr *trace.Tracer) { c.tracer = tr }

// SetMetrics attaches a registry; violations bump "invariant.violations".
func (c *Checker) SetMetrics(reg *trace.Registry) { c.metrics = reg }

// SetFlight attaches a flight recorder: the first violation snapshots its
// ring (see FlightSnapshot) and, when w is non-nil, dumps it as JSONL with a
// banner line — the post-mortem view of the events leading into the failure.
func (c *Checker) SetFlight(f *trace.Flight, w io.Writer) {
	c.flight = f
	c.dumpTo = w
}

// FlightSnapshot returns the flight recorder's contents captured at the
// first violation (nil when no violation occurred or no recorder attached).
func (c *Checker) FlightSnapshot() []trace.Event { return c.flightSnap }

// WatchConn registers a connection; flow labels its violations.
func (c *Checker) WatchConn(conn *tcp.Conn, flow int) {
	c.conns = append(c.conns, watchedConn{conn: conn, flow: flow})
}

// WatchNetwork registers a network.
func (c *Checker) WatchNetwork(n *rdcn.Network) {
	c.nets = append(c.nets, watchedNet{net: n})
}

// WatchFunc registers an arbitrary invariant: fn runs on every sweep and a
// non-nil return is a violation at site (flow labels it; pass -1 for
// non-flow sites). Like the built-in sites, a failed func is latched out of
// further checking. This is the seam for experiment-specific invariants the
// core does not know about.
func (c *Checker) WatchFunc(site string, flow int, fn func() error) {
	c.funcs = append(c.funcs, watchedFunc{site: site, flow: flow, fn: fn})
}

// Checks reports how many post-event sweeps have run.
func (c *Checker) Checks() uint64 { return c.checks }

// Violations returns the recorded violations — at most one per watched
// site, because a failed site is latched out of further checking (a broken
// invariant persists across events and would otherwise flood the record
// with copies of itself).
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns the first violation as an error, or nil.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	v := c.violations[0]
	return fmt.Errorf("invariant: %s at %v: %w (%d total)", v.Site, v.At, v.Err, len(c.violations))
}

func (c *Checker) step() {
	c.events++
	if c.Every > 1 && c.events%uint64(c.Every) != 0 {
		return
	}
	c.checks++
	for i := range c.conns {
		w := &c.conns[i]
		if w.failed {
			continue
		}
		if err := w.conn.CheckInvariants(); err != nil {
			w.failed = true
			c.report(fmt.Sprintf("conn[%d]", w.flow), w.flow, err)
		}
	}
	for i := range c.nets {
		w := &c.nets[i]
		if w.failed {
			continue
		}
		if err := w.net.CheckInvariants(); err != nil {
			w.failed = true
			c.report("network", -1, err)
		}
	}
	for i := range c.funcs {
		w := &c.funcs[i]
		if w.failed {
			continue
		}
		if err := w.fn(); err != nil {
			w.failed = true
			c.report(w.site, w.flow, err)
		}
	}
}

func (c *Checker) report(site string, flow int, err error) {
	now := c.loop.Now()
	c.violations = append(c.violations, Violation{At: now, Site: site, Err: err})
	c.metrics.Add("invariant.violations", 1)
	if c.tracer.Enabled(trace.CatFault) {
		c.tracer.Emit(trace.CatFault, int64(now), "invariant_violation",
			flow, -1, float64(len(c.violations)), 0, err.Error())
	}
	if c.flight != nil && c.flightSnap == nil {
		// First violation: freeze the post-mortem view before further events
		// push the interesting records out of the ring.
		c.flightSnap = c.flight.Events()
		if c.dumpTo != nil {
			fmt.Fprintf(c.dumpTo, "== flight recorder dump (invariant violation, %s at %v): last %d events ==\n",
				site, now, c.flight.Len())
			_ = c.flight.Dump(c.dumpTo) // best-effort post-mortem
		}
	}
}
