package invariant

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// run drives a bare network (schedule transitions, notifications) for 1 ms
// with a checker configured by prep, and returns the checker.
func run(t *testing.T, prep func(*sim.Loop, *Checker)) *Checker {
	t.Helper()
	loop := sim.NewLoop(1)
	net, err := rdcn.New(loop, rdcn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(loop)
	prep(loop, c)
	c.WatchNetwork(net)
	end := sim.Time(1 * sim.Millisecond)
	net.Start(end)
	loop.RunUntil(end)
	return c
}

func TestCheckerSweepsEveryEvent(t *testing.T) {
	c := run(t, func(*sim.Loop, *Checker) {})
	if c.Checks() == 0 {
		t.Fatal("checker never swept")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy network reported violation: %v", err)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("violations recorded: %v", c.Violations())
	}
}

func TestCheckerEveryThrottles(t *testing.T) {
	full := run(t, func(*sim.Loop, *Checker) {})
	quarter := run(t, func(_ *sim.Loop, c *Checker) { c.Every = 4 })
	if quarter.Checks() == 0 {
		t.Fatal("throttled checker never swept")
	}
	if 4*quarter.Checks() > full.Checks()+4 {
		t.Fatalf("Every=4 swept %d times vs %d unthrottled", quarter.Checks(), full.Checks())
	}
}

func TestCheckerChainsExistingPostEvent(t *testing.T) {
	prior := 0
	c := run(t, func(loop *sim.Loop, _ *Checker) {
		// Installed before New in run()? No — prep runs after New, so install
		// a second hook the same way a second subsystem would and verify the
		// checker's own hook was not clobbered either way.
		prev := loop.PostEvent
		loop.PostEvent = func() {
			if prev != nil {
				prev()
			}
			prior++
		}
	})
	if prior == 0 {
		t.Fatal("chained PostEvent hook never ran")
	}
	if c.Checks() == 0 {
		t.Fatal("checker hook was clobbered by chaining")
	}
}
