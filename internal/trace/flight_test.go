package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	if f.Count() != 0 || f.Len() != 0 || f.Mask() != 0 {
		t.Fatal("nil flight not inert")
	}
	f.Reset()
	if f.Events() != nil || f.Tail(3) != nil {
		t.Fatal("nil flight has events")
	}
	if err := f.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var tr *Tracer
	if got := tr.WithFlight(nil); got != nil {
		t.Fatal("nil.WithFlight(nil) should stay nil")
	}
	if tr.FlightRecorder() != nil {
		t.Fatal("nil tracer has flight")
	}
}

// TestFlightOnlyTracer pins the always-on contract: with JSONL tracing off
// (nil base tracer), a flight-attached tracer still reports Enabled and
// still records, and nothing is written anywhere until Dump.
func TestFlightOnlyTracer(t *testing.T) {
	f := NewFlight(4, CatTCP|CatTDN)
	tr := (*Tracer)(nil).WithFlight(f)
	if !tr.Enabled(CatTCP) || !tr.Enabled(CatTDN) {
		t.Fatal("flight categories not enabled")
	}
	if tr.Enabled(CatSim) {
		t.Fatal("category outside flight mask enabled")
	}
	for i := 0; i < 6; i++ {
		tr.Emit(CatTCP, int64(i), "ev", 1, 0, float64(i), 0, "")
	}
	tr.Emit(CatSim, 99, "fire", -1, -1, 0, 0, "") // outside the mask
	if f.Count() != 6 || f.Len() != 4 {
		t.Fatalf("Count=%d Len=%d, want 6/4", f.Count(), f.Len())
	}
	evs := f.Events()
	if len(evs) != 4 || evs[0].TS != 2 || evs[3].TS != 5 {
		t.Fatalf("ring order wrong: %+v", evs)
	}
	if evs[0].Cat != "tcp" {
		t.Fatalf("category not rendered: %+v", evs[0])
	}
	if tail := f.Tail(2); len(tail) != 2 || tail[1].TS != 5 {
		t.Fatalf("Tail wrong: %+v", tail)
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("Dump wrote %d lines, want 4", len(lines))
	}
	var ev Event
	if err := ParseLine([]byte(lines[0]), &ev); err != nil || ev.TS != 2 || ev.Name != "ev" {
		t.Fatalf("dump line malformed (%v): %+v", err, ev)
	}
	f.Reset()
	if f.Len() != 0 || f.Count() != 0 {
		t.Fatal("Reset did not empty the ring")
	}
}

// TestFlightTeesWithStreaming checks that a streaming tracer with a flight
// attached records to both, and that span records carry their ids through
// the ring.
func TestFlightTeesWithStreaming(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlight(8, CatAll)
	tr := New(&buf, CatTCP).WithFlight(f)
	tr.Emit(CatTCP, 1, "both", 0, 0, 0, 0, "")
	tr.Emit(CatVOQ, 2, "flight_only", 0, 0, 0, 0, "")
	id := tr.BeginSpan(CatTCP, 3, "recovery", 0, 1, 0)
	tr.EndSpan(CatTCP, 7, "recovery", 0, 1, id, 2, 0)
	tr.Flush()
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("streamed %d lines, want 3 (mask excludes voq): %s", got, buf.String())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("flight holds %d, want 4", len(evs))
	}
	if evs[2].Ph != "B" || evs[2].Span != int64(id) || evs[3].Ph != "E" || evs[3].Span != int64(id) {
		t.Fatalf("span records wrong: %+v", evs[2:])
	}
}
