package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestHistNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Fatal("nil histogram not inert")
	}
	var r *Registry
	if r.Hist("x") != nil {
		t.Fatal("nil registry returned a histogram")
	}
}

func TestHistIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and indexes
	// must be monotone in the value.
	for i := 0; i < histBuckets; i++ {
		if got := histIndex(histValue(i)); got != i {
			t.Fatalf("histIndex(histValue(%d)) = %d", i, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, 1<<62 + 12345, math.MaxInt64} {
		idx := histIndex(v)
		if idx < prev || idx >= histBuckets {
			t.Fatalf("histIndex(%d) = %d (prev %d, buckets %d)", v, idx, prev, histBuckets)
		}
		prev = idx
	}
}

func TestHistQuantiles(t *testing.T) {
	h := &Histogram{name: "t"}
	for v := int64(1); v <= 1000; v++ {
		h.Record(v * 1000) // 1us .. 1ms in ns
	}
	if h.Count() != 1000 || h.Max() != 1000000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if mean := h.Mean(); math.Abs(mean-500500) > 1 {
		t.Fatalf("mean = %f", mean)
	}
	// Log-linear relative error is bounded by one sub-bucket (~1/32), and
	// quantiles report bucket lower bounds, so allow a one-sided 2/32 band.
	for _, tc := range []struct{ q, want float64 }{{0.50, 500000}, {0.90, 900000}, {0.99, 990000}, {1.0, 1000000}} {
		got := float64(h.Quantile(tc.q))
		if got > tc.want || got < tc.want*(1-2.0/histSub) {
			t.Fatalf("Quantile(%v) = %v, want within [%v, %v]", tc.q, got, tc.want*(1-2.0/histSub), tc.want)
		}
	}
	if h.Quantile(0) == 0 {
		t.Fatal("Quantile(0) should be the smallest bucket, not 0, after records")
	}
	h.Record(-5) // clamps to 0
	if h.Quantile(0) != 0 {
		t.Fatal("negative record did not clamp to zero bucket")
	}
}

func TestRegistryHistJSON(t *testing.T) {
	r := NewRegistry()
	if r.Hist("b.lat_ns") != r.Hist("b.lat_ns") {
		t.Fatal("Hist not idempotent")
	}
	r.Hist("a.empty_ns")
	h := r.Hist("b.lat_ns")
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	r.Add("c.count", 1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var parsed struct {
		Histograms map[string]struct {
			Count uint64 `json:"count"`
			P50   int64  `json:"p50"`
			P90   int64  `json:"p90"`
			P99   int64  `json:"p99"`
			Max   int64  `json:"max"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Histograms) != 2 {
		t.Fatalf("histogram sections: %+v", parsed.Histograms)
	}
	bh := parsed.Histograms["b.lat_ns"]
	if bh.Count != 100 || bh.Max != 100 || bh.P50 == 0 || bh.P99 < bh.P50 {
		t.Fatalf("summary wrong: %+v", bh)
	}
	if e := parsed.Histograms["a.empty_ns"]; e.Count != 0 || e.Max != 0 {
		t.Fatalf("empty histogram should render zeros: %+v", e)
	}
	// Byte-stability: two renders are identical.
	var again bytes.Buffer
	if err := r.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteJSON not byte-stable")
	}
	// Nil registry now includes the (empty) histograms section.
	buf.Reset()
	if err := (*Registry)(nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"histograms":{}`)) {
		t.Fatalf("nil registry output: %s", buf.String())
	}
}
