package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(CatTCP) {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(CatTCP, 1, "x", 0, 0, 1, 2, "s") // must not panic
	if tr.Count() != 0 || tr.Err() != nil || tr.Flush() != nil {
		t.Fatal("nil tracer not inert")
	}
	if tr.Events() != nil {
		t.Fatal("nil tracer has events")
	}
	if err := tr.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryMask(t *testing.T) {
	tr := NewRing(8, CatTCP|CatVOQ)
	tr.Emit(CatTCP, 1, "a", 0, 0, 0, 0, "")
	tr.Emit(CatCC, 2, "b", 0, 0, 0, 0, "") // masked out
	tr.Emit(CatVOQ, 3, "c", 0, 0, 0, 0, "")
	if got := tr.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Name != "a" || evs[1].Name != "c" {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestParseCategories(t *testing.T) {
	m, err := ParseCategories("tcp,cc, voq")
	if err != nil || m != CatTCP|CatCC|CatVOQ {
		t.Fatalf("ParseCategories = %v, %v", m, err)
	}
	if m, err = ParseCategories("all"); err != nil || m != CatAll {
		t.Fatalf("all = %v, %v", m, err)
	}
	if m, err = ParseCategories(""); err != nil || m != 0 {
		t.Fatalf("empty = %v, %v", m, err)
	}
	if _, err = ParseCategories("bogus"); err == nil {
		t.Fatal("bogus category accepted")
	}
	if got := (CatTCP | CatTDN).String(); got != "tcp,tdn" {
		t.Fatalf("String = %q", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, CatAll)
	tr.Emit(CatTCP, 1234, "ca_state", 3, 1, 42.5, math.Inf(1), `open>"recovery"`)
	tr.Emit(CatRDCN, 5678, "day", -1, 0, 2, 180000, "")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var ev Event
	if err := ParseLine([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 invalid: %v", err)
	}
	if ev.TS != 1234 || ev.Cat != "tcp" || ev.Name != "ca_state" || ev.Flow != 3 ||
		ev.TDN != 1 || ev.A != 42.5 || ev.B != -1 || ev.S != `open>"recovery"` {
		t.Fatalf("round trip mismatch: %+v", ev)
	}
	if err := ParseLine([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.S != "" {
		t.Fatalf("S not reset between parses: %q", ev.S)
	}
}

func TestDeterministicBytes(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		tr := New(&buf, CatAll)
		for i := 0; i < 100; i++ {
			tr.Emit(CatVOQ, int64(i), "voq_enq", i%4, i%2, float64(i)*0.1, 16, "r0q0")
		}
		tr.Flush()
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("identical emission sequences produced different bytes")
	}
}

func TestRingWrap(t *testing.T) {
	tr := NewRing(4, CatAll)
	for i := 0; i < 10; i++ {
		tr.Emit(CatSim, int64(i), "fire", -1, -1, 0, 0, "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.TS != int64(6+i) {
			t.Fatalf("ring order wrong: %+v", evs)
		}
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d, want 10", tr.Count())
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 4 {
		t.Fatalf("Dump wrote %d lines, want 4", n)
	}
}

// TestConcurrentEmit exercises the tracer's concurrent writer path; run
// under -race (ci.sh does).
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, CatAll)
	const goroutines, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Emit(CatTCP, int64(i), "ev", g, -1, float64(i), 0, "concurrent")
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != goroutines*each {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*each)
	}
	var ev Event
	for i, line := range lines {
		if err := ParseLine(line, &ev); err != nil {
			t.Fatalf("line %d corrupt (%v): %s", i, err, line)
		}
	}
}

func TestRegistry(t *testing.T) {
	var nilReg *Registry
	nilReg.Add("x", 1)
	nilReg.Set("y", 2)
	if nilReg.Counter("x") != 0 || nilReg.Gauge("y") != 0 {
		t.Fatal("nil registry not inert")
	}
	var buf bytes.Buffer
	if err := nilReg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil registry JSON invalid: %s", buf.Bytes())
	}

	r := NewRegistry()
	r.Add("b.count", 2)
	r.Add("a.count", 1)
	r.Add("b.count", 3)
	r.Set("z.gauge", 1.5)
	r.Set("m.gauge", math.Inf(1))
	if r.Counter("b.count") != 5 {
		t.Fatalf("counter = %d", r.Counter("b.count"))
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", out)
	}
	if strings.Index(out, `"a.count"`) > strings.Index(out, `"b.count"`) {
		t.Fatalf("keys not sorted: %s", out)
	}
	var parsed struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Counters["a.count"] != 1 || parsed.Gauges["m.gauge"] != -1 {
		t.Fatalf("parsed mismatch: %+v", parsed)
	}
}

func TestChromeExport(t *testing.T) {
	var jsonl bytes.Buffer
	tr := New(&jsonl, CatAll)
	tr.Emit(CatRDCN, 0, "day", -1, 0, 1, 180000, "")
	tr.Emit(CatCC, 1000, "grow", 2, 1, 12, 40, "cubic")
	tr.Emit(CatVOQ, 2000, "voq_enq", -1, 0, 7, 16, "r0q0")
	tr.Emit(CatTCP, 3000, "retransmit", 2, 1, 8960, 1, "")
	tr.Flush()

	var out bytes.Buffer
	if err := Chrome(&jsonl, &out); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("chrome output not valid JSON:\n%s", out.String())
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
		names[ev["name"].(string)] = true
	}
	if phases["X"] != 1 || phases["C"] != 2 || phases["i"] != 1 || phases["M"] == 0 {
		t.Fatalf("phase mix wrong: %v", phases)
	}
	if !names["day"] || !names["cwnd f2/tdn1"] || !names["occupancy r0q0"] || !names["retransmit"] {
		t.Fatalf("names missing: %v", names)
	}
}

// TestSpanRoundTrip pins the span JSONL encoding: deterministic ids, the
// parent link on begins, payloads on ends, and the rule that point events
// encode without any span fields.
func TestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, CatAll)
	root := tr.BeginSpan(CatRDCN, 0, "epoch", -1, 0, 0)
	child := tr.BeginSpan(CatRDCN, 10, "notify", -1, 0, root)
	tr.Emit(CatTCP, 15, "point", 1, 0, 1, 2, "")
	tr.EndSpan(CatRDCN, 20, "notify", -1, 0, child, 0, 0)
	tr.EndSpan(CatRDCN, 30, "epoch", -1, 0, root, 7, 0)
	tr.Flush()
	if root != 1 || child != 2 {
		t.Fatalf("span ids = %d, %d; want 1, 2", root, child)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	var ev Event
	if err := ParseLine([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ph != "B" || ev.Span != 2 || ev.Parent != 1 || ev.Name != "notify" {
		t.Fatalf("child begin wrong: %+v", ev)
	}
	if err := ParseLine([]byte(lines[2]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ph != "" || ev.Span != 0 || strings.Contains(lines[2], "ph") {
		t.Fatalf("point event grew span fields: %s", lines[2])
	}
	if err := ParseLine([]byte(lines[4]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Ph != "E" || ev.Span != 1 || ev.A != 7 || ev.Parent != 0 {
		t.Fatalf("root end wrong: %+v", ev)
	}
}

func TestSpanDisabled(t *testing.T) {
	var nilTr *Tracer
	if id := nilTr.BeginSpan(CatTCP, 0, "x", 0, 0, 0); id != 0 {
		t.Fatalf("nil tracer allocated span %d", id)
	}
	nilTr.EndSpan(CatTCP, 1, "x", 0, 0, 0, 0, 0) // must not panic
	nilTr.PushParent(3)
	nilTr.PopParent()
	if nilTr.Parent() != 0 {
		t.Fatal("nil tracer has a parent span")
	}

	tr := NewRing(4, CatTCP)
	if id := tr.BeginSpan(CatVOQ, 0, "x", 0, 0, 0); id != 0 {
		t.Fatal("masked-out span allocated an id")
	}
	tr.EndSpan(CatVOQ, 1, "x", 0, 0, 0, 0, 0)
	if tr.Count() != 0 {
		t.Fatal("masked-out span recorded events")
	}
	// Masked-out spans must not consume ids: the next recorded span still
	// gets id 1, keeping ids deterministic per tracer configuration.
	if id := tr.BeginSpan(CatTCP, 2, "y", 0, 0, 0); id != 1 {
		t.Fatalf("first recorded span id = %d, want 1", id)
	}
}

func TestParentStack(t *testing.T) {
	tr := NewRing(4, CatAll)
	if tr.Parent() != 0 {
		t.Fatal("fresh tracer has a parent")
	}
	tr.PushParent(5)
	tr.PushParent(9)
	if tr.Parent() != 9 {
		t.Fatalf("Parent = %d, want 9", tr.Parent())
	}
	tr.PopParent()
	if tr.Parent() != 5 {
		t.Fatalf("Parent = %d, want 5", tr.Parent())
	}
	// Saturation: pushes beyond the fixed depth are dropped but stay
	// balanced with their pops.
	for i := 0; i < maxSpanDepth+3; i++ {
		tr.PushParent(SpanID(100 + i))
	}
	if tr.Parent() != 0 {
		t.Fatal("saturated stack should report no parent")
	}
	for i := 0; i < maxSpanDepth+3; i++ {
		tr.PopParent()
	}
	if tr.Parent() != 5 {
		t.Fatalf("unbalanced after saturation: %d", tr.Parent())
	}
	tr.PopParent()
	tr.PopParent() // extra pop on empty stack must be safe
	if tr.Parent() != 0 {
		t.Fatal("stack not empty")
	}
}

func TestChromeSpanExport(t *testing.T) {
	var jsonl bytes.Buffer
	tr := New(&jsonl, CatAll)
	id := tr.BeginSpan(CatTCP, 1000, "recovery", 2, 1, 0)
	tr.EndSpan(CatTCP, 5000, "recovery", 2, 1, id, 3, 0)
	tr.Flush()
	var out bytes.Buffer
	if err := Chrome(&jsonl, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			ID   int64   `json:"id"`
			Name string  `json:"name"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var b, e int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			b++
			if ev.ID != int64(id) || ev.Name != "recovery" || ev.TS != 1 {
				t.Fatalf("begin wrong: %+v", ev)
			}
		case "e":
			e++
			if ev.ID != int64(id) || ev.TS != 5 {
				t.Fatalf("end wrong: %+v", ev)
			}
		}
	}
	if b != 1 || e != 1 {
		t.Fatalf("b/e counts = %d/%d, want 1/1", b, e)
	}
}

func TestChromeRejectsCorruptLine(t *testing.T) {
	in := strings.NewReader("{\"ts\":1,\"cat\":\"tcp\",\"name\":\"x\",\"flow\":0,\"tdn\":0,\"a\":0,\"b\":0}\nnot json\n")
	if err := Chrome(in, &bytes.Buffer{}); err == nil {
		t.Fatal("corrupt line accepted")
	}
}
