package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a flat metrics registry: named monotone counters,
// point-in-time gauges, and log-linear histograms, populated by the layers
// of a run and exported as a machine-readable JSON summary. Keys are dotted
// paths ("total.sender.retransmits", "voq.r0q0.drops", "sim.events_fired").
//
// A nil *Registry is the disabled registry: every method on it is a no-op
// (Hist returns the nil, equally inert *Histogram), so instrumentation
// sites never need their own nil checks. Registry is safe for concurrent
// use; the map lookup happens once at Hist registration, never on Record.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]int64{}, gauges: map[string]float64{}, hists: map[string]*Histogram{}}
}

// Hist returns the histogram registered under name, creating it on first
// use. Call at setup time and keep the handle: Record on the handle is the
// allocation-free hot path.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records gauge name at value v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Counter reads a counter (0 when absent or on a nil registry).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge reads a gauge (0 when absent or on a nil registry).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// WriteJSON renders the registry as a three-section JSON object with keys
// in sorted order, so the output is byte-stable across runs:
//
//	{"counters":{...},"gauges":{...},"histograms":{...}}
//
// Each histogram renders as its summary statistics
// {"count":…,"p50":…,"p90":…,"p99":…,"max":…}; empty histograms are
// included (all zeros) so a dump always names every registered metric.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := w.Write([]byte("{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n"))
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	b := make([]byte, 0, 4096)
	b = append(b, `{"counters":{`...)
	ckeys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for i, k := range ckeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = strconv.AppendInt(b, r.counters[k], 10)
	}
	b = append(b, `},"gauges":{`...)
	gkeys := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	for i, k := range gkeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = appendFloat(b, r.gauges[k])
	}
	b = append(b, `},"histograms":{`...)
	hkeys := make([]string, 0, len(r.hists))
	for k := range r.hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for i, k := range hkeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = appendHistSummary(b, r.hists[k])
	}
	b = append(b, "}}\n"...)
	_, err := w.Write(b)
	return err
}

// appendHistSummary renders one histogram's summary object.
func appendHistSummary(b []byte, h *Histogram) []byte {
	b = append(b, `{"count":`...)
	b = strconv.AppendUint(b, h.Count(), 10)
	b = append(b, `,"p50":`...)
	b = strconv.AppendInt(b, h.Quantile(0.50), 10)
	b = append(b, `,"p90":`...)
	b = strconv.AppendInt(b, h.Quantile(0.90), 10)
	b = append(b, `,"p99":`...)
	b = strconv.AppendInt(b, h.Quantile(0.99), 10)
	b = append(b, `,"max":`...)
	b = strconv.AppendInt(b, h.Max(), 10)
	b = append(b, '}')
	return b
}
