package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a flat metrics registry: named monotone counters and
// point-in-time gauges, populated by the layers of a run and exported as a
// machine-readable JSON summary. Keys are dotted paths
// ("total.sender.retransmits", "voq.r0q0.drops", "sim.events_fired").
//
// A nil *Registry is the disabled registry: every method on it is a no-op,
// so instrumentation sites never need their own nil checks. Registry is
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]int64{}, gauges: map[string]float64{}}
}

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records gauge name at value v.
func (r *Registry) Set(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Counter reads a counter (0 when absent or on a nil registry).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge reads a gauge (0 when absent or on a nil registry).
func (r *Registry) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// WriteJSON renders the registry as a two-section JSON object with keys in
// sorted order, so the output is byte-stable across runs:
//
//	{"counters":{...},"gauges":{...}}
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := w.Write([]byte("{\"counters\":{},\"gauges\":{}}\n"))
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	b := make([]byte, 0, 4096)
	b = append(b, `{"counters":{`...)
	ckeys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		ckeys = append(ckeys, k)
	}
	sort.Strings(ckeys)
	for i, k := range ckeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = strconv.AppendInt(b, r.counters[k], 10)
	}
	b = append(b, `},"gauges":{`...)
	gkeys := make([]string, 0, len(r.gauges))
	for k := range r.gauges {
		gkeys = append(gkeys, k)
	}
	sort.Strings(gkeys)
	for i, k := range gkeys {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = appendFloat(b, r.gauges[k])
	}
	b = append(b, "}}\n"...)
	_, err := w.Write(b)
	return err
}
