package trace

import (
	"math/bits"
	"sync/atomic"
)

// Log-linear histogram (HDR-style): a fixed array of buckets whose widths
// grow geometrically, giving a bounded relative error (~1/histSub ≈ 3%)
// across the full non-negative int64 range with no allocation on Record and
// no map in sight. Values are dimensionless int64s; by convention the
// metric name carries the unit suffix ("…_ns", "…_pkts").
//
// Layout: values below histSub land in one-wide linear buckets; above
// that, each power-of-two octave is split into histSub linear sub-buckets.

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 sub-buckets per octave
	// 63-bit values span octaves histSubBits+1..63, each contributing
	// histSub buckets on top of the histSub linear ones.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	k := bits.Len64(uint64(v)) // position of the MSB, ≥ histSubBits+1
	sub := int(v>>uint(k-1-histSubBits)) & (histSub - 1)
	return (k-histSubBits)<<histSubBits + sub
}

// histValue returns the lower bound of bucket idx, the value reported for
// quantiles that land in it.
func histValue(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	o := idx >> histSubBits
	sub := idx & (histSub - 1)
	return int64(histSub+sub) << uint(o-1)
}

// Histogram is one named log-linear latency/size distribution. Obtain
// handles from Registry.Hist at setup time and Record into them on the hot
// path: Record is a few atomic adds, allocation-free and safe for
// concurrent use. A nil *Histogram is the disabled histogram; Record and
// all accessors are no-ops on it, matching the nil-Tracer contract.
type Histogram struct {
	name    string
	count   uint64
	sum     int64
	max     int64
	buckets [histBuckets]uint64
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.buckets[histIndex(v)], 1)
	atomic.AddUint64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	for {
		old := atomic.LoadInt64(&h.max)
		if v <= old || atomic.CompareAndSwapInt64(&h.max, old, v) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.max)
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := atomic.LoadUint64(&h.count)
	if n == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&h.sum)) / float64(n)
}

// Quantile returns the value at quantile q in [0, 1]: the lower bound of
// the bucket holding the ⌈q·count⌉-th observation, clamped to Max for the
// top bucket so Quantile(1) is exact. Returns 0 when empty. The walk reads
// buckets without a snapshot; for the single-goroutine simulation this is
// exact, under concurrent recording it is approximate.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := atomic.LoadUint64(&h.count)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := atomic.LoadUint64(&h.buckets[i])
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := histValue(i)
			if max := atomic.LoadInt64(&h.max); v > max {
				v = max
			}
			return v
		}
	}
	return atomic.LoadInt64(&h.max)
}
