package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-viewer export: converts a JSONL event stream into the JSON
// Object Format of the Trace Event specification, loadable in
// chrome://tracing and Perfetto. The mapping:
//
//   - rdcn "day"/"night" events become complete ("X") slices on the
//     network-process schedule track, so the optical week is visible as a
//     banded timeline.
//   - cc events and voq_enq/voq_deq become counter ("C") tracks — cwnd and
//     ssthresh per flow/TDN, occupancy per queue — rendered as the familiar
//     sawtooth graphs.
//   - causal spans (records with ph "B"/"E") become async duration events
//     ("b"/"e") keyed by span id, so flow lifetimes, epoch occupancy, and
//     recovery episodes render as real duration bars that may overlap.
//   - everything else becomes a thread-scoped instant ("i") event with its
//     payload in args.
//
// Each flow maps to one process (pid = flow+1; pid 0 is the network) and
// each category to one thread within it, with metadata records naming both.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// catTID maps a category name to a stable thread id within its process.
func catTID(cat string) int {
	for i, name := range catNames {
		if name == cat {
			return i + 1
		}
	}
	return numCategories + 1
}

// Chrome reads a JSONL trace from r and writes Chrome trace-viewer JSON to
// w. The input must be one JSON event per line (the Tracer's streaming
// format or Dump output); malformed lines are reported as errors, not
// skipped, so a truncated trace is caught rather than silently shortened.
func Chrome(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}

	var (
		ev      Event
		lineNo  int
		wrote   bool
		pids    = map[int]bool{}
		threads = map[[2]int]string{} // (pid, tid) -> category name
	)
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if wrote {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		wrote = true
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := ParseLine(line, &ev); err != nil {
			return fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		pid := 0
		if ev.Flow >= 0 {
			pid = ev.Flow + 1
		}
		tid := catTID(ev.Cat)
		pids[pid] = true
		threads[[2]int{pid, tid}] = ev.Cat
		ts := float64(ev.TS) / 1e3 // ns -> us

		var ce chromeEvent
		switch {
		case ev.Ph == "B" || ev.Ph == "E":
			// Causal spans become async duration events ("b"/"e") keyed by
			// span id, so overlapping spans on one track (two recovery
			// episodes, a flow crossing epochs) pair correctly where
			// stack-scoped B/E events would be forced to nest.
			ph := "b"
			args := map[string]any{}
			if ev.Ph == "E" {
				ph = "e"
				args["a"] = ev.A
				args["b"] = ev.B
			} else if ev.Parent != 0 {
				args["parent"] = ev.Parent
			}
			if ev.TDN >= 0 {
				args["tdn"] = ev.TDN
			}
			ce = chromeEvent{Name: ev.Name, Cat: ev.Cat, Ph: ph, TS: ts,
				PID: pid, TID: tid, ID: ev.Span, Args: args}
		case ev.Cat == "rdcn" && (ev.Name == "day" || ev.Name == "night"):
			// B carries the slot duration in nanoseconds.
			ce = chromeEvent{Name: ev.Name, Cat: ev.Cat, Ph: "X", TS: ts, Dur: ev.B / 1e3,
				PID: pid, TID: tid, Args: map[string]any{"tdn": ev.TDN}}
			if ce.Dur <= 0 {
				ce.Dur = 0.001
			}
		case ev.Cat == "cc":
			ce = chromeEvent{Name: fmt.Sprintf("cwnd f%d/tdn%d", ev.Flow, ev.TDN),
				Cat: ev.Cat, Ph: "C", TS: ts, PID: pid, TID: tid,
				Args: map[string]any{"cwnd": ev.A, "ssthresh": ev.B}}
		case ev.Name == "voq_enq" || ev.Name == "voq_deq":
			ce = chromeEvent{Name: "occupancy " + ev.S, Cat: ev.Cat, Ph: "C", TS: ts,
				PID: pid, TID: tid, Args: map[string]any{"packets": ev.A}}
		default:
			args := map[string]any{"a": ev.A, "b": ev.B}
			if ev.S != "" {
				args["s"] = ev.S
			}
			if ev.TDN >= 0 {
				args["tdn"] = ev.TDN
			}
			ce = chromeEvent{Name: ev.Name, Cat: ev.Cat, Ph: "i", TS: ts,
				PID: pid, TID: tid, S: "t", Args: args}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Metadata: stable ordering (pids ascending, tids ascending).
	var pidList []int
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		name := "network"
		if pid > 0 {
			name = fmt.Sprintf("flow %d", pid-1)
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
		for tid := 1; tid <= numCategories+1; tid++ {
			cat, ok := threads[[2]int{pid, tid}]
			if !ok {
				continue
			}
			if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": cat}}); err != nil {
				return err
			}
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
