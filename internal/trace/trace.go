// Package trace is the unified observability layer of the repository: a
// deterministic structured event tracer plus a metrics registry, wired
// through every layer of the stack (simulation loop, TCP data path,
// congestion control, TDTCP policy, VOQs, RDCN control plane).
//
// The paper's entire evaluation methodology rests on instrumentation —
// kernel tracepoints, tcpdump captures, a modified Wireshark dissector —
// and this package plays that role for the reproduction: every event
// carries a virtual timestamp and flow/TDN labels, streams to an io.Writer
// as JSONL (one JSON object per line) or into a fixed-size ring buffer,
// and converts to Chrome trace-viewer JSON (chrome://tracing, Perfetto)
// for visual inspection of a whole RDCN week.
//
// # Determinism
//
// Timestamps are virtual (sim.Time nanoseconds), the encoder never walks a
// Go map, and floats render via strconv with the shortest round-trippable
// form, so two runs with the same seed produce byte-identical traces.
//
// # Overhead when disabled
//
// A disabled tracer is a nil *Tracer. Every method is nil-receiver safe:
// Enabled on a nil tracer is a single nil-check-and-branch, so
// instrumentation left in the hot path costs one predictable branch per
// site. Call sites that must build arguments (strings, conversions) gate on
// Enabled first.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Category is a bitmask selecting which layers of the stack emit events.
type Category uint32

// Event categories, one per instrumented layer.
const (
	// CatSim traces simulator event firing and pending-queue depth.
	CatSim Category = 1 << iota
	// CatTCP traces the TCP data path: CA-state transitions, retransmits,
	// RTO/TLP fires, SACK/D-SACK arrivals, reordering episodes.
	CatTCP
	// CatCC traces per-variant congestion-control decisions (cwnd moves).
	CatCC
	// CatTDN traces TDTCP policy activity: per-TDN state freeze/resume and
	// change-pointer moves.
	CatTDN
	// CatVOQ traces ToR virtual output queues: enqueue, dequeue, drop,
	// ECN mark, resize.
	CatVOQ
	// CatRDCN traces the RDCN control plane: day/night/week transitions and
	// TDN-change notifications.
	CatRDCN
	// CatFault traces injected faults (internal/fault) and runtime invariant
	// violations (internal/invariant): every dropped/duplicated notification,
	// every dropped/corrupted/delayed frame, circuit flaps, schedule drift,
	// resize failures, deadman engagements.
	CatFault

	numCategories = 7
)

// CatAll enables every category.
const CatAll Category = 1<<numCategories - 1

var catNames = [numCategories]string{"sim", "tcp", "cc", "tdn", "voq", "rdcn", "fault"}

// String renders a single-bit category as its short name; multi-bit masks
// render as a comma-separated list.
func (c Category) String() string {
	var parts []string
	for i := 0; i < numCategories; i++ {
		if c&(1<<i) != 0 {
			parts = append(parts, catNames[i])
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseCategories parses a comma-separated category list ("tcp,cc,voq").
// "all" selects every category; the empty string selects none.
func ParseCategories(s string) (Category, error) {
	var mask Category
	if s == "" {
		return 0, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "all" {
			mask = CatAll
			continue
		}
		found := false
		for i, name := range catNames {
			if part == name {
				mask |= 1 << i
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown category %q (have %s, or 'all')", part, CatAll)
		}
	}
	return mask, nil
}

// Event is one structured trace record. The numeric payloads A and B carry
// per-name semantics (documented in the event taxonomy in DESIGN.md): for
// "cwnd" decisions A is the congestion window and B the slow-start
// threshold, for "voq_*" events A is the post-operation occupancy, and so
// on. Flow is -1 for network-level events; TDN is -1 when no TDN applies.
//
// Span records additionally carry Ph ("B" begin / "E" end), the span id,
// and for begins the parent span id (0 = root). Point events leave all
// three zero, so their encoding is unchanged.
type Event struct {
	TS     int64   `json:"ts"` // virtual time, nanoseconds since sim start
	Cat    string  `json:"cat"`
	Name   string  `json:"name"`
	Flow   int     `json:"flow"`
	TDN    int     `json:"tdn"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	S      string  `json:"s,omitempty"`
	Ph     string  `json:"ph,omitempty"`     // "B" or "E" for span records
	Span   int64   `json:"span,omitempty"`   // span id, unique within a run
	Parent int64   `json:"parent,omitempty"` // parent span id on "B" records
}

// ParseLine decodes one JSONL trace line into an Event.
func ParseLine(line []byte, ev *Event) error {
	ev.S, ev.Ph, ev.Span, ev.Parent = "", "", 0, 0
	return json.Unmarshal(line, ev)
}

// SpanID names one causal span within a run. Ids are allocated by BeginSpan
// from a per-tracer counter, so runs with the same seed and the same tracer
// configuration allocate identical ids. The zero SpanID means "no span":
// EndSpan(0) is a no-op and parent 0 marks a root span.
type SpanID int64

// maxSpanDepth bounds the implicit parent stack (PushParent/PopParent).
// The deepest chain in the tree today is epoch -> notify -> cwnd_swap.
const maxSpanDepth = 8

// Tracer collects events. Construct with New (streaming JSONL) or NewRing
// (in-memory ring buffer); a nil *Tracer is the disabled tracer and every
// method on it is safe to call. Tracer is safe for concurrent use: the
// simulation itself is single-goroutine, but analysis tools and tests may
// emit from several goroutines at once.
type Tracer struct {
	mask   Category
	flight *Flight // always-on ring, bypasses mask; see flight.go

	// spanSeq is the span id allocator; atomic so concurrent emitters stay
	// race-free. The sim itself is single-goroutine, so allocation order
	// (and therefore every id) is deterministic for a given seed.
	spanSeq int64

	// parents is the implicit parent-span stack for cross-layer causality:
	// a caller that is about to hand control to a lower layer pushes its
	// span so the callee can parent onto it without widening every
	// signature in between. Fixed-size: depth saturates, never allocates.
	parents  [maxSpanDepth]SpanID
	nparents int

	// Fork state (see Fork): a forked tracer is a per-lane front end for the
	// sharded engine. parent is the tracer whose output it feeds; spool is
	// the lane's byte buffer; spooling selects the sink (false: relay each
	// record straight into parent, true: encode into spool for a barrier
	// merge). spanSrc, when set, replaces the atomic span-id allocator with
	// a lane-deterministic source. All four are engine-managed: they change
	// only while the lane's worker is parked.
	parent   *Tracer
	spool    *Spool
	spooling bool
	spanSrc  func() int64

	mu    sync.Mutex
	w     *bufio.Writer
	buf   []byte // encode scratch, reused under mu
	ring  []Event
	next  int // ring cursor
	wrap  bool
	count uint64
	err   error
}

// New returns a tracer streaming JSONL to w, emitting only categories in
// mask. Writes are buffered; call Flush before reading the destination.
func New(w io.Writer, mask Category) *Tracer {
	return &Tracer{mask: mask, w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 256)}
}

// NewRing returns a tracer that keeps the most recent n events in memory
// (a flight recorder for post-mortem debugging). Dump serializes them.
func NewRing(n int, mask Category) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{mask: mask, ring: make([]Event, 0, n)}
}

// Enabled reports whether events in category c are being recorded — by the
// mask (JSONL/ring output) or by an attached flight recorder. This is the
// hot-path gate: on a nil (disabled) tracer it is a nil check and a branch,
// nothing more.
func (t *Tracer) Enabled(c Category) bool {
	if t == nil {
		return false
	}
	if t.mask&c != 0 {
		return true
	}
	return t.flight != nil && t.flight.mask&c != 0
}

// WithFlight attaches flight recorder f and returns the resulting tracer:
// the receiver itself when non-nil (mutated in place), or a new flight-only
// tracer when the receiver is nil. Events in f's category mask are recorded
// into the ring regardless of the tracer's own mask, so the flight recorder
// stays on even when JSONL tracing is off. Attach before the run starts;
// attaching concurrently with Emit is a race.
func (t *Tracer) WithFlight(f *Flight) *Tracer {
	if f == nil {
		return t
	}
	if t == nil {
		return &Tracer{flight: f}
	}
	t.flight = f
	return t
}

// Fork returns a per-lane child tracer for the sharded engine: it carries
// the parent's category mask, its own flight recorder (same size and mask
// as the parent's, so recording stays lock-free single-writer per lane),
// and two switchable sinks. While not spooling (control phases), every
// record relays directly into the parent — under the parent's lock, in call
// order, interleaving correctly with the parent's own output. While
// spooling (parallel windows), records encode into spool, and the engine
// splices them into the parent at the next barrier in merged key order.
// Fork on a nil tracer returns nil (the disabled tracer).
func (t *Tracer) Fork(spool *Spool) *Tracer {
	if t == nil {
		return nil
	}
	f := &Tracer{mask: t.mask, parent: t, spool: spool}
	if t.flight != nil {
		f.flight = NewFlight(len(t.flight.recs), t.flight.mask)
	}
	return f
}

// SetSpooling switches a forked tracer's sink: true routes records into the
// fork's spool, false relays them into the parent. Only the sharded engine
// calls this, and only while the lane's worker is parked.
func (t *Tracer) SetSpooling(on bool) {
	if t != nil {
		t.spooling = on
	}
}

// SetSpanSource replaces the tracer's span-id allocator with fn. The
// sharded engine installs a per-lane counter so span ids are deterministic
// regardless of worker interleaving; fn must return ids that never collide
// with any other lane's (the engine tags them with the lane number). A nil
// fn restores the default atomic allocator.
func (t *Tracer) SetSpanSource(fn func() int64) {
	if t != nil {
		t.spanSrc = fn
	}
}

// WriteRaw appends pre-encoded JSONL lines (as produced by this package's
// own encoder) to the tracer's output and counts them. On a streaming
// tracer the bytes pass through verbatim; on a ring tracer each line is
// decoded back into an Event (an allocation — rings are a debug surface,
// not the parity path). The sharded engine uses WriteRaw to splice merged
// spool chunks into the sequential output position.
func (t *Tracer) WriteRaw(b []byte) {
	if t == nil || len(b) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count += uint64(bytes.Count(b, []byte("\n")))
	if t.ring != nil {
		for len(b) > 0 {
			i := bytes.IndexByte(b, '\n')
			if i < 0 {
				i = len(b)
			}
			var ev Event
			if err := ParseLine(b[:i], &ev); err == nil {
				t.appendRingLocked(ev)
			}
			if i == len(b) {
				break
			}
			b = b[i+1:]
		}
		return
	}
	if t.w == nil {
		return // count-only tracer
	}
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// appendRingLocked stores ev in the ring, overwriting the oldest. Caller
// holds mu.
func (t *Tracer) appendRingLocked(ev Event) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next++
	t.wrap = true
	if t.next == cap(t.ring) {
		t.next = 0
	}
}

// FlightRecorder returns the attached flight recorder, if any.
func (t *Tracer) FlightRecorder() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// Count returns the number of events accepted so far.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emit records one event. Events in categories outside the tracer's mask
// (and all events on a nil tracer) are discarded. ts is virtual time in
// nanoseconds; flow/tdn label the event (-1 = not applicable); a and b are
// per-name numeric payloads and s an optional string payload.
func (t *Tracer) Emit(c Category, ts int64, name string, flow, tdn int, a, b float64, s string) {
	if t == nil {
		return
	}
	if f := t.flight; f != nil && f.mask&c != 0 {
		f.record(c, ts, name, flow, tdn, 0, 0, 0, a, b, s)
	}
	if t.mask&c == 0 {
		return
	}
	t.record(c, ts, name, flow, tdn, "", 0, 0, a, b, s)
}

// record is the masked-output half of Emit: ring or JSONL, under the lock.
// On a forked tracer it instead routes to the active sink: the lane spool
// while spooling, or a direct relay into the parent otherwise (the fork is
// single-writer, so the spool path needs no lock).
func (t *Tracer) record(c Category, ts int64, name string, flow, tdn int, ph string, span, parent SpanID, a, b float64, s string) {
	if t.parent != nil {
		if t.spooling {
			t.spool.buf = appendEvent(t.spool.buf, c, ts, name, flow, tdn, ph, int64(span), int64(parent), a, b, s)
			return
		}
		t.parent.record(c, ts, name, flow, tdn, ph, span, parent, a, b, s)
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	if t.ring != nil || t.w == nil {
		if t.ring == nil {
			return // mask set but no destination: count only
		}
		t.appendRingLocked(Event{TS: ts, Cat: c.String(), Name: name, Flow: flow, TDN: tdn,
			A: a, B: b, S: s, Ph: ph, Span: int64(span), Parent: int64(parent)})
		return
	}
	t.buf = appendEvent(t.buf[:0], c, ts, name, flow, tdn, ph, int64(span), int64(parent), a, b, s)
	if _, err := t.w.Write(t.buf); err != nil && t.err == nil {
		t.err = err
	}
}

// BeginSpan opens a causal span and returns its id, or 0 when category c is
// recorded nowhere (nil tracer, or outside both the mask and the flight
// recorder's mask). parent links the span into a causal chain (0 = root);
// use Parent() to pick up the innermost implicit parent. Pass the returned
// id to EndSpan on every path out of the spanned region.
func (t *Tracer) BeginSpan(c Category, ts int64, name string, flow, tdn int, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	toFlight := t.flight != nil && t.flight.mask&c != 0
	toMask := t.mask&c != 0
	if !toFlight && !toMask {
		return 0
	}
	var id SpanID
	if t.spanSrc != nil {
		id = SpanID(t.spanSrc())
	} else {
		id = SpanID(atomic.AddInt64(&t.spanSeq, 1))
	}
	if toFlight {
		t.flight.record(c, ts, name, flow, tdn, 'B', int64(id), int64(parent), 0, 0, "")
	}
	if toMask {
		t.record(c, ts, name, flow, tdn, "B", id, parent, 0, 0, "")
	}
	return id
}

// EndSpan closes span id opened by BeginSpan with the same category and
// name. a and b are per-name numeric payloads summarizing the span (for a
// "flow" span, bytes delivered; for an "epoch" span, frames carried).
// EndSpan(…, 0, …) is a no-op, so call sites never need to check whether
// the begin was recorded.
func (t *Tracer) EndSpan(c Category, ts int64, name string, flow, tdn int, id SpanID, a, b float64) {
	if t == nil || id == 0 {
		return
	}
	if f := t.flight; f != nil && f.mask&c != 0 {
		f.record(c, ts, name, flow, tdn, 'E', int64(id), 0, a, b, "")
	}
	if t.mask&c != 0 {
		t.record(c, ts, name, flow, tdn, "E", id, 0, a, b, "")
	}
}

// PushParent makes id the innermost implicit parent span. Callers pair it
// with PopParent around handing control to a lower layer, so the callee's
// BeginSpan(…, tr.Parent()) links across signatures that do not carry span
// ids. The stack is fixed-size and saturates silently beyond maxSpanDepth.
// Like the simulation itself, the parent stack is single-goroutine state.
func (t *Tracer) PushParent(id SpanID) {
	if t == nil {
		return
	}
	if t.nparents < maxSpanDepth {
		t.parents[t.nparents] = id
	}
	t.nparents++
}

// PopParent undoes the matching PushParent.
func (t *Tracer) PopParent() {
	if t == nil || t.nparents == 0 {
		return
	}
	t.nparents--
}

// Parent returns the innermost implicit parent span, or 0 when none is set.
// A forked tracer with an empty stack falls back to its parent tracer's
// stack: control-plane code pushes its span on the shared tracer before
// calling into per-lane components, and the fallback preserves that causal
// link. The read is safe during parallel windows because the parent stack
// is mutated only from control phases, while every worker is parked.
func (t *Tracer) Parent() SpanID {
	if t == nil {
		return 0
	}
	if t.nparents == 0 && t.parent != nil {
		return t.parent.Parent()
	}
	if t.nparents == 0 || t.nparents > maxSpanDepth {
		return 0
	}
	return t.parents[t.nparents-1]
}

// appendEvent encodes one event as a JSONL line. Hand-rolled (no maps, no
// reflection) so output is deterministic and allocation-free after warmup.
// Non-finite floats serialize as -1: JSON has no Inf/NaN, and the only
// non-finite value in practice is the "no threshold yet" +Inf ssthresh.
// Span fields (ph/span/parent) are emitted only when ph is set, so point
// events encode byte-identically to the pre-span format.
func appendEvent(b []byte, c Category, ts int64, name string, flow, tdn int, ph string, span, parent int64, a, bb float64, s string) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, ts, 10)
	b = append(b, `,"cat":"`...)
	b = append(b, c.String()...)
	b = append(b, `","name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"flow":`...)
	b = strconv.AppendInt(b, int64(flow), 10)
	b = append(b, `,"tdn":`...)
	b = strconv.AppendInt(b, int64(tdn), 10)
	b = append(b, `,"a":`...)
	b = appendFloat(b, a)
	b = append(b, `,"b":`...)
	b = appendFloat(b, bb)
	if s != "" {
		b = append(b, `,"s":`...)
		b = strconv.AppendQuote(b, s)
	}
	if ph != "" {
		b = append(b, `,"ph":`...)
		b = strconv.AppendQuote(b, ph)
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, span, 10)
		if parent != 0 {
			b = append(b, `,"parent":`...)
			b = strconv.AppendInt(b, parent, 10)
		}
	}
	b = append(b, "}\n"...)
	return b
}

func appendFloat(b []byte, v float64) []byte {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return append(b, "-1"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Events returns the ring buffer's contents in emission order. It returns
// nil for streaming and nil tracers.
func (t *Tracer) Events() []Event {
	//lint:ignore concurrency ring is assigned once at construction; this reads only the immutable slice header
	if t == nil || t.ring == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.wrap {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Dump writes the ring buffer's contents as JSONL to w. On a streaming
// tracer it is equivalent to Flush.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		return nil
	}
	//lint:ignore concurrency ring is assigned once at construction; this reads only the immutable slice header
	if t.ring == nil {
		return t.Flush()
	}
	var buf []byte
	for _, ev := range t.Events() {
		mask, _ := ParseCategories(ev.Cat)
		buf = appendEvent(buf[:0], mask, ev.TS, ev.Name, ev.Flow, ev.TDN, ev.Ph, ev.Span, ev.Parent, ev.A, ev.B, ev.S)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains buffered output to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil || t.w == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
