package trace

import "io"

// Flight is the always-on flight recorder: a fixed-size ring holding the
// most recent trace events in a compact in-memory form. It is attached to a
// Tracer with WithFlight and records every event whose category is in its
// mask — even when JSONL/ring tracing is off — so that when an invariant
// check fails, a conservation ledger does not balance, or a run panics, the
// last moments before the failure can be dumped as replayable evidence.
//
// Recording is a handful of field stores into a preallocated slot: no
// locks, no allocations, no category formatting (the Category is stored
// numerically and rendered only at dump time). That keeps the steady-state
// cost at a few nanoseconds per event, cheap enough to leave on by default
// in every run (see BENCH_simcore.json).
//
// Like the simulation loop itself, a Flight is single-goroutine state: it
// must not be shared between concurrently-running simulations. Sweeps give
// each run its own recorder.
type Flight struct {
	mask  Category
	recs  []flightRec
	next  int
	wrap  bool
	count uint64
}

// flightRec is one compact ring slot. Name and S alias the caller's
// strings (always constants or preexisting labels at emit sites), so a
// store is pointer-sized copies, never a formatting pass.
type flightRec struct {
	ts           int64
	span, parent int64
	a, b         float64
	name, s      string
	cat          Category
	flow, tdn    int32
	ph           byte // 0 point event, 'B' span begin, 'E' span end
}

// DefaultFlightLen is the ring size runs use when none is configured.
const DefaultFlightLen = 256

// DefaultFlightCats is the category mask runs record by default: everything
// except CatSim, whose per-event "fire" records would both dominate the
// ring and put a branch-plus-store on every single simulator event, and
// CatCC, whose per-ack cwnd updates would evict the causal spans a
// DefaultFlightLen ring exists to preserve. Either is available by
// constructing an explicit NewFlight mask.
const DefaultFlightCats = CatAll &^ (CatSim | CatCC)

// NewFlight returns a flight recorder keeping the most recent n events in
// categories within mask.
func NewFlight(n int, mask Category) *Flight {
	if n < 1 {
		n = 1
	}
	return &Flight{mask: mask, recs: make([]flightRec, n)}
}

// record stores one event into the ring, overwriting the oldest.
func (f *Flight) record(c Category, ts int64, name string, flow, tdn int, ph byte, span, parent int64, a, b float64, s string) {
	r := &f.recs[f.next]
	r.ts, r.span, r.parent = ts, span, parent
	r.a, r.b = a, b
	r.name, r.s = name, s
	r.cat, r.flow, r.tdn, r.ph = c, int32(flow), int32(tdn), ph
	f.next++
	if f.next == len(f.recs) {
		f.next = 0
		f.wrap = true
	}
	f.count++
}

// Mask returns the recorder's category mask.
func (f *Flight) Mask() Category {
	if f == nil {
		return 0
	}
	return f.mask
}

// Count returns the number of events recorded so far (including those the
// ring has since overwritten).
func (f *Flight) Count() uint64 {
	if f == nil {
		return 0
	}
	return f.count
}

// Len returns the number of events currently held.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	if f.wrap {
		return len(f.recs)
	}
	return f.next
}

// Reset empties the ring without releasing its storage, so a recorder can
// be reused across runs (benchmarks do, to measure steady-state cost).
func (f *Flight) Reset() {
	if f == nil {
		return
	}
	f.next, f.wrap, f.count = 0, false, 0
}

// Events returns the held events oldest-first, converted to the exported
// Event form.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	n := f.Len()
	out := make([]Event, 0, n)
	start := 0
	if f.wrap {
		start = f.next
	}
	for i := 0; i < n; i++ {
		r := &f.recs[(start+i)%len(f.recs)]
		ph := ""
		if r.ph != 0 {
			ph = string(rune(r.ph))
		}
		out = append(out, Event{TS: r.ts, Cat: r.cat.String(), Name: r.name,
			Flow: int(r.flow), TDN: int(r.tdn), A: r.a, B: r.b, S: r.s,
			Ph: ph, Span: r.span, Parent: r.parent})
	}
	return out
}

// Tail returns the most recent n held events, oldest-first.
func (f *Flight) Tail(n int) []Event {
	evs := f.Events()
	if n < len(evs) {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Dump writes the held events as JSONL (the Tracer streaming format) to w,
// oldest-first, so a dump replays through the same tooling as a live trace
// (tdtrace, tdprof, the Chrome exporter).
func (f *Flight) Dump(w io.Writer) error {
	if f == nil {
		return nil
	}
	var buf []byte
	n := f.Len()
	start := 0
	if f.wrap {
		start = f.next
	}
	for i := 0; i < n; i++ {
		r := &f.recs[(start+i)%len(f.recs)]
		ph := ""
		if r.ph != 0 {
			ph = string(rune(r.ph))
		}
		buf = appendEvent(buf[:0], r.cat, r.ts, r.name, int(r.flow), int(r.tdn),
			ph, r.span, r.parent, r.a, r.b, r.s)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
