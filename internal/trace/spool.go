package trace

// Spool is a per-lane trace byte buffer used by the sharded simulation
// engine (internal/sim's ShardedLoop). During a parallel window each rack
// lane encodes its JSONL lines into its own Spool instead of the shared
// output stream; at the window barrier the engine merges all lanes' chunks
// by their (time, scheduling-key) marks — globally unique and totally
// ordered — and splices the result into the parent tracer, reproducing the
// exact byte order a purely sequential execution would have produced. See
// DESIGN.md §14 for the full ordering argument.
//
// A Spool is single-writer: exactly one lane appends to it during a window,
// and the engine reads it only at barriers, after the worker has parked.
// Reset keeps capacity, so the steady state recycles the same backing
// arrays and stays allocation-free.
type Spool struct {
	buf   []byte
	marks []spoolMark
}

// spoolMark labels the bytes from off up to the next mark's offset with the
// (at, key) of the event that emitted them.
type spoolMark struct {
	off int
	at  int64
	key uint64
}

// Mark begins a new chunk for the event with firing time at and scheduling
// key key. A trailing mark whose event emitted no bytes is overwritten in
// place, so the marks slice stays proportional to the number of emitting
// events, not the number of executed ones.
func (s *Spool) Mark(at int64, key uint64) {
	if n := len(s.marks); n > 0 && s.marks[n-1].off == len(s.buf) {
		s.marks[n-1] = spoolMark{off: len(s.buf), at: at, key: key}
		return
	}
	s.marks = append(s.marks, spoolMark{off: len(s.buf), at: at, key: key})
}

// Chunks returns the number of marked chunks currently held. The trailing
// chunk may be empty (its event emitted nothing).
func (s *Spool) Chunks() int { return len(s.marks) }

// Chunk returns the i-th chunk's ordering key and bytes. The byte slice
// aliases the spool's buffer and is valid until the next Reset.
func (s *Spool) Chunk(i int) (at int64, key uint64, b []byte) {
	m := s.marks[i]
	end := len(s.buf)
	if i+1 < len(s.marks) {
		end = s.marks[i+1].off
	}
	return m.at, m.key, s.buf[m.off:end]
}

// Reset empties the spool, keeping both backing arrays for reuse.
func (s *Spool) Reset() {
	s.buf = s.buf[:0]
	s.marks = s.marks[:0]
}
