package cc

import (
	"math"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// DCTCP implements Data Center TCP (Alizadeh et al., SIGCOMM'10): the sender
// maintains an EWMA estimate α of the fraction of ECN-marked packets and, at
// most once per window, reduces cwnd by α/2 when marks were observed.
type DCTCP struct {
	common

	g     float64 // EWMA gain (Linux default 1/16)
	alpha float64

	windowAcked  int // packets acked in the current observation window
	windowMarked int // of those, ECN-marked
	windowEnd    int // acked packets remaining until the window closes
	reduced      bool
}

// NewDCTCP returns a DCTCP instance with Linux defaults (g = 1/16, α
// initialized to 1 so a new flow backs off hard on first congestion).
func NewDCTCP() *DCTCP {
	return &DCTCP{common: newCommon(), g: 1.0 / 16, alpha: 1}
}

func (d *DCTCP) Name() string { return "dctcp" }

// Alpha exposes the current mark-fraction estimate (for tests and traces).
func (d *DCTCP) Alpha() float64 { return d.alpha }

func (d *DCTCP) OnAck(ev AckEvent) {
	d.windowAcked += ev.Acked
	d.windowMarked += ev.ECEMarked
	if d.windowEnd <= 0 {
		d.windowEnd = int(math.Max(d.cwnd, 1))
	}
	d.windowEnd -= ev.Acked

	// Grow like Reno; DCTCP does not change the increase rule.
	d.renoGrow(ev.Acked)

	if d.windowEnd <= 0 {
		// One observation window (≈ one RTT) has elapsed: fold the mark
		// fraction into alpha and apply at most one reduction.
		frac := 0.0
		if d.windowAcked > 0 {
			frac = float64(d.windowMarked) / float64(d.windowAcked)
		}
		d.alpha = (1-d.g)*d.alpha + d.g*frac
		if d.trace != nil {
			d.trace("alpha", d.alpha, frac)
		}
		if d.windowMarked > 0 {
			d.saveForUndo()
			d.cwnd = clampMin(d.cwnd * (1 - d.alpha/2))
			d.ssthresh = d.cwnd
			d.emitCwnd("md")
		}
		d.windowAcked, d.windowMarked = 0, 0
		d.windowEnd = int(math.Max(d.cwnd, 1))
	} else {
		d.emitCwnd("grow")
	}
}

func (d *DCTCP) OnEnterRecovery(now sim.Time, inFlight int) {
	d.saveForUndo()
	// Packet loss is handled like Reno (DCTCP's reaction to loss is
	// conventional).
	d.ssthresh = clampMin(float64(inFlight) / 2)
	d.cwnd = d.ssthresh
	d.emitCwnd("md")
}

func (d *DCTCP) OnRTO(now sim.Time, inFlight int) {
	d.saveForUndo()
	d.ssthresh = clampMin(float64(inFlight) / 2)
	d.cwnd = 1
	d.alpha = 1
	d.emitCwnd("rto")
}

func (d *DCTCP) OnRecoveryExit(now sim.Time) {
	d.cwnd = math.Max(d.cwnd, d.ssthresh)
	d.emitCwnd("exit")
}
