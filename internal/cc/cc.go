// Package cc implements the congestion-control algorithms the paper
// evaluates: NewReno, CUBIC (the CCA TDTCP runs in every TDN, §3.5), DCTCP,
// and reTCP (Mukerjee et al., NSDI'20). Algorithms own the congestion window
// and slow-start threshold, in packets (MSS units), and are driven by the
// transport through a small event interface.
//
// TDTCP's per-TDN congestion state (§3.1) is realized by instantiating one
// Algorithm per TDN; the transport switches between instances when the
// network reconfigures.
package cc

import (
	"fmt"
	"math"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// InitialCwnd is the default initial congestion window in packets (Linux's
// default of 10 segments).
const InitialCwnd = 10

// MinCwnd is the floor applied after multiplicative decreases.
const MinCwnd = 2

// AckEvent carries everything an algorithm may need when an ACK advances or
// SACKs data.
type AckEvent struct {
	Now sim.Time
	// Acked is the number of packets newly acknowledged (cumulatively or
	// via SACK).
	Acked int
	// ECEMarked is how many of Acked were reported congestion-marked by
	// the receiver (ECN echo).
	ECEMarked int
	// InFlight is the number of packets still outstanding after this ACK.
	InFlight int
	// RTT is a fresh round-trip sample, or 0 when the ACK yielded none.
	RTT sim.Dur
	// SRTT is the smoothed RTT of the path state this algorithm serves.
	SRTT sim.Dur
}

// Algorithm is a congestion-control algorithm instance. Instances are
// stateful and belong to exactly one path state.
type Algorithm interface {
	Name() string
	// Cwnd returns the congestion window in packets.
	Cwnd() float64
	// Ssthresh returns the slow-start threshold in packets.
	Ssthresh() float64
	// OnAck is invoked for every ACK that acknowledges new data while the
	// state is not in loss recovery (window growth).
	OnAck(ev AckEvent)
	// OnEnterRecovery is invoked once when fast recovery begins
	// (multiplicative decrease). inFlight is the pipe size at entry.
	OnEnterRecovery(now sim.Time, inFlight int)
	// OnRTO is invoked when the retransmission timer fires.
	OnRTO(now sim.Time, inFlight int)
	// OnRecoveryExit is invoked when recovery or loss completes
	// successfully (snd_una reached the recovery point).
	OnRecoveryExit(now sim.Time)
	// Undo reverts the most recent multiplicative decrease after the
	// transport determines it was triggered spuriously (D-SACK undo).
	Undo()
}

// CircuitAware is implemented by algorithms that react to explicit
// switch-generated circuit notifications (reTCP).
type CircuitAware interface {
	// OnCircuitUp is called when the switch signals that the
	// high-bandwidth circuit is (about to be) available.
	OnCircuitUp(now sim.Time)
	// OnCircuitDown is called when the circuit is torn down.
	OnCircuitDown(now sim.Time)
}

// TraceFunc observes one congestion-control decision. The first two values
// are the post-decision cwnd and ssthresh for window events ("grow", "md",
// "rto", "exit", "undo"); algorithm-specific events document their own
// payloads ("alpha": DCTCP's mark-fraction estimate and window fraction;
// "circuit_up"/"circuit_down": reTCP's post-ramp and pre-ramp windows).
type TraceFunc func(event string, a, b float64)

// Factory builds a fresh algorithm instance. The transport uses one factory
// call per path state.
type Factory func() Algorithm

// NewFactory returns a factory for the named algorithm: "reno", "cubic",
// "dctcp" or "retcp".
func NewFactory(name string) (Factory, error) {
	switch name {
	case "reno":
		return func() Algorithm { return NewReno() }, nil
	case "cubic":
		return func() Algorithm { return NewCubic() }, nil
	case "dctcp":
		return func() Algorithm { return NewDCTCP() }, nil
	case "retcp":
		return func() Algorithm { return NewReTCP(DefaultReTCPAlpha) }, nil
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %q", name)
	}
}

// common carries the Reno-style window core shared by all algorithms.
type common struct {
	cwnd     float64
	ssthresh float64
	// prior values stored at the most recent decrease, for Undo.
	priorCwnd     float64
	priorSsthresh float64

	trace TraceFunc
}

// SetTrace attaches a decision observer (nil detaches). Every algorithm in
// this package embeds common, so the transport can wire tracing through a
// plain type assertion without the Algorithm interface growing a method.
func (c *common) SetTrace(fn TraceFunc) { c.trace = fn }

// emitCwnd reports a window decision to the observer, if any.
func (c *common) emitCwnd(event string) {
	if c.trace != nil {
		c.trace(event, c.cwnd, c.ssthresh)
	}
}

func newCommon() common {
	return common{cwnd: InitialCwnd, ssthresh: math.Inf(1)}
}

func (c *common) Cwnd() float64     { return c.cwnd }
func (c *common) Ssthresh() float64 { return c.ssthresh }

// renoGrow applies slow start below ssthresh and AIMD above it.
func (c *common) renoGrow(acked int) {
	for i := 0; i < acked; i++ {
		if c.cwnd < c.ssthresh {
			c.cwnd++
		} else {
			c.cwnd += 1 / c.cwnd
		}
	}
}

func (c *common) saveForUndo() {
	c.priorCwnd = c.cwnd
	c.priorSsthresh = c.ssthresh
}

func (c *common) Undo() {
	if c.priorCwnd > 0 {
		c.cwnd = math.Max(c.cwnd, c.priorCwnd)
		c.ssthresh = math.Max(c.ssthresh, c.priorSsthresh)
		c.emitCwnd("undo")
	}
}

func clampMin(v float64) float64 { return math.Max(v, MinCwnd) }

// Reno is TCP NewReno's window algorithm (RFC 6582 behaviour at the CC
// layer).
type Reno struct{ common }

// NewReno returns a NewReno instance.
func NewReno() *Reno { return &Reno{newCommon()} }

func (r *Reno) Name() string { return "reno" }

func (r *Reno) OnAck(ev AckEvent) {
	r.renoGrow(ev.Acked)
	r.emitCwnd("grow")
}

func (r *Reno) OnEnterRecovery(now sim.Time, inFlight int) {
	r.saveForUndo()
	r.ssthresh = clampMin(float64(inFlight) / 2)
	r.cwnd = r.ssthresh
	r.emitCwnd("md")
}

func (r *Reno) OnRTO(now sim.Time, inFlight int) {
	r.saveForUndo()
	r.ssthresh = clampMin(float64(inFlight) / 2)
	r.cwnd = 1
	r.emitCwnd("rto")
}

func (r *Reno) OnRecoveryExit(now sim.Time) {
	r.cwnd = math.Max(r.cwnd, r.ssthresh)
	r.emitCwnd("exit")
}
