package cc

import (
	"math"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// DefaultReTCPAlpha is the multiplicative window ramp applied on an explicit
// circuit-up notification. The reTCP paper tunes this to the circuit:packet
// bandwidth ratio and buffer depth; 3 best fills the emulated fabric's
// 16-to-50-packet VOQs without catastrophic overshoot.
const DefaultReTCPAlpha = 3

// ReTCP implements the sender side of reTCP (Mukerjee et al., NSDI'20):
// Reno-style congestion control plus an explicit in-network signal that the
// optical circuit is (about to become) available, to which the sender reacts
// by multiplicatively increasing its window. On circuit teardown the window
// returns to its pre-ramp value.
//
// reTCP's effectiveness depends on the switch also resizing its buffers in
// advance of the circuit ("retcpdyn" in the paper's figures); that half
// lives in the rdcn package's PreChange support.
type ReTCP struct {
	common

	alpha     float64
	ramped    bool
	preRamp   float64
	rampedAt  sim.Time
	rampCount int
}

// NewReTCP returns a reTCP instance with the given circuit-up ramp factor.
func NewReTCP(alpha float64) *ReTCP {
	if alpha < 1 {
		alpha = 1
	}
	return &ReTCP{common: newCommon(), alpha: alpha}
}

func (r *ReTCP) Name() string { return "retcp" }

// RampCount reports how many circuit-up ramps have been applied (for tests).
func (r *ReTCP) RampCount() int { return r.rampCount }

func (r *ReTCP) OnAck(ev AckEvent) {
	r.renoGrow(ev.Acked)
	r.emitCwnd("grow")
}

func (r *ReTCP) OnEnterRecovery(now sim.Time, inFlight int) {
	r.saveForUndo()
	r.ssthresh = clampMin(float64(inFlight) / 2)
	r.cwnd = r.ssthresh
	r.ramped = false
	r.emitCwnd("md")
}

func (r *ReTCP) OnRTO(now sim.Time, inFlight int) {
	r.saveForUndo()
	r.ssthresh = clampMin(float64(inFlight) / 2)
	r.cwnd = 1
	r.ramped = false
	r.emitCwnd("rto")
}

func (r *ReTCP) OnRecoveryExit(now sim.Time) {
	r.cwnd = math.Max(r.cwnd, r.ssthresh)
	r.emitCwnd("exit")
}

// OnCircuitUp applies the multiplicative ramp. Repeated notifications while
// ramped are idempotent.
func (r *ReTCP) OnCircuitUp(now sim.Time) {
	if r.ramped {
		return
	}
	r.ramped = true
	r.rampCount++
	r.rampedAt = now
	r.preRamp = r.cwnd
	r.cwnd *= r.alpha
	if r.trace != nil {
		r.trace("circuit_up", r.cwnd, r.preRamp)
	}
}

// OnCircuitDown restores the pre-ramp window, keeping any additive growth
// earned since proportionally.
func (r *ReTCP) OnCircuitDown(now sim.Time) {
	if !r.ramped {
		return
	}
	r.ramped = false
	r.cwnd = math.Max(r.preRamp, r.cwnd/r.alpha)
	if r.trace != nil {
		r.trace("circuit_down", r.cwnd, r.preRamp)
	}
}
