package cc

import (
	"math"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Cubic implements TCP CUBIC (Ha, Rhee, Xu; RFC 8312): cubic window growth
// anchored at the window size before the last loss, with the TCP-friendly
// region that dominates at the microsecond RTTs of data centers.
type Cubic struct {
	common

	beta float64 // multiplicative decrease factor (0.7)
	c    float64 // cubic scaling constant (0.4)

	wMax       float64  // window before the last reduction
	epochStart sim.Time // start of the current growth epoch (0 = unset)
	k          float64  // time (s) to regrow to wMax
	ackCount   float64  // acks since epoch start, for the friendly region
	wEst       float64  // Reno-friendly window estimate
	hasEpoch   bool
}

// NewCubic returns a CUBIC instance with standard constants.
func NewCubic() *Cubic {
	return &Cubic{common: newCommon(), beta: 0.7, c: 0.4}
}

func (cu *Cubic) Name() string { return "cubic" }

func (cu *Cubic) resetEpoch() {
	cu.hasEpoch = false
	cu.ackCount = 0
}

func (cu *Cubic) OnAck(ev AckEvent) {
	for i := 0; i < ev.Acked; i++ {
		if cu.cwnd < cu.ssthresh {
			cu.cwnd++
			continue
		}
		cu.congestionAvoidance(ev)
	}
	cu.emitCwnd("grow")
}

func (cu *Cubic) congestionAvoidance(ev AckEvent) {
	if !cu.hasEpoch {
		cu.hasEpoch = true
		cu.epochStart = ev.Now
		if cu.cwnd < cu.wMax {
			cu.k = math.Cbrt(cu.wMax * (1 - cu.beta) / cu.c)
		} else {
			cu.k = 0
			cu.wMax = cu.cwnd
		}
		cu.ackCount = 0
		cu.wEst = cu.cwnd
	}
	t := float64(ev.Now.Sub(cu.epochStart)) / float64(sim.Second)
	target := cu.wMax + cu.c*math.Pow(t-cu.k, 3)

	// TCP-friendly region (RFC 8312 §4.2): emulate Reno's growth since the
	// epoch started; CUBIC must not be slower than Reno.
	cu.ackCount++
	renoGain := 3 * (1 - cu.beta) / (1 + cu.beta) // per-RTT additive factor
	cu.wEst += renoGain / cu.cwnd
	if cu.wEst > target {
		target = cu.wEst
	}

	if target > cu.cwnd {
		cu.cwnd += (target - cu.cwnd) / cu.cwnd
	} else {
		// Max-probing plateau: grow very slowly.
		cu.cwnd += 0.01 / cu.cwnd
	}
}

func (cu *Cubic) OnEnterRecovery(now sim.Time, inFlight int) {
	cu.saveForUndo()
	w := cu.cwnd
	// Fast convergence: release bandwidth faster when the loss happened
	// below the previous wMax.
	if w < cu.wMax {
		cu.wMax = w * (2 - cu.beta) / 2
	} else {
		cu.wMax = w
	}
	cu.ssthresh = clampMin(w * cu.beta)
	cu.cwnd = cu.ssthresh
	cu.resetEpoch()
	cu.emitCwnd("md")
}

func (cu *Cubic) OnRTO(now sim.Time, inFlight int) {
	cu.saveForUndo()
	cu.wMax = cu.cwnd
	cu.ssthresh = clampMin(cu.cwnd * cu.beta)
	cu.cwnd = 1
	cu.resetEpoch()
	cu.emitCwnd("rto")
}

func (cu *Cubic) OnRecoveryExit(now sim.Time) {
	cu.cwnd = math.Max(cu.cwnd, cu.ssthresh)
	cu.emitCwnd("exit")
}

func (cu *Cubic) Undo() {
	cu.common.Undo()
	cu.resetEpoch()
}
