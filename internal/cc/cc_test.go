package cc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }

func TestFactory(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "dctcp", "retcp"} {
		f, err := NewFactory(name)
		if err != nil {
			t.Fatalf("NewFactory(%q): %v", name, err)
		}
		a := f()
		if a.Name() != name {
			t.Fatalf("Name = %q, want %q", a.Name(), name)
		}
		if a.Cwnd() != InitialCwnd {
			t.Fatalf("%s initial cwnd = %v", name, a.Cwnd())
		}
		// Two instances must be independent (per-TDN duplication relies
		// on this).
		b := f()
		a.OnEnterRecovery(0, 100)
		if b.Cwnd() != InitialCwnd {
			t.Fatalf("%s instances share state", name)
		}
	}
	if _, err := NewFactory("bbr2"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno()
	// Ack a full window: slow start doubles cwnd per RTT.
	r.OnAck(AckEvent{Acked: 10})
	if r.Cwnd() != 20 {
		t.Fatalf("cwnd = %v after acking 10 in slow start, want 20", r.Cwnd())
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	r.ssthresh = 10 // at threshold: congestion avoidance
	before := r.Cwnd()
	r.OnAck(AckEvent{Acked: 10})
	// one full window acked => +~1 packet
	if got := r.Cwnd() - before; got < 0.9 || got > 1.1 {
		t.Fatalf("CA growth per RTT = %v, want ~1", got)
	}
}

func TestRenoRecoveryHalves(t *testing.T) {
	r := NewReno()
	r.cwnd = 40
	r.OnEnterRecovery(0, 40)
	if r.Cwnd() != 20 || r.Ssthresh() != 20 {
		t.Fatalf("cwnd=%v ssthresh=%v, want 20/20", r.Cwnd(), r.Ssthresh())
	}
	r.OnRTO(0, 20)
	if r.Cwnd() != 1 || r.Ssthresh() != 10 {
		t.Fatalf("after RTO cwnd=%v ssthresh=%v, want 1/10", r.Cwnd(), r.Ssthresh())
	}
}

func TestRenoMinCwnd(t *testing.T) {
	r := NewReno()
	r.cwnd = 2
	r.OnEnterRecovery(0, 2)
	if r.Cwnd() < MinCwnd {
		t.Fatalf("cwnd = %v below floor", r.Cwnd())
	}
}

func TestUndoRestores(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "dctcp", "retcp"} {
		f, _ := NewFactory(name)
		a := f()
		// Grow a bit then suffer a (spurious) recovery.
		a.OnAck(AckEvent{Acked: 30, Now: us(100), SRTT: 100 * sim.Microsecond})
		before := a.Cwnd()
		a.OnEnterRecovery(us(200), int(before))
		if a.Cwnd() >= before {
			t.Fatalf("%s: recovery did not reduce", name)
		}
		a.Undo()
		if a.Cwnd() < before {
			t.Errorf("%s: Undo left cwnd %v < %v", name, a.Cwnd(), before)
		}
	}
}

func TestCubicSlowStartThenAvoidance(t *testing.T) {
	cu := NewCubic()
	cu.OnAck(AckEvent{Now: us(1), Acked: 10})
	if cu.Cwnd() != 20 {
		t.Fatalf("slow start cwnd = %v", cu.Cwnd())
	}
	cu.OnEnterRecovery(us(2), 20)
	w := cu.Cwnd()
	if math.Abs(w-14) > 0.2 { // 20 * 0.7
		t.Fatalf("post-loss cwnd = %v, want ~14", w)
	}
	if cu.Ssthresh() != w {
		t.Fatalf("ssthresh = %v", cu.Ssthresh())
	}
	cu.OnRecoveryExit(us(3))
	// Ack steadily for a while: cwnd must grow back toward/beyond wMax.
	now := us(10)
	for i := 0; i < 200; i++ {
		cu.OnAck(AckEvent{Now: now, Acked: int(cu.Cwnd()), SRTT: 100 * sim.Microsecond})
		now = now.Add(100 * sim.Microsecond)
	}
	if cu.Cwnd() <= w {
		t.Fatalf("cubic did not grow after recovery: %v", cu.Cwnd())
	}
}

func TestCubicFastConvergence(t *testing.T) {
	cu := NewCubic()
	cu.cwnd = 100
	cu.ssthresh = 100
	cu.OnEnterRecovery(us(1), 100)
	wm1 := cu.wMax
	if wm1 != 100 {
		t.Fatalf("wMax = %v, want 100", wm1)
	}
	// Second loss below wMax triggers fast convergence: wMax < cwnd at loss.
	cu.OnEnterRecovery(us(2), int(cu.Cwnd()))
	if cu.wMax >= wm1*0.7 {
		t.Fatalf("fast convergence did not shrink wMax: %v", cu.wMax)
	}
}

// Property: cubic cwnd stays within sane bounds and never NaN under random
// event sequences.
func TestCubicRobustness(t *testing.T) {
	f := func(ops []byte) bool {
		cu := NewCubic()
		now := sim.Time(0)
		for _, op := range ops {
			now = now.Add(sim.Dur(op) * sim.Microsecond)
			switch op % 4 {
			case 0, 1:
				cu.OnAck(AckEvent{Now: now, Acked: int(op%7) + 1, SRTT: 50 * sim.Microsecond})
			case 2:
				cu.OnEnterRecovery(now, int(cu.Cwnd()))
				cu.OnRecoveryExit(now)
			case 3:
				cu.OnRTO(now, int(cu.Cwnd()))
			}
			w := cu.Cwnd()
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 1 || w > 1e9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTCPAlphaConvergesToMarkRate(t *testing.T) {
	d := NewDCTCP()
	d.ssthresh = 10 // force congestion avoidance
	// Feed 100 windows each fully marked: alpha -> 1.
	for i := 0; i < 100; i++ {
		w := int(d.Cwnd())
		d.OnAck(AckEvent{Acked: w, ECEMarked: w})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("alpha = %v, want ~1 under full marking", d.Alpha())
	}
	// Now 200 clean windows: alpha decays toward 0.
	for i := 0; i < 200; i++ {
		w := int(d.Cwnd())
		d.OnAck(AckEvent{Acked: w})
	}
	if d.Alpha() > 0.05 {
		t.Fatalf("alpha = %v, want ~0 after clean windows", d.Alpha())
	}
}

func TestDCTCPGentleReductionWhenLightlyMarked(t *testing.T) {
	d := NewDCTCP()
	d.ssthresh = 1 // congestion avoidance from the start
	d.cwnd = 100
	// Drive alpha down with clean windows first.
	for i := 0; i < 100; i++ {
		d.OnAck(AckEvent{Acked: int(d.Cwnd())})
	}
	grown := d.Cwnd()
	// One lightly marked window: reduction should be much gentler than 50%.
	d.OnAck(AckEvent{Acked: int(d.Cwnd()), ECEMarked: 1})
	if d.Cwnd() < grown*0.8 {
		t.Fatalf("lightly-marked reduction too harsh: %v -> %v", grown, d.Cwnd())
	}
}

func TestDCTCPAtMostOneReductionPerWindow(t *testing.T) {
	d := NewDCTCP()
	d.ssthresh = 1
	d.cwnd = 64
	d.alpha = 1
	// Mark every packet but deliver acks one at a time; only one halving
	// per window-worth of acks.
	before := d.Cwnd()
	for i := 0; i < int(before); i++ {
		d.OnAck(AckEvent{Acked: 1, ECEMarked: 1})
	}
	// With alpha=1 the reduction is cwnd/2; growth adds ~1. Two reductions
	// would leave under a quarter.
	if d.Cwnd() < before/4 {
		t.Fatalf("more than one reduction per window: %v -> %v", before, d.Cwnd())
	}
	if d.Cwnd() > before*0.7 {
		t.Fatalf("no reduction applied: %v -> %v", before, d.Cwnd())
	}
}

func TestReTCPRampAndRestore(t *testing.T) {
	r := NewReTCP(8)
	r.cwnd = 10
	r.OnCircuitUp(us(1))
	if r.Cwnd() != 80 {
		t.Fatalf("ramped cwnd = %v, want 80", r.Cwnd())
	}
	r.OnCircuitUp(us(2)) // idempotent
	if r.Cwnd() != 80 || r.RampCount() != 1 {
		t.Fatalf("repeat ramp changed state: %v, count %d", r.Cwnd(), r.RampCount())
	}
	r.OnAck(AckEvent{Acked: 8}) // some growth while ramped (CA: ssthresh inf -> slow start, +8)
	r.OnCircuitDown(us(3))
	if r.Cwnd() < 10 || r.Cwnd() > 12 {
		t.Fatalf("restored cwnd = %v, want ~10-11", r.Cwnd())
	}
	r.OnCircuitDown(us(4)) // idempotent
}

func TestReTCPLossClearsRamp(t *testing.T) {
	r := NewReTCP(8)
	r.cwnd = 10
	r.OnCircuitUp(us(1))
	r.OnEnterRecovery(us(2), 80)
	w := r.Cwnd()
	r.OnCircuitDown(us(3))
	if r.Cwnd() != w {
		t.Fatalf("circuit-down after loss changed cwnd %v -> %v", w, r.Cwnd())
	}
	// Next circuit-up ramps again from the reduced window.
	r.OnCircuitUp(us(4))
	if r.Cwnd() != w*8 {
		t.Fatalf("re-ramp = %v, want %v", r.Cwnd(), w*8)
	}
}

func TestReTCPAlphaFloor(t *testing.T) {
	r := NewReTCP(0.5)
	r.cwnd = 10
	r.OnCircuitUp(us(1))
	if r.Cwnd() < 10 {
		t.Fatalf("alpha<1 shrank window: %v", r.Cwnd())
	}
}

// Property: for every algorithm, cwnd >= 1 and finite under arbitrary event
// interleavings.
func TestAllAlgorithmsInvariants(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "dctcp", "retcp"} {
		f, _ := NewFactory(name)
		check := func(ops []byte) bool {
			a := f()
			now := sim.Time(0)
			for _, op := range ops {
				now = now.Add(sim.Dur(op%97) * sim.Microsecond)
				switch op % 5 {
				case 0, 1:
					a.OnAck(AckEvent{Now: now, Acked: int(op%11) + 1, ECEMarked: int(op % 3), SRTT: 40 * sim.Microsecond})
				case 2:
					a.OnEnterRecovery(now, int(a.Cwnd()))
				case 3:
					a.OnRTO(now, int(a.Cwnd()))
					a.OnRecoveryExit(now)
				case 4:
					if ca, ok := a.(CircuitAware); ok {
						if op%2 == 0 {
							ca.OnCircuitUp(now)
						} else {
							ca.OnCircuitDown(now)
						}
					}
					a.Undo()
				}
				w := a.Cwnd()
				if math.IsNaN(w) || math.IsInf(w, 0) || w < 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
