package tcp

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// TestRTOBackoffCapsUnderRepeatedLoss blackholes every data segment and
// checks that the exponential backoff saturates (shift count capped at 16,
// deadline clamped to MaxRTO) instead of overflowing or melting into an RTO
// storm, and that the first ACK after the blackhole lifts resets it.
func TestRTOBackoffCapsUnderRepeatedLoss(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{cfgA: Config{MaxRTO: 20 * sim.Millisecond}})
	b.Listen()
	a.Connect(0)
	runFor(loop, 10*sim.Millisecond)
	if !a.Established() {
		t.Fatal("not established")
	}

	wa.drop = func(s *packet.Segment) bool { return s.TCP.PayloadLen > 0 }
	a.QueueBytes(8960)
	runFor(loop, 1*sim.Second)

	if a.backoff != 16 {
		t.Fatalf("backoff = %d, want saturation at 16", a.backoff)
	}
	if a.Stats.RTOFires < 17 {
		t.Fatalf("RTOFires = %d, want enough to saturate the backoff", a.Stats.RTOFires)
	}
	// Saturated, every deadline clamps to MaxRTO: 500 ms holds at most
	// 500/20 = 25 further fires (plus one boundary fire).
	fires := a.Stats.RTOFires
	runFor(loop, 500*sim.Millisecond)
	if d := a.Stats.RTOFires - fires; d > 26 {
		t.Fatalf("RTO storm after saturation: %d fires in 500 ms", d)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("invariants under repeated loss: %v", err)
	}

	// Lift the blackhole: the next RTO retransmission delivers, and the ACK
	// resets the backoff.
	wa.drop = nil
	runFor(loop, 200*sim.Millisecond)
	if b.Stats.BytesDelivered != 8960 {
		t.Fatalf("delivered %d bytes after recovery, want 8960", b.Stats.BytesDelivered)
	}
	if a.backoff != 0 {
		t.Fatalf("backoff = %d after recovery ACK, want 0", a.backoff)
	}
}

// TestRTOTimerCancelledWhenQueueDrains checks timer hygiene on the no-loss
// path: the rearm-per-ACK churn must stop the superseded timers, and once
// the retransmission queue drains the timer must be cancelled outright —
// no spurious fires while idle, no timer leak in the loop.
func TestRTOTimerCancelledWhenQueueDrains(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(0)
	runFor(loop, 10*sim.Millisecond)

	a.QueueBytes(20 * 8960)
	runFor(loop, 200*sim.Millisecond)
	if b.Stats.BytesDelivered != 20*8960 {
		t.Fatalf("delivered %d bytes, want %d", b.Stats.BytesDelivered, 20*8960)
	}
	if a.Stats.RTOFires != 0 {
		t.Fatalf("spurious RTO with no loss: %d fires", a.Stats.RTOFires)
	}
	if !a.rtx.empty() {
		t.Fatal("retransmission queue not drained")
	}
	if a.timer.Active() {
		t.Fatal("RTO timer still armed with an empty retransmission queue")
	}

	fired := a.Stats.RTOFires + a.Stats.TLPProbes
	runFor(loop, 2*sim.Second)
	if got := a.Stats.RTOFires + a.Stats.TLPProbes; got != fired {
		t.Fatalf("timer fired while idle: %d -> %d", fired, got)
	}
	if live := loop.Live(); live > 8 {
		t.Fatalf("timer leak: %d live timers after idle drain", live)
	}
}
