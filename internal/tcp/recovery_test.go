package tcp

// Regression tests for the loss-recovery machinery catalogued in
// DESIGN.md §6. Each of these encodes a bug that was actually hit while
// reproducing the paper's dynamics.

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// TestPRRThrottlesWindowedRespray: a sender whose window vastly exceeds the
// pipe (reTCP-style ramp into a tiny buffer) must not re-spray lost segments
// at line rate; recovery transmissions stay within a small multiple of
// deliveries.
func TestPRRThrottlesWindowedRespray(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	// Tiny bottleneck: drop every data segment beyond 8 outstanding.
	inNet := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		if inNet >= 8 {
			return true
		}
		inNet++
		loop.After(90*sim.Microsecond, func() { inNet-- })
		return false
	}
	a.Connect(-1)
	runFor(loop, 5*sim.Millisecond)
	sent := a.Stats.SegsSent
	acked := uint64(a.Stats.BytesAcked / int64(a.Config().MSS))
	if sent > 3*acked+100 {
		t.Fatalf("re-spray storm: sent %d segments for %d acked", sent, acked)
	}
	if b.Stats.BytesDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestNoRemarkWhileRetransmissionInFlight: once a lost segment is
// retransmitted, further SACK-counting ACKs must not immediately re-mark and
// re-send it (the once-per-RTT-forever cycle).
func TestNoRemarkWhileRetransmissionInFlight(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	// Drop exactly one specific data segment once; then deliver everything.
	n := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		n++
		return n == 5
	}
	a.Connect(60 * 8960)
	runFor(loop, 100*sim.Millisecond)
	if b.Stats.BytesDelivered != 60*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	// One drop -> at most a couple of retransmissions (the repair, possibly
	// a TLP), never a per-ACK stream of duplicates.
	if a.Stats.Retransmits > 3 {
		t.Fatalf("%d retransmissions for a single drop", a.Stats.Retransmits)
	}
	if b.Stats.DupSegsRcvd > 2 {
		t.Fatalf("%d duplicate segments at receiver for a single drop", b.Stats.DupSegsRcvd)
	}
}

// TestRTTNotSampledFromHoleRepair: a previously-SACKed segment passed by a
// later cumulative ACK must not contribute an RTT sample — its "RTT" would
// measure hole repair time, not the path.
func TestRTTNotSampledFromHoleRepair(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	// Drop one early segment; delay its repair by forcing RTO-scale loss
	// (drop the first two retransmissions too).
	n, drops := 0, 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		n++
		if n == 3 {
			return true
		}
		if s.TCP.Seq == a.iss+1+2*8960 && drops < 2 { // retransmissions of seg 3
			drops++
			return true
		}
		return false
	}
	a.Connect(40 * 8960)
	runFor(loop, 200*sim.Millisecond)
	if b.Stats.BytesDelivered != 40*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	st := a.States()[0]
	// Path RTT is 100us; the hole repair took ≥ an RTO (1ms+). A polluted
	// estimator would show srtt far above the path RTT.
	if st.SRTT() > 300*sim.Microsecond {
		t.Fatalf("srtt = %v polluted by hole-repair samples", st.SRTT())
	}
}

// TestRTONotPostponedByNotifications: a stream of TDN notifications (each of
// which calls trySend and re-arms timers) must not postpone the RTO
// deadline; the RTO anchors at the head segment's transmit time.
func TestRTONotPostponedByNotifications(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{
		cfgA: Config{NumTDNs: 2, Policy: nil, MinRTO: 1 * sim.Millisecond},
	})
	b.Listen()
	blackhole := false
	wa.drop = func(s *packet.Segment) bool { return blackhole && s.TCP.PayloadLen > 0 }
	a.Connect(-1)
	runFor(loop, 2*sim.Millisecond)
	blackhole = true
	// Notify every 100us, far more often than the 1ms RTO.
	for i := 0; i < 100; i++ {
		runFor(loop, 100*sim.Microsecond)
		a.Notify(i%2, uint32(i+10))
	}
	if a.Stats.RTOFires == 0 {
		t.Fatal("RTO never fired despite a 10ms blackhole under notification load")
	}
}

// TestKickRecoveryRestartsStalledRecovery: with an empty pipe, lost data and
// no ACK clock, KickRecovery must emit exactly one retransmission.
func TestKickRecoveryRestartsStalledRecovery(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{cfgA: Config{MinRTO: 50 * sim.Millisecond}})
	b.Listen()
	blackhole := false
	wa.drop = func(s *packet.Segment) bool { return blackhole && s.TCP.PayloadLen > 0 }
	a.Connect(6 * 8960)
	runFor(loop, 1*sim.Millisecond)
	blackhole = true
	a.QueueBytes(6 * 8960)
	runFor(loop, 10*sim.Millisecond) // everything outstanding is black-holed
	// Force the lost marks via a probe ACK cycle: wait for dupacks to mark.
	st := a.States()[0]
	if st.LostOut() == 0 {
		// Mark manually through the public-ish path: simulate RTO-scale
		// stall by invoking fireRTO via its timer is not possible here; use
		// KickRecovery's precondition directly.
		t.Skip("no lost marks in this configuration")
	}
	sent := a.Stats.SegsSent
	a.KickRecovery()
	if a.Stats.SegsSent != sent+1 {
		t.Fatalf("KickRecovery sent %d segments, want 1", a.Stats.SegsSent-sent)
	}
	// Idempotent while the retransmission is outstanding.
	a.KickRecovery()
	if a.Stats.SegsSent != sent+1 {
		t.Fatal("KickRecovery re-fired with a non-empty pipe")
	}
	blackhole = false
	runFor(loop, 200*sim.Millisecond)
	if b.Stats.BytesDelivered != 12*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
}

// TestUndoRequiresNoOutstandingLoss: a D-SACK must not undo the reduction
// while other segments are still marked lost.
func TestUndoRequiresNoOutstandingLoss(t *testing.T) {
	loop := sim.NewLoop(3)
	wa := &wire{loop: loop, delay: 50 * sim.Microsecond}
	wb := &wire{loop: loop, delay: 50 * sim.Microsecond}
	a := NewConn(loop, Config{}, wa.send)
	b := NewConn(loop, Config{}, wb.send)
	a.LocalAddr, a.RemoteAddr, a.LocalPort, a.RemotePort = 1, 2, 1, 2
	b.LocalAddr, b.RemoteAddr, b.LocalPort, b.RemotePort = 2, 1, 2, 1
	wa.dst, wb.dst = b, a
	b.Listen()
	// Duplicate one delivered segment (to provoke a D-SACK) while another
	// is genuinely lost.
	n := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		n++
		if n == 4 {
			// Deliver twice: duplicate triggers a D-SACK.
			cp := *s
			bb := cp.Serialize(nil)
			loop.After(200*sim.Microsecond, func() {
				var dup packet.Segment
				if err := packet.Parse(bb, &dup); err == nil {
					b.Input(&dup)
				}
			})
			return false
		}
		return n == 6 // genuine loss
	}
	a.Connect(40 * 8960)
	loop.RunUntil(sim.Time(50 * sim.Millisecond))
	if b.Stats.BytesDelivered != 40*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if b.Stats.DSACKsSent == 0 {
		t.Fatal("scenario did not produce a D-SACK")
	}
}

// TestPerStateCCFactories: CCPerState gives each path state its own
// algorithm (§3.5 heterogeneous CCAs).
func TestPerStateCCFactories(t *testing.T) {
	loop := sim.NewLoop(1)
	cfg := Config{
		NumTDNs: 2,
		Policy:  &fakeTwoState{},
		CC:      func() cc.Algorithm { return cc.NewCubic() },
		CCPerState: []cc.Factory{
			func() cc.Algorithm { return cc.NewCubic() },
			func() cc.Algorithm { return cc.NewDCTCP() },
		},
	}
	c := NewConn(loop, cfg, func(*packet.Segment) {})
	if c.States()[0].CC.Name() != "cubic" || c.States()[1].CC.Name() != "dctcp" {
		t.Fatalf("per-state CC = %s/%s", c.States()[0].CC.Name(), c.States()[1].CC.Name())
	}
	// Fallback to CC when the slice is short.
	cfg.CCPerState = cfg.CCPerState[:1]
	c2 := NewConn(loop, cfg, func(*packet.Segment) {})
	if c2.States()[1].CC.Name() != "cubic" {
		t.Fatalf("fallback CC = %s", c2.States()[1].CC.Name())
	}
}

// fakeTwoState is a minimal two-state policy for configuration tests.
type fakeTwoState struct{ SinglePath }

func (f *fakeTwoState) NumStates() int { return 2 }

// TestPRRAllowanceSpentPerAck: within one ACK's worth of sending, recovery
// transmissions cannot exceed the allowance regardless of how often trySend
// is invoked.
func TestPRRAllowanceSpentPerAck(t *testing.T) {
	ps := NewPathState(cc.NewCubic())
	ps.CC.OnAck(cc.AckEvent{Acked: 90}) // grow cwnd to 100
	ps.SetPacketsOut(100)
	ps.SetCA(CARecovery)
	ps.CC.OnEnterRecovery(0, 100) // ssthresh = 70
	ps.enterRecoveryPRR()
	if got := ps.prrBudget(); got != 1 {
		t.Fatalf("entry allowance = %d, want 1", got)
	}
	ps.prrSpend()
	if got := ps.prrBudget(); got != 0 {
		t.Fatalf("allowance after spend = %d, want 0", got)
	}
	// A delivery credit reopens it.
	ps.SetLostOut(60) // pipe = 40 < ssthresh? ssthresh=70 -> slow-start branch
	ps.prrDelivered += 5
	ps.updatePRR(5)
	if got := ps.prrBudget(); got <= 0 {
		t.Fatalf("allowance after delivery = %d, want > 0", got)
	}
	// Spending drains it to zero, and it stays zero without new deliveries.
	for i := 0; i < 100 && ps.prrBudget() > 0; i++ {
		ps.prrSpend()
	}
	if ps.prrBudget() != 0 {
		t.Fatal("allowance not drainable")
	}
}
