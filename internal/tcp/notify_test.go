package tcp

import (
	"math"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/sim"
)

// TestNotifyEpochWraparound is the regression test for the notification
// epoch gate crossing math.MaxUint32: serial-number arithmetic must keep
// treating post-wrap epochs as fresh, and pre-wrap replays as stale.
func TestNotifyEpochWraparound(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(0)
	runFor(loop, 10*sim.Millisecond)

	const max = math.MaxUint32
	a.Notify(0, max-1) // first real epoch observed
	a.Notify(0, max)   // fresh
	a.Notify(0, 2)     // wrapped past MaxUint32: still fresh
	if a.Stats.NotifiesStale != 0 || a.Stats.NotifiesDup != 0 {
		t.Fatalf("fresh wrapped epoch misclassified: stale=%d dup=%d",
			a.Stats.NotifiesStale, a.Stats.NotifiesDup)
	}
	a.Notify(0, 2) // exact replay
	if a.Stats.NotifiesDup != 1 {
		t.Fatalf("duplicate epoch not caught: dup=%d", a.Stats.NotifiesDup)
	}
	a.Notify(0, max) // pre-wrap epoch arriving late: stale now
	if a.Stats.NotifiesStale != 1 {
		t.Fatalf("stale pre-wrap epoch not caught: stale=%d", a.Stats.NotifiesStale)
	}
	a.Notify(0, 3) // gate advances normally after the wrap
	a.Notify(0, 0) // epoch 0 bypasses the gate (direct drivers)
	if a.Stats.NotifiesRcvd != 7 {
		t.Fatalf("NotifiesRcvd = %d, want 7", a.Stats.NotifiesRcvd)
	}
	if a.Stats.NotifiesStale != 1 || a.Stats.NotifiesDup != 1 {
		t.Fatalf("final counts stale=%d dup=%d, want 1/1",
			a.Stats.NotifiesStale, a.Stats.NotifiesDup)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
