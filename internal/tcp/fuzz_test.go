package tcp

import (
	"encoding/binary"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// FuzzConnDeliver crafts adversarial segment streams — hostile sequence and
// ACK numbers, ghost SACKs, out-of-range TDN tags, flag soup, replayed
// notifications — and delivers them into an established TD-capable pair with
// data in flight. The connection must neither panic nor break a scoreboard
// invariant, no matter what arrives off the wire.
func FuzzConnDeliver(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x10, 9, 0, 0, 0, 9, 0, 0, 0, 0, 1, 1, 0, 0, 0})
	f.Add([]byte{
		0x42, 0x20, 0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 2, 0, 40, 0, 0, 1,
		0x81, 0x00, 0, 0, 0, 0x80, 0, 0, 0, 0x80, 9, 9, 0, 0, 0, 0,
	})
	f.Add([]byte{0xfe, 0x03, 0x34, 0x12, 0, 0, 0x78, 0x56, 0, 0, 3, 2, 1, 0xff, 0xff, 0xff})

	flagTable := [8]uint8{
		0, packet.FlagFIN, packet.FlagRST, packet.FlagSYN,
		packet.FlagECE, packet.FlagCWR, packet.FlagPSH, packet.FlagFIN | packet.FlagRST,
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		loop, a, b, _, _ := newPair(t, pairOpt{
			cfgA: Config{NumTDNs: 2},
			cfgB: Config{NumTDNs: 2},
		})
		b.Listen()
		a.Connect(0)
		runFor(loop, 10*sim.Millisecond)
		a.QueueBytes(50 * 8960)
		runFor(loop, 2*sim.Millisecond) // get data and SACK state in flight

		for len(data) >= 16 {
			rec := data[:16]
			data = data[16:]

			target, peer := b, a
			if rec[0]&1 != 0 {
				target, peer = a, b
			}
			if rec[0]&2 != 0 {
				// Replay a TDN notification with an arbitrary epoch.
				target.Notify(int(rec[10]%3), binary.LittleEndian.Uint32(rec[2:6]))
			} else {
				seg := &packet.Segment{
					Src: peer.LocalAddr, Dst: target.LocalAddr,
					TTL: 64, Proto: packet.ProtoTCP,
				}
				h := &seg.TCP
				h.SrcPort, h.DstPort = peer.LocalPort, target.LocalPort
				h.Seq = target.rcvNxt() + binary.LittleEndian.Uint32(rec[2:6])
				h.Ack = target.sndUna() + binary.LittleEndian.Uint32(rec[6:10])
				h.Flags = packet.FlagACK | flagTable[(rec[0]>>2)&7]
				h.Window = 1 << 20
				h.PayloadLen = int(rec[1]) * 128
				if rec[0]&0x20 != 0 {
					h.TDPresent = true
					h.TDFlags = packet.TDFlagData | packet.TDFlagACK
					h.DataTDN = rec[10] // may be far out of range
					h.AckTDN = rec[11]
				}
				if rec[0]&0x40 != 0 {
					start := target.sndUna() + binary.LittleEndian.Uint32(rec[12:16])
					h.SACKPermitted = true
					h.SACK = []packet.SACKBlock{
						{Start: start, End: start + uint32(rec[10])*512 + 1},
						{Start: start + 1<<16, End: start + 1<<16 + uint32(rec[11])*512 + 1},
					}
				}
				if rec[0]&0x80 != 0 {
					seg.ECN = packet.ECNCE
				}
				target.Input(seg)
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("sender invariants: %v", err)
			}
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("receiver invariants: %v", err)
			}
		}

		// The pair must still run to quiescence without panicking.
		runFor(loop, 5*sim.Millisecond)
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("sender invariants after drain: %v", err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("receiver invariants after drain: %v", err)
		}
	})
}
