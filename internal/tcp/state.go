// Package tcp implements a Linux-flavoured userspace TCP data path over the
// discrete-event simulator: a unified sequence space, cumulative ACKs with
// SACK (RFC 2018) and D-SACK (RFC 2883), the Open/Disorder/Recovery/Loss
// congestion-state machine, fast retransmit, RACK-TLP time-based loss
// detection (RFC 8985), RTO estimation per RFC 6298 with Karn's rule, and
// pluggable congestion control.
//
// Path state (congestion control, RTT estimation, pipe accounting) is held
// in PathState objects managed through the Policy interface, so the TDTCP
// engine in internal/core can multiplex several states over one connection
// (§3.1, §4.3 of the paper) while single-path variants use exactly one.
package tcp

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Sequence-number arithmetic on the wrapping 32-bit space: thin aliases of
// the exported RFC 1982 family in internal/packet, kept for call-site
// brevity on the data path.
func seqLT(a, b uint32) bool    { return packet.SeqLT(a, b) }
func seqLEQ(a, b uint32) bool   { return packet.SeqLEQ(a, b) }
func seqGT(a, b uint32) bool    { return packet.SeqGT(a, b) }
func seqGEQ(a, b uint32) bool   { return packet.SeqGEQ(a, b) }
func seqMax(a, b uint32) uint32 { return packet.SeqMax(a, b) }
func seqDiff(a, b uint32) int32 { return packet.SeqDiff(a, b) }

// CAState mirrors Linux's tcp_ca_state machine. TDTCP keeps one per TDN
// (Figure 4).
type CAState uint8

// Congestion-avoidance machine states.
const (
	CAOpen CAState = iota
	CADisorder
	CARecovery
	CALoss
)

func (s CAState) String() string {
	switch s {
	case CAOpen:
		return "open"
	case CADisorder:
		return "disorder"
	case CARecovery:
		return "recovery"
	case CALoss:
		return "loss"
	default:
		return fmt.Sprintf("CAState(%d)", uint8(s))
	}
}

// PathState is the per-path ("per-TDN" in TDTCP) state bundle of §3.1: pipe
// variables, congestion-control variables, and delay/RTT variables.
//
// The hot fields — the RFC 6298 RTT estimator (SRTT, RTTVar, RTO, Samples),
// the congestion state machine (CA, RecoveryPoint, DupAcks), and the §4.3
// pipe counters (PacketsOut, SackedOut, LostOut, RetransOut) — live in the
// struct-of-arrays Slab, indexed by idx, and are reached through the accessor
// methods in slab.go. PathState itself keeps only the identity, the
// congestion-control instance (which owns cwnd/ssthresh), and the cold
// recovery-episode bookkeeping.
type PathState struct {
	TDN uint8
	CC  cc.Algorithm

	slab *Slab
	idx  int32

	// Undo bookkeeping: retransmissions in the current recovery episode
	// not yet proven spurious by D-SACKs.
	undoRetrans  int
	undoPossible bool

	// Proportional Rate Reduction (RFC 6937) state for the current
	// recovery episode: without it, a large pre-loss window lets the
	// sender re-spray every lost segment at line rate.
	prrDelivered int
	prrOut       int
	recoverFS    int
	// prrAllowance is the unspent send allowance of the most recent ACK.
	prrAllowance int

	// recSpan is the open "recovery" causal span for the current
	// Recovery/Loss episode (0 = none). Opened on the Open/Disorder ->
	// Recovery/Loss entry, kept open across a Recovery -> Loss escalation,
	// and closed on recovery exit or D-SACK undo; see Conn.beginRecoverySpan.
	recSpan trace.SpanID
}

// updatePRR recomputes the recovery send allowance on an ACK that delivered
// deliveredNow segments (RFC 6937): proportional rate reduction while the
// pipe exceeds ssthresh, slow-start-like hole repair below it. The allowance
// is spent by transmissions until the next ACK — computing it once per ACK
// (rather than re-deriving it on every send attempt) is what bounds recovery
// to the delivery rate.
//
// PRR governs fast recovery only; after an RTO (CALoss) Linux repairs by
// plain slow start from cwnd=1, and so do we.
func (ps *PathState) updatePRR(deliveredNow int) {
	if ps.CA() != CARecovery {
		return
	}
	pipe := ps.InFlight()
	ssthresh := int(ps.CC.Ssthresh())
	var sndcnt int
	if pipe > ssthresh {
		if ps.recoverFS > 0 {
			sndcnt = (ps.prrDelivered*ssthresh+ps.recoverFS-1)/ps.recoverFS - ps.prrOut
		}
	} else {
		// Slow-start branch: MAX(prr_delivered - prr_out, DeliveredData)+1,
		// never growing the pipe beyond ssthresh.
		sndcnt = ps.prrDelivered - ps.prrOut
		if deliveredNow > sndcnt {
			sndcnt = deliveredNow
		}
		sndcnt++
		if pipe+sndcnt > ssthresh {
			sndcnt = ssthresh - pipe
		}
	}
	if sndcnt < 0 {
		sndcnt = 0
	}
	ps.prrAllowance = sndcnt
}

// prrBudget returns the unspent portion of the current ACK's allowance.
func (ps *PathState) prrBudget() int {
	if ps.CA() != CARecovery {
		return 1 << 30
	}
	return ps.prrAllowance
}

// prrSpend charges one transmission against the allowance.
func (ps *PathState) prrSpend() {
	ps.prrOut++
	if ps.prrAllowance > 0 {
		ps.prrAllowance--
	}
}

// enterRecoveryPRR resets the PRR accounting at a recovery/loss entry. The
// initial allowance of 1 lets the fast retransmission go out immediately.
func (ps *PathState) enterRecoveryPRR() {
	ps.prrDelivered = 0
	ps.prrOut = 0
	ps.prrAllowance = 1
	ps.recoverFS = ps.InFlight()
	if ps.recoverFS < 1 {
		ps.recoverFS = 1
	}
}

// InFlight estimates the packets of this state currently in the network:
// sent and neither SACKed nor presumed lost.
//
//lint:hotpath read on every ACK and send attempt
func (ps *PathState) InFlight() int {
	s, i := ps.slab, ps.idx
	n := s.packetsOut[i] - s.sackedOut[i] - s.lostOut[i]
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Cwnd returns the state's congestion window in packets.
func (ps *PathState) Cwnd() float64 { return ps.CC.Cwnd() }

// ObserveRTT folds a fresh RTT sample into the estimator (RFC 6298) and
// recomputes RTO within [minRTO, maxRTO].
//
//lint:hotpath runs once per accepted RTT sample
func (ps *PathState) ObserveRTT(sample sim.Dur, minRTO, maxRTO sim.Dur) {
	if sample <= 0 {
		return
	}
	s, i := ps.slab, ps.idx
	if s.samples[i] == 0 {
		s.srtt[i] = sample
		s.rttvar[i] = sample / 2
	} else {
		diff := s.srtt[i] - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar[i] = (3*s.rttvar[i] + diff) / 4
		s.srtt[i] = (7*s.srtt[i] + sample) / 8
	}
	s.samples[i]++
	rto := s.srtt[i] + 4*s.rttvar[i]
	if rto < minRTO {
		rto = minRTO
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	s.rto[i] = rto
}

// Policy abstracts how a connection manages its path state(s). The
// single-path policy (SinglePath) serves CUBIC/DCTCP/reTCP; the TDTCP
// policy in internal/core multiplexes one state per TDN and implements the
// paper's reordering and RTT heuristics.
type Policy interface {
	// Attach binds the policy to its connection; called once from NewConn,
	// after states are constructed.
	Attach(c *Conn)
	// NumStates is the number of PathStates the connection must allocate.
	NumStates() int
	// Active returns the index of the state governing new transmissions.
	Active() int
	// OnNotify delivers a network TDN-change notification.
	OnNotify(tdn int, epoch uint32)
	// DataTDN is the TDN tag for outgoing data segments.
	DataTDN() uint8
	// AckTDN is the TDN tag for outgoing ACKs.
	AckTDN() uint8
	// FilterLoss reports whether a loss candidate should be suppressed as
	// suspected cross-TDN reordering (§3.4). trigTDN is the TDN tag on the
	// ACK that exposed the hole (packet.NoTDN when untagged).
	FilterLoss(seg *TxSeg, trigTDN uint8) bool
	// RTTTarget maps an RTT sample measured from a segment sent on dataTDN
	// and acknowledged on ackTDN to the state index that should absorb it;
	// ok=false discards the sample (type-3 mixed samples, §4.4).
	RTTTarget(dataTDN, ackTDN uint8) (idx int, ok bool)
	// SegmentRTO returns the retransmission timeout for a segment sent on
	// tdn (§4.4's pessimistic cross-TDN synthesis for TDTCP).
	SegmentRTO(tdn uint8) sim.Dur
}

// SinglePath is the Policy for conventional single-path TCP: one state,
// no TDN awareness, no loss filtering.
type SinglePath struct {
	c *Conn
}

// NewSinglePath returns the conventional single-state policy.
func NewSinglePath() *SinglePath { return &SinglePath{} }

// Attach implements Policy.
func (p *SinglePath) Attach(c *Conn) { p.c = c }

// NumStates implements Policy.
func (p *SinglePath) NumStates() int { return 1 }

// Active implements Policy.
func (p *SinglePath) Active() int { return 0 }

// OnNotify implements Policy: single-path TCP ignores TDN notifications.
func (p *SinglePath) OnNotify(tdn int, epoch uint32) {}

// DataTDN implements Policy.
func (p *SinglePath) DataTDN() uint8 { return 0 }

// AckTDN implements Policy.
func (p *SinglePath) AckTDN() uint8 { return 0 }

// FilterLoss implements Policy: never suppress.
func (p *SinglePath) FilterLoss(seg *TxSeg, trigTDN uint8) bool { return false }

// RTTTarget implements Policy: all samples feed the single state.
func (p *SinglePath) RTTTarget(dataTDN, ackTDN uint8) (int, bool) { return 0, true }

// SegmentRTO implements Policy.
func (p *SinglePath) SegmentRTO(tdn uint8) sim.Dur { return p.c.states[0].RTO() }
