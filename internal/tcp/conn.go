package tcp

import (
	"fmt"
	"math"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Config parameterizes a connection. Zero values select data-center
// defaults matching the paper's testbed.
type Config struct {
	// MSS is the maximum payload per segment. Default 8960 (9000-byte
	// jumbo frames, §5.1, minus 40 header bytes).
	MSS int
	// RcvBuf is the receive buffer (advertised window ceiling) in bytes.
	// Default 4 MiB — large enough that single-path flows are never
	// flow-control limited, as in the paper's testbed.
	RcvBuf int
	// CC constructs the congestion-control algorithm, one instance per
	// path state. Default: CUBIC.
	CC cc.Factory
	// CCPerState, when non-nil, supplies a distinct factory per path state
	// (§3.5: "TDTCP could use multiple, different CCAs within a single
	// flow"). Entries beyond its length fall back to CC.
	CCPerState []cc.Factory
	// Policy manages path states. Default: NewSinglePath().
	Policy Policy
	// NumTDNs is the TDN count advertised in the TD_CAPABLE handshake
	// option. 0 or 1 disables TDTCP options on the wire.
	NumTDNs int
	// ECN enables ECT marking on data and ECE echo processing (DCTCP).
	ECN bool
	// DupThresh is the classic fast-retransmit duplicate threshold
	// (default 3).
	DupThresh int
	// RACK enables time-based loss detection; TLP enables tail-loss
	// probes. Both default on (RFC 8985), as in Linux 5.8.
	RACK, TLP bool
	// DisableRACK/DisableTLP turn the defaults off.
	DisableRACK, DisableTLP bool
	// MinRTO, MaxRTO, InitialRTO bound the retransmission timer. The
	// defaults (1 ms, 100 ms, 2 ms) reflect a data-center tuned stack; the
	// Internet defaults would dwarf the microsecond schedule.
	MinRTO, MaxRTO, InitialRTO sim.Dur
	// Pacing, when >0, spreads a window of segments over the estimated
	// RTT at the given gain instead of bursting (the §5.2 remedy for
	// TDTCP's initial burst).
	Pacing float64
	// Slab, when non-nil, is the shared struct-of-arrays backing store for
	// the connection's hot state (see slab.go). Connections of one
	// experiment should share a slab so their columns interleave densely;
	// when nil, NewConn creates a private one.
	Slab *Slab
}

func (cfg *Config) fillDefaults() {
	if cfg.MSS == 0 {
		cfg.MSS = 8960
	}
	if cfg.RcvBuf == 0 {
		cfg.RcvBuf = 4 << 20
	}
	if cfg.CC == nil {
		cfg.CC = func() cc.Algorithm { return cc.NewCubic() }
	}
	if cfg.Policy == nil {
		cfg.Policy = NewSinglePath()
	}
	if cfg.DupThresh == 0 {
		cfg.DupThresh = 3
	}
	cfg.RACK = !cfg.DisableRACK
	cfg.TLP = !cfg.DisableTLP
	if cfg.MinRTO == 0 {
		cfg.MinRTO = 1 * sim.Millisecond
	}
	if cfg.MaxRTO == 0 {
		cfg.MaxRTO = 100 * sim.Millisecond
	}
	if cfg.InitialRTO == 0 {
		cfg.InitialRTO = 2 * sim.Millisecond
	}
}

// connState is the connection lifecycle state (a deliberately small subset
// of the full TCP state machine; the evaluation uses long-lived flows).
type connState uint8

const (
	stClosed connState = iota
	stListen
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait   // our FIN sent, awaiting ACK
	stCloseWait // peer FIN received
	stDone
)

// Stats aggregates per-connection instrumentation counters.
type Stats struct {
	SegsSent, SegsRcvd    uint64
	BytesSent, BytesAcked int64

	Retransmits     uint64 // segments retransmitted (all causes)
	FastRetransmits uint64
	RTOFires        uint64
	TLPProbes       uint64

	// ReorderEvents counts ACKs that exposed a sequence hole below the
	// highest SACKed sequence; ReorderPackets counts the segments sitting
	// in such holes when first exposed (Fig. 10a's events / packets).
	ReorderEvents  uint64
	ReorderPackets uint64
	// LossMarks counts segments marked lost by the detectors;
	// FilteredMarks counts candidates suppressed by the TDTCP cross-TDN
	// filter (§3.4).
	LossMarks     uint64
	FilteredMarks uint64

	// Receiver side.
	BytesDelivered int64  // cumulative in-order payload
	DupSegsRcvd    uint64 // spurious retransmissions observed (ground truth)
	DSACKsSent     uint64

	Undos uint64 // spurious-recovery undos (D-SACK driven)

	RTTSamples        uint64
	RTTSamplesDropped uint64 // type-3 mixed-TDN samples discarded (§4.4)

	// TDN-change notification gating (graceful degradation under a faulty
	// control channel): received counts every delivery attempt, stale the
	// reordered ones rejected by the epoch gate, dup the exact replays.
	NotifiesRcvd  uint64
	NotifiesStale uint64
	NotifiesDup   uint64
}

// Conn is one endpoint of a simulated TCP connection. A Conn both sends
// (bulk data from a virtual application) and receives (delivering in-order
// bytes to a sink and generating ACKs).
type Conn struct {
	Loop *sim.Loop
	// Out transmits a segment toward the peer (typically rdcn.Host.Send).
	// The segment is only valid for the duration of the call: the connection
	// reuses its backing storage for the next transmission. Implementations
	// that retain it (delay queues, subflow gates) must Clone it first.
	Out func(*packet.Segment)

	cfg    Config
	policy Policy
	states []*PathState

	// Slab row ids: idx indexes the per-connection columns, pathBase the
	// first of NumStates contiguous per-path rows (see slab.go).
	slab     *Slab
	idx      int32
	pathBase int32

	LocalAddr, RemoteAddr uint32
	LocalPort, RemotePort uint16

	state     connState
	tdEnabled bool

	// Sender. The sndUna/sndNxt cursors live in the slab's per-connection
	// columns (slab.go accessors).
	iss           uint32
	rtx           rtxQueue
	backlog       int64 // bytes the app still wants to send; <0 = unbounded
	finQueued     bool
	peerWnd       uint32
	highestSacked uint32
	lastAckSeen   uint32

	// RACK state (RFC 8985).
	rackXmit   sim.Time
	rackEndSeq uint32

	// Reordering-episode tracking (Fig. 10 instrumentation).
	gapOpen bool
	gapMax  int

	// Timer: a single retransmission timer that is either a TLP probe
	// timer or an RTO, Linux-style. onTimerFn/paceFn are the callbacks,
	// bound once at construction so (re)arming never allocates a closure.
	//
	// The armed loop timer is a lower bound, not the deadline itself: the
	// deadline the connection actually wants lives in wantAt/wantTLP and is
	// lazily revalidated when the timer fires (armTimer re-arms eagerly only
	// when the wanted deadline moves EARLIER than the armed one). ACK-clock
	// churn — every ACK pushing the RTO a little further out — therefore
	// mutates two fields instead of a heap Stop+push pair.
	timer       sim.Timer
	onTimerFn   func()
	wantAt      sim.Time // deadline currently wanted; 0 = none (quiesced)
	wantTLP     bool     // the wanted deadline is a TLP probe, not an RTO
	backoff     uint
	tlpInFlight bool

	// Pacing.
	paceNext  sim.Time
	paceTimer sim.Timer
	paceFn    func()
	// lastTxAt anchors the TLP probe timer.
	lastTxAt sim.Time

	// Receiver. The rcvNxt cursor lives in the slab (slab.go accessors).
	irs        uint32
	ranges     []packet.SACKBlock // out-of-order received, sorted, disjoint
	mruBlock   []uint32           // recently updated range starts, MRU first
	dsack      packet.SACKBlock   // pending D-SACK block (dsackValid set)
	dsackValid bool
	peerTD     bool
	peerTDNs   int

	// Scratch storage reused across the data path so steady-state operation
	// allocates nothing: one outgoing segment (see the Out contract), the
	// per-state delivery and RTO-touch tallies, and a retransmission-queue
	// entry free list fed by popAcked.
	outSeg     packet.Segment
	delivered  []int
	rtoTouched []bool
	segFree    []*TxSeg
	segChunk   []TxSeg

	// notifySeen marks that at least one TDN notification was applied; the
	// epoch of the latest one lives in the slab. It distinguishes "no epoch
	// yet" from epoch values near the uint32 wrap, where no sentinel exists.
	notifySeen bool

	Stats Stats

	// OnDelivered, if set, is called whenever in-order delivery advances:
	// the receiver-side sequence progress of the paper's figures.
	OnDelivered func(now sim.Time, total int64)
	// OnDone, if set, is called once when the sender has delivered all
	// offered data and its FIN is acknowledged — the flow-completion
	// instant FCT accounting measures against.
	OnDone func(now sim.Time)
	// OnStateSwitch, if set, observes active-path-state switches (TDTCP).
	OnStateSwitch func(now sim.Time, from, to int)
	// OnSendBlocked, if set, is called when the sender wants to transmit
	// but is blocked (diagnostics).
	OnSendBlocked func(reason string)
	// TxSegmentHook, if set, is invoked on every outgoing data segment just
	// before serialization, with the retransmission-queue entry and the
	// header (MPTCP attaches its DSS mapping here).
	TxSegmentHook func(seg *TxSeg, h *packet.TCPHeader)
	// RxDataHook, if set, observes every arriving data segment's header
	// before receiver processing (MPTCP extracts the DSS mapping here).
	RxDataHook func(h *packet.TCPHeader)

	// Tracer, when non-nil, receives structured data-path events (CatTCP)
	// and congestion-control decisions (CatCC). Wire it with SetTracer so
	// the CC instances are hooked too; FlowID labels every event.
	Tracer *trace.Tracer
	// FlowID labels this connection's trace events (-1 = unlabeled).
	FlowID int
	// RTTHists, when populated, records every accepted RTT sample
	// (nanoseconds) into the histogram at the sample's target state index
	// (one per TDN under TDTCP). Entries may be nil and the slice may be
	// shorter than the state count; unmatched samples are simply unrecorded.
	RTTHists []*trace.Histogram
}

// NewConn constructs a connection. out transmits serialized segments toward
// the peer.
func NewConn(loop *sim.Loop, cfg Config, out func(*packet.Segment)) *Conn {
	cfg.fillDefaults()
	c := &Conn{Loop: loop, Out: out, cfg: cfg, policy: cfg.Policy, state: stClosed, FlowID: -1}
	c.onTimerFn = c.onTimer
	c.paceFn = func() { c.trySend() }
	n := c.policy.NumStates()
	if n < 1 {
		n = 1
	}
	if cfg.Slab == nil {
		cfg.Slab = NewSlab(1, n)
	}
	c.slab = cfg.Slab
	c.idx = c.slab.allocConn()
	c.pathBase = c.slab.allocPaths(n)
	// One contiguous block backs all path states; the hot fields live in
	// the slab columns at rows pathBase..pathBase+n-1.
	arr := make([]PathState, n)
	c.states = make([]*PathState, n)
	for i := 0; i < n; i++ {
		mk := cfg.CC
		if i < len(cfg.CCPerState) && cfg.CCPerState[i] != nil {
			mk = cfg.CCPerState[i]
		}
		st := &arr[i]
		st.TDN = uint8(i)
		st.CC = mk()
		st.slab = c.slab
		st.idx = c.pathBase + int32(i)
		c.slab.rto[st.idx] = cfg.InitialRTO
		c.states[i] = st
	}
	c.delivered = make([]int, n)
	c.rtoTouched = make([]bool, n)
	c.mruBlock = make([]uint32, 0, maxMRU)
	c.outSeg.TCP.SACK = make([]packet.SACKBlock, 0, 4)
	c.rtx.segs = make([]*TxSeg, 0, 64)
	c.segFree = make([]*TxSeg, 0, 64)
	c.policy.Attach(c)
	return c
}

// ReleaseSlab returns the connection's slab rows to the shared slab's free
// lists. Call only when the connection is finished and will receive no
// further events; the accessors index freed rows afterwards.
func (c *Conn) ReleaseSlab() {
	c.slab.releaseConn(c.idx)
	c.slab.releasePaths(c.pathBase, len(c.states))
}

// getTxSeg returns a zeroed retransmission-queue entry, recycling one retired
// by a cumulative ACK when available. Fresh entries are carved from
// chunk-allocated blocks so the queue's working set sits in a handful of
// contiguous arrays instead of one heap object per in-flight segment.
//
//lint:hotpath runs once per transmitted segment
func (c *Conn) getTxSeg() *TxSeg {
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree[n-1] = nil
		c.segFree = c.segFree[:n-1]
		*s = TxSeg{}
		return s
	}
	if len(c.segChunk) == 0 {
		c.refillSegChunk()
	}
	s := &c.segChunk[0]
	c.segChunk = c.segChunk[1:]
	return s
}

// refillSegChunk restocks the TxSeg carving block, 64 entries at a time.
// getTxSeg's amortized cold path, kept in its own non-inlined function so
// the //lint:hotpath contract on getTxSeg holds (allocations are charged to
// the callee); once the free list covers the flight size, it never runs.
//
//go:noinline
func (c *Conn) refillSegChunk() {
	c.segChunk = make([]TxSeg, 64)
}

// putTxSeg recycles a retransmission-queue entry the queue no longer
// references. Callers must not touch the entry afterwards.
//
//lint:hotpath runs once per cumulatively acked segment
func (c *Conn) putTxSeg(s *TxSeg) { c.segFree = append(c.segFree, s) }

// SetTracer attaches a tracer and flow label to the connection and hooks
// every path state's congestion-control instance so CC decisions surface as
// CatCC events. Pass nil to detach. Safe to call before or after the
// handshake; CC events carry the state's TDN and the algorithm name.
func (c *Conn) SetTracer(tr *trace.Tracer, flow int) {
	c.Tracer = tr
	c.FlowID = flow
	for i, st := range c.states {
		hook, ok := st.CC.(interface{ SetTrace(cc.TraceFunc) })
		if !ok {
			continue
		}
		if !tr.Enabled(trace.CatCC) {
			// No sink will ever see CatCC (flight-only tracers exclude it
			// by default): skip the closure so attaching the always-on
			// flight recorder stays allocation-free.
			hook.SetTrace(nil)
			continue
		}
		tdn, name := i, st.CC.Name()
		hook.SetTrace(func(event string, a, b float64) {
			if tr.Enabled(trace.CatCC) {
				tr.Emit(trace.CatCC, int64(c.Loop.Now()), event, flow, tdn, a, b, name)
			}
		})
	}
}

// emit reports a CatTCP data-path event; a no-op unless a tracer is attached
// with the category enabled (nil-check plus branch).
func (c *Conn) emit(name string, tdn int, a, b float64, s string) {
	if c.Tracer.Enabled(trace.CatTCP) {
		c.Tracer.Emit(trace.CatTCP, int64(c.Loop.Now()), name, c.FlowID, tdn, a, b, s)
	}
}

// emitCA reports a congestion-avoidance state transition on one path state.
func (c *Conn) emitCA(st *PathState, from CAState) {
	if c.Tracer.Enabled(trace.CatTCP) && from != st.CA() {
		c.Tracer.Emit(trace.CatTCP, int64(c.Loop.Now()), "ca_state",
			c.FlowID, int(st.TDN), float64(from), float64(st.CA()), st.CA().String())
	}
}

// beginRecoverySpan opens the per-state "recovery" causal span at a
// Recovery/Loss entry. Idempotent across a Recovery -> Loss escalation: the
// episode stays one span until endRecoverySpan closes it.
func (c *Conn) beginRecoverySpan(st *PathState) {
	if st.recSpan == 0 {
		st.recSpan = c.Tracer.BeginSpan(trace.CatTCP, int64(c.Loop.Now()),
			"recovery", c.FlowID, int(st.TDN), c.Tracer.Parent())
	}
}

// endRecoverySpan closes the state's recovery span. The E payload carries
// the CA state the episode ends in (A) and whether it was a D-SACK undo (B:
// 1 = spurious episode undone, 0 = genuine recovery completed).
func (c *Conn) endRecoverySpan(st *PathState, undo bool) {
	if st.recSpan == 0 {
		return
	}
	b := 0.0
	if undo {
		b = 1.0
	}
	c.Tracer.EndSpan(trace.CatTCP, int64(c.Loop.Now()),
		"recovery", c.FlowID, int(st.TDN), st.recSpan, float64(st.CA()), b)
	st.recSpan = 0
}

// States exposes the path states (read-mostly; policies mutate them).
func (c *Conn) States() []*PathState { return c.states }

// ActiveState returns the state governing new transmissions.
func (c *Conn) ActiveState() *PathState { return c.states[c.policy.Active()] }

// Config returns the effective configuration.
func (c *Conn) Config() Config { return c.cfg }

// SndUna and SndNxt expose sender cursors (for policies and tests).
func (c *Conn) SndUna() uint32 { return c.sndUna() }

// SndNxt returns the next sequence number to be sent.
func (c *Conn) SndNxt() uint32 { return c.sndNxt() }

// RcvNxt returns the receiver's next expected sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt() }

// RelSeq translates an absolute data sequence number into a 0-based stream
// offset (the SYN consumes one sequence number).
func (c *Conn) RelSeq(seq uint32) uint32 { return seq - c.iss - 1 }

// AbsSeq is the inverse of RelSeq.
func (c *Conn) AbsSeq(off uint32) uint32 { return off + c.iss + 1 }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state >= stEstablished && c.state != stDone }

// TDEnabled reports whether the TD_CAPABLE handshake negotiated TDTCP
// options on this connection.
func (c *Conn) TDEnabled() bool { return c.tdEnabled }

// totalPacketsOut is the §4.3 "all TDNs" sum used to validate ACKs.
func (c *Conn) totalPacketsOut() int {
	n := 0
	for _, st := range c.states {
		n += st.PacketsOut()
	}
	return n
}

// Listen places the connection in passive-open state.
func (c *Conn) Listen() {
	if c.state != stClosed {
		panic("tcp: Listen on non-closed conn")
	}
	c.state = stListen
}

// Connect performs an active open and queues bytes of application data
// (bytes < 0 streams indefinitely).
func (c *Conn) Connect(bytes int64) {
	if c.state != stClosed {
		panic("tcp: Connect on non-closed conn")
	}
	c.backlog = bytes
	c.iss = c.Loop.Rand().Uint32()
	c.setSndUna(c.iss)
	c.setSndNxt(c.iss)
	c.highestSacked = c.iss
	c.state = stSynSent
	c.sendSYN(false)
}

// QueueBytes adds application data to an established or connecting flow.
func (c *Conn) QueueBytes(bytes int64) {
	if c.backlog < 0 {
		return
	}
	c.backlog += bytes
	c.trySend()
}

// Backlog returns unqueued application bytes remaining (<0 = unbounded).
func (c *Conn) Backlog() int64 { return c.backlog }

// Close queues a FIN after any remaining data. Calling Close before the
// handshake completes defers the FIN until after the data drains.
func (c *Conn) Close() {
	switch c.state {
	case stSynSent, stSynRcvd, stEstablished, stCloseWait:
		c.finQueued = true
		c.trySend()
	default:
		// stListen has no peer; stFinWait already sent its FIN; stClosed
		// and stDone have nothing left to close.
	}
}

// Notify delivers a TDN-change notification (the parsed ICMP of Fig. 5a) to
// the connection's policy. Stale and duplicate epochs are discarded using
// serial-number arithmetic (RFC 1982), so the gate survives the epoch counter
// wrapping past math.MaxUint32. Epoch 0 bypasses the gate (tests and direct
// drivers that do not maintain epochs).
func (c *Conn) Notify(tdn int, epoch uint32) {
	c.Stats.NotifiesRcvd++
	if epoch != 0 {
		if c.notifySeen {
			if epoch == c.notifyEpoch() {
				c.Stats.NotifiesDup++
				c.emit("notify_dup", tdn, float64(epoch), 0, "")
				return
			}
			if seqLT(epoch, c.notifyEpoch()) {
				c.Stats.NotifiesStale++
				c.emit("notify_stale", tdn, float64(epoch), float64(c.notifyEpoch()), "")
				return
			}
		}
		c.notifySeen = true
		c.setNotifyEpoch(epoch)
	}
	c.policy.OnNotify(tdn, epoch)
	// A path switch may have opened the window: try to transmit.
	c.trySend()
}

// Kick re-runs the transmit engine. Policies call it after mutating path
// state outside the ACK/notification paths (e.g. the TDTCP deadman fallback
// switching the active TDN), where a freshly opened window would otherwise
// sit idle until the next ACK.
func (c *Conn) Kick() { c.trySend() }

// KickRecovery restarts a stalled recovery: when the active state sits in
// Recovery/Loss with an empty pipe and lost segments, PRR has no delivery
// credit and no ACK clock, so nothing would move until the RTO. Sending one
// lost segment is plain packet conservation. MPTCP's scheduler calls this on
// the subflow it activates.
func (c *Conn) KickRecovery() {
	st := c.ActiveState()
	if (st.CA() != CARecovery && st.CA() != CALoss) || st.InFlight() > 0 || st.LostOut() == 0 {
		return
	}
	var victim *TxSeg
	c.rtx.forEach(func(seg *TxSeg) bool {
		if seg.Lost && !seg.Sacked {
			victim = seg
			return false
		}
		return true
	})
	if victim != nil {
		c.Stats.FastRetransmits++
		c.transmitSeg(victim, true)
		c.armTimer()
	}
}

// CircuitUp/CircuitDown forward explicit circuit signals to circuit-aware
// congestion control (reTCP).
func (c *Conn) CircuitUp() {
	for _, st := range c.states {
		if ca, ok := st.CC.(cc.CircuitAware); ok {
			ca.OnCircuitUp(c.Loop.Now())
		}
	}
	c.trySend()
}

// CircuitDown signals circuit teardown to circuit-aware CC.
func (c *Conn) CircuitDown() {
	for _, st := range c.states {
		if ca, ok := st.CC.(cc.CircuitAware); ok {
			ca.OnCircuitDown(c.Loop.Now())
		}
	}
}

// --- segment construction ------------------------------------------------

// newSegment resets the connection's scratch segment for the next
// transmission. The returned pointer is handed to Out and reused afterwards
// (the Out contract); the SACK backing array is preserved across resets so
// fillSACK appends without allocating.
//
//lint:hotpath runs once per transmitted segment
func (c *Conn) newSegment(flags uint8) *packet.Segment {
	s := &c.outSeg
	sack := s.TCP.SACK[:0]
	*s = packet.Segment{
		Src: c.LocalAddr, Dst: c.RemoteAddr, TTL: 64, Proto: packet.ProtoTCP,
		TCP: packet.TCPHeader{
			SrcPort: c.LocalPort, DstPort: c.RemotePort,
			Flags:  flags,
			Window: uint32(c.rcvWindow()),
			Ack:    c.rcvNxt(),
			SACK:   sack,
		},
	}
	if c.cfg.ECN && flags&packet.FlagSYN == 0 {
		s.ECN = packet.ECNECT0
	}
	return s
}

func (c *Conn) rcvWindow() int {
	held := 0
	for _, r := range c.ranges {
		held += int(r.End - r.Start)
	}
	w := c.cfg.RcvBuf - held
	if w < 0 {
		w = 0
	}
	return w
}

func (c *Conn) sendSYN(ack bool) {
	flags := uint8(packet.FlagSYN)
	seq := c.iss
	if ack {
		flags |= packet.FlagACK
	}
	s := c.newSegment(flags)
	s.TCP.Seq = seq
	s.TCP.SACKPermitted = true
	if c.cfg.NumTDNs > 1 {
		s.TCP.TDCapable = true
		s.TCP.NumTDNs = uint8(c.cfg.NumTDNs)
	}
	if c.sndNxt() == c.iss {
		// First transmission: the SYN occupies one sequence number and,
		// per Appendix A.2, is always tracked under TDN 0.
		c.setSndNxt(c.iss + 1)
		seg := c.getTxSeg()
		seg.Seq, seg.Len, seg.TDN = seq, 1, 0
		seg.SentAt, seg.FirstSentAt = c.Loop.Now(), c.Loop.Now()
		c.rtx.push(seg)
		c.states[0].AddPacketsOut(1)
	}
	c.Stats.SegsSent++
	c.Out(s)
	c.armTimer()
}

// sendData transmits (or retransmits) the given range as one segment.
func (c *Conn) transmitSeg(seg *TxSeg, isRetrans bool) {
	now := c.Loop.Now()
	dataTDN := c.policy.DataTDN()
	if isRetrans {
		st := c.states[seg.TDN]
		st.undoRetrans++ // D-SACK undo bookkeeping on the recovering state
		// The retransmission moves the segment to the current TDN: its
		// pipe accounting follows (§4.3 "any TDN" scheduling, with the
		// copy in flight belonging to the TDN that carries it).
		st.AddPacketsOut(-1)
		if seg.Lost {
			st.AddLostOut(-1)
			seg.Lost = false
		}
		if seg.Retrans {
			st.AddRetransOut(-1)
		}
		nst := c.states[dataTDN]
		nst.AddPacketsOut(1)
		nst.AddRetransOut(1)
		seg.Retrans = true
		seg.EverRetrans = true
		seg.Retransmits++
		c.Stats.Retransmits++
		c.emit("retransmit", int(dataTDN), float64(c.RelSeq(seg.Seq)), float64(seg.Retransmits), "")
	}
	seg.TDN = dataTDN
	seg.SentAt = now
	c.lastTxAt = now

	s := c.newSegment(packet.FlagACK | packet.FlagPSH)
	s.TCP.Seq = seg.Seq
	s.TCP.PayloadLen = seg.Len
	c.attachTDOption(s, true)
	if c.TxSegmentHook != nil {
		c.TxSegmentHook(seg, &s.TCP)
	}
	c.Stats.SegsSent++
	c.Stats.BytesSent += int64(seg.Len)
	c.Out(s)
}

// attachTDOption adds the TD_DATA_ACK option when negotiated. Data segments
// carry both the data TDN and (piggybacked ACK) the ack TDN.
func (c *Conn) attachTDOption(s *packet.Segment, hasData bool) {
	if !c.tdEnabled {
		return
	}
	s.TCP.TDPresent = true
	s.TCP.TDFlags = packet.TDFlagACK
	s.TCP.AckTDN = c.policy.AckTDN()
	s.TCP.DataTDN = packet.NoTDN
	if hasData {
		s.TCP.TDFlags |= packet.TDFlagData
		s.TCP.DataTDN = c.policy.DataTDN()
	}
}

// --- transmit path ---------------------------------------------------------

// trySend drives the output engine: retransmissions first (any-TDN rule),
// then new data, gated by the active state's congestion window and the
// peer's receive window.
func (c *Conn) trySend() {
	if c.state != stEstablished && c.state != stCloseWait && c.state != stFinWait {
		return
	}
	active := c.ActiveState()
	activeTDN := uint8(c.policy.Active())
	// cwnd-based budget protects the pipe; PRR additionally throttles the
	// active TDN's own recovery (cross-TDN repairs are "retransmitted at
	// the earliest opportunity", §4.3, and bypass PRR).
	pipeBudget := func() int {
		return int(active.Cwnd()) - active.InFlight()
	}
	budget := func() int {
		b := pipeBudget()
		if prr := active.prrBudget(); prr < b {
			b = prr
		}
		return b
	}

	// Retransmissions: schedule when any TDN has lost segments (§4.3
	// "any TDN": logical OR over states).
	anyLost := false
	for _, st := range c.states {
		if st.LostOut() > 0 && (st.CA() == CARecovery || st.CA() == CALoss) {
			anyLost = true
			break
		}
	}
	if anyLost {
		c.rtx.forEach(func(seg *TxSeg) bool {
			if pipeBudget() <= 0 {
				return false
			}
			if seg.Lost && !seg.Sacked {
				sameTDN := seg.TDN == activeTDN
				if sameTDN && budget() <= 0 {
					return true // PRR-throttled; later same-TDN segs too, but
					// cross-TDN repairs behind them may still go
				}
				if !c.paceGate() {
					return false
				}
				c.Stats.FastRetransmits++
				if sameTDN {
					active.prrSpend()
				}
				c.transmitSeg(seg, true)
			}
			return true
		})
	}

	// New data.
	for budget() > 0 {
		if !c.sendNewSegment() {
			break
		}
	}
	c.armTimer()
}

// sendNewSegment emits one new MSS (or smaller) segment if application data
// and windows allow; reports whether a segment was sent.
func (c *Conn) sendNewSegment() bool {
	if c.backlog == 0 {
		c.maybeSendFIN()
		return false
	}
	inFlightBytes := c.sndNxt() - c.sndUna()
	if c.peerWnd > 0 && inFlightBytes+uint32(c.cfg.MSS) > c.peerWnd {
		if c.OnSendBlocked != nil {
			c.OnSendBlocked("rwnd")
		}
		return false
	}
	if !c.paceGate() {
		return false
	}
	n := c.cfg.MSS
	if c.backlog > 0 && int64(n) > c.backlog {
		n = int(c.backlog)
	}
	now := c.Loop.Now()
	seg := c.getTxSeg()
	seg.Seq, seg.Len = c.sndNxt(), n
	seg.SentAt, seg.FirstSentAt = now, now
	c.setSndNxt(c.sndNxt() + uint32(n))
	if c.backlog > 0 {
		c.backlog -= int64(n)
	}
	c.rtx.push(seg)
	st := c.states[c.policy.DataTDN()]
	st.AddPacketsOut(1)
	st.prrSpend()
	c.transmitSeg(seg, false)
	return true
}

func (c *Conn) maybeSendFIN() {
	if !c.finQueued || c.state == stFinWait {
		return
	}
	now := c.Loop.Now()
	seg := c.getTxSeg()
	seg.Seq, seg.Len, seg.TDN = c.sndNxt(), 1, c.policy.DataTDN()
	seg.SentAt, seg.FirstSentAt = now, now
	c.setSndNxt(c.sndNxt() + 1)
	c.rtx.push(seg)
	c.states[seg.TDN].AddPacketsOut(1)
	s := c.newSegment(packet.FlagFIN | packet.FlagACK)
	s.TCP.Seq = seg.Seq
	c.attachTDOption(s, false)
	c.state = stFinWait
	c.Stats.SegsSent++
	c.Out(s)
	c.armTimer()
}

// paceGate enforces optional packet pacing: returns false when the next
// transmission slot has not arrived yet (and schedules a resume).
func (c *Conn) paceGate() bool {
	if c.cfg.Pacing <= 0 {
		return true
	}
	now := c.Loop.Now()
	if now < c.paceNext {
		// One pending pace wake-up per connection: trySend probes the gate
		// repeatedly (retransmissions and new data), and scheduling a wake
		// per probe would snowball.
		if !c.paceTimer.Active() {
			c.paceTimer = c.Loop.At(c.paceNext, c.paceFn)
		}
		return false
	}
	st := c.ActiveState()
	if st.SRTT() > 0 && st.Cwnd() > 0 {
		gap := sim.Dur(float64(st.SRTT()) / (st.Cwnd() * c.cfg.Pacing))
		c.paceNext = now.Add(gap)
	}
	return true
}

// --- timers ---------------------------------------------------------------

// armTimer (re)arms the retransmission timer: a TLP probe timer while the
// active path is healthy (RFC 8985 §7.2), otherwise a conventional RTO for
// the oldest outstanding segment via the policy (§4.4).
//
// Deadlines are anchored to transmission times (head.SentAt for the RTO,
// the most recent transmission for the TLP probe), NOT to the current time:
// armTimer runs on every ACK and notification, and anchoring at "now" would
// let a steady stream of TDN-change notifications postpone the RTO forever.
func (c *Conn) armTimer() {
	head := c.rtx.headSeg()
	if head == nil {
		// Quiesce lazily: any armed timer is left to fire as a no-op rather
		// than churning the heap on every send/ack quiescence boundary.
		c.wantAt = 0
		return
	}
	// TLP arms while the active path is healthy and nothing is marked lost
	// anywhere; a recovery on an inactive TDN must not suppress tail probes
	// for the path that is actually carrying traffic.
	act := c.ActiveState()
	healthy := act.CA() == CAOpen || act.CA() == CADisorder
	for _, st := range c.states {
		if st.LostOut() > 0 {
			healthy = false
			break
		}
	}
	useTLP := c.cfg.TLP && healthy && !c.tlpInFlight && c.state >= stEstablished
	var deadline sim.Time
	if useTLP {
		srtt := c.ActiveState().SRTT()
		if srtt == 0 {
			srtt = c.cfg.InitialRTO / 2
		}
		d := 2 * srtt
		if c.totalPacketsOut() == 1 {
			d += srtt / 2
		}
		deadline = c.lastTxAt.Add(d)
	} else {
		b := c.backoff
		if b > 16 {
			b = 16 // exponential backoff saturates well past MaxRTO
		}
		d := c.policy.SegmentRTO(head.TDN) << b
		if d <= 0 || d > c.cfg.MaxRTO {
			d = c.cfg.MaxRTO
		}
		deadline = head.SentAt.Add(d)
	}
	if deadline <= c.Loop.Now() {
		deadline = c.Loop.Now().Add(sim.Microsecond)
	}
	c.wantAt, c.wantTLP = deadline, useTLP
	if c.timer.Active() {
		if c.timer.When() <= deadline {
			// Lazy revalidation: the armed timer fires at or before the
			// wanted deadline; onTimer pushes itself out to wantAt then.
			return
		}
		// The deadline moved earlier than the armed timer (e.g. a TLP probe
		// replacing a long RTO): firing late is not an option, so re-arm.
		c.timer.Stop()
	}
	c.timer = c.Loop.At(deadline, c.onTimerFn)
}

// onTimer validates the armed timer against the wanted deadline and either
// re-arms (the deadline moved out or vanished since arming) or dispatches.
//
//lint:hotpath runs once per timer expiry, including lazy re-arms
func (c *Conn) onTimer() {
	if c.wantAt == 0 {
		return // quiesced: nothing outstanding when the stale timer fired
	}
	if now := c.Loop.Now(); now < c.wantAt {
		c.timer = c.Loop.At(c.wantAt, c.onTimerFn)
		return
	}
	if c.wantTLP {
		c.fireTLP()
		return
	}
	c.fireRTO()
}

// fireTLP sends a tail-loss probe: new data when available, otherwise the
// highest-sequence outstanding segment (RFC 8985 §7.3).
func (c *Conn) fireTLP() {
	c.tlpInFlight = true
	c.Stats.TLPProbes++
	c.emit("tlp", c.policy.Active(), float64(c.totalPacketsOut()), 0, "")
	if c.backlog != 0 && c.sendNewSegment() {
		c.armTimer()
		return
	}
	if tail := c.rtx.tailSeg(); tail != nil && !tail.Sacked {
		c.transmitSeg(tail, true)
	}
	c.armTimer()
}

// fireRTO handles a retransmission timeout: every outstanding un-SACKed
// segment is marked lost, the head state enters Loss, and the head segment
// is retransmitted with exponential backoff.
func (c *Conn) fireRTO() {
	head := c.rtx.headSeg()
	if head == nil {
		return
	}
	c.Stats.RTOFires++
	if c.state == stSynSent || c.state == stSynRcvd {
		// Handshake retransmission; backoff saturates like the established
		// path's, so a long-unanswered SYN cannot overflow the shift count.
		if c.backoff < 16 {
			c.backoff++
		}
		c.sendSYN(c.state == stSynRcvd)
		return
	}
	now := c.Loop.Now()
	c.emit("rto_fire", int(head.TDN), float64(c.backoff), float64(c.totalPacketsOut()), "")
	// Mark losses and move every affected state to Loss. touched is indexed
	// by TDN (not a map) so the Loss transitions below happen in state order
	// — map iteration would make the event sequence, and thus any attached
	// trace, nondeterministic across runs.
	touched := c.rtoTouched
	for i := range touched {
		touched[i] = false
	}
	c.rtx.forEach(func(seg *TxSeg) bool {
		if !seg.Sacked && !seg.Lost {
			st := c.states[seg.TDN]
			st.AddLostOut(1)
			seg.Lost = true
			if seg.Retrans {
				st.AddRetransOut(-1)
				seg.Retrans = false
			}
			touched[seg.TDN] = true
		}
		return true
	})
	for tdn, hit := range touched {
		if !hit {
			continue
		}
		st := c.states[tdn]
		if st.CA() != CALoss {
			from := st.CA()
			st.SetCA(CALoss)
			st.SetRecoveryPoint(c.sndNxt())
			st.undoPossible = false
			st.enterRecoveryPRR()
			st.CC.OnRTO(now, st.InFlight())
			c.beginRecoverySpan(st)
			c.emitCA(st, from)
		}
	}
	if c.backoff < 16 {
		c.backoff++
	}
	// Retransmit the oldest lost segment immediately (the head itself may
	// already be SACKed).
	var victim *TxSeg
	c.rtx.forEach(func(seg *TxSeg) bool {
		if seg.Lost && !seg.Sacked {
			victim = seg
			return false
		}
		return true
	})
	if victim != nil {
		c.transmitSeg(victim, true)
	}
	c.armTimer()
}

func (c *Conn) String() string {
	return fmt.Sprintf("conn(%s una=%d nxt=%d states=%d active=%d)",
		[]string{"closed", "listen", "synsent", "synrcvd", "estab", "finwait", "closewait", "done"}[c.state],
		c.sndUna()-c.iss, c.sndNxt()-c.iss, len(c.states), c.policy.Active())
}

// cwndOf is a test helper exposing a state's cwnd rounded down.
func cwndOf(st *PathState) int { return int(math.Floor(st.Cwnd())) }
