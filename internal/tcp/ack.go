package tcp

import (
	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Input feeds a parsed segment from the network into the connection.
func (c *Conn) Input(s *packet.Segment) {
	c.Stats.SegsRcvd++
	h := &s.TCP
	switch c.state {
	case stListen:
		if h.Flags&packet.FlagSYN != 0 && h.Flags&packet.FlagACK == 0 {
			c.handleSYN(s)
		}
		return
	case stSynSent:
		if h.Flags&packet.FlagSYN != 0 && h.Flags&packet.FlagACK != 0 {
			c.handleSYNACK(s)
		}
		return
	case stSynRcvd:
		if h.Flags&packet.FlagACK != 0 && h.Ack == c.iss+1 {
			c.state = stEstablished
			c.completeHandshakeAck(s)
		}
		return
	case stClosed, stDone:
		return
	default:
		// stEstablished, stCloseWait, stFinWait: the data path below.
	}

	// Established (or closing) path.
	if h.Flags&packet.FlagSYN != 0 && h.Flags&packet.FlagACK != 0 {
		// Duplicate SYN-ACK: our handshake ACK was lost; re-ack.
		c.sendAck(false)
		return
	}
	if h.Flags&packet.FlagACK != 0 {
		c.processAck(s)
	}
	if h.PayloadLen > 0 || h.Flags&packet.FlagFIN != 0 {
		c.processData(s)
	}
}

func (c *Conn) handleSYN(s *packet.Segment) {
	h := &s.TCP
	c.RemoteAddr, c.RemotePort = s.Src, h.SrcPort
	c.irs = h.Seq
	c.setRcvNxt(h.Seq + 1)
	c.peerTD = h.TDCapable
	c.peerTDNs = int(h.NumTDNs)
	c.tdEnabled = c.negotiateTD()
	c.iss = c.Loop.Rand().Uint32()
	c.setSndUna(c.iss)
	c.setSndNxt(c.iss)
	c.highestSacked = c.iss
	c.peerWnd = h.Window
	c.state = stSynRcvd
	c.sendSYN(true)
}

func (c *Conn) handleSYNACK(s *packet.Segment) {
	h := &s.TCP
	if h.Ack != c.iss+1 {
		return
	}
	c.irs = h.Seq
	c.setRcvNxt(h.Seq + 1)
	c.peerTD = h.TDCapable
	c.peerTDNs = int(h.NumTDNs)
	c.tdEnabled = c.negotiateTD()
	c.peerWnd = h.Window
	c.completeHandshakeAck(s)
	c.state = stEstablished
	c.sendAck(false)
	c.trySend()
}

// negotiateTD applies §4.2: both ends must support TDTCP and agree on the
// number of TDNs.
func (c *Conn) negotiateTD() bool {
	return c.peerTD && c.cfg.NumTDNs > 1 && c.peerTDNs == c.cfg.NumTDNs
}

// completeHandshakeAck retires the SYN segment (tracked under TDN 0 per
// Appendix A.2) and takes the handshake RTT sample.
func (c *Conn) completeHandshakeAck(s *packet.Segment) {
	now := c.Loop.Now()
	c.rtx.popAcked(c.iss+1, func(seg *TxSeg) {
		st := c.states[seg.TDN]
		st.AddPacketsOut(-1)
		if !seg.EverRetrans {
			st.ObserveRTT(now.Sub(seg.SentAt), c.cfg.MinRTO, c.cfg.MaxRTO)
		}
		c.putTxSeg(seg)
	})
	c.setSndUna(c.iss + 1)
	c.backoff = 0
	c.armTimer()
}

// ackTDNOf extracts the ACK TDN tag from a segment (NoTDN when absent).
func ackTDNOf(h *packet.TCPHeader) uint8 {
	if h.TDPresent && h.TDFlags&packet.TDFlagACK != 0 {
		return h.AckTDN
	}
	return packet.NoTDN
}

// tdnLabel converts a wire TDN tag to a trace label (-1 when untagged).
func tdnLabel(tdn uint8) int {
	if tdn == packet.NoTDN {
		return -1
	}
	return int(tdn)
}

// processAck is the sender-side ACK machine: SACK/D-SACK processing,
// cumulative advance, RTT sampling, loss detection, congestion-state
// transitions, and window growth.
func (c *Conn) processAck(s *packet.Segment) {
	h := &s.TCP
	now := c.Loop.Now()
	ack := h.Ack
	if seqGT(ack, c.sndNxt()) {
		return // acks data never sent
	}
	c.peerWnd = h.Window
	if c.totalPacketsOut() == 0 {
		// §4.3 "all TDNs": no data outstanding on any TDN means the ACK
		// is stale; only window updates are taken.
		return
	}
	ackTDN := ackTDNOf(h)

	delivered := c.delivered // newly delivered per TDN state (scratch)
	for i := range delivered {
		delivered[i] = 0
	}
	newlySacked := 0
	// rttCand holds a copy of the freshest newly-delivered,
	// never-retransmitted segment (a value, not a pointer: the segment may be
	// recycled by popAcked before the sample is consumed).
	var rttCand TxSeg
	rttCandOK := false

	// --- SACK / D-SACK ---------------------------------------------------
	dsacked := false
	for i, blk := range h.SACK {
		if blk.Start == blk.End {
			continue
		}
		isDSACK := i == 0 && (seqLEQ(blk.End, ack) ||
			(len(h.SACK) > 1 && seqGEQ(blk.Start, h.SACK[1].Start) && seqLEQ(blk.End, h.SACK[1].End)))
		if isDSACK {
			dsacked = true
			continue
		}
		c.rtx.forRange(blk.Start, blk.End, func(seg *TxSeg) bool {
			if seqGT(seg.End(), blk.End) {
				return true // partially covered tail segment
			}
			if !seg.Sacked {
				st := c.states[seg.TDN]
				seg.Sacked = true
				st.AddSackedOut(1)
				if seg.Lost {
					seg.Lost = false
					st.AddLostOut(-1)
				}
				if seg.Retrans {
					seg.Retrans = false
					st.AddRetransOut(-1)
				}
				newlySacked++
				delivered[seg.TDN]++
				c.rackAdvance(seg)
				c.highestSacked = seqMax(c.highestSacked, seg.End())
				if !seg.EverRetrans && (!rttCandOK || seg.SentAt > rttCand.SentAt) {
					rttCand = *seg // sample at SACK time (Linux sack_rtt_us)
					rttCandOK = true
				}
			}
			return true
		})
	}
	if newlySacked > 0 {
		c.emit("sack", tdnLabel(ackTDN), float64(newlySacked), float64(c.RelSeq(c.highestSacked)), "")
	}
	if dsacked {
		c.emit("dsack", tdnLabel(ackTDN), float64(c.RelSeq(ack)), 0, "")
		c.onDSACK(now)
	}

	// --- cumulative advance ----------------------------------------------
	advanced := seqGT(ack, c.sndUna())
	if advanced {
		c.rtx.popAcked(ack, func(seg *TxSeg) {
			st := c.states[seg.TDN]
			st.AddPacketsOut(-1)
			if seg.Sacked {
				// Delivered (and RTT-sampled) when it was SACKed; its ACK
				// time now reflects hole repair, not path latency.
				st.AddSackedOut(-1)
			} else {
				delivered[seg.TDN]++
				c.rackAdvance(seg)
				if !seg.EverRetrans && (!rttCandOK || seg.SentAt > rttCand.SentAt) {
					rttCand = *seg
					rttCandOK = true
				}
			}
			if seg.Lost {
				st.AddLostOut(-1)
			}
			if seg.Retrans {
				st.AddRetransOut(-1)
			}
			c.Stats.BytesAcked += int64(seg.Len)
			c.putTxSeg(seg)
		})
		c.setSndUna(ack)
		c.backoff = 0
		c.tlpInFlight = false
		if c.state == stFinWait && c.sndUna() == c.sndNxt() && c.rtx.empty() {
			c.state = stDone
			if c.OnDone != nil {
				c.OnDone(now)
			}
		}
	} else if ack == c.sndUna() && h.PayloadLen == 0 && newlySacked == 0 {
		// Classic duplicate ACK.
		if head := c.rtx.headSeg(); head != nil {
			st := c.states[head.TDN]
			st.AddDupAcks(1)
			if st.DupAcks() >= c.cfg.DupThresh && !head.Sacked && !head.Lost {
				if c.policy.FilterLoss(head, ackTDN) {
					c.Stats.FilteredMarks++
					c.emit("loss_filtered", int(head.TDN), float64(c.RelSeq(head.Seq)), float64(tdnLabel(ackTDN)), "")
				} else {
					c.markLost(head, now)
				}
			}
		}
	}

	// --- RTT sampling (Karn + §4.4 TDN matching) ---------------------------
	if rttCandOK {
		if idx, ok := c.policy.RTTTarget(rttCand.TDN, ackTDN); ok {
			sample := now.Sub(rttCand.SentAt)
			c.states[idx].ObserveRTT(sample, c.cfg.MinRTO, c.cfg.MaxRTO)
			if idx < len(c.RTTHists) {
				c.RTTHists[idx].Record(int64(sample))
			}
			c.Stats.RTTSamples++
		} else {
			c.Stats.RTTSamplesDropped++
			c.emit("rtt_drop", int(rttCand.TDN), float64(now.Sub(rttCand.SentAt)), float64(tdnLabel(ackTDN)), "")
		}
	}

	// --- reordering instrumentation (Fig. 10) ------------------------------
	// A reordering event opens when an ACK first exposes a sequence hole
	// below the highest SACKed sequence; the affected packets are the hole's
	// occupants (the segments that would be spuriously retransmitted if the
	// window permits). The episode closes when the hole is repaired.
	if newlySacked > 0 || c.gapOpen {
		gap := 0
		c.rtx.forEach(func(seg *TxSeg) bool {
			if seqGEQ(seg.Seq, c.highestSacked) {
				return false
			}
			if !seg.Sacked && !seg.Lost {
				gap++
			}
			return true
		})
		switch {
		case gap > 0 && newlySacked > 0:
			if !c.gapOpen {
				c.gapOpen = true
				c.gapMax = 0
				c.Stats.ReorderEvents++
				c.emit("reorder", tdnLabel(ackTDN), float64(gap), float64(c.Stats.ReorderEvents), "")
			}
			if gap > c.gapMax {
				c.Stats.ReorderPackets += uint64(gap - c.gapMax)
				c.gapMax = gap
			}
		case gap == 0:
			c.gapOpen = false
		}
	}

	// --- loss detection -----------------------------------------------------
	c.detectLosses(ackTDN, now)

	// --- congestion-state transitions --------------------------------------
	for _, st := range c.states {
		from := st.CA()
		switch st.CA() {
		case CARecovery, CALoss:
			if advanced && seqGEQ(c.sndUna(), st.RecoveryPoint()) {
				st.SetCA(CAOpen)
				st.SetDupAcks(0)
				st.undoPossible = false
				st.CC.OnRecoveryExit(now)
				c.endRecoverySpan(st, false)
			}
		case CAOpen:
			if st.SackedOut() > 0 {
				st.SetCA(CADisorder)
			}
		case CADisorder:
			if st.SackedOut() == 0 && advanced {
				st.SetCA(CAOpen)
				st.SetDupAcks(0)
			}
		}
		c.emitCA(st, from)
	}

	// --- PRR delivery credit -------------------------------------------------
	for tdn, n := range delivered {
		if n > 0 {
			c.states[tdn].prrDelivered += n
			c.states[tdn].updatePRR(n)
		}
	}

	// --- window growth ------------------------------------------------------
	ece := h.Flags&packet.FlagECE != 0
	for tdn, n := range delivered {
		if n == 0 {
			continue
		}
		st := c.states[tdn]
		if st.CA() == CARecovery {
			continue // PRR governs fast recovery; growth resumes on exit
		}
		ev := cc.AckEvent{
			Now:      now,
			Acked:    n,
			InFlight: st.InFlight(),
			SRTT:     st.SRTT(),
		}
		if ece {
			ev.ECEMarked = n
		}
		if rttCandOK && rttCand.TDN == uint8(tdn) {
			ev.RTT = now.Sub(rttCand.SentAt)
		}
		st.CC.OnAck(ev)
	}

	c.trySend()
}

// markLost marks a segment lost and drives its TDN's state machine into
// Recovery (Figure 4: only the TDN owning the loss enters Recovery).
func (c *Conn) markLost(seg *TxSeg, now sim.Time) {
	if seg.Sacked || seg.Lost {
		return
	}
	st := c.states[seg.TDN]
	seg.Lost = true
	st.AddLostOut(1)
	if seg.Retrans {
		seg.Retrans = false
		st.AddRetransOut(-1)
	}
	c.Stats.LossMarks++
	c.emit("loss_mark", int(seg.TDN), float64(c.RelSeq(seg.Seq)), float64(st.LostOut()), "")
	if st.CA() == CAOpen || st.CA() == CADisorder {
		from := st.CA()
		st.SetCA(CARecovery)
		st.SetRecoveryPoint(c.sndNxt())
		st.undoPossible = true
		st.undoRetrans = 0
		st.enterRecoveryPRR()
		st.CC.OnEnterRecovery(now, st.InFlight())
		c.beginRecoverySpan(st)
		c.emitCA(st, from)
	}
}

// detectLosses applies the SACK-count (dupthresh) and RACK time rules to
// every un-SACKed segment below the highest SACKed sequence.
//
// The dupthresh rule is subject to the policy's cross-TDN reordering filter
// (§3.4): a hole whose segments rode a different TDN than the exposing ACK
// is most likely cross-TDN reordering, not loss. The RACK rule stays active
// even across TDNs — §3.4 explicitly leaves true cross-TDN tail losses to
// RACK-TLP — but with a reorder window widened to cover the cross-TDN ACK
// delay (½RTT_own + ½RTT_slowest) instead of the same-path srtt/4.
func (c *Conn) detectLosses(ackTDN uint8, now sim.Time) {
	if seqLEQ(c.highestSacked, c.sndUna()) {
		return
	}
	thresh := uint32(c.cfg.DupThresh * c.cfg.MSS)
	activeTDN := uint8(c.policy.Active())
	var slowest *PathState
	for _, st := range c.states {
		if st.Samples() > 0 && (slowest == nil || st.SRTT() > slowest.SRTT()) {
			slowest = st
		}
	}
	c.rtx.forEach(func(seg *TxSeg) bool {
		if seqGEQ(seg.Seq, c.highestSacked) {
			return false
		}
		if seg.Sacked || seg.Lost {
			return true
		}
		// The dupthresh rule applies only to first transmissions: a segment
		// whose retransmission is still in flight is reclaimed by the RACK
		// timer below (on the retransmission's own send time) or by the
		// RTO, never by sequence counting — re-marking it on every ACK
		// would retransmit it once per round trip forever.
		// SeqDiff (not raw subtraction): a segment straddling highestSacked
		// would wrap the unsigned difference to a huge value and be marked
		// lost spuriously; the signed distance is negative there instead.
		if !seg.Retrans && seqDiff(c.highestSacked, seg.End()) >= int32(thresh) {
			if !c.policy.FilterLoss(seg, ackTDN) {
				c.markLost(seg, now)
				return true
			}
			c.Stats.FilteredMarks++
			c.emit("loss_filtered", int(seg.TDN), float64(c.RelSeq(seg.Seq)), float64(tdnLabel(ackTDN)), "")
		}
		if c.cfg.RACK && c.rackXmit > 0 {
			own := c.states[seg.TDN]
			var reoWnd sim.Dur
			if seg.TDN == activeTDN || slowest == nil {
				reoWnd = own.SRTT() / 4
			} else {
				reoWnd = own.SRTT()/2 + slowest.SRTT()/2 + 4*slowest.RTTVar()
			}
			if seg.SentAt.Add(reoWnd) < c.rackXmit {
				c.markLost(seg, now)
			}
		}
		return true
	})
}

// rackAdvance records the transmit time of the most recently sent segment
// known to be delivered (RFC 8985 §6.2), skipping retransmitted segments.
func (c *Conn) rackAdvance(seg *TxSeg) {
	if seg.EverRetrans {
		return
	}
	if seg.SentAt > c.rackXmit || (seg.SentAt == c.rackXmit && seqGT(seg.End(), c.rackEndSeq)) {
		c.rackXmit = seg.SentAt
		c.rackEndSeq = seg.End()
	}
}

// onDSACK processes a duplicate-SACK report: one retransmission is proven
// spurious; when every retransmission of a recovery episode is proven
// spurious, the congestion-window reduction is undone (Linux's D-SACK undo).
func (c *Conn) onDSACK(now sim.Time) {
	for _, st := range c.states {
		if st.undoRetrans > 0 {
			st.undoRetrans--
			// Undo only when every retransmission of the episode has been
			// proven spurious AND nothing is still presumed lost: a comb of
			// genuine holes interleaved with spurious marks must not bounce
			// the window back up mid-repair.
			if st.undoRetrans == 0 && st.undoPossible && st.CA() == CARecovery && st.LostOut() == 0 {
				st.CC.Undo()
				st.SetCA(CAOpen)
				st.SetDupAcks(0)
				st.undoPossible = false
				c.Stats.Undos++
				c.endRecoverySpan(st, true)
			}
			return
		}
	}
}
