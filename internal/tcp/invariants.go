package tcp

import "fmt"

// CheckInvariants validates the connection's internal consistency: the
// per-TDN pipe counters against a recount of the retransmission queue, the
// sender's sequence cursors against the queue's shape, the receiver's
// out-of-order ranges, and the timer backoff bound. It is the runtime
// analogue of Linux's tcp_verify_left_out: cheap enough to run after every
// simulation event during faulted runs, and it returns a descriptive error
// on the first violation instead of panicking so the invariant checker can
// attach trace context.
func (c *Conn) CheckInvariants() error {
	// Sender cursors.
	if seqGT(c.sndUna(), c.sndNxt()) {
		return fmt.Errorf("tcp: snd_una %d beyond snd_nxt %d", c.sndUna()-c.iss, c.sndNxt()-c.iss)
	}
	if c.backoff > 16 {
		return fmt.Errorf("tcp: rto backoff %d beyond saturation", c.backoff)
	}

	// Retransmission-queue shape and the §4.3 pipe recount.
	packets := make([]int, len(c.states))
	sacked := make([]int, len(c.states))
	lost := make([]int, len(c.states))
	retrans := make([]int, len(c.states))
	var prev *TxSeg
	var walkErr error
	c.rtx.forEach(func(seg *TxSeg) bool {
		if seg.Len <= 0 {
			walkErr = fmt.Errorf("tcp: rtx segment %d has length %d", c.RelSeq(seg.Seq), seg.Len)
			return false
		}
		if int(seg.TDN) >= len(c.states) {
			walkErr = fmt.Errorf("tcp: rtx segment %d tagged with unknown TDN %d", c.RelSeq(seg.Seq), seg.TDN)
			return false
		}
		if prev != nil && seqLT(seg.Seq, prev.End()) {
			walkErr = fmt.Errorf("tcp: rtx queue out of order: %d before end of %d",
				c.RelSeq(seg.Seq), c.RelSeq(prev.Seq))
			return false
		}
		if seg.Sacked && seg.Lost {
			walkErr = fmt.Errorf("tcp: rtx segment %d both SACKed and lost", c.RelSeq(seg.Seq))
			return false
		}
		packets[seg.TDN]++
		if seg.Sacked {
			sacked[seg.TDN]++
		}
		if seg.Lost {
			lost[seg.TDN]++
		}
		if seg.Retrans {
			retrans[seg.TDN]++
		}
		prev = seg
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	// SACK bound: the scoreboard can never cover data the sender has not
	// offered — every SACKed byte lies inside the outstanding window
	// [snd_una, snd_nxt).
	var sackedBytes int64
	c.rtx.forEach(func(seg *TxSeg) bool {
		if seg.Sacked {
			sackedBytes += int64(seg.Len)
			if seqLT(seg.Seq, c.sndUna()) || seqGT(seg.End(), c.sndNxt()) {
				walkErr = fmt.Errorf("tcp: SACKed segment [%d,%d) outside outstanding window [%d,%d)",
					c.RelSeq(seg.Seq), c.RelSeq(seg.End()), c.sndUna()-c.iss, c.sndNxt()-c.iss)
				return false
			}
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	if outstanding := int64(seqDiff(c.sndNxt(), c.sndUna())); sackedBytes > outstanding {
		return fmt.Errorf("tcp: SACK scoreboard covers %d bytes, only %d outstanding", sackedBytes, outstanding)
	}
	if head := c.rtx.headSeg(); head != nil {
		if seqGT(head.Seq, c.sndUna()) || seqLEQ(head.End(), c.sndUna()) {
			return fmt.Errorf("tcp: snd_una %d outside head segment [%d,%d)",
				c.sndUna()-c.iss, c.RelSeq(head.Seq)+1, c.RelSeq(head.End())+1)
		}
		if tail := c.rtx.tailSeg(); tail.End() != c.sndNxt() {
			return fmt.Errorf("tcp: tail segment ends at %d, snd_nxt at %d",
				tail.End()-c.iss, c.sndNxt()-c.iss)
		}
	} else if c.sndUna() != c.sndNxt() {
		return fmt.Errorf("tcp: empty rtx queue with snd_una %d != snd_nxt %d",
			c.sndUna()-c.iss, c.sndNxt()-c.iss)
	}
	for tdn, st := range c.states {
		if st.PacketsOut() != packets[tdn] || st.SackedOut() != sacked[tdn] ||
			st.LostOut() != lost[tdn] || st.RetransOut() != retrans[tdn] {
			return fmt.Errorf("tcp: TDN %d pipe counters out/sacked/lost/retrans = %d/%d/%d/%d, recount %d/%d/%d/%d",
				tdn, st.PacketsOut(), st.SackedOut(), st.LostOut(), st.RetransOut(),
				packets[tdn], sacked[tdn], lost[tdn], retrans[tdn])
		}
		if st.PacketsOut() < 0 || st.SackedOut() < 0 || st.LostOut() < 0 || st.RetransOut() < 0 {
			return fmt.Errorf("tcp: TDN %d negative pipe counter", tdn)
		}
	}

	// Receiver ranges: sorted, disjoint, strictly above rcv_nxt.
	for i, r := range c.ranges {
		if seqGEQ(r.Start, r.End) {
			return fmt.Errorf("tcp: receiver range %d is empty [%d,%d)", i, r.Start, r.End)
		}
		if seqLEQ(r.Start, c.rcvNxt()) {
			return fmt.Errorf("tcp: receiver range %d starts at %d, at or below rcv_nxt %d", i, r.Start, c.rcvNxt())
		}
		if i > 0 && seqLT(r.Start, c.ranges[i-1].End) {
			return fmt.Errorf("tcp: receiver ranges %d and %d overlap or are unsorted", i-1, i)
		}
	}
	return nil
}
