package tcp

import (
	"github.com/rdcn-net/tdtcp/internal/packet"
)

// maxSACKBlocks returns how many SACK blocks fit next to the other options
// in the 40-byte TCP option space.
func (c *Conn) maxSACKBlocks() int {
	if c.tdEnabled {
		return 3 // 8 (padded TD_DATA_ACK) + 2 + 3*8 = 34 ≤ 40
	}
	return 4
}

// processData is the receiver side: in-order delivery, out-of-order
// buffering with SACK-range maintenance, duplicate (spurious retransmission)
// detection with D-SACK generation, and immediate ACKs. Data-center stacks
// run effectively without delayed ACKs at these rates; the paper's Linux
// receivers are in quickack mode throughout their microsecond-scale runs.
func (c *Conn) processData(s *packet.Segment) {
	h := &s.TCP
	if c.RxDataHook != nil && h.PayloadLen > 0 {
		c.RxDataHook(h)
	}
	start := h.Seq
	end := start + uint32(h.PayloadLen)
	fin := h.Flags&packet.FlagFIN != 0
	ce := s.ECN == packet.ECNCE

	switch {
	case h.PayloadLen == 0 && !fin:
		return
	case h.PayloadLen == 0 && fin:
		end = start // FIN handled below
	}

	if h.PayloadLen > 0 {
		switch {
		case seqLEQ(end, c.rcvNxt()):
			// Entirely old: a spurious retransmission. Report via D-SACK
			// (RFC 2883) so the sender can undo.
			c.Stats.DupSegsRcvd++
			c.dsack = packet.SACKBlock{Start: start, End: end}
			c.dsackValid = true
			c.Stats.DSACKsSent++
		case seqLT(start, c.rcvNxt()):
			// Partial overlap: trim the old part, deliver the rest.
			c.acceptRange(c.rcvNxt(), end)
		default:
			if c.coveredByRanges(start, end) {
				c.Stats.DupSegsRcvd++
				c.dsack = packet.SACKBlock{Start: start, End: end}
				c.dsackValid = true
				c.Stats.DSACKsSent++
			} else {
				c.acceptRange(start, end)
			}
		}
	}

	if fin && end == c.rcvNxt() && len(c.ranges) == 0 {
		c.setRcvNxt(c.rcvNxt() + 1)
		if c.state == stEstablished {
			c.state = stCloseWait
		}
	}

	c.sendAck(ce && c.cfg.ECN)
}

// coveredByRanges reports whether [start,end) lies entirely inside already
// received out-of-order data.
func (c *Conn) coveredByRanges(start, end uint32) bool {
	for _, r := range c.ranges {
		if seqGEQ(start, r.Start) && seqLEQ(end, r.End) {
			return true
		}
	}
	return false
}

// acceptRange folds [start,end) into the receive state, advancing rcvNxt
// and merging out-of-order ranges.
func (c *Conn) acceptRange(start, end uint32) {
	if seqLEQ(end, start) {
		return
	}
	if start == c.rcvNxt() {
		c.advanceDelivery(end)
		return
	}
	// Out of order: insert and merge.
	c.insertRange(start, end)
}

// advanceDelivery moves rcvNxt to at least end, absorbing any now-contiguous
// buffered ranges, and notifies the delivery observer.
func (c *Conn) advanceDelivery(end uint32) {
	prev := c.rcvNxt()
	c.setRcvNxt(end)
	for len(c.ranges) > 0 && seqLEQ(c.ranges[0].Start, c.rcvNxt()) {
		if seqGT(c.ranges[0].End, c.rcvNxt()) {
			c.setRcvNxt(c.ranges[0].End)
		}
		c.dropMRU(c.ranges[0].Start)
		// Pop by shifting down, not by reslicing forward: c.ranges[1:]
		// would permanently surrender a capacity slot, making every later
		// insertRange reallocate once the backing array "walks" forward.
		c.ranges = c.ranges[:copy(c.ranges, c.ranges[1:])]
	}
	c.Stats.BytesDelivered += int64(c.rcvNxt() - prev)
	if c.OnDelivered != nil {
		c.OnDelivered(c.Loop.Now(), c.Stats.BytesDelivered)
	}
}

// insertRange adds an out-of-order range, merging neighbours, and marks it
// most recently updated for SACK generation (RFC 2018: first block reports
// the most recently received data).
func (c *Conn) insertRange(start, end uint32) {
	// Find insertion point (ranges sorted by Start, disjoint).
	i := 0
	for i < len(c.ranges) && seqLT(c.ranges[i].Start, start) {
		i++
	}
	c.ranges = append(c.ranges, packet.SACKBlock{})
	copy(c.ranges[i+1:], c.ranges[i:])
	c.ranges[i] = packet.SACKBlock{Start: start, End: end}
	// Merge left.
	if i > 0 && seqGEQ(c.ranges[i-1].End, c.ranges[i].Start) {
		if seqGT(c.ranges[i].End, c.ranges[i-1].End) {
			c.ranges[i-1].End = c.ranges[i].End
		}
		c.dropMRU(c.ranges[i].Start)
		c.ranges = append(c.ranges[:i], c.ranges[i+1:]...)
		i--
	}
	// Merge right while overlapping.
	for i+1 < len(c.ranges) && seqGEQ(c.ranges[i].End, c.ranges[i+1].Start) {
		if seqGT(c.ranges[i+1].End, c.ranges[i].End) {
			c.ranges[i].End = c.ranges[i+1].End
		}
		c.dropMRU(c.ranges[i+1].Start)
		c.ranges = append(c.ranges[:i+1], c.ranges[i+2:]...)
	}
	c.touchMRU(c.ranges[i].Start)
}

// maxMRU bounds the recency list feeding SACK generation; RFC 2018 reporting
// never needs more than the handful of most recently updated ranges.
const maxMRU = 8

// touchMRU moves (or inserts) a range start key to the front of the recency
// list, shifting in place within the preallocated backing array.
//
//lint:hotpath runs once per out-of-order segment
func (c *Conn) touchMRU(start uint32) {
	c.dropMRU(start)
	if len(c.mruBlock) < maxMRU {
		c.mruBlock = c.mruBlock[:len(c.mruBlock)+1]
	}
	copy(c.mruBlock[1:], c.mruBlock)
	c.mruBlock[0] = start
}

func (c *Conn) dropMRU(start uint32) {
	for i, v := range c.mruBlock {
		if v == start {
			c.mruBlock = append(c.mruBlock[:i], c.mruBlock[i+1:]...)
			return
		}
	}
}

// fillSACK populates h.SACK: a pending D-SACK block first, then buffered
// ranges in most-recently-updated order.
func (c *Conn) fillSACK(h *packet.TCPHeader) {
	max := c.maxSACKBlocks()
	h.SACK = h.SACK[:0]
	if c.dsackValid {
		h.SACK = append(h.SACK, c.dsack)
		c.dsackValid = false
	}
	for _, start := range c.mruBlock {
		if len(h.SACK) >= max {
			return
		}
		for _, r := range c.ranges {
			if r.Start == start {
				h.SACK = append(h.SACK, r)
				break
			}
		}
	}
}

// sendAck emits an immediate pure ACK reflecting the current receive state.
func (c *Conn) sendAck(ece bool) {
	s := c.newSegment(packet.FlagACK)
	s.TCP.Seq = c.sndNxt()
	if ece {
		s.TCP.Flags |= packet.FlagECE
	}
	c.fillSACK(&s.TCP)
	c.attachTDOption(s, false)
	c.Stats.SegsSent++
	c.Out(s)
}

// Ranges exposes the receiver's out-of-order ranges (tests).
func (c *Conn) Ranges() []packet.SACKBlock { return c.ranges }
