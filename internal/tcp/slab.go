package tcp

import (
	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Slab is the struct-of-arrays backing store for the hot per-connection and
// per-path state of the data path: the RTT estimators, the congestion-state
// machine, the pipe counters, and the sequence/ACK cursors. Instead of each
// connection scattering this state across pointer-rich heap objects, every
// field lives in a dense column indexed by a small integer id, so an
// ACK-processing pass over many interleaved connections touches a handful of
// contiguous cache lines per column rather than one ~200-byte object per
// connection (the Laminar observation: simulator throughput is bounded by
// cache behaviour, not instruction count).
//
// Two id spaces share the slab:
//
//	conn id   -> one row per connection (cursors, notify epoch)
//	path id   -> one row per path state; a connection's NumStates rows are
//	             allocated contiguously so TDTCP's per-TDN states share lines
//
// Connections constructed with Config.Slab share one slab (one experiment =
// one slab); NewConn falls back to a private slab so standalone use and
// existing tests need no wiring. Columns grow by doubling; ids are stable for
// the life of the connection and recycled through free lists on Release.
//
// Layout (per 64-byte cache line, 8-byte columns):
//
//	srtt:    | c0p0 c0p1 c1p0 c1p1 c2p0 c2p1 c3p0 c3p1 |  8 paths/line
//	samples: | c0p0 .. c15p1                            | 16 paths/line (int32)
//	ca:      | c0p0 .. c63p1                            | 64 paths/line (uint8)
type Slab struct {
	// Per-path columns, indexed by PathState.idx.
	srtt    []sim.Dur
	rttvar  []sim.Dur
	rto     []sim.Dur
	samples []int32

	ca            []CAState
	recoveryPoint []uint32
	dupAcks       []int32

	packetsOut []int32
	sackedOut  []int32
	lostOut    []int32
	retransOut []int32

	// Per-connection columns, indexed by Conn.idx.
	sndUna      []uint32
	sndNxt      []uint32
	rcvNxt      []uint32
	notifyEpoch []uint32

	// Free lists: recycled conn rows, and recycled path-row runs keyed by
	// run length (connections allocate NumStates contiguous rows at once).
	connFree []int32
	pathFree map[int][]int32
}

// NewSlab returns a slab pre-sized for the given number of connections and
// total path states. Capacities are hints: the slab grows as needed.
func NewSlab(conns, paths int) *Slab {
	s := &Slab{}
	s.growConns(conns)
	s.growPaths(paths)
	return s
}

func (s *Slab) growConns(n int) {
	if n <= 0 {
		n = 8
	}
	s.sndUna = append(s.sndUna, make([]uint32, 0, n)...)
	s.sndNxt = append(s.sndNxt, make([]uint32, 0, n)...)
	s.rcvNxt = append(s.rcvNxt, make([]uint32, 0, n)...)
	s.notifyEpoch = append(s.notifyEpoch, make([]uint32, 0, n)...)
}

func (s *Slab) growPaths(n int) {
	if n <= 0 {
		n = 16
	}
	s.srtt = append(s.srtt, make([]sim.Dur, 0, n)...)
	s.rttvar = append(s.rttvar, make([]sim.Dur, 0, n)...)
	s.rto = append(s.rto, make([]sim.Dur, 0, n)...)
	s.samples = append(s.samples, make([]int32, 0, n)...)
	s.ca = append(s.ca, make([]CAState, 0, n)...)
	s.recoveryPoint = append(s.recoveryPoint, make([]uint32, 0, n)...)
	s.dupAcks = append(s.dupAcks, make([]int32, 0, n)...)
	s.packetsOut = append(s.packetsOut, make([]int32, 0, n)...)
	s.sackedOut = append(s.sackedOut, make([]int32, 0, n)...)
	s.lostOut = append(s.lostOut, make([]int32, 0, n)...)
	s.retransOut = append(s.retransOut, make([]int32, 0, n)...)
}

// allocConn returns a zeroed per-connection row id.
func (s *Slab) allocConn() int32 {
	if n := len(s.connFree); n > 0 {
		idx := s.connFree[n-1]
		s.connFree = s.connFree[:n-1]
		s.sndUna[idx] = 0
		s.sndNxt[idx] = 0
		s.rcvNxt[idx] = 0
		s.notifyEpoch[idx] = 0
		return idx
	}
	idx := int32(len(s.sndUna))
	s.sndUna = append(s.sndUna, 0)
	s.sndNxt = append(s.sndNxt, 0)
	s.rcvNxt = append(s.rcvNxt, 0)
	s.notifyEpoch = append(s.notifyEpoch, 0)
	return idx
}

// allocPaths returns the base id of n zeroed, contiguous per-path rows.
func (s *Slab) allocPaths(n int) int32 {
	if runs := s.pathFree[n]; len(runs) > 0 {
		base := runs[len(runs)-1]
		s.pathFree[n] = runs[:len(runs)-1]
		for i := base; i < base+int32(n); i++ {
			s.srtt[i], s.rttvar[i], s.rto[i], s.samples[i] = 0, 0, 0, 0
			s.ca[i], s.recoveryPoint[i], s.dupAcks[i] = CAOpen, 0, 0
			s.packetsOut[i], s.sackedOut[i], s.lostOut[i], s.retransOut[i] = 0, 0, 0, 0
		}
		return base
	}
	base := int32(len(s.srtt))
	for i := 0; i < n; i++ {
		s.srtt = append(s.srtt, 0)
		s.rttvar = append(s.rttvar, 0)
		s.rto = append(s.rto, 0)
		s.samples = append(s.samples, 0)
		s.ca = append(s.ca, CAOpen)
		s.recoveryPoint = append(s.recoveryPoint, 0)
		s.dupAcks = append(s.dupAcks, 0)
		s.packetsOut = append(s.packetsOut, 0)
		s.sackedOut = append(s.sackedOut, 0)
		s.lostOut = append(s.lostOut, 0)
		s.retransOut = append(s.retransOut, 0)
	}
	return base
}

// NewPathState returns a standalone PathState backed by a private slab row,
// for tests and direct drivers; connections allocate theirs through NewConn.
func NewPathState(alg cc.Algorithm) *PathState {
	s := NewSlab(0, 1)
	return &PathState{CC: alg, slab: s, idx: s.allocPaths(1)}
}

// releaseConn recycles a per-connection row.
func (s *Slab) releaseConn(idx int32) { s.connFree = append(s.connFree, idx) }

// releasePaths recycles a contiguous run of per-path rows.
func (s *Slab) releasePaths(base int32, n int) {
	if s.pathFree == nil {
		s.pathFree = make(map[int][]int32)
	}
	s.pathFree[n] = append(s.pathFree[n], base)
}

// Per-path column accessors. These are the only way PathState's hot fields
// are read or written; each compiles to a base+index load with no pointer
// chase through the PathState itself.

// SRTT returns the smoothed RTT estimate (RFC 6298).
//
//lint:hotpath read on every RTT sample and timer arm
func (ps *PathState) SRTT() sim.Dur { return ps.slab.srtt[ps.idx] }

// RTTVar returns the RTT variance estimate.
//
//lint:hotpath read on every RTT sample and timer arm
func (ps *PathState) RTTVar() sim.Dur { return ps.slab.rttvar[ps.idx] }

// RTO returns the current retransmission timeout.
//
//lint:hotpath read on every timer arm
func (ps *PathState) RTO() sim.Dur { return ps.slab.rto[ps.idx] }

// Samples returns the number of RTT samples incorporated.
func (ps *PathState) Samples() int { return int(ps.slab.samples[ps.idx]) }

// CA returns the congestion-avoidance machine state.
//
//lint:hotpath read on every ACK
func (ps *PathState) CA() CAState { return ps.slab.ca[ps.idx] }

// SetCA sets the congestion-avoidance machine state.
func (ps *PathState) SetCA(v CAState) { ps.slab.ca[ps.idx] = v }

// RecoveryPoint returns snd_nxt at the last recovery/loss entry.
func (ps *PathState) RecoveryPoint() uint32 { return ps.slab.recoveryPoint[ps.idx] }

// SetRecoveryPoint records snd_nxt at a recovery/loss entry.
func (ps *PathState) SetRecoveryPoint(v uint32) { ps.slab.recoveryPoint[ps.idx] = v }

// DupAcks returns the duplicate-ACK count.
//
//lint:hotpath read on every ACK
func (ps *PathState) DupAcks() int { return int(ps.slab.dupAcks[ps.idx]) }

// SetDupAcks sets the duplicate-ACK count.
func (ps *PathState) SetDupAcks(v int) { ps.slab.dupAcks[ps.idx] = int32(v) }

// AddDupAcks adjusts the duplicate-ACK count by d.
//
//lint:hotpath written on every duplicate ACK
func (ps *PathState) AddDupAcks(d int) { ps.slab.dupAcks[ps.idx] += int32(d) }

// PacketsOut returns the count of unacked segments tagged with this state.
//
//lint:hotpath read on every ACK and send attempt
func (ps *PathState) PacketsOut() int { return int(ps.slab.packetsOut[ps.idx]) }

// SackedOut returns how many outstanding segments are SACKed.
func (ps *PathState) SackedOut() int { return int(ps.slab.sackedOut[ps.idx]) }

// LostOut returns how many outstanding segments are marked lost.
func (ps *PathState) LostOut() int { return int(ps.slab.lostOut[ps.idx]) }

// RetransOut returns how many retransmitted segments are still outstanding.
func (ps *PathState) RetransOut() int { return int(ps.slab.retransOut[ps.idx]) }

// SetPacketsOut overwrites the unacked-segment count (tests only).
func (ps *PathState) SetPacketsOut(v int) { ps.slab.packetsOut[ps.idx] = int32(v) }

// SetSackedOut overwrites the SACKed-segment count (tests only).
func (ps *PathState) SetSackedOut(v int) { ps.slab.sackedOut[ps.idx] = int32(v) }

// SetLostOut overwrites the lost-segment count (tests only).
func (ps *PathState) SetLostOut(v int) { ps.slab.lostOut[ps.idx] = int32(v) }

// SetRetransOut overwrites the retransmitted-outstanding count (tests only).
func (ps *PathState) SetRetransOut(v int) { ps.slab.retransOut[ps.idx] = int32(v) }

// AddPacketsOut adjusts the unacked-segment count by d.
//
//lint:hotpath written on every send and cumulative ACK
func (ps *PathState) AddPacketsOut(d int) { ps.slab.packetsOut[ps.idx] += int32(d) }

// AddSackedOut adjusts the SACKed-segment count by d.
//
//lint:hotpath written on every SACK mark
func (ps *PathState) AddSackedOut(d int) { ps.slab.sackedOut[ps.idx] += int32(d) }

// AddLostOut adjusts the lost-segment count by d.
//
//lint:hotpath written on every loss mark and repair
func (ps *PathState) AddLostOut(d int) { ps.slab.lostOut[ps.idx] += int32(d) }

// AddRetransOut adjusts the retransmitted-outstanding count by d.
//
//lint:hotpath written on every retransmission and its ACK
func (ps *PathState) AddRetransOut(d int) { ps.slab.retransOut[ps.idx] += int32(d) }

// Per-connection column accessors: the sequence/ACK cursors of the unified
// sequence space and the TDN-notification epoch.

//lint:hotpath read on every ACK
func (c *Conn) sndUna() uint32 { return c.slab.sndUna[c.idx] }

//lint:hotpath read on every send
func (c *Conn) sndNxt() uint32 { return c.slab.sndNxt[c.idx] }

//lint:hotpath read on every received data segment
func (c *Conn) rcvNxt() uint32 { return c.slab.rcvNxt[c.idx] }

func (c *Conn) setSndUna(v uint32) { c.slab.sndUna[c.idx] = v }
func (c *Conn) setSndNxt(v uint32) { c.slab.sndNxt[c.idx] = v }
func (c *Conn) setRcvNxt(v uint32) { c.slab.rcvNxt[c.idx] = v }

func (c *Conn) notifyEpoch() uint32     { return c.slab.notifyEpoch[c.idx] }
func (c *Conn) setNotifyEpoch(v uint32) { c.slab.notifyEpoch[c.idx] = v }
