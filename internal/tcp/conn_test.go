package tcp

import (
	"testing"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// wire is a test transport between two Conns: serializes, optionally drops
// or marks segments, and delivers after a (mutable) one-way delay.
type wire struct {
	loop  *sim.Loop
	delay sim.Dur
	// drop, when non-nil, discards matching segments.
	drop func(*packet.Segment) bool
	// dst receives parsed segments.
	dst  *Conn
	sent int
}

func (w *wire) send(s *packet.Segment) {
	w.sent++
	if w.drop != nil && w.drop(s) {
		return
	}
	b := s.Serialize(nil)
	w.loop.After(w.delay, func() {
		var got packet.Segment
		if err := packet.Parse(b, &got); err != nil {
			panic(err)
		}
		w.dst.Input(&got)
	})
}

type pairOpt struct {
	cfgA, cfgB Config
	delay      sim.Dur
}

func newPair(t *testing.T, opt pairOpt) (loop *sim.Loop, a, b *Conn, wa, wb *wire) {
	t.Helper()
	loop = sim.NewLoop(7)
	if opt.delay == 0 {
		opt.delay = 50 * sim.Microsecond
	}
	wa = &wire{loop: loop, delay: opt.delay}
	wb = &wire{loop: loop, delay: opt.delay}
	a = NewConn(loop, opt.cfgA, wa.send)
	b = NewConn(loop, opt.cfgB, wb.send)
	a.LocalAddr, a.RemoteAddr, a.LocalPort, a.RemotePort = 1, 2, 1000, 2000
	b.LocalAddr, b.RemoteAddr, b.LocalPort, b.RemotePort = 2, 1, 2000, 1000
	wa.dst, wb.dst = b, a
	return
}

func runFor(loop *sim.Loop, d sim.Dur) { loop.RunUntil(loop.Now().Add(d)) }

func TestHandshake(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(0)
	runFor(loop, 10*sim.Millisecond)
	if !a.Established() || !b.Established() {
		t.Fatalf("not established: a=%v b=%v", a, b)
	}
	if a.TDEnabled() || b.TDEnabled() {
		t.Fatal("TD negotiated without TD_CAPABLE")
	}
	// Handshake RTT sample taken.
	if a.States()[0].SRTT() != 100*sim.Microsecond {
		t.Fatalf("SRTT = %v, want 100us", a.States()[0].SRTT())
	}
}

func TestHandshakeTDNegotiation(t *testing.T) {
	cases := []struct {
		na, nb int
		want   bool
	}{
		{2, 2, true},
		{2, 3, false},
		{2, 0, false},
		{0, 2, false},
		{1, 1, false},
		{4, 4, true},
	}
	for _, cse := range cases {
		loop, a, b, _, _ := newPair(t, pairOpt{
			cfgA: Config{NumTDNs: cse.na}, cfgB: Config{NumTDNs: cse.nb},
		})
		b.Listen()
		a.Connect(0)
		runFor(loop, 10*sim.Millisecond)
		if a.TDEnabled() != cse.want || b.TDEnabled() != cse.want {
			t.Errorf("NumTDNs %d/%d: tdEnabled a=%v b=%v, want %v",
				cse.na, cse.nb, a.TDEnabled(), b.TDEnabled(), cse.want)
		}
	}
}

func TestHandshakeSYNLoss(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	drops := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.Flags&packet.FlagSYN != 0 && drops == 0 {
			drops++
			return true
		}
		return false
	}
	a.Connect(0)
	runFor(loop, 50*sim.Millisecond)
	if !a.Established() || !b.Established() {
		t.Fatalf("handshake did not recover from SYN loss: a=%v b=%v", a, b)
	}
	if a.Stats.RTOFires == 0 {
		t.Fatal("SYN retransmission did not use RTO")
	}
}

func TestBulkTransferClean(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	const total = 500 * 8960
	a.Connect(total)
	runFor(loop, 200*sim.Millisecond)
	if b.Stats.BytesDelivered != total {
		t.Fatalf("delivered %d, want %d", b.Stats.BytesDelivered, total)
	}
	if a.Stats.Retransmits != 0 {
		t.Fatalf("clean path had %d retransmits", a.Stats.Retransmits)
	}
	if a.Stats.BytesAcked < total {
		t.Fatalf("acked %d < %d", a.Stats.BytesAcked, total)
	}
	if b.Stats.DupSegsRcvd != 0 {
		t.Fatalf("receiver saw %d duplicate segments", b.Stats.DupSegsRcvd)
	}
}

func TestDeliveryMonotonic(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	var last int64 = -1
	b.OnDelivered = func(_ sim.Time, total int64) {
		if total <= last {
			t.Fatalf("delivery regressed: %d after %d", total, last)
		}
		last = total
	}
	// Drop ~5% of data segments pseudo-randomly.
	i := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		i++
		return i%19 == 0
	}
	a.Connect(300 * 8960)
	runFor(loop, 2*sim.Second)
	if b.Stats.BytesDelivered != 300*8960 {
		t.Fatalf("delivered %d, want %d (retransmits %d, rto %d)",
			b.Stats.BytesDelivered, 300*8960, a.Stats.Retransmits, a.Stats.RTOFires)
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	dropped := false
	var dropSeq uint32
	wa.drop = func(s *packet.Segment) bool {
		// Drop the 20th data segment once.
		if s.TCP.PayloadLen > 0 && !dropped && s.TCP.Seq-a.iss > 19*8960 && s.TCP.Seq-a.iss < 21*8960 {
			dropped = true
			dropSeq = s.TCP.Seq
			return true
		}
		return false
	}
	a.Connect(100 * 8960)
	runFor(loop, 100*sim.Millisecond)
	if !dropped {
		t.Fatal("test did not drop anything")
	}
	_ = dropSeq
	if b.Stats.BytesDelivered != 100*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if a.Stats.FastRetransmits == 0 {
		t.Fatal("loss was not repaired by fast retransmit")
	}
	if a.Stats.RTOFires != 0 {
		t.Fatalf("fast-retransmittable loss caused %d RTOs", a.Stats.RTOFires)
	}
	// The loss must have cost a multiplicative decrease.
	if got := a.States()[0].CC.Ssthresh(); got > 1e6 {
		t.Fatal("ssthresh never set by recovery")
	}
}

func TestCwndReducedOnRecovery(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	n := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen > 0 {
			n++
			return n == 30
		}
		return false
	}
	a.Connect(-1)
	// Track the peak cwnd before recovery and the trough after it: the
	// multiplicative decrease must be visible.
	peak, trough := 0.0, 1e18
	for i := 0; i < 500; i++ {
		runFor(loop, 10*sim.Microsecond)
		w := a.States()[0].Cwnd()
		if a.Stats.FastRetransmits == 0 {
			if w > peak {
				peak = w
			}
		} else if w < trough {
			trough = w
		}
	}
	if a.Stats.FastRetransmits == 0 {
		t.Fatal("no recovery happened")
	}
	if trough > peak*0.8 {
		t.Fatalf("cwnd peak %v -> trough %v, expected multiplicative decrease", peak, trough)
	}
}

func TestTailLossProbe(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	// Drop the very last data segment of the transfer once: only TLP can
	// recover it without an RTO.
	total := int64(50 * 8960)
	dropped := false
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen > 0 && !dropped && s.TCP.Seq-a.iss == uint32(total)-8960+1 {
			dropped = true
			return true
		}
		return false
	}
	a.Connect(total)
	runFor(loop, 100*sim.Millisecond)
	if !dropped {
		t.Fatal("tail segment never sent")
	}
	if b.Stats.BytesDelivered != total {
		t.Fatalf("delivered %d, want %d", b.Stats.BytesDelivered, total)
	}
	if a.Stats.TLPProbes == 0 {
		t.Fatal("tail loss repaired without TLP probe")
	}
}

func TestRTOOnBlackout(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{cfgA: Config{
		RcvBuf: 128 << 10, MinRTO: 500 * sim.Microsecond, InitialRTO: 1 * sim.Millisecond,
	}, cfgB: Config{RcvBuf: 128 << 10}})
	b.Listen()
	blackout := false
	wa.drop = func(s *packet.Segment) bool { return blackout && s.TCP.PayloadLen > 0 }
	a.Connect(-1)
	loop.At(sim.Time(1*sim.Millisecond), func() { blackout = true })
	loop.At(sim.Time(5*sim.Millisecond), func() { blackout = false })
	runFor(loop, 10*sim.Millisecond)
	if a.Stats.RTOFires == 0 {
		t.Fatal("4ms blackout did not fire RTO")
	}
	if a.States()[0].CC.Cwnd() < 1 {
		t.Fatal("cwnd collapsed below 1")
	}
	// Flow must be moving again after the blackout.
	before := b.Stats.BytesDelivered
	runFor(loop, 10*sim.Millisecond)
	if b.Stats.BytesDelivered <= before {
		t.Fatal("flow did not resume after blackout")
	}
}

func TestReceiverSACKRanges(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	// Drop segments 5 and 10 on first transmission.
	n := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		n++
		return n == 5 || n == 10
	}
	a.Connect(20 * 8960)
	runFor(loop, 100*sim.Millisecond)
	if b.Stats.BytesDelivered != 20*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if len(b.Ranges()) != 0 {
		t.Fatalf("receiver still holds ranges: %v", b.Ranges())
	}
}

func TestDSACKOnSpuriousRetransmit(t *testing.T) {
	// Delay ACKs enough that the sender RTOs and retransmits spuriously;
	// the receiver must emit D-SACKs and the sender must undo.
	loop, a, b, wa, wb := newPair(t, pairOpt{cfgA: Config{
		MinRTO: 500 * sim.Microsecond, InitialRTO: 600 * sim.Microsecond, DisableTLP: true,
	}})
	b.Listen()
	a.Connect(0)
	runFor(loop, 5*sim.Millisecond) // establish with normal delay
	if !a.Established() {
		t.Fatal("not established")
	}
	_ = wa
	wb.delay = 2 * sim.Millisecond // ACK path suddenly very slow
	a.QueueBytes(5 * 8960)
	runFor(loop, 30*sim.Millisecond)
	if b.Stats.DupSegsRcvd == 0 {
		t.Fatal("no duplicate segments at receiver; scenario did not trigger")
	}
	if b.Stats.DSACKsSent == 0 {
		t.Fatal("receiver did not send D-SACKs")
	}
	if a.Stats.BytesAcked != 5*8960 {
		t.Fatalf("acked %d", a.Stats.BytesAcked)
	}
}

func TestReorderingDetectedNotLost(t *testing.T) {
	// Swap two adjacent data segments in delivery: SACK opens briefly but
	// no retransmission should occur (hole is filled before dupthresh).
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(0)
	runFor(loop, 5*sim.Millisecond)
	// Inject data manually with a custom out that delays one segment.
	held := false
	orig := a.Out
	a.Out = func(s *packet.Segment) {
		if s.TCP.PayloadLen > 0 && !held {
			held = true
			cp := *s
			loop.After(120*sim.Microsecond, func() { orig(&cp) })
			return
		}
		orig(s)
	}
	a.QueueBytes(6 * 8960)
	runFor(loop, 20*sim.Millisecond)
	if b.Stats.BytesDelivered != 6*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if a.Stats.ReorderEvents == 0 {
		t.Fatal("reordering not observed")
	}
}

func TestECNEcho(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{
		cfgA: Config{ECN: true, CC: func() cc.Algorithm { return cc.NewDCTCP() }},
		cfgB: Config{ECN: true},
	})
	b.Listen()
	// Mark every data packet CE in transit.
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen > 0 {
			s.ECN = packet.ECNCE
		}
		return false
	}
	a.Connect(-1)
	runFor(loop, 10*sim.Millisecond)
	d := a.States()[0].CC.(*cc.DCTCP)
	if d.Alpha() < 0.5 {
		t.Fatalf("DCTCP alpha = %v under full marking, want high", d.Alpha())
	}
	// cwnd must be pinned low (every window reduced by ~alpha/2).
	if d.Cwnd() > 64 {
		t.Fatalf("cwnd = %v despite persistent marking", d.Cwnd())
	}
}

func TestFINTeardown(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(10 * 8960)
	a.Close()
	runFor(loop, 100*sim.Millisecond)
	if b.Stats.BytesDelivered != 10*8960 {
		t.Fatalf("delivered %d", b.Stats.BytesDelivered)
	}
	if a.state != stDone {
		t.Fatalf("sender state = %v, want done", a.state)
	}
	if b.state != stCloseWait {
		t.Fatalf("receiver state = %v, want close-wait", b.state)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{})
	b.Listen()
	a.Connect(8960)
	runFor(loop, 50*sim.Millisecond)
	// All data acked: a stale ACK must not disturb state (§4.3 all-TDNs).
	if a.totalPacketsOut() != 0 {
		t.Fatalf("packetsOut = %d", a.totalPacketsOut())
	}
	before := a.Stats
	stale := &packet.Segment{Src: 2, Dst: 1, Proto: packet.ProtoTCP, TCP: packet.TCPHeader{
		SrcPort: 2000, DstPort: 1000, Flags: packet.FlagACK, Ack: a.sndUna(), Window: 1 << 20,
	}}
	a.Input(stale)
	if a.Stats.LossMarks != before.LossMarks || a.Stats.Retransmits != before.Retransmits {
		t.Fatal("stale ACK mutated sender state")
	}
}

func TestPipeAccountingInvariant(t *testing.T) {
	loop, a, b, wa, _ := newPair(t, pairOpt{})
	b.Listen()
	i := 0
	wa.drop = func(s *packet.Segment) bool {
		if s.TCP.PayloadLen == 0 {
			return false
		}
		i++
		return i%13 == 0
	}
	a.Connect(200 * 8960)
	check := func() {
		st := a.States()[0]
		if st.PacketsOut() < 0 || st.SackedOut() < 0 || st.LostOut() < 0 || st.RetransOut() < 0 {
			t.Fatalf("negative pipe var: %+v", st)
		}
		if st.SackedOut()+st.LostOut() > st.PacketsOut() {
			t.Fatalf("sacked+lost (%d+%d) > packetsOut %d", st.SackedOut(), st.LostOut(), st.PacketsOut())
		}
		if st.PacketsOut() != a.rtx.len() {
			t.Fatalf("packetsOut %d != rtx len %d", st.PacketsOut(), a.rtx.len())
		}
	}
	for k := 0; k < 400; k++ {
		runFor(loop, 250*sim.Microsecond)
		check()
	}
	if b.Stats.BytesDelivered != 200*8960 {
		t.Fatalf("delivered %d (retrans %d rto %d)", b.Stats.BytesDelivered, a.Stats.Retransmits, a.Stats.RTOFires)
	}
}

func TestRandomLossEventualDelivery(t *testing.T) {
	// Property-style stress: across several seeds and loss rates, all bytes
	// are delivered exactly once, in order.
	for seed := int64(1); seed <= 5; seed++ {
		loop := sim.NewLoop(seed)
		wa := &wire{loop: loop, delay: 30 * sim.Microsecond}
		wb := &wire{loop: loop, delay: 30 * sim.Microsecond}
		a := NewConn(loop, Config{}, wa.send)
		b := NewConn(loop, Config{}, wb.send)
		a.LocalAddr, a.RemoteAddr, a.LocalPort, a.RemotePort = 1, 2, 1, 2
		b.LocalAddr, b.RemoteAddr, b.LocalPort, b.RemotePort = 2, 1, 2, 1
		wa.dst, wb.dst = b, a
		rng := loop.Rand()
		lossPct := int(seed) * 3 // 3%..15%
		wa.drop = func(s *packet.Segment) bool {
			return s.TCP.PayloadLen > 0 && rng.Intn(100) < lossPct
		}
		wb.drop = func(s *packet.Segment) bool {
			return s.TCP.Flags&packet.FlagACK != 0 && s.TCP.PayloadLen == 0 && rng.Intn(100) < lossPct/2
		}
		b.Listen()
		const total = 150 * 8960
		a.Connect(total)
		loop.RunUntil(sim.Time(5 * sim.Second))
		if b.Stats.BytesDelivered != total {
			t.Fatalf("seed %d: delivered %d, want %d (retrans %d, rto %d)",
				seed, b.Stats.BytesDelivered, total, a.Stats.Retransmits, a.Stats.RTOFires)
		}
	}
}

func TestPacingSpreadsBurst(t *testing.T) {
	loop, a, b, _, _ := newPair(t, pairOpt{cfgA: Config{Pacing: 1.0}})
	b.Listen()
	var gaps []sim.Dur
	var lastTx sim.Time
	orig := a.Out
	a.Out = func(s *packet.Segment) {
		if s.TCP.PayloadLen > 0 {
			if lastTx > 0 {
				gaps = append(gaps, loop.Now().Sub(lastTx))
			}
			lastTx = loop.Now()
		}
		orig(s)
	}
	a.Connect(-1)
	runFor(loop, 3*sim.Millisecond)
	if len(gaps) < 10 {
		t.Fatalf("too few data segments: %d", len(gaps))
	}
	zero := 0
	for _, g := range gaps {
		if g == 0 {
			zero++
		}
	}
	if zero > len(gaps)/2 {
		t.Fatalf("pacing left %d/%d back-to-back transmissions", zero, len(gaps))
	}
}

func TestRTTEstimator(t *testing.T) {
	ps := NewPathState(cc.NewReno())
	ps.ObserveRTT(100*sim.Microsecond, sim.Microsecond, sim.Second)
	if ps.SRTT() != 100*sim.Microsecond || ps.RTTVar() != 50*sim.Microsecond {
		t.Fatalf("first sample: srtt=%v var=%v", ps.SRTT(), ps.RTTVar())
	}
	for i := 0; i < 100; i++ {
		ps.ObserveRTT(100*sim.Microsecond, sim.Microsecond, sim.Second)
	}
	if ps.SRTT() != 100*sim.Microsecond {
		t.Fatalf("steady srtt = %v", ps.SRTT())
	}
	if ps.RTTVar() > 10*sim.Microsecond {
		t.Fatalf("rttvar did not decay: %v", ps.RTTVar())
	}
	if ps.RTO() < sim.Microsecond {
		t.Fatal("RTO below floor")
	}
	ps.ObserveRTT(0, sim.Microsecond, sim.Second) // ignored
	if ps.Samples() != 101 {
		t.Fatalf("zero sample counted: %d", ps.Samples())
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xFFFFFFF0, 0x10) {
		t.Fatal("wraparound LT failed")
	}
	if seqGT(0xFFFFFFF0, 0x10) {
		t.Fatal("wraparound GT failed")
	}
	if seqMax(0xFFFFFFF0, 0x10) != 0x10 {
		t.Fatal("wraparound max failed")
	}
	if !seqLEQ(5, 5) || !seqGEQ(5, 5) {
		t.Fatal("equality comparisons failed")
	}
}

func TestCAStateString(t *testing.T) {
	if CAOpen.String() != "open" || CARecovery.String() != "recovery" ||
		CADisorder.String() != "disorder" || CALoss.String() != "loss" {
		t.Fatal("CAState strings wrong")
	}
	if CAState(9).String() == "" {
		t.Fatal("unknown CAState empty")
	}
}
