package tcp

import "github.com/rdcn-net/tdtcp/internal/sim"

// TxSeg is one MSS-sized entry of the retransmission queue, the analogue of
// a Linux skb with its TCP control block. Each segment carries the TDN tag
// of its most recent transmission (§3.1: "TDTCP tags each packet ... and
// keeps track of it throughout the lifetime of the packet").
type TxSeg struct {
	Seq uint32
	Len int

	TDN         uint8
	SentAt      sim.Time // most recent (re)transmission
	FirstSentAt sim.Time

	Sacked      bool
	Lost        bool
	Retrans     bool // retransmitted and still outstanding
	EverRetrans bool // Karn's rule: never RTT-sample retransmitted segments
	Retransmits int
}

// End returns the sequence number just past this segment.
func (s *TxSeg) End() uint32 { return s.Seq + uint32(s.Len) }

// rtxQueue is the send-side retransmission queue: segments ordered by
// sequence number, with an amortized-O(1) head pop as cumulative ACKs
// advance.
type rtxQueue struct {
	segs []*TxSeg
	head int
}

func (q *rtxQueue) len() int { return len(q.segs) - q.head }

func (q *rtxQueue) empty() bool { return q.len() == 0 }

// push appends a newly sent segment (sequence numbers must be increasing).
func (q *rtxQueue) push(s *TxSeg) { q.segs = append(q.segs, s) }

// at returns the i-th outstanding segment (0 = oldest).
func (q *rtxQueue) at(i int) *TxSeg { return q.segs[q.head+i] }

// headSeg returns the oldest outstanding segment, or nil.
func (q *rtxQueue) headSeg() *TxSeg {
	if q.empty() {
		return nil
	}
	return q.segs[q.head]
}

// tailSeg returns the newest outstanding segment, or nil.
func (q *rtxQueue) tailSeg() *TxSeg {
	if q.empty() {
		return nil
	}
	return q.segs[len(q.segs)-1]
}

// popAcked removes segments fully covered by cumulative ACK upTo, invoking
// fn on each before removal.
func (q *rtxQueue) popAcked(upTo uint32, fn func(*TxSeg)) {
	for !q.empty() {
		s := q.segs[q.head]
		if seqGT(s.End(), upTo) {
			break
		}
		fn(s)
		q.segs[q.head] = nil
		q.head++
	}
	if q.head > 256 && q.head*2 >= len(q.segs) {
		q.segs = append(q.segs[:0], q.segs[q.head:]...)
		q.head = 0
	}
}

// forEach iterates outstanding segments in sequence order; fn returning
// false stops the walk.
func (q *rtxQueue) forEach(fn func(*TxSeg) bool) {
	for i := q.head; i < len(q.segs); i++ {
		if !fn(q.segs[i]) {
			return
		}
	}
}

// forRange iterates outstanding segments whose Seq lies in [start, end), in
// sequence order, locating the first by binary search (the queue is always
// Seq-sorted: segments are pushed in send order and never reordered). fn
// returning false stops the walk. Sequence-space comparisons are safe as long
// as the outstanding window is below 2^31 bytes, the usual TCP constraint.
//
//lint:hotpath runs once per SACK block per ACK
func (q *rtxQueue) forRange(start, end uint32, fn func(*TxSeg) bool) {
	lo, hi := q.head, len(q.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if seqLT(q.segs[mid].Seq, start) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(q.segs); i++ {
		s := q.segs[i]
		if seqGEQ(s.Seq, end) {
			return
		}
		if !fn(s) {
			return
		}
	}
}
