package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Golden-figure regression suite: re-runs the headline figures at reduced
// weeks (warmup 2, measure 4 — a few hundred milliseconds of CPU, so it is
// not -short gated) and pins both the qualitative ordering the paper reports
// and the goodput of every variant to a ±10% band around the committed
// values. The simulator is deterministic, so drift outside these bands means
// a real behavior change — recalibrate the table only when the change is
// intentional and understood.

const goldenTol = 0.10 // relative goodput tolerance

// goldenGoodput holds the committed goodputs (Gbps) at seed 1, warmup 2,
// measure 4, 16 flows.
var goldenGoodput = map[string]map[Variant]float64{
	"hybrid": {
		ReTCPDyn: 20.25, TDTCP: 21.07, ReTCP: 19.15,
		DCTCP: 16.00, Cubic: 16.73, MPTCP: 13.21,
	},
	"bw-only": {
		ReTCPDyn: 15.04, TDTCP: 22.41, ReTCP: 16.67,
		DCTCP: 10.56, Cubic: 11.46, MPTCP: 11.67,
	},
}

func goldenResults(t *testing.T, scenario Scenario) map[Variant]*Result {
	t.Helper()
	out := map[Variant]*Result{}
	for _, v := range AllVariants {
		res, err := Run(RunConfig{Variant: v, Scenario: scenario, WarmupWeeks: 2, MeasureWeeks: 4})
		if err != nil {
			t.Fatalf("%s on %s: %v", v, scenario.Name, err)
		}
		out[v] = res
	}
	return out
}

func assertOrder(t *testing.T, label string, res map[Variant]*Result, chain []Variant) {
	t.Helper()
	for i := 1; i < len(chain); i++ {
		hi, lo := chain[i-1], chain[i]
		if res[hi].GoodputGbps <= res[lo].GoodputGbps {
			t.Errorf("%s: ordering violated: %s (%.2f) <= %s (%.2f)",
				label, hi, res[hi].GoodputGbps, lo, res[lo].GoodputGbps)
		}
	}
}

func assertBands(t *testing.T, label string, res map[Variant]*Result) {
	t.Helper()
	for v, want := range goldenGoodput[label] {
		got := res[v].GoodputGbps
		if got < want*(1-goldenTol) || got > want*(1+goldenTol) {
			t.Errorf("%s/%s: goodput %.2f outside golden band %.2f ±%.0f%%",
				label, v, got, want, goldenTol*100)
		}
	}
}

// TestGoldenFig7 pins the paper's main comparison (Fig. 7, hybrid RDCN):
// TDTCP beats reTCP, which beats DCTCP and CUBIC, which beat MPTCP, which
// still beats the packet-only reference; and the headline deltas stay in
// their bands (paper: +24% vs CUBIC/DCTCP, +41% vs MPTCP, parity with
// retcpdyn).
func TestGoldenFig7(t *testing.T) {
	res := goldenResults(t, Hybrid())
	assertOrder(t, "fig7", res, []Variant{TDTCP, ReTCP, Cubic, MPTCP})
	assertOrder(t, "fig7", res, []Variant{TDTCP, ReTCP, DCTCP, MPTCP})
	if po := res[TDTCP].PacketOnlyGbps; res[MPTCP].GoodputGbps <= po {
		t.Errorf("fig7: mptcp (%.2f) <= packet-only (%.2f)", res[MPTCP].GoodputGbps, po)
	}
	assertBands(t, "hybrid", res)

	tdtcp := res[TDTCP].GoodputGbps
	for _, tc := range []struct {
		base     Variant
		min, max float64 // delta band, fraction
	}{
		{Cubic, 0.15, 0.40},
		{DCTCP, 0.20, 0.45},
		{MPTCP, 0.40, 0.80},
		{ReTCPDyn, -0.12, 0.12}, // parity
	} {
		d := tdtcp/res[tc.base].GoodputGbps - 1
		if d < tc.min || d > tc.max {
			t.Errorf("fig7: tdtcp vs %s delta %+.1f%% outside [%+.0f%%, %+.0f%%]",
				tc.base, d*100, tc.min*100, tc.max*100)
		}
	}
}

// TestGoldenFig8 pins the bandwidth-difference-only comparison (Fig. 8):
// TDTCP leads reTCP, and every variant stays above the packet-only floor.
func TestGoldenFig8(t *testing.T) {
	res := goldenResults(t, BandwidthOnly())
	assertOrder(t, "fig8", res, []Variant{TDTCP, ReTCP, Cubic, DCTCP})
	po := res[TDTCP].PacketOnlyGbps
	for v, r := range res {
		if r.GoodputGbps <= po {
			t.Errorf("fig8: %s (%.2f) <= packet-only (%.2f)", v, r.GoodputGbps, po)
		}
	}
	assertBands(t, "bw-only", res)
}

// TestGoldenRotor8 is the multi-rack gate: on an 8-rack rotor fabric TDTCP
// must beat CUBIC on goodput while holding lower mean VOQ occupancy, with
// both comfortably above the packet-only floor. Four measurement weeks: the
// engine's canonical instant ordering (control-plane events precede
// same-instant data events, where the pre-engine loop interleaved them by
// arming order) shifts which day boundary a boundary-aligned burst lands on,
// and over only two weeks that sampling effect is larger than the VOQ gap
// the claim pins; by four weeks it averages out.
func TestGoldenRotor8(t *testing.T) {
	run := func(v Variant) *Result {
		res, err := Run(RunConfig{Variant: v, Scenario: MultiRack(8), WarmupWeeks: 1, MeasureWeeks: 4})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		return res
	}
	td, cu := run(TDTCP), run(Cubic)
	if td.GoodputGbps < cu.GoodputGbps {
		t.Errorf("rotor8: tdtcp goodput %.2f < cubic %.2f", td.GoodputGbps, cu.GoodputGbps)
	}
	if td.VOQ.Mean() >= cu.VOQ.Mean() {
		t.Errorf("rotor8: tdtcp mean VOQ %.2f >= cubic %.2f", td.VOQ.Mean(), cu.VOQ.Mean())
	}
	for _, r := range []*Result{td, cu} {
		if r.GoodputGbps <= r.PacketOnlyGbps {
			t.Errorf("rotor8: %s goodput %.2f <= packet-only %.2f",
				r.Variant, r.GoodputGbps, r.PacketOnlyGbps)
		}
	}
}

// rotorTraceRun executes a short 8-rack TDTCP run with a full-category tracer
// and returns the JSONL bytes.
func rotorTraceRun(t *testing.T, disablePool bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	_, err := Run(RunConfig{
		Variant: TDTCP, Scenario: MultiRack(8), Flows: 8,
		WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
		Tracer: tr, DisableFramePool: disablePool,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// workloadTraceRun executes a short 8-rack websearch workload with a
// full-category tracer and returns the JSONL bytes.
func workloadTraceRun(t *testing.T, disablePool bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	_, err := RunWorkload(WorkloadConfig{
		Variant: TDTCP, Scenario: MultiRack(8),
		WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
		Tracer: tr, DisableFramePool: disablePool,
	})
	if err != nil {
		t.Fatalf("RunWorkload: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenMultiRackDeterminism extends the golden-trace gate to the rotor
// fabric: the same seeded 8-rack run (long-lived flows, and the open-loop
// workload) must produce byte-identical JSONL traces run-to-run and with the
// frame pool disabled.
func TestGoldenMultiRackDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(t *testing.T, disablePool bool) []byte
	}{
		{"run", rotorTraceRun},
		{"workload", workloadTraceRun},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pooled := tc.run(t, false)
			pooled2 := tc.run(t, false)
			unpooled := tc.run(t, true)
			if len(pooled) == 0 {
				t.Fatal("traced run produced no events")
			}
			if !bytes.Equal(pooled, pooled2) {
				d := firstDiffLine(pooled, pooled2)
				t.Fatalf("same-seed runs diverge at line %d\nfirst:  %s\nsecond: %s",
					d, lineAt(pooled, d), lineAt(pooled2, d))
			}
			if !bytes.Equal(pooled, unpooled) {
				d := firstDiffLine(pooled, unpooled)
				t.Fatalf("pooling is observable: traces diverge at line %d\npooled:   %s\nunpooled: %s",
					d, lineAt(pooled, d), lineAt(unpooled, d))
			}
		})
	}
}

// TestGoldenWorkloadSweepParity runs the same workload matrix through the
// sequential and parallel SweepWorkload paths and requires identical results
// cell by cell (the multi-rack counterpart of the PR 4 sweep parity gate;
// under -race this doubles as its data-race check).
func TestGoldenWorkloadSweepParity(t *testing.T) {
	var cfgs []WorkloadConfig
	for _, v := range RotorVariants {
		for _, seed := range []int64{1, 2} {
			cfgs = append(cfgs, WorkloadConfig{
				Variant: v, Scenario: MultiRack(4), Seed: seed,
				WarmupWeeks: 1, MeasureWeeks: 1,
			})
		}
	}
	seq := SweepWorkload(cfgs, 1)
	par := SweepWorkload(cfgs, 4)
	for i := range cfgs {
		s, p := seq[i], par[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("cell %d errored: seq=%v par=%v", i, s.Err, p.Err)
		}
		sk := fmt.Sprintf("%v|%d|%d|%.6f|%.6f", s.Res.Variant, s.Res.FlowsStarted,
			s.Res.FlowsCompleted, s.Res.GoodputGbps, s.Res.MeanVOQ)
		pk := fmt.Sprintf("%v|%d|%d|%.6f|%.6f", p.Res.Variant, p.Res.FlowsStarted,
			p.Res.FlowsCompleted, p.Res.GoodputGbps, p.Res.MeanVOQ)
		if sk != pk {
			t.Errorf("cell %d diverges:\nseq: %s\npar: %s", i, sk, pk)
		}
		if s.Res.FlowsStarted == 0 {
			t.Errorf("cell %d (%s seed %d): no flows arrived", i, cfgs[i].Variant, cfgs[i].Seed)
		}
	}
}
