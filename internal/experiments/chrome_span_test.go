package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// TestChromeSpanRoundTrip round-trips a real traced run through the Chrome
// exporter and asserts the span contract end to end: every async end ("e")
// pairs with an earlier begin ("b") of the same id, the causal chain's span
// names all survive the export, and two identical seeds export byte-identical
// Chrome JSON (stable ordering).
func TestChromeSpanRoundTrip(t *testing.T) {
	jsonlA := rotorTraceRun(t, false)
	jsonlB := rotorTraceRun(t, false)

	var chromeA, chromeB bytes.Buffer
	if err := trace.Chrome(bytes.NewReader(jsonlA), &chromeA); err != nil {
		t.Fatalf("Chrome export A: %v", err)
	}
	if err := trace.Chrome(bytes.NewReader(jsonlB), &chromeB); err != nil {
		t.Fatalf("Chrome export B: %v", err)
	}
	if !bytes.Equal(chromeA.Bytes(), chromeB.Bytes()) {
		t.Fatalf("identical seeds exported different Chrome JSON (%d vs %d bytes)",
			chromeA.Len(), chromeB.Len())
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			ID   int64   `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chromeA.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output not parseable: %v", err)
	}

	type openSpan struct {
		name string
		ts   float64
	}
	open := map[int64]openSpan{}
	names := map[string]bool{}
	pairs := 0
	seen := map[int64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			if ev.ID == 0 {
				t.Fatalf("span begin %q without id", ev.Name)
			}
			if seen[ev.ID] {
				t.Fatalf("span id %d begun twice", ev.ID)
			}
			seen[ev.ID] = true
			open[ev.ID] = openSpan{ev.Name, ev.TS}
			names[ev.Name] = true
		case "e":
			b, ok := open[ev.ID]
			if !ok {
				t.Fatalf("span end %q id=%d without a begin", ev.Name, ev.ID)
			}
			if ev.TS < b.ts {
				t.Fatalf("span %q id=%d ends at %vus before its begin at %vus", ev.Name, ev.ID, ev.TS, b.ts)
			}
			delete(open, ev.ID)
			pairs++
		}
	}
	if pairs == 0 {
		t.Fatal("no completed spans in the export")
	}
	// The whole causal chain must be visible: flow lifetime, epoch
	// occupancy, notification delivery, and the cwnd swap it triggers.
	for _, want := range []string{"flow", "epoch", "notify", "cwnd_swap"} {
		if !names[want] {
			t.Errorf("span %q missing from Chrome export", want)
		}
	}
	// Only spans that legitimately straddle the horizon may be left open:
	// the current optical epoch and in-progress recovery episodes. A flow,
	// notify, or cwnd_swap without an End is a Begin/End discipline bug.
	for id, b := range open {
		if b.name != "epoch" && b.name != "recovery" {
			t.Errorf("span %q id=%d has no end event", b.name, id)
		}
	}
}
