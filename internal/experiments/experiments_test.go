package experiments

import (
	"strings"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// TestPaperOrdering is the repository's core integration assertion: with the
// default configuration, the goodput ordering of the paper's Fig. 7 legend
// must hold, along with the abstract's headline ratios (loosely bounded).
func TestPaperOrdering(t *testing.T) {
	goodput := map[Variant]float64{}
	for _, v := range AllVariants {
		res, err := Run(RunConfig{Variant: v, WarmupWeeks: 3, MeasureWeeks: 10})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		goodput[v] = res.GoodputGbps
		if res.GoodputGbps < res.PacketOnlyGbps*0.8 {
			t.Errorf("%s below 80%% of packet-only: %.2f", v, res.GoodputGbps)
		}
	}
	td := goodput[TDTCP]
	if td <= goodput[Cubic] || td <= goodput[DCTCP] {
		t.Errorf("tdtcp (%.2f) must beat cubic (%.2f) and dctcp (%.2f)",
			td, goodput[Cubic], goodput[DCTCP])
	}
	if ratio := td / goodput[Cubic]; ratio < 1.10 || ratio > 1.60 {
		t.Errorf("tdtcp/cubic = %.2f, expected in [1.10, 1.60] (paper 1.24)", ratio)
	}
	if ratio := td / goodput[MPTCP]; ratio < 1.15 {
		t.Errorf("tdtcp/mptcp = %.2f, expected > 1.15 (paper 1.41)", ratio)
	}
	if parity := td / goodput[ReTCPDyn]; parity < 0.85 || parity > 1.20 {
		t.Errorf("tdtcp/retcpdyn = %.2f, expected near parity", parity)
	}
	if goodput[MPTCP] >= goodput[Cubic] {
		t.Errorf("mptcp (%.2f) must trail cubic (%.2f)", goodput[MPTCP], goodput[Cubic])
	}
}

func TestScenarios(t *testing.T) {
	h := Hybrid()
	if h.TDNs[0].Rate != 10*sim.Gbps || h.TDNs[1].Rate != 100*sim.Gbps {
		t.Fatalf("hybrid rates: %+v", h.TDNs)
	}
	bw := BandwidthOnly()
	if bw.TDNs[0].Delay != bw.TDNs[1].Delay {
		t.Fatal("bandwidth-only must equalize delays")
	}
	lat := LatencyOnly(100 * sim.Gbps)
	if lat.TDNs[0].Rate != lat.TDNs[1].Rate {
		t.Fatal("latency-only must equalize rates")
	}
	if lat.TDNs[0].Delay <= lat.TDNs[1].Delay {
		t.Fatal("latency-only packet TDN must be slower")
	}
}

func TestRunResultShape(t *testing.T) {
	res, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq.Len() == 0 || res.VOQ.Len() == 0 || res.Optimal.Len() == 0 {
		t.Fatal("missing series")
	}
	if res.Seq.T[0] != 0 || res.Seq.V[0] != 0 {
		t.Fatal("seq series not normalized")
	}
	if res.TDTCPSwitches == 0 {
		t.Fatal("tdtcp switches not counted")
	}
	// Two switches per flow per week (into and out of the optical day).
	want := uint64(16 * 2 * 3) // 3 weeks total (warmup+measure), 16 flows
	if res.TDTCPSwitches > want {
		t.Fatalf("switches = %d, want <= %d", res.TDTCPSwitches, want)
	}
	if res.Sender.SegsSent == 0 || res.Receiver.BytesDelivered == 0 {
		t.Fatal("stats not aggregated")
	}
}

func TestHeterogeneousCCAs(t *testing.T) {
	res, err := Run(RunConfig{
		Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 3,
		Flow: FlowOptions{PerTDNCC: []string{"cubic", "dctcp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GoodputGbps < res.PacketOnlyGbps*0.8 {
		t.Fatalf("heterogeneous TDTCP collapsed: %.2f", res.GoodputGbps)
	}
	if _, err := Run(RunConfig{
		Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 1,
		Flow: FlowOptions{PerTDNCC: []string{"nope"}},
	}); err == nil {
		t.Fatal("unknown per-TDN CC accepted")
	}
}

func TestTDTCPAblationOrdering(t *testing.T) {
	full, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 2, MeasureWeeks: 6})
	if err != nil {
		t.Fatal(err)
	}
	abl, err := Run(RunConfig{
		Variant: TDTCP, WarmupWeeks: 2, MeasureWeeks: 6,
		Flow: FlowOptions{TDTCPOpts: core.Options{DisableRelaxedReordering: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Sender.FilteredMarks == 0 {
		t.Fatal("full TDTCP never exercised the reordering filter")
	}
	if abl.Sender.FilteredMarks != 0 {
		t.Fatal("ablated TDTCP still filtered")
	}
}

func TestNotificationProfilesOrdered(t *testing.T) {
	opt, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 2, MeasureWeeks: 8})
	if err != nil {
		t.Fatal(err)
	}
	unopt := rdcn.UnoptimizedNotify()
	u, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 2, MeasureWeeks: 8, Notify: &unopt})
	if err != nil {
		t.Fatal(err)
	}
	if u.GoodputGbps >= opt.GoodputGbps {
		t.Fatalf("unoptimized notify (%.2f) not worse than optimized (%.2f)",
			u.GoodputGbps, opt.GoodputGbps)
	}
}

func TestFigureRunnersQuick(t *testing.T) {
	for id, run := range Figures {
		fig, err := run(Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if fig.ID != id {
			t.Errorf("%s: fig.ID = %q", id, fig.ID)
		}
		out := fig.Render()
		if !strings.Contains(out, id) {
			t.Errorf("%s: render missing id", id)
		}
		if len(fig.Summary) == 0 {
			t.Errorf("%s: empty summary", id)
		}
	}
}

func TestBuildFlowValidation(t *testing.T) {
	loop := sim.NewLoop(1)
	cfg := rdcn.DefaultConfig()
	cfg.HostsPerRack = 2
	net, err := rdcn.New(loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFlow(loop, net, 5, Cubic, FlowOptions{}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	f, err := BuildFlow(loop, net, 1, MPTCP, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if f.MSnd == nil || len(f.MSnd.Subflows()) != 2 {
		t.Fatal("mptcp flow not built with 2 subflows")
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.GoodputGbps != r2.GoodputGbps || r1.Sender.SegsSent != r2.Sender.SegsSent {
		t.Fatalf("runs with identical seed diverge: %.6f/%d vs %.6f/%d",
			r1.GoodputGbps, r1.Sender.SegsSent, r2.GoodputGbps, r2.Sender.SegsSent)
	}
	r3, err := Run(RunConfig{Variant: TDTCP, WarmupWeeks: 1, MeasureWeeks: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Sender.SegsSent == r1.Sender.SegsSent && r3.GoodputGbps == r1.GoodputGbps {
		t.Log("different seeds produced identical results (suspicious but not fatal)")
	}
}
