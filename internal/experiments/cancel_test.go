package experiments

import (
	"bytes"
	"errors"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// cancelTraceMask is every category except the chatty per-event sim loop, so
// the prefix comparison covers all of the layered emissions (TCP, CC, TDN,
// VOQ, RDCN, fault) without gigabytes of "fire" lines.
const cancelTraceMask = trace.CatAll &^ trace.CatSim

// afterPolls returns a Stop func that requests cancellation on the n-th poll.
func afterPolls(n int) func() bool {
	polls := 0
	return func() bool {
		polls++
		return polls >= n
	}
}

// traceLinesValid asserts buf is newline-terminated JSONL where every line
// parses as a trace event — the "truncated-but-valid" half of the contract.
func traceLinesValid(t *testing.T, buf []byte) {
	t.Helper()
	if len(buf) == 0 {
		t.Fatal("cancelled run emitted no trace at all")
	}
	if buf[len(buf)-1] != '\n' {
		t.Fatal("cancelled trace does not end on a line boundary")
	}
	var ev trace.Event
	for i, line := range bytes.Split(bytes.TrimSuffix(buf, []byte("\n")), []byte("\n")) {
		if err := trace.ParseLine(line, &ev); err != nil {
			t.Fatalf("line %d of cancelled trace is not valid JSON: %v\n%s", i, err, line)
		}
	}
}

// TestCancelledRunTraceIsPrefix is the determinism argument for the stop
// seam, asserted at the system level: cancelling a run mid-flight must yield
// a JSONL trace that is a byte-identical prefix of the same seed's
// uncancelled trace.
func TestCancelledRunTraceIsPrefix(t *testing.T) {
	run := func(stop func() bool) ([]byte, error) {
		var buf bytes.Buffer
		cfg := RunConfig{
			Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
			Tracer: trace.New(&buf, cancelTraceMask),
			Stop:   stop, StopEvery: 256,
		}
		_, err := Run(cfg)
		if ferr := cfg.Tracer.Flush(); ferr != nil {
			t.Fatal(ferr)
		}
		return buf.Bytes(), err
	}

	full, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := run(afterPolls(8))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
	if len(part) == 0 || len(part) >= len(full) {
		t.Fatalf("cancelled trace is %d bytes of %d — not a strict prefix", len(part), len(full))
	}
	if !bytes.HasPrefix(full, part) {
		t.Fatalf("cancelled trace (%d bytes) is not a byte prefix of the full trace (%d bytes)", len(part), len(full))
	}
	traceLinesValid(t, part)
}

// TestCancelledWorkloadTraceIsPrefix covers the open-loop workload path: the
// same prefix property through RunWorkload's spawn/OnDone emissions.
func TestCancelledWorkloadTraceIsPrefix(t *testing.T) {
	run := func(stop func() bool) ([]byte, error) {
		var buf bytes.Buffer
		cfg := WorkloadConfig{
			Variant: Cubic, Scenario: MultiRack(4), Hosts: 2,
			WarmupWeeks: 1, MeasureWeeks: 1, Seed: 3, MaxFlows: 64,
			Tracer: trace.New(&buf, cancelTraceMask),
			Stop:   stop, StopEvery: 256,
		}
		_, err := RunWorkload(cfg)
		if ferr := cfg.Tracer.Flush(); ferr != nil {
			t.Fatal(ferr)
		}
		return buf.Bytes(), err
	}

	full, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := run(afterPolls(5))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled workload returned %v, want ErrCancelled", err)
	}
	if len(part) == 0 || len(part) >= len(full) {
		t.Fatalf("cancelled trace is %d bytes of %d — not a strict prefix", len(part), len(full))
	}
	if !bytes.HasPrefix(full, part) {
		t.Fatal("cancelled workload trace is not a byte prefix of the full trace")
	}
	traceLinesValid(t, part)
}

// TestUncancelledRunUnaffectedBySeam: installing a Stop func that never
// fires must not change the run's results or trace by a single byte.
func TestUncancelledRunUnaffectedBySeam(t *testing.T) {
	run := func(stop func() bool) ([]byte, float64) {
		var buf bytes.Buffer
		cfg := RunConfig{
			Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
			Tracer: trace.New(&buf, cancelTraceMask),
			Stop:   stop, StopEvery: 64,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res.GoodputGbps
	}
	base, baseGbps := run(nil)
	seamed, seamedGbps := run(func() bool { return false })
	if !bytes.Equal(base, seamed) {
		t.Fatal("a never-firing Stop seam changed the trace")
	}
	if baseGbps != seamedGbps {
		t.Fatalf("goodput changed under the seam: %v vs %v", baseGbps, seamedGbps)
	}
}
