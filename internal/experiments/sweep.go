package experiments

import "sync"

// This file is the one place in the simulation stack where goroutines are
// legal: every Run owns its loop, RNG, network and flows and shares nothing,
// so independent runs are embarrassingly parallel. The deterministic core
// (internal/{sim,netem,rdcn,tcp,core,cc,fault}) stays single-threaded and
// tdlint enforces that; this package sits outside that boundary.

// SweepResult pairs one sweep cell's configuration with its outcome.
type SweepResult struct {
	Cfg RunConfig
	Res *Result
	Err error
}

// Matrix expands base over the cross product of variants and seeds, in
// variant-major order. The result is a ready-made Sweep input.
func Matrix(base RunConfig, variants []Variant, seeds []int64) []RunConfig {
	cfgs := make([]RunConfig, 0, len(variants)*len(seeds))
	for _, v := range variants {
		for _, s := range seeds {
			c := base
			c.Variant = v
			c.Seed = s
			cfgs = append(cfgs, c)
		}
	}
	return cfgs
}

// SweepObserver receives worker-lifecycle callbacks from an observed sweep:
// CellStart when a worker picks up input cell (the sequential path is worker
// 0), CellDone when the run returns. Both may be called from any worker
// goroutine concurrently; obs.SweepMeter is the standard implementation.
type SweepObserver interface {
	CellStart(worker, cell int)
	CellDone(worker, cell int, err error)
}

// Sweep executes every configuration and returns results indexed by input
// position, so the output order is deterministic regardless of which run
// finishes first. workers bounds how many simulations run concurrently;
// workers <= 1 runs them sequentially on the calling goroutine. Because runs
// share no state, the parallel and sequential paths produce identical
// results for identical inputs (the sweep parity test enforces this).
//
// Configurations must not share a Tracer or Metrics registry when workers
// exceeds 1 — those sinks are not synchronized.
func Sweep(cfgs []RunConfig, workers int) []SweepResult {
	return SweepWithObserver(cfgs, workers, nil)
}

// SweepWithObserver is Sweep with per-cell progress callbacks (nil obs =
// plain Sweep). Observation cannot change results: the observer sees indexes
// and errors only, never the configurations or measurements.
func SweepWithObserver(cfgs []RunConfig, workers int, obs SweepObserver) []SweepResult {
	out := make([]SweepResult, len(cfgs))
	runCell := func(worker, i int) {
		if obs != nil {
			obs.CellStart(worker, i)
		}
		res, err := Run(cfgs[i])
		out[i] = SweepResult{Cfg: cfgs[i], Res: res, Err: err}
		if obs != nil {
			obs.CellDone(worker, i, err)
		}
	}
	if workers <= 1 {
		for i := range cfgs {
			runCell(0, i)
		}
		return out
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				runCell(worker, i)
			}
		}(w)
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
