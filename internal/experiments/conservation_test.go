package experiments

import (
	"testing"
	"testing/quick"

	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/sim"
)

// Conservation property suite: for every CC variant, under randomized fault
// plans, every frame a host sends must be accounted for at the horizon
// (delivered + misrouted + VOQ drops + fault drops + in-flight — Run and
// RunWorkload fail outright when rdcn.CheckConservation finds a leak), and
// the per-event invariant checker must stay silent (its connection checks
// include the SACK-scoreboard bound: sacked bytes never exceed outstanding
// data).

// conservationVariants covers every CC variant, including the two-rack-only
// transports.
var conservationVariants = []Variant{TDTCP, Cubic, DCTCP, Reno, ReTCP, ReTCPDyn, MPTCP}

// cell is one randomized conservation probe; testing/quick fills the fields.
type cell struct {
	Seed      uint8
	FaultSeed uint8
	VIdx      uint8
	Nloss     uint8 // notification loss, eighths of 0.4
	Drop      uint8 // frame drop, eighths of 0.04
	Corrupt   uint8 // frame corruption, eighths of 0.04
	Flaps     uint8 // flapped days, 0-3
}

func (c cell) plan() fault.Plan {
	return fault.Plan{
		NotifyLoss: float64(c.Nloss%8) * 0.05,
		Drop:       float64(c.Drop%8) * 0.005,
		Corrupt:    float64(c.Corrupt%8) * 0.005,
		Flaps:      int(c.Flaps % 4),
		FlapFrac:   0.5,
	}
}

// TestConservationQuick drives randomized (variant, seed, fault-plan) cells
// through short two-rack runs with the invariant checker attached.
func TestConservationQuick(t *testing.T) {
	prop := func(c cell) bool {
		v := conservationVariants[int(c.VIdx)%len(conservationVariants)]
		plan := c.plan()
		res, err := Run(RunConfig{
			Variant: v, Scenario: Hybrid(), Flows: 2,
			WarmupWeeks: 1, MeasureWeeks: 1,
			Seed: int64(c.Seed) + 1, Fault: &plan, FaultSeed: int64(c.FaultSeed) + 1,
			Invariants: true,
		})
		if err != nil {
			t.Logf("%s seed %d: %v", v, c.Seed, err)
			return false
		}
		if len(res.Violations) > 0 {
			t.Logf("%s seed %d: %d invariant violations, first: %v",
				v, c.Seed, len(res.Violations), res.Violations[0])
			return false
		}
		if res.FramesSent == 0 {
			t.Logf("%s seed %d: no frames sent", v, c.Seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationQuickMultiRack repeats the probe on the 4-rack rotor fabric
// for the rotor-capable variants, via the open-loop workload (finite flows
// exercise the FIN path and leave frames in flight at the horizon).
func TestConservationQuickMultiRack(t *testing.T) {
	prop := func(seed uint8, vIdx uint8, load uint8) bool {
		v := RotorVariants[int(vIdx)%len(RotorVariants)]
		res, err := RunWorkload(WorkloadConfig{
			Variant: v, Scenario: MultiRack(4),
			Load:        0.1 + float64(load%8)*0.05,
			WarmupWeeks: 1, MeasureWeeks: 1, Seed: int64(seed) + 1,
		})
		if err != nil {
			t.Logf("%s seed %d: %v", v, seed, err)
			return false
		}
		return res.FramesSent > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestConservationFaultedRotor injects data-plane faults into a multi-rack
// long-lived run: dropped and corrupted frames must land in the fault-drop
// ledger, not leak from it.
func TestConservationFaultedRotor(t *testing.T) {
	plan := fault.Plan{Drop: 0.01, Corrupt: 0.005, NotifyLoss: 0.1,
		NotifyDelay: 5 * sim.Microsecond}
	for _, v := range RotorVariants {
		res, err := Run(RunConfig{
			Variant: v, Scenario: MultiRack(4), Flows: 8,
			WarmupWeeks: 1, MeasureWeeks: 2,
			Fault: &plan, Invariants: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("%s: %d violations, first: %v", v, len(res.Violations), res.Violations[0])
		}
		if res.FaultStats.FramesDropped == 0 {
			t.Errorf("%s: fault plan injected no frame drops", v)
		}
	}
}
