package experiments

import (
	"fmt"
	"strings"

	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/stats"
	"github.com/rdcn-net/tdtcp/internal/workload"
)

// Options scales a figure reproduction.
type Options struct {
	Flows                     int
	WarmupWeeks, MeasureWeeks int
	Seed                      int64
	// Racks sets the rotor fabric size for the multi-rack figures
	// (default 4; ignored by the paper's two-rack figures).
	Racks int
	// Workload names the flow-size distribution of the workload figures
	// (default "websearch"; see workload.ByName).
	Workload string
	// Quick shrinks the run for fast smoke benches.
	Quick bool
}

func (o *Options) fill() {
	if o.Flows == 0 {
		o.Flows = 16
	}
	if o.WarmupWeeks == 0 {
		o.WarmupWeeks = 3
	}
	if o.MeasureWeeks == 0 {
		// Long windows dilute the measurement-boundary catch-up (data in
		// flight at warmup end is delivered inside the window).
		o.MeasureWeeks = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Racks == 0 {
		o.Racks = 4
	}
	if o.Workload == "" {
		o.Workload = "websearch"
	}
	if o.Quick {
		o.WarmupWeeks, o.MeasureWeeks = 2, 3
	}
}

// SummaryRow is one line of a figure's summary table.
type SummaryRow struct {
	Label       string
	GoodputGbps float64
	// Extra carries figure-specific columns (percentiles, occupancies, …).
	Extra map[string]float64
}

// Figure is a reproduced table/figure: plottable series plus the summary
// rows the paper's text quotes.
type Figure struct {
	ID, Title string
	// Seq holds sequence-graph series (bytes vs µs), VOQ occupancy series
	// (packets vs µs), CDF value-vs-fraction series — whatever the figure
	// plots.
	Seq, VOQ, CDF []*stats.Series
	Summary       []SummaryRow
	Notes         []string
}

// Render produces a human-readable reproduction of the figure.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Summary) > 0 {
		seen := map[string]bool{}
		keys := []string{}
		for _, r := range f.Summary {
			for k := range r.Extra {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
		}
		sortStrings(keys)
		fmt.Fprintf(&b, "%-14s %12s", "series", "goodput_gbps")
		for _, k := range keys {
			fmt.Fprintf(&b, " %14s", k)
		}
		b.WriteByte('\n')
		for _, r := range f.Summary {
			fmt.Fprintf(&b, "%-14s %12.2f", r.Label, r.GoodputGbps)
			for _, k := range keys {
				if v, ok := r.Extra[k]; ok {
					fmt.Fprintf(&b, " %14.2f", v)
				} else {
					fmt.Fprintf(&b, " %14s", "-")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// plotWindow truncates a series to the paper's ~3-optical-week plotting
// span, rebasing its time axis to the window start (series may begin at 0 if
// already normalized, or at the measurement start time otherwise).
func plotWindow(sch *rdcn.Schedule, s *stats.Series) *stats.Series {
	span := 3 * float64(sim.Dur(sch.Week())) / float64(sim.Microsecond)
	base := 0.0
	if s.Len() > 0 {
		base = s.T[0]
	}
	out := s.Window(base, base+span)
	for i := range out.T {
		out.T[i] -= base
	}
	return out
}

func runVariants(o Options, scenario Scenario, variants []Variant) ([]*Result, error) {
	results := make([]*Result, 0, len(variants))
	for _, v := range variants {
		res, err := Run(RunConfig{
			Variant: v, Scenario: scenario, Flows: o.Flows,
			WarmupWeeks: o.WarmupWeeks, MeasureWeeks: o.MeasureWeeks, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func seqFigure(id, title string, o Options, scenario Scenario, variants []Variant) (*Figure, error) {
	results, err := runVariants(o, scenario, variants)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: title}
	first := results[0]
	opt := plotWindow(scenario.Schedule, first.Optimal)
	opt.Label = "optimal"
	fig.Seq = append(fig.Seq, opt)
	fig.Summary = append(fig.Summary, SummaryRow{Label: "optimal", GoodputGbps: first.OptimalGbps})
	for _, r := range results {
		fig.Seq = append(fig.Seq, plotWindow(scenario.Schedule, r.Seq))
		fig.VOQ = append(fig.VOQ, plotWindow(scenario.Schedule, r.VOQ))
		fig.Summary = append(fig.Summary, SummaryRow{
			Label: string(r.Variant), GoodputGbps: r.GoodputGbps,
			Extra: map[string]float64{
				"voq_mean": r.VOQ.Mean(),
				"voq_max":  r.VOQ.Max(),
			},
		})
	}
	po := plotWindow(scenario.Schedule, first.PacketOnly)
	po.Label = "packet only"
	fig.Seq = append(fig.Seq, po)
	fig.Summary = append(fig.Summary, SummaryRow{Label: "packet only", GoodputGbps: first.PacketOnlyGbps})
	return fig, nil
}

// Fig2 reproduces Figure 2: sequence graphs of single-path CUBIC and MPTCP
// against the optimal and packet-only references on the hybrid RDCN.
func Fig2(o Options) (*Figure, error) {
	o.fill()
	return seqFigure("fig2", "TCP variants in a hybrid RDCN (sequence graph, 3 weeks)",
		o, Hybrid(), []Variant{Cubic, MPTCP})
}

// Fig7 reproduces Figure 7: sequence graphs (a) and ToR VOQ occupancy (b)
// for every variant under combined bandwidth and latency differences.
func Fig7(o Options) (*Figure, error) {
	o.fill()
	return seqFigure("fig7", "throughput and VOQ occupancy, bandwidth+latency difference",
		o, Hybrid(), AllVariants)
}

// Fig8 reproduces Figure 8: the same comparison with only a bandwidth
// difference between the TDNs.
func Fig8(o Options) (*Figure, error) {
	o.fill()
	return seqFigure("fig8", "throughput and VOQ occupancy, bandwidth difference only",
		o, BandwidthOnly(), AllVariants)
}

// Fig9 reproduces Figure 9: only a latency difference, at 100 Gbps.
func Fig9(o Options) (*Figure, error) {
	o.fill()
	fig, err := seqFigure("fig9", "throughput with only latency difference at 100 Gbps",
		o, LatencyOnly(100*sim.Gbps), AllVariants)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"optimal and packet-only nearly overlap: both TDNs have identical capacity; packet-only avoids blackouts")
	return fig, nil
}

// Fig10 reproduces Figure 10: CDFs of reordering events per optical day (a)
// and packets to be retransmitted per optical day (b) for CUBIC, MPTCP and
// TDTCP.
func Fig10(o Options) (*Figure, error) {
	o.fill()
	if !o.Quick && o.MeasureWeeks < 20 {
		o.MeasureWeeks = 20 // CDF tails want more optical days
	}
	results, err := runVariants(o, Hybrid(), []Variant{Cubic, MPTCP, TDTCP})
	if err != nil {
		return nil, err
	}
	// A fourth series — TDTCP with the §3.4 relaxed detection disabled —
	// isolates what the filter buys (the paper's cubic-vs-tdtcp delta).
	abl, err := Run(RunConfig{
		Variant: TDTCP, Scenario: Hybrid(), Flows: o.Flows,
		WarmupWeeks: o.WarmupWeeks, MeasureWeeks: o.MeasureWeeks, Seed: o.Seed,
		Flow: FlowOptions{TDTCPOpts: core.Options{DisableRelaxedReordering: true}},
	})
	if err != nil {
		return nil, err
	}
	abl.Variant = "tdtcp-nofilter"
	results = append(results, abl)
	fig := &Figure{ID: "fig10", Title: "reordering events and retransmissions per optical day (CDFs)"}
	for _, r := range results {
		ev, rt := r.ReorderEventsPerDay, r.RetransPerDay
		fig.CDF = append(fig.CDF, ev.Series(string(r.Variant)+"/reorder-events"))
		fig.CDF = append(fig.CDF, rt.Series(string(r.Variant)+"/retransmits"))
		fig.Summary = append(fig.Summary, SummaryRow{
			Label: string(r.Variant), GoodputGbps: r.GoodputGbps,
			Extra: map[string]float64{
				"events_p50":  ev.Percentile(50),
				"events_p90":  ev.Percentile(90),
				"retrans_p50": rt.Percentile(50),
				"retrans_p90": rt.Percentile(90),
				"retrans_max": rt.Max(),
				"spurious_rx": float64(r.Receiver.DupSegsRcvd),
			},
		})
	}
	fig.Notes = append(fig.Notes,
		"paper: CUBIC retransmits 15 pkts/day at p90 (max 133); TDTCP cuts the tail to 7 at p90 (max 54)")
	return fig, nil
}

// Fig11 reproduces Figure 11: TDTCP with and without the §5.4 notification
// optimizations (paper: optimizations are worth 12.7% throughput).
func Fig11(o Options) (*Figure, error) {
	o.fill()
	fig := &Figure{ID: "fig11", Title: "TDTCP with/without TDN-change notification optimizations"}
	profiles := []struct {
		label string
		prof  rdcn.NotifyProfile
	}{
		{"optimized", rdcn.OptimizedNotify()},
		{"unoptimized", rdcn.UnoptimizedNotify()},
	}
	var goodputs []float64
	for _, p := range profiles {
		prof := p.prof
		res, err := Run(RunConfig{
			Variant: TDTCP, Scenario: Hybrid(), Flows: o.Flows,
			WarmupWeeks: o.WarmupWeeks, MeasureWeeks: o.MeasureWeeks, Seed: o.Seed,
			Notify: &prof,
		})
		if err != nil {
			return nil, err
		}
		s := plotWindow(Hybrid().Schedule, res.Seq)
		s.Label = p.label
		fig.Seq = append(fig.Seq, s)
		fig.Summary = append(fig.Summary, SummaryRow{Label: p.label, GoodputGbps: res.GoodputGbps})
		goodputs = append(goodputs, res.GoodputGbps)
	}
	if goodputs[1] > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"optimizations improve throughput by %.1f%% (paper: 12.7%%)",
			(goodputs[0]/goodputs[1]-1)*100))
	}
	return fig, nil
}

// Fig13 reproduces Appendix Figure 13: VOQ occupancy of CUBIC and MPTCP on
// the hybrid RDCN.
func Fig13(o Options) (*Figure, error) {
	o.fill()
	results, err := runVariants(o, Hybrid(), []Variant{Cubic, MPTCP})
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig13", Title: "ToR VOQ occupancy of CUBIC and MPTCP (hybrid RDCN)"}
	for _, r := range results {
		fig.VOQ = append(fig.VOQ, plotWindow(Hybrid().Schedule, r.VOQ))
		fig.Summary = append(fig.Summary, SummaryRow{
			Label: string(r.Variant), GoodputGbps: r.GoodputGbps,
			Extra: map[string]float64{"voq_mean": r.VOQ.Mean(), "voq_max": r.VOQ.Max()},
		})
	}
	return fig, nil
}

// Fig14 reproduces Appendix Figure 14: VOQ occupancy with only latency
// differences, at 10 Gbps (a) and 100 Gbps (b).
func Fig14(o Options) (*Figure, error) {
	o.fill()
	fig := &Figure{ID: "fig14", Title: "VOQ occupancy, latency difference only (10 and 100 Gbps)"}
	for _, rate := range []sim.Rate{10 * sim.Gbps, 100 * sim.Gbps} {
		results, err := runVariants(o, LatencyOnly(rate), AllVariants)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			s := plotWindow(LatencyOnly(rate).Schedule, r.VOQ)
			s.Label = fmt.Sprintf("%s@%s", r.Variant, rate)
			fig.VOQ = append(fig.VOQ, s)
			fig.Summary = append(fig.Summary, SummaryRow{
				Label: s.Label, GoodputGbps: r.GoodputGbps,
				Extra: map[string]float64{"voq_mean": r.VOQ.Mean(), "voq_max": r.VOQ.Max()},
			})
		}
	}
	fig.Notes = append(fig.Notes,
		"paper: reTCP builds large queues ahead of circuit start although the circuit BDP is smaller; TDTCP stays in line with CUBIC/DCTCP")
	return fig, nil
}

// Headline reproduces the abstract's throughput claims: TDTCP beats CUBIC
// and DCTCP by ~24% and MPTCP by ~41%, and matches reTCP(dyn).
func Headline(o Options) (*Figure, error) {
	o.fill()
	results, err := runVariants(o, Hybrid(), AllVariants)
	if err != nil {
		return nil, err
	}
	byVariant := map[Variant]float64{}
	fig := &Figure{ID: "headline", Title: "long-lived flow goodput, hybrid RDCN"}
	for _, r := range results {
		byVariant[r.Variant] = r.GoodputGbps
		fig.Summary = append(fig.Summary, SummaryRow{Label: string(r.Variant), GoodputGbps: r.GoodputGbps})
	}
	t := byVariant[TDTCP]
	for _, base := range []Variant{Cubic, DCTCP, MPTCP, ReTCPDyn} {
		if byVariant[base] > 0 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("tdtcp vs %s: %+.1f%%", base, (t/byVariant[base]-1)*100))
		}
	}
	fig.Notes = append(fig.Notes, "paper: +24% vs cubic/dctcp, +41% vs mptcp, parity with retcpdyn")
	return fig, nil
}

// Ablation quantifies each TDTCP mechanism's contribution (DESIGN.md's
// design-choice benches): the full design vs disabling the §3.4 reordering
// filter, the §4.4 RTT sample filter, and the §4.4 pessimistic RTO.
func Ablation(o Options) (*Figure, error) {
	o.fill()
	cases := []struct {
		label string
		opts  core.Options
	}{
		{"full", core.Options{}},
		{"no-reorder-filter", core.Options{DisableRelaxedReordering: true}},
		{"no-rtt-filter", core.Options{DisableRTTFilter: true}},
		{"no-pessimistic-rto", core.Options{DisablePessimisticRTO: true}},
	}
	fig := &Figure{ID: "ablation", Title: "TDTCP mechanism ablation (goodput, hybrid RDCN)"}
	for _, cse := range cases {
		res, err := Run(RunConfig{
			Variant: TDTCP, Scenario: Hybrid(), Flows: o.Flows,
			WarmupWeeks: o.WarmupWeeks, MeasureWeeks: o.MeasureWeeks, Seed: o.Seed,
			Flow: FlowOptions{TDTCPOpts: cse.opts},
		})
		if err != nil {
			return nil, err
		}
		fig.Summary = append(fig.Summary, SummaryRow{
			Label: cse.label, GoodputGbps: res.GoodputGbps,
			Extra: map[string]float64{
				"retransmits": float64(res.Sender.Retransmits),
				"spurious_rx": float64(res.Receiver.DupSegsRcvd),
			},
		})
	}
	return fig, nil
}

// RotorVariants are the transports that generalize to the multi-rack rotor
// fabric (MPTCP's subflow pinning and reTCP's circuit signal are two-rack
// constructs).
var RotorVariants = []Variant{TDTCP, Cubic, DCTCP}

// FigRotor runs the §5.1-style long-lived flow comparison on an N-rack rotor
// RDCN: sequence graphs, VOQ occupancy and goodput for the variants that
// generalize beyond two racks.
func FigRotor(o Options) (*Figure, error) {
	o.fill()
	fig, err := seqFigure("rotor",
		fmt.Sprintf("long-lived flows on a %d-rack rotor RDCN", o.Racks),
		o, MultiRack(o.Racks), RotorVariants)
	if err != nil {
		return nil, err
	}
	by := map[string]float64{}
	for _, r := range fig.Summary {
		by[r.Label] = r.GoodputGbps
	}
	if by["cubic"] > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"tdtcp vs cubic on %d racks: %+.1f%%", o.Racks, (by["tdtcp"]/by["cubic"]-1)*100))
	}
	return fig, nil
}

// FigMultiRack runs the open-loop flow workload (Poisson arrivals, sizes from
// the named distribution) on an N-rack rotor RDCN and reports goodput, VOQ
// occupancy and flow completion times per size bucket.
func FigMultiRack(o Options) (*Figure, error) {
	o.fill()
	dist, err := workload.ByName(o.Workload)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "multirack", Title: fmt.Sprintf(
		"%d-rack rotor RDCN, %s workload: goodput and FCT", o.Racks, o.Workload)}
	for _, v := range RotorVariants {
		res, err := RunWorkload(WorkloadConfig{
			Variant: v, Scenario: MultiRack(o.Racks), Dist: dist,
			WarmupWeeks: o.WarmupWeeks, MeasureWeeks: o.MeasureWeeks, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		extra := map[string]float64{
			"voq_mean":    res.MeanVOQ,
			"flows_done":  float64(res.FlowsCompleted),
			"flows_total": float64(res.FlowsStarted),
		}
		for _, s := range res.FCT.Summaries() {
			if s.N > 0 {
				extra["fct_"+s.Bucket+"_us"] = s.MeanUs
			}
		}
		fig.Summary = append(fig.Summary, SummaryRow{
			Label: string(v), GoodputGbps: res.GoodputGbps, Extra: extra,
		})
		if c := res.FCT.CDF("all"); c.N() > 0 {
			fig.CDF = append(fig.CDF, c.Series(string(v)+"/fct-us"))
		}
	}
	fig.Notes = append(fig.Notes,
		"FCTs cover flows arriving in the measurement window that completed before the horizon")
	return fig, nil
}

// Figures maps figure IDs to their runners (the cmd/tdsim dispatch table).
var Figures = map[string]func(Options) (*Figure, error){
	"fig2":      Fig2,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig13":     Fig13,
	"fig14":     Fig14,
	"headline":  Headline,
	"ablation":  Ablation,
	"rotor":     FigRotor,
	"multirack": FigMultiRack,
}
