package experiments

import (
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/invariant"
	"github.com/rdcn-net/tdtcp/internal/obs"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/stats"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
	"github.com/rdcn-net/tdtcp/internal/workload"
)

// Scenario selects the network conditions of an experiment (§5.2's three
// settings, or a rotor-style multi-rack fabric).
type Scenario struct {
	Name     string
	TDNs     []rdcn.TDNParams
	Schedule *rdcn.Schedule
	VOQCap   int
	// Racks is the ToR count (0 or 2 = the paper's two-rack testbed; more
	// racks form the rotor fabric of MultiRack).
	Racks int
}

// Hybrid is the paper's main setting: TDN 0 = 10 Gbps / ~100 µs RTT packet
// network, TDN 1 = 100 Gbps / ~40 µs RTT optical network (Figs. 2, 7, 10,
// 11, 13).
func Hybrid() Scenario {
	return Scenario{
		Name: "hybrid",
		TDNs: []rdcn.TDNParams{
			{Rate: 10 * sim.Gbps, Delay: 49 * sim.Microsecond},
			{Rate: 100 * sim.Gbps, Delay: 19 * sim.Microsecond},
		},
		Schedule: rdcn.HybridWeek(6, 180*sim.Microsecond, 20*sim.Microsecond),
		VOQCap:   16,
	}
}

// MultiRack scales the hybrid setting to an n-rack rotor RDCN: TDN 0 keeps
// the hybrid packet-network parameters (fair-shared across each rack's n-1
// VOQs), and each of the NumMatchings optical TDNs runs at the hybrid optical
// parameters during its matching's day. Day/night durations and the 6:1
// packet:optical ratio match the paper's schedule.
func MultiRack(n int) Scenario {
	h := Hybrid()
	return Scenario{
		Name:     fmt.Sprintf("rotor-%d", n),
		TDNs:     rdcn.RotorTDNs(n, h.TDNs[0], h.TDNs[1]),
		Schedule: rdcn.RotorWeek(n, 6, 180*sim.Microsecond, 20*sim.Microsecond),
		VOQCap:   h.VOQCap,
		Racks:    n,
	}
}

// BandwidthOnly keeps both TDNs at the same latency and varies only the
// rate (Fig. 8).
func BandwidthOnly() Scenario {
	s := Hybrid()
	s.Name = "bw-only"
	s.TDNs[1].Delay = s.TDNs[0].Delay
	return s
}

// LatencyOnly fixes the rate on both TDNs and varies only the latency:
// packet RTT 20 µs, optical RTT 10 µs (Figs. 9 and 14).
func LatencyOnly(rate sim.Rate) Scenario {
	s := Hybrid()
	s.Name = fmt.Sprintf("lat-only-%s", rate)
	s.TDNs[0] = rdcn.TDNParams{Rate: rate, Delay: 9 * sim.Microsecond}
	s.TDNs[1] = rdcn.TDNParams{Rate: rate, Delay: 4 * sim.Microsecond}
	return s
}

// RunConfig fully specifies one experiment run.
type RunConfig struct {
	Variant  Variant
	Scenario Scenario
	// Flows is the number of host pairs (default 16, §5.1).
	Flows int
	// WarmupWeeks are excluded from measurement (default 3); MeasureWeeks
	// is the measurement window (default 10).
	WarmupWeeks, MeasureWeeks int
	Seed                      int64
	// Shards is the worker count for the sharded engine (default 1). Every
	// run partitions its event population by rack onto sim.ShardedLoop
	// lanes; Shards only selects how many OS workers execute those lanes.
	// Lane assignment, lookahead windows, and the canonical merge order are
	// all shard-count-independent, so the observable trace is byte-identical
	// for every value of Shards (the parity suite proves it). 1 runs the
	// lanes inline with zero goroutines.
	Shards int
	// Notify is the TDN-change notification profile (default optimized).
	Notify *rdcn.NotifyProfile
	// SampleEvery is the series sampling cadence (default 5 µs).
	SampleEvery sim.Dur
	// MarkThresh is the ECN marking threshold; defaults to 5 packets when
	// the variant is DCTCP, otherwise 0.
	MarkThresh int
	Flow       FlowOptions

	// Tracer, when non-nil, is wired through every layer of the run: the
	// event loop (CatSim), sender connections and their CC instances
	// (CatTCP/CatCC/CatTDN), the rack VOQs (CatVOQ) and the RDCN control
	// plane (CatRDCN). With the same Seed, two traced runs produce
	// byte-identical event streams.
	Tracer *trace.Tracer
	// Metrics, when non-nil, is populated with run-level counters and
	// gauges before Run returns (see the "Observability" section of
	// DESIGN.md for the key taxonomy), plus the run's zero-allocation
	// histograms: per-TDN RTT ("tcp.rtt_tdn<k>_ns"), per-rack VOQ occupancy
	// ("voq.r<k>.occ_pkts"), epoch-switch latency ("rdcn.notify_lat_ns"),
	// and deadman engagement lag ("tdtcp.deadman_lag_ns").
	Metrics *trace.Registry

	// Flight, when non-nil, attaches the given flight recorder to the run's
	// tracer. When nil (and DisableFlight is unset) Run creates one with the
	// trace-package defaults, so the most recent events are always in hand
	// even with JSONL tracing off. The ring is dumped to stderr when an
	// invariant check fails, the conservation ledger fails, or the run
	// panics; Result.Flight exposes it afterwards.
	Flight *trace.Flight
	// DisableFlight turns the always-on flight recorder off entirely (the
	// benchmark A/B baseline; there is no other reason to disable it).
	DisableFlight bool
	// Meter, when non-nil, taps the run for live progress (events/sec,
	// sim/wall ratio): attach an obs.Reporter to stream it. Pure observer —
	// results and traces are identical with or without one.
	Meter *obs.Meter

	// Fault, when non-nil and enabled, injects the plan's faults into the
	// run, driven by FaultSeed (default 1) independently of Seed. TDTCP
	// flows additionally get the notification deadman armed (unless the
	// caller already configured one), so notification loss degrades into
	// schedule-inferred switching instead of a stall.
	Fault     *fault.Plan
	FaultSeed int64
	// Invariants attaches the runtime invariant checker to every connection
	// and the network, validating scoreboard/sequence/VOQ accounting after
	// every simulation event (see Result.Violations).
	Invariants bool

	// DisableFramePool turns off the data plane's wire-buffer recycling
	// (see rdcn.Config.DisableFramePool). Pooling must not be observable:
	// the golden-trace test runs the same seed with and without it and
	// requires byte-identical traces.
	DisableFramePool bool

	// DisableBatchDelivery reverts the fabric to frame-at-a-time delivery
	// (see rdcn.Config.DisableBatchDelivery). Batching must not be
	// protocol-visible: the batch-delivery A/B tests run the same seed with
	// and without it and require identical protocol traces.
	DisableBatchDelivery bool

	// Stop, when non-nil, is the cooperative cancellation seam: it is polled
	// between simulation events (every StopEvery events; sim.DefaultStopEvery
	// when zero) and once it returns true the run abandons the event loop and
	// Run returns an error wrapping ErrCancelled. The seam sits outside the
	// determinism boundary — Stop typically reads a wall-clock deadline or an
	// atomic flag set by another goroutine — but provably cannot perturb
	// results: it runs between events, touches no simulation state, and only
	// decides whether the next event executes, so a cancelled run's trace is
	// a byte-identical prefix of the uncancelled run's (see
	// sim.Loop.SetStopCheck and TestCancelledRunTraceIsPrefix).
	Stop      func() bool
	StopEvery int
}

func (cfg *RunConfig) fillDefaults() {
	if cfg.Flows == 0 {
		cfg.Flows = 16
	}
	if cfg.WarmupWeeks == 0 {
		cfg.WarmupWeeks = 3
	}
	if cfg.MeasureWeeks == 0 {
		cfg.MeasureWeeks = 10
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 5 * sim.Microsecond
	}
	if cfg.MarkThresh == 0 && cfg.Variant == DCTCP {
		cfg.MarkThresh = 5
	}
	if cfg.Scenario.Name == "" {
		cfg.Scenario = Hybrid()
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = 1
	}
}

// Result carries everything a figure needs from one run.
type Result struct {
	Variant Variant
	Cfg     RunConfig

	// Seq is the aggregate delivered-bytes series over the measurement
	// window, normalized to its start (the paper's sequence graphs).
	Seq *stats.Series
	// VOQ is rack 0's uplink occupancy in packets over the same window.
	VOQ *stats.Series
	// Optimal and PacketOnly are the §2.2 analytic references on the same
	// window (aggregate bytes).
	Optimal, PacketOnly *stats.Series

	GoodputGbps    float64
	OptimalGbps    float64
	PacketOnlyGbps float64

	// Per-optical-day distributions (Fig. 10): deltas between consecutive
	// optical-day starts during measurement.
	ReorderEventsPerDay *stats.CDF
	RetransPerDay       *stats.CDF

	// Aggregated endpoint counters over the whole run.
	Sender, Receiver tcp.Stats
	TDTCPSwitches    uint64
	// DeadmanEngaged sums schedule-inferred TDN switches across TDTCP flows
	// (notification-loss degradation, only non-zero on faulted runs).
	DeadmanEngaged uint64

	// Frame-conservation ledger at the horizon (see rdcn.FrameLedger); Run
	// fails outright if frames sent != delivered + dropped + in-flight.
	FramesSent, FramesDelivered, FramesMisrouted uint64

	// FaultStats counts the faults actually injected (zero value when the
	// run was not faulted).
	FaultStats fault.Stats
	// InvariantChecks and Violations report the runtime checker's activity
	// when RunConfig.Invariants was set.
	InvariantChecks uint64
	Violations      []invariant.Violation
	// Flight is the run's flight recorder (nil when disabled): the most
	// recent trace events, recorded regardless of JSONL tracing.
	Flight *trace.Flight
	// FlightSnapshot holds the ring contents frozen at the first invariant
	// violation (nil on clean or unchecked runs).
	FlightSnapshot []trace.Event
}

// ErrCancelled is the sentinel wrapped by Run and RunWorkload when the
// configured Stop seam requested cancellation before the run's horizon.
// Everything emitted up to the cancellation point (trace bytes, flight
// recorder contents) is a valid prefix of the uncancelled run's output.
var ErrCancelled = errors.New("run cancelled")

// loopStats is the slice of the event-loop API the error and metrics paths
// need; both *sim.Loop and *sim.ShardedLoop satisfy it.
type loopStats interface {
	Fired() uint64
	Live() int
	Now() sim.Time
}

// cancelledErr builds the wrapped cancellation error for one run.
func cancelledErr(what string, loop loopStats) error {
	return fmt.Errorf("experiments: %s after %d events at %v: %w",
		what, loop.Fired(), loop.Now(), ErrCancelled)
}

// dumpFlight writes the flight recorder's ring as JSONL behind a banner line
// naming the reason. Used on the failure paths (conservation failure, panic;
// the invariant checker dumps through its own hook) so a post-mortem always
// has the last events in hand.
func dumpFlight(w io.Writer, f *trace.Flight, reason string) {
	if f == nil || f.Len() == 0 {
		return
	}
	fmt.Fprintf(w, "== flight recorder dump (%s): last %d events ==\n", reason, f.Len())
	_ = f.Dump(w)
}

// wireFlowHists attaches the registry's per-TDN RTT and deadman-lag
// histograms to a flow's connections (both directions; every MPTCP subflow).
// Handles resolve once here — Conn and TDTCP record into them lock-free.
func wireFlowHists(m *trace.Registry, f *Flow, ntdns int) {
	if m == nil {
		return
	}
	rtts := make([]*trace.Histogram, ntdns)
	for k := range rtts {
		rtts[k] = m.Hist(fmt.Sprintf("tcp.rtt_tdn%d_ns", k))
	}
	lag := m.Hist("tdtcp.deadman_lag_ns")
	wire := func(c *tcp.Conn) {
		if c == nil {
			return
		}
		c.RTTHists = rtts
		if p, ok := c.Config().Policy.(*core.TDTCP); ok {
			p.DeadmanLag = lag
		}
	}
	if f.MSnd != nil {
		for _, sub := range f.MSnd.Subflows() {
			wire(sub)
		}
		for _, sub := range f.MRcv.Subflows() {
			wire(sub)
		}
		return
	}
	wire(f.Snd)
	wire(f.Rcv)
}

// Run executes one experiment and returns its measurements.
func Run(cfg RunConfig) (*Result, error) {
	cfg.fillDefaults()
	flight := cfg.Flight
	if flight == nil && !cfg.DisableFlight {
		flight = trace.NewFlight(trace.DefaultFlightLen, trace.DefaultFlightCats)
	}
	// tracer carries the flight recorder alongside any caller-supplied JSONL
	// tracer; it is what every layer below gets wired with. JSONL output is
	// byte-identical with or without the recorder attached.
	tracer := cfg.Tracer.WithFlight(flight)
	defer func() {
		if r := recover(); r != nil {
			dumpFlight(os.Stderr, flight, fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()
	racks := cfg.Scenario.Racks
	if racks == 0 {
		racks = 2
	}
	// Every run executes on the sharded engine: one lane per rack plus the
	// control lane, regardless of Shards. Shards only picks the worker
	// count, which the engine guarantees is unobservable.
	engine := sim.NewSharded(cfg.Seed, racks, cfg.Shards)
	loop := engine.Control()
	if cfg.Meter != nil {
		// The meter is all-atomic, so every lane can feed it: attach to the
		// control loop and each rack lane for true whole-run event counts.
		cfg.Meter.Attach(loop)
		for r := 0; r < racks; r++ {
			cfg.Meter.Attach(engine.RackLoop(r))
		}
	}
	if cfg.Stop != nil {
		engine.SetStopCheck(cfg.StopEvery, cfg.Stop)
	}
	if racks > 2 {
		switch cfg.Variant {
		case MPTCP, ReTCP, ReTCPDyn:
			// Subflow pinning and the circuit-up/down signal are defined
			// against the two-rack hybrid; the rotor fabric has no single
			// "circuit" for a host to react to.
			return nil, fmt.Errorf("experiments: variant %s supports only 2 racks", cfg.Variant)
		default:
			// Cubic, DCTCP, Reno, TDTCP run on any rack count.
		}
	}

	ncfg := rdcn.DefaultConfig()
	ncfg.Racks = racks
	ncfg.HostsPerRack = cfg.Flows
	if racks > 2 {
		// Ring placement: flow i runs rack i%racks -> rack (i%racks)+1,
		// host i/racks on both sides.
		ncfg.HostsPerRack = (cfg.Flows + racks - 1) / racks
	}
	ncfg.TDNs = cfg.Scenario.TDNs
	ncfg.Schedule = cfg.Scenario.Schedule
	ncfg.VOQCap = cfg.Scenario.VOQCap
	ncfg.MarkThresh = cfg.MarkThresh
	ncfg.DisableFramePool = cfg.DisableFramePool
	ncfg.DisableBatchDelivery = cfg.DisableBatchDelivery
	if cfg.Notify != nil {
		ncfg.Notify = *cfg.Notify
	}
	if cfg.Variant == ReTCPDyn {
		ncfg.PreChange = &rdcn.PreChange{TDN: 1, Lead: 150 * sim.Microsecond, Cap: 50}
	}
	ncfg.Cluster = engine
	net, err := rdcn.New(loop, ncfg)
	if err != nil {
		return nil, err
	}
	// Engine first: it creates the per-rack tracer forks that Network's
	// SetTracer then hands to each rack's components.
	engine.SetTracer(tracer)
	net.SetTracer(tracer)
	if m := cfg.Metrics; m != nil {
		// Histogram handles resolve here, at setup; the hot-path Record is
		// lock-free and allocation-free.
		net.NotifyLat = m.Hist("rdcn.notify_lat_ns")
		for _, rack := range net.Racks {
			occ := m.Hist(fmt.Sprintf("voq.r%d.occ_pkts", rack.ID))
			for _, v := range rack.VOQs() {
				v.OccHist = occ
			}
		}
	}

	var inj *fault.Injector
	if cfg.Fault != nil && cfg.Fault.Enabled() {
		inj = fault.New(loop, *cfg.Fault, cfg.FaultSeed)
		inj.SetTracer(tracer)
		inj.SetMetrics(cfg.Metrics)
		inj.Install(net)
		if cfg.Variant == TDTCP && cfg.Flow.TDTCPOpts.DeadmanHorizon == 0 {
			cfg.Flow.TDTCPOpts.DeadmanHorizon = defaultDeadmanHorizon(ncfg.Schedule)
		}
	}
	var chk *invariant.Checker
	if cfg.Invariants {
		chk = invariant.New(loop)
		chk.SetTracer(tracer)
		chk.SetMetrics(cfg.Metrics)
		chk.SetFlight(flight, os.Stderr)
		chk.WatchNetwork(net)
	}

	if cfg.Flow.Slab == nil && cfg.Flow.Slabs == nil {
		// One struct-of-arrays slab per rack: a flow's hot state packs into
		// its own lane's dense columns (see tcp.Slab), so no two lanes ever
		// share a free list.
		slabs := make([]*tcp.Slab, racks)
		for r := range slabs {
			slabs[r] = tcp.NewSlab(2*cfg.Flows, 4*cfg.Flows)
		}
		cfg.Flow.Slabs = slabs
	}
	flows := make([]*Flow, cfg.Flows)
	// A flow's sender emits trace events from its rack's lane, so it must
	// record through that lane's tracer fork (Rack.Tracer), never the shared
	// parent.
	if racks > 2 {
		mn := newMuxNet(net)
		for i := range flows {
			src, host := i%racks, i/racks
			f, err := mn.BuildFlow(loop, src, host, (src+1)%racks, host,
				uint16(40000+i), cfg.Variant, cfg.Flow)
			if err != nil {
				return nil, err
			}
			f.SetTracer(net.Racks[src].Tracer(), i)
			wireFlowHists(cfg.Metrics, f, len(cfg.Scenario.TDNs))
			flows[i] = f
		}
	} else {
		for i := range flows {
			f, err := BuildFlow(loop, net, i, cfg.Variant, cfg.Flow)
			if err != nil {
				return nil, err
			}
			f.SetTracer(net.Racks[0].Tracer(), i)
			wireFlowHists(cfg.Metrics, f, len(cfg.Scenario.TDNs))
			flows[i] = f
		}
	}
	if chk != nil {
		for i, f := range flows {
			if f.MSnd != nil {
				for _, sub := range f.MSnd.Subflows() {
					chk.WatchConn(sub, i)
				}
				for _, sub := range f.MRcv.Subflows() {
					chk.WatchConn(sub, i)
				}
				continue
			}
			chk.WatchConn(f.Snd, i)
			chk.WatchConn(f.Rcv, i)
		}
	}

	week := cfg.Scenario.Schedule.Week()
	measureStart := sim.Time(sim.Dur(cfg.WarmupWeeks) * week)
	end := measureStart.Add(sim.Dur(cfg.MeasureWeeks) * week)
	net.Start(end)
	if inj != nil {
		inj.Start(end)
	}

	delivered := func() float64 {
		var sum int64
		for _, f := range flows {
			sum += f.Delivered()
		}
		return float64(sum)
	}
	voqLen := func() float64 { return float64(net.Racks[0].QueueLen()) }

	// Per-optical-day buckets over [measureStart, end).
	var evBuckets, rtBuckets stats.Buckets
	net.OnTransition = func(tdn int) {
		if tdn < 1 || loop.Now() < measureStart || loop.Now() > end {
			return
		}
		var ev, rt float64
		for _, f := range flows {
			st := f.SenderStats()
			ev += float64(st.ReorderEvents)
			rt += float64(st.LossMarks)
		}
		evBuckets.Close(ev)
		rtBuckets.Close(rt)
	}

	// Each flow's lifetime is a causal span: child events (recovery episodes,
	// cwnd swaps) hang off it in the Chrome view.
	flowSpans := make([]trace.SpanID, len(flows))
	for i, f := range flows {
		flowSpans[i] = tracer.BeginSpan(trace.CatTCP, int64(loop.Now()), "flow", i, -1, 0)
		f.Start(-1)
	}

	engine.RunUntil(measureStart)
	// Cancellation is surfaced only between RunUntil legs: no trace event is
	// emitted after the last executed simulation event, so the cancelled
	// run's trace stays a byte-identical prefix of the full run's.
	if engine.Stopped() {
		return nil, cancelledErr(fmt.Sprintf("%s on %s", cfg.Variant, cfg.Scenario.Name), engine)
	}
	baseline := delivered()
	// Samplers live on the control lane: their reads of flow state are
	// barrier-synchronized (control instants run with every worker parked).
	seq := stats.NewSampler(loop, string(cfg.Variant), cfg.SampleEvery, end,
		func() float64 { return delivered() - baseline })
	voq := stats.NewSampler(loop, string(cfg.Variant), cfg.SampleEvery, end, voqLen)
	engine.RunUntil(end)
	if engine.Stopped() {
		return nil, cancelledErr(fmt.Sprintf("%s on %s", cfg.Variant, cfg.Scenario.Name), engine)
	}
	for i, f := range flows {
		tracer.EndSpan(trace.CatTCP, int64(loop.Now()), "flow", i, -1,
			flowSpans[i], float64(f.Delivered()), 0)
	}

	measureDur := end.Sub(measureStart)
	res := &Result{
		Variant:     cfg.Variant,
		Cfg:         cfg,
		Seq:         seq.Series.Normalize(),
		VOQ:         voq.Series, // occupancy needs no normalization
		GoodputGbps: stats.ThroughputGbps(int64(delivered()-baseline), measureDur),
		Optimal: workload.OptimalSeries(cfg.Scenario.Schedule, cfg.Scenario.TDNs,
			measureStart, end, cfg.SampleEvery).Normalize(),
		PacketOnly: workload.PacketOnlySeries(cfg.Scenario.TDNs[0].Rate,
			measureStart, end, cfg.SampleEvery).Normalize(),
		OptimalGbps:         workload.OptimalGbps(cfg.Scenario.Schedule, cfg.Scenario.TDNs),
		PacketOnlyGbps:      float64(cfg.Scenario.TDNs[0].Rate) / 1e9,
		ReorderEventsPerDay: evBuckets.CDF(),
		RetransPerDay:       rtBuckets.CDF(),
	}
	for _, f := range flows {
		s, r := f.SenderStats(), f.ReceiverStats()
		addStats(&res.Sender, &s)
		addStats(&res.Receiver, &r)
		if f.Snd != nil {
			if p, ok := f.Snd.Config().Policy.(*core.TDTCP); ok {
				ps := p.Stats()
				res.TDTCPSwitches += ps.Switches
				res.DeadmanEngaged += ps.DeadmanEngaged
			}
			if p, ok := f.Rcv.Config().Policy.(*core.TDTCP); ok {
				res.DeadmanEngaged += p.Stats().DeadmanEngaged
			}
		}
	}
	res.FramesSent, res.FramesDelivered, res.FramesMisrouted = net.FrameLedger()
	if err := net.CheckConservation(); err != nil {
		dumpFlight(os.Stderr, flight, fmt.Sprintf("conservation failure: %v", err))
		dumpEngineFlights(os.Stderr, engine, fmt.Sprintf("conservation failure: %v", err))
		return nil, fmt.Errorf("experiments: %s on %s: %w", cfg.Variant, cfg.Scenario.Name, err)
	}
	if inj != nil {
		res.FaultStats = inj.Stats()
	}
	if chk != nil {
		res.InvariantChecks = chk.Checks()
		res.Violations = chk.Violations()
		res.FlightSnapshot = chk.FlightSnapshot()
	}
	res.Flight = flight
	// The VOQ series gets its label from the variant but its own axis: fix
	// labels for clarity.
	res.Seq.Label = string(cfg.Variant)
	res.VOQ.Label = string(cfg.Variant)
	populateMetrics(cfg, res, engine, net, flows)
	return res, nil
}

// dumpEngineFlights dumps every rack lane's private flight recorder (the
// per-fork rings the sharded engine maintains alongside the shared one).
func dumpEngineFlights(w io.Writer, engine *sim.ShardedLoop, reason string) {
	for r := 0; r < engine.Racks(); r++ {
		dumpFlight(w, engine.RackTracer(r).FlightRecorder(),
			fmt.Sprintf("%s, rack %d lane", reason, r))
	}
}

// populateMetrics fills cfg.Metrics (when set) with the run's counters and
// gauges. Keys are stable, so Registry.WriteJSON output is byte-comparable
// across runs of the same configuration.
func populateMetrics(cfg RunConfig, res *Result, loop loopStats, net *rdcn.Network, flows []*Flow) {
	m := cfg.Metrics
	if m == nil {
		return
	}
	m.Set("run.goodput_gbps", res.GoodputGbps)
	m.Set("run.optimal_gbps", res.OptimalGbps)
	m.Set("run.packetonly_gbps", res.PacketOnlyGbps)

	s, r := res.Sender, res.Receiver
	m.Add("tcp.segs_sent", int64(s.SegsSent))
	m.Add("tcp.segs_rcvd", int64(s.SegsRcvd))
	m.Add("tcp.bytes_sent", s.BytesSent)
	m.Add("tcp.bytes_acked", s.BytesAcked)
	m.Add("tcp.retransmits", int64(s.Retransmits))
	m.Add("tcp.fast_retransmits", int64(s.FastRetransmits))
	m.Add("tcp.rto_fires", int64(s.RTOFires))
	m.Add("tcp.tlp_probes", int64(s.TLPProbes))
	m.Add("tcp.reorder_events", int64(s.ReorderEvents))
	m.Add("tcp.reorder_packets", int64(s.ReorderPackets))
	m.Add("tcp.loss_marks", int64(s.LossMarks))
	m.Add("tcp.loss_filtered", int64(s.FilteredMarks))
	m.Add("tcp.undos", int64(s.Undos))
	m.Add("tcp.rtt_samples", int64(s.RTTSamples))
	m.Add("tcp.rtt_samples_dropped", int64(s.RTTSamplesDropped))
	m.Add("tcp.bytes_delivered", r.BytesDelivered)
	m.Add("tcp.dup_segs_rcvd", int64(r.DupSegsRcvd))
	m.Add("tcp.dsacks_sent", int64(r.DSACKsSent))
	m.Add("tcp.notifies_rcvd", int64(s.NotifiesRcvd+r.NotifiesRcvd))
	m.Add("tcp.notifies_stale", int64(s.NotifiesStale+r.NotifiesStale))
	m.Add("tcp.notifies_dup", int64(s.NotifiesDup+r.NotifiesDup))
	m.Add("tdtcp.switches", int64(res.TDTCPSwitches))
	m.Add("tdtcp.deadman_engaged", int64(res.DeadmanEngaged))
	if cfg.Invariants {
		m.Add("invariant.checks", int64(res.InvariantChecks))
		// Ensure the violations counter exists even on clean runs, so "zero
		// violations" is visible rather than a missing key.
		m.Add("invariant.violations", 0)
	}

	for i, f := range flows {
		m.Add(fmt.Sprintf("flow.%02d.bytes_delivered", i), f.Delivered())
	}
	for _, rack := range net.Racks {
		var enq, deq, drops, marks uint64
		for _, v := range rack.VOQs() {
			e, d, dr, mk := v.Stats()
			enq += e
			deq += d
			drops += dr
			marks += mk
		}
		m.Add(fmt.Sprintf("voq.r%d.enq", rack.ID), int64(enq))
		m.Add(fmt.Sprintf("voq.r%d.deq", rack.ID), int64(deq))
		m.Add(fmt.Sprintf("voq.r%d.drops", rack.ID), int64(drops))
		m.Add(fmt.Sprintf("voq.r%d.marks", rack.ID), int64(marks))
	}

	m.Add("sim.events_fired", int64(loop.Fired()))
	// Live (not Pending) so stopped-but-unpopped timers don't inflate the
	// reported queue depth.
	m.Set("sim.live_timers", float64(loop.Live()))
	m.Set("sim.virtual_seconds", float64(loop.Now())/1e9)
	if cfg.Tracer != nil {
		m.Add("trace.events", int64(cfg.Tracer.Count()))
	}
}

// defaultDeadmanHorizon derives a notification-deadman horizon from the
// schedule: 1.5× the longest gap between consecutive day starts, so a single
// lost notification trips the fallback while nominal delivery never does.
func defaultDeadmanHorizon(s *rdcn.Schedule) sim.Dur {
	week := s.Week()
	var starts []sim.Dur
	for t := sim.Time(0); t < sim.Time(week); {
		_, ok, end := s.At(t)
		if ok {
			starts = append(starts, sim.Dur(t))
		}
		if end <= t {
			return 0 // degenerate schedule; leave the deadman unarmed
		}
		t = end
	}
	if len(starts) == 0 {
		return 0
	}
	var gap sim.Dur
	for i, st := range starts {
		next := starts[0] + week // wrap to the next week's first day
		if i+1 < len(starts) {
			next = starts[i+1]
		}
		if g := next - st; g > gap {
			gap = g
		}
	}
	return gap + gap/2
}
