package experiments

import (
	"bytes"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// sweepMatrix returns the 8-cell matrix (4 variants x 2 seeds) of short
// hybrid runs used by the parity tests.
func sweepMatrix() []RunConfig {
	base := RunConfig{Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1}
	return Matrix(base, []Variant{TDTCP, ReTCP, DCTCP, Cubic}, []int64{1, 2})
}

// TestSweepParallelMatchesSequential runs the same 8-config matrix through
// the sequential and parallel paths and requires identical results cell by
// cell: same goodput, same endpoint counters, same input-order indexing.
// Run under -race this doubles as the sweep's data-race gate.
func TestSweepParallelMatchesSequential(t *testing.T) {
	cfgs := sweepMatrix()
	seq := Sweep(cfgs, 1)
	par := Sweep(cfgs, 4)
	if len(seq) != len(cfgs) || len(par) != len(cfgs) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(cfgs))
	}
	for i := range cfgs {
		s, p := seq[i], par[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("cell %d errored: seq=%v par=%v", i, s.Err, p.Err)
		}
		if s.Cfg.Variant != cfgs[i].Variant || p.Cfg.Variant != cfgs[i].Variant {
			t.Fatalf("cell %d out of order: want %s, seq=%s par=%s",
				i, cfgs[i].Variant, s.Cfg.Variant, p.Cfg.Variant)
		}
		if s.Res.GoodputGbps != p.Res.GoodputGbps {
			t.Errorf("cell %d (%s seed %d): goodput %.6f (seq) != %.6f (par)",
				i, cfgs[i].Variant, cfgs[i].Seed, s.Res.GoodputGbps, p.Res.GoodputGbps)
		}
		if s.Res.Sender != p.Res.Sender {
			t.Errorf("cell %d (%s seed %d): sender stats diverge:\nseq: %+v\npar: %+v",
				i, cfgs[i].Variant, cfgs[i].Seed, s.Res.Sender, p.Res.Sender)
		}
		if s.Res.Receiver != p.Res.Receiver {
			t.Errorf("cell %d (%s seed %d): receiver stats diverge",
				i, cfgs[i].Variant, cfgs[i].Seed)
		}
	}
}

func TestMatrixOrder(t *testing.T) {
	cfgs := Matrix(RunConfig{Flows: 2}, []Variant{TDTCP, ReTCP}, []int64{3, 4})
	want := []struct {
		v Variant
		s int64
	}{{TDTCP, 3}, {TDTCP, 4}, {ReTCP, 3}, {ReTCP, 4}}
	if len(cfgs) != len(want) {
		t.Fatalf("len = %d, want %d", len(cfgs), len(want))
	}
	for i, w := range want {
		if cfgs[i].Variant != w.v || cfgs[i].Seed != w.s {
			t.Errorf("cell %d = (%s, %d), want (%s, %d)",
				i, cfgs[i].Variant, cfgs[i].Seed, w.v, w.s)
		}
	}
}

// goldenTraceRun executes a short TDTCP hybrid run with a full-category
// tracer and returns the JSONL bytes.
func goldenTraceRun(t *testing.T, seed int64, disablePool bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	_, err := Run(RunConfig{
		Variant:          TDTCP,
		Scenario:         Hybrid(),
		Flows:            2,
		WarmupWeeks:      1,
		MeasureWeeks:     1,
		Seed:             seed,
		Tracer:           tr,
		DisableFramePool: disablePool,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestFramePoolGoldenTrace is the pooling A/B gate: recycling wire buffers
// must be completely unobservable. The same seeded hybrid scenario is run
// with pooling on (twice, to also catch pool-state leakage across the run's
// own lifetime) and off, and all traces must be byte-identical JSONL.
func TestFramePoolGoldenTrace(t *testing.T) {
	pooled := goldenTraceRun(t, 42, false)
	pooled2 := goldenTraceRun(t, 42, false)
	unpooled := goldenTraceRun(t, 42, true)
	if len(pooled) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !bytes.Equal(pooled, pooled2) {
		t.Fatalf("pooled runs of the same seed diverge (%d vs %d bytes)", len(pooled), len(pooled2))
	}
	if !bytes.Equal(pooled, unpooled) {
		d := firstDiffLine(pooled, unpooled)
		t.Fatalf("pooling is observable: traces diverge at line %d\npooled:   %s\nunpooled: %s",
			d, lineAt(pooled, d), lineAt(unpooled, d))
	}
}

// firstDiffLine returns the 1-based index of the first line where a and b
// differ.
func firstDiffLine(a, b []byte) int {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return i + 1
		}
	}
	return n + 1
}

func lineAt(b []byte, n int) []byte {
	lines := bytes.Split(b, []byte("\n"))
	if n-1 < len(lines) {
		return lines[n-1]
	}
	return nil
}
