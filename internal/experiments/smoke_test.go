package experiments

import (
	"fmt"
	"testing"
)

func TestSmokeAllVariants(t *testing.T) {
	for _, v := range []Variant{Cubic, DCTCP, TDTCP, ReTCP, ReTCPDyn, MPTCP} {
		res, err := Run(RunConfig{Variant: v, WarmupWeeks: 3, MeasureWeeks: 10})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		fmt.Printf("%-10s goodput=%6.2f Gbps optimal=%.2f pktonly=%.2f retrans=%d rto=%d reord=%d dup=%d filt=%d switches=%d\n",
			v, res.GoodputGbps, res.OptimalGbps, res.PacketOnlyGbps,
			res.Sender.Retransmits, res.Sender.RTOFires, res.Sender.ReorderEvents,
			res.Receiver.DupSegsRcvd, res.Sender.FilteredMarks, res.TDTCPSwitches)
	}
}
