// Package experiments assembles full paper experiments: it wires transport
// variants (CUBIC, DCTCP, reTCP, MPTCP, TDTCP) onto the emulated RDCN,
// drives the §5.1 workload, and produces the series and distributions behind
// every figure in the evaluation (see DESIGN.md's experiment index).
package experiments

import (
	"fmt"

	"github.com/rdcn-net/tdtcp/internal/cc"
	"github.com/rdcn-net/tdtcp/internal/core"
	"github.com/rdcn-net/tdtcp/internal/mptcp"
	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Variant names a transport under test, matching the paper's figure legends.
type Variant string

// The transports evaluated in the paper.
const (
	Cubic    Variant = "cubic"
	DCTCP    Variant = "dctcp"
	Reno     Variant = "reno"
	ReTCP    Variant = "retcp"
	ReTCPDyn Variant = "retcpdyn"
	MPTCP    Variant = "mptcp2f"
	TDTCP    Variant = "tdtcp"
)

// AllVariants lists every transport in the Fig. 7 legend order.
var AllVariants = []Variant{ReTCPDyn, TDTCP, ReTCP, DCTCP, Cubic, MPTCP}

// Flow is one sender/receiver pair between corresponding hosts of the two
// racks.
type Flow struct {
	Variant Variant

	Snd, Rcv   *tcp.Conn   // single-path and TDTCP
	MSnd, MRcv *mptcp.Conn // MPTCP
}

// Delivered returns in-order bytes delivered to the receiving application.
func (f *Flow) Delivered() int64 {
	if f.MRcv != nil {
		return f.MRcv.DeliveredBytes
	}
	return f.Rcv.Stats.BytesDelivered
}

// Start begins the transfer (bytes < 0 streams indefinitely).
func (f *Flow) Start(bytes int64) {
	if f.MSnd != nil {
		f.MSnd.Connect(bytes)
		return
	}
	f.Snd.Connect(bytes)
}

// SetTracer labels the flow's sender-side connection(s) with the given
// tracer and flow id (MPTCP subflows all share the flow id, distinguished by
// their TDN labels). Receivers are left unwired: sender-side events already
// describe the full data path, and the paper's figures are sender-centric.
func (f *Flow) SetTracer(tr *trace.Tracer, id int) {
	if f.MSnd != nil {
		for _, sub := range f.MSnd.Subflows() {
			sub.SetTracer(tr, id)
		}
		return
	}
	f.Snd.SetTracer(tr, id)
}

// SenderStats sums sender-side counters (over subflows for MPTCP).
func (f *Flow) SenderStats() tcp.Stats {
	if f.MSnd != nil {
		var agg tcp.Stats
		for _, sub := range f.MSnd.Subflows() {
			addStats(&agg, &sub.Stats)
		}
		return agg
	}
	return f.Snd.Stats
}

// ReceiverStats sums receiver-side counters.
func (f *Flow) ReceiverStats() tcp.Stats {
	if f.MRcv != nil {
		var agg tcp.Stats
		for _, sub := range f.MRcv.Subflows() {
			addStats(&agg, &sub.Stats)
		}
		return agg
	}
	return f.Rcv.Stats
}

func addStats(dst, src *tcp.Stats) {
	dst.SegsSent += src.SegsSent
	dst.SegsRcvd += src.SegsRcvd
	dst.BytesSent += src.BytesSent
	dst.BytesAcked += src.BytesAcked
	dst.Retransmits += src.Retransmits
	dst.FastRetransmits += src.FastRetransmits
	dst.RTOFires += src.RTOFires
	dst.TLPProbes += src.TLPProbes
	dst.ReorderEvents += src.ReorderEvents
	dst.ReorderPackets += src.ReorderPackets
	dst.LossMarks += src.LossMarks
	dst.FilteredMarks += src.FilteredMarks
	dst.BytesDelivered += src.BytesDelivered
	dst.DupSegsRcvd += src.DupSegsRcvd
	dst.DSACKsSent += src.DSACKsSent
	dst.Undos += src.Undos
	dst.RTTSamples += src.RTTSamples
	dst.RTTSamplesDropped += src.RTTSamplesDropped
	dst.NotifiesRcvd += src.NotifiesRcvd
	dst.NotifiesStale += src.NotifiesStale
	dst.NotifiesDup += src.NotifiesDup
}

// FlowOptions tweaks flow construction.
type FlowOptions struct {
	TDTCPOpts core.Options
	// Pacing sets the pacing gain; 0 keeps the per-variant default
	// (TDTCP flows pace at 2.0), negative disables pacing entirely.
	Pacing float64
	// ReTCPAlpha overrides the circuit-up ramp (0 = default).
	ReTCPAlpha float64
	// ReTCPReactDelay delays the plain-reTCP circuit-up ramp: without the
	// retcpdyn switch support, the sender learns the circuit state from
	// in-band packet marks, roughly one optical RTT after the change.
	// Default 40 µs. retcpdyn's advance notification is unaffected.
	ReTCPReactDelay sim.Dur
	// ReinjectDelay overrides the MPTCP scheduler's reinjection delay.
	ReinjectDelay sim.Dur
	// MPTCPSendBuf overrides the shared MPTCP send buffer size.
	MPTCPSendBuf int64
	// MinRTO and MaxRTO override the per-variant defaults (1 ms / 100 ms;
	// WAN scenarios need both raised).
	MinRTO, MaxRTO sim.Dur
	// PerTDNCC supplies a distinct CC algorithm per TDN for TDTCP flows
	// (§3.5's heterogeneous-CCA future work), e.g. {"cubic","dctcp"}.
	PerTDNCC []string
	// MSS overrides the default 8960-byte jumbo payload (e.g. 1460 for
	// WAN scenarios).
	MSS int
	// RcvBuf overrides the 4 MiB receive buffer (raise it for large-BDP
	// paths such as the satellite scenario).
	RcvBuf int
	// Slab, when non-nil, is the shared struct-of-arrays store for hot
	// connection state; pass one slab to every BuildFlow of an experiment
	// so the flows' columns pack densely (see tcp.Slab).
	Slab *tcp.Slab
	// Slabs, when non-empty, overrides Slab per rack: the connection endpoint
	// living on rack r allocates from Slabs[r]. The sharded engine requires
	// this for workloads whose flows complete at runtime — ReleaseSlab
	// mutates the slab's free lists on the owning rack's lane, so lanes must
	// not share one.
	Slabs []*tcp.Slab
}

// slabFor resolves the slab for a connection endpoint on the given rack: the
// per-rack Slabs entry when present, the shared Slab otherwise.
func (opt *FlowOptions) slabFor(rack int) *tcp.Slab {
	if rack < len(opt.Slabs) && opt.Slabs[rack] != nil {
		return opt.Slabs[rack]
	}
	return opt.Slab
}

func ccFactoryFor(v Variant, opt FlowOptions) cc.Factory {
	switch v {
	case DCTCP:
		return func() cc.Algorithm { return cc.NewDCTCP() }
	case Reno:
		return func() cc.Algorithm { return cc.NewReno() }
	case ReTCP, ReTCPDyn:
		alpha := opt.ReTCPAlpha
		if alpha == 0 {
			alpha = cc.DefaultReTCPAlpha
		}
		return func() cc.Algorithm { return cc.NewReTCP(alpha) }
	default: // cubic, mptcp subflows, tdtcp (CUBIC in every TDN, §3.5)
		return func() cc.Algorithm { return cc.NewCubic() }
	}
}

// singlePathConfigs builds the sender and receiver tcp.Config of a non-MPTCP
// variant: CC factory, pacing, ECN, and (for TDTCP) the per-TDN state policy.
// Shared between the two-rack BuildFlow wiring and the multi-rack mux path.
func singlePathConfigs(net *rdcn.Network, v Variant, opt FlowOptions) (sndCfg, rcvCfg tcp.Config, err error) {
	ntdns := len(net.Cfg.TDNs)
	pacing := opt.Pacing
	if pacing < 0 {
		pacing = 0 // explicit opt-out
	} else if pacing == 0 && v == TDTCP {
		// §5.2 notes sender pacing as the remedy for TDTCP's initial burst
		// when the resumed (wide-open) window meets an empty pipe; with 16
		// perfectly synchronized simulated flows the burst is harsher than
		// on the paper's testbed, so TDTCP flows default to paced sending.
		pacing = 2.0
	}
	cfg := tcp.Config{CC: ccFactoryFor(v, opt), Pacing: pacing,
		MinRTO: opt.MinRTO, MaxRTO: opt.MaxRTO, MSS: opt.MSS, RcvBuf: opt.RcvBuf}
	if v == TDTCP {
		cfg.NumTDNs = ntdns
		if len(opt.PerTDNCC) > 0 {
			for _, name := range opt.PerTDNCC {
				f, err := cc.NewFactory(name)
				if err != nil {
					return tcp.Config{}, tcp.Config{}, err
				}
				cfg.CCPerState = append(cfg.CCPerState, f)
			}
		}
	}
	if v == DCTCP {
		cfg.ECN = true
	}
	mkPolicy := func() tcp.Policy {
		if v == TDTCP {
			o := opt.TDTCPOpts
			if o.DeadmanHorizon > 0 && o.DeadmanSchedule == nil {
				sched := net.Cfg.Schedule
				o.DeadmanSchedule = func(t sim.Time) (int, bool) {
					tdn, ok, _ := sched.At(t)
					return tdn, ok
				}
			}
			return core.New(ntdns, o)
		}
		return nil
	}
	sndCfg, rcvCfg = cfg, cfg
	sndCfg.Policy, rcvCfg.Policy = mkPolicy(), mkPolicy()
	return sndCfg, rcvCfg, nil
}

// BuildFlow wires one flow of the given variant between host i of rack 0
// (sender) and host i of rack 1 (receiver), registering receive and
// notification upcalls on both hosts. Each endpoint's connection lives on
// its own rack's loop (Rack.Loop; identical to the loop argument on a
// classic single-loop network), so under the sharded engine a connection's
// timers fire on the lane that owns its host.
func BuildFlow(loop *sim.Loop, net *rdcn.Network, i int, v Variant, opt FlowOptions) (*Flow, error) {
	if i < 0 || i >= net.Cfg.HostsPerRack {
		return nil, fmt.Errorf("experiments: host index %d out of range", i)
	}
	h0, h1 := net.Racks[0].Hosts[i], net.Racks[1].Hosts[i]
	l0, l1 := h0.Rack.Loop(), h1.Rack.Loop()
	ntdns := len(net.Cfg.TDNs)
	f := &Flow{Variant: v}

	if v == MPTCP {
		buildMPTCP(f, h0, h1, ntdns, opt)
		return f, nil
	}

	sndCfg, rcvCfg, err := singlePathConfigs(net, v, opt)
	if err != nil {
		return nil, err
	}
	sndCfg.Slab, rcvCfg.Slab = opt.slabFor(0), opt.slabFor(1)

	f.Snd = tcp.NewConn(l0, sndCfg, func(s *packet.Segment) { h0.Send(s) })
	f.Rcv = tcp.NewConn(l1, rcvCfg, func(s *packet.Segment) { h1.Send(s) })
	f.Snd.LocalAddr, f.Snd.RemoteAddr = h0.Addr, h1.Addr
	f.Snd.LocalPort, f.Snd.RemotePort = 40000, 5000
	f.Rcv.LocalAddr, f.Rcv.RemoteAddr = h1.Addr, h0.Addr
	f.Rcv.LocalPort, f.Rcv.RemotePort = 5000, 40000
	f.Rcv.Listen()

	h0.Recv = inputAdapter(f.Snd)
	h1.Recv = inputAdapter(f.Rcv)
	h0.RecvBatch = batchRecv(h0.Recv)
	h1.RecvBatch = batchRecv(h1.Recv)

	switch v {
	case TDTCP:
		h0.NotifyTDN = func(tdn int, epoch uint32) { f.Snd.Notify(tdn, epoch) }
		h1.NotifyTDN = func(tdn int, epoch uint32) { f.Rcv.Notify(tdn, epoch) }
	case ReTCP, ReTCPDyn:
		react := opt.ReTCPReactDelay
		if react == 0 {
			react = 40 * sim.Microsecond
		}
		if v == ReTCPDyn {
			react = 0 // the switch notifies explicitly ahead of time
		}
		// Plain reTCP discovers circuit state from in-band packet marks:
		// roughly one optical RTT late on establishment and one packet RTT
		// late on teardown — during which it keeps sending at circuit rate
		// into the packet network. retcpdyn gets explicit advance signals.
		downDelay := 2 * react
		h0.NotifyTDN = func(tdn int, epoch uint32) {
			// The notification fires on h0's rack lane, so the reaction
			// timer is armed there too.
			if tdn == 1 {
				if react > 0 {
					l0.After(react, func() { f.Snd.CircuitUp() })
				} else {
					f.Snd.CircuitUp()
				}
			} else {
				if downDelay > 0 {
					l0.After(downDelay, func() { f.Snd.CircuitDown() })
				} else {
					f.Snd.CircuitDown()
				}
			}
		}
		h0.NotifyPreChange = func(tdn int) {
			if tdn == 1 {
				f.Snd.CircuitUp() // retcpdyn: advance ramp with the buffer resize
			}
		}
	default:
		// Cubic, DCTCP, Reno, MPTCP: loss/ECN-driven variants take no
		// explicit TDN signal (MPTCP flows are built by BuildMPTCPFlow).
	}
	return f, nil
}

// inputAdapter parses frames into a reusable segment and feeds the conn.
func inputAdapter(c *tcp.Conn) func(netem.Frame) {
	seg := &packet.Segment{}
	seg.TCP.SACK = make([]packet.SACKBlock, 0, 4)
	return func(fr netem.Frame) {
		if err := packet.Parse(fr.Wire, seg); err != nil {
			return // corrupted frames are dropped silently, as on a real NIC
		}
		c.Input(seg)
	}
}

// batchRecv adapts a per-frame receive hook to the batched delivery upcall:
// one call from the fabric per (host, TDN) batch, one Input per segment
// inside, so the protocol sees the exact frame-at-a-time order.
func batchRecv(recv func(netem.Frame)) func([]netem.Frame, int) {
	return func(fs []netem.Frame, _ int) {
		for _, fr := range fs {
			recv(fr)
		}
	}
}

// subflowGate holds a subflow's outgoing segments at the host while the
// subflow's TDN is inactive: the paper's MPTCP "pins" subflows via the
// tdm_schd scheduler at both endpoints, so data AND acknowledgments of an
// inactive subflow wait in the host's send queue until that TDN returns
// (§2.2, §3.3 — the cause of MPTCP's flow-control stalls).
type subflowGate struct {
	host *rdcn.Host
	tdn  int
	cur  *int // host's current notified TDN
	held []*packet.Segment
}

func (g *subflowGate) send(s *packet.Segment) {
	if *g.cur != g.tdn {
		// The connection reuses the segment's storage after send returns
		// (the Conn.Out contract), so a held segment must be a deep copy.
		g.held = append(g.held, s.Clone())
		return
	}
	g.host.Send(s)
}

func (g *subflowGate) flush() {
	for _, s := range g.held {
		g.host.Send(s)
	}
	g.held = nil
}

func buildMPTCP(f *Flow, h0, h1 *rdcn.Host, ntdns int, opt FlowOptions) {
	minRTO := opt.MinRTO
	if minRTO == 0 {
		// Stranded subflows must not melt down in RTO storms between their
		// TDN's days (the kernel's 200 ms floor, time-dilated, is several
		// optical weeks).
		minRTO = 10 * sim.Millisecond
	}
	sub := tcp.Config{CC: ccFactoryFor(MPTCP, opt), MinRTO: minRTO, MaxRTO: opt.MaxRTO,
		Pacing: opt.Pacing, MSS: opt.MSS, RcvBuf: opt.RcvBuf}
	sub0, sub1 := sub, sub
	sub0.Slab, sub1.Slab = opt.slabFor(0), opt.slabFor(1)
	mcfg0 := mptcp.Config{NumSubflows: ntdns, Sub: sub0, ReinjectDelay: opt.ReinjectDelay, SendBuf: opt.MPTCPSendBuf}
	mcfg1 := mptcp.Config{NumSubflows: ntdns, Sub: sub1, ReinjectDelay: opt.ReinjectDelay, SendBuf: opt.MPTCPSendBuf}

	cur0, cur1 := 0, 0
	outs0 := make([]func(*packet.Segment), ntdns)
	outs1 := make([]func(*packet.Segment), ntdns)
	gates0 := make([]*subflowGate, ntdns)
	gates1 := make([]*subflowGate, ntdns)
	for k := 0; k < ntdns; k++ {
		gates0[k] = &subflowGate{host: h0, tdn: k, cur: &cur0}
		gates1[k] = &subflowGate{host: h1, tdn: k, cur: &cur1}
		outs0[k] = gates0[k].send
		outs1[k] = gates1[k].send
	}
	f.MSnd = mptcp.New(h0.Rack.Loop(), mcfg0, outs0)
	f.MRcv = mptcp.New(h1.Rack.Loop(), mcfg1, outs1)
	for k := 0; k < ntdns; k++ {
		s, r := f.MSnd.Subflows()[k], f.MRcv.Subflows()[k]
		s.LocalAddr, s.RemoteAddr = h0.Addr, h1.Addr
		s.LocalPort, s.RemotePort = uint16(40000+k), uint16(5000+k)
		r.LocalAddr, r.RemoteAddr = h1.Addr, h0.Addr
		r.LocalPort, r.RemotePort = uint16(5000+k), uint16(40000+k)
	}
	f.MRcv.Listen()

	h0.Recv = mptcpInputAdapter(f.MSnd, 40000, ntdns)
	h1.Recv = mptcpInputAdapter(f.MRcv, 5000, ntdns)
	h0.RecvBatch = batchRecv(h0.Recv)
	h1.RecvBatch = batchRecv(h1.Recv)
	h0.NotifyTDN = func(tdn int, epoch uint32) {
		cur0 = tdn
		if tdn >= 0 && tdn < ntdns {
			gates0[tdn].flush()
		}
		f.MSnd.Notify(tdn, epoch)
	}
	h1.NotifyTDN = func(tdn int, epoch uint32) {
		cur1 = tdn
		if tdn >= 0 && tdn < ntdns {
			gates1[tdn].flush()
		}
		f.MRcv.Notify(tdn, epoch)
	}
}

// mptcpInputAdapter dispatches frames to the right subflow by destination
// port.
func mptcpInputAdapter(m *mptcp.Conn, basePort, ntdns int) func(netem.Frame) {
	seg := &packet.Segment{}
	seg.TCP.SACK = make([]packet.SACKBlock, 0, 4)
	return func(fr netem.Frame) {
		if err := packet.Parse(fr.Wire, seg); err != nil {
			return
		}
		k := int(seg.TCP.DstPort) - basePort
		if k < 0 || k >= ntdns {
			return
		}
		m.Subflows()[k].Input(seg)
	}
}
