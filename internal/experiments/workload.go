package experiments

import (
	"fmt"
	"os"
	"sync"

	"github.com/rdcn-net/tdtcp/internal/netem"
	"github.com/rdcn-net/tdtcp/internal/obs"
	"github.com/rdcn-net/tdtcp/internal/packet"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/stats"
	"github.com/rdcn-net/tdtcp/internal/tcp"
	"github.com/rdcn-net/tdtcp/internal/trace"
	"github.com/rdcn-net/tdtcp/internal/workload"
)

// hostMux demultiplexes one host's frames to many connections by TCP
// destination port, and fans TDN notifications out to every registered flow.
// The two-rack experiments wire exactly one connection per host; multi-rack
// workloads need several, so the mux owns the host's Recv/NotifyTDN upcalls.
//
// The map is looked up, never ranged over, so event order stays deterministic.
type hostMux struct {
	seg    packet.Segment
	conns  map[uint16]*tcp.Conn
	notify []func(tdn int, epoch uint32)
}

func newHostMux() *hostMux {
	m := &hostMux{conns: make(map[uint16]*tcp.Conn)}
	m.seg.TCP.SACK = make([]packet.SACKBlock, 0, 4)
	return m
}

func (m *hostMux) recv(fr netem.Frame) {
	if err := packet.Parse(fr.Wire, &m.seg); err != nil {
		return // corrupted frames are dropped silently, as on a real NIC
	}
	if c, ok := m.conns[m.seg.TCP.DstPort]; ok {
		c.Input(&m.seg)
	}
}

// recvBatch is the batched-delivery counterpart of recv: one upcall per
// (host, TDN) batch, one demuxed Input per frame inside.
func (m *hostMux) recvBatch(fs []netem.Frame, _ int) {
	for _, fr := range fs {
		m.recv(fr)
	}
}

func (m *hostMux) notifyTDN(tdn int, epoch uint32) {
	for _, fn := range m.notify {
		fn(tdn, epoch)
	}
}

// muxNet overlays a hostMux on every host of a network, so flows can be wired
// between arbitrary rack/host pairs instead of the two-rack one-flow-per-host
// layout of BuildFlow.
type muxNet struct {
	net   *rdcn.Network
	muxes [][]*hostMux // [rack][host]
}

func newMuxNet(net *rdcn.Network) *muxNet {
	mn := &muxNet{net: net, muxes: make([][]*hostMux, len(net.Racks))}
	for r, rack := range net.Racks {
		mn.muxes[r] = make([]*hostMux, len(rack.Hosts))
		for h, host := range rack.Hosts {
			m := newHostMux()
			mn.muxes[r][h] = m
			host.Recv = m.recv
			host.RecvBatch = m.recvBatch
			host.NotifyTDN = m.notifyTDN
		}
	}
	return mn
}

// BuildFlow wires one single-path flow from (srcRack, srcHost) to (dstRack,
// dstHost). Both endpoints use the same port number, which must be unique
// per endpoint host — it is the demux key on both sides. MPTCP and the reTCP
// variants are two-rack constructs (subflow pinning and the circuit-up signal
// have no rotor analogue) and are rejected.
func (mn *muxNet) BuildFlow(loop *sim.Loop, srcRack, srcHost, dstRack, dstHost int,
	port uint16, v Variant, opt FlowOptions) (*Flow, error) {
	switch v {
	case MPTCP, ReTCP, ReTCPDyn:
		return nil, fmt.Errorf("experiments: variant %s is not supported on the multi-rack mux path", v)
	default:
		// Cubic, DCTCP, Reno, TDTCP are single-path and rack-count-agnostic.
	}
	for _, ep := range [...]struct{ rack, host int }{{srcRack, srcHost}, {dstRack, dstHost}} {
		if ep.rack < 0 || ep.rack >= len(mn.net.Racks) {
			return nil, fmt.Errorf("experiments: rack %d out of range", ep.rack)
		}
		if ep.host < 0 || ep.host >= len(mn.net.Racks[ep.rack].Hosts) {
			return nil, fmt.Errorf("experiments: host %d out of range", ep.host)
		}
	}
	if srcRack == dstRack && srcHost == dstHost {
		return nil, fmt.Errorf("experiments: flow endpoints coincide (rack %d host %d)", srcRack, srcHost)
	}
	sm, dm := mn.muxes[srcRack][srcHost], mn.muxes[dstRack][dstHost]
	if _, dup := sm.conns[port]; dup {
		return nil, fmt.Errorf("experiments: port %d already in use on rack %d host %d", port, srcRack, srcHost)
	}
	if _, dup := dm.conns[port]; dup {
		return nil, fmt.Errorf("experiments: port %d already in use on rack %d host %d", port, dstRack, dstHost)
	}

	sndCfg, rcvCfg, err := singlePathConfigs(mn.net, v, opt)
	if err != nil {
		return nil, err
	}
	sndCfg.Slab, rcvCfg.Slab = opt.slabFor(srcRack), opt.slabFor(dstRack)
	hs := mn.net.Racks[srcRack].Hosts[srcHost]
	hr := mn.net.Racks[dstRack].Hosts[dstHost]
	f := &Flow{Variant: v}
	// Each endpoint lives on its own rack's lane so its timers, retransmits,
	// and slab traffic stay shard-local under the sharded engine.
	f.Snd = tcp.NewConn(hs.Rack.Loop(), sndCfg, func(s *packet.Segment) { hs.Send(s) })
	f.Rcv = tcp.NewConn(hr.Rack.Loop(), rcvCfg, func(s *packet.Segment) { hr.Send(s) })
	f.Snd.LocalAddr, f.Snd.RemoteAddr = hs.Addr, hr.Addr
	f.Snd.LocalPort, f.Snd.RemotePort = port, port
	f.Rcv.LocalAddr, f.Rcv.RemoteAddr = hr.Addr, hs.Addr
	f.Rcv.LocalPort, f.Rcv.RemotePort = port, port
	f.Rcv.Listen()

	sm.conns[port] = f.Snd
	dm.conns[port] = f.Rcv
	if v == TDTCP {
		sm.notify = append(sm.notify, func(tdn int, epoch uint32) { f.Snd.Notify(tdn, epoch) })
		dm.notify = append(dm.notify, func(tdn int, epoch uint32) { f.Rcv.Notify(tdn, epoch) })
	}
	return f, nil
}

// WorkloadConfig specifies one open-loop flow-workload run: finite flows with
// sizes drawn from a distribution arrive as a Poisson process and run to
// completion, the datacenter-workload counterpart of RunConfig's long-running
// §5.1 flows.
type WorkloadConfig struct {
	Variant  Variant
	Scenario Scenario
	// Dist is the flow-size distribution (default workload.WebSearch()).
	Dist *workload.FlowSizeCDF
	// Load is the offered load as a fraction of the fabric's aggregate
	// schedule-weighted capacity (default 0.3).
	Load float64
	// Hosts is the host count per rack (default 4).
	Hosts int
	// WarmupWeeks precede the measurement window of MeasureWeeks (defaults
	// 1 and 4). Arrivals run over the whole horizon; FCTs are recorded for
	// flows arriving inside the window.
	WarmupWeeks, MeasureWeeks int
	Seed                      int64
	// Shards is the sharded engine's worker count (default 1); results and
	// traces are byte-identical for every value (see RunConfig.Shards).
	Shards int
	// MaxFlows caps total arrivals so a mis-set load cannot spawn unbounded
	// state (default 512).
	MaxFlows int
	// SampleEvery is the VOQ-occupancy sampling cadence (default 5 µs).
	SampleEvery sim.Dur
	// MarkThresh is the ECN marking threshold; defaults to 5 packets when
	// the variant is DCTCP, otherwise 0.
	MarkThresh int
	Notify     *rdcn.NotifyProfile
	Flow       FlowOptions
	Tracer     *trace.Tracer
	// Metrics, when non-nil, is populated with run-level counters plus the
	// run's histograms: flow completion times ("fct.ns") and the same
	// per-TDN RTT / VOQ occupancy / notification-latency / deadman-lag
	// histograms as RunConfig.Metrics.
	Metrics *trace.Registry
	// Flight and DisableFlight mirror RunConfig: the always-on flight
	// recorder, created by default, dumped to stderr on conservation failure
	// or panic. Parallel sweeps give every run its own recorder, like the
	// Tracer contract.
	Flight        *trace.Flight
	DisableFlight bool
	// Meter, when non-nil, taps the run for live progress (see
	// RunConfig.Meter); workload runs additionally count flow arrivals and
	// completions through it.
	Meter *obs.Meter
	// DisableFramePool turns off wire-buffer recycling (determinism probe,
	// see RunConfig.DisableFramePool).
	DisableFramePool bool
	// DisableBatchDelivery reverts to frame-at-a-time delivery (determinism
	// probe, see RunConfig.DisableBatchDelivery).
	DisableBatchDelivery bool
	// Stop and StopEvery mirror RunConfig: the cooperative cancellation
	// seam, polled between events, that makes RunWorkload return an error
	// wrapping ErrCancelled without perturbing the executed prefix.
	Stop      func() bool
	StopEvery int
}

func (cfg *WorkloadConfig) fillDefaults() {
	if cfg.Scenario.Name == "" {
		cfg.Scenario = MultiRack(4)
	}
	if cfg.Dist == nil {
		cfg.Dist = workload.WebSearch()
	}
	if cfg.Load == 0 {
		cfg.Load = 0.3
	}
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.WarmupWeeks == 0 {
		cfg.WarmupWeeks = 1
	}
	if cfg.MeasureWeeks == 0 {
		cfg.MeasureWeeks = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxFlows == 0 {
		cfg.MaxFlows = 512
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 5 * sim.Microsecond
	}
	if cfg.MarkThresh == 0 && cfg.Variant == DCTCP {
		cfg.MarkThresh = 5
	}
}

// WorkloadResult carries the outcome of one workload run.
type WorkloadResult struct {
	Variant Variant
	Cfg     WorkloadConfig

	// FCT holds completion times of flows that arrived inside the
	// measurement window and finished before the horizon (the usual
	// open-loop censoring).
	FCT stats.FCT
	// FlowsStarted counts all arrivals; FlowsCompleted counts flows whose
	// FIN was acknowledged before the horizon.
	FlowsStarted, FlowsCompleted int
	// BytesOffered sums the sizes of all arrived flows.
	BytesOffered int64
	// GoodputGbps is aggregate application-delivered throughput over the
	// measurement window; MeanVOQ is the mean total VOQ occupancy (packets,
	// summed over racks) over the same window.
	GoodputGbps float64
	MeanVOQ     float64
	// Frame-conservation ledger at the horizon (see rdcn.FrameLedger).
	FramesSent, FramesDelivered, FramesMisrouted uint64
	// Flight is the run's flight recorder (nil when disabled).
	Flight *trace.Flight
}

// RunWorkload executes one open-loop workload experiment. Flow arrivals are a
// Poisson process whose mean rate offers cfg.Load of the fabric's aggregate
// capacity; each arrival picks uniform source and destination (distinct racks)
// and a size from cfg.Dist, all from the loop's seeded RNG, so runs are fully
// deterministic. Frame conservation is checked at the horizon.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) {
	cfg.fillDefaults()
	racks := cfg.Scenario.Racks
	if racks == 0 {
		racks = 2
	}
	if cfg.Flow.Slab == nil && cfg.Flow.Slabs == nil {
		// One slab per rack per workload run, so each lane's connections pack
		// into lane-private columns; completed flows' rows are not recycled
		// (they are few and small), matching the retained result objects.
		slabs := make([]*tcp.Slab, racks)
		for r := range slabs {
			slabs[r] = tcp.NewSlab(256, 512)
		}
		cfg.Flow.Slabs = slabs
	}
	switch cfg.Variant {
	case TDTCP, Cubic, DCTCP, Reno:
	default:
		return nil, fmt.Errorf("experiments: variant %s is not supported by RunWorkload", cfg.Variant)
	}

	flight := cfg.Flight
	if flight == nil && !cfg.DisableFlight {
		flight = trace.NewFlight(trace.DefaultFlightLen, trace.DefaultFlightCats)
	}
	tracer := cfg.Tracer.WithFlight(flight)
	defer func() {
		if r := recover(); r != nil {
			dumpFlight(os.Stderr, flight, fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()

	// The sharded engine runs every workload (see RunConfig.Shards): one lane
	// per rack plus the control lane, where the arrival process lives.
	engine := sim.NewSharded(cfg.Seed, racks, cfg.Shards)
	loop := engine.Control()
	if cfg.Meter != nil {
		cfg.Meter.Attach(loop)
		for r := 0; r < racks; r++ {
			cfg.Meter.Attach(engine.RackLoop(r))
		}
	}
	if cfg.Stop != nil {
		engine.SetStopCheck(cfg.StopEvery, cfg.Stop)
	}
	ncfg := rdcn.DefaultConfig()
	ncfg.Racks = racks
	ncfg.HostsPerRack = cfg.Hosts
	ncfg.TDNs = cfg.Scenario.TDNs
	ncfg.Schedule = cfg.Scenario.Schedule
	ncfg.VOQCap = cfg.Scenario.VOQCap
	ncfg.MarkThresh = cfg.MarkThresh
	ncfg.DisableFramePool = cfg.DisableFramePool
	ncfg.DisableBatchDelivery = cfg.DisableBatchDelivery
	if cfg.Notify != nil {
		ncfg.Notify = *cfg.Notify
	}
	ncfg.Cluster = engine
	net, err := rdcn.New(loop, ncfg)
	if err != nil {
		return nil, err
	}
	engine.SetTracer(tracer)
	net.SetTracer(tracer)
	if m := cfg.Metrics; m != nil {
		net.NotifyLat = m.Hist("rdcn.notify_lat_ns")
		for _, rack := range net.Racks {
			occ := m.Hist(fmt.Sprintf("voq.r%d.occ_pkts", rack.ID))
			for _, v := range rack.VOQs() {
				v.OccHist = occ
			}
		}
	}
	fctHist := cfg.Metrics.Hist("fct.ns")
	mn := newMuxNet(net)

	week := cfg.Scenario.Schedule.Week()
	measureStart := sim.Time(sim.Dur(cfg.WarmupWeeks) * week)
	end := measureStart.Add(sim.Dur(cfg.MeasureWeeks) * week)
	net.Start(end)

	// Aggregate capacity = per-rack schedule-weighted uplink rate × racks.
	aggRate := sim.Rate(workload.OptimalGbps(cfg.Scenario.Schedule, cfg.Scenario.TDNs)*1e9) * sim.Rate(racks)
	meanGap := workload.MeanInterarrival(cfg.Dist, cfg.Load, aggRate)

	res := &WorkloadResult{Variant: cfg.Variant, Cfg: cfg}
	var flows []*Flow
	var buildErr error
	nextPort := 1024
	// Completions fire on the sender's rack lane, so each lane gets a private
	// done-list (single writer); they are merged into the result in canonical
	// (completion time, rack) order after the horizon. The FCT histogram and
	// the meter are atomic and order-independent, so those record inline.
	type doneRec struct {
		size  int64
		start sim.Time
		done  sim.Time
	}
	perRack := make([][]doneRec, racks)
	var spawn func()
	spawn = func() {
		if buildErr != nil || res.FlowsStarted >= cfg.MaxFlows || nextPort > 0xFFFF {
			return // stop the arrival process; pending flows run out
		}
		rng := loop.Rand()
		src := rng.Intn(racks)
		dst := (src + 1 + rng.Intn(racks-1)) % racks
		sh, dh := rng.Intn(cfg.Hosts), rng.Intn(cfg.Hosts)
		size := cfg.Dist.Sample(rng)
		port := uint16(nextPort)
		nextPort++
		f, err := mn.BuildFlow(loop, src, sh, dst, dh, port, cfg.Variant, cfg.Flow)
		if err != nil {
			buildErr = err
			return
		}
		id := res.FlowsStarted
		rt := net.Racks[src].Tracer()
		f.SetTracer(rt, id)
		wireFlowHists(cfg.Metrics, f, len(cfg.Scenario.TDNs))
		start := loop.Now()
		res.FlowsStarted++
		res.BytesOffered += size
		cfg.Meter.FlowStarted()
		// The flow's lifetime (arrival to FIN-ack) is a causal span; flows
		// still open at the horizon leave theirs unclosed. The span opens on
		// the shared tracer (arrivals run at control instants) and closes on
		// the sender lane's fork; the ids pair up regardless.
		sp := tracer.BeginSpan(trace.CatTCP, int64(start), "flow", id, -1, 0)
		f.Snd.OnDone = func(now sim.Time) {
			cfg.Meter.FlowDone()
			rt.EndSpan(trace.CatTCP, int64(now), "flow", id, -1, sp, float64(size), 0)
			perRack[src] = append(perRack[src], doneRec{size: size, start: start, done: now})
			if start >= measureStart {
				fctHist.Record(int64(now.Sub(start)))
			}
		}
		flows = append(flows, f)
		f.Start(size)
		f.Snd.Close() // queue the FIN behind the data; its ACK is the FCT instant
		loop.After(workload.Interarrival(rng, meanGap), spawn)
	}
	loop.After(workload.Interarrival(loop.Rand(), meanGap), spawn)

	delivered := func() float64 {
		var sum int64
		for _, f := range flows {
			sum += f.Delivered()
		}
		return float64(sum)
	}
	voqLen := func() float64 {
		n := 0
		for _, rack := range net.Racks {
			n += rack.QueueLen()
		}
		return float64(n)
	}

	engine.RunUntil(measureStart)
	if engine.Stopped() {
		return nil, cancelledErr(fmt.Sprintf("workload %s on %s", cfg.Variant, cfg.Scenario.Name), engine)
	}
	baseline := delivered()
	voq := stats.NewSampler(loop, string(cfg.Variant), cfg.SampleEvery, end, voqLen)
	engine.RunUntil(end)
	if engine.Stopped() {
		return nil, cancelledErr(fmt.Sprintf("workload %s on %s", cfg.Variant, cfg.Scenario.Name), engine)
	}

	if buildErr != nil {
		return nil, buildErr
	}
	// Merge the per-lane done-lists (each already in lane execution order,
	// hence nondecreasing completion time) in canonical (done, rack) order —
	// the same order a sequential execution completes them in.
	heads := make([]int, racks)
	for {
		best := -1
		for r := 0; r < racks; r++ {
			if heads[r] >= len(perRack[r]) {
				continue
			}
			if best < 0 || perRack[r][heads[r]].done < perRack[best][heads[best]].done {
				best = r
			}
		}
		if best < 0 {
			break
		}
		d := perRack[best][heads[best]]
		heads[best]++
		res.FlowsCompleted++
		if d.start >= measureStart {
			res.FCT.Record(d.size, d.start, d.done)
		}
	}
	res.GoodputGbps = stats.ThroughputGbps(int64(delivered()-baseline), end.Sub(measureStart))
	res.MeanVOQ = voq.Series.Mean()
	res.FramesSent, res.FramesDelivered, res.FramesMisrouted = net.FrameLedger()
	if err := net.CheckConservation(); err != nil {
		dumpFlight(os.Stderr, flight, fmt.Sprintf("conservation failure: %v", err))
		dumpEngineFlights(os.Stderr, engine, fmt.Sprintf("conservation failure: %v", err))
		return nil, fmt.Errorf("experiments: workload run %s: %w", cfg.Scenario.Name, err)
	}
	res.Flight = flight
	if m := cfg.Metrics; m != nil {
		m.Set("workload.goodput_gbps", res.GoodputGbps)
		m.Set("workload.mean_voq_pkts", res.MeanVOQ)
		m.Add("workload.flows_started", int64(res.FlowsStarted))
		m.Add("workload.flows_completed", int64(res.FlowsCompleted))
		m.Add("workload.bytes_offered", res.BytesOffered)
		m.Add("sim.events_fired", int64(engine.Fired()))
		m.Set("sim.virtual_seconds", float64(engine.Now())/1e9)
	}
	return res, nil
}

// WorkloadSweepResult pairs one workload sweep cell with its outcome.
type WorkloadSweepResult struct {
	Cfg WorkloadConfig
	Res *WorkloadResult
	Err error
}

// SweepWorkload executes every configuration, workers at a time, with results
// indexed by input position (see Sweep for the concurrency contract; runs
// share no state, and configurations must not share a Tracer, Metrics
// registry, or Flight recorder when workers exceeds 1 — the default
// per-run flight recorder is always private).
func SweepWorkload(cfgs []WorkloadConfig, workers int) []WorkloadSweepResult {
	return SweepWorkloadWithObserver(cfgs, workers, nil)
}

// SweepWorkloadWithObserver is SweepWorkload with per-cell progress callbacks
// (see SweepWithObserver; nil obs = plain SweepWorkload).
func SweepWorkloadWithObserver(cfgs []WorkloadConfig, workers int, obs SweepObserver) []WorkloadSweepResult {
	out := make([]WorkloadSweepResult, len(cfgs))
	runCell := func(worker, i int) {
		if obs != nil {
			obs.CellStart(worker, i)
		}
		res, err := RunWorkload(cfgs[i])
		out[i] = WorkloadSweepResult{Cfg: cfgs[i], Res: res, Err: err}
		if obs != nil {
			obs.CellDone(worker, i, err)
		}
	}
	if workers <= 1 {
		for i := range cfgs {
			runCell(0, i)
		}
		return out
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				runCell(worker, i)
			}
		}(w)
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
