package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/trace"
)

// tracedRun executes a short TDTCP run with a full-category tracer and
// returns the JSONL bytes and the populated registry.
func tracedRun(t *testing.T, seed int64) ([]byte, *trace.Registry) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	reg := trace.NewRegistry()
	_, err := Run(RunConfig{
		Variant:      TDTCP,
		Flows:        2,
		WarmupWeeks:  1,
		MeasureWeeks: 1,
		Seed:         seed,
		Tracer:       tr,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), reg
}

func TestTracedRunEmitsAllLayers(t *testing.T) {
	out, reg := tracedRun(t, 7)
	if len(out) == 0 {
		t.Fatal("traced run produced no events")
	}
	// Every layer must be represented in a TDTCP run over a hybrid week.
	for _, want := range []string{
		`"name":"tdn_switch"`, // core policy
		`"name":"day"`,        // rdcn schedule
		`"name":"night"`,
		`"name":"notify"`,
		`"name":"voq_enq"`, // netem VOQ
		`"name":"voq_deq"`,
		`"name":"grow"`, // cc decisions
		`"name":"fire"`, // sim loop
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}
	// Every line must round-trip through the parser.
	var ev trace.Event
	for i, line := range strings.Split(strings.TrimRight(string(out), "\n"), "\n") {
		if err := trace.ParseLine([]byte(line), &ev); err != nil {
			t.Fatalf("line %d unparseable: %v", i+1, err)
		}
	}
	if reg.Counter("tcp.segs_sent") == 0 {
		t.Error("metrics: tcp.segs_sent = 0")
	}
	if reg.Counter("tdtcp.switches") == 0 {
		t.Error("metrics: tdtcp.switches = 0")
	}
	if reg.Counter("trace.events") == 0 {
		t.Error("metrics: trace.events = 0")
	}
}

func TestTracedRunIsDeterministic(t *testing.T) {
	a, regA := tracedRun(t, 42)
	b, regB := tracedRun(t, 42)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	var ja, jb bytes.Buffer
	if err := regA.WriteJSON(&ja); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := regB.WriteJSON(&jb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("same seed produced different metrics JSON")
	}
}

func TestUntracedRunUnaffected(t *testing.T) {
	// A nil tracer and nil registry must not change behaviour: compare
	// goodput against a traced run of the same seed.
	res1, err := Run(RunConfig{Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1, Seed: 9})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	res2, err := Run(RunConfig{Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1, Seed: 9,
		Tracer: trace.New(&buf, trace.CatAll), Metrics: trace.NewRegistry()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res1.GoodputGbps != res2.GoodputGbps {
		t.Fatalf("tracing changed the simulation: %v vs %v Gbps", res1.GoodputGbps, res2.GoodputGbps)
	}
}
