package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Batch-delivery A/B suite: per-(host,TDN) batch delivery and the coalesced
// per-link timer are pure mechanics — the protocol must not be able to tell
// they exist. Each test runs the same seeded scenario twice, once batched
// (the default) and once with DisableBatchDelivery, and requires the two
// protocol traces to be byte-identical.
//
// The comparison mask is CatAll &^ trace.CatSim, NOT CatAll: batching changes
// the simulator's own event mechanics by design (one delivery event per batch
// instead of per frame, one armed timer per link instead of per frame), so
// CatSim — event firing and pending-queue depth — legitimately differs.
// Everything a protocol endpoint or the control plane can observe (CatTCP,
// CatCC, CatTDN, CatVOQ, CatRDCN, CatFault) is held to identity.
//
// Identity here is per-instant-canonical, not raw byte order: every frame is
// delivered at exactly the same simulated nanosecond either way, but when two
// links deliver at the SAME instant, batching drains one link's whole batch
// before the next link's, where the legacy path interleaves the per-frame
// events in arming order. Both orders are fixed-seed deterministic, and no
// protocol state can observe the difference (the events carry the same
// timestamps and payloads), so the suite sorts lines within each instant
// before comparing — same events, same data, same instants, in the same
// cross-instant order. See DESIGN.md §10 for the full ordering argument.
const batchABCats = trace.CatAll &^ trace.CatSim

// canonicalizeInstants rewrites a trace into the batching-invariant canonical
// form, working within each run of equal "ts" prefixes (lines are JSONL with
// the timestamp first, so the instant key is the prefix up to the first
// comma); cross-instant order is untouched. Two rewrites per instant:
//
//  1. voq_enq/voq_deq lines collapse to one synthetic line per queue
//     carrying the enqueue count, dequeue count, and final depth. When an
//     enqueue and a dequeue hit the same queue at the same instant, the two
//     delivery orders interleave them differently, so the transient depths
//     stamped on the intermediate lines (and which operation lands last)
//     differ — but the same frames have entered and left by the end of the
//     instant (the conservation suite audits the frame sets), so the
//     operation counts and the final depth must agree.
//  2. The surviving lines sort lexicographically, erasing cross-component
//     tie order within the instant.
//
// Everything else — including voq_drop and ECN marks, which ARE protocol-
// visible — survives into the strict comparison.
func canonicalizeInstants(raw []byte) []byte {
	lines := bytes.Split(raw, []byte("\n"))
	key := func(l []byte) string {
		if i := bytes.IndexByte(l, ','); i >= 0 {
			return string(l[:i])
		}
		return string(l)
	}
	field := func(l []byte, name string) string {
		i := bytes.Index(l, []byte(name))
		if i < 0 {
			return ""
		}
		rest := l[i+len(name):]
		if j := bytes.IndexAny(rest, ",}"); j >= 0 {
			rest = rest[:j]
		}
		return string(rest)
	}
	type churn struct {
		enq, deq int
		depth    string // "a" of the last churn line = depth after the instant
	}
	out := lines[:0]
	for lo := 0; lo < len(lines); {
		hi := lo + 1
		for hi < len(lines) && key(lines[hi]) == key(lines[lo]) {
			hi++
		}
		seg := make([][]byte, 0, hi-lo)
		byQueue := map[string]*churn{}
		var queues []string
		for _, l := range lines[lo:hi] {
			enq := bytes.Contains(l, []byte(`"name":"voq_enq"`))
			if !enq && !bytes.Contains(l, []byte(`"name":"voq_deq"`)) {
				seg = append(seg, l)
				continue
			}
			q := field(l, `"s":`)
			c := byQueue[q]
			if c == nil {
				c = &churn{}
				byQueue[q] = c
				queues = append(queues, q)
			}
			if enq {
				c.enq++
			} else {
				c.deq++
			}
			c.depth = field(l, `"a":`)
		}
		for _, q := range queues {
			c := byQueue[q]
			seg = append(seg, []byte(fmt.Sprintf(`%s,"cat":"voq","name":"churn","s":%s,"enq":%d,"deq":%d,"depth":%s}`,
				key(lines[lo]), q, c.enq, c.deq, c.depth)))
		}
		sort.Slice(seg, func(i, j int) bool { return bytes.Compare(seg[i], seg[j]) < 0 })
		out = append(out, seg...)
		lo = hi
	}
	return bytes.Join(out, []byte("\n"))
}

// batchABRun executes one seeded run with batching on or off and returns the
// protocol-category JSONL trace plus the run result (for end-to-end checks).
func batchABRun(t *testing.T, cfg RunConfig, disableBatch bool) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Tracer = trace.New(&buf, batchABCats)
	cfg.DisableBatchDelivery = disableBatch
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(batch=%v): %v", !disableBatch, err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), res
}

// assertBatchParity requires the batched and unbatched traces to be
// identical after per-instant canonicalization, and non-trivial.
func assertBatchParity(t *testing.T, batched, unbatched []byte) {
	t.Helper()
	if len(batched) == 0 {
		t.Fatal("batched run produced no protocol trace events")
	}
	cb, cu := canonicalizeInstants(batched), canonicalizeInstants(unbatched)
	if !bytes.Equal(cb, cu) {
		d := firstDiffLine(cb, cu)
		var ctx bytes.Buffer
		for i := d - 3; i <= d+3; i++ {
			if i < 1 {
				continue
			}
			fmt.Fprintf(&ctx, "%6d batched:   %s\n%6d unbatched: %s\n", i, lineAt(cb, i), i, lineAt(cu, i))
		}
		t.Fatalf("batching is protocol-visible: traces diverge at line %d\n%s", d, ctx.String())
	}
}

// TestBatchParityAcrossReconfiguration pins the hardest ordering case: a
// batch whose frames straddle a reconfiguration boundary. Day/night
// transitions happen hundreds of times per simulated week on both fabrics,
// so every in-flight batch near a boundary exercises the "transitions fire
// before deliveries" rule; any frame mis-carried across the boundary shifts
// a VOQ or TDN event and breaks byte identity.
func TestBatchParityAcrossReconfiguration(t *testing.T) {
	for _, tc := range []struct {
		name     string
		scenario Scenario
	}{
		{"hybrid", Hybrid()},
		{"rotor8", MultiRack(8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := RunConfig{
				Variant: TDTCP, Scenario: tc.scenario, Flows: 4,
				WarmupWeeks: 1, MeasureWeeks: 2, Seed: 11,
			}
			tb, rb := batchABRun(t, cfg, false)
			tu, ru := batchABRun(t, cfg, true)
			assertBatchParity(t, tb, tu)
			if rb.GoodputGbps != ru.GoodputGbps {
				t.Errorf("goodput differs: batched %.6f vs unbatched %.6f Gbps",
					rb.GoodputGbps, ru.GoodputGbps)
			}
		})
	}
}

// TestBatchParityUnderFaults injects frame drops and corruptions into the
// data plane: a fault fate decided mid-batch (some frames of a batch dropped
// or corrupted, the rest delivered) must land on exactly the same frames as
// in frame-at-a-time delivery — the injector's RNG draws are keyed to frame
// admission order, which batching must preserve.
func TestBatchParityUnderFaults(t *testing.T) {
	plan, err := fault.Parse("drop=0.02,corrupt=0.01")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for _, seed := range []int64{1, 42} {
		cfg := RunConfig{
			Variant: TDTCP, Flows: 2,
			WarmupWeeks: 1, MeasureWeeks: 2, Seed: seed,
			Fault: &plan, FaultSeed: 7, Invariants: true,
		}
		tb, rb := batchABRun(t, cfg, false)
		tu, ru := batchABRun(t, cfg, true)
		assertBatchParity(t, tb, tu)
		if len(rb.Violations) != 0 || len(ru.Violations) != 0 {
			t.Fatalf("invariant violations: batched %d, unbatched %d",
				len(rb.Violations), len(ru.Violations))
		}
		if rb.FaultStats != ru.FaultStats {
			t.Errorf("fault stats differ: batched %+v vs unbatched %+v",
				rb.FaultStats, ru.FaultStats)
		}
	}
}

// TestBatchParityWithClosingConnections covers teardown mid-batch: the
// open-loop workload completes and closes flows throughout the run, so
// batches regularly contain frames for a connection that finishes (FIN
// handshake, state teardown) within the same batch. A closed connection
// receiving the remainder of its batch — or a batch flushed after close —
// would emit extra TCP events and break identity.
//
// Load is held at 0.2 deliberately: at higher loads, multiple links routinely
// deliver at the same instant, and the one-timer-per-link coalescing services
// them in a different (still deterministic) order than the legacy per-frame
// timers — same-instant ACK responses from one host then serialize onto its
// uplink in that order, shifting downstream timestamps by nanoseconds (the
// documented tie-order artifact, DESIGN.md §10). At this load the run is
// collision-free (verified: parity also holds at load 0.1 across seeds), so
// any divergence here isolates a real teardown bug rather than that artifact.
// If schedule or timing changes ever re-introduce a collision, the failure
// context shows paired voq churn swaps at instants a few ns apart — re-seed
// rather than weaken the comparison.
func TestBatchParityWithClosingConnections(t *testing.T) {
	run := func(disableBatch bool) ([]byte, *WorkloadResult) {
		var buf bytes.Buffer
		tr := trace.New(&buf, batchABCats)
		res, err := RunWorkload(WorkloadConfig{
			Variant: TDTCP, Scenario: MultiRack(4), Load: 0.2,
			WarmupWeeks: 1, MeasureWeeks: 2, Seed: 2,
			Tracer:               tr,
			DisableBatchDelivery: disableBatch,
		})
		if err != nil {
			t.Fatalf("RunWorkload(batch=%v): %v", !disableBatch, err)
		}
		if err := tr.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.Bytes(), res
	}
	batched, rb := run(false)
	unbatched, ru := run(true)
	assertBatchParity(t, batched, unbatched)
	if rb.FlowsCompleted == 0 {
		t.Fatal("no flows completed; the run exercised no teardown")
	}
	if rb.FlowsCompleted != ru.FlowsCompleted || rb.GoodputGbps != ru.GoodputGbps {
		t.Errorf("results differ: batched (%d flows, %.6f Gbps) vs unbatched (%d flows, %.6f Gbps)",
			rb.FlowsCompleted, rb.GoodputGbps, ru.FlowsCompleted, ru.GoodputGbps)
	}
}
