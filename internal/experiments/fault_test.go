package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/obs"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// shortRun executes a 2-flow, 1+2-week run of the given variant under plan
// (nil = clean) with the invariant checker attached. Any failure in the
// calling test logs the run's flight recorder.
func shortRun(t *testing.T, v Variant, plan *fault.Plan) *Result {
	t.Helper()
	res, err := Run(RunConfig{
		Variant:      v,
		Flows:        2,
		WarmupWeeks:  1,
		MeasureWeeks: 2,
		Seed:         1,
		Fault:        plan,
		Invariants:   true,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", v, err)
	}
	obs.DumpOnFailure(t, res.Flight)
	return res
}

// TestFaultMatrix sweeps fault plans across transports and asserts the two
// robustness properties the subsystem promises: no invariant ever breaks, and
// throughput degrades boundedly instead of collapsing to a stall.
func TestFaultMatrix(t *testing.T) {
	plans := []string{
		"nloss=0.1",
		"flaps=1,flapfrac=0.5",
		"drop=0.02",
		"nloss=0.05,drop=0.01,flaps=1",
	}
	variants := []Variant{TDTCP, Cubic, DCTCP}

	for _, v := range variants {
		clean := shortRun(t, v, nil)
		if len(clean.Violations) != 0 {
			t.Fatalf("%s clean run: %d invariant violations: %v", v, len(clean.Violations), clean.Violations[0])
		}
		for _, spec := range plans {
			t.Run(fmt.Sprintf("%s/%s", v, spec), func(t *testing.T) {
				plan, err := fault.Parse(spec)
				if err != nil {
					t.Fatalf("Parse(%q): %v", spec, err)
				}
				res := shortRun(t, v, &plan)
				if n := len(res.Violations); n != 0 {
					t.Fatalf("%d invariant violations, first: %v", n, res.Violations[0])
				}
				if res.InvariantChecks == 0 {
					t.Fatal("invariant checker never ran")
				}
				if res.GoodputGbps <= 0 {
					t.Fatalf("faulted run stalled: goodput %v Gbps", res.GoodputGbps)
				}
				// Bounded collapse: a lossy control channel or 2% data-path
				// drop must not cost more than 90% of clean throughput.
				if res.GoodputGbps < 0.1*clean.GoodputGbps {
					t.Fatalf("throughput collapsed: %0.2f Gbps faulted vs %0.2f clean",
						res.GoodputGbps, clean.GoodputGbps)
				}
			})
		}
	}
}

// faultedTracedRun is tracedRun's faulted twin: full-category trace + metrics
// of a TDTCP run under notification loss, circuit flaps and frame drops.
func faultedTracedRun(t *testing.T) ([]byte, []byte) {
	t.Helper()
	plan, err := fault.Parse("nloss=0.1,ndup=0.05,drop=0.01,flaps=1,drift=2us")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	reg := trace.NewRegistry()
	_, err = Run(RunConfig{
		Variant:      TDTCP,
		Flows:        2,
		WarmupWeeks:  1,
		MeasureWeeks: 2,
		Seed:         42,
		Fault:        &plan,
		FaultSeed:    7,
		Invariants:   true,
		Tracer:       tr,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	var mj bytes.Buffer
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes(), mj.Bytes()
}

// TestFaultedRunDeterministic is the reproducibility acceptance criterion:
// same (seed, faultseed) must give byte-identical traces and metrics.
func TestFaultedRunDeterministic(t *testing.T) {
	trA, mA := faultedTracedRun(t)
	trB, mB := faultedTracedRun(t)
	if !bytes.Equal(trA, trB) {
		t.Fatalf("same (seed, faultseed) produced different traces (%d vs %d bytes)", len(trA), len(trB))
	}
	if !bytes.Equal(mA, mB) {
		t.Fatalf("same (seed, faultseed) produced different metrics:\n%s\nvs\n%s", mA, mB)
	}
	// Faults must actually have been injected and traced.
	for _, want := range []string{`"cat":"fault"`, `"name":"notify_drop"`} {
		if !bytes.Contains(trA, []byte(want)) {
			t.Errorf("faulted trace missing %s", want)
		}
	}
}

// TestDeadmanEngagesUnderNotificationLoss is the degradation acceptance
// criterion: a TDTCP run losing 10% of its notifications completes (goodput
// comparable to clean) with the schedule-inference deadman visibly engaging.
func TestDeadmanEngagesUnderNotificationLoss(t *testing.T) {
	clean := shortRun(t, TDTCP, nil)
	if clean.DeadmanEngaged != 0 {
		t.Fatalf("clean run engaged the deadman %d times", clean.DeadmanEngaged)
	}

	plan, err := fault.Parse("nloss=0.1")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	reg := trace.NewRegistry()
	res, err := Run(RunConfig{
		Variant:      TDTCP,
		Flows:        2,
		WarmupWeeks:  1,
		MeasureWeeks: 2,
		Seed:         1,
		Fault:        &plan,
		Invariants:   true,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	obs.DumpOnFailure(t, res.Flight)
	if res.FaultStats.NotifyDropped == 0 {
		t.Fatal("plan dropped no notifications")
	}
	if res.DeadmanEngaged == 0 {
		t.Fatal("deadman never engaged despite dropped notifications")
	}
	if got := reg.Counter("tdtcp.deadman_engaged"); got != int64(res.DeadmanEngaged) {
		t.Errorf("metrics tdtcp.deadman_engaged = %d, want %d", got, res.DeadmanEngaged)
	}
	if reg.Counter("fault.notify_dropped") != int64(res.FaultStats.NotifyDropped) {
		t.Errorf("metrics fault.notify_dropped = %d, want %d",
			reg.Counter("fault.notify_dropped"), res.FaultStats.NotifyDropped)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations under notification loss: %v", res.Violations[0])
	}
	if res.GoodputGbps < 0.5*clean.GoodputGbps {
		t.Fatalf("notification loss halved throughput despite deadman: %0.2f vs %0.2f Gbps",
			res.GoodputGbps, clean.GoodputGbps)
	}
}
