package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/fault"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// Sharded-vs-sequential parity suite: the engine's worker count must be
// unobservable. Every run partitions events onto per-rack lanes regardless
// of RunConfig.Shards — lane assignment, lookahead windows, and the
// canonical (time, key) merge order are all shard-count-independent — so
// the JSONL trace, the result, and the frame-conservation ledger have to be
// byte-for-byte identical for shards ∈ {1, 2, 4, 8}. ci.sh runs this suite
// under -race, which patrols the one thing byte-comparison cannot: that the
// worker handoffs synchronize every cross-lane memory access.

// parityMatrixFault is the fault plan for the faulted half of the matrix:
// frame drops, corruption, notification loss, and schedule flaps together
// exercise every cross-lane seam (docks, per-rack fault substreams, the
// control plane's notification fan-out) under perturbation.
func parityMatrixFault() *fault.Plan {
	return &fault.Plan{NotifyLoss: 0.2, Drop: 0.01, Corrupt: 0.005, Flaps: 2, FlapFrac: 0.5}
}

// shardParityRun executes one traced TDTCP run at the given worker count and
// returns the JSONL trace plus the result.
func shardParityRun(t *testing.T, scenario Scenario, flows, shards int, plan *fault.Plan) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, trace.CatAll)
	res, err := Run(RunConfig{
		Variant: TDTCP, Scenario: scenario, Flows: flows,
		WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
		Shards: shards, Tracer: tr, Fault: plan,
	})
	if err != nil {
		t.Fatalf("Run (%d shards): %v", shards, err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes(), res
}

// TestShardParityMatrix is the tentpole's proof: byte-identical traces and
// identical conservation ledgers across {1, 2, 4, 8} shards, on the two-rack
// hybrid and the 8-rack rotor fabric, with and without the fault matrix.
func TestShardParityMatrix(t *testing.T) {
	for _, sc := range []struct {
		scenario Scenario
		flows    int
	}{
		{Hybrid(), 4},
		{MultiRack(8), 8},
	} {
		for _, faulted := range []bool{false, true} {
			name := fmt.Sprintf("%s/fault=%v", sc.scenario.Name, faulted)
			t.Run(name, func(t *testing.T) {
				var plan *fault.Plan
				if faulted {
					plan = parityMatrixFault()
				}
				base, baseRes := shardParityRun(t, sc.scenario, sc.flows, 1, plan)
				if len(base) == 0 {
					t.Fatal("sequential run produced no trace events")
				}
				for _, shards := range []int{2, 4, 8} {
					got, res := shardParityRun(t, sc.scenario, sc.flows, shards, plan)
					if !bytes.Equal(base, got) {
						d := firstDiffLine(base, got)
						t.Fatalf("%d shards diverge from sequential at line %d\nseq:     %s\nsharded: %s",
							shards, d, lineAt(base, d), lineAt(got, d))
					}
					if res.FramesSent != baseRes.FramesSent ||
						res.FramesDelivered != baseRes.FramesDelivered ||
						res.FramesMisrouted != baseRes.FramesMisrouted {
						t.Fatalf("%d shards: ledger (%d,%d,%d) != sequential (%d,%d,%d)",
							shards, res.FramesSent, res.FramesDelivered, res.FramesMisrouted,
							baseRes.FramesSent, baseRes.FramesDelivered, baseRes.FramesMisrouted)
					}
					if res.GoodputGbps != baseRes.GoodputGbps {
						t.Fatalf("%d shards: goodput %v != sequential %v",
							shards, res.GoodputGbps, baseRes.GoodputGbps)
					}
				}
			})
		}
	}
}

// TestShardParityWorkload extends the parity gate to the open-loop workload
// path: arrivals draw from the control lane's RNG and completions merge from
// per-lane done-lists, both of which must be worker-count-invariant.
func TestShardParityWorkload(t *testing.T) {
	run := func(shards int) ([]byte, *WorkloadResult) {
		var buf bytes.Buffer
		tr := trace.New(&buf, trace.CatAll)
		res, err := RunWorkload(WorkloadConfig{
			Variant: TDTCP, Scenario: MultiRack(8),
			WarmupWeeks: 1, MeasureWeeks: 1, Seed: 7,
			Shards: shards, Tracer: tr,
		})
		if err != nil {
			t.Fatalf("RunWorkload (%d shards): %v", shards, err)
		}
		if err := tr.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		return buf.Bytes(), res
	}
	base, baseRes := run(1)
	for _, shards := range []int{2, 4, 8} {
		got, res := run(shards)
		if !bytes.Equal(base, got) {
			d := firstDiffLine(base, got)
			t.Fatalf("%d shards diverge at line %d\nseq:     %s\nsharded: %s",
				shards, d, lineAt(base, d), lineAt(got, d))
		}
		if res.FlowsCompleted != baseRes.FlowsCompleted || res.FCT.N() != baseRes.FCT.N() {
			t.Fatalf("%d shards: completions %d/%d != sequential %d/%d",
				shards, res.FlowsCompleted, res.FCT.N(),
				baseRes.FlowsCompleted, baseRes.FCT.N())
		}
	}
}

// shardLedgerRun is a bare engine+network run (no Run wrapper) so the test
// can reach each Rack's slice of the conservation ledger.
func shardLedgerRun(t *testing.T, shards int) (*rdcn.Network, *sim.ShardedLoop) {
	t.Helper()
	const racks, hosts = 2, 4
	sc := Hybrid()
	engine := sim.NewSharded(3, racks, shards)
	ncfg := rdcn.DefaultConfig()
	ncfg.Racks = racks
	ncfg.HostsPerRack = hosts
	ncfg.TDNs = sc.TDNs
	ncfg.Schedule = sc.Schedule
	ncfg.VOQCap = sc.VOQCap
	ncfg.Cluster = engine
	net, err := rdcn.New(engine.Control(), ncfg)
	if err != nil {
		t.Fatalf("rdcn.New: %v", err)
	}
	for i := 0; i < hosts; i++ {
		f, err := BuildFlow(engine.Control(), net, i, TDTCP, FlowOptions{})
		if err != nil {
			t.Fatalf("BuildFlow: %v", err)
		}
		f.Start(-1)
	}
	end := sim.Time(2 * sc.Schedule.Week())
	net.Start(end)
	engine.RunUntil(end)
	return net, engine
}

// TestShardPerRackLedger checks the conservation ledger at both granularities
// and across worker counts: each rack's slice (frames its hosts sent, frames
// terminating at it) must be identical for every shard count, the slices must
// sum to the network ledger, and the global conservation equation must hold.
func TestShardPerRackLedger(t *testing.T) {
	type ledger struct{ sent, delivered, misrouted uint64 }
	perShard := map[int][]ledger{}
	for _, shards := range []int{1, 2, 4, 8} {
		net, _ := shardLedgerRun(t, shards)
		var sums ledger
		var rl []ledger
		for _, rack := range net.Racks {
			s, d, m := rack.FrameLedger()
			rl = append(rl, ledger{s, d, m})
			sums.sent += s
			sums.delivered += d
			sums.misrouted += m
		}
		gs, gd, gm := net.FrameLedger()
		if sums != (ledger{gs, gd, gm}) {
			t.Fatalf("%d shards: per-rack ledgers %+v do not sum to global (%d,%d,%d)",
				shards, rl, gs, gd, gm)
		}
		if err := net.CheckConservation(); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		perShard[shards] = rl
	}
	for _, shards := range []int{2, 4, 8} {
		for r := range perShard[1] {
			if perShard[shards][r] != perShard[1][r] {
				t.Fatalf("rack %d ledger differs: %d shards %+v vs sequential %+v",
					r, shards, perShard[shards][r], perShard[1][r])
			}
		}
	}
}
