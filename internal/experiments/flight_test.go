package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/rdcn-net/tdtcp/internal/invariant"
	"github.com/rdcn-net/tdtcp/internal/obs"
	"github.com/rdcn-net/tdtcp/internal/rdcn"
	"github.com/rdcn-net/tdtcp/internal/sim"
	"github.com/rdcn-net/tdtcp/internal/trace"
)

// TestRunHasFlightRecorderByDefault: every Run carries a recorder without any
// configuration, and the ring is non-empty afterwards even with JSONL
// tracing off entirely.
func TestRunHasFlightRecorderByDefault(t *testing.T) {
	res, err := Run(RunConfig{Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flight == nil {
		t.Fatal("Run returned no flight recorder")
	}
	if res.Flight.Len() == 0 {
		t.Fatal("flight recorder ring is empty after a full run")
	}
	off, err := Run(RunConfig{Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 1, DisableFlight: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Flight != nil {
		t.Fatal("DisableFlight run still has a recorder")
	}
}

// TestInvariantFailureDumpsFlight is the end-to-end post-mortem path: a run
// whose invariant checker trips must freeze a non-empty flight-recorder
// snapshot that still contains the failing flow's causal "flow" span, and
// write a banner-led JSONL dump.
func TestInvariantFailureDumpsFlight(t *testing.T) {
	loop := sim.NewLoop(1)
	flight := trace.NewFlight(trace.DefaultFlightLen, trace.CatAll)
	obs.DumpOnFailure(t, flight)
	tracer := (*trace.Tracer)(nil).WithFlight(flight)

	sc := Hybrid()
	ncfg := rdcn.DefaultConfig()
	ncfg.HostsPerRack = 1
	ncfg.TDNs = sc.TDNs
	ncfg.Schedule = sc.Schedule
	ncfg.VOQCap = sc.VOQCap
	net, err := rdcn.New(loop, ncfg)
	if err != nil {
		t.Fatal(err)
	}
	loop.SetTracer(tracer)
	net.SetTracer(tracer)

	chk := invariant.New(loop)
	chk.SetTracer(tracer)
	var dump bytes.Buffer
	chk.SetFlight(flight, &dump)
	chk.WatchNetwork(net)

	f, err := BuildFlow(loop, net, 0, TDTCP, FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f.SetTracer(tracer, 0)
	chk.WatchConn(f.Snd, 0)
	chk.WatchConn(f.Rcv, 0)

	// An induced invariant that trips shortly after start, while the ring
	// still holds the run's opening records.
	sweeps := 0
	chk.WatchFunc("induced", 0, func() error {
		sweeps++
		if sweeps > 120 {
			return errors.New("induced failure for flight-dump test")
		}
		return nil
	})

	end := sim.Time(2 * sim.Millisecond)
	net.Start(end)
	sp := tracer.BeginSpan(trace.CatTCP, int64(loop.Now()), "flow", 0, -1, 0)
	f.Start(-1)
	loop.RunUntil(end)
	tracer.EndSpan(trace.CatTCP, int64(loop.Now()), "flow", 0, -1, sp, float64(f.Delivered()), 0)

	if len(chk.Violations()) == 0 {
		t.Fatal("induced invariant never tripped")
	}
	snap := chk.FlightSnapshot()
	if len(snap) == 0 {
		t.Fatal("violation left no flight snapshot")
	}
	foundSpan := false
	for _, ev := range snap {
		if ev.Name == "flow" && ev.Ph == "B" && ev.Flow == 0 {
			foundSpan = true
			break
		}
	}
	if !foundSpan {
		t.Fatalf("snapshot of %d events does not contain flow 0's causal span", len(snap))
	}
	out := dump.String()
	if !strings.Contains(out, "flight recorder dump") || !strings.Contains(out, "induced") {
		t.Fatalf("dump missing banner: %q", out[:min(len(out), 200)])
	}
	if !strings.Contains(out, `"name":"flow"`) {
		t.Fatal("dump JSONL missing the flow span record")
	}
}

// TestWorkloadFlightRecorder mirrors the default-recorder contract for
// workload runs.
func TestWorkloadFlightRecorder(t *testing.T) {
	res, err := RunWorkload(WorkloadConfig{Variant: TDTCP, MaxFlows: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flight == nil || res.Flight.Len() == 0 {
		t.Fatal("workload run has no populated flight recorder")
	}
}

// TestRunPopulatesHistograms: a metered run must fill every wired histogram
// family — per-TDN RTT, VOQ occupancy, notification latency — and their
// summaries must appear in the JSON dump.
func TestRunPopulatesHistograms(t *testing.T) {
	reg := trace.NewRegistry()
	res, err := Run(RunConfig{Variant: TDTCP, Flows: 2, WarmupWeeks: 1, MeasureWeeks: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	obs.DumpOnFailure(t, res.Flight)
	for _, name := range []string{"tcp.rtt_tdn0_ns", "tcp.rtt_tdn1_ns", "voq.r0.occ_pkts", "rdcn.notify_lat_ns"} {
		h := reg.Hist(name)
		if h.Count() == 0 {
			t.Errorf("histogram %s recorded nothing", name)
			continue
		}
		if h.Quantile(0.5) <= 0 || h.Max() < h.Quantile(0.99) {
			t.Errorf("%s: implausible quantiles p50=%d p99=%d max=%d",
				name, h.Quantile(0.5), h.Quantile(0.99), h.Max())
		}
	}
	// The RTT histograms must reflect the two TDNs' different delays: the
	// optical TDN (1) is faster than the packet TDN (0).
	if p0, p1 := reg.Hist("tcp.rtt_tdn0_ns").Quantile(0.5), reg.Hist("tcp.rtt_tdn1_ns").Quantile(0.5); p1 >= p0 {
		t.Errorf("optical RTT p50 %dns not below packet RTT p50 %dns", p1, p0)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"histograms"`, `"tcp.rtt_tdn0_ns"`, `"p99"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics JSON missing %s", want)
		}
	}
}

// TestWorkloadPopulatesFCTHistogram: workload runs must record completion
// times into "fct.ns" matching the FCT accounting.
func TestWorkloadPopulatesFCTHistogram(t *testing.T) {
	reg := trace.NewRegistry()
	res, err := RunWorkload(WorkloadConfig{Variant: TDTCP, MaxFlows: 32, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	obs.DumpOnFailure(t, res.Flight)
	h := reg.Hist("fct.ns")
	if h.Count() == 0 {
		t.Fatal("fct.ns histogram recorded nothing")
	}
	if int(h.Count()) > res.FlowsCompleted {
		t.Fatalf("fct.ns count %d exceeds completed flows %d", h.Count(), res.FlowsCompleted)
	}
	if reg.Counter("workload.flows_completed") != int64(res.FlowsCompleted) {
		t.Errorf("workload.flows_completed = %d, want %d",
			reg.Counter("workload.flows_completed"), res.FlowsCompleted)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
