// Package hot is the hotpath fixture for the GOPATH-style loader: without a
// module directory there is no build to run escape analysis against, and the
// check must say so instead of silently passing.
package hot

//lint:hotpath exercised by the fixture loader
func Sum(xs []int) int { // want "hotpath check needs a module-mode load"
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
