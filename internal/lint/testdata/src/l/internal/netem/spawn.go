// Package netem proves the //lint:shardruntime directive is inert outside
// internal/sim: a deterministic package cannot buy itself goroutines by
// pasting the comment.
package netem

//lint:shardruntime (no effect: only internal/sim may host the shard runtime)

func spawn(fn func()) {
	go fn() // want "go statement in a deterministic package"
}
