// Package sim is the shard-runtime carve-out fixture: this file carries the
// //lint:shardruntime directive, so its bounded worker pool is the one place
// a deterministic package may spawn goroutines.
package sim

import "sync"

//lint:shardruntime The worker pool below stands in for the sharded engine's
// single concurrency seam: coordinator→worker handoff is a WaitGroup.Add
// plus a channel send, so event order is fixed by the window algebra, not by
// goroutine scheduling.

// pool is a bounded worker pool in the marked file: allowed.
type pool struct {
	wg   sync.WaitGroup
	work []chan int
}

func (p *pool) start(workers int) {
	p.work = make([]chan int, workers)
	for i := range p.work {
		ch := make(chan int, 1)
		p.work[i] = ch
		go func() {
			for range ch {
				p.wg.Done()
			}
		}()
	}
}

func (p *pool) dispatch(w int) {
	p.wg.Add(len(p.work))
	for _, ch := range p.work {
		ch <- w
	}
	p.wg.Wait()
}
