package sim

// The //lint:shardruntime carve-out is per-file: this sibling file of the
// marked shard runtime does not carry the directive, so its ad-hoc goroutine
// is still a finding.

func rogue(fn func()) {
	go fn() // want "go statement in a deterministic package"
}
