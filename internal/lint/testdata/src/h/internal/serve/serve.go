// Package serve is the concurrency-check fixture: each struct isolates one
// of the four rules (atomic/plain mix, guard consistency, lock copies,
// blocking under a mutex) with a positive and a negative shape.
package serve

import (
	"sync"
	"sync/atomic"
)

// --- rule 1: mixed atomic/plain access --------------------------------------

type Hits struct {
	n     int64
	other int64
}

func (h *Hits) Inc() { atomic.AddInt64(&h.n, 1) }

func (h *Hits) Snapshot() int64 {
	return h.n // want "n is accessed via sync/atomic elsewhere but plainly here"
}

// PlainOnly never touches the atomic field; plain access to a plain field is
// not a finding.
func (h *Hits) PlainOnly() int64 { return h.other }

// --- rule 2: inconsistent mutex guards --------------------------------------

type Store struct {
	mu   sync.Mutex
	n    int
	jobs map[string]int
}

// New touches the fields before the value is shared: constructors are exempt.
func New() *Store {
	s := &Store{jobs: map[string]int{}}
	s.n = 1
	return s
}

func (s *Store) Set(v int) {
	s.mu.Lock()
	s.n = v
	s.jobs["latest"] = v
	s.mu.Unlock()
}

func (s *Store) Peek() int {
	return s.n // want "Store.n is written under the mutex on other paths but accessed without it here"
}

func (s *Store) Reset() {
	s.jobs = nil // want "Store.jobs is written under the mutex on other paths but accessed without it here"
}

// bumpLocked is called with the mutex held: the naming convention marks the
// whole body as guarded.
func (s *Store) bumpLocked() { s.n++ }

// --- rule 3: locks copied by value ------------------------------------------

type CopyMe struct {
	mu sync.Mutex
	n  int
}

func byValue(c CopyMe) int { // want "parameter copies .*CopyMe by value"
	return c.n
}

func (c CopyMe) get() int { // want "receiver copies .*CopyMe by value"
	return c.n
}

func snapshot(c *CopyMe) {
	cp := *c // want "assignment copies .*CopyMe by value"
	_ = cp
}

// byPointer is the correct shape.
func byPointer(c *CopyMe) int { return c.n }

// --- rule 4: blocking calls while holding a mutex ---------------------------

type Blocky struct {
	mu sync.Mutex
	ch chan struct{}
}

func (b *Blocky) bad() {
	b.mu.Lock()
	<-b.ch // want "channel receive while holding a mutex"
	b.mu.Unlock()
}

// ok performs a nonblocking try-send: select with a default never parks.
func (b *Blocky) ok() {
	b.mu.Lock()
	select {
	case b.ch <- struct{}{}:
	default:
	}
	b.mu.Unlock()
}

func (b *Blocky) wait(wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait() // want "sync Wait while holding a mutex"
}

// after the unlock, blocking is fine.
func (b *Blocky) sequenced() {
	b.mu.Lock()
	b.mu.Unlock()
	<-b.ch
}
