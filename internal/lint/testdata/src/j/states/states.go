// Package states is the exhaustive fixture: switches over enum-like const
// groups in every coverage shape the check distinguishes.
package states

type State int

const (
	Idle State = iota
	Running
	Done
)

func bad(s State) int {
	switch s { // want "switch over State misses Done and has no default clause"
	case Idle:
		return 0
	case Running:
		return 1
	}
	return 2
}

func withDefault(s State) int {
	switch s {
	case Idle:
		return 0
	default:
		// Running, Done: the fallback is the acknowledgment.
		return 1
	}
}

func full(s State) int {
	switch s {
	case Idle, Running:
		return 0
	case Done:
		return 1
	}
	return 2
}

type Level string

const (
	Low  Level = "low"
	High Level = "high"
)

// nonConst has an undecidable case expression; the check stays silent rather
// than guess at coverage.
func nonConst(l, x Level) int {
	switch l {
	case x:
		return 0
	}
	return 1
}

type Alone int

const OnlyOne Alone = 1

// single-member groups are not enums.
func single(a Alone) bool {
	switch a {
	case OnlyOne:
		return true
	}
	return false
}

// untyped tags have no const group.
func untyped(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
