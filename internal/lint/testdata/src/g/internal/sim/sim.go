// Package sim is the determinism-boundary fixture: a simulation package must
// not import the serving layer, even transitively through a helper.
package sim

import (
	"g/internal/serve" // want "import of g/internal/serve in a deterministic package"
	"sort"
)

// Schedule is deterministic work that wrongly leans on the serving layer.
func Schedule(specs []string) []string {
	sort.Strings(specs)
	ids := make([]string, 0, len(specs))
	for _, s := range specs {
		ids = append(ids, serve.Submit(s))
	}
	return ids
}
