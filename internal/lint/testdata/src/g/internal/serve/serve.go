// Package serve is the boundary-fixture stand-in for the real serving layer:
// a package that legitimately lives outside the determinism boundary.
package serve

// Submit is referenced by the sim fixture so the import is not unused.
func Submit(spec string) string { return "j-" + spec }
