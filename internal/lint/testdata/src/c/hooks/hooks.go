// Package hooks is the nilhook-check fixture: calls through optional
// func-valued fields must be dominated by a nil check.
package hooks

type pipe struct {
	// Fault, when non-nil, is consulted for every delivered packet.
	Fault func(id int) bool
	// Monitor is called if set after each enqueue.
	Monitor func(depth int)
	// Classify routes packets; always installed by the constructor.
	Classify func(id int) int
}

func (p *pipe) deliver(id int) {
	if p.Fault != nil {
		if p.Fault(id) { // guarded by the enclosing if: allowed
			return
		}
	}
	p.Monitor(0)       // want "call through optional hook p.Monitor without a nil guard"
	_ = p.Classify(id) // no optional marker on the field: allowed
}

func (p *pipe) drain(id int) {
	if p.Monitor == nil {
		return
	}
	p.Monitor(id) // dominated by the early return: allowed
}

func (p *pipe) local(id int) {
	fault := p.Fault
	if fault != nil {
		fault(id) // checked local copy: allowed
	}
}

func (p *pipe) unguarded(id int) bool {
	return p.Fault(id) // want "call through optional hook p.Fault without a nil guard"
}
