// Package tcp exercises //lint:ignore suppression handling: a justified
// directive naming the right check silences the finding; naming a different
// check does not.
package tcp

type state struct {
	sndUna uint32
	sndNxt uint32
}

func (s *state) suppressed() bool {
	//lint:ignore seqarith fixture: demonstrating a justified suppression
	return s.sndUna < s.sndNxt
}

func (s *state) wrongCheck() bool {
	//lint:ignore determinism suppression names a different check
	return s.sndUna < s.sndNxt // want "raw < on uint32 sequence-space values"
}

func (s *state) inline() bool {
	return s.sndUna < s.sndNxt //lint:ignore seqarith fixture: same-line suppression
}

func (s *state) star() bool {
	//lint:ignore * fixture: wildcard suppression
	return s.sndUna < s.sndNxt
}
