// Package malformed holds an ignore directive missing its justification; the
// framework reports it under the "ignore" pseudo-check.
package malformed

//lint:ignore
var x = 0
