// Package tcp is the seqarith-check fixture: raw ordering comparisons on
// sequence-space uint32 values are flagged; the helper family and non-seq
// counters are not.
package tcp

type conn struct {
	sndUna   uint32
	sndNxt   uint32
	rcvEpoch uint32
	segCount uint32
	segLimit uint32
}

// seqGEQ is part of the exempt helper family: the RFC 1982 idiom lives here.
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax is exempt by name even though it compares seq-named uint32s raw.
func seqMax(seqA, seqB uint32) uint32 {
	if seqA > seqB {
		return seqA
	}
	return seqB
}

func (c *conn) canSend() bool {
	if c.sndNxt < c.sndUna { // want "raw < on uint32 sequence-space values"
		return false
	}
	return c.segCount < c.segLimit // no sequence-space name: allowed
}

func (c *conn) acked(ack uint32) bool {
	if ack > c.sndNxt { // want "raw > on uint32 sequence-space values"
		return false
	}
	return seqGEQ(ack, c.sndUna) // helper call: allowed
}

func (c *conn) staleEpoch(e uint32) bool {
	return e <= c.rcvEpoch // want "raw <= on uint32 sequence-space values"
}

func (c *conn) pastEpochFour() bool {
	return c.rcvEpoch >= 4 // want "raw >= on uint32 sequence-space values"
}
