// Package emit is the tracecat-check fixture: Emit categories must be
// constant expressions over the trace package's Cat* constants.
package emit

import "d/trace"

func run(c trace.Category) {
	trace.Emit(trace.CatSim, "epoch_start")          // single constant: allowed
	trace.Emit(trace.CatSim|trace.CatTCP, "handoff") // constant expression: allowed
	trace.Emit(7, "adhoc")                           // want "Emit category must be a constant expression"
	trace.Emit(c, "dynamic")                         // want "Emit category must be a constant expression"
	trace.Emit(trace.Category(2), "cast")            // want "Emit category must be a constant expression"
}
