// Package metrics is the metricname-check fixture: Registry.Add/Set names
// must follow the pkg.snake_case convention with a constant prefix.
package metrics

import (
	"fmt"

	"d/trace"
)

func record(m *trace.Registry, rack int, kind string) {
	m.Add("tcp.retransmits", 1)                // allowed
	m.Set("sched.day_len_us", 90)              // allowed
	m.Add("BadName", 1)                        // want "does not match the pkg.snake_case convention"
	m.Add("tcp", 1)                            // want "does not match the pkg.snake_case convention"
	m.Add(fmt.Sprintf("voq.r%d.enq", rack), 1) // constant prefix and fragments: allowed
	m.Add("fault."+kind, 1)                    // constant prefix: allowed
	m.Add(kind+".count", 1)                    // want "must start with a constant"
	m.Set(kind, 1)                             // want "entirely dynamic"

	_ = m.Hist("tcp.rtt_tdn0_ns")                     // allowed
	_ = m.Hist(fmt.Sprintf("voq.r%d.occ_pkts", rack)) // constant prefix and fragments: allowed
	_ = m.Hist("RTT histogram")                       // want "does not match the pkg.snake_case convention"
	_ = m.Hist(kind)                                  // want "entirely dynamic"
}
