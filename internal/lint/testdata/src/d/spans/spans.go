// Package spans is the spanpair-check fixture: every BeginSpan id must reach
// an EndSpan (same function for locals, same package for fields), and span
// categories must come from the trace Cat* constants.
package spans

import "d/trace"

// conn mirrors the cross-method span lifecycle: rec is closed by endRec,
// leaked is never closed anywhere in the package.
type conn struct {
	rec    trace.SpanID
	leaked trace.SpanID
}

func localPaired(ts int64) {
	id := trace.BeginSpan(trace.CatTCP, ts, "recovery", 1, 0, 0) // allowed
	trace.EndSpan(trace.CatTCP, ts+1, "recovery", 1, 0, id, 0, 0)
}

func slicePaired(ts int64) {
	ids := make([]trace.SpanID, 4)
	for i := range ids {
		ids[i] = trace.BeginSpan(trace.CatTCP, ts, "flow", i, 0, 0) // allowed
	}
	for i := range ids {
		trace.EndSpan(trace.CatTCP, ts+1, "flow", i, 0, ids[i], 0, 0)
	}
}

func (c *conn) beginRec(ts int64) {
	c.rec = trace.BeginSpan(trace.CatTCP, ts, "recovery", 1, 0, 0) // allowed: endRec closes it
}

func (c *conn) endRec(ts int64) {
	trace.EndSpan(trace.CatTCP, ts, "recovery", 1, 0, c.rec, 0, 0)
}

// escapes hands the id to the caller, which owns the End.
func escapes(ts int64) trace.SpanID {
	return trace.BeginSpan(trace.CatRDCN, ts, "notify", -1, 0, 0) // allowed
}

func discarded(ts int64) {
	trace.BeginSpan(trace.CatTCP, ts, "flow", 1, 0, 0) // want "discarded"
}

func blanked(ts int64) {
	_ = trace.BeginSpan(trace.CatTCP, ts, "flow", 1, 0, 0) // want "discarded"
}

func neverEnded(ts int64) trace.SpanID {
	id := trace.BeginSpan(trace.CatTCP, ts, "flow", 1, 0, 0) // want "never reaches an EndSpan in this function"
	return id + 1
}

func (c *conn) fieldNeverEnded(ts int64) {
	c.leaked = trace.BeginSpan(trace.CatTCP, ts, "flow", 1, 0, 0) // want "never reaches an EndSpan in this package"
}

func adHocCategory(ts int64) {
	id := trace.BeginSpan(7, ts, "flow", 1, 0, 0) // want "constant expression over the trace.Cat"
	trace.EndSpan(7, ts, "flow", 1, 0, id, 0, 0)  // want "constant expression over the trace.Cat"
}
