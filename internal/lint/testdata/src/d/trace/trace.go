// Package trace mirrors the real trace package's shape: the tracecat and
// metricname checks key on the package name and the Category and Registry
// type names, so fixtures exercise them without importing the real module.
package trace

type Category uint32

const (
	CatSim Category = 1 << iota
	CatTCP
	CatRDCN
)

// Emit records one event under the given category.
func Emit(c Category, name string) {}

// Registry accumulates named metrics.
type Registry struct{}

// Add increments the named counter.
func (r *Registry) Add(name string, delta int64) {}

// Set records the named gauge.
func (r *Registry) Set(name string, v float64) {}
