// Package trace mirrors the real trace package's shape: the tracecat and
// metricname checks key on the package name and the Category and Registry
// type names, so fixtures exercise them without importing the real module.
package trace

type Category uint32

const (
	CatSim Category = 1 << iota
	CatTCP
	CatRDCN
)

// Emit records one event under the given category.
func Emit(c Category, name string) {}

// Registry accumulates named metrics.
type Registry struct{}

// Add increments the named counter.
func (r *Registry) Add(name string, delta int64) {}

// Set records the named gauge.
func (r *Registry) Set(name string, v float64) {}

// Histogram mirrors the real zero-alloc histogram's shape.
type Histogram struct{}

// Hist returns a handle on the named histogram.
func (r *Registry) Hist(name string) *Histogram { return nil }

// SpanID names one causal span.
type SpanID uint64

// BeginSpan opens a causal span and returns its id.
func BeginSpan(c Category, ts int64, name string, flow, tdn int, parent SpanID) SpanID { return 0 }

// EndSpan closes span id opened by BeginSpan.
func EndSpan(c Category, ts int64, name string, flow, tdn int, id SpanID, a, b float64) {}
