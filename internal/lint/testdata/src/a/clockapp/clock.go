// Package clockapp sits outside the deterministic scope: wall-clock and
// global-rand use here is allowed, proving the check's path scoping.
package clockapp

import (
	"math/rand"
	"time"
)

func stamp() int64 { return time.Now().UnixNano() }

func jitter() int { return rand.Intn(10) }
