// Package sim is the determinism-check fixture: it mixes forbidden
// wall-clock, global-rand, goroutine, and map-iteration constructs with
// their deterministic replacements.
package sim

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

var framePool = sync.Pool{ // want "sync.Pool in a deterministic package"
	New: func() interface{} { return make([]byte, 0, 64) },
}

// ownedFreeList is the deterministic replacement: a plain LIFO slice whose
// reuse order depends only on event order. Allowed.
type ownedFreeList struct {
	free [][]byte
}

type loop struct {
	rng     *rand.Rand
	started time.Time
	delay   time.Duration
	bufs    ownedFreeList
}

func newLoop(seed int64) *loop {
	return &loop{
		rng:     rand.New(rand.NewSource(seed)), // seeded constructor: allowed
		started: time.Now(),                     // want "time.Now in a deterministic package"
		delay:   10 * time.Millisecond,          // duration arithmetic: allowed
	}
}

func (l *loop) run(weights map[string]int) {
	_ = time.Since(l.started) // want "time.Since in a deterministic package"
	_ = rand.Intn(10)         // want "global math/rand.Intn"
	_ = l.rng.Intn(10)        // method on a seeded generator: allowed

	go l.step("x") // want "go statement in a deterministic package"

	for name := range weights { // want "range over a map in a deterministic package"
		l.step(name)
	}

	keys := make([]string, 0, len(weights))
	//lint:ignore determinism key collection is order-independent; sorted below
	for name := range weights {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	for _, name := range keys { // slice iteration: allowed
		l.step(name)
	}
}

func (l *loop) step(string) {}
