// Package sim mirrors the real module's virtual-time types so the simtime
// fixture exercises the checker against the same shapes.
package sim

// Time is a virtual instant in nanoseconds since simulation start.
type Time int64

// Dur is a virtual span in nanoseconds.
type Dur int64

// Add advances an instant by a span; the sim package itself is the one
// legitimate site of Time arithmetic.
func (t Time) Add(d Dur) Time { return t + Time(d) }

// Sub is the span between two instants.
func (t Time) Sub(u Time) Dur { return Dur(t - u) }
