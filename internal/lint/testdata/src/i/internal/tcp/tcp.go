// Package tcp is the simtime fixture: a sim-boundary package that leaks
// wall-clock types, hides units in identifier names, and does raw arithmetic
// on instants.
package tcp

import (
	"time"

	"i/internal/sim"
)

// timeoutMs is a constant: unit-named tuning constants are exempt (the raw
// value is caught where it lands in a variable).
const timeoutMs = 5

type Conn struct {
	RTO      sim.Dur
	deadline sim.Time
	grace    time.Duration // want "time.Duration in a sim-boundary package"
	numTDNs  int           // plural acronym, not a unit suffix
}

func (c *Conn) overrun(now sim.Time) {
	gapNs := int64(0)    // want "raw integer gapNs carries a time unit in its name"
	delay_us := 3        // want "raw integer delay_us carries a time unit in its name"
	reinjections := 0    // English plural: not a unit
	_ = now - c.deadline // want "subtracting two sim.Time values directly"
	_ = now + c.deadline // want "adding two sim.Time values directly"
	_, _, _ = gapNs, delay_us, reinjections
}

// span is the correct shape: the unit lives in the type, arithmetic goes
// through Add/Sub.
func (c *Conn) span(now sim.Time) sim.Dur {
	return now.Sub(c.deadline)
}
