package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// deterministicPkgs are the packages whose behaviour must be a pure function
// of the seed: the simulation core and everything scheduled on it.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/netem",
	"internal/rdcn",
	"internal/tcp",
	"internal/core",
	"internal/cc",
	"internal/fault",
}

// nondeterministicPkgs are the layers explicitly OUTSIDE the determinism
// boundary: the serving daemon and live observability read wall clocks, spawn
// goroutines, and jitter backoffs by design. The boundary is one-way — they
// may import the simulation, never the reverse — so a deterministic package
// importing one of them is itself a finding.
var nondeterministicPkgs = []string{
	"internal/serve",
	"internal/obs",
	"cmd/tdserve",
}

// wallClockFuncs are the time package entry points that read or depend on the
// wall clock or a runtime timer. time.Duration arithmetic and ParseDuration
// stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// shardRuntimeDirective marks a file (in internal/sim only) as hosting the
// sharded engine's worker pool: the single sanctioned concurrency seam inside
// the determinism boundary. The directive carves out the go-statement rule
// for that file alone — every other determinism rule still applies — and is
// inert anywhere outside internal/sim, so a netem or tcp file cannot buy
// itself goroutines by pasting the comment.
const shardRuntimeDirective = "//lint:shardruntime"

// hasShardRuntimeDirective reports whether the file carries the
// //lint:shardruntime directive (as a directive comment, which
// CommentGroup.Text would strip, so individual comments are inspected).
func hasShardRuntimeDirective(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, shardRuntimeDirective) {
				return true
			}
		}
	}
	return false
}

// DeterminismCheck forbids the constructs that make a simulation run diverge
// between replays of the same seed: wall-clock reads, the process-global
// math/rand generator, goroutines, iteration over map order, and sync.Pool
// (whose reuse schedule depends on GC timing). One carve-out: internal/sim
// files marked //lint:shardruntime may use go statements, because the sharded
// engine's bounded worker pool is proven unobservable (byte-identical traces
// for every shard count) by the parity suite.
func DeterminismCheck() *Check {
	c := &Check{
		Name: "determinism",
		Doc:  "forbid wall-clock time, global math/rand, goroutines, map iteration, and sync.Pool in simulation packages",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			if !pathMatches(pkg.Path, deterministicPkgs...) {
				continue
			}
			for _, f := range pkg.Syntax {
				shardRuntime := pathMatches(pkg.Path, "internal/sim") && hasShardRuntimeDirective(f)
				for _, spec := range f.Imports {
					ip, _ := strconv.Unquote(spec.Path.Value)
					if pathMatches(ip, nondeterministicPkgs...) {
						diags = append(diags, Diagnostic{
							Pos:     prog.Fset.Position(spec.Pos()),
							Check:   c.Name,
							Message: "import of " + ip + " in a deterministic package: the serving/observability layer is outside the determinism boundary and may only import the simulation, never the reverse",
						})
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						if shardRuntime {
							break
						}
						diags = append(diags, Diagnostic{
							Pos:     prog.Fset.Position(n.Pos()),
							Check:   c.Name,
							Message: "go statement in a deterministic package: goroutine interleaving is not replayable; schedule work on the event loop (or, for the shard runtime only, mark the internal/sim file //lint:shardruntime)",
						})
					case *ast.RangeStmt:
						if _, ok := pkg.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
							diags = append(diags, Diagnostic{
								Pos:     prog.Fset.Position(n.Pos()),
								Check:   c.Name,
								Message: "range over a map in a deterministic package: iteration order varies between runs; collect and sort the keys first",
							})
						}
					case *ast.SelectorExpr:
						if d, ok := flagTimeOrGlobalRand(pkg, n); ok {
							d.Pos = prog.Fset.Position(n.Pos())
							d.Check = c.Name
							diags = append(diags, d)
						}
					}
					return true
				})
			}
		}
		return diags
	}
	return c
}

// flagTimeOrGlobalRand reports a use of a forbidden time function, of
// math/rand package-level state, or of sync.Pool through the selector
// expression sel.
func flagTimeOrGlobalRand(pkg *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return Diagnostic{}, false
	}
	// Only package-level selections (pkgname.Ident) matter here; method calls
	// like r.Intn on a local rand.Rand are fine.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return Diagnostic{}, false
	}
	if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); !isPkg {
		return Diagnostic{}, false
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			return Diagnostic{
				Message: "time." + obj.Name() + " in a deterministic package: wall-clock reads are not replayable; use the simulated clock",
			}, true
		}
	case "math/rand", "math/rand/v2":
		// Constructors for an explicitly seeded generator stay allowed; the
		// package-level functions and Source draw from process-global state.
		if strings.HasPrefix(obj.Name(), "New") {
			return Diagnostic{}, false
		}
		if _, isType := obj.(*types.TypeName); isType {
			return Diagnostic{}, false
		}
		return Diagnostic{
			Message: "global math/rand." + obj.Name() + " in a deterministic package: process-global generator is not seed-reproducible; use rand.New(rand.NewSource(seed))",
		}, true
	case "sync":
		// The pool sub-rule: sync.Pool hands buffers back on a schedule set
		// by the garbage collector, so buffer identity — and any latent
		// aliasing bug — differs between replays of the same seed.
		if obj.Name() == "Pool" {
			return Diagnostic{
				Message: "sync.Pool in a deterministic package: GC-timing-dependent reuse is not replayable; use a loop-owned free list (e.g. netem.BufPool)",
			}, true
		}
	}
	return Diagnostic{}, false
}
