package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// seqArithPkgs are the packages handling wrapping 32-bit sequence, ACK, DSN
// and epoch counters.
var seqArithPkgs = []string{
	"internal/tcp",
	"internal/packet",
	"internal/core",
	"internal/mptcp",
}

// seqHelperFuncs is the RFC 1982 helper family; raw comparisons are the point
// of these functions, so they are exempt.
var seqHelperFuncs = map[string]bool{
	"SeqLT": true, "SeqLEQ": true, "SeqGT": true, "SeqGEQ": true,
	"SeqMax": true, "SeqDiff": true,
	"seqLT": true, "seqLEQ": true, "seqGT": true, "seqGEQ": true,
	"seqMax": true, "seqDiff": true,
}

// seqNameFragments mark an identifier as carrying sequence-space semantics.
var seqNameFragments = []string{"seq", "ack", "epoch", "una", "nxt", "dsn", "sack"}

// seqNameExact are short names that carry sequence-space semantics in this
// codebase without containing one of the fragments.
var seqNameExact = map[string]bool{"start": true, "end": true}

// SeqArithCheck flags raw <, >, <=, >= comparisons between uint32 values with
// sequence-space names. Such comparisons are wrong once the counter wraps;
// the packet.SeqLT family implements the correct RFC 1982 signed-distance
// comparison.
func SeqArithCheck() *Check {
	c := &Check{
		Name: "seqarith",
		Doc:  "forbid raw ordering comparisons on wrapping uint32 sequence/epoch values; use the packet.SeqLT family",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			if !pathMatches(pkg.Path, seqArithPkgs...) {
				continue
			}
			for _, f := range pkg.Syntax {
				walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
					be, ok := n.(*ast.BinaryExpr)
					if !ok {
						return true
					}
					switch be.Op {
					case token.LSS, token.GTR, token.LEQ, token.GEQ:
					default:
						return true
					}
					if seqHelperFuncs[enclosingFuncName(stack)] {
						return true
					}
					if basicKind(pkg.Info.TypeOf(be.X)) != types.Uint32 ||
						basicKind(pkg.Info.TypeOf(be.Y)) != types.Uint32 {
						return true
					}
					if !hasSeqName(be.X) && !hasSeqName(be.Y) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     prog.Fset.Position(be.OpPos),
						Check:   c.Name,
						Message: "raw " + be.Op.String() + " on uint32 sequence-space values breaks at wraparound; use packet.Seq" + seqHelperFor(be.Op) + " (RFC 1982 arithmetic)",
					})
					return true
				})
			}
		}
		return diags
	}
	return c
}

func seqHelperFor(op token.Token) string {
	switch op {
	case token.LSS:
		return "LT"
	case token.LEQ:
		return "LEQ"
	case token.GTR:
		return "GT"
	default:
		return "GEQ"
	}
}

// hasSeqName reports whether any identifier, selector field, or called method
// inside e has a sequence-space name.
func hasSeqName(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		var name string
		switch n := n.(type) {
		case *ast.Ident:
			name = n.Name
		case *ast.SelectorExpr:
			name = n.Sel.Name
		default:
			return true
		}
		if isSeqName(name) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSeqName(name string) bool {
	lower := strings.ToLower(name)
	if seqNameExact[lower] {
		return true
	}
	for _, frag := range seqNameFragments {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}
