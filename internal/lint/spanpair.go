package lint

import (
	"go/ast"
	"go/types"
)

// SpanPairCheck enforces the causal-span lifecycle contract on the trace
// package's BeginSpan/EndSpan: a BeginSpan id that is discarded can never be
// ended (the span stays open in every export forever), and an id stored to a
// variable, slice element, or struct field must reach a matching EndSpan —
// in the same function for locals, anywhere in the package for fields, which
// is how cross-method lifecycles (recovery episodes, epoch occupancy) close
// their spans. Span categories must be built from the trace Cat* constants,
// mirroring the tracecat rule, or the span is invisible to every documented
// filter. Ids that escape via return or as a call argument are trusted: the
// receiver owns the End.
func SpanPairCheck() *Check {
	c := &Check{
		Name: "spanpair",
		Doc:  "every trace BeginSpan id must reach an EndSpan (discarded ids never close), with categories from trace.Cat* constants",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			ends := collectEndSinks(pkg)
			for _, f := range pkg.Syntax {
				walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if catPkg, ok := spanCallCategoryPkg(pkg, call, "EndSpan"); ok {
						diags = append(diags, checkSpanCategory(prog, pkg, c.Name, call, catPkg)...)
						return true
					}
					catPkg, ok := spanCallCategoryPkg(pkg, call, "BeginSpan")
					if !ok {
						return true
					}
					diags = append(diags, checkSpanCategory(prog, pkg, c.Name, call, catPkg)...)
					if msg, bad := beginSinkUnpaired(pkg, call, stack, ends); bad {
						diags = append(diags, Diagnostic{
							Pos:     prog.Fset.Position(call.Pos()),
							Check:   c.Name,
							Message: msg,
						})
					}
					return true
				})
			}
		}
		return diags
	}
	return c
}

// checkSpanCategory validates the category argument of a Begin/EndSpan call
// against the same constant-expression rule tracecat applies to Emit.
func checkSpanCategory(prog *Program, pkg *Package, check string, call *ast.CallExpr, catPkg *types.Package) []Diagnostic {
	if len(call.Args) == 0 || validCategoryArg(pkg, call.Args[0], catPkg) {
		return nil
	}
	return []Diagnostic{{
		Pos:     prog.Fset.Position(call.Args[0].Pos()),
		Check:   check,
		Message: "span category must be a constant expression over the " + catPkg.Name() + ".Cat* constants; ad-hoc categories defeat trace filtering",
	}}
}

// endSinks indexes, per package, every expression shape that ever feeds the
// id parameter of an EndSpan call: bare variables, struct fields, and the
// base slices of indexed ids. Object identity scopes locals to their
// function for free — a local's *types.Var cannot be referenced elsewhere.
type endSinks struct {
	vars   map[types.Object]bool // id
	fields map[types.Object]bool // x.id
	bases  map[types.Object]bool // ids[i]
}

func collectEndSinks(pkg *Package) endSinks {
	ends := endSinks{
		vars:   map[types.Object]bool{},
		fields: map[types.Object]bool{},
		bases:  map[types.Object]bool{},
	}
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := spanCallCategoryPkg(pkg, call, "EndSpan"); !ok {
				return true
			}
			arg := spanIDArg(pkg, call)
			if arg == nil {
				return true
			}
			switch e := ast.Unparen(arg).(type) {
			case *ast.Ident:
				if obj := pkg.Info.Uses[e]; obj != nil {
					ends.vars[obj] = true
				}
			case *ast.SelectorExpr:
				if obj := pkg.Info.Uses[e.Sel]; obj != nil {
					ends.fields[obj] = true
				}
			case *ast.IndexExpr:
				if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil {
						ends.bases[obj] = true
					}
				}
			}
			return true
		})
	}
	return ends
}

// beginSinkUnpaired classifies where a BeginSpan call's id goes and reports
// when that sink provably never reaches an EndSpan.
func beginSinkUnpaired(pkg *Package, call *ast.CallExpr, stack []ast.Node, ends endSinks) (string, bool) {
	if len(stack) == 0 {
		return "", false
	}
	const discarded = "BeginSpan id is discarded; the span can never be ended and stays open in every export"
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		return discarded, true
	case *ast.AssignStmt:
		lhs := assignTarget(parent, call)
		if lhs == nil {
			return "", false
		}
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return discarded, true
			}
			obj := pkg.Info.Defs[e]
			if obj == nil {
				obj = pkg.Info.Uses[e]
			}
			if obj != nil && !ends.vars[obj] {
				return "span id " + e.Name + " never reaches an EndSpan in this function", true
			}
		case *ast.SelectorExpr:
			if obj := pkg.Info.Uses[e.Sel]; obj != nil && !ends.fields[obj] {
				return "span id stored in " + e.Sel.Name + " never reaches an EndSpan in this package", true
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && !ends.bases[obj] {
					return "span ids stored in " + id.Name + " never reach an EndSpan in this package", true
				}
			}
		}
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if ast.Unparen(v) != call || i >= len(parent.Names) {
				continue
			}
			name := parent.Names[i]
			if name.Name == "_" {
				return discarded, true
			}
			if obj := pkg.Info.Defs[name]; obj != nil && !ends.vars[obj] {
				return "span id " + name.Name + " never reaches an EndSpan in this function", true
			}
		}
	}
	// Returns, call arguments, and composite shapes hand the id to an owner
	// this check cannot follow; trust them rather than guess.
	return "", false
}

// assignTarget returns the LHS expression an assignment stores call's result
// into, or nil when the shapes do not line up one-to-one.
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) ast.Expr {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if ast.Unparen(r) == call {
			return as.Lhs[i]
		}
	}
	return nil
}

// spanCallCategoryPkg reports whether call invokes a function or method with
// the given name, declared in a package named "trace", whose first parameter
// has named type Category — and if so, which package declares Category.
func spanCallCategoryPkg(pkg *Package, call *ast.CallExpr, name string) (*types.Package, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Name() != "trace" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil, false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Name() != "Category" {
		return nil, false
	}
	return named.Obj().Pkg(), true
}

// spanIDArg returns the argument bound to the call's SpanID parameter (the
// id of an EndSpan), located by parameter type rather than position.
func spanIDArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		named, ok := sig.Params().At(i).Type().(*types.Named)
		if ok && named.Obj().Name() == "SpanID" {
			return call.Args[i]
		}
	}
	return nil
}
