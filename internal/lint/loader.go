package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LoadError reports a failure to load or typecheck the target packages. The
// CLI maps it to exit code 2, keeping "the tree is broken" distinct from
// "the tree has findings".
type LoadError struct {
	Stage string // "go list", "parse", "typecheck"
	Err   error
}

func (e *LoadError) Error() string { return fmt.Sprintf("lint: %s: %v", e.Stage, e.Err) }
func (e *LoadError) Unwrap() error { return e.Err }

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load loads, parses and typechecks the packages matching the go package
// patterns (e.g. "./...") in dir, plus export data for everything they
// import, by shelling out to `go list -json -export -deps`. Only non-standard
// module packages become Program members; dependencies are consumed as
// compiler export data, so loading needs no third-party machinery.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-json=ImportPath,Dir,GoFiles,Export,Standard,Module,Error", "-export", "-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, &LoadError{Stage: "go list", Err: fmt.Errorf("%s", msg)}
	}

	exports, targets, err := parseGoList(out)
	if err != nil {
		return nil, err
	}

	absDir, err := filepath.Abs(dir)
	if err != nil {
		absDir = dir
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{Fset: fset, Dir: absDir}
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, &LoadError{Stage: "parse", Err: err}
			}
			files = append(files, f)
		}
		pkg, err := typecheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// parseGoList decodes the concatenated-JSON stream `go list -json -export
// -deps` writes, splitting it into export-data paths (every package) and
// load targets (non-standard module packages). Package-level list errors and
// malformed JSON both surface as "go list"-stage LoadErrors, which the CLI
// maps to exit 2.
func parseGoList(out []byte) (exports map[string]string, targets []listPackage, err error) {
	exports = map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, &LoadError{Stage: "go list", Err: err}
		}
		if p.Error != nil {
			return nil, nil, &LoadError{Stage: "go list", Err: fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)}
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	return exports, targets, nil
}

// LoadDirs loads one package per directory, resolving imports of other given
// directories from source and everything else from toolchain export data
// fetched with one `go list -export` invocation. It exists for fixture trees
// laid out GOPATH-style (testdata/src/<import/path>/...): root is the "src"
// directory and dirs are import paths relative to it.
func LoadDirs(root string, dirs ...string) (*Program, error) {
	fset := token.NewFileSet()
	l := &sourceLoader{
		fset:    fset,
		root:    root,
		checked: map[string]*Package{},
	}

	// Parse every requested package up front to discover the full stdlib
	// import set, then fetch export data for all of it in one go invocation.
	var all []string
	seen := map[string]bool{}
	var gather func(path string) error
	gather = func(path string) error {
		if seen[path] {
			return nil
		}
		seen[path] = true
		files, err := l.parseDir(path)
		if err != nil {
			return err
		}
		l.parsed[path] = files
		for _, f := range files {
			for _, spec := range f.Imports {
				ip, _ := strconv.Unquote(spec.Path.Value)
				if l.isSource(ip) {
					if err := gather(ip); err != nil {
						return err
					}
				} else if !seen["ext:"+ip] {
					seen["ext:"+ip] = true
					all = append(all, ip)
				}
			}
		}
		return nil
	}
	l.parsed = map[string][]*ast.File{}
	for _, d := range dirs {
		if err := gather(d); err != nil {
			return nil, err
		}
	}
	sort.Strings(all)
	exports, err := listExports(all)
	if err != nil {
		return nil, err
	}
	l.imp = exportImporter(fset, exports)

	prog := &Program{Fset: fset}
	for _, d := range dirs {
		pkg, err := l.load(d)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// listExports fetches export-data file paths for the given import paths (and
// their dependencies) with one `go list` call. An empty path list is a no-op.
func listExports(paths []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-json=ImportPath,Export", "-export", "-deps"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, &LoadError{Stage: "go list", Err: fmt.Errorf("%s", msg)}
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, &LoadError{Stage: "go list", Err: err}
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// sourceLoader typechecks GOPATH-style source packages under root, chaining
// to an export-data importer for everything else.
type sourceLoader struct {
	fset    *token.FileSet
	root    string
	parsed  map[string][]*ast.File
	checked map[string]*Package
	imp     types.Importer
}

func (l *sourceLoader) isSource(importPath string) bool {
	st, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(importPath)))
	return err == nil && st.IsDir()
}

func (l *sourceLoader) parseDir(importPath string) ([]*ast.File, error) {
	dir := filepath.Join(l.root, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, &LoadError{Stage: "parse", Err: err}
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, &LoadError{Stage: "parse", Err: err}
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, &LoadError{Stage: "parse", Err: fmt.Errorf("no Go files in %s", dir)}
	}
	return files, nil
}

// Import implements types.Importer over the fixture tree.
func (l *sourceLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isSource(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.imp.Import(path)
}

func (l *sourceLoader) load(importPath string) (*Package, error) {
	if pkg, ok := l.checked[importPath]; ok {
		return pkg, nil
	}
	files := l.parsed[importPath]
	if files == nil {
		var err error
		if files, err = l.parseDir(importPath); err != nil {
			return nil, err
		}
	}
	pkg, err := typecheck(l.fset, importPath, files, l)
	if err != nil {
		return nil, err
	}
	l.checked[importPath] = pkg
	return pkg, nil
}

// exportImporter returns a types.Importer reading compiler export data from
// the file paths reported by `go list -export`.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck runs go/types over one package's files.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, &LoadError{Stage: "typecheck", Err: err}
	}
	return &Package{Path: path, Fset: fset, Syntax: files, Types: tpkg, Info: info}, nil
}
