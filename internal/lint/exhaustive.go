package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveCheck enforces total handling of enum-like const groups: a switch
// whose tag has a defined type with two or more package-level constants of
// that exact type must either list every constant or carry a default clause.
// The repository's enums — experiments.Variant, serve.State, serve.Kind — are
// where a silently-unhandled new member turns into a wrong result instead of
// a build break; the trace categories and fault kinds are bitmasks and string
// keys respectively and stay out of scope by construction (no defined-type
// switch tags).
//
// A default clause is the in-language acknowledgment that the switch
// deliberately handles "everything else"; a switch that enumerates a strict
// subset with no fallback is the bug this check exists for. Use
// //lint:ignore exhaustive <why> for a switch that must stay partial.
func ExhaustiveCheck() *Check {
	c := &Check{
		Name: "exhaustive",
		Doc:  "switches over enum-like const groups must cover every constant or carry a default clause",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					if d, ok := checkSwitch(prog, pkg, sw); ok {
						d.Check = c.Name
						diags = append(diags, d)
					}
					return true
				})
			}
		}
		return diags
	}
	return c
}

// checkSwitch analyzes one tagged switch statement against the const group
// of its tag type.
func checkSwitch(prog *Program, pkg *Package, sw *ast.SwitchStmt) (Diagnostic, bool) {
	tagType := pkg.Info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok {
		return Diagnostic{}, false
	}
	// Only enum-like basics qualify; switching over a named struct or
	// interface has no const group.
	if basicKind(named) == types.Invalid || basicKind(named) == types.Bool {
		return Diagnostic{}, false
	}
	group := constGroup(named)
	if len(group) < 2 {
		return Diagnostic{}, false
	}

	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return Diagnostic{}, false // default clause: subset is deliberate
		}
		for _, e := range cc.List {
			tv, ok := pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case expression makes coverage undecidable;
				// stay silent rather than guess.
				return Diagnostic{}, false
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for _, c := range group {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	sort.Strings(missing)
	return Diagnostic{
		Pos: prog.Fset.Position(sw.Pos()),
		Message: fmt.Sprintf("switch over %s misses %s and has no default clause; handle them or add a default",
			named.Obj().Name(), strings.Join(missing, ", ")),
	}, true
}

// constGroup returns the package-level constants declared with exactly the
// named type, in the declaring package — whether that package is part of the
// program or was loaded from export data.
func constGroup(named *types.Named) []*types.Const {
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return nil // builtin (error) or universe type
	}
	var group []*types.Const
	scope := declPkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			group = append(group, c)
		}
	}
	return group
}
