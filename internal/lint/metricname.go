package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

var (
	// metricFullRe is the convention for fully constant metric names:
	// a package-ish prefix, then dot-separated snake_case segments.
	metricFullRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z0-9_]+)+$`)
	// metricFragRe constrains the constant fragments of a partly dynamic
	// name.
	metricFragRe = regexp.MustCompile(`^[a-z0-9_.]*$`)
	// metricPrefixRe requires a partly dynamic name to open with a constant
	// "pkg." prefix, so names stay groupable.
	metricPrefixRe = regexp.MustCompile(`^[a-z][a-z0-9]*\.`)
	// sprintfVerbRe matches one fmt verb; the pieces between verbs are
	// constant fragments.
	sprintfVerbRe = regexp.MustCompile(`%[-+ #0]*[0-9]*(\.[0-9]+)?[a-zA-Z]`)
)

// MetricNameCheck enforces the pkg.snake_case convention on names passed to
// the trace Registry's Add, Set and Hist. Names that do not parse as
// "prefix.segment[.segment...]" fall out of every dashboard grouping, and
// fully dynamic names make cardinality unbounded — doubly so for histograms,
// where every name is a full bucket array.
func MetricNameCheck() *Check {
	c := &Check{
		Name: "metricname",
		Doc:  "metric names passed to Registry.Add/Set/Hist must follow the pkg.snake_case convention with a constant prefix",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if !isRegistryAddSet(pkg, call) || len(call.Args) == 0 {
						return true
					}
					if msg, bad := badMetricName(pkg, call.Args[0]); bad {
						diags = append(diags, Diagnostic{
							Pos:     prog.Fset.Position(call.Args[0].Pos()),
							Check:   c.Name,
							Message: msg,
						})
					}
					return true
				})
			}
		}
		return diags
	}
	return c
}

// isRegistryAddSet reports whether call invokes method Add, Set or Hist on
// the trace package's Registry type.
func isRegistryAddSet(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || (fn.Name() != "Add" && fn.Name() != "Set" && fn.Name() != "Hist") {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Name() != "trace" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// namePiece is one flattened fragment of a metric-name expression: either a
// compile-time constant string or a dynamic hole.
type namePiece struct {
	text    string
	isConst bool
}

// badMetricName validates the flattened name expression against the
// convention, returning a message when it fails.
func badMetricName(pkg *Package, arg ast.Expr) (string, bool) {
	pieces := flattenName(pkg, arg)
	constCount := 0
	full := ""
	for _, p := range pieces {
		if p.isConst {
			constCount++
			full += p.text
		}
	}
	switch {
	case constCount == len(pieces):
		if !metricFullRe.MatchString(full) {
			return "metric name \"" + full + "\" does not match the pkg.snake_case convention", true
		}
	case constCount == 0:
		return "metric name is entirely dynamic; start it with a constant \"pkg.\" prefix so it stays groupable", true
	default:
		if !pieces[0].isConst || !metricPrefixRe.MatchString(pieces[0].text) {
			return "dynamic metric name must start with a constant \"pkg.\" prefix", true
		}
		for _, p := range pieces {
			if p.isConst && !metricFragRe.MatchString(p.text) {
				return "metric name fragment \"" + p.text + "\" contains characters outside [a-z0-9_.]", true
			}
		}
	}
	return "", false
}

// flattenName decomposes a metric-name expression into constant fragments and
// dynamic holes, looking through string concatenation, string constants, and
// fmt.Sprintf with a constant format.
func flattenName(pkg *Package, e ast.Expr) []namePiece {
	if s, ok := constString(pkg, e); ok {
		return []namePiece{{text: s, isConst: true}}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return flattenName(pkg, e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return append(flattenName(pkg, e.X), flattenName(pkg, e.Y)...)
		}
	case *ast.CallExpr:
		if isSprintf(pkg, e) && len(e.Args) > 0 {
			if format, ok := constString(pkg, e.Args[0]); ok {
				return splitSprintf(format)
			}
		}
	}
	return []namePiece{{isConst: false}}
}

// constString returns the value of a compile-time constant string expression.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func isSprintf(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Sprintf" && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

// splitSprintf turns a constant format string into alternating constant
// fragments and one hole per verb.
func splitSprintf(format string) []namePiece {
	frags := sprintfVerbRe.Split(format, -1)
	pieces := make([]namePiece, 0, 2*len(frags))
	for i, frag := range frags {
		if i > 0 {
			pieces = append(pieces, namePiece{isConst: false})
		}
		pieces = append(pieces, namePiece{text: frag, isConst: true})
	}
	return pieces
}
