package lint

import (
	"go/ast"
	"go/types"
)

// TraceCatCheck requires the category argument of trace Emit calls to be
// built from the named Category constants. Category filtering is a bitmask
// test against those constants; an Emit with an ad-hoc numeric category is
// invisible to every documented filter.
func TraceCatCheck() *Check {
	c := &Check{
		Name: "tracecat",
		Doc:  "trace Emit category arguments must be built from trace.Cat* constants",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					catPkg, ok := emitCategoryPkg(pkg, call)
					if !ok || len(call.Args) == 0 {
						return true
					}
					if validCategoryArg(pkg, call.Args[0], catPkg) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     prog.Fset.Position(call.Args[0].Pos()),
						Check:   c.Name,
						Message: "Emit category must be a constant expression over the " + catPkg.Name() + ".Cat* constants; ad-hoc categories defeat trace filtering",
					})
					return true
				})
			}
		}
		return diags
	}
	return c
}

// emitCategoryPkg reports whether call invokes a function or method named
// Emit, declared in a package named "trace", whose first parameter has named
// type Category — and if so, which package declares Category.
func emitCategoryPkg(pkg *Package, call *ast.CallExpr) (*types.Package, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Name() != "Emit" || fn.Pkg() == nil || fn.Pkg().Name() != "trace" {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil, false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok || named.Obj().Name() != "Category" {
		return nil, false
	}
	return named.Obj().Pkg(), true
}

// validCategoryArg reports whether arg is a compile-time constant whose
// constant identifiers all come from catPkg (at least one of them).
func validCategoryArg(pkg *Package, arg ast.Expr, catPkg *types.Package) bool {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil {
		return false
	}
	catConsts, otherConsts := 0, 0
	ast.Inspect(arg, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		cst, ok := pkg.Info.Uses[id].(*types.Const)
		if !ok {
			return true
		}
		if cst.Pkg() == catPkg {
			catConsts++
		} else {
			otherConsts++
		}
		return true
	})
	return catConsts > 0 && otherConsts == 0
}
