package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestConcurrencyFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "concurrency"), "h/internal/serve")
}

func TestSimTimeFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "simtime"), "i/internal/sim", "i/internal/tcp")
}

func TestExhaustiveFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "exhaustive"), "j/states")
}

// TestHotPathFixtureNeedsModule pins the failure mode of running the hotpath
// check on a GOPATH-style load: a directive with no module to build against
// is a finding, not a silent pass.
func TestHotPathFixtureNeedsModule(t *testing.T) {
	checkFixture(t, selectChecks(t, "hotpath"), "k/hot")
}

// hotModFiles is a minimal module with one escape-clean hot function and one
// deliberately regressed one: Box returns its argument boxed in an
// interface, which the escape analysis reports as a heap allocation.
var hotModFiles = map[string]string{
	"go.mod": "module hotfix.example/m\n\ngo 1.24\n",
	"hot/clean.go": `package hot

//lint:hotpath summing stays on the stack
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
`,
	"hot/regressed.go": `package hot

//lint:hotpath deliberately regressed: boxing allocates
func Box(i int) any {
	return i
}
`,
	// batch.go mirrors the shape of the real per-(host,TDN) batch-delivery
	// hot path (a value-struct frame slice walked in one call): the frame
	// stays a stack value through the loop, but storing it into an interface
	// field boxes a copy per frame — exactly the regression the annotation on
	// the real batch functions exists to catch.
	"hot/batch.go": `package hot

type Frame struct {
	Src, Dst, Len int
	Payload       []byte
}

type Sink struct{ Last any }

//lint:hotpath deliberately regressed: boxing a frame per batch entry
func DeliverBatch(s *Sink, fs []Frame, tdn int) int {
	n := 0
	for _, f := range fs {
		n += f.Len
		s.Last = f
	}
	return n
}
`,
}

// TestHotPathModule runs the hotpath check against a real throwaway module:
// each deliberately regressed function — scalar boxing in Box, per-frame
// boxing inside the batch-delivery-shaped DeliverBatch loop — must produce a
// finding attributed to it; the clean function must not.
func TestHotPathModule(t *testing.T) {
	dir := t.TempDir()
	for path, content := range hotModFiles {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, selectChecks(t, "hotpath"))
	if len(diags) == 0 {
		t.Fatal("regressed hot functions produced no finding")
	}
	hit := map[string]bool{}
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "Box"):
			hit["Box"] = true
		case strings.Contains(d.Message, "DeliverBatch"):
			hit["DeliverBatch"] = true
		default:
			t.Errorf("finding outside the regressed functions: %s", d)
		}
		if d.Check != "hotpath" {
			t.Errorf("finding under wrong check: %s", d)
		}
	}
	for _, want := range []string{"Box", "DeliverBatch"} {
		if !hit[want] {
			t.Errorf("regressed function %s produced no finding", want)
		}
	}
}

// TestParseEscapes pins the -m=1 output grammar the hotpath check depends
// on: allocation messages in, inlining/param-leak noise out, relative paths
// resolved against the build directory.
func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# example.com/m/hot",
		"hot/a.go:5:9: new(T) escapes to heap",
		"hot/a.go:7:2: moved to heap: buf",
		"hot/a.go:9:14: make([]byte, 0, n) does not escape",
		"hot/a.go:11:6: can inline fire",
		"hot/a.go:13:20: leaking param: fn",
		"/abs/b.go:3:4: composite literal escapes to heap",
		"not a diagnostic line",
		"",
	}, "\n")
	allocs := parseEscapes("/work", out)
	if len(allocs) != 3 {
		t.Fatalf("got %d allocs, want 3: %+v", len(allocs), allocs)
	}
	if allocs[0].file != filepath.Join("/work", "hot", "a.go") || allocs[0].line != 5 || allocs[0].col != 9 {
		t.Errorf("bad first alloc: %+v", allocs[0])
	}
	if allocs[1].msg != "moved to heap: buf" {
		t.Errorf("bad second alloc: %+v", allocs[1])
	}
	if allocs[2].file != "/abs/b.go" {
		t.Errorf("absolute path not preserved: %+v", allocs[2])
	}
}

func TestIsAllocMsg(t *testing.T) {
	cases := []struct {
		msg  string
		want bool
	}{
		{"new(T) escapes to heap", true},
		{"&Loop{...} escapes to heap", true},
		{"moved to heap: rng", true},
		{"make([]byte, 0, n) does not escape", false},
		{"leaking param: fn", false},
		{"can inline (*Loop).Step", false},
	}
	for _, c := range cases {
		if got := isAllocMsg(c.msg); got != c.want {
			t.Errorf("isAllocMsg(%q) = %v, want %v", c.msg, got, c.want)
		}
	}
}

// TestParseGoListMalformed pins the loader's first failure stage: a truncated
// or corrupt `go list` stream is a "go list" LoadError, never a panic.
func TestParseGoListMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"truncated": `{"ImportPath": "x", "Dir"`,
		"non-json":  "go: error loading module",
	} {
		_, _, err := parseGoList([]byte(in))
		le, ok := err.(*LoadError)
		if !ok || le.Stage != "go list" {
			t.Errorf("%s: got %v, want go list LoadError", name, err)
		}
	}
}

// TestParseGoListPackageError asserts a package-level Error entry (a broken
// import, say) surfaces as a load failure even though the stream is valid.
func TestParseGoListPackageError(t *testing.T) {
	in := `{"ImportPath": "x", "Error": {"Err": "no required module provides package x"}}`
	_, _, err := parseGoList([]byte(in))
	le, ok := err.(*LoadError)
	if !ok || le.Stage != "go list" || !strings.Contains(le.Error(), "no required module") {
		t.Errorf("got %v, want go list LoadError carrying the package error", err)
	}
}

// TestParseGoListSplit asserts the stream splits into exports (all packages)
// and targets (non-standard module packages only).
func TestParseGoListSplit(t *testing.T) {
	in := `{"ImportPath": "fmt", "Standard": true, "Export": "/cache/fmt.a"}
{"ImportPath": "example.com/m/pkg", "Dir": "/m/pkg", "GoFiles": ["a.go"], "Export": "/cache/pkg.a", "Module": {"Path": "example.com/m"}}`
	exports, targets, err := parseGoList([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if exports["fmt"] != "/cache/fmt.a" || exports["example.com/m/pkg"] != "/cache/pkg.a" {
		t.Errorf("bad exports: %v", exports)
	}
	if len(targets) != 1 || targets[0].ImportPath != "example.com/m/pkg" {
		t.Errorf("bad targets: %+v", targets)
	}
}

// TestMissingExportData drives typecheck through an importer with no export
// data at all: the failure must come back as a typecheck LoadError carrying
// the missing path, not a panic deep in go/importer.
func TestMissingExportData(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", "package p\n\nimport \"fmt\"\n\nvar _ = fmt.Sprint\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = typecheck(fset, "p", []*ast.File{f}, exportImporter(fset, map[string]string{}))
	le, ok := err.(*LoadError)
	if !ok || le.Stage != "typecheck" || !strings.Contains(le.Error(), "no export data") {
		t.Fatalf("got %v, want typecheck LoadError about missing export data", err)
	}
}

// TestLoadDirsTypecheckFailure asserts a type error in fixture sources is a
// typecheck-stage LoadError.
func TestLoadDirsTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "bad")
	if err := os.MkdirAll(src, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "a.go"),
		[]byte("package bad\n\nvar x int = \"not an int\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDirs(dir, "bad")
	le, ok := err.(*LoadError)
	if !ok || le.Stage != "typecheck" {
		t.Fatalf("got %v, want typecheck LoadError", err)
	}
}
