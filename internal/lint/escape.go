package lint

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// escapeAlloc is one compiler-reported heap allocation: the position it was
// reported at and the compiler's own message ("new(T) escapes to heap",
// "moved to heap: buf", ...).
type escapeAlloc struct {
	file string // absolute path
	line int
	col  int
	msg  string
}

// escapeAnalysis compiles the given packages with -gcflags=-m=1 and returns
// every heap allocation the escape analysis reports, keyed by file. The
// compile runs through the ordinary build cache: the first invocation pays
// for a real compile, later ones replay the recorded diagnostics (Go ≥ 1.21
// replays cached compiler output), so a clean re-lint costs no compile time.
//
// -m=1 output is line oriented: "path:line:col: message". Three message
// families mean a heap allocation — "escapes to heap" (new/make/composite
// literals, boxed interfaces, escaping func literals), "moved to heap: x"
// (a stack variable forced to the heap), and nothing else; in particular
// "does not escape" and "leaking param" lines are not allocations and
// "can inline" is unrelated.
func escapeAnalysis(dir string, pkgPaths []string) ([]escapeAlloc, error) {
	args := append([]string{"build", "-gcflags=-m=1"}, pkgPaths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=1: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	return parseEscapes(dir, stderr.String()), nil
}

// parseEscapes extracts allocation reports from -m=1 compiler output.
// Relative paths are resolved against dir (go build reports paths relative
// to its working directory).
func parseEscapes(dir, out string) []escapeAlloc {
	var allocs []escapeAlloc
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, pos, msg, ok := splitDiagLine(line)
		if !ok || !isAllocMsg(msg) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		allocs = append(allocs, escapeAlloc{file: file, line: pos[0], col: pos[1], msg: msg})
	}
	return allocs
}

// splitDiagLine splits "path:line:col: message"; the two numeric fields
// anchor the parse.
func splitDiagLine(line string) (file string, pos [2]int, msg string, ok bool) {
	sp := strings.Index(line, ": ")
	if sp < 0 {
		return "", pos, "", false
	}
	head, tail := line[:sp], line[sp+2:]
	parts := strings.Split(head, ":")
	if len(parts) < 3 {
		return "", pos, "", false
	}
	l, err1 := strconv.Atoi(parts[len(parts)-2])
	c, err2 := strconv.Atoi(parts[len(parts)-1])
	if err1 != nil || err2 != nil {
		return "", pos, "", false
	}
	return strings.Join(parts[:len(parts)-2], ":"), [2]int{l, c}, tail, true
}

// isAllocMsg reports whether a -m=1 message describes a heap allocation.
func isAllocMsg(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}
