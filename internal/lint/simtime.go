package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// simTimePkgs are the packages whose every time quantity is virtual: the
// deterministic core plus the layers that compute over its results with sim
// units (experiments, workload generation, statistics). The serving and
// observability layers deal in wall clocks by design and stay out of scope.
var simTimePkgs = append([]string{
	"internal/experiments",
	"internal/workload",
	"internal/stats",
	"internal/mptcp",
	"internal/invariant",
	"internal/packet",
}, deterministicPkgs...)

// unitSuffixRe matches identifier names that smell like a raw time quantity
// in a specific unit ("timeoutMs", "delay_us", "gapNanos"). The unit token
// must sit on a word boundary — after an underscore, or capitalized after a
// lowercase/digit camel hump — so English plurals ("TDNs", "reinjections")
// and acronyms do not trip it. Such a value belongs in sim.Dur, where the
// unit is fixed at nanoseconds by the type.
var unitSuffixRe = regexp.MustCompile(
	`([a-z0-9]|_)_(ms|us|ns|sec|msec|usec|nsec|millis|micros|nanos)$` + // snake_case
		`|[a-z0-9](Ms|Us|Ns|Sec|Msec|Usec|Nsec|Millis|Micros|Nanos)$` + // camelCase
		`|^(msec|usec|nsec|millis|micros|nanos)$`) // bare unit name

// SimTimeCheck keeps virtual time in sim.Time/sim.Dur inside the simulation
// boundary: no time.Time/time.Duration in sim-boundary packages (a wall-clock
// quantity there is a unit bug waiting to replay differently), no raw integer
// declarations whose names carry a unit suffix (the unit belongs in the
// type), and no adding or subtracting two sim.Time values directly (a point
// plus a point is meaningless — use Add/Sub, which force the Time/Dur
// distinction).
func SimTimeCheck() *Check {
	c := &Check{
		Name: "simtime",
		Doc:  "sim-boundary packages must use sim.Time/sim.Dur: no time.Duration/time.Time, no unit-suffixed raw ints, no Time±Time arithmetic",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			if !pathMatches(pkg.Path, simTimePkgs...) {
				continue
			}
			for _, f := range pkg.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						if d, ok := flagWallType(pkg, n); ok {
							d.Pos = prog.Fset.Position(n.Pos())
							d.Check = c.Name
							diags = append(diags, d)
						}
					case *ast.Ident:
						if d, ok := flagUnitName(pkg, n); ok {
							d.Pos = prog.Fset.Position(n.Pos())
							d.Check = c.Name
							diags = append(diags, d)
						}
					case *ast.BinaryExpr:
						// The sim package itself implements Add/Sub; its two
						// conversions are the one legitimate site.
						if pathMatches(pkg.Path, "internal/sim") {
							return true
						}
						if d, ok := flagTimeArith(pkg, n); ok {
							d.Pos = prog.Fset.Position(n.Pos())
							d.Check = c.Name
							diags = append(diags, d)
						}
					}
					return true
				})
			}
		}
		return diags
	}
	return c
}

// flagWallType reports a reference to time.Duration or time.Time — as a
// type, in a conversion, in a signature — inside a sim-boundary package.
func flagWallType(pkg *Package, sel *ast.SelectorExpr) (Diagnostic, bool) {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.TypeName)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return Diagnostic{}, false
	}
	switch obj.Name() {
	case "Duration":
		return Diagnostic{Message: "time.Duration in a sim-boundary package: virtual spans are sim.Dur (int64 ns); wall-clock durations stop at the serve/obs layer"}, true
	case "Time":
		return Diagnostic{Message: "time.Time in a sim-boundary package: virtual instants are sim.Time; wall clocks stop at the serve/obs layer"}, true
	}
	return Diagnostic{}, false
}

// flagUnitName reports a declaration of a raw-integer variable, field,
// parameter, or result whose name ends in a time-unit suffix. Constants are
// exempt (unit-named tuning constants like defaultRTOms would be caught at
// their use sites) — but declared vars and struct fields are where the
// ambiguity lives.
func flagUnitName(pkg *Package, id *ast.Ident) (Diagnostic, bool) {
	obj, ok := pkg.Info.Defs[id].(*types.Var)
	if !ok || obj.Name() == "_" {
		return Diagnostic{}, false
	}
	if !unitSuffixRe.MatchString(obj.Name()) {
		return Diagnostic{}, false
	}
	// Only raw (untyped-by-name) integers are findings: sim.Dur, sim.Time,
	// and other defined types carry their unit in the type.
	t := obj.Type()
	if _, isNamed := t.(*types.Named); isNamed {
		return Diagnostic{}, false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Message: "raw integer " + obj.Name() + " carries a time unit in its name; make it sim.Dur (or sim.Time) so the unit lives in the type",
	}, true
}

// flagTimeArith reports direct + or - between two sim.Time operands.
func flagTimeArith(pkg *Package, be *ast.BinaryExpr) (Diagnostic, bool) {
	if be.Op != token.ADD && be.Op != token.SUB {
		return Diagnostic{}, false
	}
	if !isSimTime(pkg.Info.TypeOf(be.X)) || !isSimTime(pkg.Info.TypeOf(be.Y)) {
		return Diagnostic{}, false
	}
	op := "adding"
	hint := "a point plus a point is meaningless; use t.Add(d sim.Dur)"
	if be.Op == token.SUB {
		op = "subtracting"
		hint = "the difference of two instants is a span; use t.Sub(u), which returns sim.Dur"
	}
	return Diagnostic{Message: op + " two sim.Time values directly: " + hint}, true
}

// isSimTime reports whether t is the sim package's Time type (matched by
// path suffix so fixture trees with their own internal/sim behave like the
// real module).
func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		(obj.Pkg().Path() == "internal/sim" || strings.HasSuffix(obj.Pkg().Path(), "/internal/sim"))
}
