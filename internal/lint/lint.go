// Package lint is a pure-stdlib static analyzer framework enforcing the
// contracts this repository's correctness rests on but the compiler cannot
// see: byte-identical replay from a seed (the paper's controlled-repetition
// methodology), RFC 1982 serial-number arithmetic on wrapping 32-bit
// sequence/epoch counters, nil-safety of the fault/trace hook fields, total
// trace-category filtering, the pkg.snake_case metric-name convention, and
// the Begin/End pairing discipline of causal spans.
//
// The framework is deliberately go/packages-free: packages are loaded by
// shelling out to `go list -json -export -deps` (see loader.go) and
// typechecked with go/types against the toolchain's export data, so tdlint
// needs nothing outside the standard library and an installed go toolchain.
//
// # Suppression
//
// A finding is suppressed with a justified ignore comment on the flagged
// line, or alone on the line directly above it:
//
//	//lint:ignore seqarith epoch distance is bounded by the handshake
//
// The first word after "ignore" is a comma-separated list of check names
// ("*" matches every check); everything after it is the mandatory
// justification. An ignore comment without a justification is itself
// reported, so suppressions stay documented.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset positions every syntax node of the program.
	Fset *token.FileSet
	// Syntax holds the parsed files, comments included.
	Syntax []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// Info holds the typechecker's results for Syntax.
	Info *types.Info
}

// Program is a set of loaded packages checked together. Checks run over the
// whole program so they can correlate declarations in one package with uses
// in another (the nilhook check needs this for cross-package hook fields,
// the exhaustive check for const groups declared away from their switches).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Dir is the absolute module directory the program was loaded from, or
	// "" for GOPATH-style fixture loads (LoadDirs). The hotpath check needs
	// it to run the compiler's escape analysis over the real build.
	Dir string
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// MarshalJSON renders the finding as a flat object for CI consumption.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message})
}

// Check is one analyzer: a name for -checks selection and ignore comments, a
// one-line contract description, and the analysis itself.
type Check struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// All returns every registered check, in stable order.
func All() []*Check {
	return []*Check{
		DeterminismCheck(),
		SeqArithCheck(),
		NilHookCheck(),
		TraceCatCheck(),
		MetricNameCheck(),
		SpanPairCheck(),
		ConcurrencyCheck(),
		HotPathCheck(),
		SimTimeCheck(),
		ExhaustiveCheck(),
	}
}

// Select resolves a comma-separated -checks list against the registry.
// The empty string selects every check.
func Select(list string) ([]*Check, error) {
	all := All()
	if strings.TrimSpace(list) == "" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(checkNames(all), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

func checkNames(cs []*Check) []string {
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.Name
	}
	return names
}

// Run executes the checks over the program, filters suppressed findings, and
// returns the survivors sorted by position. Malformed ignore comments are
// reported under the pseudo-check "ignore".
func Run(prog *Program, checks []*Check) []Diagnostic {
	var diags []Diagnostic
	for _, c := range checks {
		ds := c.Run(prog)
		for i := range ds {
			if ds[i].Check == "" {
				ds[i].Check = c.Name
			}
		}
		diags = append(diags, ds...)
	}
	sup, bad := collectSuppressions(prog)
	diags = append(diags, bad...)
	out := diags[:0]
	for _, d := range diags {
		if !sup.matches(d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}

// WriteText renders findings one per line.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}

// WriteJSON renders findings as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(diags)
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	checks []string // check names, or ["*"]
	lines  [2]int   // lines it covers (comment line, and next line when standalone)
}

type suppressionIndex map[string][]suppression // filename → suppressions

func (idx suppressionIndex) matches(d Diagnostic) bool {
	for _, s := range idx[d.Pos.Filename] {
		if d.Pos.Line != s.lines[0] && d.Pos.Line != s.lines[1] {
			continue
		}
		for _, c := range s.checks {
			if c == "*" || c == d.Check {
				return true
			}
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions scans every file's comments for //lint:ignore
// directives. A directive on a code line covers that line; a directive alone
// on its line covers the following line too. Directives missing a check list
// or a justification are returned as findings.
func collectSuppressions(prog *Program) (suppressionIndex, []Diagnostic) {
	idx := suppressionIndex{}
	var bad []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Pos:     pos,
							Check:   "ignore",
							Message: "malformed ignore comment: want //lint:ignore <check>[,<check>] <justification>",
						})
						continue
					}
					idx[pos.Filename] = append(idx[pos.Filename], suppression{
						checks: strings.Split(fields[0], ","),
						lines:  [2]int{pos.Line, pos.Line + 1},
					})
				}
			}
		}
	}
	return idx, bad
}

// --- shared AST helpers ------------------------------------------------------

// pathMatches reports whether the package import path ends with one of the
// given repo-relative package suffixes (e.g. "internal/tcp"), so checks scope
// themselves identically against the real module and fixture trees.
func pathMatches(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// walkWithStack traverses the subtree keeping the ancestor chain: fn receives
// each node together with its ancestors, outermost first. Returning false
// prunes the subtree.
func walkWithStack(f ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// enclosingFuncName returns the name of the innermost enclosing function
// declaration, or "" inside function literals and at file scope.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// basicKind returns the underlying basic kind of t (types.Invalid when t is
// not a basic type).
func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}
