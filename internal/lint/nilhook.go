package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hookMarkers are the doc-comment phrases that declare a func-valued struct
// field as an optional hook: callers must treat it as nil-able.
var hookMarkers = []string{"when non-nil", "if non-nil", "if set", "when set", "lint:hook"}

// NilHookCheck flags calls through optional func-valued struct fields (fault
// injection and trace hooks) that are not dominated by a nil check. A field is
// a hook when its declaration comment says it is optional (see hookMarkers).
func NilHookCheck() *Check {
	c := &Check{
		Name: "nilhook",
		Doc:  "require a nil guard before calling optional func-valued hook fields",
	}
	c.Run = func(prog *Program) []Diagnostic {
		// Phase 1: collect hook fields program-wide. Keyed by package path
		// plus field name so identity survives the source/export-data
		// boundary between packages.
		hooks := map[string]bool{}
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Syntax {
				ast.Inspect(f, func(n ast.Node) bool {
					st, ok := n.(*ast.StructType)
					if !ok {
						return true
					}
					for _, field := range st.Fields.List {
						if !isFuncType(pkg, field.Type) || !hasHookMarker(field) {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								hooks[hookKey(obj)] = true
							}
						}
					}
					return true
				})
			}
		}

		// Phase 2: flag unguarded calls through those fields.
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Syntax {
				walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[sel.Sel]
					if obj == nil || !hooks[hookKey(obj)] {
						return true
					}
					selStr := types.ExprString(sel)
					if nilGuarded(stack, n, selStr) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     prog.Fset.Position(call.Pos()),
						Check:   c.Name,
						Message: "call through optional hook " + selStr + " without a nil guard; wrap in `if " + selStr + " != nil` or copy to a checked local",
					})
					return true
				})
			}
		}
		return diags
	}
	return c
}

func hookKey(obj types.Object) string {
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isFuncType(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func hasHookMarker(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := strings.ToLower(cg.Text())
		for _, m := range hookMarkers {
			if strings.Contains(text, m) {
				return true
			}
		}
	}
	return false
}

// nilGuarded reports whether the call node is dominated by a nil check of
// selStr: either inside the then-branch of `if selStr != nil`, or preceded in
// an enclosing block by `if selStr == nil { return/... }`.
func nilGuarded(stack []ast.Node, call ast.Node, selStr string) bool {
	child := call
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.IfStmt:
			if child == anc.Body && condComparesNil(anc.Cond, selStr, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			for _, st := range anc.List {
				if st == child {
					break
				}
				ifs, ok := st.(*ast.IfStmt)
				if ok && condComparesNil(ifs.Cond, selStr, token.EQL) && terminates(ifs.Body) {
					return true
				}
			}
		}
		child = stack[i]
	}
	return false
}

// condComparesNil reports whether cond contains `selStr <op> nil` (either
// operand order).
func condComparesNil(cond ast.Expr, selStr string, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		x, y := types.ExprString(be.X), types.ExprString(be.Y)
		if (x == selStr && y == "nil") || (y == selStr && x == "nil") {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether the block ends by leaving the enclosing scope,
// so code after it is dominated by the negated condition.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
