package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// concurrencyPkgs are the packages the concurrency check sweeps: everything
// OUTSIDE the determinism boundary, where goroutines, wall clocks, and shared
// mutable state legitimately meet. The deterministic core is single-goroutine
// by construction (the determinism check enforces that), so mutex discipline
// is only a question out here — and it is the pre-flight gate for sharding
// the event loop: when shard workers arrive, their state crosses this same
// line.
var concurrencyPkgs = []string{
	"internal/serve",
	"internal/obs",
	"internal/trace",
	"cmd/tdserve",
}

// ConcurrencyCheck statically enforces the locking discipline of the
// concurrent layers with four dataflow rules:
//
//  1. mixed atomic/plain access — a variable passed to sync/atomic in one
//     place and read or written plainly in another has no consistent memory
//     ordering at all;
//  2. inconsistent mutex guards — a struct field written under the struct's
//     own mutex on some paths but touched without it on others (the guard
//     set is derived from accesses inside Lock/Unlock windows; methods named
//     *Locked are held-by-contract and trusted);
//  3. locks copied by value — a Mutex/RWMutex/WaitGroup (or any struct
//     containing one) passed, received, ranged, or assigned by value copies
//     the lock state and silently splits the critical section;
//  4. blocking while holding a mutex — channel operations without a default,
//     sync.WaitGroup/Cond Wait, time.Sleep, and net/http round trips inside
//     a Lock/Unlock window stall every other goroutine contending the lock.
func ConcurrencyCheck() *Check {
	c := &Check{
		Name: "concurrency",
		Doc:  "serve/obs/trace: no mixed atomic+plain access, consistent mutex guards, no locks copied by value, no blocking calls under a mutex",
	}
	c.Run = func(prog *Program) []Diagnostic {
		var diags []Diagnostic
		for _, pkg := range prog.Pkgs {
			if !pathMatches(pkg.Path, concurrencyPkgs...) {
				continue
			}
			diags = append(diags, atomicMix(prog, pkg)...)
			diags = append(diags, guardConsistency(prog, pkg)...)
			diags = append(diags, lockCopies(prog, pkg)...)
			diags = append(diags, lockBlocking(prog, pkg)...)
		}
		return diags
	}
	return c
}

// --- rule 1: mixed atomic/plain access --------------------------------------

// atomicMix flags variables that are passed by address to sync/atomic
// functions somewhere and accessed plainly somewhere else.
func atomicMix(prog *Program, pkg *Package) []Diagnostic {
	// Pass 1: every variable whose address reaches a sync/atomic call.
	atomicVars := map[*types.Var]bool{}
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := arg.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				// Only direct &x / &x.f name a trackable variable; &x.f[i]
				// names an element, whose siblings may legitimately be
				// accessed plainly (len, range).
				if v := baseVar(pkg, u.X); v != nil {
					atomicVars[v] = true
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return nil
	}
	// Pass 2: plain uses of those variables.
	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, _ := pkg.Info.Uses[id].(*types.Var)
			if v == nil || !atomicVars[v] {
				return true
			}
			if underAtomicCall(pkg, stack) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos: prog.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("%s is accessed via sync/atomic elsewhere but plainly here; "+
					"a mixed-ordering access races with every atomic one", v.Name()),
			})
			return true
		})
	}
	return diags
}

// isAtomicCall reports whether call invokes a sync/atomic package function.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// baseVar resolves &x or &x.f to the variable it addresses (nil for indexed
// or more deeply nested expressions).
func baseVar(pkg *Package, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := pkg.Info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

// underAtomicCall reports whether the node whose ancestor stack is given sits
// inside an argument of a sync/atomic call.
func underAtomicCall(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && isAtomicCall(pkg, call) {
			return true
		}
	}
	return false
}

// --- rule 2: inconsistent mutex guards --------------------------------------

// fieldAccess is one receiver-rooted field access inside a method.
type fieldAccess struct {
	pos     token.Pos
	guarded bool
	write   bool
}

// guardConsistency derives, per struct with a mutex field, which fields are
// written inside Lock/Unlock windows of the struct's own mutexes, then flags
// accesses to those fields outside any window.
func guardConsistency(prog *Program, pkg *Package) []Diagnostic {
	structs := mutexStructs(pkg)
	if len(structs) == 0 {
		return nil
	}
	// accesses[struct][field] accumulates across methods.
	accesses := map[*types.Named]map[*types.Var][]fieldAccess{}
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := recvNamed(pkg, fd)
			if named == nil || structs[named] == nil {
				continue
			}
			// *Locked methods hold the mutex by contract; constructors touch
			// the struct before it is shared.
			if strings.HasSuffix(fd.Name.Name, "Locked") || strings.HasSuffix(fd.Name.Name, "locked") ||
				buildsValueOf(pkg, fd, named) {
				continue
			}
			recv := recvVar(pkg, fd)
			if recv == nil {
				continue
			}
			if accesses[named] == nil {
				accesses[named] = map[*types.Var][]fieldAccess{}
			}
			scanMethod(pkg, fd, named, structs[named], recv, accesses[named])
		}
	}
	var diags []Diagnostic
	for named, fields := range accesses {
		for fv, accs := range fields {
			guardedWrite := false
			for _, a := range accs {
				if a.guarded && a.write {
					guardedWrite = true
					break
				}
			}
			if !guardedWrite {
				continue
			}
			for _, a := range accs {
				if a.guarded {
					continue
				}
				diags = append(diags, Diagnostic{
					Pos: prog.Fset.Position(a.pos),
					Message: fmt.Sprintf("%s.%s is written under the mutex on other paths but accessed without it here; "+
						"lock it or document the field as load-bearing unguarded", named.Obj().Name(), fv.Name()),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return lessPos(diags[i].Pos, diags[j].Pos) })
	return diags
}

func lessPos(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// mutexStructs maps each package-local struct type to its mutex fields.
func mutexStructs(pkg *Package) map[*types.Named][]*types.Var {
	out := map[*types.Named][]*types.Var{}
	for _, obj := range pkg.Info.Defs {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.Pkg() != pkg.Types {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mus []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			if isMutexType(st.Field(i).Type()) {
				mus = append(mus, st.Field(i))
			}
		}
		if len(mus) > 0 {
			out[named] = mus
		}
	}
	return out
}

// isMutexType reports sync.Mutex / sync.RWMutex exactly.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// recvNamed resolves a method's receiver to its named struct type.
func recvNamed(pkg *Package, fd *ast.FuncDecl) *types.Named {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, ok := pkg.Info.Uses[id].(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := tn.Type().(*types.Named)
	return named
}

// recvVar returns the receiver variable (nil for anonymous receivers).
func recvVar(pkg *Package, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := pkg.Info.Defs[names[0]].(*types.Var)
	return v
}

// buildsValueOf reports whether the function contains a composite literal of
// the named type — the constructor pattern, where the value is private and
// needs no locking.
func buildsValueOf(pkg *Package, fd *ast.FuncDecl, named *types.Named) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(cl)
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if t == named || types.Identical(t, named) {
			found = true
			return false
		}
		return true
	})
	return found
}

// lockEvent is a Lock or Unlock call at a position: +1 opens a window, -1
// closes it. Deferred unlocks keep the window open to the end of the method.
type lockEvent struct {
	pos   token.Pos
	delta int
}

// scanMethod records receiver-rooted field accesses in fd with their
// guardedness, derived by a position-linear scan of Lock/Unlock calls on the
// struct's own mutex fields. The linear approximation (an access is guarded
// iff more Locks than Unlocks precede it textually) trades path sensitivity
// for zero false "guarded" windows on straight-line code, which is the shape
// of every critical section in this repository.
func scanMethod(pkg *Package, fd *ast.FuncDecl, named *types.Named, mus []*types.Var, recv *types.Var, out map[*types.Var][]fieldAccess) {
	muSet := map[*types.Var]bool{}
	for _, m := range mus {
		muSet[m] = true
	}
	structFields := map[*types.Var]bool{}
	st := named.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !muSet[f] && guardableField(f.Type()) {
			structFields[f] = true
		}
	}

	var events []lockEvent
	type rawAccess struct {
		v     *types.Var
		pos   token.Pos
		write bool
	}
	var raw []rawAccess

	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			mv, name := mutexCallOn(pkg, n, recv, muSet)
			if mv == nil {
				break
			}
			switch name {
			case "Lock", "RLock":
				events = append(events, lockEvent{pos: n.Pos(), delta: +1})
			case "Unlock", "RUnlock":
				deferred := false
				for i := len(stack) - 1; i >= 0; i-- {
					if _, ok := stack[i].(*ast.DeferStmt); ok {
						deferred = true
						break
					}
				}
				if !deferred {
					events = append(events, lockEvent{pos: n.Pos(), delta: -1})
				}
			}
		case *ast.SelectorExpr:
			base, ok := n.X.(*ast.Ident)
			if !ok || pkg.Info.Uses[base] != recv {
				break
			}
			fv, _ := pkg.Info.Uses[n.Sel].(*types.Var)
			if fv == nil || !structFields[fv] {
				break
			}
			raw = append(raw, rawAccess{v: fv, pos: n.Pos(), write: isWriteContext(n, stack)})
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depthAt := func(pos token.Pos) int {
		d := 0
		for _, e := range events {
			if e.pos >= pos {
				break
			}
			d += e.delta
		}
		return d
	}
	for _, a := range raw {
		out[a.v] = append(out[a.v], fieldAccess{pos: a.pos, guarded: depthAt(a.pos) > 0, write: a.write})
	}
}

// guardableField excludes fields that synchronize themselves: atomics,
// channels, and the sync package's own types.
func guardableField(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	if pkg := named.Obj().Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sync", "sync/atomic":
			return false
		}
	}
	return true
}

// mutexCallOn matches recv.mu.Lock()-shaped calls against the struct's mutex
// fields, returning the mutex field and method name.
func mutexCallOn(pkg *Package, call *ast.CallExpr, recv *types.Var, muSet map[*types.Var]bool) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || pkg.Info.Uses[base] != recv {
		return nil, ""
	}
	mv, _ := pkg.Info.Uses[inner.Sel].(*types.Var)
	if mv == nil || !muSet[mv] {
		return nil, ""
	}
	return mv, sel.Sel.Name
}

// isWriteContext reports whether the selector is being assigned to (or
// address-taken, which may alias a write).
func isWriteContext(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == child
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				return true
			}
			return false
		case *ast.SelectorExpr, *ast.IndexExpr:
			child = stack[i].(ast.Node)
		default:
			return false
		}
	}
	return false
}

// --- rule 3: locks copied by value ------------------------------------------

// lockCopies flags lock-containing values passed, received, returned,
// assigned, or ranged by value.
func lockCopies(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, what string, t types.Type) {
		diags = append(diags, Diagnostic{
			Pos:     prog.Fset.Position(pos),
			Message: fmt.Sprintf("%s copies %s by value; the lock state forks and the critical section silently splits — pass a pointer", what, t.String()),
		})
	}
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, fl := range n.Recv.List {
						if t := pkg.Info.TypeOf(fl.Type); t != nil && containsLock(t) {
							report(fl.Pos(), "receiver", t)
						}
					}
				}
				if n.Type.Params != nil {
					for _, fl := range n.Type.Params.List {
						if t := pkg.Info.TypeOf(fl.Type); t != nil && containsLock(t) {
							report(fl.Pos(), "parameter", t)
						}
					}
				}
				if n.Type.Results != nil {
					for _, fl := range n.Type.Results.List {
						if t := pkg.Info.TypeOf(fl.Type); t != nil && containsLock(t) {
							report(fl.Pos(), "result", t)
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if !copyableExpr(rhs) {
						continue
					}
					// Assigning to the blank identifier discards the copy.
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if t := pkg.Info.TypeOf(rhs); t != nil && containsLock(t) {
						pos := rhs.Pos()
						if i < len(n.Lhs) {
							pos = n.Lhs[i].Pos()
						}
						report(pos, "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pkg.Info.TypeOf(n.Value); t != nil && containsLock(t) {
						report(n.Value.Pos(), "range value", t)
					}
				}
			}
			return true
		})
	}
	return diags
}

// copyableExpr reports expressions whose evaluation copies an existing value
// (identifiers, field selections, derefs, indexing) as opposed to fresh
// construction (composite literals, calls, conversions).
func copyableExpr(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// containsLock reports whether t (not a pointer to t) transitively contains a
// type with pointer-receiver Lock and Unlock methods — sync.Mutex, RWMutex,
// and anything embedding a noCopy-style guard (sync.WaitGroup, sync.Once).
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if hasLockMethods(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// hasLockMethods reports a Lock/Unlock pair on *t.
func hasLockMethods(t types.Type) bool {
	if _, ok := t.(*types.Named); !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	var lock, unlock bool
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Lock":
			lock = true
		case "Unlock":
			unlock = true
		}
	}
	return lock && unlock
}

// --- rule 4: blocking calls while holding a mutex ---------------------------

// lockBlocking flags blocking operations positioned inside a Lock/Unlock
// window of any mutex-typed expression. The window scan is position-linear
// per function, with deferred Unlocks extending the window to the function
// end — which is exactly when holding the lock across a block matters most.
func lockBlocking(prog *Program, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, blockingInFunc(prog, pkg, fd)...)
		}
	}
	return diags
}

func blockingInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var events []lockEvent
	type blocker struct {
		pos  token.Pos
		what string
	}
	var blockers []blocker

	walkWithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A goroutine body (or deferred closure) runs on its own
			// schedule; its lock events and blockers are not this function's.
			// Scanning it separately keeps windows from leaking across.
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if ok && isMutexMethodCall(pkg, sel) {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					events = append(events, lockEvent{pos: n.Pos(), delta: +1})
				case "Unlock", "RUnlock":
					deferred := false
					for i := len(stack) - 1; i >= 0; i-- {
						if _, ok := stack[i].(*ast.DeferStmt); ok {
							deferred = true
							break
						}
					}
					if !deferred {
						events = append(events, lockEvent{pos: n.Pos(), delta: -1})
					}
				}
				break
			}
			if what, ok := blockingCall(pkg, n); ok {
				blockers = append(blockers, blocker{pos: n.Pos(), what: what})
			}
		case *ast.SendStmt:
			if !inSelectWithDefault(stack) {
				blockers = append(blockers, blocker{pos: n.Pos(), what: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inSelectWithDefault(stack) {
				blockers = append(blockers, blocker{pos: n.Pos(), what: "channel receive"})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				blockers = append(blockers, blocker{pos: n.Pos(), what: "select without default"})
			}
		}
		return true
	})
	if len(events) == 0 || len(blockers) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	var diags []Diagnostic
	for _, b := range blockers {
		d := 0
		for _, e := range events {
			if e.pos >= b.pos {
				break
			}
			d += e.delta
		}
		if d > 0 {
			diags = append(diags, Diagnostic{
				Pos: prog.Fset.Position(b.pos),
				Message: b.what + " while holding a mutex: every goroutine contending the lock stalls behind this; " +
					"move it outside the critical section",
			})
		}
	}
	return diags
}

// isMutexMethodCall matches <expr>.Lock/Unlock/RLock/RUnlock where <expr> has
// a mutex type (directly or embedded via method selection on sync types).
func isMutexMethodCall(pkg *Package, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return false
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return isMutexType(t)
}

// blockingCall classifies calls that park the goroutine: WaitGroup/Cond
// Wait, time.Sleep, and net/http round trips.
func blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "sync":
		if sel.Sel.Name == "Wait" {
			return "sync Wait", true
		}
	case "time":
		if sel.Sel.Name == "Sleep" {
			return "time.Sleep", true
		}
	case "net/http":
		switch sel.Sel.Name {
		case "Get", "Post", "PostForm", "Head", "Do":
			return "HTTP round trip", true
		}
	}
	return "", false
}

// inSelectWithDefault reports whether the node sits in a comm clause of a
// select that has a default (a nonblocking try).
func inSelectWithDefault(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if sel, ok := stack[i].(*ast.SelectStmt); ok {
			return selectHasDefault(sel)
		}
	}
	return false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
