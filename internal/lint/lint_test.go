package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var fixtureRoot = filepath.Join("testdata", "src")

// wantRe matches the analysistest-style expectation comments embedded in
// fixture sources: // want "regex"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// selectChecks resolves check names through the same Select the CLI uses.
func selectChecks(t *testing.T, names string) []*Check {
	t.Helper()
	checks, err := Select(names)
	if err != nil {
		t.Fatal(err)
	}
	return checks
}

// checkFixture loads the fixture packages, runs the checks through Run
// (suppression included), and compares the findings against the fixtures'
// want comments: every finding must match an expectation on its line, and
// every expectation must be hit.
func checkFixture(t *testing.T, checks []*Check, dirs ...string) {
	t.Helper()
	prog, err := LoadDirs(fixtureRoot, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, dirs)
	for _, d := range Run(prog, checks) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		matched := -1
		text := "[" + d.Check + "] " + d.Message
		for i, re := range res {
			if re.MatchString(text) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("finding at %s matches no expectation: %s", key, d)
			continue
		}
		res = append(res[:matched], res[matched+1:]...)
		if len(res) == 0 {
			delete(wants, key)
		} else {
			wants[key] = res
		}
	}
	for key, res := range wants {
		for _, re := range res {
			t.Errorf("expected finding at %s matching %q, got none", key, re)
		}
	}
}

// collectWants scans fixture sources for want comments, keyed by file:line.
func collectWants(t *testing.T, dirs []string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, dir := range dirs {
		full := filepath.Join(fixtureRoot, filepath.FromSlash(dir))
		entries, err := os.ReadDir(full)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(full, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex: %v", path, i+1, err)
					}
					key := fmt.Sprintf("%s:%d", path, i+1)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "determinism"), "a/internal/sim", "a/clockapp")
}

// TestDeterminismBoundaryFixture proves a simulation package cannot import
// the serving layer: the import itself is a finding, while the serving
// package (outside the boundary) is loaded without complaint.
func TestDeterminismBoundaryFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "determinism"), "g/internal/sim", "g/internal/serve")
}

// TestShardRuntimeCarveOutFixture proves the //lint:shardruntime directive
// carves the go-statement ban out only for the marked internal/sim file: an
// ad-hoc goroutine in an unmarked sibling file, and a marked file outside
// internal/sim, both stay findings.
func TestShardRuntimeCarveOutFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "determinism"), "l/internal/sim", "l/internal/netem")
}

func TestSeqArithFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "seqarith"), "b/internal/tcp")
}

func TestNilHookFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "nilhook"), "c/hooks")
}

func TestTraceCatFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "tracecat"), "d/trace", "d/emit")
}

func TestMetricNameFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "metricname"), "d/trace", "d/metrics")
}

func TestSpanPairFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "spanpair"), "d/trace", "d/spans")
}

func TestSuppressionFixture(t *testing.T) {
	checkFixture(t, selectChecks(t, "seqarith"), "f/internal/tcp")
}

func TestMalformedIgnore(t *testing.T) {
	prog, err := LoadDirs(fixtureRoot, "f/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(prog, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Check != "ignore" || !strings.Contains(d.Message, "malformed ignore comment") {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %d checks, err %v; want all %d", len(all), err, len(All()))
	}
	two, err := Select("seqarith, nilhook")
	if err != nil || len(two) != 2 || two[0].Name != "seqarith" || two[1].Name != "nilhook" {
		t.Fatalf("Select(\"seqarith, nilhook\") = %v, err %v", checkNames(two), err)
	}
	if _, err := Select("nosuch"); err == nil {
		t.Fatal("Select(\"nosuch\") should fail")
	}
}

// TestLoadModule smoke-tests the production loader path against this module
// itself: the packet package must load, typecheck, and come back clean.
func TestLoadModule(t *testing.T) {
	prog, err := Load("../..", "./internal/packet")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) != 1 || !strings.HasSuffix(prog.Pkgs[0].Path, "internal/packet") {
		t.Fatalf("unexpected packages: %+v", prog.Pkgs)
	}
	if diags := Run(prog, All()); len(diags) != 0 {
		t.Errorf("packet package should be clean, got: %v", diags)
	}
}
